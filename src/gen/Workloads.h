//===- Workloads.h - Benchmark program generators ---------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators for the paper's benchmark families (DESIGN.md's
/// substitution table):
///
///   - `regressionSuite()` — small feature-test programs with known
///     positive/negative reachability (the SLAM regression suite's role).
///   - `driverProgram()` — SLAM-device-driver-shaped programs: many
///     procedures, flag-driven mostly-deterministic control, shallow data;
///     reachable and unreachable targets by construction (an invariant pair
///     of globals is kept equal; negative targets sit behind its violation).
///   - `terminatorProgram()` — TERMINATOR-shaped programs: wide binary
///     counters walked by loops, producing large BDDs; `dead`-variable
///     modelling in the paper's two styles (`Iterative` nondet-kill chains
///     vs a single `schoose`-style nondet assignment).
///   - `bluetoothModel()` — the Windows NT Bluetooth driver model (adders /
///     stoppers over pendingIo/stopping state) whose Figure-3 pattern the
///     concurrent engine must reproduce.
///
/// All generators return concrete syntax (parse with bp::parseProgram) so
/// benchmarks exercise the full front-end, and a designated target label.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_GEN_WORKLOADS_H
#define GETAFIX_GEN_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace getafix {
namespace gen {

/// A generated benchmark case.
struct Workload {
  std::string Name;
  std::string Source;
  std::string TargetLabel = "ERR";
  bool ExpectReachable = false;
  bool ExpectKnown = true; ///< False when ground truth is left to oracles.
};

/// The regression family: pairs of positive and negative feature tests.
std::vector<Workload> regressionSuite();

struct DriverParams {
  unsigned NumProcs = 20;
  unsigned NumGlobals = 6;
  unsigned LocalsPerProc = 4;
  unsigned StmtsPerProc = 12;
  bool Reachable = true;
  uint64_t Seed = 1;
};
Workload driverProgram(const DriverParams &P);

/// `dead`-statement modelling: the paper's two hand encodings (Figure 2's
/// iterative / schoose rows) plus the native `dead` statement this
/// front-end supports directly.
enum class DeadVarStyle { Iterative, Schoose, Native };

struct TerminatorParams {
  unsigned CounterBits = 8; ///< Loop-walked binary counter width.
  unsigned NumDeadVars = 6; ///< Variables "killed" between loop phases.
  DeadVarStyle Style = DeadVarStyle::Schoose;
  bool Reachable = false;
  uint64_t Seed = 1;
  /// When nonzero, adds `2 * LabeledCheckpoints` extra target labels to
  /// `main` after the counter loop: `CP<j>` behind a tautology (reachable)
  /// and `DEAD<j>` behind a contradiction (unreachable). Multi-target
  /// serving workloads (getafixd / getafix_load) query them all against
  /// one session; 0 (the default) generates byte-identical output to
  /// before this knob existed.
  unsigned LabeledCheckpoints = 0;
};
Workload terminatorProgram(const TerminatorParams &P);

/// Concurrent Bluetooth driver model: parse with parseConcurrentProgram.
/// Figure-3 configurations: (1,1) safe; (1,2) fails at >= 3 switches;
/// (2,1) fails at >= 4; (2,2) fails at >= 3.
///
/// \p Labeled adds per-thread target labels for multi-target serving
/// workloads — in each adder thread i: `INIT_A<i>` (after the init latch),
/// `OK_A<i>` (I/O accepted), `DEC_A<i>` (exit path), `DEAD_A<i>` (behind a
/// contradiction, unreachable); in each stopper thread i: `STOP_S<i>`,
/// `DONE_S<i>`, `DEAD_S<i>`. False (the default) generates byte-identical
/// output to the unlabeled model.
std::string bluetoothModel(unsigned NumAdders, unsigned NumStoppers,
                           bool Labeled = false);

/// Multi-SCC fixed-point systems for the evaluator's parallel SCC
/// scheduler: `Relations` *independent* recursive relations (each its own
/// SCC of the dependency condensation) plus a `Root` union relation
/// depending on all of them, rendered in the MUCKE-like concrete syntax
/// (parse with fpc::parseSystem; solve `Root`). Two shapes:
///
///   - `Graph` — each SCC is transitive-closure reachability over its own
///     deterministically random edge relation (stride rings plus random
///     chords; long diameter, so many fixpoint rounds over non-trivial
///     BDDs) — the gen-family shape.
///   - `Lockstep` — each SCC walks a pair of counters by private odd
///     strides until the cyclic group closes (terminator-style: wide
///     counters advanced by a loop, 2^bits rounds to saturation).
enum class MultiSccStyle { Graph, Lockstep };

struct MultiSccParams {
  unsigned Relations = 8; ///< Independent SCCs under Root.
  /// Domain is [0, 2^Bits): graph nodes or counter values.
  unsigned Bits = 8;
  /// Graph style: random chord edges added on top of the stride ring.
  unsigned ExtraEdges = 32;
  MultiSccStyle Style = MultiSccStyle::Graph;
  uint64_t Seed = 1;
};

/// Returns the `.mu` source text; the relation to solve is `Root`.
std::string multiSccFixpointSystem(const MultiSccParams &P);

} // namespace gen
} // namespace getafix

#endif // GETAFIX_GEN_WORKLOADS_H
