//===- Bdd.cpp - Reduced ordered binary decision diagrams -----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include <algorithm>
#include <cstdlib>
#include <new>
#include <unordered_map>
#include <unordered_set>

using namespace getafix;

const char *getafix::bddOpName(BddOp Op) {
  switch (Op) {
  case BddOp::And:
    return "And";
  case BddOp::Or:
    return "Or";
  case BddOp::Xor:
    return "Xor";
  case BddOp::Not:
    return "Not";
  case BddOp::Ite:
    return "Ite";
  case BddOp::Exists:
    return "Exists";
  case BddOp::AndExists:
    return "AndExists";
  case BddOp::Rename:
    return "Rename";
  case BddOp::Frontier:
    return "Frontier";
  case BddOp::Constrain:
    return "Constrain";
  case BddOp::Restrict:
    return "Restrict";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Bdd handle
//===----------------------------------------------------------------------===//

Bdd::Bdd(BddManager *Mgr, uint32_t Idx) : Mgr(Mgr), Idx(Idx) {
  if (Mgr)
    Mgr->ref(Idx);
}

Bdd::Bdd(const Bdd &Other) : Mgr(Other.Mgr), Idx(Other.Idx) {
  if (Mgr)
    Mgr->ref(Idx);
}

Bdd::Bdd(Bdd &&Other) noexcept : Mgr(Other.Mgr), Idx(Other.Idx) {
  Other.Mgr = nullptr;
  Other.Idx = 0;
}

Bdd &Bdd::operator=(const Bdd &Other) {
  if (this == &Other)
    return *this;
  if (Other.Mgr)
    Other.Mgr->ref(Other.Idx);
  if (Mgr)
    Mgr->deref(Idx);
  Mgr = Other.Mgr;
  Idx = Other.Idx;
  return *this;
}

Bdd &Bdd::operator=(Bdd &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Mgr)
    Mgr->deref(Idx);
  Mgr = Other.Mgr;
  Idx = Other.Idx;
  Other.Mgr = nullptr;
  Other.Idx = 0;
  return *this;
}

Bdd::~Bdd() {
  if (Mgr)
    Mgr->deref(Idx);
}

bool Bdd::isZero() const { return Mgr && Idx == 0; }
bool Bdd::isOne() const { return Mgr && Idx == 1; }

Bdd Bdd::operator&(const Bdd &Other) const {
  assert(Mgr && Mgr == Other.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->applyRec(BddManager::Op::And, Idx, Other.Idx));
}

Bdd Bdd::operator|(const Bdd &Other) const {
  assert(Mgr && Mgr == Other.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->applyRec(BddManager::Op::Or, Idx, Other.Idx));
}

Bdd Bdd::operator^(const Bdd &Other) const {
  assert(Mgr && Mgr == Other.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->applyRec(BddManager::Op::Xor, Idx, Other.Idx));
}

Bdd Bdd::operator!() const {
  assert(Mgr && "null bdd");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->notRec(Idx));
}

Bdd Bdd::ite(const Bdd &Then, const Bdd &Else) const {
  assert(Mgr && Mgr == Then.Mgr && Mgr == Else.Mgr &&
         "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->iteRec(Idx, Then.Idx, Else.Idx));
}

Bdd Bdd::exists(BddCube Cube) const {
  assert(Mgr && Cube.isValid() && "bad exists operands");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->existsRec(Idx, Cube.Id));
}

Bdd Bdd::forall(BddCube Cube) const {
  assert(Mgr && Cube.isValid() && "bad forall operands");
  // forall X. f == !(exists X. !f); both negations hit the NOT cache.
  Mgr->maybeGc();
  uint32_t NotF = Mgr->notRec(Idx);
  uint32_t Ex = Mgr->existsRec(NotF, Cube.Id);
  return Bdd(Mgr, Mgr->notRec(Ex));
}

Bdd Bdd::andExists(const Bdd &Other, BddCube Cube) const {
  assert(Mgr && Mgr == Other.Mgr && Cube.isValid() &&
         "bad andExists operands");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->andExistsRec(Idx, Other.Idx, Cube.Id));
}

Bdd Bdd::permute(BddPerm Perm) const {
  assert(Mgr && Perm.isValid() && "bad permute operands");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->renameRec(Idx, Perm.Id));
}

Bdd Bdd::restrict(unsigned Var, bool Value) const {
  assert(Mgr && Var < Mgr->numVars() && "bad restrict operands");
  // f|_{v=c} == exists v. (f & lit(v,c)). Reuses the and-exists machinery.
  BddCube Cube = Mgr->makeCube({Var});
  Bdd Lit = Value ? Mgr->var(Var) : Mgr->nvar(Var);
  return andExists(Lit, Cube);
}

Bdd Bdd::frontier(const Bdd &Old) const {
  assert(Mgr && Mgr == Old.Mgr && "operands from different managers");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->frontierRec(Idx, Old.Idx));
}

Bdd Bdd::constrain(const Bdd &Care) const {
  assert(Mgr && Mgr == Care.Mgr && "operands from different managers");
  assert(!Care.isZero() && "constrain needs a non-empty care set");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->constrainRec(Idx, Care.Idx));
}

Bdd Bdd::restrict(const Bdd &Care) const {
  assert(Mgr && Mgr == Care.Mgr && "operands from different managers");
  assert(!Care.isZero() && "restrict needs a non-empty care set");
  Mgr->maybeGc();
  return Bdd(Mgr, Mgr->restrictRec(Idx, Care.Idx));
}

double Bdd::satCount(unsigned NumVars) const {
  assert(Mgr && "null bdd");
  // Fraction of satisfying assignments, then scale by 2^NumVars.
  std::unordered_map<uint32_t, double> Memo;
  struct Walker {
    BddManager *M;
    std::unordered_map<uint32_t, double> &Memo;
    double walk(uint32_t N) {
      if (N == 0)
        return 0.0;
      if (N == 1)
        return 1.0;
      auto It = Memo.find(N);
      if (It != Memo.end())
        return It->second;
      double R = 0.5 * (walk(M->lowOf(N)) + walk(M->highOf(N)));
      Memo.emplace(N, R);
      return R;
    }
  } W{Mgr, Memo};
  double Fraction = W.walk(Idx);
  double Scale = 1.0;
  for (unsigned I = 0; I < NumVars; ++I)
    Scale *= 2.0;
  return Fraction * Scale;
}

size_t Bdd::nodeCount() const {
  assert(Mgr && "null bdd");
  if (Idx <= 1)
    return 0;
  std::unordered_set<uint32_t> Seen;
  std::vector<uint32_t> Stack{Idx};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (N <= 1 || !Seen.insert(N).second)
      continue;
    Stack.push_back(Mgr->lowOf(N));
    Stack.push_back(Mgr->highOf(N));
  }
  return Seen.size();
}

std::vector<unsigned> Bdd::support() const {
  assert(Mgr && "null bdd");
  std::vector<bool> InSupport(Mgr->numVars(), false);
  std::unordered_set<uint32_t> Seen;
  std::vector<uint32_t> Stack{Idx};
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (N <= 1 || !Seen.insert(N).second)
      continue;
    InSupport[Mgr->varOf(N)] = true;
    Stack.push_back(Mgr->lowOf(N));
    Stack.push_back(Mgr->highOf(N));
  }
  std::vector<unsigned> Result;
  for (unsigned V = 0; V < InSupport.size(); ++V)
    if (InSupport[V])
      Result.push_back(V);
  return Result;
}

bool Bdd::eval(const std::vector<bool> &Assignment) const {
  assert(Mgr && "null bdd");
  uint32_t N = Idx;
  while (N > 1) {
    unsigned V = Mgr->varOf(N);
    assert(V < Assignment.size() && "assignment too short");
    N = Assignment[V] ? Mgr->highOf(N) : Mgr->lowOf(N);
  }
  return N == 1;
}

std::vector<int8_t> Bdd::onePath() const {
  assert(Mgr && Idx != 0 && "onePath needs a satisfiable bdd");
  std::vector<int8_t> Path(Mgr->numVars(), -1);
  uint32_t N = Idx;
  while (N > 1) {
    unsigned V = Mgr->varOf(N);
    if (Mgr->lowOf(N) != 0) {
      Path[V] = 0;
      N = Mgr->lowOf(N);
    } else {
      Path[V] = 1;
      N = Mgr->highOf(N);
    }
  }
  return Path;
}

//===----------------------------------------------------------------------===//
// Manager: construction, variables, interning
//===----------------------------------------------------------------------===//

BddManager::BddManager(unsigned NumVars, unsigned CacheBits,
                       unsigned CacheWays)
    : NumVars(NumVars) {
  Nodes.resize(2);
  Nodes[0] = Node{TermVar, 0, 0, Invalid};
  Nodes[1] = Node{TermVar, 1, 1, Invalid};
  ExtRefs.resize(2, 1); // Terminals are permanently referenced.
  Buckets.assign(1u << 12, Invalid);
  assert(CacheWays != 0 && (CacheWays & (CacheWays - 1)) == 0 &&
         "cache associativity must be a power of two");
  // Total slots stay 2^CacheBits regardless of associativity, so the
  // CacheBits knob means the same memory budget at every ways setting;
  // tiny caches clamp to at least one bucket.
  unsigned WayBits = 0;
  while ((1u << WayBits) < CacheWays)
    ++WayBits;
  if (WayBits > CacheBits)
    WayBits = CacheBits;
  this->CacheWays = 1u << WayBits;
  CacheSlots = size_t(1) << CacheBits;
  Cache.resize(CacheSlots + 64 / sizeof(CacheEntry) - 1);
  uintptr_t Addr = reinterpret_cast<uintptr_t>(Cache.data());
  CacheBase = Cache.data() + ((64 - (Addr & 63)) & 63) / sizeof(CacheEntry);
  CacheBucketMask = (uint64_t(1) << (CacheBits - WayBits)) - 1;

  // Whole-process fault drills: every manager born while the variable is
  // set fails its K-th allocation (see setFailAfterAllocations).
  if (const char *Fault = std::getenv("GETAFIX_FAULT_ALLOC_AFTER"))
    FaultFailAfter = std::strtoull(Fault, nullptr, 10);
}

BddManager::~BddManager() = default;

unsigned BddManager::newVar() { return NumVars++; }

Bdd BddManager::var(unsigned Var) {
  assert(Var < NumVars && "variable out of range");
  return Bdd(this, makeNode(Var, 0, 1));
}

Bdd BddManager::nvar(unsigned Var) {
  assert(Var < NumVars && "variable out of range");
  return Bdd(this, makeNode(Var, 1, 0));
}

BddCube BddManager::makeCube(const std::vector<unsigned> &Vars) {
  CubeSet NewCube;
  NewCube.Vars = Vars;
  std::sort(NewCube.Vars.begin(), NewCube.Vars.end());
  NewCube.Vars.erase(
      std::unique(NewCube.Vars.begin(), NewCube.Vars.end()),
      NewCube.Vars.end());
  for (uint32_t Id = 0; Id < Cubes.size(); ++Id)
    if (Cubes[Id].Vars == NewCube.Vars)
      return BddCube{Id};
  NewCube.InCube.assign(NumVars, 0);
  for (unsigned V : NewCube.Vars) {
    assert(V < NumVars && "cube variable out of range");
    NewCube.InCube[V] = 1;
    NewCube.MinVar = std::min<unsigned>(NewCube.MinVar, V);
  }
  Cubes.push_back(std::move(NewCube));
  return BddCube{uint32_t(Cubes.size() - 1)};
}

BddPerm BddManager::makePermutation(
    const std::vector<std::pair<unsigned, unsigned>> &Pairs) {
  PermSet NewPerm;
  NewPerm.Map.resize(NumVars);
  for (unsigned V = 0; V < NumVars; ++V)
    NewPerm.Map[V] = V;
  for (auto [From, To] : Pairs) {
    assert(From < NumVars && To < NumVars && "permutation var out of range");
    NewPerm.Map[From] = To;
  }
  NewPerm.Monotone = true;
  for (unsigned V = 1; V < NumVars; ++V)
    if (NewPerm.Map[V - 1] >= NewPerm.Map[V]) {
      NewPerm.Monotone = false;
      break;
    }
  for (uint32_t Id = 0; Id < Perms.size(); ++Id)
    if (Perms[Id].Map == NewPerm.Map)
      return BddPerm{Id};
  Perms.push_back(std::move(NewPerm));
  return BddPerm{uint32_t(Perms.size() - 1)};
}

Bdd BddManager::cubeBdd(BddCube Cube) {
  assert(Cube.Id < Cubes.size() && "invalid cube");
  uint32_t Result = 1;
  const CubeSet &C = Cubes[Cube.Id];
  // Build bottom-up so each makeNode call has children below it.
  for (auto It = C.Vars.rbegin(); It != C.Vars.rend(); ++It)
    Result = makeNode(*It, 0, Result);
  return Bdd(this, Result);
}

//===----------------------------------------------------------------------===//
// Manager: node table
//===----------------------------------------------------------------------===//

uint64_t BddManager::hashTriple(uint32_t A, uint32_t B, uint32_t C) {
  uint64_t H = (uint64_t(A) << 32) ^ (uint64_t(B) << 16) ^ C;
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

uint32_t BddManager::makeNode(uint32_t Var, uint32_t Low, uint32_t High) {
  // Governor probe: one compare when ungoverned. Probing at entry (before
  // any mutation) makes the throw trivially safe; the poll charges the
  // allocations since the previous poll, so a budget is overrun by at
  // most one probe period per governed manager before tripping.
  if (GovCountdown != 0 && --GovCountdown == 0)
    pollGovernor();
  if (Low == High)
    return Low;
  assert(isTerminal(Low) || varOf(Low) > Var);
  assert(isTerminal(High) || varOf(High) > Var);

  size_t Bucket = hashTriple(Var, Low, High) & (Buckets.size() - 1);
  for (uint32_t N = Buckets[Bucket]; N != Invalid; N = Nodes[N].Next)
    if (Nodes[N].Var == Var && Nodes[N].Low == Low && Nodes[N].High == High)
      return N;

  uint32_t N = allocNode();
  Nodes[N] = Node{Var, Low, High, Buckets[Bucket]};
  Buckets[Bucket] = N;
  ++Stats.NodesCreated;

  size_t Live = Nodes.size() - 2 - NumFree;
  Stats.PeakNodes = std::max(Stats.PeakNodes, Live);
  if (Live > (Buckets.size() * 3) / 4)
    growUniqueTable();
  return N;
}

void BddManager::pollGovernor() {
  GovCountdown = Gov->probePeriod();
  uint64_t New = Stats.NodesCreated - GovLastCharged;
  GovLastCharged = Stats.NodesCreated;
  Gov->check(New);
}

uint32_t BddManager::allocNode() {
  // Deterministic OOM drill: fail the K-th allocation exactly, before any
  // structure is touched, as a real allocator would.
  if (FaultFailAfter != 0 && ++FaultAllocs >= FaultFailAfter)
    throw std::bad_alloc();
  if (FreeList != Invalid) {
    uint32_t N = FreeList;
    FreeList = Nodes[N].Low;
    --NumFree;
    ExtRefs[N] = 0;
    return N;
  }
  Nodes.push_back(Node{});
  ExtRefs.push_back(0);
  // Nodes past the packed cache index range are legal — the computed
  // cache just refuses to store results that mention them.
  return uint32_t(Nodes.size() - 1);
}

void BddManager::growUniqueTable() {
  size_t NewSize = Buckets.size() * 2;
  Buckets.assign(NewSize, Invalid);
  for (uint32_t N = 2; N < Nodes.size(); ++N) {
    if (Nodes[N].Var == TermVar) // Free node.
      continue;
    size_t Bucket =
        hashTriple(Nodes[N].Var, Nodes[N].Low, Nodes[N].High) & (NewSize - 1);
    Nodes[N].Next = Buckets[Bucket];
    Buckets[Bucket] = N;
  }
}

void BddManager::ref(uint32_t N) { ++ExtRefs[N]; }

void BddManager::deref(uint32_t N) {
  assert(ExtRefs[N] > 0 && "unbalanced deref");
  --ExtRefs[N];
}

size_t BddManager::liveNodeCount() const { return Nodes.size() - 2 - NumFree; }

std::vector<uint8_t> BddManager::markReachable() const {
  std::vector<uint8_t> Marked(Nodes.size(), 0);
  Marked[0] = Marked[1] = 1;
  std::vector<uint32_t> Stack;
  for (uint32_t N = 2; N < Nodes.size(); ++N)
    if (ExtRefs[N] > 0 && Nodes[N].Var != TermVar)
      Stack.push_back(N);
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (N <= 1 || Marked[N])
      continue;
    Marked[N] = 1;
    Stack.push_back(Nodes[N].Low);
    Stack.push_back(Nodes[N].High);
  }
  return Marked;
}

size_t BddManager::reachableNodeCount() const {
  std::vector<uint8_t> Marked = markReachable();
  size_t Count = 0;
  for (uint32_t N = 2; N < Nodes.size(); ++N)
    Count += Marked[N];
  return Count;
}

void BddManager::maybeGc() {
  if (GcThreshold != 0 && liveNodeCount() > GcThreshold)
    gc();
}

void BddManager::gc() {
  ++Stats.GcRuns;
  std::vector<uint8_t> Marked = markReachable();

  std::fill(Buckets.begin(), Buckets.end(), Invalid);
  FreeList = Invalid;
  NumFree = 0;
  size_t Reclaimed = 0;
  for (uint32_t N = 2; N < Nodes.size(); ++N) {
    if (!Marked[N]) {
      if (Nodes[N].Var != TermVar)
        ++Reclaimed;
      Nodes[N].Var = TermVar;
      Nodes[N].Low = FreeList;
      FreeList = N;
      ++NumFree;
      continue;
    }
    size_t Bucket =
        hashTriple(Nodes[N].Var, Nodes[N].Low, Nodes[N].High) &
        (Buckets.size() - 1);
    Nodes[N].Next = Buckets[Bucket];
    Buckets[Bucket] = N;
  }
  Stats.GcReclaimed += Reclaimed;
  Stats.LiveNodes = liveNodeCount();
  clearCache();

  // If collection freed little, raise the threshold to avoid thrashing.
  if (GcThreshold != 0 && Reclaimed * 4 < GcThreshold)
    GcThreshold *= 2;
}

//===----------------------------------------------------------------------===//
// Manager: computed cache
//===----------------------------------------------------------------------===//

bool BddManager::cacheLookup(Op O, uint32_t F, uint32_t G, uint32_t H,
                             uint32_t &Out) {
  // Keys beyond the packed index range are uncacheable: letting them in
  // would alias the stolen op/generation bits and serve wrong results in
  // NDEBUG builds. Realistic solves never get near 2^27 nodes (2 GB of
  // node table); past it the cache degrades, correctness does not.
  if (((F | G | H) & ~IdxMask) != 0)
    return false;
  ++Stats.OpLookups[uint32_t(O)];
  uint64_t Bucket = (hashTriple(F, G, H) ^ (uint64_t(O) * 0x9e3779b9u)) &
                    CacheBucketMask;
  CacheEntry *Ways = CacheBase + Bucket * CacheWays;
  // The expected packed words fold op and generation into the operand
  // compares, so a probe is the same three compares per way the unpacked
  // layout needed — but the whole 4-way bucket sits in one cache line.
  const uint32_t ExpW0 = F | (uint32_t(O) << IdxBits);
  const uint32_t ExpW1 = G | ((CacheGeneration & 31u) << IdxBits);
  const uint32_t ExpW2 = H | ((CacheGeneration >> 5) << IdxBits);
  for (unsigned W = 0; W < CacheWays; ++W) {
    const CacheEntry &E = Ways[W];
    if (E.W0 == ExpW0 && E.W1 == ExpW1 && E.W2 == ExpW2) {
      ++Stats.OpHits[uint32_t(O)];
      Out = E.Result;
      // Transposition promotion: a hit moves its entry one way toward
      // the bucket front. Re-used entries migrate to the protected front
      // ways; single-use entries churn at the back. This is what keeps
      // *high-value* results (a hit near the recursion root prunes a
      // whole subtree) alive — plain FIFO aging measured 18% more probes
      // on bluetooth 2a2s/k4 because hot top-level entries aged out at
      // the same rate as leaf-level ones.
      if (W != 0)
        std::swap(Ways[W], Ways[W - 1]);
      return true;
    }
  }
  return false;
}

void BddManager::cacheInsert(Op O, uint32_t F, uint32_t G, uint32_t H,
                             uint32_t R) {
  if (((F | G | H) & ~IdxMask) != 0)
    return; // Beyond the packed index range: uncacheable (see lookup).
  uint64_t Bucket = (hashTriple(F, G, H) ^ (uint64_t(O) * 0x9e3779b9u)) &
                    CacheBucketMask;
  CacheEntry *Ways = CacheBase + Bucket * CacheWays;
  // New entries start in the back (probation) way — the least recently
  // useful slot under transposition promotion — except that ways cleared
  // by a generation bump are reclaimed first, so capacity recovers
  // immediately after gc instead of waiting for promotions.
  unsigned Slot = CacheWays - 1;
  const uint32_t GenW1 = (CacheGeneration & 31u) << IdxBits;
  const uint32_t GenW2 = (CacheGeneration >> 5) << IdxBits;
  for (unsigned W = 0; W < CacheWays; ++W) {
    if ((Ways[W].W1 & ~uint32_t(IdxMask)) != GenW1 ||
        (Ways[W].W2 & ~uint32_t(IdxMask)) != GenW2) {
      Slot = W; // Stale generation: an empty way.
      break;
    }
  }
  Ways[Slot] = CacheEntry{F | (uint32_t(O) << IdxBits), G | GenW1,
                          H | GenW2, R};
}

void BddManager::clearCache() {
  // A generation bump is the whole clear: entries stamped with an older
  // generation read as empty. The generation lives in the 10 stolen bits
  // of the entry, so every GenPeriod-th clear falls back to the memset —
  // a recycled generation number must never revive pre-clear entries.
  CacheGeneration = (CacheGeneration + 1) % GenPeriod;
  if (CacheGeneration == 0) {
    std::fill(Cache.begin(), Cache.end(), CacheEntry{});
    CacheGeneration = 1;
  }
}

//===----------------------------------------------------------------------===//
// Manager: recursive operation cores
//===----------------------------------------------------------------------===//

uint32_t BddManager::applyRec(Op O, uint32_t F, uint32_t G) {
  // Terminal rules.
  switch (O) {
  case Op::And:
    if (F == 0 || G == 0)
      return 0;
    if (F == 1)
      return G;
    if (G == 1)
      return F;
    if (F == G)
      return F;
    break;
  case Op::Or:
    if (F == 1 || G == 1)
      return 1;
    if (F == 0)
      return G;
    if (G == 0)
      return F;
    if (F == G)
      return F;
    break;
  case Op::Xor:
    if (F == G)
      return 0;
    if (F == 0)
      return G;
    if (G == 0)
      return F;
    if (F == 1)
      return notRec(G);
    if (G == 1)
      return notRec(F);
    break;
  default:
    assert(false && "applyRec only handles And/Or/Xor");
  }

  if (F > G)
    std::swap(F, G); // All three ops are commutative.

  uint32_t Result;
  if (cacheLookup(O, F, G, 0, Result))
    return Result;

  uint32_t FVar = varOf(F), GVar = varOf(G);
  uint32_t Top = std::min(FVar, GVar);
  uint32_t F0 = FVar == Top ? lowOf(F) : F;
  uint32_t F1 = FVar == Top ? highOf(F) : F;
  uint32_t G0 = GVar == Top ? lowOf(G) : G;
  uint32_t G1 = GVar == Top ? highOf(G) : G;

  uint32_t Low = applyRec(O, F0, G0);
  uint32_t High = applyRec(O, F1, G1);
  Result = makeNode(Top, Low, High);
  cacheInsert(O, F, G, 0, Result);
  return Result;
}

uint32_t BddManager::frontierRec(uint32_t F, uint32_t G) {
  // Interval choice `F \ G ⊆ R ⊆ F`, minimized structurally: every rule
  // below stays inside the interval of its subproblem, and the invariant
  // composes through makeNode cofactor-by-cofactor.
  if (F == G || F == 0 || G == 1)
    return 0; // Nothing new here (or nothing at all): empty is in range.
  if (G == 0 || F == 1)
    return F; // All of F is (or may be reported as) new: F is in range.

  uint32_t Result;
  if (cacheLookup(Op::Frontier, F, G, 0, Result))
    return Result;

  uint32_t FVar = varOf(F), GVar = varOf(G);
  uint32_t Top = std::min(FVar, GVar);
  uint32_t F0 = FVar == Top ? lowOf(F) : F;
  uint32_t F1 = FVar == Top ? highOf(F) : F;
  uint32_t G0 = GVar == Top ? lowOf(G) : G;
  uint32_t G1 = GVar == Top ? highOf(G) : G;

  uint32_t Low = frontierRec(F0, G0);
  uint32_t High = frontierRec(F1, G1);
  Result = makeNode(Top, Low, High);
  cacheInsert(Op::Frontier, F, G, 0, Result);
  return Result;
}

uint32_t BddManager::constrainRec(uint32_t F, uint32_t C) {
  // Coudert–Madre generalized cofactor. Invariant (defines the op):
  // constrain(F, C) & C == F & C, with the off-care-set half chosen so
  // whole branches of F collapse. The two sibling rules below (C0 == 0 /
  // C1 == 0) drop the branching variable entirely — that is where the
  // size reduction comes from, and also why the result's support can
  // exceed F's.
  if (C == 1 || isTerminal(F))
    return F;
  if (C == 0)
    return 0; // Empty care set: everything is don't-care.
  if (F == C)
    return 1; // f agrees with c on all of c.

  uint32_t Result;
  if (cacheLookup(Op::Constrain, F, C, 0, Result))
    return Result;

  uint32_t FVar = varOf(F), CVar = varOf(C);
  uint32_t Top = std::min(FVar, CVar);
  uint32_t F0 = FVar == Top ? lowOf(F) : F;
  uint32_t F1 = FVar == Top ? highOf(F) : F;
  uint32_t C0 = CVar == Top ? lowOf(C) : C;
  uint32_t C1 = CVar == Top ? highOf(C) : C;

  if (C0 == 0)
    Result = constrainRec(F1, C1);
  else if (C1 == 0)
    Result = constrainRec(F0, C0);
  else
    Result = makeNode(Top, constrainRec(F0, C0), constrainRec(F1, C1));
  cacheInsert(Op::Constrain, F, C, 0, Result);
  return Result;
}

uint32_t BddManager::restrictRec(uint32_t F, uint32_t C) {
  // Coudert–Madre restrict: the sibling of constrain that existentially
  // drops care-set variables sitting above F's top variable instead of
  // branching on them, so the result's support stays inside F's. Same
  // defining identity: restrict(F, C) & C == F & C.
  if (C == 1 || isTerminal(F))
    return F;
  if (C == 0)
    return 0;
  if (F == C)
    return 1;

  uint32_t Result;
  if (cacheLookup(Op::Restrict, F, C, 0, Result))
    return Result;

  uint32_t FVar = varOf(F), CVar = varOf(C);
  if (CVar < FVar) {
    // C branches on a variable F does not depend on: any assignment to it
    // keeps F's value, so the care set may be widened to `exists v. C`.
    Result = restrictRec(F, applyRec(Op::Or, lowOf(C), highOf(C)));
  } else {
    uint32_t C0 = CVar == FVar ? lowOf(C) : C;
    uint32_t C1 = CVar == FVar ? highOf(C) : C;
    if (C0 == 0)
      Result = restrictRec(highOf(F), C1);
    else if (C1 == 0)
      Result = restrictRec(lowOf(F), C0);
    else
      Result = makeNode(FVar, restrictRec(lowOf(F), C0),
                        restrictRec(highOf(F), C1));
  }
  cacheInsert(Op::Restrict, F, C, 0, Result);
  return Result;
}

uint32_t BddManager::notRec(uint32_t F) {
  if (F == 0)
    return 1;
  if (F == 1)
    return 0;
  uint32_t Result;
  if (cacheLookup(Op::Not, F, 0, 0, Result))
    return Result;
  Result = makeNode(varOf(F), notRec(lowOf(F)), notRec(highOf(F)));
  cacheInsert(Op::Not, F, 0, 0, Result);
  return Result;
}

uint32_t BddManager::iteRec(uint32_t F, uint32_t G, uint32_t H) {
  if (F == 1)
    return G;
  if (F == 0)
    return H;
  if (G == H)
    return G;
  if (G == 1 && H == 0)
    return F;
  if (G == 0 && H == 1)
    return notRec(F);

  uint32_t Result;
  if (cacheLookup(Op::Ite, F, G, H, Result))
    return Result;

  uint32_t Top = varOf(F);
  if (!isTerminal(G))
    Top = std::min(Top, varOf(G));
  if (!isTerminal(H))
    Top = std::min(Top, varOf(H));

  auto Cofactor = [&](uint32_t N, bool High) {
    if (isTerminal(N) || varOf(N) != Top)
      return N;
    return High ? highOf(N) : lowOf(N);
  };

  uint32_t Low = iteRec(Cofactor(F, false), Cofactor(G, false),
                        Cofactor(H, false));
  uint32_t High = iteRec(Cofactor(F, true), Cofactor(G, true),
                         Cofactor(H, true));
  Result = makeNode(Top, Low, High);
  cacheInsert(Op::Ite, F, G, H, Result);
  return Result;
}

uint32_t BddManager::existsRec(uint32_t F, uint32_t CubeId) {
  if (isTerminal(F))
    return F;
  const CubeSet &C = Cubes[CubeId];
  uint32_t V = varOf(F);
  // All quantified variables are above this node: nothing to do.
  if (!C.Vars.empty() && V > C.Vars.back())
    return F;

  uint32_t Result;
  if (cacheLookup(Op::Exists, F, CubeId, 0, Result))
    return Result;

  if (V < C.InCube.size() && C.InCube[V]) {
    uint32_t Low = existsRec(lowOf(F), CubeId);
    if (Low == 1) {
      Result = 1;
    } else {
      uint32_t High = existsRec(highOf(F), CubeId);
      Result = applyRec(Op::Or, Low, High);
    }
  } else {
    Result = makeNode(V, existsRec(lowOf(F), CubeId),
                      existsRec(highOf(F), CubeId));
  }
  cacheInsert(Op::Exists, F, CubeId, 0, Result);
  return Result;
}

uint32_t BddManager::andExistsRec(uint32_t F, uint32_t G, uint32_t CubeId) {
  if (F == 0 || G == 0)
    return 0;
  if (F == 1 && G == 1)
    return 1;
  if (F == 1)
    return existsRec(G, CubeId);
  if (G == 1)
    return existsRec(F, CubeId);
  if (F == G)
    return existsRec(F, CubeId);
  if (F > G)
    std::swap(F, G);

  const CubeSet &C = Cubes[CubeId];
  uint32_t Top = std::min(varOf(F), varOf(G));
  // Below all quantified variables: plain conjunction.
  if (!C.Vars.empty() && Top > C.Vars.back())
    return applyRec(Op::And, F, G);

  uint32_t Result;
  if (cacheLookup(Op::AndExists, F, G, CubeId, Result))
    return Result;

  uint32_t F0 = varOf(F) == Top ? lowOf(F) : F;
  uint32_t F1 = varOf(F) == Top ? highOf(F) : F;
  uint32_t G0 = varOf(G) == Top ? lowOf(G) : G;
  uint32_t G1 = varOf(G) == Top ? highOf(G) : G;

  if (Top < C.InCube.size() && C.InCube[Top]) {
    uint32_t Low = andExistsRec(F0, G0, CubeId);
    if (Low == 1) {
      Result = 1;
    } else {
      uint32_t High = andExistsRec(F1, G1, CubeId);
      Result = applyRec(Op::Or, Low, High);
    }
  } else {
    Result = makeNode(Top, andExistsRec(F0, G0, CubeId),
                      andExistsRec(F1, G1, CubeId));
  }
  cacheInsert(Op::AndExists, F, G, CubeId, Result);
  return Result;
}

uint32_t BddManager::renameRec(uint32_t F, uint32_t PermId) {
  if (isTerminal(F))
    return F;
  uint32_t Result;
  if (cacheLookup(Op::Rename, F, PermId, 0, Result))
    return Result;

  const PermSet &P = Perms[PermId];
  uint32_t Low = renameRec(lowOf(F), PermId);
  uint32_t High = renameRec(highOf(F), PermId);
  uint32_t NewVar = P.Map[varOf(F)];
  if (P.Monotone) {
    Result = makeNode(NewVar, Low, High);
  } else {
    // The renamed variable may sit below variables of the children; rebuild
    // with ite to restore ordering.
    uint32_t Lit = makeNode(NewVar, 0, 1);
    Result = iteRec(Lit, High, Low);
  }
  cacheInsert(Op::Rename, F, PermId, 0, Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// BddImporter
//===----------------------------------------------------------------------===//

Bdd BddImporter::import(const Bdd &F) {
  if (F.isNull())
    return Bdd();
  assert(F.manager() == &Src && "importing a foreign manager's BDD");
  // A source collection may have freed (and later reused) node indices the
  // memo still mentions; translations keyed on them would silently map a
  // *different* function. Entries are only trusted within one source
  // generation.
  if (Src.Stats.GcRuns != SrcGcRuns) {
    Memo.clear();
    SrcGcRuns = Src.Stats.GcRuns;
  }
  return Bdd(&Dst, importRec(F.rawIndex()));
}

uint32_t BddImporter::importRec(uint32_t N) {
  if (N <= 1)
    return N; // Terminals share indices 0/1 in every manager.
  auto It = Memo.find(N);
  if (It != Memo.end())
    return It->second.Idx;
  const BddManager::Node &Node = Src.Nodes[N];
  // Post-order: children are memoized (hence externally referenced in the
  // destination) before the parent is built, so nothing here can be
  // collected mid-import — and makeNode never runs GC anyway.
  uint32_t Low = importRec(Node.Low);
  uint32_t High = importRec(Node.High);
  uint32_t Result = Dst.makeNode(Node.Var, Low, High);
  Memo.emplace(N, Bdd(&Dst, Result));
  ++NumTranslations;
  return Result;
}
