//===- device_driver.cpp - Driver-suite analysis walk-through -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section-6.1 scenario at example scale: generate a SLAM-driver-shaped
/// Boolean program (the kind predicate abstraction emits for device
/// drivers), print the fixed-point formula Getafix would hand to the
/// solver, then check a reachable and an unreachable target and show the
/// algorithm comparison the paper's Figure 2 makes.
///
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "reach/Baselines.h"
#include "reach/SeqReach.h"

#include <cstdio>

using namespace getafix;

int main() {
  for (bool Reachable : {true, false}) {
    gen::DriverParams Params;
    Params.NumProcs = 12;
    Params.NumGlobals = 5;
    Params.LocalsPerProc = 4;
    Params.StmtsPerProc = 10;
    Params.Reachable = Reachable;
    Params.Seed = 2026;
    gen::Workload W = gen::driverProgram(Params);

    DiagnosticEngine Diags;
    auto Prog = bp::parseProgram(W.Source, Diags);
    if (!Prog) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    bp::ProgramCfg Cfg = bp::buildCfg(*Prog);

    std::printf("=== %s (%u procedures, target %s) ===\n", W.Name.c_str(),
                unsigned(Prog->Procs.size()),
                Reachable ? "reachable" : "unreachable");
    for (auto Alg : {reach::SeqAlgorithm::EntryForward,
                     reach::SeqAlgorithm::EntryForwardSplit,
                     reach::SeqAlgorithm::EntryForwardOpt}) {
      reach::SeqOptions Opts;
      Opts.Alg = Alg;
      reach::SeqResult R =
          reach::checkReachabilityOfLabel(Cfg, W.TargetLabel, Opts);
      std::printf("  %-20s %-3s  %llu iterations  %zu BDD nodes  %.3fs\n",
                  reach::algorithmName(Alg), R.Reachable ? "YES" : "NO",
                  (unsigned long long)R.Iterations, R.SummaryNodes,
                  R.Seconds);
    }
    reach::BaselineResult M = reach::mopedPostStarLabel(Cfg, W.TargetLabel);
    std::printf("  %-20s %-3s  %llu rounds  %.3fs\n", "moped-poststar",
                M.Reachable ? "YES" : "NO",
                (unsigned long long)M.Iterations, M.Seconds);
    std::printf("\n");
  }

  // Show the paper's deliverable: the whole checker as one page of
  // formulae.
  gen::DriverParams Tiny;
  Tiny.NumProcs = 2;
  Tiny.StmtsPerProc = 3;
  gen::Workload W = gen::driverProgram(Tiny);
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(W.Source, Diags);
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);
  std::printf("=== the entry-forward algorithm, as handed to the solver "
              "===\n%s",
              reach::formulaText(Cfg, reach::SeqAlgorithm::EntryForwardSplit)
                  .c_str());
  return 0;
}
