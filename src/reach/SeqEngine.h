//===- SeqEngine.h - Shared sequential-engine internals ---------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header shared by SeqReach.cpp and Witness.cpp: the engine that
/// builds the fixed-point equation system for one sequential algorithm over
/// one program. Not part of the public API — include bp/Cfg.h and
/// reach/SeqReach.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_REACH_SEQENGINE_H
#define GETAFIX_REACH_SEQENGINE_H

#include "reach/SeqReach.h"
#include "symbolic/Encode.h"

#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace reach {

/// Builds the equation system for one algorithm over one program and runs
/// the solver. Witness extraction (Witness.cpp) reuses the construction to
/// re-solve with ring recording and query the input-relation BDDs.
class SeqEngine {
public:
  /// \p SplitSummaries selects the per-procedure compilation: one
  /// `Summary_<proc>` / `ReachEntry_<proc>` relation pair per call-graph
  /// SCC plus the `Hits` / `SummaryAll` roots, instead of the paper's
  /// single whole-program summary relation. The witness extractor always
  /// builds the monolithic EntryForward system (its ring walk is defined
  /// over one relation), hence the default.
  SeqEngine(const bp::ProgramCfg &Cfg, SeqAlgorithm Alg,
            bool SplitSummaries = false)
      : Cfg(Cfg), Alg(Alg), Split(SplitSummaries), Factory(Sys) {
    buildSystem();
  }

  SeqResult solve(unsigned ProcId, unsigned Pc, const SeqOptions &Opts);
  std::string text() const { return Sys.print(); }

  // Accessors for witness reconstruction -----------------------------------
  const fpc::System &system() const { return Sys; }
  const sym::VarFactory &factory() const { return Factory; }
  sym::ProgramEncoder &encoder() { return *Enc; }
  const sym::ConfVars &conf() const { return S; }
  fpc::RelId mainRel() const { return Main; }
  /// SummarySimple's reachable-entries relation (0 for other algorithms).
  fpc::RelId reachEntryRel() const { return ReachEntry; }
  SeqAlgorithm algorithm() const { return Alg; }
  const bp::ProgramCfg &cfg() const { return Cfg; }

  // Per-procedure split (SplitSummaries) ------------------------------------
  bool split() const { return Split; }
  /// Split mode: `Hits = ⋁_X Summary_X ∧ ReachEntry_X` — the verdict root.
  fpc::RelId hitsRel() const { return Hits; }
  /// Split mode: `SummaryAll = ⋁_X Summary_X` — the union the stats (and
  /// the differential tests' bit-identity check) report on.
  fpc::RelId summaryAllRel() const { return SummaryAll; }
  /// Every defined relation in callees-first (dependency-topological)
  /// order — the resume chain sessions and capped solves drive.
  const std::vector<fpc::RelId> &solveOrder() const { return Order; }
  /// See SeqResult::CondensationWidth / SummaryRelations.
  unsigned condensationWidth() const { return Width; }
  unsigned summaryRelations() const { return NumSummaryRels; }
  const bp::CallGraph &callGraph() const { return CG; }

  /// Scratch variables of the return clause (t.*, u.*) and the entry-
  /// discovery clause (d.*); witness queries rebind relation BDDs onto
  /// them so joint predecessor queries can be expressed directly.
  struct ScratchVars {
    fpc::VarId TPc, TCL, TCG;
    fpc::VarId UMod, UPcX, ULX, UGX, UECL;
    fpc::VarId DMod, DPc, DL, DEL, DEG;
  };
  ScratchVars scratch() const {
    return {RTPc,  RTCL, RTCG, RUMod, RUPcX, RULX, RUGX,
            RUECL, DMod, DPc,  DL,    DEL,   DEG};
  }

private:
  void buildSystem();
  void buildSplitSystem();
#ifndef NDEBUG
  /// Debug-only cross-check: the dependency analysis must classify each
  /// algorithm's disjuncts exactly as the clause builders intend
  /// (distributive image clauses, non-recursive seeds, and the deliberate
  /// non-monotonicity of EF-opt's Relevant).
  void verifyEquationPlan() const;
#endif
  sym::ConfVars addConf(const std::string &Prefix);

  // Clause builders shared by the algorithms. `Head` is the relation the
  // clause recurses on; `Mark` adds a leading fr-argument when >= 0.
  std::vector<fpc::Term> headArgs(const sym::ConfVars &C, int Mark) const;
  fpc::Formula *initClause(fpc::RelId Head, int Mark);
  fpc::Formula *internalClause(fpc::RelId Head, int Mark);
  fpc::Formula *entryDiscoveryClause(fpc::RelId Head, int Mark,
                                     bool RelevantGuard);
  /// The return clauses take the caller-side and callee-side summary
  /// heads separately: monolithic callers pass the same relation twice,
  /// the split passes `Summary_X` (caller group) and `Summary_Y` (callee
  /// group).
  fpc::Formula *returnClauseUnsplit(fpc::RelId CallerHead,
                                    fpc::RelId CalleeHead, int Mark);
  fpc::Formula *returnClauseSplit(fpc::RelId CallerHead,
                                  fpc::RelId CalleeHead, int Mark,
                                  bool RelevantGuard);
  fpc::Formula *allEntriesClause();
  /// `⋁_{p ∈ SCC Scc} s.mod = p` — pins a split relation to its group.
  fpc::Formula *modInGroup(unsigned Scc);

  const bp::ProgramCfg &Cfg;
  SeqAlgorithm Alg;
  bool Split = false;
  fpc::System Sys;
  sym::VarFactory Factory;
  sym::StateDomains Doms;
  fpc::DomainId ChoiceDom = 0;
  std::unique_ptr<sym::ProgramEncoder> Enc;

  sym::ConfVars S;                     ///< Head state tuple.
  fpc::VarId Fr = 0;                   ///< Mark bit (EntryForwardOpt).
  fpc::VarId RvMod = 0, RvPc = 0;      ///< Relevant's formals.

  // Quantified temporaries.
  fpc::VarId TPcF = 0, TLF = 0, TGF = 0;          ///< Internal clause.
  fpc::VarId DMod = 0, DPc = 0, DL = 0, DEL = 0,
             DEG = 0;                             ///< Entry discovery.
  fpc::VarId RTPc = 0, RTCL = 0, RTCG = 0;        ///< Return: caller t.
  fpc::VarId RUMod = 0, RUPcX = 0, RULX = 0, RUGX = 0,
             RUECL = 0;                           ///< Callee u.

  fpc::RelId Main = 0;     ///< The head relation of the chosen algorithm.
  fpc::RelId Relevant = 0; ///< EntryForwardOpt only.
  fpc::RelId New1 = 0, New2 = 0;
  fpc::RelId ReachEntry = 0; ///< SummarySimple only.

  // Split mode state.
  bp::CallGraph CG;
  std::vector<fpc::RelId> GroupSummary; ///< Summary_<proc>, by SCC index.
  std::vector<fpc::RelId> GroupEntry;   ///< ReachEntry_<proc>, by SCC index.
  fpc::RelId Hits = 0, SummaryAll = 0;
  std::vector<fpc::RelId> Order;
  unsigned Width = 0;
  unsigned NumSummaryRels = 1;
};

} // namespace reach
} // namespace getafix

#endif // GETAFIX_REACH_SEQENGINE_H
