//===- Workloads.cpp - Benchmark program generators -----------------------===//

#include "gen/Workloads.h"
#include "support/Rng.h"

#include <cassert>

using namespace getafix;
using namespace getafix::gen;

//===----------------------------------------------------------------------===//
// Regression suite
//===----------------------------------------------------------------------===//

std::vector<Workload> gen::regressionSuite() {
  std::vector<Workload> Suite;
  auto Add = [&](const char *Name, bool Reachable, std::string Source) {
    Workload W;
    W.Name = Name;
    W.Source = std::move(Source);
    W.ExpectReachable = Reachable;
    Suite.push_back(std::move(W));
  };

  Add("straightline-pos", true, R"(
decl g;
main() begin
  g := T;
  if (g) then ERR: skip; fi;
end
)");
  Add("straightline-neg", false, R"(
decl g;
main() begin
  g := T;
  if (!g) then ERR: skip; fi;
end
)");
  Add("nondet-pos", true, R"(
main() begin
  decl x;
  x := *;
  if (x) then ERR: skip; fi;
end
)");
  Add("and-or-neg", false, R"(
main() begin
  decl x, y;
  x := *; y := !x;
  if (x & y) then ERR: skip; fi;
end
)");
  Add("multi-assign-pos", true, R"(
decl a, b;
main() begin
  a, b := T, F;
  a, b := b, a;
  if (b & !a) then ERR: skip; fi;
end
)");
  Add("multi-assign-swap-neg", false, R"(
decl a, b;
main() begin
  a, b := *, *;
  assume(a & !b);
  a, b := b, a;
  if (a) then ERR: skip; fi;
end
)");
  Add("call-params-pos", true, R"(
main() begin
  decl r;
  r := both(T, T);
  if (r) then ERR: skip; fi;
end
both(x, y) begin
  return x & y;
end
)");
  Add("call-params-neg", false, R"(
main() begin
  decl r;
  r := both(T, F);
  if (r) then ERR: skip; fi;
end
both(x, y) begin
  return x & y;
end
)");
  Add("multi-return-pos", true, R"(
main() begin
  decl p, q;
  p, q := split(T);
  if (p & !q) then ERR: skip; fi;
end
split(x) begin
  return x, !x;
end
)");
  Add("global-side-effect-pos", true, R"(
decl g;
main() begin
  g := F;
  call set();
  if (g) then ERR: skip; fi;
end
set() begin
  g := T;
end
)");
  Add("recursion-parity-pos", true, R"(
main() begin
  decl r;
  r := flipN(T, T, T);
  if (r) then ERR: skip; fi;
end
flipN(b2, b1, b0) begin
  decl r;
  if (!b2 & !b1 & !b0) then
    return T;
  fi;
  if (b0) then
    r := flipN(b2, b1, F);
    return r;
  fi;
  if (b1) then
    r := flipN(b2, F, T);
    return r;
  fi;
  r := flipN(F, T, T);
  return r;
end
)");
  Add("recursion-unreachable-neg", false, R"(
decl g;
main() begin
  g := F;
  call down(T, T);
  if (g) then ERR: skip; fi;
end
down(b1, b0) begin
  if (b0) then
    call down(b1, F);
    return;
  fi;
  if (b1) then
    call down(F, T);
    return;
  fi;
end
)");
  Add("while-loop-pos", true, R"(
decl g;
main() begin
  decl x;
  g := F; x := *;
  while (!g) do
    g := x;
    x := T;
  od;
  ERR: skip;
end
)");
  Add("while-false-body-neg", false, R"(
main() begin
  while (F) do
    ERR: skip;
  od;
end
)");
  Add("assume-blocks-neg", false, R"(
main() begin
  decl x;
  x := *;
  assume(x & !x);
  ERR: skip;
end
)");
  Add("goto-pos", true, R"(
main() begin
  decl x;
  x := T;
  goto Over;
  x := F;
Over:
  if (x) then ERR: skip; fi;
end
)");
  Add("goto-skips-neg", false, R"(
decl g;
main() begin
  g := F;
  goto Over;
  g := T;
Over:
  if (g) then ERR: skip; fi;
end
)");
  Add("nested-calls-pos", true, R"(
decl g;
main() begin
  g := F;
  call a();
  if (g) then ERR: skip; fi;
end
a() begin
  call b();
end
b() begin
  call c();
end
c() begin
  g := T;
end
)");
  Add("callee-locals-fresh-neg", false, R"(
main() begin
  decl r;
  r := probe();
  if (r) then ERR: skip; fi;
end
probe() begin
  decl x;
  x := F;
  return x;
end
)");
  Add("mutual-recursion-pos", true, R"(
main() begin
  decl r;
  r := even(T, F);
  if (r) then ERR: skip; fi;
end
even(b1, b0) begin
  decl r;
  if (!b1 & !b0) then return T; fi;
  r := odd(b1 & b0, !b0);
  return r;
end
odd(b1, b0) begin
  decl r;
  if (!b1 & !b0) then return F; fi;
  r := even(b1 & b0, !b0);
  return r;
end
)");
  Add("dead-branch-after-return-neg", false, R"(
main() begin
  decl x;
  x := *;
  call stop(x);
end
stop(x) begin
  return;
  ERR: skip;
end
)");
  Add("implicit-return-nondet-pos", true, R"(
main() begin
  decl r;
  r := maybe();
  if (r) then ERR: skip; fi;
end
maybe() begin
  decl unused;
  unused := T;
  if (*) then
    return F;
  fi;
end
)");
  return Suite;
}

//===----------------------------------------------------------------------===//
// SLAM-driver-shaped programs
//===----------------------------------------------------------------------===//

namespace {

/// A random boolean expression over the given variable names.
std::string randomExpr(Rng &R, const std::vector<std::string> &Vars,
                       unsigned Depth, bool AllowNondet = true) {
  if (Depth == 0 || R.chance(2, 5)) {
    // Nondeterministic leaves are disallowed where an expression is
    // duplicated textually (the driver generator's lock-step invariant
    // update): two `*` occurrences draw independent values.
    if (R.chance(1, 12) && AllowNondet)
      return "*";
    if (R.chance(1, 12))
      return R.flip() ? "T" : "F";
    std::string V = Vars[R.below(Vars.size())];
    return R.chance(1, 3) ? "!" + V : V;
  }
  std::string L = randomExpr(R, Vars, Depth - 1, AllowNondet);
  std::string Rhs = randomExpr(R, Vars, Depth - 1, AllowNondet);
  return "(" + L + (R.flip() ? " & " : " | ") + Rhs + ")";
}

} // namespace

Workload gen::driverProgram(const DriverParams &P) {
  Rng R(P.Seed * 2654435761u + P.NumProcs);
  std::string Src;

  // Globals: g0.. plus the invariant pair used by negative targets.
  std::vector<std::string> Globals;
  for (unsigned I = 0; I < P.NumGlobals; ++I)
    Globals.push_back("g" + std::to_string(I));
  Globals.push_back("invA");
  Globals.push_back("invB");
  Src += "decl ";
  for (size_t I = 0; I < Globals.size(); ++I)
    Src += (I ? ", " : "") + Globals[I];
  Src += ";\n";

  auto ProcName = [](unsigned I) { return "proc" + std::to_string(I); };

  // Procedures proc1..procN-1 form an acyclic call structure (procI calls
  // only procJ with J > I), driver-style: status flags, guarded updates.
  for (unsigned I = 1; I <= P.NumProcs; ++I) {
    std::vector<std::string> Vars = Globals;
    Vars.pop_back(); // The invariant pair is only written in lock-step.
    Vars.pop_back();
    Src += ProcName(I) + "(arg) begin\n";
    std::vector<std::string> Locals{"arg"};
    for (unsigned L = 0; L + 1 < P.LocalsPerProc; ++L) {
      std::string Name = "l" + std::to_string(L);
      Src += "  decl " + Name + ";\n";
      Locals.push_back(Name);
    }
    for (const std::string &L : Locals)
      Vars.push_back(L);

    for (unsigned S = 0; S < P.StmtsPerProc; ++S) {
      unsigned Kind = unsigned(R.below(10));
      if (Kind < 4) {
        // Guarded assignment, the dominant driver pattern.
        Src += "  if (" + randomExpr(R, Vars, 2) + ") then\n";
        Src += "    " + Vars[R.below(Vars.size())] +
               " := " + randomExpr(R, Vars, 2) + ";\n";
        Src += "  fi;\n";
      } else if (Kind < 7) {
        Src += "  " + Vars[R.below(Vars.size())] +
               " := " + randomExpr(R, Vars, 2) + ";\n";
      } else if (Kind < 8) {
        // Lock-step invariant update (keeps invA == invB).
        std::string E = randomExpr(R, Vars, 2, /*AllowNondet=*/false);
        Src += "  invA, invB := " + E + ", " + E + ";\n";
      } else if (I < P.NumProcs) {
        // Call a later procedure.
        unsigned Callee = unsigned(R.range(I + 1, P.NumProcs));
        Src += "  " + Locals[R.below(Locals.size())] + " := " +
               ProcName(Callee) + "(" + randomExpr(R, Vars, 1) + ");\n";
      } else {
        Src += "  skip;\n";
      }
    }
    Src += "  return " + randomExpr(R, Vars, 1) + ";\n";
    Src += "end\n";
  }

  // main: initialize the invariant pair, drive the call chain, then the
  // target: directly reachable (positive) or behind the invariant
  // violation (negative).
  Src += "main() begin\n  decl status;\n";
  Src += "  invA, invB := F, F;\n";
  for (unsigned I = 0; I < 3 && I < P.NumProcs; ++I)
    Src += "  status := " + ProcName(1 + I) + "(status);\n";
  if (P.Reachable)
    Src += "  if (status | !status) then\n    ERR: skip;\n  fi;\n";
  else
    Src += "  if (invA & !invB) then\n    ERR: skip;\n  fi;\n";
  Src += "end\n";

  Workload W;
  W.Name = std::string("driver-") + (P.Reachable ? "pos" : "neg") + "-p" +
           std::to_string(P.NumProcs) + "-s" + std::to_string(P.Seed);
  W.Source = std::move(Src);
  W.ExpectReachable = P.Reachable;
  return W;
}

//===----------------------------------------------------------------------===//
// TERMINATOR-shaped programs
//===----------------------------------------------------------------------===//

Workload gen::terminatorProgram(const TerminatorParams &P) {
  Rng R(P.Seed * 0x9e3779b9u + P.CounterBits);
  std::string Src;

  std::string Decl = "decl par";
  for (unsigned I = 0; I < P.CounterBits; ++I)
    Decl += ", c" + std::to_string(I);
  for (unsigned I = 0; I < P.NumDeadVars; ++I)
    Decl += ", d" + std::to_string(I);
  Src += Decl + ";\n";

  auto AllOnes = [&] {
    std::string E;
    for (unsigned I = 0; I < P.CounterBits; ++I)
      E += (I ? " & c" : "c") + std::to_string(I);
    return E;
  };

  // Ripple-carry increment plus a parity witness.
  Src += "inc() begin\n";
  Src += "  par := !par;\n";
  std::string Body;
  for (unsigned I = P.CounterBits; I-- > 0;) {
    std::string Bit = "c" + std::to_string(I);
    std::string Inner = I + 1 < P.CounterBits ? Body : std::string("skip;\n");
    Body = "if (!" + Bit + ") then\n" + Bit + " := T;\nelse\n" + Bit +
           " := F;\n" + Inner + "fi;\n";
  }
  Src += Body;
  Src += "end\n";

  // One procedure per dead-variable phase, TERMINATOR-style: real programs
  // kill their dead state in many small helpers, so the call graph has
  // `2 + NumDeadVars` SCCs (inc, the phases, main) and the per-procedure
  // summary split gets real scheduler width on this workload. All state is
  // global, so hoisting the phase bodies out of main's loop preserves the
  // semantics statement-for-statement.
  for (unsigned I = 0; I < P.NumDeadVars; ++I) {
    std::string D = "d" + std::to_string(I);
    std::string CBit = "c" + std::to_string(R.below(P.CounterBits));
    std::string CBit2 = "c" + std::to_string(R.below(P.CounterBits));
    Src += "phase" + std::to_string(I) + "() begin\n";
    Src += "  " + D + " := " + CBit + " & !" + CBit2 + " | par;\n";
    if (P.Style == DeadVarStyle::Iterative) {
      // `dead d` modelled by iterated conditional nondet assignment.
      Src += "  if (*) then\n    " + D + " := T;\n  else\n    " + D +
             " := F;\n  fi;\n";
    } else if (P.Style == DeadVarStyle::Schoose) {
      Src += "  " + D + " := *;\n"; // schoose-style kill.
    } else {
      Src += "  dead " + D + ";\n"; // Native dead statement.
    }
    Src += "end\n";
  }

  Src += "main() begin\n";
  // Zero the counter and parity.
  Src += "  par := F;\n";
  for (unsigned I = 0; I < P.CounterBits; ++I)
    Src += "  c" + std::to_string(I) + " := F;\n";
  // Walk the counter to all-ones; each phase procedure correlates its dead
  // variable with counter bits and then kills it in the style under test.
  Src += "  while (!(" + AllOnes() + ")) do\n";
  Src += "    call inc();\n";
  for (unsigned I = 0; I < P.NumDeadVars; ++I)
    Src += "    call phase" + std::to_string(I) + "();\n";
  Src += "  od;\n";
  // Serving workloads: extra per-program targets after the loop, half
  // trivially reachable (tautology guard), half not (contradiction) —
  // all answerable from the one fixpoint the counter loop forces.
  for (unsigned J = 0; J < P.LabeledCheckpoints; ++J) {
    std::string Id = std::to_string(J);
    Src += "  if (par | !par) then\n    CP" + Id + ": skip;\n  fi;\n";
    Src += "  if (par & !par) then\n    DEAD" + Id + ": skip;\n  fi;\n";
  }
  // 2^B - 1 increments happened, so parity must be odd; the negative
  // target sits behind the (provably false) even-parity claim.
  if (P.Reachable)
    Src += "  if (par) then\n    ERR: skip;\n  fi;\n";
  else
    Src += "  if (!par) then\n    ERR: skip;\n  fi;\n";
  Src += "end\n";

  Workload W;
  W.Name = std::string("terminator-") +
           (P.Style == DeadVarStyle::Iterative
                ? "iter"
                : P.Style == DeadVarStyle::Schoose ? "schoose" : "dead") +
           "-b" +
           std::to_string(P.CounterBits) + (P.Reachable ? "-pos" : "-neg");
  W.Source = std::move(Src);
  W.ExpectReachable = P.Reachable;
  return W;
}

//===----------------------------------------------------------------------===//
// Bluetooth driver model (Section 6.2 / Figure 3)
//===----------------------------------------------------------------------===//

std::string gen::bluetoothModel(unsigned NumAdders, unsigned NumStoppers,
                                bool Labeled) {
  // Shared state: init latch, 2-bit pendingIo counter, stopping flag,
  // stopping event, driver-stopped flag, plus two scratch flags to match
  // the published model's 8 shared globals.
  std::string Src = "shared decl ini, p0, p1, stopF, stopE, stopped, "
                    "scr1, scr2;\n";

  // Common procedure bodies. pendingIo starts at 1 (the driver's own
  // reference); whichever thread runs first installs it. The install is a
  // single simultaneous assignment (p := ini ? p : 1) so that a context
  // switch cannot land between the test and the write — a non-atomic init
  // would reintroduce a reset race that breaks the Figure-3 pattern.
  const char *InitBlock =
      "  ini, p0, p1 := T, (ini & p0) | !ini, ini & p1;\n";
  // The increment path checks the stopping flag only *after* bumping the
  // counter, and its failure path decrements — while the caller's shared
  // exit path decrements again. That reference miscount is the bug that a
  // second adder exposes (Figure 3's two-adders row). The raw counter
  // bump/drop live in their own helpers (pendInc / pendDec), like the
  // published driver's HBUSY manipulation routines: every thread's call
  // graph then has five SCCs (main, ioInc, ioDec, pendInc, pendDec), which
  // gives the per-procedure summary split real scheduler width on this
  // model. All state touched is shared, so the factoring only adds
  // call/return sequencing between the same shared accesses — k-bounded
  // reachability is unchanged for every context bound.
  const char *IoProcs = R"(ioInc() begin
  call pendInc();
  if (stopF) then
    call ioDec();
    return F;
  fi;
  return T;
end
ioDec() begin
  call pendDec();
  if (!p0 & !p1) then
    stopE := T;
  fi;
end
pendInc() begin
  if (!p0) then
    p0 := T;
  else
    if (!p1) then
      p0, p1 := F, T;
    fi;
  fi;
end
pendDec() begin
  if (p0) then
    p0 := F;
  else
    if (p1) then
      p0, p1 := T, F;
    fi;
  fi;
end
)";

  for (unsigned I = 0; I < NumAdders; ++I) {
    std::string Id = std::to_string(I);
    Src += "thread\n";
    Src += "main() begin\n  decl status;\n";
    Src += InitBlock;
    if (Labeled)
      Src += "  INIT_A" + Id + ": skip;\n";
    Src += "  status := ioInc();\n"
           "  if (status) then\n";
    if (Labeled)
      Src += "    OK_A" + Id + ": skip;\n";
    Src += "    if (stopped) then\n"
           "      ERR: skip;\n"
           "    fi;\n"
           "  fi;\n"
           "  call ioDec();\n";
    if (Labeled) {
      Src += "  DEC_A" + Id + ": skip;\n";
      Src += "  if (scr1 & !scr1) then\n    DEAD_A" + Id + ": skip;\n  fi;\n";
    }
    Src += "end\n";
    Src += IoProcs;
    Src += "end\n";
  }
  for (unsigned I = 0; I < NumStoppers; ++I) {
    std::string Id = std::to_string(I);
    Src += "thread\n";
    Src += "main() begin\n";
    Src += InitBlock;
    Src += "  stopF := T;\n";
    if (Labeled)
      Src += "  STOP_S" + Id + ": skip;\n";
    Src += "  call ioDec();\n"
           "  assume(stopE);\n"
           "  stopped := T;\n";
    if (Labeled) {
      Src += "  DONE_S" + Id + ": skip;\n";
      Src += "  if (scr2 & !scr2) then\n    DEAD_S" + Id + ": skip;\n  fi;\n";
    }
    Src += "end\n";
    Src += IoProcs;
    Src += "end\n";
  }
  return Src;
}

//===----------------------------------------------------------------------===//
// Multi-SCC fixed-point systems (parallel-scheduler workloads)
//===----------------------------------------------------------------------===//

std::string gen::multiSccFixpointSystem(const MultiSccParams &P) {
  assert(P.Relations >= 1 && P.Bits >= 2 && P.Bits <= 16 &&
         "unreasonable multi-SCC shape");
  Rng R(P.Seed * 0x9e3779b97f4a7c15ull + P.Relations * 131u + P.Bits);
  uint64_t N = uint64_t(1) << P.Bits;

  std::string Src = "domain D [" + std::to_string(N) + "];\n";
  std::string RootDef;

  for (unsigned I = 0; I < P.Relations; ++I) {
    std::string Id = std::to_string(I);
    if (P.Style == MultiSccStyle::Graph) {
      // A stride ring (odd stride generates all of Z_N, so the diameter
      // is N and reachability needs many rounds) plus random chords that
      // fatten the reachable sets mid-solve.
      uint64_t Stride = R.below(N / 2) * 2 + 1;
      Src += "input bool E" + Id + "(D a, D b);\n";
      for (uint64_t V = 0; V < N; ++V)
        Src += "fact E" + Id + "(" + std::to_string(V) + ", " +
               std::to_string((V + Stride) % N) + ");\n";
      for (unsigned C = 0; C < P.ExtraEdges; ++C) {
        // Two draws in one expression would leave the (src, dst) order
        // to the compiler's unspecified evaluation order; determinism
        // across toolchains needs sequenced statements.
        uint64_t ChordSrc = R.below(N);
        uint64_t ChordDst = R.below(N);
        Src += "fact E" + Id + "(" + std::to_string(ChordSrc) + ", " +
               std::to_string(ChordDst) + ");\n";
      }
      Src += "mu bool R" + Id + "(D a, D b) := a = b | (exists D c . (R" +
             Id + "(a, c) & E" + Id + "(c, b)));\n";
    } else {
      // Lockstep counter pair: two private odd strides walked together
      // from (0, 0). Odd strides have order N in Z_N, so the walk visits
      // N distinct pairs before closing — terminator-style long loops.
      uint64_t SA = R.below(N / 2) * 2 + 1;
      uint64_t SB = R.below(N / 2) * 2 + 1;
      Src += "input bool A" + Id + "(D a, D b);\n";
      Src += "input bool B" + Id + "(D a, D b);\n";
      for (uint64_t V = 0; V < N; ++V) {
        Src += "fact A" + Id + "(" + std::to_string(V) + ", " +
               std::to_string((V + SA) % N) + ");\n";
        Src += "fact B" + Id + "(" + std::to_string(V) + ", " +
               std::to_string((V + SB) % N) + ");\n";
      }
      Src += "mu bool R" + Id +
             "(D a, D b) := (a = 0 & b = 0) | (exists D c . exists D d . "
             "(R" +
             Id + "(c, d) & A" + Id + "(c, a) & B" + Id + "(d, b)));\n";
    }
    RootDef += (I ? " | R" : "R") + Id + "(a, b)";
  }
  Src += "mu bool Root(D a, D b) := " + RootDef + ";\n";
  return Src;
}
