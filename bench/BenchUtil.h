//===- BenchUtil.h - Shared helpers for the table benchmarks ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the Figure-2/Figure-3 reproduction binaries: parsing
/// workloads, running every engine on a label query, and printing aligned
/// table rows. (The micro-benchmarks use google-benchmark; the paper-table
/// binaries print rows that mirror the paper's layout instead, which is the
/// deliverable.)
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BENCH_BENCHUTIL_H
#define GETAFIX_BENCH_BENCHUTIL_H

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "reach/Baselines.h"
#include "reach/SeqReach.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace getafix {
namespace bench {

struct ParsedProgram {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg;
};

inline ParsedProgram parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedProgram P;
  P.Prog = bp::parseProgram(Src, Diags);
  if (!P.Prog) {
    std::fprintf(stderr, "benchmark workload failed to parse:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  P.Cfg = bp::buildCfg(*P.Prog);
  return P;
}

/// Results of one engine on one workload.
struct EngineRow {
  bool Reachable = false;
  double Seconds = 0.0;
  size_t Nodes = 0;
  uint64_t Iterations = 0;
};

inline EngineRow runAlgorithm(const bp::ProgramCfg &Cfg,
                              const std::string &Label,
                              reach::SeqAlgorithm Alg,
                              bool EarlyStop = true) {
  reach::SeqOptions Opts;
  Opts.Alg = Alg;
  Opts.EarlyStop = EarlyStop;
  reach::SeqResult R = reach::checkReachabilityOfLabel(Cfg, Label, Opts);
  return EngineRow{R.Reachable, R.Seconds, R.SummaryNodes, R.Iterations};
}

inline EngineRow runMoped(const bp::ProgramCfg &Cfg,
                          const std::string &Label) {
  reach::BaselineResult R = reach::mopedPostStarLabel(Cfg, Label);
  return EngineRow{R.Reachable, R.Seconds, R.SummaryNodes, R.Iterations};
}

inline EngineRow runBebop(const bp::ProgramCfg &Cfg,
                          const std::string &Label) {
  reach::BaselineResult R = reach::bebopTabulateLabel(Cfg, Label);
  return EngineRow{R.Reachable, R.Seconds, R.SummaryNodes, R.Iterations};
}

/// Counts non-blank source lines (the paper's LOC column).
inline unsigned countLoc(const std::string &Src) {
  unsigned Loc = 0;
  bool Blank = true;
  for (char C : Src) {
    if (C == '\n') {
      Loc += !Blank;
      Blank = true;
    } else if (!isspace(static_cast<unsigned char>(C))) {
      Blank = false;
    }
  }
  return Loc + !Blank;
}

} // namespace bench
} // namespace getafix

#endif // GETAFIX_BENCH_BENCHUTIL_H
