//===- ConcReach.h - Bounded context-switching reachability -----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section-5 fixed-point formulation of k-bounded
/// context-switching reachability for concurrent recursive Boolean
/// programs. The relation
///
///   Reach(u, v, ecs, cs, g_1..g_k, t_0..t_k)
///
/// is a *per-thread summary* tagged with the context-switch count `cs`, the
/// count at the current procedure's entry `ecs`, the shared-global
/// valuation g_i recorded at each switch, and the thread schedule t_i. The
/// salient feature reproduced here is the tuple economy: only k+1 copies of
/// the shared globals appear (g_1..g_k plus v's globals), versus the up-to-
/// 3k copies of the Lal–Reps formulation the paper compares against.
///
/// The six clauses (init, internal, call, return, first-switch,
/// switch-back) follow the paper exactly, instantiated per context index
/// (the calculus has no vector indexing, so `t_cs` becomes a disjunction
/// over cs = 0..k — the same expansion a MUCKE encoding performs).
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_CONCURRENT_CONCREACH_H
#define GETAFIX_CONCURRENT_CONCREACH_H

#include "bdd/Bdd.h"
#include "bp/Cfg.h"
#include "fpcalc/Calculus.h"
#include "support/ResourceGovernor.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace conc {

struct ConcOptions {
  unsigned MaxContextSwitches = 2; ///< The bound k.
  /// Fixes the schedule to round-robin order (t_i = i mod n) — the setting
  /// of the paper's Section-5 closing remark and of Lal–Reps [12]. k
  /// context switches then cover ceil((k+1)/n) rounds. The schedule
  /// variables become constants, which is exactly the space economy the
  /// remark's 2k-copy formulation exploits; reachability within the
  /// round-robin schedule is unchanged.
  bool RoundRobin = false;
  bool EarlyStop = true;
  /// Fixed-point iteration scheme; the Section-5 Reach system is monotone
  /// and fully distributive, so the semi-naive default joins only the
  /// per-round frontier through every clause.
  fpc::EvalStrategy Strategy = fpc::EvalStrategy::SemiNaive;
  /// Cap on outer fixpoint rounds of Reach; 0 = unlimited.
  uint64_t MaxIterations = 0;
  unsigned CacheBits = 18;
  size_t GcThreshold = 1u << 22;
  /// Coudert–Madre care-set minimization of relational-product operands
  /// in narrow delta rounds: off, `constrain`, or `restrict`
  /// (bit-identical results under all three; ablation knob).
  fpc::CofactorMode FrontierCofactor = fpc::CofactorMode::Constrain;
  /// Session mode (`ConcSession`): reuse rounds solved by earlier
  /// queries. Off = every query re-solves from scratch (ablation /
  /// differential baseline). One-shot solves ignore this.
  bool ReuseSolvedState = true;
  /// Worker threads for the evaluator's parallel SCC scheduling and
  /// intra-SCC disjunct parallelism (1 = sequential). Results are
  /// bit-identical at any setting.
  unsigned Threads = 1;
  /// Cost gate of the intra-SCC disjunct parallelism: a semi-naive round
  /// fans out only when the previous round allocated at least this many
  /// BDD nodes. 0 = auto (`cacheSlots()/2`); results are bit-identical.
  uint64_t DisjunctParallelThreshold = 0;
  /// Session ring retention (see fpc::RingLog): recorded rounds are
  /// stored as exact deltas with a full keyframe every this many rounds.
  /// 1 keeps every round full (the pre-diet baseline); 0 keeps only the
  /// first round full. Purely a memory knob — results are bit-identical
  /// at any value.
  uint64_t RingKeyframeInterval = 8;
  /// Resource governor for this solve attempt (deadline / node budget /
  /// cancel flag; see support/ResourceGovernor.h). Not owned; governors
  /// are one-shot — install a fresh one per attempt. A tripped limit is
  /// reported in `ConcResult::Limit` with the state stopped at a
  /// completed round boundary, so a retry resumes the deterministic chain
  /// bit-identically. Null = ungoverned.
  support::ResourceGovernor *Governor = nullptr;
};

struct ConcResult {
  bool Reachable = false;
  bool TargetFound = true;
  /// Which governor limit stopped the solve (`None` = ran to completion).
  /// When set, `Reachable` and the iteration counts reflect only the
  /// completed rounds; other counters still cover the work done.
  support::ResourceLimit Limit = support::ResourceLimit::None;
  /// Stopped at ConcOptions::MaxIterations before converging.
  bool HitIterationLimit = false;
  uint64_t Iterations = 0;
  uint64_t DeltaRounds = 0; ///< Rounds Reach ran in delta mode.
  size_t ReachNodes = 0;    ///< Final BDD size of the Reach relation.
  size_t PeakLiveNodes = 0; ///< Peak BDD nodes in the manager.
  uint64_t BddNodesCreated = 0; ///< Total BDD nodes allocated.
  uint64_t BddCacheLookups = 0; ///< Computed-cache probes.
  uint64_t BddCacheHits = 0;    ///< Computed-cache hits.
  /// Full BDD-manager counter snapshot (per-op split, GC, peak nodes).
  BddStats Bdd;
  double ReachStates = 0.0; ///< Sat-count of Reach over its tuple bits
                            ///< (the "reachable set size" of Figure 3).
  double Seconds = 0.0;
  /// Per-relation evaluator statistics, keyed by relation name.
  std::map<std::string, fpc::RelStats> Relations;
  /// Narrow-round generalized-cofactor counters (restrict-vs-constrain
  /// A/B).
  fpc::CofactorStats Cofactor;
  /// Session mode only: fixpoint rounds served from state persisted by
  /// earlier queries, vs rounds newly evaluated for this query.
  uint64_t SummariesReused = 0;
  uint64_t SummariesRecomputed = 0;
  /// Dependency SCCs solved on the worker pool (`Threads > 1` only).
  uint64_t SccsSolvedParallel = 0;
  /// Width of the equation system's dependency condensation. The
  /// concurrent encoding cannot adopt the sequential engines' per-procedure
  /// summary split — its context-switch clauses read every thread's
  /// summary, so all Summary/Reach relations form one dependency SCC and
  /// the split would not decompose it. (A genuine widening would need a
  /// per-(thread, context) relation family; the seam is the clause builder
  /// in ConcReach.cpp.) Reported honestly from the dependency analysis.
  unsigned CondensationWidth = 0;
  /// Always 1: one whole-program summary relation per thread group.
  unsigned SummaryRelations = 1;
  /// Intra-SCC parallelism (`Threads > 1` only): semi-naive rounds whose
  /// distributive products ran on the pool, the products dispatched, and
  /// the nodes the cached importers translated across managers.
  uint64_t RoundsParallel = 0;
  uint64_t DisjunctsParallel = 0;
  uint64_t ImportedNodes = 0;
};

/// Is (Thread, ProcId, Pc) reachable within k context switches?
ConcResult checkConcReachability(const bp::ConcurrentProgram &Conc,
                                 const std::vector<bp::ProgramCfg> &Cfgs,
                                 unsigned Thread, unsigned ProcId,
                                 unsigned Pc, const ConcOptions &Opts);

/// Label-based query; searches all threads for the label.
ConcResult checkConcReachabilityOfLabel(
    const bp::ConcurrentProgram &Conc,
    const std::vector<bp::ProgramCfg> &Cfgs, const std::string &Label,
    const ConcOptions &Opts);

/// Builds one ProgramCfg per thread.
std::vector<bp::ProgramCfg> buildThreadCfgs(const bp::ConcurrentProgram &C);

/// Cross-query incremental solving of the Section-5 Reach fixpoint over
/// one concurrent program: the equation system, BDD manager, and the
/// rounds computed so far persist across queries. Each `solve` replays the
/// recorded rounds against the new target (the early-stop target only
/// decides when iteration stops; round values are target-independent) and
/// resumes live iteration only when the answer needs rounds beyond the
/// recorded state — so verdicts, iteration counts, and reachable-set
/// statistics are bit-identical to fresh `checkConcReachability` calls.
/// The caller keeps \p Conc and \p Cfgs alive for the session's lifetime;
/// options (including the context bound) are fixed at construction.
class ConcSession {
public:
  ConcSession(const bp::ConcurrentProgram &Conc,
              const std::vector<bp::ProgramCfg> &Cfgs,
              const ConcOptions &Opts);
  ~ConcSession();
  ConcSession(const ConcSession &) = delete;
  ConcSession &operator=(const ConcSession &) = delete;

  ConcResult solve(unsigned Thread, unsigned ProcId, unsigned Pc);
  /// Label query; searches all threads. `TargetFound` false when absent.
  ConcResult solveLabel(const std::string &Label);

  /// Would a solve of this target be answered entirely from already-solved
  /// rounds? (Non-const: probing encodes the target over the session's
  /// manager.)
  bool answersFromState(unsigned Thread, unsigned ProcId, unsigned Pc);

  /// Installs (or clears, with null) a per-attempt resource governor: the
  /// next solve runs under it and stops at a completed round boundary
  /// when a limit trips, leaving the session valid — a retry under a
  /// fresh (or no) governor resumes the deterministic chain
  /// bit-identically. The caller owns the governor and must keep it alive
  /// across the governed solve.
  void setGovernor(support::ResourceGovernor *G);

  /// Drops the BDD computed cache; all solved state is kept (performance
  /// valve, bit-identical results).
  void clearComputedCache();

  /// Session memory introspection (see `reach::SeqSession` for the exact
  /// semantics): reachable-only live/peak BDD node counts across the
  /// session's managers (uncollected garbage excluded; peak sampled at
  /// query boundaries) and a bytes estimate of resident state, with a
  /// cleared and since-untouched computed cache discounted. Feeds the
  /// query server's session-pool memory budget.
  size_t liveNodes() const;
  size_t peakLiveNodes() const;
  size_t memoryFootprint() const;

  const ConcOptions &options() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The context-switch bound covering \p Rounds full round-robin rounds of
/// \p Threads threads (each round runs every thread once, in order).
/// Zero arguments are clamped to one — defined behavior in every build
/// mode, where `0 * N - 1` used to underflow to ~4 billion context
/// switches under NDEBUG.
inline unsigned contextSwitchesForRounds(unsigned Rounds, unsigned Threads) {
  if (Rounds < 1)
    Rounds = 1;
  if (Threads < 1)
    Threads = 1;
  return Rounds * Threads - 1;
}

} // namespace conc
} // namespace getafix

#endif // GETAFIX_CONCURRENT_CONCREACH_H
