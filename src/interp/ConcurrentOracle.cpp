//===- ConcurrentOracle.cpp - Explicit bounded-context search -------------===//

#include "interp/ConcurrentOracle.h"
#include "interp/Eval.h"

#include <deque>
#include <unordered_set>

using namespace getafix;
using namespace getafix::interp;
using namespace getafix::bp;

namespace {

struct Frame {
  uint32_t Proc;
  uint32_t Pc;
  uint32_t Locals;

  bool operator==(const Frame &O) const {
    return Proc == O.Proc && Pc == O.Pc && Locals == O.Locals;
  }
};

struct ThreadState {
  bool Started = false;
  std::vector<Frame> Stack; ///< Empty after main returns (finished).

  bool finished() const { return Started && Stack.empty(); }
};

struct Config {
  uint32_t Switches = 0;
  uint32_t Active = 0;
  uint32_t Shared = 0;
  std::vector<ThreadState> Threads;
};

struct ConfigKey {
  std::vector<uint32_t> Words;

  bool operator==(const ConfigKey &O) const { return Words == O.Words; }
};

struct ConfigKeyHash {
  size_t operator()(const ConfigKey &K) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint32_t W : K.Words) {
      H ^= W;
      H *= 0x100000001b3ull;
    }
    return size_t(H);
  }
};

ConfigKey serialize(const Config &C) {
  ConfigKey Key;
  Key.Words.push_back(C.Switches);
  Key.Words.push_back(C.Active);
  Key.Words.push_back(C.Shared);
  for (const ThreadState &T : C.Threads) {
    Key.Words.push_back(T.Started ? 1 : 0);
    Key.Words.push_back(uint32_t(T.Stack.size()));
    for (const Frame &F : T.Stack) {
      Key.Words.push_back(F.Proc);
      Key.Words.push_back(F.Pc);
      Key.Words.push_back(F.Locals);
    }
  }
  return Key;
}

class Searcher {
public:
  Searcher(const ConcurrentProgram &Conc, const std::vector<ProgramCfg> &Cfgs,
           const ConcurrentQuery &Query, const ConcurrentBounds &Bounds)
      : Conc(Conc), Cfgs(Cfgs), Query(Query), Bounds(Bounds) {}

  ConcurrentOracleResult run();

private:
  void enqueue(Config C);
  void expand(const Config &C);
  void stepActive(const Config &C);
  void switchThread(const Config &C);
  void startThreadConfigs(const Config &C, unsigned Thread);

  const ConcurrentProgram &Conc;
  const std::vector<ProgramCfg> &Cfgs;
  ConcurrentQuery Query;
  ConcurrentBounds Bounds;

  std::deque<Config> Worklist;
  std::unordered_set<ConfigKey, ConfigKeyHash> Seen;
  bool Found = false;
  bool BoundHit = false;
};

} // namespace

void Searcher::enqueue(Config C) {
  if (Found)
    return;
  if (Seen.size() >= Bounds.MaxConfigs) {
    BoundHit = true;
    return;
  }
  ConfigKey Key = serialize(C);
  if (!Seen.insert(std::move(Key)).second)
    return;

  const ThreadState &Active = C.Threads[C.Active];
  if (C.Active == Query.Thread && !Active.Stack.empty()) {
    const Frame &Top = Active.Stack.back();
    if (Top.Proc == Query.ProcId && Top.Pc == Query.Pc) {
      Found = true;
      return;
    }
  }
  Worklist.push_back(std::move(C));
}

void Searcher::startThreadConfigs(const Config &C, unsigned Thread) {
  const Program &Prog = *Conc.Threads[Thread];
  const Proc &Main = Prog.main();
  unsigned LocalBits = Main.numLocalSlots();
  assert(LocalBits <= 16 && "too many locals for the explicit oracle");
  for (uint32_t L = 0; L < (1u << LocalBits); ++L) {
    Config Next = C;
    Next.Switches = C.Switches + 1;
    Next.Active = Thread;
    Next.Threads[Thread].Started = true;
    Next.Threads[Thread].Stack = {Frame{Prog.MainId, 0, L}};
    enqueue(std::move(Next));
  }
}

void Searcher::switchThread(const Config &C) {
  if (C.Switches >= Query.MaxContextSwitches)
    return;
  for (unsigned T = 0; T < C.Threads.size(); ++T) {
    if (T == C.Active)
      continue;
    // Round-robin: context i belongs to thread i mod n.
    if (Query.RoundRobin && T != (C.Switches + 1) % C.Threads.size())
      continue;
    const ThreadState &Target = C.Threads[T];
    if (!Target.Started) {
      startThreadConfigs(C, T);
      continue;
    }
    // Free scheduling never gains from handing a context to a finished
    // thread (the globals pass through unchanged, so the run can be
    // shortened); round-robin runs *must* pass through it.
    if (Target.finished() && !Query.RoundRobin)
      continue;
    Config Next = C;
    Next.Switches = C.Switches + 1;
    Next.Active = T;
    enqueue(std::move(Next));
  }
}

void Searcher::stepActive(const Config &C) {
  const ThreadState &Active = C.Threads[C.Active];
  if (Active.Stack.empty())
    return; // Finished thread: no local moves.

  const Frame &Top = Active.Stack.back();
  const ProgramCfg &Cfg = Cfgs[C.Active];
  const ProcCfg &PC = Cfg.Procs[Top.Proc];
  uint32_t Locals = Top.Locals;
  uint32_t Shared = C.Shared;

  // Return from the current procedure.
  if (const CfgExit *Exit = PC.exitAt(Top.Pc)) {
    unsigned NumChoices = countNondet(Exit->ReturnExprs);
    for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
      std::vector<bool> Values =
          evalExprs(Exit->ReturnExprs, Locals, Shared, Choice);
      Config Next = C;
      ThreadState &T = Next.Threads[C.Active];
      T.Stack.pop_back();
      if (!T.Stack.empty()) {
        Frame &Caller = T.Stack.back();
        const ProcCfg &CallerCfg = Cfg.Procs[Caller.Proc];
        assert(CallerCfg.OutEdges[Caller.Pc].size() == 1 &&
               "call sites have exactly one outgoing edge");
        const CfgEdge &E =
            CallerCfg.Edges[CallerCfg.OutEdges[Caller.Pc][0]];
        assert(E.K == CfgEdge::Kind::Call && "resuming a non-call site");
        for (size_t I = 0; I < E.Lhs.size(); ++I) {
          const VarRef &Ref = E.Lhs[I];
          if (Ref.IsGlobal)
            Next.Shared = setBit(Next.Shared, Ref.Index, Values[I]);
          else
            Caller.Locals = setBit(Caller.Locals, Ref.Index, Values[I]);
        }
        Caller.Pc = E.To;
      }
      enqueue(std::move(Next));
    }
  }

  for (unsigned EdgeIdx : PC.OutEdges[Top.Pc]) {
    const CfgEdge &E = PC.Edges[EdgeIdx];
    switch (E.K) {
    case CfgEdge::Kind::Assume: {
      unsigned NumChoices = E.Cond ? countNondet(*E.Cond) : 0;
      for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
        bool Take = true;
        if (E.Cond) {
          unsigned ChoiceIdx = 0;
          Take = evalExpr(*E.Cond, Locals, Shared, Choice, ChoiceIdx) !=
                 E.NegateCond;
        }
        if (!Take)
          continue;
        Config Next = C;
        Next.Threads[C.Active].Stack.back().Pc = E.To;
        enqueue(std::move(Next));
      }
      break;
    }
    case CfgEdge::Kind::Assign: {
      unsigned NumChoices = countNondet(E.Rhs);
      for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
        std::vector<bool> Values = evalExprs(E.Rhs, Locals, Shared, Choice);
        Config Next = C;
        Frame &F = Next.Threads[C.Active].Stack.back();
        for (size_t I = 0; I < E.Lhs.size(); ++I) {
          const VarRef &Ref = E.Lhs[I];
          if (Ref.IsGlobal)
            Next.Shared = setBit(Next.Shared, Ref.Index, Values[I]);
          else
            F.Locals = setBit(F.Locals, Ref.Index, Values[I]);
        }
        F.Pc = E.To;
        enqueue(std::move(Next));
      }
      break;
    }
    case CfgEdge::Kind::Call: {
      if (Active.Stack.size() >= Bounds.MaxStackDepth) {
        BoundHit = true;
        break;
      }
      const Program &Prog = *Conc.Threads[C.Active];
      const Proc &Callee = Prog.proc(E.CalleeId);
      unsigned NumParams = unsigned(Callee.Params.size());
      unsigned FreeBits = Callee.numLocalSlots() - NumParams;
      unsigned NumChoices = countNondet(E.Rhs);
      for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
        std::vector<bool> Args = evalExprs(E.Rhs, Locals, Shared, Choice);
        uint32_t ParamVal = 0;
        for (size_t I = 0; I < Args.size(); ++I)
          ParamVal = setBit(ParamVal, unsigned(I), Args[I]);
        for (uint32_t Free = 0; Free < (1u << FreeBits); ++Free) {
          Config Next = C;
          Next.Threads[C.Active].Stack.push_back(
              Frame{E.CalleeId, 0, ParamVal | (Free << NumParams)});
          enqueue(std::move(Next));
        }
      }
      break;
    }
    }
  }
}

void Searcher::expand(const Config &C) {
  stepActive(C);
  if (!Found)
    switchThread(C);
}

ConcurrentOracleResult Searcher::run() {
  // Initial configurations: any thread may own context 0; shared globals
  // start all-false (deterministically — matching the symbolic engine's
  // stitching requirement, see ConcReach.cpp); the first thread's locals
  // are nondeterministic; other threads are unstarted (Section 5's lazy
  // first-switch semantics).
  unsigned FirstThreads = Query.RoundRobin ? 1 : Conc.numThreads();
  for (unsigned T0 = 0; T0 < FirstThreads && !Found; ++T0) {
    const Program &Prog = *Conc.Threads[T0];
    unsigned LocalBits = Prog.main().numLocalSlots();
    for (uint32_t L = 0; L < (1u << LocalBits) && !Found; ++L) {
      Config C;
      C.Switches = 0;
      C.Active = T0;
      C.Shared = 0;
      C.Threads.resize(Conc.numThreads());
      C.Threads[T0].Started = true;
      C.Threads[T0].Stack = {Frame{Prog.MainId, 0, L}};
      enqueue(std::move(C));
    }
  }

  while (!Worklist.empty() && !Found) {
    Config C = std::move(Worklist.front());
    Worklist.pop_front();
    expand(C);
  }

  ConcurrentOracleResult Result;
  Result.Reachable = Found;
  Result.Exhaustive = !BoundHit || Found;
  Result.Configs = Seen.size();
  return Result;
}

ConcurrentOracleResult
interp::concurrentReachability(const ConcurrentProgram &Conc,
                               const std::vector<ProgramCfg> &Cfgs,
                               const ConcurrentQuery &Query,
                               const ConcurrentBounds &Bounds) {
  assert(Cfgs.size() == Conc.numThreads() && "one cfg per thread");
  return Searcher(Conc, Cfgs, Query, Bounds).run();
}
