//===- Lexer.h - Boolean program lexer --------------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BP_LEXER_H
#define GETAFIX_BP_LEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <string_view>

namespace getafix {
namespace bp {

enum class TokenKind {
  Eof,
  Identifier,
  // Keywords.
  KwDecl,
  KwBegin,
  KwEnd,
  KwSkip,
  KwCall,
  KwReturn,
  KwIf,
  KwThen,
  KwElse,
  KwFi,
  KwWhile,
  KwDo,
  KwOd,
  KwAssume,
  KwDead, ///< `dead x, y;` havocs the listed variables.
  KwGoto,
  KwShared,
  KwThread,
  KwTrue,  ///< `T`
  KwFalse, ///< `F`
  // Punctuation and operators.
  Assign, ///< `:=`
  Comma,
  Semicolon,
  Colon,
  LParen,
  RParen,
  Star, ///< `*`
  Bang, ///< `!`
  Amp,  ///< `&`
  Pipe, ///< `|`
  Error,
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Hand-written lexer. Supports `//` line comments and `/* */` block
/// comments.
class Lexer {
public:
  Lexer(std::string_view Input, DiagnosticEngine &Diags)
      : Input(Input), Diags(Diags) {}

  Token next();

  /// Converts a keyword token kind back to its spelling (for diagnostics).
  static const char *spelling(TokenKind Kind);

private:
  void skipWhitespaceAndComments();
  char peek() const { return Pos < Input.size() ? Input[Pos] : '\0'; }
  char peek2() const { return Pos + 1 < Input.size() ? Input[Pos + 1] : '\0'; }
  void advance();
  SourceLoc loc() const { return SourceLoc{Line, Column}; }

  std::string_view Input;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace bp
} // namespace getafix

#endif // GETAFIX_BP_LEXER_H
