//===- bluetooth.cpp - Concurrent reachability on the Bluetooth model -----===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section-6.2 walkthrough: build the Windows NT Bluetooth driver model
/// (adder and stopper threads over shared pendingIo/stopping state) and
/// sweep the context-switch bound, printing the Figure-3 style rows:
/// whether the assertion violation is reachable, the size of the reachable
/// set, and the solve time.
///
//===----------------------------------------------------------------------===//

#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "gen/Workloads.h"

#include <cstdio>

using namespace getafix;

int main() {
  struct Config {
    unsigned Adders, Stoppers;
  } Configs[] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}};

  for (auto [Adders, Stoppers] : Configs) {
    std::printf("--- %u adder(s), %u stopper(s) ---\n", Adders, Stoppers);
    std::string Source = gen::bluetoothModel(Adders, Stoppers);
    DiagnosticEngine Diags;
    auto Conc = bp::parseConcurrentProgram(Source, Diags);
    if (!Conc) {
      std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
      return 1;
    }
    auto Cfgs = conc::buildThreadCfgs(*Conc);
    for (unsigned K = 1; K <= 4; ++K) {
      conc::ConcOptions Opts;
      Opts.MaxContextSwitches = K;
      conc::ConcResult R =
          conc::checkConcReachabilityOfLabel(*Conc, Cfgs, "ERR", Opts);
      std::printf("  k=%u  reachable=%-3s  reach-set=%8.0f tuples  "
                  "%.2fs\n",
                  K, R.Reachable ? "YES" : "no", R.ReachStates, R.Seconds);
    }
  }
  return 0;
}
