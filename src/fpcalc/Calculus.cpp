//===- Calculus.cpp - First-order fixed-point calculus --------------------===//

#include "fpcalc/Calculus.h"

#include <algorithm>
#include <set>

using namespace getafix;
using namespace getafix::fpc;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

DomainId System::addDomain(std::string Name, uint64_t Size) {
  assert(Size >= 1 && "domains must be non-empty");
  Domains.push_back(Domain{std::move(Name), Size, 0});
  return DomainId(Domains.size() - 1);
}

DomainId System::addBitDomain(std::string Name, unsigned Bits) {
  assert(Bits >= 1 && Bits <= 4096 && "unreasonable bit-vector width");
  uint64_t Size = Bits < 64 ? (uint64_t(1) << Bits) : ~uint64_t(0);
  Domains.push_back(Domain{std::move(Name), Size, Bits});
  return DomainId(Domains.size() - 1);
}

VarId System::addVar(std::string Name, DomainId Dom) {
  assert(Dom < Domains.size() && "unknown domain");
  Vars.push_back(Var{std::move(Name), Dom});
  return VarId(Vars.size() - 1);
}

RelId System::declareRel(std::string Name, std::vector<VarId> Formals) {
#ifndef NDEBUG
  std::set<VarId> Unique(Formals.begin(), Formals.end());
  assert(Unique.size() == Formals.size() && "formals must be distinct");
  for (VarId V : Formals)
    assert(V < Vars.size() && "unknown formal variable");
#endif
  Relation R;
  R.Name = Name;
  R.Formals = std::move(Formals);
  Rels.push_back(std::move(R));
  RelId Id = RelId(Rels.size() - 1);
  auto [It, Inserted] = RelIds.emplace(std::move(Name), Id);
  (void)It;
  assert(Inserted && "duplicate relation name");
  return Id;
}

void System::define(RelId Rel, Formula *Rhs) {
  assert(Rel < Rels.size() && "unknown relation");
  assert(!Rels[Rel].Def && "relation already defined");
  assert(Rhs && "null definition");
  Rels[Rel].Def = Rhs;
}

void System::defineNu(RelId Rel, Formula *Rhs) {
  define(Rel, Rhs);
  Rels[Rel].IsNu = true;
}

//===----------------------------------------------------------------------===//
// Formula builders
//===----------------------------------------------------------------------===//

Formula *System::make(FormulaKind Kind) {
  Arena.push_back(std::make_unique<Formula>(Kind));
  return Arena.back().get();
}

Formula *System::top() {
  Formula *F = make(FormulaKind::Const);
  F->ConstValue = true;
  return F;
}

Formula *System::bottom() {
  Formula *F = make(FormulaKind::Const);
  F->ConstValue = false;
  return F;
}

Formula *System::apply(RelId Rel, std::vector<Term> Args) {
  Formula *F = make(FormulaKind::RelApp);
  F->Rel = Rel;
  F->Args = std::move(Args);
  return F;
}

Formula *System::applyVars(RelId Rel, const std::vector<VarId> &Args) {
  std::vector<Term> Terms;
  Terms.reserve(Args.size());
  for (VarId V : Args)
    Terms.push_back(Term::var(V));
  return apply(Rel, std::move(Terms));
}

Formula *System::eqVar(VarId Lhs, VarId Rhs) {
  Formula *F = make(FormulaKind::EqVar);
  F->Lhs = Lhs;
  F->Rhs = Rhs;
  return F;
}

Formula *System::eqConst(VarId Lhs, uint64_t Value) {
  Formula *F = make(FormulaKind::EqConst);
  F->Lhs = Lhs;
  F->Value = Value;
  return F;
}

Formula *System::mkNot(Formula *Body) {
  Formula *F = make(FormulaKind::Not);
  F->Children = {Body};
  return F;
}

Formula *System::mkAnd(std::vector<Formula *> Children) {
  assert(!Children.empty() && "empty conjunction; use top()");
  if (Children.size() == 1)
    return Children.front();
  Formula *F = make(FormulaKind::And);
  F->Children = std::move(Children);
  return F;
}

Formula *System::mkOr(std::vector<Formula *> Children) {
  assert(!Children.empty() && "empty disjunction; use bottom()");
  if (Children.size() == 1)
    return Children.front();
  Formula *F = make(FormulaKind::Or);
  F->Children = std::move(Children);
  return F;
}

Formula *System::exists(std::vector<VarId> Bound, Formula *Body) {
  Formula *F = make(FormulaKind::Exists);
  F->Bound = std::move(Bound);
  F->Body = Body;
  return F;
}

Formula *System::forall(std::vector<VarId> Bound, Formula *Body) {
  Formula *F = make(FormulaKind::Forall);
  F->Bound = std::move(Bound);
  F->Body = Body;
  return F;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

bool System::validateFormula(const Formula &F, DiagnosticEngine &Diags,
                             const std::string &Context) const {
  bool Ok = true;
  switch (F.Kind) {
  case FormulaKind::Const:
    break;
  case FormulaKind::RelApp: {
    if (F.Rel >= Rels.size()) {
      Diags.error({}, Context + ": application of unknown relation");
      return false;
    }
    const Relation &R = Rels[F.Rel];
    if (F.Args.size() != R.arity()) {
      Diags.error({}, Context + ": '" + R.Name + "' applied to " +
                          std::to_string(F.Args.size()) +
                          " arguments; arity is " +
                          std::to_string(R.arity()));
      Ok = false;
      break;
    }
    for (size_t I = 0; I < F.Args.size(); ++I) {
      const Term &T = F.Args[I];
      DomainId Expected = Vars[R.Formals[I]].Dom;
      if (T.IsConst) {
        if (T.Value >= Domains[Expected].Size) {
          Diags.error({}, Context + ": constant " +
                              std::to_string(T.Value) + " outside domain '" +
                              Domains[Expected].Name + "' in '" + R.Name +
                              "'");
          Ok = false;
        }
      } else if (T.Variable >= Vars.size()) {
        Diags.error({}, Context + ": unknown variable in application");
        Ok = false;
      } else if (Vars[T.Variable].Dom != Expected) {
        Diags.error({}, Context + ": argument " + std::to_string(I) +
                            " of '" + R.Name + "' has domain '" +
                            Domains[Vars[T.Variable].Dom].Name +
                            "'; expected '" + Domains[Expected].Name + "'");
        Ok = false;
      }
    }
    break;
  }
  case FormulaKind::EqVar:
    if (F.Lhs >= Vars.size() || F.Rhs >= Vars.size()) {
      Diags.error({}, Context + ": equality over unknown variable");
      return false;
    }
    if (Vars[F.Lhs].Dom != Vars[F.Rhs].Dom) {
      Diags.error({}, Context + ": equality between '" + Vars[F.Lhs].Name +
                          "' and '" + Vars[F.Rhs].Name +
                          "' of different domains");
      Ok = false;
    }
    break;
  case FormulaKind::EqConst:
    if (F.Lhs >= Vars.size()) {
      Diags.error({}, Context + ": equality over unknown variable");
      return false;
    }
    if (F.Value >= Domains[Vars[F.Lhs].Dom].Size) {
      Diags.error({}, Context + ": constant " + std::to_string(F.Value) +
                          " outside domain of '" + Vars[F.Lhs].Name + "'");
      Ok = false;
    }
    break;
  case FormulaKind::Not:
    assert(F.Children.size() == 1 && "negation is unary");
    Ok &= validateFormula(*F.Children[0], Diags, Context);
    break;
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      Ok &= validateFormula(*Child, Diags, Context);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    for (VarId V : F.Bound)
      if (V >= Vars.size()) {
        Diags.error({}, Context + ": quantification over unknown variable");
        Ok = false;
      }
    Ok &= validateFormula(*F.Body, Diags, Context);
    break;
  }
  return Ok;
}

bool System::validate(DiagnosticEngine &Diags) const {
  bool Ok = true;
  for (const Relation &R : Rels)
    if (R.Def)
      Ok &= validateFormula(*R.Def, Diags, "in definition of '" + R.Name +
                                               "'");
  return Ok;
}

void System::collectRels(const Formula &F, std::vector<RelId> &Out) const {
  switch (F.Kind) {
  case FormulaKind::RelApp:
    Out.push_back(F.Rel);
    break;
  case FormulaKind::Not:
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      collectRels(*Child, Out);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    collectRels(*F.Body, Out);
    break;
  default:
    break;
  }
}

bool System::dependsOn(RelId Rel, RelId Target) const {
  std::set<RelId> Visited;
  std::vector<RelId> Stack{Rel};
  while (!Stack.empty()) {
    RelId Cur = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(Cur).second)
      continue;
    const Relation &R = Rels[Cur];
    if (!R.Def)
      continue;
    std::vector<RelId> Used;
    collectRels(*R.Def, Used);
    for (RelId U : Used) {
      if (U == Target)
        return true;
      Stack.push_back(U);
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Printing (MUCKE-like concrete syntax)
//===----------------------------------------------------------------------===//

std::string System::printFormula(const Formula &F) const {
  switch (F.Kind) {
  case FormulaKind::Const:
    return F.ConstValue ? "true" : "false";
  case FormulaKind::RelApp: {
    std::string Out = Rels[F.Rel].Name + "(";
    for (size_t I = 0; I < F.Args.size(); ++I) {
      if (I)
        Out += ", ";
      const Term &T = F.Args[I];
      Out += T.IsConst ? std::to_string(T.Value) : Vars[T.Variable].Name;
    }
    return Out + ")";
  }
  case FormulaKind::EqVar:
    return Vars[F.Lhs].Name + " = " + Vars[F.Rhs].Name;
  case FormulaKind::EqConst:
    return Vars[F.Lhs].Name + " = " + std::to_string(F.Value);
  case FormulaKind::Not:
    return "!(" + printFormula(*F.Children[0]) + ")";
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::string Sep = F.Kind == FormulaKind::And ? " & " : " | ";
    std::string Out = "(";
    for (size_t I = 0; I < F.Children.size(); ++I) {
      if (I)
        Out += Sep;
      Out += printFormula(*F.Children[I]);
    }
    return Out + ")";
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    std::string Out = F.Kind == FormulaKind::Exists ? "exists " : "forall ";
    for (size_t I = 0; I < F.Bound.size(); ++I) {
      if (I)
        Out += ", ";
      const Var &V = Vars[F.Bound[I]];
      Out += Domains[V.Dom].Name + " " + V.Name;
    }
    return Out + ". (" + printFormula(*F.Body) + ")";
  }
  }
  return "<?>";
}

std::string System::print() const {
  std::string Out;
  for (const Domain &D : Domains) {
    if (D.ExplicitBits != 0)
      Out += "domain " + D.Name + " [bits " + std::to_string(D.ExplicitBits) +
             "];\n";
    else
      Out += "domain " + D.Name + " [" + std::to_string(D.Size) + "];\n";
  }
  Out += '\n';
  for (const Relation &R : Rels) {
    Out += R.Def ? (R.IsNu ? "nu bool " : "mu bool ") : "input bool ";
    Out += R.Name + "(";
    for (size_t I = 0; I < R.Formals.size(); ++I) {
      if (I)
        Out += ", ";
      const Var &V = Vars[R.Formals[I]];
      Out += Domains[V.Dom].Name + " " + V.Name;
    }
    Out += ")";
    if (R.Def)
      Out += " :=\n  " + printFormula(*R.Def) + ";\n";
    else
      Out += ";\n";
    Out += '\n';
  }
  return Out;
}
