//===- SeqReachTest.cpp - Sequential reachability engine tests ------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests: every symbolic engine and both baselines must agree
/// with the explicit tabulation oracle on the regression suite and on
/// randomly generated driver-shaped programs. All engines are dispatched
/// by registry name through the `Solver` facade, so this is the main
/// correctness net for the whole pipeline (parser -> CFG -> encoder ->
/// calculus -> solver) *and* for the facade's dispatch.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "interp/SummaryOracle.h"
#include "reach/SeqReach.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

bp::ProgramCfg parseCfg(const std::string &Src,
                        std::unique_ptr<bp::Program> &Keep) {
  DiagnosticEngine Diags;
  Keep = bp::parseProgram(Src, Diags);
  EXPECT_TRUE(Keep != nullptr) << Diags.str() << "\nsource:\n" << Src;
  if (!Keep) // Keep the runner alive; the EXPECT above already failed.
    Keep = bp::parseProgram("main() begin end", Diags);
  return bp::buildCfg(*Keep);
}

/// The four fixed-point engines of Sections 4.1–4.3, by registry name.
const char *AllEngines[] = {"summary", "ef", "ef-split", "ef-opt"};

SolveResult solveVia(const bp::ProgramCfg &Cfg, const std::string &Label,
                     const char *Engine, bool EarlyStop = true) {
  SolverOptions Opts;
  Opts.Engine = Engine;
  Opts.EarlyStop = EarlyStop;
  return Solver::solve(Query::fromCfg(Cfg).target(Label), Opts);
}

/// Regression workload x engine.
class RegressionTest
    : public ::testing::TestWithParam<std::tuple<size_t, const char *>> {};

/// Seed for random-program differential testing.
class DriverDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RegressionTest, MatchesExpectation) {
  auto [Index, Engine] = GetParam();
  gen::Workload W = gen::regressionSuite()[Index];
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);

  SolveResult R = solveVia(Cfg, W.TargetLabel, Engine);
  ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Error;
  EXPECT_EQ(R.Reachable, W.ExpectReachable) << W.Name << " via " << Engine;

  // The oracle must concur (guards the expectations themselves).
  interp::OracleResult O =
      interp::summaryReachabilityOfLabel(Cfg, W.TargetLabel);
  EXPECT_EQ(O.Reachable, W.ExpectReachable) << W.Name << " (oracle)";
}

namespace {

std::string regressionCaseName(
    const ::testing::TestParamInfo<std::tuple<size_t, const char *>>
        &Info) {
  size_t Index = std::get<0>(Info.param);
  std::string Name = gen::regressionSuite()[Index].Name + "_" +
                     std::get<1>(Info.param);
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Suite, RegressionTest,
    ::testing::Combine(::testing::Range<size_t>(
                           0, gen::regressionSuite().size()),
                       ::testing::ValuesIn(AllEngines)),
    regressionCaseName);

TEST(RegressionBaselinesTest, BaselinesMatchExpectations) {
  for (const gen::Workload &W : gen::regressionSuite()) {
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
    EXPECT_EQ(solveVia(Cfg, W.TargetLabel, "moped").Reachable,
              W.ExpectReachable)
        << W.Name << " (moped)";
    EXPECT_EQ(solveVia(Cfg, W.TargetLabel, "bebop").Reachable,
              W.ExpectReachable)
        << W.Name << " (bebop)";
  }
}

TEST_P(DriverDifferentialTest, AllEnginesAgreeOnRandomPrograms) {
  uint64_t Seed = GetParam();
  for (bool Reachable : {false, true}) {
    gen::DriverParams P;
    P.NumProcs = 4 + Seed % 3;
    P.NumGlobals = 3;
    P.LocalsPerProc = 3;
    P.StmtsPerProc = 6;
    P.Reachable = Reachable;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);

    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
    interp::OracleResult O =
        interp::summaryReachabilityOfLabel(Cfg, W.TargetLabel);

    for (const char *Engine : AllEngines) {
      SolveResult R = solveVia(Cfg, W.TargetLabel, Engine);
      ASSERT_TRUE(R.ok()) << R.Error;
      EXPECT_EQ(R.Reachable, O.Reachable)
          << W.Name << " disagreement: " << Engine << "\n" << W.Source;
    }
    EXPECT_EQ(solveVia(Cfg, W.TargetLabel, "moped").Reachable, O.Reachable)
        << W.Name << " (moped)\n" << W.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(SeqReachTest, EarlyStopAndFullSearchAgree) {
  gen::DriverParams P;
  P.NumProcs = 5;
  P.Reachable = true;
  P.Seed = 42;
  gen::Workload W = gen::driverProgram(P);
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);

  EXPECT_EQ(solveVia(Cfg, "ERR", "ef-split", /*EarlyStop=*/true).Reachable,
            solveVia(Cfg, "ERR", "ef-split", /*EarlyStop=*/false).Reachable);
}

TEST(SeqReachTest, MissingLabelReported) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg("main() begin skip; end", Prog);
  SolveResult R = solveVia(Cfg, "NOPE", "ef-opt");
  EXPECT_EQ(R.Status, SolveStatus::TargetNotFound);
}

TEST(SeqReachTest, FormulaTextShowsAlgorithmStructure) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg("main() begin skip; end", Prog);
  std::string EF =
      reach::formulaText(Cfg, reach::SeqAlgorithm::EntryForwardSplit);
  EXPECT_NE(EF.find("mu bool SummaryEF"), std::string::npos);
  EXPECT_NE(EF.find("setReturn1"), std::string::npos);
  EXPECT_NE(EF.find("setReturn2"), std::string::npos);

  std::string Opt =
      reach::formulaText(Cfg, reach::SeqAlgorithm::EntryForwardOpt);
  EXPECT_NE(Opt.find("mu bool SummaryEFopt"), std::string::npos);
  EXPECT_NE(Opt.find("mu bool Relevant"), std::string::npos);
  EXPECT_NE(Opt.find("mu bool New1"), std::string::npos);
  // Relevant negates the fr=0 copy: the non-monotone heart of Section 4.3.
  EXPECT_NE(Opt.find("!(SummaryEFopt(0"), std::string::npos);
}

TEST(SeqReachTest, TerminatorParityNegativesAreProven) {
  // The even-parity claim after a full 2^B counter walk is false; the
  // engines must prove it (and the positive twin must be found).
  for (auto Style : {gen::DeadVarStyle::Iterative, gen::DeadVarStyle::Schoose})
    for (bool Reachable : {false, true}) {
      gen::TerminatorParams P;
      P.CounterBits = 3;
      P.NumDeadVars = 2;
      P.Style = Style;
      P.Reachable = Reachable;
      gen::Workload W = gen::terminatorProgram(P);
      std::unique_ptr<bp::Program> Prog;
      bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
      EXPECT_EQ(solveVia(Cfg, "ERR", "ef-opt").Reachable, Reachable)
          << W.Name;
    }
}

TEST(SeqReachTest, RecursiveDepthBeyondExplicitBounds) {
  // Unbounded recursion with a nondet stop: summaries must converge even
  // though the state space of stacks is infinite.
  const char *Src = R"(
decl g;
main() begin
  g := F;
  call dig();
  if (g) then ERR: skip; fi;
end
dig() begin
  if (*) then
    call dig();
  else
    g := T;
  fi;
end
)";
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(Src, Prog);
  for (const char *Engine : AllEngines)
    EXPECT_TRUE(solveVia(Cfg, "ERR", Engine).Reachable) << Engine;
}

//===----------------------------------------------------------------------===//
// Per-procedure summary split vs the monolithic compilation
//===----------------------------------------------------------------------===//

namespace {

/// Programs whose call-graph shapes stress the split: self recursion,
/// mutual recursion (a non-trivial SCC group), and a diamond (a shared
/// callee reached on two paths, where a naive per-caller re-derivation
/// would double work or lose tuples).
struct ShapedProgram {
  const char *Name;
  const char *Source;
  bool ExpectReachable;
};

const ShapedProgram ShapedPrograms[] = {
    {"recursive",
     R"(
decl g;
main() begin
  g := F;
  call dig();
  if (g) then ERR: skip; fi;
end
dig() begin
  if (*) then
    call dig();
  else
    g := T;
  fi;
end
)",
     true},
    {"mutually_recursive",
     R"(
decl g, n0, n1;
main() begin
  g := F;
  n0 := T; n1 := T;
  call even();
  if (g & !n0 & !n1) then ERR: skip; fi;
end
even() begin
  if (n0 | n1) then
    n0, n1 := !n0, n0 & !n1 | !n0 & n1;
    call odd();
  else
    g := T;
  fi;
end
odd() begin
  call even();
end
)",
     true},
    {"call_graph_diamond",
     R"(
decl g, h;
main() begin
  g := F; h := F;
  call a();
  call b();
  if (g & !h) then ERR: skip; fi;
end
a() begin
  call c();
  g := g | h;
end
b() begin
  call c();
end
c() begin
  if (*) then g := T; fi;
  h := g;
end
)",
     false},
};

/// One solve through the facade with the split/monolithic switch and the
/// ablation knobs exposed.
SolveResult solveShaped(const bp::ProgramCfg &Cfg, const char *Engine,
                        bool Monolithic, fpc::EvalStrategy Strategy,
                        fpc::CofactorMode Cofactor, bool EarlyStop) {
  SolverOptions Opts;
  Opts.Engine = Engine;
  Opts.MonolithicSummary = Monolithic;
  Opts.Strategy = Strategy;
  Opts.FrontierCofactor = Cofactor;
  Opts.EarlyStop = EarlyStop;
  return Solver::solve(Query::fromCfg(Cfg).target("ERR"), Opts);
}

} // namespace

/// engine x strategy x cofactor mode: the split and monolithic
/// compilations must produce the same verdict everywhere (round counts
/// may differ; the verdict may not).
TEST(SplitSummaryTest, SplitAndMonolithicAgreeAcrossAllKnobs) {
  for (const ShapedProgram &SP : ShapedPrograms) {
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(SP.Source, Prog);
    for (const char *Engine : AllEngines)
      for (auto Strategy :
           {fpc::EvalStrategy::SemiNaive, fpc::EvalStrategy::Naive})
        for (auto Cofactor :
             {fpc::CofactorMode::Constrain, fpc::CofactorMode::Restrict,
              fpc::CofactorMode::Off})
          for (bool EarlyStop : {false, true}) {
            SolveResult Split = solveShaped(Cfg, Engine, /*Monolithic=*/false,
                                            Strategy, Cofactor, EarlyStop);
            SolveResult Mono = solveShaped(Cfg, Engine, /*Monolithic=*/true,
                                           Strategy, Cofactor, EarlyStop);
            ASSERT_TRUE(Split.ok() && Mono.ok()) << SP.Name << "/" << Engine;
            EXPECT_EQ(Split.Reachable, SP.ExpectReachable)
                << SP.Name << "/" << Engine << " (split)";
            EXPECT_EQ(Split.Reachable, Mono.Reachable)
                << SP.Name << "/" << Engine;
          }
  }
}

/// The summary engine computes the same all-entries summary either way, so
/// the union of the per-procedure relations must be *bit-identical* to the
/// monolithic relation — same BDD, hence the same node count under the
/// identical variable layout. (The EF flavors legitimately differ: their
/// monolithic relation is entry-forward-pruned while the split keeps the
/// SummarySimple decomposition, so only the verdict is pinned there.)
TEST(SplitSummaryTest, SummaryUnionBitIdenticalToMonolithicRelation) {
  for (const ShapedProgram &SP : ShapedPrograms) {
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(SP.Source, Prog);
    SolveResult Split =
        solveShaped(Cfg, "summary", false, fpc::EvalStrategy::SemiNaive,
                    fpc::CofactorMode::Constrain, /*EarlyStop=*/false);
    SolveResult Mono =
        solveShaped(Cfg, "summary", true, fpc::EvalStrategy::SemiNaive,
                    fpc::CofactorMode::Constrain, /*EarlyStop=*/false);
    ASSERT_TRUE(Split.ok() && Mono.ok()) << SP.Name;
    EXPECT_EQ(Split.SummaryNodes, Mono.SummaryNodes) << SP.Name;
  }
}

/// The reported condensation width must equal the program's call-graph
/// SCC count under the split and collapse back to the narrow monolithic
/// band (1-4 defined relations) under the escape hatch.
TEST(SplitSummaryTest, CondensationWidthMatchesCallGraph) {
  for (const ShapedProgram &SP : ShapedPrograms) {
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(SP.Source, Prog);
    bp::CallGraph CG = bp::buildCallGraph(Cfg);
    for (const char *Engine : AllEngines) {
      SolveResult Split =
          solveShaped(Cfg, Engine, false, fpc::EvalStrategy::SemiNaive,
                      fpc::CofactorMode::Constrain, true);
      EXPECT_EQ(Split.CondensationWidth, CG.numSccs())
          << SP.Name << "/" << Engine;
      EXPECT_EQ(Split.SummaryRelations, CG.numSccs())
          << SP.Name << "/" << Engine;
      SolveResult Mono =
          solveShaped(Cfg, Engine, true, fpc::EvalStrategy::SemiNaive,
                      fpc::CofactorMode::Constrain, true);
      EXPECT_GE(Mono.CondensationWidth, 1u) << SP.Name << "/" << Engine;
      EXPECT_LE(Mono.CondensationWidth, 4u) << SP.Name << "/" << Engine;
      EXPECT_EQ(Mono.SummaryRelations, 1u) << SP.Name << "/" << Engine;
    }
  }
}

/// Terminator workloads carry one procedure per dead-variable phase, so
/// the split's width clears the acceptance bar (> 4) while the verdict
/// stays pinned to the parity argument.
TEST(SplitSummaryTest, TerminatorWidthExceedsFour) {
  gen::TerminatorParams P;
  P.CounterBits = 3;
  P.NumDeadVars = 3;
  P.Reachable = false;
  gen::Workload W = gen::terminatorProgram(P);
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
  bp::CallGraph CG = bp::buildCallGraph(Cfg);
  EXPECT_GT(CG.numSccs(), 4u);
  SolveResult R = solveShaped(Cfg, "summary", false,
                              fpc::EvalStrategy::SemiNaive,
                              fpc::CofactorMode::Constrain, true);
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.Reachable);
  EXPECT_EQ(R.CondensationWidth, CG.numSccs());
  EXPECT_GT(R.CondensationWidth, 4u);
}

/// Witness extraction must yield the identical trace whether the solve
/// side runs split or monolithic (the extractor's ring walk is shared).
TEST(SplitSummaryTest, WitnessesBitIdenticalAcrossCompilations) {
  for (const ShapedProgram &SP : ShapedPrograms) {
    if (!SP.ExpectReachable)
      continue;
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(SP.Source, Prog);
    for (const char *Engine : AllEngines) {
      SolverOptions Opts;
      Opts.Engine = Engine;
      Query Q = Query::fromCfg(Cfg).target("ERR").witness(true);
      Opts.MonolithicSummary = false;
      SolveResult Split = Solver::solve(Q, Opts);
      Opts.MonolithicSummary = true;
      SolveResult Mono = Solver::solve(Q, Opts);
      ASSERT_TRUE(Split.ok() && Mono.ok()) << SP.Name << "/" << Engine;
      ASSERT_TRUE(Split.HasWitness) << SP.Name << "/" << Engine;
      ASSERT_TRUE(Mono.HasWitness) << SP.Name << "/" << Engine;
      EXPECT_EQ(Split.WitnessText, Mono.WitnessText)
          << SP.Name << "/" << Engine;
    }
  }
}

/// Session mode: per-query answers across a target batch must match
/// between the compilations, with reuse both on and off.
TEST(SplitSummaryTest, SessionAnswersMatchMonolithic) {
  gen::TerminatorParams P;
  P.CounterBits = 3;
  P.NumDeadVars = 2;
  P.Reachable = false;
  P.LabeledCheckpoints = 2;
  gen::Workload W = gen::terminatorProgram(P);
  for (const char *Engine : AllEngines)
    for (bool Reuse : {true, false}) {
      SolverOptions Opts;
      Opts.Engine = Engine;
      Opts.SessionReuse = Reuse;
      std::vector<Query> Qs;
      for (const char *Label : {"CP0", "DEAD0", "ERR", "CP1", "DEAD1"})
        Qs.push_back(Query::fromSource("").target(Label));

      Opts.MonolithicSummary = false;
      auto SplitSession = Solver::open(Query::fromSource(W.Source), Opts);
      Opts.MonolithicSummary = true;
      auto MonoSession = Solver::open(Query::fromSource(W.Source), Opts);
      ASSERT_TRUE(SplitSession->ok() && MonoSession->ok()) << Engine;
      for (const Query &Q : Qs) {
        SolveResult S = SplitSession->solve(Q);
        SolveResult M = MonoSession->solve(Q);
        ASSERT_TRUE(S.ok() && M.ok()) << Engine << "/" << Q.Label;
        EXPECT_EQ(S.Reachable, M.Reachable) << Engine << "/" << Q.Label;
      }
    }
}
