//===- bench_lalreps.cpp - Section 5 tuple-economy comparison -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Compares the paper's k+1-copy fixed-point formulation against the eager
// Lal-Reps sequentialization (O(k) extra copies of every shared variable
// inside the program itself), both as registry engines answering the same
// query. Shape to check: the fixed-point engine's time grows gently with k
// while the eager reduction blows up quickly — the Section-5 claim about
// economic use of global-variable copies.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace getafix;
using namespace getafix::bench;

int main() {
  std::printf("=== Section 5: ours (k+1 copies) vs Lal-Reps eager ===\n");
  std::printf("%8s %12s %12s %12s %14s\n", "switches", "ours(s)",
              "ours-rr(s)", "eager(s)", "eager-globals");

  // A two-thread handshake with two shared flags: small enough that the
  // eager reduction stays feasible for k <= 3.
  const char *Src = R"(
shared decl a, b;
thread
main() begin
  a := T;
  b := T;
end
end
thread
main() begin
  decl seen;
  seen := F;
  if (a & !b) then seen := T; fi;
  if (seen & b) then ERR: skip; fi;
end
end
)";
  ParsedConcProgram P = parseConcOrDie(Src);

  for (unsigned K = 1; K <= 3; ++K) {
    SolverOptions Opts;
    Opts.ContextBound = K;
    EngineRow Ours = runConcEngine(P, "ERR", "conc", Opts);

    // Round-robin mode (the Section-5 closing remark / the Lal-Reps
    // scheduling assumption): the schedule variables become constants.
    SolverOptions RROpts = Opts;
    RROpts.RoundRobin = true;
    EngineRow RR = runConcEngine(P, "ERR", "conc", RROpts);

    EngineRow LR = runConcEngine(P, "ERR", "lal-reps", Opts);
    if (LR.Reachable != Ours.Reachable)
      std::fprintf(stderr, "DISAGREEMENT at k=%u\n", K);

    std::printf("%8u %12.3f %12.3f %12.3f %14zu\n", K, Ours.Seconds,
                RR.Seconds, LR.Seconds, LR.TransformedGlobals);
  }
  std::printf("(eager columns grow with k while the fixed-point engine "
              "stays flat)\n");
  return 0;
}
