//===- ServerTest.cpp - getafixd server + protocol tests ------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process tests of the query server: protocol round-trips on an
/// ephemeral loopback port, malformed input surviving as error responses
/// (never a dead connection), per-target error rows, concurrent clients
/// receiving identical verdicts, the evict/stats verbs, and graceful
/// shutdown via both the protocol verb and the (signal-handler) self-pipe
/// path.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "gen/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace getafix;
using server::Json;
using server::Server;
using server::ServerOptions;

namespace {

/// The lock-discipline fixture: ERR reachable, SAFE not.
const char *Fixture = R"(decl locked;
main() begin
  locked := F;
  call work(F);
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  fi
  if (locked & !locked) then
    SAFE: skip;
  fi
  locked := F;
end
)";

/// One client connection with line-level send/receive.
class Client {
public:
  explicit Client(unsigned Port) : Conn(connect(Port)), Reader(Conn.fd()) {}

  bool connected() const { return Conn.valid(); }

  /// Sends \p Line (newline appended) and returns the parsed response.
  Json call(const std::string &Line) {
    EXPECT_TRUE(support::writeAll(Conn.fd(), Line + "\n"));
    std::string RespLine;
    EXPECT_EQ(Reader.readLine(RespLine, 10000),
              support::LineReader::Status::Line);
    Json Resp;
    std::string Err;
    EXPECT_TRUE(Json::parse(RespLine, Resp, Err)) << Err << ": " << RespLine;
    return Resp;
  }

private:
  static support::Socket connect(unsigned Port) {
    std::string Err;
    support::Socket S = support::connectTcp("127.0.0.1", Port, &Err);
    EXPECT_TRUE(S.valid()) << Err;
    return S;
  }
  support::Socket Conn;
  support::LineReader Reader;
};

std::string solveRequest(const std::string &Source,
                         const std::vector<std::string> &Targets,
                         bool Witness = false) {
  Json Req = Json::object()
                 .set("op", Json::str("solve"))
                 .set("source", Json::str(Source));
  Json Ts = Json::array();
  for (const std::string &T : Targets)
    Ts.add(Json::str(T));
  Req.set("targets", std::move(Ts));
  if (Witness)
    Req.set("witness", Json::boolean(true));
  return Req.dump();
}

bool okOf(const Json &Resp) {
  const Json *Ok = Resp.find("ok");
  return Ok && Ok->isBool() && Ok->asBool();
}

std::string errorOf(const Json &Resp) {
  const Json *E = Resp.find("error");
  return E && E->isString() ? E->asString() : "";
}

/// The verdict of row \p I, or "<missing>".
std::string verdictOf(const Json &Resp, size_t I) {
  const Json *Rows = Resp.find("rows");
  if (!Rows || !Rows->isArray() || I >= Rows->items().size())
    return "<missing>";
  const Json *V = Rows->items()[I].find("verdict");
  return V && V->isString() ? V->asString() : "<missing>";
}

/// RAII server on an ephemeral loopback port.
struct TestServer {
  explicit TestServer(ServerOptions Opts = {}) : S(std::move(Opts)) {
    std::string Err;
    Started = S.start(&Err);
    EXPECT_TRUE(Started) << Err;
  }
  ~TestServer() {
    S.requestShutdown();
    S.wait();
  }
  Server S;
  bool Started = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(ServerTest, PingAndStats) {
  TestServer T;
  Client C(T.S.port());
  ASSERT_TRUE(C.connected());

  Json Pong = C.call(R"({"op":"ping"})");
  EXPECT_TRUE(okOf(Pong));

  Json Stats = C.call(R"({"op":"stats"})");
  ASSERT_TRUE(okOf(Stats));
  const Json *Pool = Stats.find("pool");
  ASSERT_NE(Pool, nullptr);
  const Json *Resident = Pool->find("resident_sessions");
  ASSERT_NE(Resident, nullptr);
  EXPECT_EQ(Resident->asNumber(), 0.0);
}

TEST(ServerTest, SolveInlineSourceWithPerTargetErrorRows) {
  TestServer T;
  Client C(T.S.port());

  Json Resp = C.call(solveRequest(Fixture, {"ERR", "SAFE", "NO_SUCH"}));
  ASSERT_TRUE(okOf(Resp)) << errorOf(Resp);
  EXPECT_EQ(verdictOf(Resp, 0), "YES");
  EXPECT_EQ(verdictOf(Resp, 1), "NO");
  // The unknown label is an error ROW; the batch (and connection) live on.
  const Json *Rows = Resp.find("rows");
  ASSERT_TRUE(Rows && Rows->isArray() && Rows->items().size() == 3);
  const Json *RowErr = Rows->items()[2].find("error");
  ASSERT_NE(RowErr, nullptr);
  EXPECT_NE(RowErr->asString(), "");

  // Second batch on the same connection reuses the pooled session.
  Json Again = C.call(solveRequest(Fixture, {"ERR"}));
  ASSERT_TRUE(okOf(Again));
  EXPECT_EQ(verdictOf(Again, 0), "YES");
  Json Stats = C.call(R"({"op":"stats"})");
  const Json *Pool = Stats.find("pool");
  ASSERT_NE(Pool, nullptr);
  EXPECT_EQ(Pool->find("opens")->asNumber(), 1.0);
  EXPECT_EQ(Pool->find("hits")->asNumber(), 1.0);
}

TEST(ServerTest, WitnessComesBackWithTheVerdict) {
  TestServer T;
  Client C(T.S.port());
  Json Resp = C.call(solveRequest(Fixture, {"ERR"}, /*Witness=*/true));
  ASSERT_TRUE(okOf(Resp)) << errorOf(Resp);
  EXPECT_EQ(verdictOf(Resp, 0), "YES");
  const Json *Rows = Resp.find("rows");
  ASSERT_TRUE(Rows && Rows->isArray() && !Rows->items().empty());
  const Json *W = Rows->items()[0].find("witness");
  ASSERT_NE(W, nullptr);
  EXPECT_NE(W->asString(), "");
}

TEST(ServerTest, MalformedInputIsAnErrorResponseNotACrash) {
  TestServer T;
  Client C(T.S.port());

  // Each bad line gets {"ok":false}; the connection must stay usable.
  for (const char *Bad :
       {"this is not json", "{\"op\":\"frobnicate\"}", "{\"op\":42}",
        "{\"op\":\"solve\"}",
        "{\"op\":\"solve\",\"program\":\"x\",\"source\":\"y\","
        "\"targets\":[\"ERR\"]}",
        "{\"op\":\"solve\",\"source\":\"main() begin end\","
        "\"targets\":\"ERR\"}",
        "[1,2,3]", "{\"op\":\"solve\",\"source\":\"x\",\"targets\":[]}"}) {
    Json Resp = C.call(Bad);
    EXPECT_FALSE(okOf(Resp)) << Bad;
    EXPECT_NE(errorOf(Resp), "") << Bad;
  }
  EXPECT_TRUE(okOf(C.call(R"({"op":"ping"})")));
}

TEST(ServerTest, UnparsableProgramAndMissingFileAreErrors) {
  TestServer T;
  Client C(T.S.port());

  Json Resp = C.call(solveRequest("not a boolean program", {"ERR"}));
  EXPECT_FALSE(okOf(Resp));
  EXPECT_NE(errorOf(Resp).find("open failed"), std::string::npos);

  Json Missing = C.call(R"({"op":"solve","program":"/nonexistent/x.bp",)"
                        R"("targets":["ERR"]})");
  EXPECT_FALSE(okOf(Missing));
  EXPECT_NE(errorOf(Missing), "");

  // Failures must not poison the server.
  EXPECT_EQ(verdictOf(C.call(solveRequest(Fixture, {"ERR"})), 0), "YES");
}

//===----------------------------------------------------------------------===//
// Pooling across connections, evict verb
//===----------------------------------------------------------------------===//

TEST(ServerTest, FileProgramsPoolAndEvictByPath) {
  // A real file, so the evict verb can address the session by path.
  std::string Path =
      ::testing::TempDir() + "/getafixd_server_test_fixture.bp";
  {
    std::ofstream F(Path);
    ASSERT_TRUE(F.good());
    F << Fixture;
  }

  TestServer T;
  Client C(T.S.port());
  std::string Solve = std::string(R"({"op":"solve","program":")") + Path +
                      R"(","targets":["ERR","SAFE"]})";

  Json First = C.call(Solve);
  ASSERT_TRUE(okOf(First)) << errorOf(First);
  EXPECT_EQ(verdictOf(First, 0), "YES");
  EXPECT_EQ(verdictOf(First, 1), "NO");
  EXPECT_FALSE(First.find("reopened")->asBool());

  Json Evict = C.call(std::string(R"({"op":"evict","program":")") + Path +
                      R"("})");
  ASSERT_TRUE(okOf(Evict));
  EXPECT_EQ(Evict.find("evicted")->asNumber(), 1.0);

  // Same path solves again, transparently reopened, same verdicts.
  Json Second = C.call(Solve);
  ASSERT_TRUE(okOf(Second));
  EXPECT_TRUE(Second.find("reopened")->asBool());
  EXPECT_EQ(verdictOf(Second, 0), "YES");
  EXPECT_EQ(verdictOf(Second, 1), "NO");

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(ServerTest, ConcurrentClientsGetIdenticalVerdicts) {
  ServerOptions Opts;
  Opts.Workers = 4;
  TestServer T(Opts);

  const unsigned NumClients = 4, Rounds = 3;
  std::vector<std::thread> Threads;
  std::vector<int> Failures(NumClients, 0);
  for (unsigned I = 0; I < NumClients; ++I)
    Threads.emplace_back([&T, &Failures, I] {
      Client C(T.S.port());
      if (!C.connected()) {
        ++Failures[I];
        return;
      }
      for (unsigned R = 0; R < Rounds; ++R) {
        Json Resp = C.call(solveRequest(Fixture, {"ERR", "SAFE"}));
        if (!okOf(Resp) || verdictOf(Resp, 0) != "YES" ||
            verdictOf(Resp, 1) != "NO")
          ++Failures[I];
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (unsigned I = 0; I < NumClients; ++I)
    EXPECT_EQ(Failures[I], 0) << "client " << I;

  // All clients shared one pooled session of the one program.
  Client C(T.S.port());
  Json Stats = C.call(R"({"op":"stats"})");
  const Json *Pool = Stats.find("pool");
  ASSERT_NE(Pool, nullptr);
  EXPECT_EQ(Pool->find("opens")->asNumber(), 1.0);
  EXPECT_EQ(Pool->find("resident_sessions")->asNumber(), 1.0);
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

TEST(ServerTest, ShutdownVerbStopsTheServer) {
  Server S((ServerOptions()));
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  {
    Client C(S.port());
    Json Resp = C.call(R"({"op":"shutdown"})");
    EXPECT_TRUE(okOf(Resp)); // The response flushes before the stop.
  }
  S.wait(); // Must return: workers drain and exit.
  EXPECT_TRUE(S.stopping());

  // New connections are refused once the listener is down.
  std::string ConnErr;
  support::Socket Refused =
      support::connectTcp("127.0.0.1", S.port(), &ConnErr);
  EXPECT_FALSE(Refused.valid());
}

TEST(ServerTest, SignalNotifyDrainsAndStops) {
  // The SIGINT/SIGTERM path minus the actual signal: the handler's only
  // action is notifyShutdownFromSignal(), so driving that directly
  // exercises the self-pipe wakeup, the drain, and the join.
  Server S((ServerOptions()));
  std::string Err;
  ASSERT_TRUE(S.start(&Err)) << Err;

  Client C(S.port());
  ASSERT_TRUE(okOf(C.call(solveRequest(Fixture, {"ERR"}))));

  std::thread Waiter([&S] { S.wait(); });
  S.notifyShutdownFromSignal();
  Waiter.join(); // Must return promptly; a hang here fails via timeout.
  EXPECT_TRUE(S.stopping());
}

//===----------------------------------------------------------------------===//
// Resource limits and fault containment
//===----------------------------------------------------------------------===//

TEST(ServerTest, TimeoutRequestYieldsStructuredLimitRowThenResumes) {
  TestServer T;
  Client C(T.S.port());
  ASSERT_TRUE(C.connected());

  // The bluetooth model takes well over a millisecond to solve, so a 1ms
  // per-request deadline deterministically stops at a round boundary.
  std::string Src = gen::bluetoothModel(2, 2);
  Json Req = Json::object()
                 .set("op", Json::str("solve"))
                 .set("source", Json::str(Src))
                 .set("timeout_ms", Json::number(1));
  Json Ts = Json::array();
  Ts.add(Json::str("ERR"));
  Req.set("targets", std::move(Ts));

  Json Resp = C.call(Req.dump());
  ASSERT_TRUE(okOf(Resp)) << errorOf(Resp);
  const Json *Rows = Resp.find("rows");
  ASSERT_NE(Rows, nullptr);
  ASSERT_EQ(Rows->items().size(), 1u);
  const Json *Status = Rows->items()[0].find("status");
  ASSERT_NE(Status, nullptr);
  EXPECT_EQ(Status->asString(), "hit_deadline");
  EXPECT_NE(Rows->items()[0].find("error"), nullptr);
  // A limit stop is a row, never a verdict.
  EXPECT_EQ(verdictOf(Resp, 0), "<missing>");

  // The same session retried without a deadline resumes and answers.
  Json Retry = C.call(solveRequest(Src, {"ERR"}));
  ASSERT_TRUE(okOf(Retry)) << errorOf(Retry);
  EXPECT_EQ(verdictOf(Retry, 0), "NO");

  Json Stats = C.call(R"({"op":"stats"})");
  ASSERT_TRUE(okOf(Stats));
  const Json *Srv = Stats.find("server");
  ASSERT_NE(Srv, nullptr);
  const Json *LimitStops = Srv->find("limit_stops");
  ASSERT_NE(LimitStops, nullptr);
  EXPECT_GE(LimitStops->asNumber(), 1.0);
}

TEST(ServerTest, InjectedOomIsContainedSessionEvictedDaemonServesOn) {
  TestServer T;
  Client C(T.S.port());
  ASSERT_TRUE(C.connected());

  // Arm deterministic allocation failure; the session's BddManager reads
  // the variable when the pool opens it during this request.
  ::setenv("GETAFIX_FAULT_ALLOC_AFTER", "50", 1);
  Json Resp = C.call(solveRequest(Fixture, {"ERR"}));
  ::unsetenv("GETAFIX_FAULT_ALLOC_AFTER");

  EXPECT_FALSE(okOf(Resp));
  EXPECT_NE(errorOf(Resp).find("session evicted"), std::string::npos)
      << errorOf(Resp);

  // The daemon is still serving: ping answers, and the same program
  // reopens cleanly now that the fault is unarmed.
  EXPECT_TRUE(okOf(C.call(R"({"op":"ping"})")));
  Json Retry = C.call(solveRequest(Fixture, {"ERR"}));
  ASSERT_TRUE(okOf(Retry)) << errorOf(Retry);
  EXPECT_EQ(verdictOf(Retry, 0), "YES");

  Json Stats = C.call(R"({"op":"stats"})");
  ASSERT_TRUE(okOf(Stats));
  const Json *Srv = Stats.find("server");
  ASSERT_NE(Srv, nullptr);
  const Json *Contained = Srv->find("contained_faults");
  ASSERT_NE(Contained, nullptr);
  EXPECT_GE(Contained->asNumber(), 1.0);
  const Json *Pool = Stats.find("pool");
  ASSERT_NE(Pool, nullptr);
  const Json *Poisoned = Pool->find("poisoned_evictions");
  ASSERT_NE(Poisoned, nullptr);
  EXPECT_GE(Poisoned->asNumber(), 1.0);
}
