//===- round_robin.cpp - Scheduling policies on the Bluetooth model -------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares free context switching against round-robin scheduling (the
/// Section-5 closing remark / Lal–Reps setting) on the Windows Bluetooth
/// driver model: per context bound, whether the assertion violation is
/// reachable under each policy and what the analysis costs. Round-robin
/// pins the schedule vector to constants, so its state space is a slice of
/// the free-schedule one. Both policies are one `SolverOptions` flag apart.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "gen/Workloads.h"

#include <cstdio>

using namespace getafix;

int main() {
  // One adder, two stoppers: the paper's Figure 3 reports the bug from
  // three context switches under free scheduling. Parse once; the sweep
  // reuses the built CFGs.
  DiagnosticEngine Diags;
  auto Conc = bp::parseConcurrentProgram(gen::bluetoothModel(1, 2), Diags);
  if (!Conc) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  auto Cfgs = conc::buildThreadCfgs(*Conc);
  Query Q = Query::fromConcurrent(*Conc, &Cfgs).target("ERR");

  std::printf("Bluetooth driver, 1 adder + 2 stoppers\n");
  std::printf("%8s %14s %14s\n", "switches", "free-schedule", "round-robin");
  for (unsigned K = 1; K <= 5; ++K) {
    SolveResult Free, RR;
    for (bool RoundRobin : {false, true}) {
      SolverOptions Opts;
      Opts.Engine = "conc";
      Opts.ContextBound = K;
      Opts.RoundRobin = RoundRobin;
      SolveResult R = Solver::solve(Q, Opts);
      if (!R.ok()) {
        std::fprintf(stderr, "solve failed: %s\n", R.Error.c_str());
        return 1;
      }
      (RoundRobin ? RR : Free) = R;
    }
    std::printf("%8u %6s %6.2fs %6s %6.2fs\n", K,
                Free.Reachable ? "BUG" : "safe", Free.Seconds,
                RR.Reachable ? "BUG" : "safe", RR.Seconds);
  }

  std::printf("\nRound-robin explores a slice of the free schedules: a bug "
              "it finds is real,\nbut freedom in the schedule may expose "
              "bugs at lower bounds.\n");
  return 0;
}
