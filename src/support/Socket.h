//===- Socket.h - POSIX socket plumbing for the query server ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over the POSIX socket calls the `getafixd` query
/// server and the `getafix_load` driver need: TCP (loopback by default)
/// and Unix-domain listeners/connectors, a write-everything helper, and a
/// buffered line reader whose reads poll with a timeout so server workers
/// can observe a shutdown flag between lines. No external dependencies —
/// just `<sys/socket.h>` and friends, which every target platform of this
/// repository ships.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_SOCKET_H
#define GETAFIX_SUPPORT_SOCKET_H

#include <string>
#include <utility>

namespace getafix {
namespace support {

/// Owning file-descriptor handle; closes on destruction. Move-only.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;
  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept {
    if (this != &O) {
      close();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  /// Releases ownership without closing.
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }
  void close();

private:
  int Fd = -1;
};

/// Opens a TCP listener on \p Host:\p Port (port 0 = kernel-assigned;
/// the actual port is written to \p ActualPort when non-null). Invalid
/// socket + \p Error on failure.
Socket listenTcp(const std::string &Host, unsigned Port, unsigned *ActualPort,
                 std::string *Error);

/// Opens a Unix-domain listener at \p Path (unlinking any stale socket
/// file first). Invalid socket + \p Error on failure.
Socket listenUnix(const std::string &Path, std::string *Error);

/// Blocking accept on \p ListenFd. Invalid socket on error or when the
/// listener was closed (the server's shutdown path).
Socket acceptOn(int ListenFd, std::string *Error);

Socket connectTcp(const std::string &Host, unsigned Port, std::string *Error);
Socket connectUnix(const std::string &Path, std::string *Error);

/// Writes all of \p Data, retrying on short writes and EINTR. SIGPIPE is
/// suppressed (the peer hanging up surfaces as `false`, not a signal).
bool writeAll(int Fd, const std::string &Data, std::string *Error = nullptr);

/// Buffered newline-delimited reader over a socket. `readLine` polls with
/// a caller-chosen timeout so a server worker can check its stop flag
/// between lines instead of blocking in `read` forever.
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}

  enum class Status {
    Line,    ///< A complete line was read into the out-parameter.
    Closed,  ///< Peer closed the connection (any partial line is dropped).
    Timeout, ///< No complete line within the timeout; call again.
    Error,   ///< Read failed.
  };

  /// Reads the next '\n'-terminated line (terminator and any trailing
  /// '\r' stripped). \p TimeoutMs < 0 blocks indefinitely.
  Status readLine(std::string &Out, int TimeoutMs = -1);

private:
  int Fd;
  std::string Buf;
  size_t Pos = 0; ///< Consumed prefix of Buf.
};

} // namespace support
} // namespace getafix

#endif // GETAFIX_SUPPORT_SOCKET_H
