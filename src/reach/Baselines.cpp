//===- Baselines.cpp - Comparison solvers ---------------------------------===//

#include "reach/Baselines.h"

#include "fpcalc/Evaluator.h"
#include "interp/SummaryOracle.h"
#include "support/Timer.h"
#include "symbolic/Encode.h"

using namespace getafix;
using namespace getafix::reach;
using namespace getafix::fpc;
using namespace getafix::sym;

namespace {

/// The Moped-style native solver: all variable bookkeeping is manual, which
/// is the programming style the paper's calculus is designed to replace.
class PostStarSolver {
public:
  PostStarSolver(const bp::ProgramCfg &Cfg, unsigned ProcId, unsigned Pc,
                 const BaselineOptions &Opts)
      : Cfg(Cfg), Factory(Sys), Mgr(0, Opts.CacheBits), Opts(Opts),
        TargetProcId(ProcId), TargetPc(Pc) {
    Mgr.setGcThreshold(Opts.GcThreshold);
    if (Opts.Governor)
      Mgr.setGovernor(Opts.Governor);
  }

  BaselineResult run();

private:
  void build(unsigned ProcId, unsigned Pc);
  BddPerm perm(const std::vector<std::pair<VarId, VarId>> &Pairs);
  BddCube cube(const std::vector<VarId> &Vars);

  Bdd internalImage(const Bdd &From);
  Bdd callImage(const Bdd &From);
  Bdd returnImage(const Bdd &Callers, const Bdd &Callees);

  const bp::ProgramCfg &Cfg;
  System Sys;
  VarFactory Factory;
  StateDomains Doms;
  std::unique_ptr<ProgramEncoder> Enc;
  BddManager Mgr;
  std::unique_ptr<Evaluator> Ev;
  BaselineOptions Opts;
  unsigned TargetProcId;
  unsigned TargetPc;

  // State tuple and temporaries (mirrors the formula engine's layout).
  ConfVars S;
  VarId RTPc = 0, RTCL = 0, RTCG = 0;
  VarId RUMod = 0, RUPcX = 0, RULX = 0, RUGX = 0, RUECL = 0;

  // Precomputed renamed relation copies and operation cubes.
  Bdd ProgIntR, ProgCallEntryR, SkipR, Ret1R, ProgCallRetR, ExitR, Ret2R;
  Bdd InitStates, TargetStates;
  BddPerm IntIn, IntOut, CallIn, CallOut, RetCallerIn, RetCalleeIn;
  BddCube IntCube, CallCube, RetAC, RetBC, RetOuterC;
  Bdd EqClEcl, EqCgEcg, PcIsZero;
};

} // namespace

BddPerm
PostStarSolver::perm(const std::vector<std::pair<VarId, VarId>> &Pairs) {
  std::vector<std::pair<unsigned, unsigned>> BitPairs;
  for (auto [From, To] : Pairs) {
    const std::vector<unsigned> &F = Ev->layout().bits(From);
    const std::vector<unsigned> &T = Ev->layout().bits(To);
    assert(F.size() == T.size() && "width mismatch in renaming");
    for (size_t I = 0; I < F.size(); ++I)
      BitPairs.emplace_back(F[I], T[I]);
  }
  return Mgr.makePermutation(BitPairs);
}

BddCube PostStarSolver::cube(const std::vector<VarId> &Vars) {
  std::vector<unsigned> Bits;
  for (VarId V : Vars)
    for (unsigned B : Ev->layout().bits(V))
      Bits.push_back(B);
  return Mgr.makeCube(Bits);
}

void PostStarSolver::build(unsigned ProcId, unsigned Pc) {
  const bp::Program &Prog = *Cfg.Prog;
  Doms.Mod = Sys.addDomain("Module", Prog.Procs.size());
  Doms.Pc = Sys.addDomain("PrCount", Cfg.maxPcs());
  Doms.GVec = Sys.addBitDomain("Global",
                               std::max(Prog.numGlobals(), 1u));
  Doms.LVec = Sys.addBitDomain("Local",
                               std::max(Prog.maxLocalSlots(), 1u));
  DomainId ChoiceDom = Sys.addDomain(
      "Choice", uint64_t(1) << ProgramEncoder::maxChoiceBits(Cfg));
  Enc = std::make_unique<ProgramEncoder>(Sys, Factory, Doms, Cfg, ChoiceDom);

  S.Mod = Factory.makeVar("s.mod", Doms.Mod);
  S.Pc = Factory.makeVar("s.pc", Doms.Pc);
  S.CG = Factory.makeVar("s.CG", Doms.GVec);
  S.CL = Factory.makeVar("s.CL", Doms.LVec);
  S.ECG = Factory.makeVar("s.ECG", Doms.GVec);
  S.ECL = Factory.makeVar("s.ECL", Doms.LVec);
  RTPc = Factory.makeVar("t.pc", Doms.Pc);
  RTCL = Factory.makeVar("t.CL", Doms.LVec);
  RTCG = Factory.makeVar("t.CG", Doms.GVec);
  RUMod = Factory.makeVar("u.mod", Doms.Mod);
  RUPcX = Factory.makeVar("u.pc", Doms.Pc);
  RULX = Factory.makeVar("u.CL", Doms.LVec);
  RUGX = Factory.makeVar("u.CG", Doms.GVec);
  RUECL = Factory.makeVar("u.ECL", Doms.LVec);

  Ev = std::make_unique<Evaluator>(Sys, Mgr, Factory.makeLayout(Mgr));
  Enc->bind(*Ev, ProcId, Pc);

  const ProgramEncoder::FormalSets &F = Enc->formals();

  // Rename all relations onto the solver's variable copies once.
  ProgIntR = Ev->input(Enc->ProgramInt)
                 .permute(perm({{F.IMod, S.Mod},
                                {F.IPcFrom, RTPc},
                                {F.IPcTo, S.Pc},
                                {F.ILFrom, RTCL},
                                {F.ILTo, S.CL},
                                {F.IGFrom, RTCG},
                                {F.IGTo, S.CG}}));
  // Entry discovery: caller (t-copy) calls S-copy entry.
  ProgCallEntryR = Ev->input(Enc->ProgramCall)
                       .permute(perm({{F.CModCaller, RUMod},
                                      {F.CModCallee, S.Mod},
                                      {F.CPc, RTPc},
                                      {F.CLCaller, RTCL},
                                      {F.CLEntry, S.CL},
                                      {F.CG, S.CG}}));
  SkipR = Ev->input(Enc->SkipCall)
              .permute(perm({{F.SMod, S.Mod},
                             {F.SPcCall, RTPc},
                             {F.SPcRet, S.Pc}}));
  Ret1R = Ev->input(Enc->SetReturn1)
              .permute(perm({{F.R1Mod, S.Mod},
                             {F.R1ModCallee, RUMod},
                             {F.R1Pc, RTPc},
                             {F.R1LCaller, RTCL},
                             {F.R1LRet, S.CL}}));
  ProgCallRetR = Ev->input(Enc->ProgramCall)
                     .permute(perm({{F.CModCaller, S.Mod},
                                    {F.CModCallee, RUMod},
                                    {F.CPc, RTPc},
                                    {F.CLCaller, RTCL},
                                    {F.CLEntry, RUECL},
                                    {F.CG, RTCG}}));
  ExitR = Ev->input(Enc->ExitRel)
              .permute(perm({{F.EMod, RUMod}, {F.EPc, RUPcX}}));
  Ret2R = Ev->input(Enc->SetReturn2)
              .permute(perm({{F.R2Mod, S.Mod},
                             {F.R2ModCallee, RUMod},
                             {F.R2Pc, RTPc},
                             {F.R2PcExit, RUPcX},
                             {F.R2LExit, RULX},
                             {F.R2LRet, S.CL},
                             {F.R2GExit, RUGX},
                             {F.R2GRet, S.CG}}));

  InitStates = Ev->input(Enc->InitRel)
                   .permute(perm({{F.NMod, S.Mod},
                                  {F.NPc, S.Pc},
                                  {F.NL, S.CL}}));
  EqClEcl = Ev->encodeEqVar(S.CL, S.ECL);
  EqCgEcg = Ev->encodeEqVar(S.CG, S.ECG);
  PcIsZero = Ev->encodeEqConst(S.Pc, 0);
  InitStates &= EqClEcl & EqCgEcg;

  TargetStates =
      Ev->encodeEqConst(S.Mod, ProcId) & Ev->encodeEqConst(S.Pc, Pc);

  IntIn = perm({{S.Pc, RTPc}, {S.CL, RTCL}, {S.CG, RTCG}});
  IntCube = cube({RTPc, RTCL, RTCG});
  IntOut = perm({}); // Identity: images land directly on the S copy.
  CallIn = perm({{S.Mod, RUMod},
                 {S.Pc, RTPc},
                 {S.CL, RTCL},
                 {S.CG, S.CG}}); // Caller globals stay on S.CG.
  CallCube = cube({RUMod, RTPc, RTCL, S.ECL, S.ECG});
  RetCallerIn = perm({{S.Pc, RTPc}, {S.CL, RTCL}, {S.CG, RTCG}});
  RetCalleeIn = perm({{S.Mod, RUMod},
                      {S.Pc, RUPcX},
                      {S.CL, RULX},
                      {S.CG, RUGX},
                      {S.ECL, RUECL},
                      {S.ECG, RTCG}});
  RetAC = cube({RTCL});
  RetBC = cube({RULX, RUGX});
  RetOuterC = cube({RTPc, RTCG, RUMod, RUPcX, RUECL});
}

Bdd PostStarSolver::internalImage(const Bdd &From) {
  return From.permute(IntIn).andExists(ProgIntR, IntCube);
}

Bdd PostStarSolver::callImage(const Bdd &From) {
  Bdd Callers = From.permute(CallIn);
  Bdd Entries = Callers.andExists(ProgCallEntryR, CallCube);
  return Entries & PcIsZero & EqClEcl & EqCgEcg;
}

Bdd PostStarSolver::returnImage(const Bdd &Callers, const Bdd &Callees) {
  Bdd GroupA = Callers.permute(RetCallerIn) & SkipR & Ret1R;
  GroupA = GroupA.andExists(ProgCallRetR, RetAC);
  Bdd GroupB = (Callees.permute(RetCalleeIn) & ExitR).andExists(Ret2R,
                                                                RetBC);
  return GroupA.andExists(GroupB, RetOuterC);
}

BaselineResult PostStarSolver::run() {
  BaselineResult Result;
  Timer T;

  Bdd Reach, Frontier;
  try {
    build(TargetProcId, TargetPc);
    Reach = InitStates;
    Frontier = Reach;
    while (!Frontier.isZero()) {
      if (support::ResourceGovernor *G = Mgr.governor())
        G->check();
      ++Result.Iterations;
      if (Opts.EarlyStop && !(Frontier & TargetStates).isZero()) {
        Result.Reachable = true;
        break;
      }
      Bdd New = internalImage(Frontier) | callImage(Frontier) |
                returnImage(Frontier, Reach) | returnImage(Reach, Frontier);
      Bdd Fresh = New & !Reach;
      Reach |= Fresh;
      Frontier = std::move(Fresh);
    }
    if (!Result.Reachable)
      Result.Reachable = !(Reach & TargetStates).isZero();
  } catch (const support::ResourceInterrupt &RI) {
    // A mid-iteration trip leaves Reach at the last completed round;
    // report what was found so far plus the limit. The manager stays
    // consistent (partial operation results are unreferenced garbage).
    Result.Limit = RI.Limit;
    Result.Reachable = !Reach.isNull() && !(Reach & TargetStates).isZero();
  }
  Result.SummaryNodes = Reach.isNull() ? 0 : Reach.nodeCount();
  Result.Bdd = Mgr.stats();
  Result.PeakLiveNodes = Result.Bdd.PeakNodes;
  Result.BddNodesCreated = Result.Bdd.NodesCreated;
  Result.BddCacheLookups = Result.Bdd.CacheLookups;
  Result.BddCacheHits = Result.Bdd.CacheHits;
  Result.Seconds = T.seconds();
  return Result;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

BaselineResult reach::mopedPostStar(const bp::ProgramCfg &Cfg,
                                    unsigned ProcId, unsigned Pc,
                                    const BaselineOptions &Opts) {
  PostStarSolver Solver(Cfg, ProcId, Pc, Opts);
  return Solver.run();
}

BaselineResult reach::mopedPostStarLabel(const bp::ProgramCfg &Cfg,
                                         const std::string &Label,
                                         const BaselineOptions &Opts) {
  unsigned ProcId = 0, Pc = 0;
  if (!Cfg.findLabelPc(Label, ProcId, Pc)) {
    BaselineResult Result;
    Result.TargetFound = false;
    return Result;
  }
  return mopedPostStar(Cfg, ProcId, Pc, Opts);
}

BaselineResult reach::bebopTabulate(const bp::ProgramCfg &Cfg,
                                    unsigned ProcId, unsigned Pc,
                                    const BaselineOptions &Opts) {
  BaselineResult Result;
  Timer T;
  try {
    interp::OracleResult R =
        interp::summaryReachability(Cfg, ProcId, Pc, Opts.Governor);
    Result.Reachable = R.Reachable;
    Result.Iterations = R.PathEdges;
  } catch (const support::ResourceInterrupt &RI) {
    Result.Limit = RI.Limit;
  }
  Result.Seconds = T.seconds();
  return Result;
}

BaselineResult reach::bebopTabulateLabel(const bp::ProgramCfg &Cfg,
                                         const std::string &Label,
                                         const BaselineOptions &Opts) {
  unsigned ProcId = 0, Pc = 0;
  if (!Cfg.findLabelPc(Label, ProcId, Pc)) {
    BaselineResult Result;
    Result.TargetFound = false;
    return Result;
  }
  return bebopTabulate(Cfg, ProcId, Pc, Opts);
}
