//===- BddTest.cpp - BDD package tests ------------------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace getafix;

namespace {

/// A brute-force boolean function over N variables: 2^N truth-table bits.
class TruthTable {
public:
  explicit TruthTable(unsigned NumVars, uint64_t Bits = 0)
      : NumVars(NumVars), Bits(Bits) {
    assert(NumVars <= 6 && "truth table capped at 6 vars");
  }

  static TruthTable var(unsigned NumVars, unsigned V) {
    TruthTable T(NumVars);
    for (unsigned Row = 0; Row < (1u << NumVars); ++Row)
      if ((Row >> V) & 1)
        T.Bits |= uint64_t(1) << Row;
    return T;
  }

  bool eval(unsigned Row) const { return (Bits >> Row) & 1; }
  unsigned rows() const { return 1u << NumVars; }

  TruthTable operator&(const TruthTable &O) const {
    return TruthTable(NumVars, Bits & O.Bits);
  }
  TruthTable operator|(const TruthTable &O) const {
    return TruthTable(NumVars, Bits | O.Bits);
  }
  TruthTable operator^(const TruthTable &O) const {
    return TruthTable(NumVars, Bits ^ O.Bits);
  }
  TruthTable operator!() const {
    uint64_t Mask = rows() == 64 ? ~uint64_t(0)
                                 : ((uint64_t(1) << rows()) - 1);
    return TruthTable(NumVars, ~Bits & Mask);
  }

  TruthTable exists(unsigned V) const {
    TruthTable R(NumVars);
    for (unsigned Row = 0; Row < rows(); ++Row) {
      unsigned Lo = Row & ~(1u << V), Hi = Row | (1u << V);
      if (eval(Lo) || eval(Hi))
        R.Bits |= uint64_t(1) << Row;
    }
    return R;
  }

  unsigned NumVars;
  uint64_t Bits;
};

/// Checks that a BDD and a truth table agree on every assignment.
void expectEqual(const Bdd &B, const TruthTable &T, const char *What) {
  for (unsigned Row = 0; Row < T.rows(); ++Row) {
    std::vector<bool> Assignment(T.NumVars);
    for (unsigned V = 0; V < T.NumVars; ++V)
      Assignment[V] = (Row >> V) & 1;
    ASSERT_EQ(B.eval(Assignment), T.eval(Row))
        << What << " differs on row " << Row;
  }
}

/// Builds a random (Bdd, TruthTable) pair over NumVars variables.
std::pair<Bdd, TruthTable> randomFunction(BddManager &Mgr, Rng &R,
                                          unsigned NumVars, unsigned Ops) {
  Bdd B = R.flip() ? Mgr.one() : Mgr.zero();
  TruthTable T(NumVars, B.isOne() ? ~uint64_t(0) >> (64 - (1u << NumVars))
                                  : 0);
  for (unsigned I = 0; I < Ops; ++I) {
    unsigned V = unsigned(R.below(NumVars));
    Bdd Lit = Mgr.var(V);
    TruthTable LitT = TruthTable::var(NumVars, V);
    switch (R.below(3)) {
    case 0:
      B = B & Lit;
      T = T & LitT;
      break;
    case 1:
      B = B | Lit;
      T = T | LitT;
      break;
    default:
      B = B ^ Lit;
      T = T ^ LitT;
      break;
    }
    if (R.chance(1, 4)) {
      B = !B;
      T = !T;
    }
  }
  return {B, T};
}

class BddPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST(BddTest, TerminalBasics) {
  BddManager Mgr(4);
  EXPECT_TRUE(Mgr.one().isOne());
  EXPECT_TRUE(Mgr.zero().isZero());
  EXPECT_EQ(Mgr.one() & Mgr.zero(), Mgr.zero());
  EXPECT_EQ(Mgr.one() | Mgr.zero(), Mgr.one());
  EXPECT_EQ(!Mgr.one(), Mgr.zero());
  EXPECT_EQ(Mgr.one() ^ Mgr.one(), Mgr.zero());
}

TEST(BddTest, VarAndNvarAreComplements) {
  BddManager Mgr(3);
  for (unsigned V = 0; V < 3; ++V) {
    EXPECT_EQ(!Mgr.var(V), Mgr.nvar(V));
    EXPECT_EQ(Mgr.var(V) & Mgr.nvar(V), Mgr.zero());
    EXPECT_EQ(Mgr.var(V) | Mgr.nvar(V), Mgr.one());
  }
}

TEST(BddTest, HashConsingCanonicity) {
  BddManager Mgr(4);
  Bdd A = (Mgr.var(0) & Mgr.var(1)) | Mgr.var(2);
  Bdd B = Mgr.var(2) | (Mgr.var(1) & Mgr.var(0));
  EXPECT_EQ(A, B) << "equivalent functions must share one node";
}

TEST(BddTest, IteMatchesDefinition) {
  BddManager Mgr(4);
  Rng R(7);
  for (unsigned Trial = 0; Trial < 50; ++Trial) {
    auto [F, FT] = randomFunction(Mgr, R, 4, 4);
    auto [G, GT] = randomFunction(Mgr, R, 4, 4);
    auto [H, HT] = randomFunction(Mgr, R, 4, 4);
    Bdd Ite = F.ite(G, H);
    Bdd Expected = (F & G) | (!F & H);
    EXPECT_EQ(Ite, Expected);
    (void)FT;
    (void)GT;
    (void)HT;
  }
}

TEST_P(BddPropertyTest, OpsMatchTruthTables) {
  BddManager Mgr(5);
  Rng R(GetParam());
  for (unsigned Trial = 0; Trial < 40; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 5, 6);
    auto [B, BT] = randomFunction(Mgr, R, 5, 6);
    expectEqual(A & B, AT & BT, "and");
    expectEqual(A | B, AT | BT, "or");
    expectEqual(A ^ B, AT ^ BT, "xor");
    expectEqual(!A, !AT, "not");
    expectEqual(A.implies(B), (!AT) | BT, "implies");
    expectEqual(A.iff(B), !(AT ^ BT), "iff");
  }
}

TEST_P(BddPropertyTest, QuantificationMatchesTruthTables) {
  BddManager Mgr(5);
  Rng R(GetParam() ^ 0x5555);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 5, 6);
    unsigned V1 = unsigned(R.below(5));
    unsigned V2 = unsigned(R.below(5));
    BddCube Cube = Mgr.makeCube({V1, V2});
    TruthTable ExT = AT.exists(V1).exists(V2);
    expectEqual(A.exists(Cube), ExT, "exists");
    TruthTable FaT = !(((!AT).exists(V1)).exists(V2));
    expectEqual(A.forall(Cube), FaT, "forall");
  }
}

TEST_P(BddPropertyTest, AndExistsIsFusedRelationalProduct) {
  BddManager Mgr(5);
  Rng R(GetParam() ^ 0xabcdef);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 5, 6);
    auto [B, BT] = randomFunction(Mgr, R, 5, 6);
    (void)AT;
    (void)BT;
    unsigned V1 = unsigned(R.below(5));
    unsigned V2 = unsigned(R.below(5));
    BddCube Cube = Mgr.makeCube({V1, V2});
    EXPECT_EQ(A.andExists(B, Cube), (A & B).exists(Cube));
  }
}

TEST_P(BddPropertyTest, PermuteMatchesSubstitution) {
  BddManager Mgr(6);
  Rng R(GetParam() ^ 0x1234);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 3, 5);
    (void)AT;
    // Rename 0,1,2 -> 3,4,5 (monotone) and 0,1,2 -> 5,4,3 (reversing).
    BddPerm Up = Mgr.makePermutation({{0, 3}, {1, 4}, {2, 5}});
    BddPerm Rev = Mgr.makePermutation({{0, 5}, {1, 4}, {2, 3}});
    Bdd AUp = A.permute(Up);
    Bdd ARev = A.permute(Rev);
    for (unsigned Row = 0; Row < 8; ++Row) {
      std::vector<bool> Orig(6, false), UpA(6, false), RevA(6, false);
      for (unsigned V = 0; V < 3; ++V) {
        bool Bit = (Row >> V) & 1;
        Orig[V] = Bit;
        UpA[3 + V] = Bit;
        RevA[5 - V] = Bit;
      }
      EXPECT_EQ(AUp.eval(UpA), A.eval(Orig));
      EXPECT_EQ(ARev.eval(RevA), A.eval(Orig));
    }
  }
}

TEST(BddTest, NonInjectiveRenameDiagonalizes) {
  BddManager Mgr(3);
  // f = x0 ^ x1; rename both onto x2: f[x0:=x2, x1:=x2] == false.
  Bdd F = Mgr.var(0) ^ Mgr.var(1);
  BddPerm Diag = Mgr.makePermutation({{0, 2}, {1, 2}});
  EXPECT_EQ(F.permute(Diag), Mgr.zero());
  Bdd G = Mgr.var(0) & Mgr.var(1);
  EXPECT_EQ(G.permute(Diag), Mgr.var(2));
}

TEST(BddTest, RestrictIsCofactor) {
  BddManager Mgr(4);
  Rng R(99);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 4, 5);
    unsigned V = unsigned(R.below(4));
    Bdd Hi = A.restrict(V, true);
    Bdd Lo = A.restrict(V, false);
    // Shannon expansion: f == (v & f|v=1) | (!v & f|v=0).
    EXPECT_EQ(A, (Mgr.var(V) & Hi) | (Mgr.nvar(V) & Lo));
    (void)AT;
  }
}

TEST(BddTest, SatCount) {
  BddManager Mgr(4);
  EXPECT_DOUBLE_EQ(Mgr.one().satCount(4), 16.0);
  EXPECT_DOUBLE_EQ(Mgr.zero().satCount(4), 0.0);
  EXPECT_DOUBLE_EQ(Mgr.var(0).satCount(4), 8.0);
  EXPECT_DOUBLE_EQ((Mgr.var(0) & Mgr.var(1)).satCount(4), 4.0);
  EXPECT_DOUBLE_EQ((Mgr.var(0) | Mgr.var(1)).satCount(4), 12.0);
  EXPECT_DOUBLE_EQ((Mgr.var(0) ^ Mgr.var(1)).satCount(4), 8.0);
}

TEST(BddTest, SupportAndNodeCount) {
  BddManager Mgr(5);
  Bdd F = (Mgr.var(0) & Mgr.var(2)) | Mgr.var(4);
  std::vector<unsigned> Expected{0, 2, 4};
  EXPECT_EQ(F.support(), Expected);
  EXPECT_GT(F.nodeCount(), 0u);
  EXPECT_EQ(Mgr.one().nodeCount(), 0u);
}

TEST(BddTest, OnePathSatisfies) {
  BddManager Mgr(4);
  Rng R(5);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 4, 5);
    (void)AT;
    if (A.isZero())
      continue;
    std::vector<int8_t> Path = A.onePath();
    std::vector<bool> Assignment(4);
    for (unsigned V = 0; V < 4; ++V)
      Assignment[V] = Path[V] == 1;
    EXPECT_TRUE(A.eval(Assignment));
  }
}

TEST(BddTest, CubeBddIsConjunction) {
  BddManager Mgr(4);
  BddCube Cube = Mgr.makeCube({3, 1});
  EXPECT_EQ(Mgr.cubeBdd(Cube), Mgr.var(1) & Mgr.var(3));
}

TEST(BddTest, CubeInterningDeduplicates) {
  BddManager Mgr(4);
  BddCube A = Mgr.makeCube({1, 2});
  BddCube B = Mgr.makeCube({2, 1, 2});
  EXPECT_EQ(A.Id, B.Id);
}

TEST(BddTest, GcPreservesLiveHandles) {
  BddManager Mgr(8);
  Rng R(11);
  auto [Keep, KeepT] = randomFunction(Mgr, R, 6, 10);
  size_t KeepNodes = Keep.nodeCount();
  // Create and drop lots of garbage. (Stay within TruthTable's 6-variable
  // cap: the manager has 8 variables, but the helper shadows every random
  // function with a 2^N-bit truth table.)
  for (unsigned I = 0; I < 200; ++I) {
    auto [Tmp, TmpT] = randomFunction(Mgr, R, 6, 12);
    (void)Tmp;
    (void)TmpT;
  }
  size_t Before = Mgr.liveNodeCount();
  Mgr.gc();
  EXPECT_LT(Mgr.liveNodeCount(), Before);
  EXPECT_EQ(Keep.nodeCount(), KeepNodes);
  // The function still evaluates correctly after collection.
  expectEqual(Keep, KeepT, "post-gc");
  // And new operations still work.
  EXPECT_EQ(Keep & Mgr.one(), Keep);
}

TEST(BddTest, GcStatsAccumulate) {
  BddManager Mgr(4);
  { Bdd Garbage = Mgr.var(0) & Mgr.var(1) & Mgr.var(2); }
  Mgr.gc();
  EXPECT_GE(Mgr.stats().GcRuns, 1u);
  EXPECT_GE(Mgr.stats().GcReclaimed, 1u);
}

TEST(BddTest, FrontierStaysInInterval) {
  // frontier(F, G) must lie between F \ G and F; random pairs probe the
  // interval bound, and the two structural guarantees are pinned exactly:
  // equal operands collapse to zero, and a zero old set returns F itself.
  BddManager Mgr(6);
  Rng R(23);
  for (unsigned Trial = 0; Trial < 40; ++Trial) {
    auto [F, FT] = randomFunction(Mgr, R, 6, 8);
    auto [G, GT] = randomFunction(Mgr, R, 6, 8);
    Bdd Frontier = F.frontier(G);
    // F \ G <= Frontier <= F, i.e. both inclusions hold.
    EXPECT_TRUE(((F & !G) & !Frontier).isZero()) << "lost new tuples";
    EXPECT_TRUE((Frontier & !F).isZero()) << "invented tuples";
    (void)FT;
    (void)GT;
  }
  Bdd F = Mgr.var(0) | Mgr.var(1);
  EXPECT_TRUE(F.frontier(F).isZero());
  EXPECT_EQ(F.frontier(Mgr.zero()), F);
  EXPECT_TRUE(F.frontier(Mgr.one()).isZero());
  EXPECT_EQ(Mgr.one().frontier(Mgr.zero()), Mgr.one());
}

TEST(BddTest, NewVarGrowsManager) {
  BddManager Mgr(0);
  unsigned V0 = Mgr.newVar();
  unsigned V1 = Mgr.newVar();
  EXPECT_EQ(V0, 0u);
  EXPECT_EQ(V1, 1u);
  EXPECT_EQ(Mgr.numVars(), 2u);
  EXPECT_EQ(Mgr.var(V0) & Mgr.var(V1), Mgr.var(V1) & Mgr.var(V0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
