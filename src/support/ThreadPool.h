//===- ThreadPool.h - Work-stealing worker pool -----------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool: each worker owns a deque, `run`
/// pushes to the deques round-robin, a worker pops from the *back* of its
/// own deque (LIFO, cache-warm) and steals from the *front* of a victim's
/// (FIFO, oldest task — the classic Arora/Blumofe/Plumb discipline, here
/// behind one pool mutex rather than lock-free deques: tasks in this
/// codebase are whole SCC fixpoint solves, so task granularity dwarfs a
/// mutex acquisition and the simple scheme is the TSAN-friendly one).
///
/// Tasks receive the index of the worker executing them, so callers can
/// attach per-worker state (the parallel evaluator keys its per-worker BDD
/// managers this way). The pool is agnostic of task ordering constraints —
/// dependency scheduling lives in fpc::runDag, which only submits tasks
/// whose dependencies already completed.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_THREADPOOL_H
#define GETAFIX_SUPPORT_THREADPOOL_H

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace getafix {
namespace support {

class ThreadPool {
public:
  using Task = std::function<void(unsigned Worker)>;

  explicit ThreadPool(unsigned Threads)
      : Queues(Threads == 0 ? 1 : Threads) {
    unsigned N = unsigned(Queues.size());
    Workers.reserve(N);
    for (unsigned W = 0; W < N; ++W)
      Workers.emplace_back([this, W] { workerLoop(W); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stop = true;
    }
    Wake.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return unsigned(Workers.size()); }

  /// Enqueues \p T. Tasks may themselves call `run` (the DAG runner's
  /// completion handler submits newly unblocked tasks from worker
  /// threads).
  void run(Task T) {
    unsigned Home = NextQueue.fetch_add(1, std::memory_order_relaxed) %
                    unsigned(Queues.size());
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queues[Home].push_back(std::move(T));
    }
    Wake.notify_one();
  }

  /// Tasks executed after being stolen from another worker's deque (a
  /// utilization signal for the scheduler's counters).
  uint64_t steals() const { return Steals.load(std::memory_order_relaxed); }

private:
  void workerLoop(unsigned W) {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (true) {
      Task T;
      bool Stolen = false;
      if (!Queues[W].empty()) {
        T = std::move(Queues[W].back());
        Queues[W].pop_back();
      } else {
        for (size_t I = 1; I < Queues.size() && !T; ++I) {
          std::deque<Task> &Victim = Queues[(W + I) % Queues.size()];
          if (!Victim.empty()) {
            T = std::move(Victim.front());
            Victim.pop_front();
            Stolen = true;
          }
        }
      }
      if (T) {
        Lock.unlock();
        if (Stolen)
          Steals.fetch_add(1, std::memory_order_relaxed);
        T(W);
        Lock.lock();
        continue;
      }
      if (Stop)
        return;
      Wake.wait(Lock);
    }
  }

  /// One mutex for all deques: contended only at task push/pop boundaries,
  /// which for SCC-sized tasks is noise — and it makes the
  /// empty-check-then-sleep race impossible by construction.
  std::mutex Mutex;
  std::condition_variable Wake;
  std::vector<std::deque<Task>> Queues;
  std::vector<std::thread> Workers;
  std::atomic<unsigned> NextQueue{0};
  std::atomic<uint64_t> Steals{0};
  bool Stop = false;
};

} // namespace support
} // namespace getafix

#endif // GETAFIX_SUPPORT_THREADPOOL_H
