//===- Rng.h - Deterministic random number generator ------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (xoshiro256**) used by the workload
/// generators and property tests. Determinism matters: every benchmark run
/// and every property test must see the same programs for a given seed.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_RNG_H
#define GETAFIX_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace getafix {

/// Deterministic xoshiro256** generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ull;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      Word = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t *S = State;
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() needs a positive bound");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the small bounds the generators use.
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + below(Hi - Lo + 1);
  }

  bool flip() { return (next() & 1) != 0; }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && Num <= Den && "invalid probability");
    return below(Den) < Num;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace getafix

#endif // GETAFIX_SUPPORT_RNG_H
