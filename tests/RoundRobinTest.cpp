//===- RoundRobinTest.cpp - Round-robin scheduling tests ------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the round-robin variant of bounded context-switching (the
/// Section-5 closing remark's setting, also Lal–Reps'): the symbolic
/// engine under the fixed schedule must agree with the explicit oracle
/// restricted the same way, round-robin reachability must imply
/// free-schedule reachability, and schedules that free switching exploits
/// but round-robin forbids must separate the two.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "interp/ConcurrentOracle.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

struct ParsedConc {
  std::unique_ptr<bp::ConcurrentProgram> Conc;
  std::vector<bp::ProgramCfg> Cfgs;
};

ParsedConc parseConc(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedConc P;
  P.Conc = bp::parseConcurrentProgram(Src, Diags);
  EXPECT_TRUE(P.Conc != nullptr) << Diags.str() << "\nsource:\n" << Src;
  if (P.Conc)
    P.Cfgs = conc::buildThreadCfgs(*P.Conc);
  return P;
}

/// Two threads passing a token: thread 0 raises h0 and hands the turn to
/// thread 1, which acknowledges with h1; thread 0 reports ERR once it sees
/// the acknowledgement. Thread 0 must be active again after thread 1 ran,
/// so round-robin needs two switches (t0, t1, t0).
const char *TokenRing = R"(
shared decl turn, h0, h1;
thread
main() begin
  while (T) do
    if (!turn) then
      h0 := T;
      turn := T;
    else
      skip;
    fi
    if (h1) then
      ERR: skip;
    else
      skip;
    fi
  od
end
end
thread
main() begin
  while (T) do
    if (turn & h0) then
      h1 := T;
      turn := F;
    else
      skip;
    fi
  od
end
end
)";

/// Three threads: thread 0 raises a flag, thread 2 reports it. Free
/// scheduling reaches ERR with one switch (0 -> 2); round-robin needs two
/// (0 -> 1 -> 2).
const char *ThreeHop = R"(
shared decl flag;
thread
main() begin
  flag := T;
end
end
thread
main() begin
  skip;
end
end
thread
main() begin
  if (flag) then ERR: skip; else skip; fi
end
end
)";

bool symbolic(const ParsedConc &P, const std::string &Label, unsigned K,
              bool RoundRobin) {
  SolverOptions Opts;
  Opts.Engine = "conc";
  Opts.ContextBound = K;
  Opts.RoundRobin = RoundRobin;
  SolveResult R = Solver::solve(
      Query::fromConcurrent(*P.Conc, &P.Cfgs).target(Label), Opts);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.Reachable;
}

bool oracle(const ParsedConc &P, const std::string &Label, unsigned K,
            bool RoundRobin) {
  for (unsigned T = 0; T < P.Conc->numThreads(); ++T) {
    interp::ConcurrentQuery Q;
    if (!P.Cfgs[T].findLabelPc(Label, Q.ProcId, Q.Pc))
      continue;
    Q.Thread = T;
    Q.MaxContextSwitches = K;
    Q.RoundRobin = RoundRobin;
    auto R = interp::concurrentReachability(*P.Conc, P.Cfgs, Q);
    EXPECT_TRUE(R.Exhaustive) << "oracle hit a bound";
    return R.Reachable;
  }
  ADD_FAILURE() << "label not found: " << Label;
  return false;
}

} // namespace

TEST(RoundRobinTest, ContextSwitchesForRounds) {
  EXPECT_EQ(conc::contextSwitchesForRounds(1, 2), 1u);
  EXPECT_EQ(conc::contextSwitchesForRounds(2, 2), 3u);
  EXPECT_EQ(conc::contextSwitchesForRounds(1, 4), 3u);
  EXPECT_EQ(conc::contextSwitchesForRounds(3, 3), 8u);
  EXPECT_EQ(conc::contextSwitchesForRounds(5, 1), 4u);
  // Zero arguments clamp to one round/thread instead of underflowing to
  // ~4 billion context switches (the old NDEBUG behavior).
  EXPECT_EQ(conc::contextSwitchesForRounds(0, 2), 1u);
  EXPECT_EQ(conc::contextSwitchesForRounds(2, 0), 1u);
  EXPECT_EQ(conc::contextSwitchesForRounds(0, 0), 0u);
}

TEST(RoundRobinTest, ThreeHopSeparatesSchedules) {
  auto P = parseConc(ThreeHop);
  ASSERT_TRUE(P.Conc != nullptr);

  // Free scheduling: switch straight from thread 0 to thread 2.
  EXPECT_TRUE(symbolic(P, "ERR", 1, /*RoundRobin=*/false));
  // Round-robin must pass through thread 1 first.
  EXPECT_FALSE(symbolic(P, "ERR", 1, /*RoundRobin=*/true));
  EXPECT_TRUE(symbolic(P, "ERR", 2, /*RoundRobin=*/true));
}

TEST(RoundRobinTest, TokenRingThreshold) {
  auto P = parseConc(TokenRing);
  ASSERT_TRUE(P.Conc != nullptr);

  EXPECT_FALSE(symbolic(P, "ERR", 1, /*RoundRobin=*/true));
  EXPECT_TRUE(symbolic(P, "ERR", 2, /*RoundRobin=*/true));
}

namespace {

/// (source, label, k) sweep comparing the round-robin symbolic engine to
/// the round-robin explicit oracle.
class RoundRobinDifferentialTest
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>> {};

} // namespace

TEST_P(RoundRobinDifferentialTest, SymbolicMatchesOracle) {
  auto [Src, K] = GetParam();
  auto P = parseConc(Src);
  ASSERT_TRUE(P.Conc != nullptr);

  bool Symbolic = symbolic(P, "ERR", K, /*RoundRobin=*/true);
  bool Explicit = oracle(P, "ERR", K, /*RoundRobin=*/true);
  EXPECT_EQ(Symbolic, Explicit) << "k=" << K;

  // Round-robin runs are a subset of free-schedule runs.
  if (Symbolic)
    EXPECT_TRUE(symbolic(P, "ERR", K, /*RoundRobin=*/false));
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundRobinDifferentialTest,
    ::testing::Combine(::testing::Values(TokenRing, ThreeHop),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u)));

TEST(RoundRobinTest, SingleThreadRoundRobinEqualsSequential) {
  auto P = parseConc(R"(
shared decl g;
thread
main() begin
  g := T;
  if (g) then ERR: skip; else skip; fi
end
end
)");
  ASSERT_TRUE(P.Conc != nullptr);
  // One thread: every schedule is round-robin; switches are impossible.
  for (unsigned K = 0; K <= 2; ++K) {
    EXPECT_TRUE(symbolic(P, "ERR", K, /*RoundRobin=*/true)) << K;
    EXPECT_TRUE(symbolic(P, "ERR", K, /*RoundRobin=*/false)) << K;
  }
}

TEST(RoundRobinTest, FinishedThreadPassesItsContextThrough) {
  // Thread 0 finishes immediately; threads 1 and 2 must exchange two
  // messages (t1 raises a, t2 acknowledges with b, t1 reports ERR). The
  // second round-robin round must route through the finished thread 0:
  // t0(c0) t1(c1: a:=T) t2(c2: b:=T) t0(c3: finished no-op) t1(c4: ERR).
  auto P = parseConc(R"(
shared decl a, b;
thread
main() begin
  skip;
end
end
thread
main() begin
  while (T) do
    a := T;
    if (b) then ERR: skip; else skip; fi
  od
end
end
thread
main() begin
  while (T) do
    if (a) then b := T; else skip; fi
  od
end
end
)");
  ASSERT_TRUE(P.Conc != nullptr);
  EXPECT_FALSE(symbolic(P, "ERR", 3, /*RoundRobin=*/true));
  EXPECT_TRUE(symbolic(P, "ERR", 4, /*RoundRobin=*/true));
  EXPECT_EQ(oracle(P, "ERR", 4, /*RoundRobin=*/true), true);
  EXPECT_EQ(oracle(P, "ERR", 3, /*RoundRobin=*/true), false);
  // Free scheduling needs only two switches (t1, t2, t1).
  EXPECT_TRUE(symbolic(P, "ERR", 2, /*RoundRobin=*/false));
}
