//===- Solver.cpp - Facade dispatch and query compilation -----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include "bp/Parser.h"
#include "concurrent/ConcReach.h"

#include <cstdint>
#include <cstdio>
#include <utility>

using namespace getafix;
using namespace getafix::api;

//===----------------------------------------------------------------------===//
// EngineRegistry
//===----------------------------------------------------------------------===//

EngineRegistry &EngineRegistry::instance() {
  static EngineRegistry Registry;
  // Deliberately outside the registry's own initializer: builtin
  // registration calls back into `Registry.add`.
  static bool BuiltinsRegistered =
      (detail::registerBuiltinEngines(Registry), true);
  (void)BuiltinsRegistered;
  return Registry;
}

void EngineRegistry::add(std::unique_ptr<Engine> E) {
  for (std::unique_ptr<Engine> &Existing : Engines)
    if (std::string(Existing->name()) == E->name()) {
      Existing = std::move(E);
      return;
    }
  Engines.push_back(std::move(E));
}

const Engine *EngineRegistry::lookup(const std::string &Name) const {
  for (const std::unique_ptr<Engine> &E : Engines)
    if (Name == E->name())
      return E.get();
  return nullptr;
}

std::vector<const Engine *> EngineRegistry::engines() const {
  std::vector<const Engine *> Out;
  Out.reserve(Engines.size());
  for (const std::unique_ptr<Engine> &E : Engines)
    Out.push_back(E.get());
  return Out;
}

//===----------------------------------------------------------------------===//
// Query compilation
//===----------------------------------------------------------------------===//

namespace {

/// The concurrent grammar starts with `shared`; skip leading whitespace and
/// look for the keyword (the same sniff the CLI used to hand-roll).
bool isConcurrentSource(const std::string &Text) {
  size_t Pos = Text.find_first_not_of(" \t\r\n");
  if (Pos == std::string::npos || Text.compare(Pos, 6, "shared") != 0)
    return false;
  if (Pos + 6 == Text.size())
    return true;
  // Keyword boundary: reject identifiers like `shared_init`.
  char Next = Text[Pos + 6];
  return !isalnum(static_cast<unsigned char>(Next)) && Next != '_';
}

Solver::Compilation fail(SolveStatus Status, std::string Error) {
  Solver::Compilation C;
  C.Status = Status;
  C.Error = std::move(Error);
  return C;
}

} // namespace

Solver::Compilation Solver::compile(const Query &Q, bool RequireTarget) {
  Compilation C;
  C.Query = std::make_unique<CompiledQuery>();
  CompiledQuery &CQ = *C.Query;
  CQ.WantWitness = Q.WantWitness;

  if (Q.Cfg) {
    CQ.Cfg = Q.Cfg;
  } else if (Q.Conc) {
    CQ.Conc = Q.Conc;
    if (Q.ThreadCfgs) {
      CQ.ThreadCfgs = Q.ThreadCfgs;
    } else {
      CQ.OwnedThreadCfgs = conc::buildThreadCfgs(*Q.Conc);
      CQ.ThreadCfgs = &CQ.OwnedThreadCfgs;
    }
  } else if (!Q.Source.empty()) {
    DiagnosticEngine Diags;
    if (isConcurrentSource(Q.Source)) {
      CQ.OwnedConc = bp::parseConcurrentProgram(Q.Source, Diags);
      if (!CQ.OwnedConc)
        return fail(SolveStatus::ParseError, Diags.str());
      CQ.Conc = CQ.OwnedConc.get();
      CQ.OwnedThreadCfgs = conc::buildThreadCfgs(*CQ.Conc);
      CQ.ThreadCfgs = &CQ.OwnedThreadCfgs;
    } else {
      CQ.OwnedProg = bp::parseProgram(Q.Source, Diags);
      if (!CQ.OwnedProg)
        return fail(SolveStatus::ParseError, Diags.str());
      CQ.OwnedCfg =
          std::make_unique<bp::ProgramCfg>(bp::buildCfg(*CQ.OwnedProg));
      CQ.Cfg = CQ.OwnedCfg.get();
    }
  } else {
    return fail(SolveStatus::BadQuery,
                "query carries no program (source, Cfg, or Conc)");
  }

  // Resolve the target to a concrete (thread,) proc, pc.
  if (CQ.isConcurrent()) {
    const std::vector<bp::ProgramCfg> &Cfgs = CQ.threadCfgs();
    if (Q.UsePoint) {
      if (Q.Thread >= Cfgs.size() ||
          Q.ProcId >= Cfgs[Q.Thread].Procs.size() ||
          Q.Pc >= Cfgs[Q.Thread].Procs[Q.ProcId].NumPcs)
        return fail(SolveStatus::TargetNotFound,
                    "target point (thread " + std::to_string(Q.Thread) +
                        ", " + std::to_string(Q.ProcId) + ", " +
                        std::to_string(Q.Pc) + ") out of range");
      CQ.Thread = Q.Thread;
      CQ.ProcId = Q.ProcId;
      CQ.Pc = Q.Pc;
      return C;
    }
    for (unsigned Thread = 0; Thread < Cfgs.size(); ++Thread)
      if (Cfgs[Thread].findLabelPc(Q.Label, CQ.ProcId, CQ.Pc)) {
        CQ.Thread = Thread;
        CQ.Label = Q.Label;
        return C;
      }
    if (!RequireTarget)
      return C;
    return fail(SolveStatus::TargetNotFound,
                "label '" + Q.Label + "' not found");
  }

  if (Q.UsePoint) {
    if (Q.ProcId >= CQ.cfg().Procs.size() ||
        Q.Pc >= CQ.cfg().Procs[Q.ProcId].NumPcs)
      return fail(SolveStatus::TargetNotFound,
                  "target point (" + std::to_string(Q.ProcId) + ", " +
                      std::to_string(Q.Pc) + ") out of range");
    CQ.ProcId = Q.ProcId;
    CQ.Pc = Q.Pc;
    return C;
  }
  if (!CQ.cfg().findLabelPc(Q.Label, CQ.ProcId, CQ.Pc)) {
    if (!RequireTarget)
      return C;
    return fail(SolveStatus::TargetNotFound,
                "label '" + Q.Label + "' not found");
  }
  CQ.Label = Q.Label;
  return C;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Resolves `Opts.Engine` (empty = per-kind default) against the registry
/// and the query kind. Null with \p Out filled on failure.
const Engine *selectEngine(const CompiledQuery &Q, const SolverOptions &Opts,
                           SolveResult &Out) {
  std::string Name = Opts.Engine;
  if (Name.empty())
    Name = Q.isConcurrent() ? "conc" : "ef-opt";
  const Engine *E = Solver::findEngine(Name);
  if (!E) {
    Out.Status = SolveStatus::UnknownEngine;
    Out.Error = "unknown engine '" + Name + "' (have: " +
                Solver::engineList(", ") + ")";
    return nullptr;
  }
  if (E->handlesConcurrent() != Q.isConcurrent()) {
    Out.Status = SolveStatus::BadQuery;
    Out.Error = std::string("engine '") + E->name() + "' answers " +
                (E->handlesConcurrent() ? "concurrent" : "sequential") +
                " queries, but the program is " +
                (Q.isConcurrent() ? "concurrent" : "sequential");
    return nullptr;
  }
  return E;
}

} // namespace

SolveResult Solver::solve(const Query &Q, const SolverOptions &Opts) {
  Compilation C = compile(Q);
  SolveResult R;
  if (!C.Query) {
    R.Status = C.Status;
    R.Error = std::move(C.Error);
    return R;
  }
  const Engine *E = selectEngine(*C.Query, Opts, R);
  if (!E)
    return R;
  return E->run(*C.Query, Opts);
}

//===----------------------------------------------------------------------===//
// SolverSession
//===----------------------------------------------------------------------===//

Solver::Compilation Solver::retarget(const CompiledQuery &Program,
                                     const Query &Q) {
  // Share compile()'s resolution logic by synthesizing a query that
  // borrows the session's prebuilt program views; only the target and
  // witness fields of \p Q matter.
  Query Borrowed = Q;
  Borrowed.Source.clear();
  Borrowed.Cfg = nullptr;
  Borrowed.Conc = nullptr;
  Borrowed.ThreadCfgs = nullptr;
  if (Program.isConcurrent()) {
    Borrowed.Conc = &Program.concurrent();
    Borrowed.ThreadCfgs = &Program.threadCfgs();
  } else {
    Borrowed.Cfg = &Program.cfg();
  }
  return compile(Borrowed);
}

std::unique_ptr<SolverSession> Solver::open(const Query &Program,
                                            const SolverOptions &Opts) {
  std::unique_ptr<SolverSession> S(new SolverSession());
  S->Opts = Opts;
  // The program may lack the (per-query) target; that is not an error.
  Compilation C = compile(Program, /*RequireTarget=*/false);
  if (!C.Query) {
    S->Status = C.Status;
    S->Error = std::move(C.Error);
    return S;
  }
  SolveResult R;
  const Engine *E = selectEngine(*C.Query, Opts, R);
  if (!E) {
    S->Status = R.Status;
    S->Error = std::move(R.Error);
    return S;
  }
  S->Program = std::move(C.Query);
  S->Eng = E;
  return S;
}

SolverSession::~SolverSession() = default;

SolveResult SolverSession::failResult() const {
  SolveResult R;
  R.Status = Status;
  R.Error = Error;
  return R;
}

SolveResult SolverSession::solve(const Query &Q) {
  ++Stats.Queries;
  if (!ok())
    return failResult();
  Solver::Compilation C = Solver::retarget(*Program, Q);
  if (!C.Query) {
    SolveResult R;
    R.Status = C.Status;
    R.Error = std::move(C.Error);
    return R;
  }
  return solveCompiled(*C.Query);
}

SolveResult SolverSession::solveCompiled(const CompiledQuery &Q) {
  if (Opts.SessionReuse && !OpenAttempted) {
    OpenAttempted = true;
    Session = Eng->open(*Program, Opts);
    if (Session && Gov)
      Session->setGovernor(Gov);
  }

  // Resolve the governor for this attempt: a per-request governor
  // (setResourceGovernor) wins; otherwise options-level limits arm a
  // fresh one-shot governor per solve (governors latch, so the one fixed
  // at open cannot be reused across queries).
  support::ResourceGovernor LocalGov;
  support::ResourceGovernor *Active = Gov;
  if (!Active && Opts.governed()) {
    Active = Opts.Governor ? Opts.Governor : &LocalGov;
    if (Opts.TimeoutMs != 0)
      Active->setDeadlineIn(static_cast<int64_t>(Opts.TimeoutMs));
    if (Opts.NodeBudget != 0)
      Active->setNodeBudget(Opts.NodeBudget);
    if (Opts.CancelFlag)
      Active->setCancelFlag(Opts.CancelFlag);
  }

  SolveResult R;
  if (Session) {
    ++Stats.SessionSolves;
    if (Active != Gov)
      Session->setGovernor(Active);
    R = Session->solve(Q);
    if (Active != Gov)
      Session->setGovernor(Gov); // LocalGov dies with this frame.
  } else {
    ++Stats.FreshSolves;
    if (Active) {
      // Fresh-fallback engines take the governor through the options;
      // zero the scalar limits so the engine does not re-arm the
      // already-armed governor.
      SolverOptions O = Opts;
      O.Governor = Active;
      O.TimeoutMs = 0;
      O.NodeBudget = 0;
      O.CancelFlag = nullptr;
      R = Eng->run(Q, O);
    } else {
      R = Eng->run(Q, Opts);
    }
  }
  Stats.SummariesReused += R.SummariesReused;
  Stats.SummariesRecomputed += R.SummariesRecomputed;
  // Keep the lock-free footprint gauge current: a pool budgeting many
  // sessions reads it for leased-out sessions it cannot safely sample.
  if (Session)
    FootGauge.store(Session->memoryFootprint(), std::memory_order_relaxed);
  return R;
}

std::vector<SolveResult>
SolverSession::solveAll(const std::vector<Query> &Qs) {
  std::vector<SolveResult> Results(Qs.size());

  // Duplicate targets are pure repeats (results are a function of the
  // resolved target and the fixed session options), so each distinct
  // target is solved once and copied to its twins.
  auto keyOf = [](const Query &Q) {
    std::string Key = Q.WantWitness ? "w|" : "-|";
    if (Q.UsePoint)
      Key += "p|" + std::to_string(Q.Thread) + "|" +
             std::to_string(Q.ProcId) + "|" + std::to_string(Q.Pc);
    else
      Key += "l|" + Q.Label;
    return Key;
  };
  std::map<std::string, size_t> FirstOf;
  std::vector<size_t> Twin(Qs.size(), SIZE_MAX);
  std::vector<size_t> Distinct;
  for (size_t I = 0; I < Qs.size(); ++I) {
    auto [It, Inserted] = FirstOf.emplace(keyOf(Qs[I]), I);
    if (Inserted)
      Distinct.push_back(I);
    else
      Twin[I] = It->second;
  }

  // Compile each distinct target once up front; failed compilations
  // report their error in place and take no further part.
  std::vector<std::unique_ptr<CompiledQuery>> Compiled(Qs.size());
  std::vector<bool> Done(Qs.size(), false);
  size_t Remaining = 0;
  for (size_t I : Distinct) {
    ++Stats.Queries;
    if (!ok()) {
      Results[I] = failResult();
      Done[I] = true;
      continue;
    }
    Solver::Compilation C = Solver::retarget(*Program, Qs[I]);
    if (!C.Query) {
      Results[I].Status = C.Status;
      Results[I].Error = std::move(C.Error);
      Done[I] = true;
      continue;
    }
    Compiled[I] = std::move(C.Query);
    ++Remaining;
  }

  // Two passes over the distinct targets: queries the engine answers
  // entirely from already-solved state go first (cheap replays), then the
  // remaining ones in input order — each of those extends the state, so
  // the scan re-runs until none is answerable without new rounds. Order
  // never changes any result (state only accumulates rounds of the one
  // deterministic sequence); it only front-loads the free answers.
  auto solveOne = [&](size_t I) {
    Results[I] = solveCompiled(*Compiled[I]);
    Done[I] = true;
    --Remaining;
  };
  if (Opts.SessionReuse && ok() && !OpenAttempted) {
    OpenAttempted = true;
    Session = Eng->open(*Program, Opts);
    if (Session && Gov)
      Session->setGovernor(Gov);
  }
  while (Remaining != 0) {
    bool Progress = false;
    if (Session)
      for (size_t I : Distinct) {
        if (Done[I])
          continue;
        if (Session->answersFromState(*Compiled[I])) {
          solveOne(I);
          Progress = true;
        }
      }
    if (Remaining == 0)
      break;
    if (!Progress || !Session) {
      // Nothing is answerable from state: advance with the first pending
      // query (its solve extends the state), then rescan.
      for (size_t I : Distinct)
        if (!Done[I]) {
          solveOne(I);
          break;
        }
    }
  }

  for (size_t I = 0; I < Qs.size(); ++I)
    if (Twin[I] != SIZE_MAX) {
      ++Stats.Queries;
      ++Stats.DedupHits;
      Results[I] = Results[Twin[I]];
    }
  return Results;
}

void SolverSession::setResourceGovernor(support::ResourceGovernor *G) {
  Gov = G;
  if (Session)
    Session->setGovernor(G);
}

void SolverSession::clearComputedCache() {
  if (Session) {
    Session->clearComputedCache();
    FootGauge.store(Session->memoryFootprint(), std::memory_order_relaxed);
  }
}

size_t SolverSession::liveNodes() const {
  return Session ? Session->liveNodes() : 0;
}

size_t SolverSession::peakLiveNodes() const {
  return Session ? Session->peakLiveNodes() : 0;
}

size_t SolverSession::memoryFootprint() const {
  size_t F = Session ? Session->memoryFootprint() : 0;
  FootGauge.store(F, std::memory_order_relaxed);
  return F;
}

std::string Solver::formulaText(const Query &Q, const SolverOptions &Opts,
                                std::string *Error) {
  // The equation system does not depend on the target, so a missing label
  // must not block printing it.
  Compilation C = compile(Q, /*RequireTarget=*/false);
  if (!C.Query) {
    if (Error)
      *Error = C.Error;
    return "";
  }
  SolveResult R;
  const Engine *E = selectEngine(*C.Query, Opts, R);
  if (!E) {
    if (Error)
      *Error = R.Error;
    return "";
  }
  std::string Text = E->formulaText(*C.Query, Opts);
  if (Text.empty() && Error)
    *Error = std::string("engine '") + E->name() +
             "' does not expose its equation system";
  return Text;
}

const Engine *Solver::findEngine(const std::string &Name) {
  return EngineRegistry::instance().lookup(Name);
}

std::vector<const Engine *> Solver::engines() {
  return EngineRegistry::instance().engines();
}

std::string Solver::engineList(const char *Sep) {
  std::string Out;
  for (const Engine *E : engines()) {
    if (!Out.empty())
      Out += Sep;
    Out += E->name();
  }
  return Out;
}

std::string Solver::engineTable() {
  size_t Width = 0;
  for (const Engine *E : engines())
    Width = std::max(Width, std::string(E->name()).size());
  std::string Out;
  for (const Engine *E : engines()) {
    std::string Name = E->name();
    Out += "  " + Name + std::string(Width - Name.size() + 2, ' ') +
           (E->handlesConcurrent() ? "concurrent  " : "sequential  ") +
           E->description() + "\n";
  }
  return Out;
}
