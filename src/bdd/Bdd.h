//===- Bdd.h - Reduced ordered binary decision diagrams ---------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch shared-node ROBDD package. This stands in for the BDD
/// engine inside MUCKE (the paper's fixed-point solver) and provides the
/// complete operation set the symbolic algorithms need:
///
///   - apply (and / or / xor), negation, if-then-else
///   - existential and universal quantification over interned cubes
///   - the and-exists relational product (the image-computation workhorse)
///   - variable renaming via interned permutations (with a fast path for
///     order-preserving permutations)
///   - sat-counting, support computation, dag-size counting, evaluation
///
/// Memory is managed with external reference counts held by the RAII `Bdd`
/// handle plus a mark-and-sweep collector that runs only at operation entry
/// (never mid-recursion), so internal intermediate results are always safe.
///
/// Variable index == variable order level; the symbolic layer computes a
/// good static order up front (as Getafix does) instead of reordering
/// dynamically.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BDD_BDD_H
#define GETAFIX_BDD_BDD_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace getafix {

class BddManager;

/// Handle to an interned quantification cube (a set of variables).
struct BddCube {
  uint32_t Id = UINT32_MAX;
  bool isValid() const { return Id != UINT32_MAX; }
};

/// Handle to an interned variable permutation.
struct BddPerm {
  uint32_t Id = UINT32_MAX;
  bool isValid() const { return Id != UINT32_MAX; }
};

/// RAII handle to a BDD node. Copyable; keeps the node (and everything it
/// reaches) alive across garbage collections.
class Bdd {
public:
  Bdd() = default;
  Bdd(const Bdd &Other);
  Bdd(Bdd &&Other) noexcept;
  Bdd &operator=(const Bdd &Other);
  Bdd &operator=(Bdd &&Other) noexcept;
  ~Bdd();

  bool isNull() const { return Mgr == nullptr; }
  bool isZero() const;
  bool isOne() const;
  bool isConst() const { return isZero() || isOne(); }

  /// Structural equality: canonicity makes this semantic equivalence.
  bool operator==(const Bdd &Other) const {
    return Mgr == Other.Mgr && Idx == Other.Idx;
  }
  bool operator!=(const Bdd &Other) const { return !(*this == Other); }

  Bdd operator&(const Bdd &Other) const;
  Bdd operator|(const Bdd &Other) const;
  Bdd operator^(const Bdd &Other) const;
  Bdd operator!() const;
  Bdd &operator&=(const Bdd &Other) { return *this = *this & Other; }
  Bdd &operator|=(const Bdd &Other) { return *this = *this | Other; }
  Bdd &operator^=(const Bdd &Other) { return *this = *this ^ Other; }

  /// Boolean implication: (!*this) | Other.
  Bdd implies(const Bdd &Other) const { return (!*this) | Other; }
  /// Boolean equivalence: !(*this ^ Other).
  Bdd iff(const Bdd &Other) const { return !(*this ^ Other); }

  /// If-then-else with *this as the condition.
  Bdd ite(const Bdd &Then, const Bdd &Else) const;

  /// Existentially quantifies the variables of \p Cube.
  Bdd exists(BddCube Cube) const;
  /// Universally quantifies the variables of \p Cube.
  Bdd forall(BddCube Cube) const;
  /// Computes exists Cube. (*this & Other) without building the conjunction.
  Bdd andExists(const Bdd &Other, BddCube Cube) const;
  /// Renames variables according to the interned permutation.
  Bdd permute(BddPerm Perm) const;
  /// Cofactor: substitutes the constant \p Value for variable \p Var.
  Bdd restrict(unsigned Var, bool Value) const;
  /// A don't-care-minimized frontier: some set R with
  /// `*this \ Old ⊆ R ⊆ *this`, chosen to be structurally small (shared
  /// subgraphs of the two operands are pruned to the empty set wholesale,
  /// and subgraphs where \p Old is empty are returned as-is rather than
  /// rebuilt). Fixpoint engines use this instead of an exact set
  /// difference: joining already-known tuples again is harmless under
  /// union accumulation, while the exact difference of two similar BDDs
  /// is often *larger* than either operand.
  Bdd frontier(const Bdd &Old) const;

  /// Number of satisfying assignments over \p NumVars variables.
  double satCount(unsigned NumVars) const;
  /// Number of distinct nodes in this BDD's dag (terminals excluded).
  size_t nodeCount() const;
  /// Sorted list of variables this function depends on.
  std::vector<unsigned> support() const;
  /// Evaluates under a total assignment (indexed by variable).
  bool eval(const std::vector<bool> &Assignment) const;
  /// One satisfying partial assignment: -1 don't-care, 0 false, 1 true.
  /// Requires a non-zero BDD.
  std::vector<int8_t> onePath() const;

  BddManager *manager() const { return Mgr; }
  uint32_t rawIndex() const { return Idx; }

private:
  friend class BddManager;
  Bdd(BddManager *Mgr, uint32_t Idx);

  BddManager *Mgr = nullptr;
  uint32_t Idx = 0;
};

/// Operation counters for benchmarking and regression tests.
struct BddStats {
  uint64_t CacheLookups = 0;
  uint64_t CacheHits = 0;
  uint64_t NodesCreated = 0;
  uint64_t GcRuns = 0;
  uint64_t GcReclaimed = 0;
  size_t LiveNodes = 0;
  size_t PeakNodes = 0;
};

/// Owns the shared node table, the unique table, and the computed cache.
class BddManager {
public:
  /// \p CacheBits selects a computed cache of 2^CacheBits entries.
  explicit BddManager(unsigned NumVars = 0, unsigned CacheBits = 18);
  ~BddManager();

  BddManager(const BddManager &) = delete;
  BddManager &operator=(const BddManager &) = delete;

  /// Appends a fresh variable at the bottom of the order; returns its index.
  unsigned newVar();
  unsigned numVars() const { return NumVars; }

  Bdd zero() { return Bdd(this, 0); }
  Bdd one() { return Bdd(this, 1); }
  /// The literal for variable \p Var (must be < numVars()).
  Bdd var(unsigned Var);
  /// The negative literal for variable \p Var.
  Bdd nvar(unsigned Var);

  /// Interns a quantification cube. Variables may be unsorted; duplicates
  /// are ignored. Equal sets share one id.
  BddCube makeCube(const std::vector<unsigned> &Vars);
  /// Interns a permutation given as (from, to) pairs. Unlisted variables map
  /// to themselves. Both sides must be duplicate-free.
  BddPerm makePermutation(
      const std::vector<std::pair<unsigned, unsigned>> &Pairs);

  /// Conjunction of positive literals of the cube's variables.
  Bdd cubeBdd(BddCube Cube);

  /// Runs mark-and-sweep now. Only call between operations (the public
  /// operation entry points do this automatically when the table grows).
  void gc();

  /// Sets the live-node threshold that triggers automatic gc at operation
  /// entry. Zero disables automatic collection.
  void setGcThreshold(size_t Nodes) { GcThreshold = Nodes; }

  /// Number of computed-cache slots (2^CacheBits). Callers that adapt
  /// their algorithms to cache pressure compare working-set sizes to this.
  size_t cacheSlots() const { return Cache.size(); }

  const BddStats &stats() const { return Stats; }
  size_t liveNodeCount() const;

private:
  friend class Bdd;

  struct Node {
    uint32_t Var;
    uint32_t Low;
    uint32_t High;
    uint32_t Next; ///< Unique-table chain.
  };

  enum class Op : uint32_t {
    None = 0,
    And,
    Or,
    Xor,
    Not,
    Ite,
    Exists,
    AndExists,
    Rename,
    Frontier,
  };

  struct CacheEntry {
    uint32_t F = UINT32_MAX;
    uint32_t G = UINT32_MAX;
    uint32_t H = UINT32_MAX; ///< Third operand (ite) or cube/perm id.
    uint32_t OpTag = 0;      ///< Op::None means empty slot.
    uint32_t Result = 0;
  };

  struct CubeSet {
    std::vector<unsigned> Vars;   ///< Sorted.
    std::vector<uint8_t> InCube;  ///< Indexed by variable.
    unsigned MinVar = UINT32_MAX; ///< Smallest quantified variable.
  };

  struct PermSet {
    std::vector<uint32_t> Map; ///< Indexed by variable; identity elsewhere.
    bool Monotone = false;     ///< Globally order-preserving.
  };

  static constexpr uint32_t TermVar = UINT32_MAX;
  static constexpr uint32_t Invalid = UINT32_MAX;

  // Node access -----------------------------------------------------------
  uint32_t varOf(uint32_t N) const { return Nodes[N].Var; }
  uint32_t lowOf(uint32_t N) const { return Nodes[N].Low; }
  uint32_t highOf(uint32_t N) const { return Nodes[N].High; }
  bool isTerminal(uint32_t N) const { return N <= 1; }

  uint32_t makeNode(uint32_t Var, uint32_t Low, uint32_t High);
  uint32_t allocNode();
  void growUniqueTable();
  static uint64_t hashTriple(uint32_t A, uint32_t B, uint32_t C);

  // Computed cache --------------------------------------------------------
  bool cacheLookup(Op O, uint32_t F, uint32_t G, uint32_t H, uint32_t &Out);
  void cacheInsert(Op O, uint32_t F, uint32_t G, uint32_t H, uint32_t R);
  void clearCache();

  // Recursive cores (raw indices; never trigger gc) ------------------------
  uint32_t applyRec(Op O, uint32_t F, uint32_t G);
  uint32_t notRec(uint32_t F);
  uint32_t iteRec(uint32_t F, uint32_t G, uint32_t H);
  uint32_t existsRec(uint32_t F, uint32_t CubeId);
  uint32_t andExistsRec(uint32_t F, uint32_t G, uint32_t CubeId);
  uint32_t renameRec(uint32_t F, uint32_t PermId);
  uint32_t frontierRec(uint32_t F, uint32_t G);

  void maybeGc();
  void ref(uint32_t N);
  void deref(uint32_t N);

  // Data ------------------------------------------------------------------
  std::vector<Node> Nodes;
  std::vector<uint32_t> ExtRefs; ///< Parallel to Nodes.
  std::vector<uint32_t> Buckets; ///< Unique table; power-of-two size.
  uint32_t FreeList = Invalid;   ///< Chained through Node::Low.
  size_t NumFree = 0;
  unsigned NumVars = 0;

  std::vector<CacheEntry> Cache;
  uint64_t CacheMask = 0;

  std::vector<CubeSet> Cubes;
  std::vector<PermSet> Perms;

  size_t GcThreshold = 1u << 22;
  BddStats Stats;
};

} // namespace getafix

#endif // GETAFIX_BDD_BDD_H
