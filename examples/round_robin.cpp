//===- round_robin.cpp - Scheduling policies on the Bluetooth model -------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares free context switching against round-robin scheduling (the
/// Section-5 closing remark / Lal–Reps setting) on the Windows Bluetooth
/// driver model: per context bound, whether the assertion violation is
/// reachable under each policy and what the analysis costs. Round-robin
/// pins the schedule vector to constants, so its state space is a slice of
/// the free-schedule one.
///
//===----------------------------------------------------------------------===//

#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "gen/Workloads.h"

#include <cstdio>

using namespace getafix;

int main() {
  // One adder, two stoppers: the paper's Figure 3 reports the bug from
  // three context switches under free scheduling.
  std::string Source = gen::bluetoothModel(1, 2);

  DiagnosticEngine Diags;
  auto Conc = bp::parseConcurrentProgram(Source, Diags);
  if (!Conc) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto Cfgs = conc::buildThreadCfgs(*Conc);

  std::printf("Bluetooth driver, 1 adder + 2 stoppers\n");
  std::printf("%8s %14s %14s\n", "switches", "free-schedule", "round-robin");
  for (unsigned K = 1; K <= 5; ++K) {
    conc::ConcResult Free, RR;
    for (bool RoundRobin : {false, true}) {
      conc::ConcOptions Opts;
      Opts.MaxContextSwitches = K;
      Opts.RoundRobin = RoundRobin;
      auto R = conc::checkConcReachabilityOfLabel(*Conc, Cfgs,
                                                  "ERR", Opts);
      if (!R.TargetFound) {
        std::fprintf(stderr, "label ERR not found\n");
        return 1;
      }
      (RoundRobin ? RR : Free) = R;
    }
    std::printf("%8u %6s %6.2fs %6s %6.2fs\n", K,
                Free.Reachable ? "BUG" : "safe", Free.Seconds,
                RR.Reachable ? "BUG" : "safe", RR.Seconds);
  }

  std::printf("\nRound-robin explores a slice of the free schedules: a bug "
              "it finds is real,\nbut freedom in the schedule may expose "
              "bugs at lower bounds.\n");
  return 0;
}
