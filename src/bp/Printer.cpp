//===- Printer.cpp - Boolean program pretty-printer -----------------------===//

#include "bp/Printer.h"

using namespace getafix;
using namespace getafix::bp;

namespace {

/// Precedence: Or < And < Not < atom.
unsigned precedence(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::Or:
    return 1;
  case ExprKind::And:
    return 2;
  case ExprKind::Not:
    return 3;
  default:
    return 4;
  }
}

void printExprInto(const Expr &E, std::string &Out, unsigned ParentPrec) {
  unsigned Prec = precedence(E.Kind);
  bool Paren = Prec < ParentPrec;
  if (Paren)
    Out += '(';
  switch (E.Kind) {
  case ExprKind::True:
    Out += 'T';
    break;
  case ExprKind::False:
    Out += 'F';
    break;
  case ExprKind::Nondet:
    Out += '*';
    break;
  case ExprKind::Var:
    Out += E.VarName;
    break;
  case ExprKind::Not:
    Out += '!';
    printExprInto(*E.Lhs, Out, Prec + 1);
    break;
  case ExprKind::And:
    printExprInto(*E.Lhs, Out, Prec);
    Out += " & ";
    printExprInto(*E.Rhs, Out, Prec + 1);
    break;
  case ExprKind::Or:
    printExprInto(*E.Lhs, Out, Prec);
    Out += " | ";
    printExprInto(*E.Rhs, Out, Prec + 1);
    break;
  }
  if (Paren)
    Out += ')';
}

class ProgramPrinter {
public:
  std::string print(const Program &Prog) {
    for (const std::string &G : Prog.Globals)
      line("decl " + G + ";");
    for (const auto &P : Prog.Procs)
      printProc(*P);
    return std::move(Out);
  }

  void printProc(const Proc &P) {
    std::string Header = P.Name + "(";
    for (size_t I = 0; I < P.Params.size(); ++I) {
      if (I)
        Header += ", ";
      Header += P.Params[I];
    }
    Header += ") begin";
    line(Header);
    ++Indent;
    for (const std::string &L : P.Locals)
      line("decl " + L + ";");
    printStmts(P.Body);
    --Indent;
    line("end");
  }

  void printStmts(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &S : Body)
      printStmt(*S);
  }

  void printStmt(const Stmt &S) {
    std::string Prefix = S.Label.empty() ? "" : S.Label + ": ";
    switch (S.Kind) {
    case StmtKind::Skip:
      line(Prefix + "skip;");
      return;
    case StmtKind::Assume:
      line(Prefix + "assume(" + printExpr(*S.Cond) + ");");
      return;
    case StmtKind::Goto:
      line(Prefix + "goto " + S.CalleeName + ";");
      return;
    case StmtKind::Assign: {
      std::string Text = Prefix + joinNames(S.LhsNames) + " := ";
      Text += joinExprs(S.Exprs);
      line(Text + ";");
      return;
    }
    case StmtKind::CallAssign: {
      std::string Text = Prefix + joinNames(S.LhsNames) + " := " +
                         S.CalleeName + "(" + joinExprs(S.Exprs) + ");";
      line(Text);
      return;
    }
    case StmtKind::Call:
      line(Prefix + "call " + S.CalleeName + "(" + joinExprs(S.Exprs) +
           ");");
      return;
    case StmtKind::Return:
      if (S.Exprs.empty())
        line(Prefix + "return;");
      else
        line(Prefix + "return " + joinExprs(S.Exprs) + ";");
      return;
    case StmtKind::If:
      line(Prefix + "if (" + printExpr(*S.Cond) + ") then");
      ++Indent;
      printStmts(S.ThenBody);
      --Indent;
      if (!S.ElseBody.empty()) {
        line("else");
        ++Indent;
        printStmts(S.ElseBody);
        --Indent;
      }
      line("fi;");
      return;
    case StmtKind::While:
      line(Prefix + "while (" + printExpr(*S.Cond) + ") do");
      ++Indent;
      printStmts(S.ThenBody);
      --Indent;
      line("od;");
      return;
    }
  }

private:
  static std::string joinNames(const std::vector<std::string> &Names) {
    std::string Out;
    for (size_t I = 0; I < Names.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Names[I];
    }
    return Out;
  }

  static std::string joinExprs(const std::vector<ExprPtr> &Exprs) {
    std::string Out;
    for (size_t I = 0; I < Exprs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*Exprs[I]);
    }
    return Out;
  }

  void line(const std::string &Text) {
    for (unsigned I = 0; I < Indent; ++I)
      Out += "  ";
    Out += Text;
    Out += '\n';
  }

  std::string Out;
  unsigned Indent = 0;
};

} // namespace

std::string bp::printExpr(const Expr &E) {
  std::string Out;
  printExprInto(E, Out, 0);
  return Out;
}

std::string bp::printProgram(const Program &Prog) {
  return ProgramPrinter().print(Prog);
}

std::string bp::printConcurrentProgram(const ConcurrentProgram &Conc) {
  std::string Out;
  if (!Conc.SharedGlobals.empty()) {
    Out += "shared decl ";
    for (size_t I = 0; I < Conc.SharedGlobals.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Conc.SharedGlobals[I];
    }
    Out += ";\n";
  }
  for (const auto &Thread : Conc.Threads) {
    Out += "thread\n";
    // Thread programs carry the shared globals in Program::Globals, but the
    // concrete syntax declares them only at the `shared` line: print the
    // thread and drop its leading global decls.
    std::string Full = printProgram(*Thread);
    size_t Pos = 0;
    while (Pos < Full.size() && Full.compare(Pos, 5, "decl ") == 0) {
      size_t Eol = Full.find('\n', Pos);
      Pos = Eol == std::string::npos ? Full.size() : Eol + 1;
    }
    Out += Full.substr(Pos);
    Out += "end\n";
  }
  return Out;
}
