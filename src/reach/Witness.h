//===- Witness.h - Counterexample extraction --------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counterexample (witness trace) extraction for sequential reachability —
/// the feature the paper's conclusions list as planned work ("we plan to
/// adapt [MUCKE] to report readable counter-examples for reachability").
///
/// The extractor re-solves the entry-forward fixed-point while recording
/// the per-round "onion rings" of the summary relation, then reconstructs a
/// concrete interprocedural run backwards: every tuple first present in
/// ring r was produced by the equation body from tuples in ring r-1, so
/// walking predecessors within the previous ring is well-founded — both for
/// the step chain inside one procedure instance and for the recursive
/// expansion of call-skip steps and entry-discovery call chains.
///
/// The result is a flat run of the program: Init at main's entry, then
/// Internal / Call / Return steps, ending at the target. `verifyWitness`
/// replays the trace against the *explicit* statement semantics (an
/// independent implementation), which is how the tests pin the extractor.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_REACH_WITNESS_H
#define GETAFIX_REACH_WITNESS_H

#include "bp/Cfg.h"
#include "reach/SeqReach.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace getafix {

namespace fpc {
class Evaluator;
class IncrementalFixpoint;
} // namespace fpc

namespace reach {

class SeqEngine; // reach/SeqEngine.h (internal)

enum class WitnessStepKind {
  Init,     ///< The run starts here (main's entry).
  Internal, ///< An assume/assign move within the current procedure.
  Call,     ///< Enters a callee (state is the callee's entry).
  Return,   ///< Returns to the caller (state is the resume point).
};

/// One state of the reconstructed run: the program point reached by the
/// step plus the full variable valuations (bit i of Locals/Globals is
/// variable slot i, matching the interp module's convention).
struct WitnessStep {
  WitnessStepKind Kind = WitnessStepKind::Internal;
  unsigned ProcId = 0;
  unsigned Pc = 0;
  uint64_t Locals = 0;
  uint64_t Globals = 0;
};

struct WitnessResult {
  bool Reachable = false;
  bool TargetFound = true;            ///< False if the label did not exist.
  /// Which governor limit stopped the ring-recording solve (`None` = ran
  /// to completion). When set, no trace is extracted.
  support::ResourceLimit Limit = support::ResourceLimit::None;
  /// The ring-recording solve stopped at SeqOptions::MaxIterations before
  /// converging; `Reachable` then only reflects the rings recorded so far.
  bool HitIterationLimit = false;
  std::vector<WitnessStep> Steps;     ///< Empty when unreachable.
  uint64_t Iterations = 0;            ///< Fixpoint rounds recorded.
  uint64_t DeltaRounds = 0;           ///< Rounds run in delta mode.
  size_t SummaryNodes = 0;            ///< Dag size of the solved summary.
  size_t PeakLiveNodes = 0;           ///< Peak BDD nodes in the manager.
  uint64_t BddNodesCreated = 0;       ///< Total BDD nodes allocated.
  uint64_t BddCacheLookups = 0;       ///< Computed-cache probes.
  uint64_t BddCacheHits = 0;          ///< Computed-cache hits.
  /// Full BDD-manager counter snapshot (per-op split, GC, peak nodes).
  BddStats Bdd;
  /// Per-relation evaluator statistics, keyed by relation name.
  std::map<std::string, fpc::RelStats> Relations;
};

/// Decides reachability of (ProcId, Pc) and, when reachable, extracts a
/// concrete run witnessing it. Always runs the entry-forward algorithm to
/// a full fixpoint (no early stop), so it is slower than
/// checkReachability; use it after a positive answer.
WitnessResult checkReachabilityWithWitness(const bp::ProgramCfg &Cfg,
                                           unsigned ProcId, unsigned Pc,
                                           const SeqOptions &Opts);

/// Label-based variant of checkReachabilityWithWitness.
WitnessResult checkReachabilityOfLabelWithWitness(const bp::ProgramCfg &Cfg,
                                                  const std::string &Label,
                                                  const SeqOptions &Opts);

/// Cross-query witness extraction over one program. The ring-recording
/// solve is target-independent (it always runs the entry-forward system to
/// its full fixpoint), so a session solves it once and reconstructs a
/// trace per queried target by walking the recorded rings — each query's
/// verdict, ring count, and trace are bit-identical to a fresh
/// `checkReachabilityWithWitness` with the same options. The caller keeps
/// \p Cfg alive for the session's lifetime.
class WitnessSession {
public:
  WitnessSession(const bp::ProgramCfg &Cfg, const SeqOptions &Opts);
  /// Borrowed mode: extract witnesses from an *owning session's* solver
  /// state instead of running a second solve. \p Engine must be an
  /// entry-forward (or entry-forward-split) engine whose main relation
  /// records its rounds into \p Fix — the extractor completes that
  /// fixpoint in place (one solve per session, ever) and walks its rings.
  /// The caller keeps all four references alive for the session's
  /// lifetime and serializes queries against its own use of \p Mgr.
  /// `liveNodes`/`peakLiveNodes`/`memoryFootprint` report 0 in this mode
  /// (the owner already counts the shared manager) and
  /// `clearComputedCache` is a no-op (the owner's valve clears it).
  WitnessSession(SeqEngine &Engine, BddManager &Mgr, fpc::Evaluator &Ev,
                 fpc::IncrementalFixpoint &Fix, const SeqOptions &Opts);
  ~WitnessSession();
  WitnessSession(const WitnessSession &) = delete;
  WitnessSession &operator=(const WitnessSession &) = delete;

  WitnessResult query(unsigned ProcId, unsigned Pc);

  /// Has the (lazy) ring-recording solve run? Once true, every query is a
  /// pure extraction from recorded state.
  bool solved() const;

  /// Per-attempt resource governor for the next query (null = ungoverned;
  /// see SeqSession::setGovernor). An interrupted ring-recording solve
  /// keeps its completed rounds and resumes bit-identically on retry.
  void setGovernor(support::ResourceGovernor *G);

  /// Drops the BDD computed cache; solved rings are kept (performance
  /// valve, bit-identical results).
  void clearComputedCache();

  /// Reachable-only live / peak node counts of the extractor's BDD
  /// manager (0 before the lazy solve has run; peak sampled at query
  /// boundaries), and the estimated bytes of resident state — a
  /// cleared-and-untouched computed cache is discounted. These feed the
  /// owning session's `memoryFootprint`.
  size_t liveNodes() const;
  size_t peakLiveNodes() const;
  size_t memoryFootprint() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Replays \p Steps against the explicit statement semantics. Checks that
/// the run starts at main's entry, every step is a valid transition (for
/// some resolution of `*` choices), call/return nesting is consistent, and
/// the run ends at (TargetProcId, TargetPc). On failure returns false and,
/// when \p Error is non-null, stores a description.
bool verifyWitness(const bp::ProgramCfg &Cfg,
                   const std::vector<WitnessStep> &Steps,
                   unsigned TargetProcId, unsigned TargetPc,
                   std::string *Error = nullptr);

/// Renders a trace for CLI output: one line per step with procedure names,
/// PCs, labels when present, and variable valuations.
std::string formatWitness(const bp::ProgramCfg &Cfg,
                          const std::vector<WitnessStep> &Steps);

} // namespace reach
} // namespace getafix

#endif // GETAFIX_REACH_WITNESS_H
