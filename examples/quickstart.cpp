//===- quickstart.cpp - Minimal end-to-end use of the library -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: one `Query`, one `Solver::solve` call per engine. The
/// engine list comes from the registry, so this program automatically
/// covers every reachability algorithm the library ships — the whole
/// public API surface a typical client needs.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include <cstdio>

using namespace getafix;

int main() {
  // A lock-discipline model: `locked` must alternate via acquire/release.
  // The ERR label is reachable only if a double acquire is possible.
  const char *Source = R"(
decl locked, error;
main() begin
  decl n;
  locked := F; error := F;
  n := *;
  while (n) do
    call acquire();
    if (*) then
      call release();
    fi;
    n := *;
  od;
  if (error) then
    ERR: skip;
  fi;
end
acquire() begin
  if (locked) then
    error := T;
  fi;
  locked := T;
end
release() begin
  locked := F;
end
)";

  std::printf("query: is label ERR reachable?\n\n");

  Query Q = Query::fromSource(Source).target("ERR");
  for (const api::Engine *E : Solver::engines()) {
    if (E->handlesConcurrent())
      continue; // The lock model is sequential.
    SolverOptions Opts;
    Opts.Engine = E->name();
    SolveResult R = Solver::solve(Q, Opts);
    if (!R.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", E->name(), R.Error.c_str());
      return 1;
    }
    std::printf("%-10s -> %-3s  (%llu iterations, %zu nodes, peak %zu, "
                "%.3fs)\n",
                E->name(), R.Reachable ? "YES" : "NO",
                (unsigned long long)R.Iterations, R.SummaryNodes,
                R.PeakLiveNodes, R.Seconds);
  }
  return 0;
}
