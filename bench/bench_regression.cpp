//===- bench_regression.cpp - Figure 2, REGRESSION rows -------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Reproduces the REGRESSION block of Figure 2: the positive and negative
// sub-suites, aggregated (average) per engine. The paper reports ~1s for
// every tool; the shape to check is that all engines answer correctly and
// in comparable, small time.
//
// Pass `--json FILE` to also record one row per (workload, engine) —
// verdict, expectation, timing — as a BENCH_*.json report for the CI
// artifact/drift machinery.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

#include <cstring>

using namespace getafix;
using namespace getafix::bench;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: bench_regression [--json FILE]\n");
      return 2;
    }
  }
  JsonReport Report;
  bool AnyWrong = false;

  std::printf("=== Figure 2 / REGRESSION ===\n");
  std::printf("%-10s %8s %9s %9s %9s %9s %9s %9s\n", "suite", "programs",
              "avgLOC", "EF(s)", "EFopt(s)", "simple(s)", "moped(s)",
              "bebop(s)");

  for (bool Positive : {true, false}) {
    double TEf = 0, TOpt = 0, TSimple = 0, TMoped = 0, TBebop = 0;
    unsigned Count = 0, Loc = 0;
    for (const gen::Workload &W : gen::regressionSuite()) {
      if (W.ExpectReachable != Positive)
        continue;
      ParsedProgram P = parseOrDie(W.Source);
      Loc += countLoc(W.Source);
      auto Check = [&](const EngineRow &R, const char *Engine) {
        if (R.Reachable != W.ExpectReachable) {
          std::fprintf(stderr, "WRONG ANSWER: %s on %s\n", Engine,
                       W.Name.c_str());
          AnyWrong = true; // Fail the process so CI fails with it.
        }
        if (!JsonPath.empty()) {
          JsonReport::Row Row;
          Row.field("section", "regression")
              .field("case", W.Name)
              .field("variant", Engine)
              .field("reachable", R.Reachable)
              .field("expected", W.ExpectReachable)
              .field("iterations", R.Iterations)
              .field("seconds", R.Seconds);
          Report.add(Row);
        }
      };
      EngineRow Ef = runEngine(P.Cfg, W.TargetLabel, "ef-split");
      Check(Ef, "ef-split");
      EngineRow Opt = runEngine(P.Cfg, W.TargetLabel, "ef-opt");
      Check(Opt, "ef-opt");
      EngineRow Simple = runEngine(P.Cfg, W.TargetLabel, "summary");
      Check(Simple, "summary");
      EngineRow Moped = runEngine(P.Cfg, W.TargetLabel, "moped");
      Check(Moped, "moped");
      EngineRow Bebop = runEngine(P.Cfg, W.TargetLabel, "bebop");
      Check(Bebop, "bebop");
      TEf += Ef.Seconds;
      TOpt += Opt.Seconds;
      TSimple += Simple.Seconds;
      TMoped += Moped.Seconds;
      TBebop += Bebop.Seconds;
      ++Count;
    }
    std::printf("%-10s %8u %9.0f %9.4f %9.4f %9.4f %9.4f %9.4f\n",
                Positive ? "positive" : "negative", Count,
                double(Loc) / Count, TEf / Count, TOpt / Count,
                TSimple / Count, TMoped / Count, TBebop / Count);
  }
  if (!JsonPath.empty())
    Report.write(JsonPath);
  return AnyWrong ? 1 : 0;
}
