//===- Printer.h - Boolean program pretty-printer ---------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ASTs back to the concrete syntax accepted by the parser. The
/// workload generators build ASTs and print them, and the round-trip
/// property (parse . print == id up to locations) is tested.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BP_PRINTER_H
#define GETAFIX_BP_PRINTER_H

#include "bp/Ast.h"

#include <string>

namespace getafix {
namespace bp {

std::string printExpr(const Expr &E);
std::string printProgram(const Program &Prog);
std::string printConcurrentProgram(const ConcurrentProgram &Conc);

} // namespace bp
} // namespace getafix

#endif // GETAFIX_BP_PRINTER_H
