//===- Baselines.h - Comparison solvers (Moped/Bebop stand-ins) -*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two baseline columns of Figure 2, rebuilt per DESIGN.md's
/// substitution table:
///
///   - `mopedPostStar` — a *natively coded* symbolic summary solver in the
///     style of Moped's forward post* saturation: the fixpoint loop, image
///     computations, frontier-set simplification, renamings and variable
///     bookkeeping are hand-written C++ against the BDD package (precisely
///     the low-level programming style the paper's calculus replaces). It
///     uses classical frontier sets, which the paper contrasts with its
///     Relevant-PC restriction in Section 4.3.
///
///   - `bebopTabulate` — the classical explicit RHS path-edge/summary-edge
///     tabulation algorithm that underlies Bebop, reusing the oracle
///     engine; exact, reachable-only, but enumerative in the data domain.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_REACH_BASELINES_H
#define GETAFIX_REACH_BASELINES_H

#include "bdd/Bdd.h"
#include "bp/Cfg.h"
#include "support/ResourceGovernor.h"

#include <cstdint>
#include <string>

namespace getafix {
namespace reach {

struct BaselineResult {
  bool Reachable = false;
  bool TargetFound = true;
  /// Which governor limit stopped the solve (`None` = ran to completion).
  /// When set, `Reachable` reflects only the states found so far.
  support::ResourceLimit Limit = support::ResourceLimit::None;
  uint64_t Iterations = 0;  ///< Fixpoint rounds / worklist steps.
  size_t SummaryNodes = 0;  ///< Final BDD size (moped only).
  size_t PeakLiveNodes = 0; ///< Peak BDD nodes (moped only; bebop is
                            ///< enumerative and reports 0).
  uint64_t BddNodesCreated = 0; ///< Total BDD nodes allocated (moped only).
  uint64_t BddCacheLookups = 0; ///< Computed-cache probes (moped only).
  uint64_t BddCacheHits = 0;    ///< Computed-cache hits (moped only).
  /// Full BDD-manager counter snapshot (per-op split, GC, peak nodes;
  /// moped only).
  BddStats Bdd;
  double Seconds = 0.0;
};

struct BaselineOptions {
  bool EarlyStop = true;
  unsigned CacheBits = 18;
  size_t GcThreshold = 1u << 22;
  /// Resource governor for this solve (not owned; one-shot per attempt;
  /// see support/ResourceGovernor.h). A tripped limit is reported in
  /// `BaselineResult::Limit`. Null = ungoverned.
  support::ResourceGovernor *Governor = nullptr;
};

/// Moped-style native symbolic solver (see file comment).
BaselineResult mopedPostStar(const bp::ProgramCfg &Cfg, unsigned ProcId,
                             unsigned Pc,
                             const BaselineOptions &Opts = BaselineOptions());

BaselineResult
mopedPostStarLabel(const bp::ProgramCfg &Cfg, const std::string &Label,
                   const BaselineOptions &Opts = BaselineOptions());

/// Bebop-style explicit tabulation (see file comment). Only
/// `BaselineOptions::Governor` applies (the engine is enumerative — no
/// caches or GC, and a node budget cannot trip).
BaselineResult bebopTabulate(const bp::ProgramCfg &Cfg, unsigned ProcId,
                             unsigned Pc,
                             const BaselineOptions &Opts = BaselineOptions());

BaselineResult
bebopTabulateLabel(const bp::ProgramCfg &Cfg, const std::string &Label,
                   const BaselineOptions &Opts = BaselineOptions());

} // namespace reach
} // namespace getafix

#endif // GETAFIX_REACH_BASELINES_H
