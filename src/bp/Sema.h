//===- Sema.h - Boolean program semantic analysis ---------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and well-formedness checks for parsed Boolean programs:
/// resolves variable references and callee names, infers each procedure's
/// return arity from its return statements, and enforces the Section-2
/// restrictions (disjoint globals/locals, arity agreement at calls and
/// returns, `main` exists and is never called, goto targets exist).
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BP_SEMA_H
#define GETAFIX_BP_SEMA_H

#include "bp/Ast.h"

namespace getafix {
namespace bp {

/// Resolves and checks \p Prog in place. Returns false (with diagnostics in
/// \p Diags) if the program is ill-formed.
bool analyzeProgram(Program &Prog, DiagnosticEngine &Diags);

} // namespace bp
} // namespace getafix

#endif // GETAFIX_BP_SEMA_H
