//===- getafix.cpp - The Getafix command-line checker ---------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool of Figure 1: reads a (possibly concurrent) Boolean program and
/// answers a label-reachability query YES/NO. All parsing, dispatch, and
/// engine selection goes through the `getafix::Solver` facade; the engine
/// list in `--algo` and `--list-algos` is generated from the registry.
///
///   getafix [options] <program.bp>
///     --label <L>        target label (default ERR)
///     --algo <name>      engine to run (see --list-algos; default: ef-opt
///                        for sequential programs, conc for concurrent)
///     --list-algos       print the registered engines and exit
///     --context-bound k  concurrent programs: max context switches
///     --rounds r         concurrent: round-robin with r rounds (implies
///                        --round-robin; overrides --context-bound)
///     --round-robin      concurrent: restrict schedules to round-robin
///     --witness          print a counterexample trace when the target is
///                        reachable (engines that support extraction)
///     --print-formula    dump the fixed-point equation system and exit
///     --stats            print solver statistics
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace getafix;

namespace {

struct CliOptions {
  std::string File;
  std::string Label = "ERR";
  std::string Algo; ///< Empty: the facade picks the query-kind default.
  unsigned ContextBound = 2;
  unsigned Rounds = 0; ///< 0 means "not given".
  bool RoundRobin = false;
  bool Witness = false;
  bool PrintFormula = false;
  bool Stats = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: getafix [--label L] [--algo %s]\n"
               "               [--list-algos] [--context-bound k] "
               "[--rounds r] [--round-robin]\n"
               "               [--witness] [--print-formula] [--stats] "
               "<program.bp>\n",
               Solver::engineList("|").c_str());
  return 2;
}

int listAlgos() {
  std::printf("registered engines:\n%s", Solver::engineTable().c_str());
  return 0;
}

void printStats(const SolveResult &R) {
  std::string Line = "iterations=" + std::to_string(R.Iterations);
  if (R.SummaryNodes)
    Line += " bdd-nodes=" + std::to_string(R.SummaryNodes);
  if (R.PeakLiveNodes)
    Line += " peak-nodes=" + std::to_string(R.PeakLiveNodes);
  if (R.ReachStates) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " reach-states=%.0f", R.ReachStates);
    Line += Buf;
  }
  if (R.TransformedGlobals)
    Line += " transformed-globals=" + std::to_string(R.TransformedGlobals);
  if (R.HasWitness)
    Line += " witness-steps=" + std::to_string(R.Witness.size());
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), " time=%.3fs", R.Seconds);
  Line += Buf;
  std::printf("%s\n", Line.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--label") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Label = V;
    } else if (Arg == "--algo") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Algo = V;
    } else if (Arg == "--list-algos") {
      return listAlgos();
    } else if (Arg == "--context-bound") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.ContextBound = unsigned(std::atoi(V));
    } else if (Arg == "--rounds") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Rounds = unsigned(std::atoi(V));
      Opts.RoundRobin = true;
    } else if (Arg == "--round-robin") {
      Opts.RoundRobin = true;
    } else if (Arg == "--witness") {
      Opts.Witness = true;
    } else if (Arg == "--print-formula") {
      Opts.PrintFormula = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Opts.File = Arg;
    }
  }
  if (Opts.File.empty())
    return usage();

  std::ifstream In(Opts.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Query Q = Query::fromSource(Buffer.str())
                .target(Opts.Label)
                .witness(Opts.Witness);
  SolverOptions SO;
  SO.Engine = Opts.Algo;
  SO.ContextBound = Opts.ContextBound;
  SO.Rounds = Opts.Rounds;
  SO.RoundRobin = Opts.RoundRobin;

  if (Opts.PrintFormula) {
    std::string Error;
    std::string Text = Solver::formulaText(Q, SO, &Error);
    if (Text.empty()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    std::printf("%s", Text.c_str());
    return 0;
  }

  SolveResult R = Solver::solve(Q, SO);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 2;
  }

  std::printf("%s\n", R.Reachable ? "YES" : "NO");
  if (R.HasWitness)
    std::printf("%s", R.WitnessText.c_str());
  if (Opts.Stats)
    printStats(R);
  return R.Reachable ? 0 : 1;
}
