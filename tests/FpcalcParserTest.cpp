//===- FpcalcParserTest.cpp - Calculus text front-end and nu tests --------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the MUCKE-style textual front-end (print/parse round-trips —
/// including the full generated algorithm formulae — and diagnostics) and
/// for greatest-fixed-point (`nu`) evaluation semantics.
///
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "fpcalc/Evaluator.h"
#include "fpcalc/Parser.h"
#include "reach/SeqReach.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace getafix;
using namespace getafix::fpc;

namespace {

std::unique_ptr<System> parseOk(const std::string &Text) {
  DiagnosticEngine Diags;
  auto Sys = parseSystem(Text, Diags);
  EXPECT_TRUE(Sys != nullptr) << Diags.str();
  return Sys;
}

std::string firstError(const std::string &Text) {
  DiagnosticEngine Diags;
  auto Sys = parseSystem(Text, Diags);
  EXPECT_TRUE(Sys == nullptr) << "expected a parse failure";
  EXPECT_TRUE(Diags.hasErrors());
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Error)
      return D.Message;
  return "";
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(FpcalcParserTest, RoundTripBasicSystem) {
  const char *Src = R"(
domain PC [5];
input bool Trans(PC x, PC y);
input bool Init(PC u);
mu bool Reach(PC u) :=
  (Init(u) | exists PC x. ((Reach(x) & Trans(x, u))));
)";
  auto Sys = parseOk(Src);
  std::string Printed = Sys->print();
  auto Sys2 = parseOk(Printed);
  EXPECT_EQ(Printed, Sys2->print());
}

TEST(FpcalcParserTest, RoundTripPreservesBitDomains) {
  const char *Src = R"(
domain Wide [bits 70];
input bool P(Wide v);
mu bool Q(Wide v) := (P(v) | Q(v));
)";
  auto Sys = parseOk(Src);
  EXPECT_NE(Sys->print().find("domain Wide [bits 70];"), std::string::npos);
  auto Sys2 = parseOk(Sys->print());
  EXPECT_EQ(Sys->print(), Sys2->print());
}

TEST(FpcalcParserTest, RoundTripPreservesNu) {
  const char *Src = R"(
domain PC [4];
input bool Bad(PC u);
input bool Trans(PC x, PC y);
nu bool Safe(PC u) :=
  (!(Bad(u)) & forall PC y. (!(Trans(u, y)) | Safe(y)));
)";
  auto Sys = parseOk(Src);
  EXPECT_TRUE(Sys->relation(Sys->relId("Safe")).IsNu);
  auto Sys2 = parseOk(Sys->print());
  EXPECT_TRUE(Sys2->relation(Sys2->relId("Safe")).IsNu);
  EXPECT_EQ(Sys->print(), Sys2->print());
}

TEST(FpcalcParserTest, ForwardReferencesBetweenEquationsParse) {
  // `A` references `B` declared after it: requires the two-pass scheme.
  const char *Src = R"(
domain D [3];
input bool Seed(D u);
mu bool A(D u) := (Seed(u) | B(u));
mu bool B(D u) := (A(u));
)";
  auto Sys = parseOk(Src);
  EXPECT_TRUE(Sys->dependsOn(Sys->relId("A"), Sys->relId("B")));
  EXPECT_TRUE(Sys->dependsOn(Sys->relId("B"), Sys->relId("A")));
}

TEST(FpcalcParserTest, ConstantsAndZeroArityRelations) {
  const char *Src = R"(
domain D [4];
input bool P(D u);
mu bool Hit() := exists D u. (P(u) & u = 3);
mu bool Q(D u) := (Hit() & u = 0);
)";
  auto Sys = parseOk(Src);
  EXPECT_EQ(Sys->relation(Sys->relId("Hit")).arity(), 0u);
  auto Sys2 = parseOk(Sys->print());
  EXPECT_EQ(Sys->print(), Sys2->print());
}

TEST(FpcalcParserTest, DottedIdentifiersBeforeQuantifierSeparator) {
  // `s.pc` is one identifier; the dot before the body is the separator.
  const char *Src = R"(
domain PC [4];
input bool Step(PC s.pc, PC v.pc);
mu bool R(PC v.pc) := exists PC s.pc. (Step(s.pc, v.pc) | R(s.pc));
)";
  auto Sys = parseOk(Src);
  auto Sys2 = parseOk(Sys->print());
  EXPECT_EQ(Sys->print(), Sys2->print());
}

namespace {

/// The generated algorithm formulae must survive a print -> parse -> print
/// round trip (they are exactly what Getafix would hand to MUCKE as text).
class FormulaRoundTripTest
    : public ::testing::TestWithParam<reach::SeqAlgorithm> {};

} // namespace

TEST_P(FormulaRoundTripTest, GeneratedAlgorithmFormulaRoundTrips) {
  const char *Src = R"(
decl g;
main() begin
  decl a;
  a := inc(g);
  if (a) then ERR: skip; else skip; fi
  return;
end
inc(x) begin
  g := x;
  return !x;
end
)";
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Src, Diags);
  ASSERT_TRUE(Prog != nullptr) << Diags.str();
  auto Cfg = bp::buildCfg(*Prog);

  std::string Text = reach::formulaText(Cfg, GetParam());
  auto Sys = parseOk(Text);
  ASSERT_TRUE(Sys != nullptr);
  EXPECT_EQ(Text, Sys->print());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FormulaRoundTripTest,
                         ::testing::Values(
                             reach::SeqAlgorithm::SummarySimple,
                             reach::SeqAlgorithm::EntryForward,
                             reach::SeqAlgorithm::EntryForwardSplit,
                             reach::SeqAlgorithm::EntryForwardOpt));

//===----------------------------------------------------------------------===//
// Parse-then-evaluate equivalence
//===----------------------------------------------------------------------===//

namespace {

/// Solves single-source reachability of a text-defined system and returns
/// per-node membership, for comparison with the programmatic fixture.
std::vector<bool>
solveTextReachability(const std::string &Text, unsigned InitNode,
                      const std::vector<std::pair<unsigned, unsigned>> &Edges,
                      unsigned NumNodes) {
  auto Sys = parseOk(Text);
  BddManager Mgr;
  Evaluator Ev(*Sys, Mgr, Layout::sequential(*Sys, Mgr));
  VarId U = 0, X = 1; // Declaration order: formals of Trans then Init.

  // Find the variables by name instead of relying on ids.
  for (VarId V = 0; V < Sys->numVars(); ++V) {
    if (Sys->var(V).Name == "u")
      U = V;
    if (Sys->var(V).Name == "x")
      X = V;
  }

  Ev.bindInput(Sys->relId("Init"), Ev.encodeEqConst(U, InitNode));
  Bdd TransBdd = Mgr.zero();
  for (auto [From, To] : Edges)
    TransBdd |= Ev.encodeEqConst(X, From) & Ev.encodeEqConst(U, To);
  Ev.bindInput(Sys->relId("Trans"), TransBdd);

  Bdd Result = Ev.evaluate(Sys->relId("Reach")).Value;
  std::vector<bool> Out;
  for (unsigned N = 0; N < NumNodes; ++N)
    Out.push_back(!(Result & Ev.encodeEqConst(U, N)).isZero());
  return Out;
}

} // namespace

TEST(FpcalcParserTest, ParsedSystemEvaluatesLikeProgrammaticOne) {
  const char *Text = R"(
domain Node [8];
input bool Trans(Node x, Node u);
input bool Init(Node u);
mu bool Reach(Node u) :=
  (Init(u) | exists Node x. (Reach(x) & Trans(x, u)));
)";
  std::vector<std::pair<unsigned, unsigned>> Edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 1}, {5, 6}};
  auto Got = solveTextReachability(Text, 0, Edges, 8);
  std::vector<bool> Expected{true, true, true, true,
                             false, false, false, false};
  EXPECT_EQ(Got, Expected);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(FpcalcParserTest, ReportsUnknownDomain) {
  EXPECT_NE(firstError("input bool P(Nope u);").find("unknown domain"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsDuplicateDomain) {
  EXPECT_NE(firstError("domain D [2]; domain D [3];")
                .find("duplicate domain"),
            std::string::npos);
}

TEST(FpcalcParserTest, ToleratesRedeclaredBoolDomain) {
  // The printer always lists the built-in `bool [2]`.
  parseOk("domain bool [2]; input bool P(bool b);");
}

TEST(FpcalcParserTest, ReportsDuplicateRelation) {
  EXPECT_NE(firstError("domain D [2]; input bool P(D u); input bool P(D v);")
                .find("duplicate relation"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsUnknownRelation) {
  EXPECT_NE(firstError("domain D [2]; mu bool R(D u) := (Q(u));")
                .find("unknown relation"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsArityMismatch) {
  EXPECT_NE(firstError("domain D [2]; input bool P(D u, D v); "
                       "mu bool R(D u) := (P(u));")
                .find("expects 2 arguments"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsUnboundVariable) {
  EXPECT_NE(firstError("domain D [2]; input bool P(D u); "
                       "mu bool R(D u) := (P(w));")
                .find("unbound variable"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsDomainMismatchOnRebinding) {
  EXPECT_NE(firstError("domain D [2]; domain E [3]; input bool P(D u); "
                       "input bool Q(E u);")
                .find("rebound at a different domain"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsConstantOutsideDomain) {
  // Caught by System::validate after parsing.
  EXPECT_NE(firstError("domain D [2]; mu bool R(D u) := (u = 5);")
                .find("outside domain"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsUnterminatedComment) {
  EXPECT_NE(firstError("domain D [2]; /* oops").find("unterminated comment"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsUnexpectedCharacter) {
  EXPECT_NE(firstError("domain D [2]; $").find("unexpected character"),
            std::string::npos);
}

TEST(FpcalcParserTest, ReportsMissingSemicolon) {
  EXPECT_FALSE(firstError("domain D [2]").empty());
}

TEST(FpcalcParserTest, ReportsZeroSizedDomain) {
  EXPECT_NE(firstError("domain D [0];").find("non-empty"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Greatest fixed-points
//===----------------------------------------------------------------------===//

namespace {

/// Explicit graph fixture for mu/nu comparisons: node domain, edge and bad
/// input relations, EF(bad) as a mu and AG(!bad) as a nu.
struct MuNuFixture {
  System Sys;
  DomainId Node;
  VarId U, X;
  RelId Bad, Edge, EfBad, Safe;

  explicit MuNuFixture(uint64_t NumNodes) {
    Node = Sys.addDomain("Node", NumNodes);
    U = Sys.addVar("u", Node);
    X = Sys.addVar("x", Node);
    Bad = Sys.declareRel("Bad", {U});
    Edge = Sys.declareRel("Edge", {U, X});

    // EfBad(u) = Bad(u) | exists x. Edge(u, x) & EfBad(x).
    EfBad = Sys.declareRel("EfBad", {U});
    Sys.define(
        EfBad,
        Sys.mkOr({Sys.applyVars(Bad, {U}),
                  Sys.exists({X}, Sys.mkAnd({Sys.applyVars(Edge, {U, X}),
                                             Sys.apply(EfBad,
                                                       {Term::var(X)})}))}));

    // Safe(u) = !Bad(u) & forall x. (!Edge(u, x) | Safe(x)) — AG(!Bad).
    Safe = Sys.declareRel("Safe", {U});
    Sys.defineNu(
        Safe,
        Sys.mkAnd({Sys.mkNot(Sys.applyVars(Bad, {U})),
                   Sys.forall({X}, Sys.mkOr({Sys.mkNot(Sys.applyVars(
                                                 Edge, {U, X})),
                                             Sys.apply(Safe,
                                                       {Term::var(X)})}))}));
  }
};

class NuDualityTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST(NuSemanticsTest, GreatestFixpointOnChain) {
  // 0 -> 1 -> 2 -> 3(bad); 4 -> 4 (safe loop).
  MuNuFixture F(6);
  BddManager Mgr;
  Evaluator Ev(F.Sys, Mgr, Layout::sequential(F.Sys, Mgr));
  Ev.bindInput(F.Bad, Ev.encodeEqConst(F.U, 3));
  Bdd Edges = Mgr.zero();
  for (auto [A, B] : std::vector<std::pair<unsigned, unsigned>>{
           {0, 1}, {1, 2}, {2, 3}, {4, 4}})
    Edges |= Ev.encodeEqConst(F.U, A) & Ev.encodeEqConst(F.X, B);
  Ev.bindInput(F.Edge, Edges);

  Bdd Safe = Ev.evaluate(F.Safe).Value;
  std::vector<bool> Got, Expected{false, false, false, false, true, true};
  for (unsigned N = 0; N < 6; ++N)
    Got.push_back(!(Safe & Ev.encodeEqConst(F.U, N)).isZero());
  EXPECT_EQ(Got, Expected);
}

TEST(NuSemanticsTest, NuOfTautologyIsDomainConstrained) {
  // nu R(u) := R(u) stays at top, which must exclude padding values of a
  // non-power-of-two domain.
  System Sys;
  DomainId D = Sys.addDomain("D", 5); // 3 bits, values 5..7 invalid.
  VarId U = Sys.addVar("u", D);
  RelId R = Sys.declareRel("R", {U});
  Sys.defineNu(R, Sys.applyVars(R, {U}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd Value = Ev.evaluate(R).Value;
  EXPECT_EQ(Value.satCount(Mgr.numVars()), 5.0);
}

TEST(NuSemanticsTest, NuOfContradictionIsEmpty) {
  System Sys;
  DomainId D = Sys.addDomain("D", 4);
  VarId U = Sys.addVar("u", D);
  RelId R = Sys.declareRel("R", {U});
  Sys.defineNu(R, Sys.mkAnd({Sys.applyVars(R, {U}), Sys.bottom()}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  EXPECT_TRUE(Ev.evaluate(R).Value.isZero());
}

TEST_P(NuDualityTest, SafeIsComplementOfEfBadOnRandomGraphs) {
  const unsigned NumNodes = 10;
  Rng Rand(GetParam());

  MuNuFixture F(NumNodes);
  BddManager Mgr;
  Evaluator Ev(F.Sys, Mgr, Layout::sequential(F.Sys, Mgr));

  // Random edges and a random non-empty bad set.
  Bdd Edges = Mgr.zero();
  for (unsigned E = 0; E < 18; ++E)
    Edges |= Ev.encodeEqConst(F.U, Rand.below(NumNodes)) &
             Ev.encodeEqConst(F.X, Rand.below(NumNodes));
  Bdd BadSet = Ev.encodeEqConst(F.U, Rand.below(NumNodes));
  if (Rand.below(2) == 0)
    BadSet |= Ev.encodeEqConst(F.U, Rand.below(NumNodes));
  Ev.bindInput(F.Edge, Edges);
  Ev.bindInput(F.Bad, BadSet);

  Bdd EfBad = Ev.evaluate(F.EfBad).Value;
  Bdd Safe = Ev.evaluate(F.Safe).Value;

  // nu-mu duality: AG(!bad) is exactly the complement of EF(bad).
  for (unsigned N = 0; N < NumNodes; ++N) {
    bool CanReachBad = !(EfBad & Ev.encodeEqConst(F.U, N)).isZero();
    bool IsSafe = !(Safe & Ev.encodeEqConst(F.U, N)).isZero();
    EXPECT_NE(CanReachBad, IsSafe) << "node " << N << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NuDualityTest,
                         ::testing::Range(uint64_t(1), uint64_t(13)));

//===----------------------------------------------------------------------===//
// Facts and the standalone-solver path
//===----------------------------------------------------------------------===//

namespace {

/// Parses text with facts, binds them, and solves one relation.
struct SolvedSystem {
  std::unique_ptr<System> Sys;
  std::unique_ptr<BddManager> Mgr;
  std::unique_ptr<Evaluator> Ev;
  Bdd Value;
};

SolvedSystem solveWithFacts(const std::string &Text,
                            const std::string &Rel) {
  SolvedSystem S;
  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  S.Sys = parseSystem(Text, Diags, &Facts);
  EXPECT_TRUE(S.Sys != nullptr) << Diags.str();
  if (!S.Sys)
    return S;
  S.Mgr = std::make_unique<BddManager>();
  S.Ev = std::make_unique<Evaluator>(*S.Sys, *S.Mgr,
                                     Layout::sequential(*S.Sys, *S.Mgr));
  bindFacts(*S.Ev, *S.Sys, Facts);
  S.Value = S.Ev->evaluate(S.Sys->relId(Rel)).Value;
  return S;
}

const char *FactGraph = R"(
domain Node [8];
input bool Edge(Node x, Node y);
input bool Init(Node u);
fact Init(0);
fact Edge(0, 1);
fact Edge(1, 2);
fact Edge(5, 6);
mu bool Reach(Node u) :=
  (Init(u) | exists Node x. (Reach(x) & Edge(x, u)));
)";

} // namespace

TEST(FactTest, SelfContainedSystemSolves) {
  SolvedSystem S = solveWithFacts(FactGraph, "Reach");
  ASSERT_TRUE(S.Sys != nullptr);
  VarId U = S.Sys->relation(S.Sys->relId("Reach")).Formals[0];
  std::vector<bool> Got, Expected{true, true, true, false,
                                  false, false, false, false};
  for (unsigned N = 0; N < 8; ++N)
    Got.push_back(!(S.Value & S.Ev->encodeEqConst(U, N)).isZero());
  EXPECT_EQ(Got, Expected);
}

TEST(FactTest, InputRelationWithoutFactsIsEmpty) {
  // No Init facts: nothing is reachable.
  std::string Text = FactGraph;
  Text.erase(Text.find("fact Init(0);"), strlen("fact Init(0);"));
  SolvedSystem S = solveWithFacts(Text, "Reach");
  ASSERT_TRUE(S.Sys != nullptr);
  EXPECT_TRUE(S.Value.isZero());
}

TEST(FactTest, FactsMayPrecedeTheRelationDeclaration) {
  // Facts resolve in the second pass, like relation references.
  SolvedSystem S = solveWithFacts(R"(
domain D [4];
fact Seed(2);
input bool Seed(D u);
mu bool Copy(D u) := (Seed(u));
)",
                                  "Copy");
  ASSERT_TRUE(S.Sys != nullptr);
  VarId U = S.Sys->relation(S.Sys->relId("Copy")).Formals[0];
  EXPECT_FALSE((S.Value & S.Ev->encodeEqConst(U, 2)).isZero());
  EXPECT_TRUE((S.Value & S.Ev->encodeEqConst(U, 1)).isZero());
}

TEST(FactTest, RejectsFactsWhenCallerDisallowsThem) {
  DiagnosticEngine Diags;
  auto Sys = parseSystem("domain D [2]; input bool P(D u); fact P(1);",
                         Diags); // No facts vector.
  EXPECT_TRUE(Sys == nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(FactTest, RejectsFactOnDefinedRelation) {
  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  auto Sys = parseSystem(
      "domain D [2]; mu bool R(D u) := (u = 1); fact R(1);", Diags, &Facts);
  EXPECT_TRUE(Sys == nullptr);
}

TEST(FactTest, RejectsFactArityMismatch) {
  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  auto Sys = parseSystem("domain D [2]; input bool P(D u); fact P(1, 0);",
                         Diags, &Facts);
  EXPECT_TRUE(Sys == nullptr);
}

TEST(FactTest, RejectsFactConstantOutsideDomain) {
  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  auto Sys = parseSystem("domain D [3]; input bool P(D u); fact P(3);",
                         Diags, &Facts);
  EXPECT_TRUE(Sys == nullptr);
}

//===----------------------------------------------------------------------===//
// Ring recording (the witness extractor's hook)
//===----------------------------------------------------------------------===//

TEST(RingRecordingTest, RingsGrowMonotonicallyToTheFixpoint) {
  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  auto Sys = parseSystem(R"(
domain Node [8];
input bool Edge(Node x, Node y);
input bool Init(Node u);
fact Init(0);
fact Edge(0, 1);
fact Edge(1, 2);
fact Edge(2, 3);
mu bool Reach(Node u) :=
  (Init(u) | exists Node x. (Reach(x) & Edge(x, u)));
)",
                         Diags, &Facts);
  ASSERT_TRUE(Sys != nullptr) << Diags.str();
  BddManager Mgr;
  Evaluator Ev(*Sys, Mgr, Layout::sequential(*Sys, Mgr));
  bindFacts(Ev, *Sys, Facts);

  RingLog Rings;
  EvalOptions Opts;
  Opts.Rings = &Rings;
  EvalResult R = Ev.evaluate(Sys->relId("Reach"), Opts);

  // One new node per round: rings 0..3, converging at the fixpoint.
  ASSERT_EQ(Rings.size(), 4u);
  EXPECT_EQ(Rings.last(), R.Value);
  EXPECT_EQ(Rings.ring(Rings.size() - 1), R.Value);
  for (size_t I = 1; I < Rings.size(); ++I) {
    // Ring I contains ring I-1 strictly (until convergence).
    EXPECT_TRUE((Rings.ring(I - 1) & !Rings.ring(I)).isZero());
    EXPECT_NE(Rings.ring(I - 1), Rings.ring(I));
  }
}
