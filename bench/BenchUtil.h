//===- BenchUtil.h - Shared helpers for the table benchmarks ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the Figure-2/Figure-3 reproduction binaries: parsing
/// workloads, running engines by registry name through the `Solver`
/// facade, and printing aligned table rows. (The micro-benchmarks use
/// google-benchmark; the paper-table binaries print rows that mirror the
/// paper's layout instead, which is the deliverable.)
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BENCH_BENCHUTIL_H
#define GETAFIX_BENCH_BENCHUTIL_H

#include "api/Solver.h"
#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace bench {

struct ParsedProgram {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg;
};

inline ParsedProgram parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedProgram P;
  P.Prog = bp::parseProgram(Src, Diags);
  if (!P.Prog) {
    std::fprintf(stderr, "benchmark workload failed to parse:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  P.Cfg = bp::buildCfg(*P.Prog);
  return P;
}

struct ParsedConcProgram {
  std::unique_ptr<bp::ConcurrentProgram> Conc;
  std::vector<bp::ProgramCfg> Cfgs;
};

inline ParsedConcProgram parseConcOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedConcProgram P;
  P.Conc = bp::parseConcurrentProgram(Src, Diags);
  if (!P.Conc) {
    std::fprintf(stderr, "benchmark workload failed to parse:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  P.Cfgs = conc::buildThreadCfgs(*P.Conc);
  return P;
}

/// Results of one engine on one workload (a view of SolveResult that the
/// table printers index).
struct EngineRow {
  bool Reachable = false;
  double Seconds = 0.0;
  size_t Nodes = 0;
  uint64_t Iterations = 0;
  double ReachStates = 0.0;
  size_t TransformedGlobals = 0;
  uint64_t NodesCreated = 0; ///< Total BDD nodes allocated (op-count proxy).
  uint64_t DeltaRounds = 0;  ///< Rounds run in frontier (delta) mode.
  size_t PeakLiveNodes = 0;  ///< Peak BDD nodes in the manager.
  double CacheHitRate = 0.0; ///< Computed-cache hit rate of the solve.
  /// Narrow-round cofactor counters (restrict-vs-constrain A/B).
  uint64_t CofactorApplications = 0;
  uint64_t CofactorSupportBefore = 0;
  uint64_t CofactorSupportAfter = 0;
  /// Session mode: rounds served from persisted state vs newly evaluated.
  uint64_t SummariesReused = 0;
  uint64_t SummariesRecomputed = 0;
  /// Per-procedure summary split: condensation width of the compiled
  /// system, number of summary relations, and SCC tasks the DAG
  /// scheduler actually ran on the worker pool.
  unsigned CondensationWidth = 0;
  unsigned SummaryRelations = 0;
  uint64_t SccsSolvedParallel = 0;

  /// Average operand support growth factor of the cofactor rewrite
  /// (restrict is ≤ 1 by construction; constrain may exceed 1).
  double cofactorSupportGrowth() const {
    return CofactorSupportBefore
               ? double(CofactorSupportAfter) / double(CofactorSupportBefore)
               : 0.0;
  }
};

inline EngineRow rowOrDie(const SolveResult &R, const char *Engine) {
  if (!R.ok()) {
    std::fprintf(stderr, "engine '%s' failed: %s\n", Engine,
                 R.Error.c_str());
    std::exit(1);
  }
  EngineRow Row;
  Row.Reachable = R.Reachable;
  Row.Seconds = R.Seconds;
  Row.Nodes = R.SummaryNodes;
  Row.Iterations = R.Iterations;
  Row.ReachStates = R.ReachStates;
  Row.TransformedGlobals = R.TransformedGlobals;
  Row.NodesCreated = R.BddNodesCreated;
  Row.DeltaRounds = R.DeltaRounds;
  Row.PeakLiveNodes = R.PeakLiveNodes;
  Row.CacheHitRate = R.bddCacheHitRate();
  Row.CofactorApplications = R.Cofactor.Applications;
  Row.CofactorSupportBefore = R.Cofactor.SupportBefore;
  Row.CofactorSupportAfter = R.Cofactor.SupportAfter;
  Row.SummariesReused = R.SummariesReused;
  Row.SummariesRecomputed = R.SummariesRecomputed;
  Row.CondensationWidth = R.CondensationWidth;
  Row.SummaryRelations = R.SummaryRelations;
  Row.SccsSolvedParallel = R.SccsSolvedParallel;
  return Row;
}

/// Runs \p Engine on a sequential label query with fully specified options
/// (the ablation drivers vary cache size and the constrain knob this way).
inline EngineRow runEngine(const bp::ProgramCfg &Cfg,
                           const std::string &Label, const char *Engine,
                           SolverOptions Opts) {
  Opts.Engine = Engine;
  return rowOrDie(Solver::solve(Query::fromCfg(Cfg).target(Label), Opts),
                  Engine);
}

/// Runs the engine \p Engine (a registry name) on a sequential label query.
inline EngineRow runEngine(const bp::ProgramCfg &Cfg,
                           const std::string &Label, const char *Engine,
                           bool EarlyStop = true,
                           fpc::EvalStrategy Strategy =
                               fpc::EvalStrategy::SemiNaive) {
  SolverOptions Opts;
  Opts.EarlyStop = EarlyStop;
  Opts.Strategy = Strategy;
  return runEngine(Cfg, Label, Engine, std::move(Opts));
}

/// Runs \p Engine on a concurrent label query under \p Opts (which carries
/// the context bound / scheduling policy).
inline EngineRow runConcEngine(const ParsedConcProgram &P,
                               const std::string &Label, const char *Engine,
                               SolverOptions Opts) {
  Opts.Engine = Engine;
  return rowOrDie(
      Solver::solve(Query::fromConcurrent(*P.Conc, &P.Cfgs).target(Label),
                    Opts),
      Engine);
}

/// Flat-row JSON recorder for the `BENCH_*.json` files the CI uploads as
/// artifacts and diffs for verdict drift. Rows are objects of
/// string/number/bool fields, emitted as `{"rows": [...]}`. Keys and
/// string values here are benchmark identifiers (no escaping needed
/// beyond quotes/backslashes).
class JsonReport {
public:
  class Row {
  public:
    Row &field(const char *Key, const std::string &Value) {
      add(Key, '"' + escape(Value) + '"');
      return *this;
    }
    Row &field(const char *Key, const char *Value) {
      return field(Key, std::string(Value));
    }
    Row &field(const char *Key, double Value) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.6f", Value);
      add(Key, Buf);
      return *this;
    }
    Row &field(const char *Key, uint64_t Value) {
      add(Key, std::to_string(Value));
      return *this;
    }
    Row &field(const char *Key, unsigned Value) {
      return field(Key, uint64_t(Value));
    }
    Row &field(const char *Key, bool Value) {
      add(Key, Value ? "true" : "false");
      return *this;
    }

  private:
    friend class JsonReport;
    static std::string escape(const std::string &S) {
      std::string Out;
      for (char C : S) {
        if (C == '"' || C == '\\')
          Out += '\\';
        Out += C;
      }
      return Out;
    }
    void add(const char *Key, const std::string &Rendered) {
      if (!Buf.empty())
        Buf += ", ";
      Buf += '"';
      Buf += escape(Key);
      Buf += "\": ";
      Buf += Rendered;
    }
    std::string Buf;
  };

  void add(const Row &R) { Rows.push_back(R.Buf); }

  /// Writes the report; exits loudly on I/O failure so CI cannot mistake
  /// a missing artifact for an empty one.
  void write(const std::string &Path) const {
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
      std::exit(1);
    }
    std::fprintf(Out, "{\"rows\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(Out, "  {%s}%s\n", Rows[I].c_str(),
                   I + 1 < Rows.size() ? "," : "");
    std::fprintf(Out, "]}\n");
    std::fclose(Out);
  }

private:
  std::vector<std::string> Rows;
};

/// Counts non-blank source lines (the paper's LOC column).
inline unsigned countLoc(const std::string &Src) {
  unsigned Loc = 0;
  bool Blank = true;
  for (char C : Src) {
    if (C == '\n') {
      Loc += !Blank;
      Blank = true;
    } else if (!isspace(static_cast<unsigned char>(C))) {
      Blank = false;
    }
  }
  return Loc + !Blank;
}

} // namespace bench
} // namespace getafix

#endif // GETAFIX_BENCH_BENCHUTIL_H
