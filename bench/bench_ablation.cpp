//===- bench_ablation.cpp - Design-choice ablations ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Ablates the paper's engineering claims on terminator-style workloads:
//   - Section 4.2: splitting the Return relation (ReturnA/ReturnB) versus
//     conjoining the two summary BDDs directly,
//   - Section 4.3: the Relevant-PC frontier restriction versus plain
//     entry-forward iteration,
//   - solver-level early termination on positive instances.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

using namespace getafix;
using namespace getafix::bench;

int main() {
  std::printf("=== Ablations (Sections 4.2 / 4.3) ===\n");
  std::printf("%-24s %10s %10s %10s %12s\n", "case", "EF-unsplit",
              "EF-split", "EF-opt", "simple-4.1");

  for (unsigned Bits : {4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);

    EngineRow Unsplit = runEngine(Parsed.Cfg, W.TargetLabel, "ef");
    EngineRow Split = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split");
    EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt");
    EngineRow Simple = runEngine(Parsed.Cfg, W.TargetLabel, "summary");
    std::printf("%-24s %9.3fs %9.3fs %9.3fs %11.3fs\n", W.Name.c_str(),
                Unsplit.Seconds, Split.Seconds, Opt.Seconds,
                Simple.Seconds);
  }

  std::printf("\n--- early termination (positive driver instances) ---\n");
  std::printf("%-24s %12s %12s\n", "case", "early-stop", "full-fixpoint");
  for (uint64_t Seed : {7u, 8u, 9u}) {
    gen::DriverParams P;
    P.NumProcs = 24;
    P.StmtsPerProc = 14;
    P.Reachable = true;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    EngineRow Fast = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split",
                               /*EarlyStop=*/true);
    EngineRow Full = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split",
                               /*EarlyStop=*/false);
    std::printf("%-24s %11.3fs %11.3fs\n", W.Name.c_str(), Fast.Seconds,
                Full.Seconds);
  }
  return 0;
}
