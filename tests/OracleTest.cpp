//===- OracleTest.cpp - Explicit-engine and generator tests ---------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "concurrent/ConcReach.h"
#include "interp/ConcurrentOracle.h"
#include "interp/SummaryOracle.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

bp::ProgramCfg parseCfg(const std::string &Src,
                        std::unique_ptr<bp::Program> &Keep) {
  DiagnosticEngine Diags;
  Keep = bp::parseProgram(Src, Diags);
  EXPECT_TRUE(Keep != nullptr) << Diags.str();
  if (!Keep) // Keep the runner alive; the EXPECT above already failed.
    Keep = bp::parseProgram("main() begin end", Diags);
  return bp::buildCfg(*Keep);
}

} // namespace

TEST(SummaryOracleTest, CountsPathEdgesDeterministically) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(R"(
decl g;
main() begin
  g := T;
  if (!g) then ERR: skip; fi;
end
)",
                                Prog);
  interp::OracleResult A = interp::summaryReachabilityOfLabel(Cfg, "ERR");
  interp::OracleResult B = interp::summaryReachabilityOfLabel(Cfg, "ERR");
  EXPECT_FALSE(A.Reachable);
  EXPECT_EQ(A.PathEdges, B.PathEdges);
  EXPECT_GT(A.PathEdges, 0u);
}

TEST(SummaryOracleTest, SummariesRecordedPerInstantiation) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(R"(
main() begin
  decl a, b;
  a := id(T);
  b := id(F);
end
id(x) begin
  return x;
end
)",
                                Prog);
  interp::OracleResult R = interp::summaryReachability(Cfg);
  // id is instantiated with x=T and x=F: at least two summaries.
  EXPECT_GE(R.Summaries, 2u);
}

TEST(SummaryOracleTest, NondetLocalsAtEntry) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(R"(
main() begin
  decl x;
  if (x) then ERR: skip; fi;
end
)",
                                Prog);
  // Uninitialized locals are nondeterministic: ERR is reachable.
  EXPECT_TRUE(interp::summaryReachabilityOfLabel(Cfg, "ERR").Reachable);
}

TEST(ConcurrentOracleTest, SwitchCountSemantics) {
  DiagnosticEngine Diags;
  auto Conc = bp::parseConcurrentProgram(R"(
shared decl s;
thread
main() begin
  s := T;
end
end
thread
main() begin
  if (s) then ERR: skip; fi;
end
end
)",
                                         Diags);
  ASSERT_TRUE(Conc != nullptr) << Diags.str();
  auto Cfgs = conc::buildThreadCfgs(*Conc);
  unsigned ProcId = 0, Pc = 0;
  ASSERT_TRUE(Cfgs[1].findLabelPc("ERR", ProcId, Pc));
  // Needs thread 0 to run, then one switch into thread 1.
  for (unsigned K = 0; K <= 2; ++K) {
    interp::ConcurrentQuery Q{1, ProcId, Pc, K};
    auto R = interp::concurrentReachability(*Conc, Cfgs, Q);
    EXPECT_TRUE(R.Exhaustive);
    EXPECT_EQ(R.Reachable, K >= 1) << "k=" << K;
  }
}

TEST(WorkloadsTest, RegressionSuiteParsesAndHasBothPolarities) {
  auto Suite = gen::regressionSuite();
  EXPECT_GE(Suite.size(), 20u);
  unsigned Positive = 0;
  for (const gen::Workload &W : Suite) {
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
    unsigned ProcId = 0, Pc = 0;
    EXPECT_TRUE(Cfg.findLabelPc(W.TargetLabel, ProcId, Pc)) << W.Name;
    Positive += W.ExpectReachable;
  }
  EXPECT_GT(Positive, 5u);
  EXPECT_LT(Positive, Suite.size() - 5);
}

TEST(WorkloadsTest, DriverGeneratorIsDeterministic) {
  gen::DriverParams P;
  P.Seed = 17;
  EXPECT_EQ(gen::driverProgram(P).Source, gen::driverProgram(P).Source);
  gen::DriverParams P2 = P;
  P2.Seed = 18;
  EXPECT_NE(gen::driverProgram(P).Source, gen::driverProgram(P2).Source);
}

TEST(WorkloadsTest, DriverNegativeInvariantHolds) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    gen::DriverParams P;
    P.NumProcs = 4;
    P.NumGlobals = 3;
    P.LocalsPerProc = 3;
    P.StmtsPerProc = 5;
    P.Reachable = false;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
    EXPECT_FALSE(
        interp::summaryReachabilityOfLabel(Cfg, W.TargetLabel).Reachable)
        << W.Name;
  }
}

TEST(WorkloadsTest, TerminatorScalesWithBits) {
  gen::TerminatorParams Small;
  Small.CounterBits = 2;
  gen::TerminatorParams Large;
  Large.CounterBits = 6;
  EXPECT_LT(gen::terminatorProgram(Small).Source.size(),
            gen::terminatorProgram(Large).Source.size());
}

TEST(WorkloadsTest, BluetoothModelShape) {
  std::string Src = gen::bluetoothModel(2, 2);
  DiagnosticEngine Diags;
  auto Conc = bp::parseConcurrentProgram(Src, Diags);
  ASSERT_TRUE(Conc != nullptr) << Diags.str();
  EXPECT_EQ(Conc->numThreads(), 4u);
  EXPECT_EQ(Conc->SharedGlobals.size(), 8u) << "Figure 3's 8 globals";
}
