//===- BddTest.cpp - BDD package tests ------------------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

using namespace getafix;

namespace {

/// A brute-force boolean function over N variables: 2^N truth-table bits.
class TruthTable {
public:
  explicit TruthTable(unsigned NumVars, uint64_t Bits = 0)
      : NumVars(NumVars), Bits(Bits) {
    assert(NumVars <= 6 && "truth table capped at 6 vars");
  }

  static TruthTable var(unsigned NumVars, unsigned V) {
    TruthTable T(NumVars);
    for (unsigned Row = 0; Row < (1u << NumVars); ++Row)
      if ((Row >> V) & 1)
        T.Bits |= uint64_t(1) << Row;
    return T;
  }

  bool eval(unsigned Row) const { return (Bits >> Row) & 1; }
  unsigned rows() const { return 1u << NumVars; }

  TruthTable operator&(const TruthTable &O) const {
    return TruthTable(NumVars, Bits & O.Bits);
  }
  TruthTable operator|(const TruthTable &O) const {
    return TruthTable(NumVars, Bits | O.Bits);
  }
  TruthTable operator^(const TruthTable &O) const {
    return TruthTable(NumVars, Bits ^ O.Bits);
  }
  TruthTable operator!() const {
    uint64_t Mask = rows() == 64 ? ~uint64_t(0)
                                 : ((uint64_t(1) << rows()) - 1);
    return TruthTable(NumVars, ~Bits & Mask);
  }

  TruthTable exists(unsigned V) const {
    TruthTable R(NumVars);
    for (unsigned Row = 0; Row < rows(); ++Row) {
      unsigned Lo = Row & ~(1u << V), Hi = Row | (1u << V);
      if (eval(Lo) || eval(Hi))
        R.Bits |= uint64_t(1) << Row;
    }
    return R;
  }

  unsigned NumVars;
  uint64_t Bits;
};

/// Checks that a BDD and a truth table agree on every assignment.
void expectEqual(const Bdd &B, const TruthTable &T, const char *What) {
  for (unsigned Row = 0; Row < T.rows(); ++Row) {
    std::vector<bool> Assignment(T.NumVars);
    for (unsigned V = 0; V < T.NumVars; ++V)
      Assignment[V] = (Row >> V) & 1;
    ASSERT_EQ(B.eval(Assignment), T.eval(Row))
        << What << " differs on row " << Row;
  }
}

/// Builds a random (Bdd, TruthTable) pair over NumVars variables.
std::pair<Bdd, TruthTable> randomFunction(BddManager &Mgr, Rng &R,
                                          unsigned NumVars, unsigned Ops) {
  Bdd B = R.flip() ? Mgr.one() : Mgr.zero();
  TruthTable T(NumVars, B.isOne() ? ~uint64_t(0) >> (64 - (1u << NumVars))
                                  : 0);
  for (unsigned I = 0; I < Ops; ++I) {
    unsigned V = unsigned(R.below(NumVars));
    Bdd Lit = Mgr.var(V);
    TruthTable LitT = TruthTable::var(NumVars, V);
    switch (R.below(3)) {
    case 0:
      B = B & Lit;
      T = T & LitT;
      break;
    case 1:
      B = B | Lit;
      T = T | LitT;
      break;
    default:
      B = B ^ Lit;
      T = T ^ LitT;
      break;
    }
    if (R.chance(1, 4)) {
      B = !B;
      T = !T;
    }
  }
  return {B, T};
}

class BddPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST(BddTest, TerminalBasics) {
  BddManager Mgr(4);
  EXPECT_TRUE(Mgr.one().isOne());
  EXPECT_TRUE(Mgr.zero().isZero());
  EXPECT_EQ(Mgr.one() & Mgr.zero(), Mgr.zero());
  EXPECT_EQ(Mgr.one() | Mgr.zero(), Mgr.one());
  EXPECT_EQ(!Mgr.one(), Mgr.zero());
  EXPECT_EQ(Mgr.one() ^ Mgr.one(), Mgr.zero());
}

TEST(BddTest, VarAndNvarAreComplements) {
  BddManager Mgr(3);
  for (unsigned V = 0; V < 3; ++V) {
    EXPECT_EQ(!Mgr.var(V), Mgr.nvar(V));
    EXPECT_EQ(Mgr.var(V) & Mgr.nvar(V), Mgr.zero());
    EXPECT_EQ(Mgr.var(V) | Mgr.nvar(V), Mgr.one());
  }
}

TEST(BddTest, HashConsingCanonicity) {
  BddManager Mgr(4);
  Bdd A = (Mgr.var(0) & Mgr.var(1)) | Mgr.var(2);
  Bdd B = Mgr.var(2) | (Mgr.var(1) & Mgr.var(0));
  EXPECT_EQ(A, B) << "equivalent functions must share one node";
}

TEST(BddTest, IteMatchesDefinition) {
  BddManager Mgr(4);
  Rng R(7);
  for (unsigned Trial = 0; Trial < 50; ++Trial) {
    auto [F, FT] = randomFunction(Mgr, R, 4, 4);
    auto [G, GT] = randomFunction(Mgr, R, 4, 4);
    auto [H, HT] = randomFunction(Mgr, R, 4, 4);
    Bdd Ite = F.ite(G, H);
    Bdd Expected = (F & G) | (!F & H);
    EXPECT_EQ(Ite, Expected);
    (void)FT;
    (void)GT;
    (void)HT;
  }
}

TEST_P(BddPropertyTest, OpsMatchTruthTables) {
  BddManager Mgr(5);
  Rng R(GetParam());
  for (unsigned Trial = 0; Trial < 40; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 5, 6);
    auto [B, BT] = randomFunction(Mgr, R, 5, 6);
    expectEqual(A & B, AT & BT, "and");
    expectEqual(A | B, AT | BT, "or");
    expectEqual(A ^ B, AT ^ BT, "xor");
    expectEqual(!A, !AT, "not");
    expectEqual(A.implies(B), (!AT) | BT, "implies");
    expectEqual(A.iff(B), !(AT ^ BT), "iff");
  }
}

TEST_P(BddPropertyTest, QuantificationMatchesTruthTables) {
  BddManager Mgr(5);
  Rng R(GetParam() ^ 0x5555);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 5, 6);
    unsigned V1 = unsigned(R.below(5));
    unsigned V2 = unsigned(R.below(5));
    BddCube Cube = Mgr.makeCube({V1, V2});
    TruthTable ExT = AT.exists(V1).exists(V2);
    expectEqual(A.exists(Cube), ExT, "exists");
    TruthTable FaT = !(((!AT).exists(V1)).exists(V2));
    expectEqual(A.forall(Cube), FaT, "forall");
  }
}

TEST_P(BddPropertyTest, AndExistsIsFusedRelationalProduct) {
  BddManager Mgr(5);
  Rng R(GetParam() ^ 0xabcdef);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 5, 6);
    auto [B, BT] = randomFunction(Mgr, R, 5, 6);
    (void)AT;
    (void)BT;
    unsigned V1 = unsigned(R.below(5));
    unsigned V2 = unsigned(R.below(5));
    BddCube Cube = Mgr.makeCube({V1, V2});
    EXPECT_EQ(A.andExists(B, Cube), (A & B).exists(Cube));
  }
}

TEST_P(BddPropertyTest, PermuteMatchesSubstitution) {
  BddManager Mgr(6);
  Rng R(GetParam() ^ 0x1234);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 3, 5);
    (void)AT;
    // Rename 0,1,2 -> 3,4,5 (monotone) and 0,1,2 -> 5,4,3 (reversing).
    BddPerm Up = Mgr.makePermutation({{0, 3}, {1, 4}, {2, 5}});
    BddPerm Rev = Mgr.makePermutation({{0, 5}, {1, 4}, {2, 3}});
    Bdd AUp = A.permute(Up);
    Bdd ARev = A.permute(Rev);
    for (unsigned Row = 0; Row < 8; ++Row) {
      std::vector<bool> Orig(6, false), UpA(6, false), RevA(6, false);
      for (unsigned V = 0; V < 3; ++V) {
        bool Bit = (Row >> V) & 1;
        Orig[V] = Bit;
        UpA[3 + V] = Bit;
        RevA[5 - V] = Bit;
      }
      EXPECT_EQ(AUp.eval(UpA), A.eval(Orig));
      EXPECT_EQ(ARev.eval(RevA), A.eval(Orig));
    }
  }
}

TEST(BddTest, NonInjectiveRenameDiagonalizes) {
  BddManager Mgr(3);
  // f = x0 ^ x1; rename both onto x2: f[x0:=x2, x1:=x2] == false.
  Bdd F = Mgr.var(0) ^ Mgr.var(1);
  BddPerm Diag = Mgr.makePermutation({{0, 2}, {1, 2}});
  EXPECT_EQ(F.permute(Diag), Mgr.zero());
  Bdd G = Mgr.var(0) & Mgr.var(1);
  EXPECT_EQ(G.permute(Diag), Mgr.var(2));
}

TEST(BddTest, RestrictIsCofactor) {
  BddManager Mgr(4);
  Rng R(99);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 4, 5);
    unsigned V = unsigned(R.below(4));
    Bdd Hi = A.restrict(V, true);
    Bdd Lo = A.restrict(V, false);
    // Shannon expansion: f == (v & f|v=1) | (!v & f|v=0).
    EXPECT_EQ(A, (Mgr.var(V) & Hi) | (Mgr.nvar(V) & Lo));
    (void)AT;
  }
}

TEST(BddTest, SatCount) {
  BddManager Mgr(4);
  EXPECT_DOUBLE_EQ(Mgr.one().satCount(4), 16.0);
  EXPECT_DOUBLE_EQ(Mgr.zero().satCount(4), 0.0);
  EXPECT_DOUBLE_EQ(Mgr.var(0).satCount(4), 8.0);
  EXPECT_DOUBLE_EQ((Mgr.var(0) & Mgr.var(1)).satCount(4), 4.0);
  EXPECT_DOUBLE_EQ((Mgr.var(0) | Mgr.var(1)).satCount(4), 12.0);
  EXPECT_DOUBLE_EQ((Mgr.var(0) ^ Mgr.var(1)).satCount(4), 8.0);
}

TEST(BddTest, SupportAndNodeCount) {
  BddManager Mgr(5);
  Bdd F = (Mgr.var(0) & Mgr.var(2)) | Mgr.var(4);
  std::vector<unsigned> Expected{0, 2, 4};
  EXPECT_EQ(F.support(), Expected);
  EXPECT_GT(F.nodeCount(), 0u);
  EXPECT_EQ(Mgr.one().nodeCount(), 0u);
}

TEST(BddTest, OnePathSatisfies) {
  BddManager Mgr(4);
  Rng R(5);
  for (unsigned Trial = 0; Trial < 30; ++Trial) {
    auto [A, AT] = randomFunction(Mgr, R, 4, 5);
    (void)AT;
    if (A.isZero())
      continue;
    std::vector<int8_t> Path = A.onePath();
    std::vector<bool> Assignment(4);
    for (unsigned V = 0; V < 4; ++V)
      Assignment[V] = Path[V] == 1;
    EXPECT_TRUE(A.eval(Assignment));
  }
}

TEST(BddTest, CubeBddIsConjunction) {
  BddManager Mgr(4);
  BddCube Cube = Mgr.makeCube({3, 1});
  EXPECT_EQ(Mgr.cubeBdd(Cube), Mgr.var(1) & Mgr.var(3));
}

TEST(BddTest, CubeInterningDeduplicates) {
  BddManager Mgr(4);
  BddCube A = Mgr.makeCube({1, 2});
  BddCube B = Mgr.makeCube({2, 1, 2});
  EXPECT_EQ(A.Id, B.Id);
}

TEST(BddTest, GcPreservesLiveHandles) {
  BddManager Mgr(8);
  Rng R(11);
  auto [Keep, KeepT] = randomFunction(Mgr, R, 6, 10);
  size_t KeepNodes = Keep.nodeCount();
  // Create and drop lots of garbage. (Stay within TruthTable's 6-variable
  // cap: the manager has 8 variables, but the helper shadows every random
  // function with a 2^N-bit truth table.)
  for (unsigned I = 0; I < 200; ++I) {
    auto [Tmp, TmpT] = randomFunction(Mgr, R, 6, 12);
    (void)Tmp;
    (void)TmpT;
  }
  size_t Before = Mgr.liveNodeCount();
  Mgr.gc();
  EXPECT_LT(Mgr.liveNodeCount(), Before);
  EXPECT_EQ(Keep.nodeCount(), KeepNodes);
  // The function still evaluates correctly after collection.
  expectEqual(Keep, KeepT, "post-gc");
  // And new operations still work.
  EXPECT_EQ(Keep & Mgr.one(), Keep);
}

TEST(BddTest, GcStatsAccumulate) {
  BddManager Mgr(4);
  { Bdd Garbage = Mgr.var(0) & Mgr.var(1) & Mgr.var(2); }
  Mgr.gc();
  EXPECT_GE(Mgr.stats().GcRuns, 1u);
  EXPECT_GE(Mgr.stats().GcReclaimed, 1u);
}

TEST(BddTest, FrontierStaysInInterval) {
  // frontier(F, G) must lie between F \ G and F; random pairs probe the
  // interval bound, and the two structural guarantees are pinned exactly:
  // equal operands collapse to zero, and a zero old set returns F itself.
  BddManager Mgr(6);
  Rng R(23);
  for (unsigned Trial = 0; Trial < 40; ++Trial) {
    auto [F, FT] = randomFunction(Mgr, R, 6, 8);
    auto [G, GT] = randomFunction(Mgr, R, 6, 8);
    Bdd Frontier = F.frontier(G);
    // F \ G <= Frontier <= F, i.e. both inclusions hold.
    EXPECT_TRUE(((F & !G) & !Frontier).isZero()) << "lost new tuples";
    EXPECT_TRUE((Frontier & !F).isZero()) << "invented tuples";
    (void)FT;
    (void)GT;
  }
  Bdd F = Mgr.var(0) | Mgr.var(1);
  EXPECT_TRUE(F.frontier(F).isZero());
  EXPECT_EQ(F.frontier(Mgr.zero()), F);
  EXPECT_TRUE(F.frontier(Mgr.one()).isZero());
  EXPECT_EQ(Mgr.one().frontier(Mgr.zero()), Mgr.one());
}

TEST(BddTest, NewVarGrowsManager) {
  BddManager Mgr(0);
  unsigned V0 = Mgr.newVar();
  unsigned V1 = Mgr.newVar();
  EXPECT_EQ(V0, 0u);
  EXPECT_EQ(V1, 1u);
  EXPECT_EQ(Mgr.numVars(), 2u);
  EXPECT_EQ(Mgr.var(V0) & Mgr.var(V1), Mgr.var(V1) & Mgr.var(V0));
}

TEST_P(BddPropertyTest, ConstrainRestrictAlgebraicIdentities) {
  BddManager Mgr(5);
  Rng R(GetParam() * 71u);
  for (unsigned Trial = 0; Trial < 40; ++Trial) {
    auto [F, FT] = randomFunction(Mgr, R, 5, 6);
    auto [C, CT] = randomFunction(Mgr, R, 5, 6);
    (void)FT;
    (void)CT;
    if (C.isZero())
      continue; // Both ops require a non-empty care set.

    Bdd Con = F.constrain(C);
    Bdd Res = F.restrict(C);

    // The defining identity of a generalized cofactor.
    EXPECT_EQ(Con & C, F & C) << "constrain breaks f↓c & c == f & c";
    EXPECT_EQ(Res & C, F & C) << "restrict breaks f⇓c & c == f & c";

    // Constrain is a projection: applying it twice changes nothing.
    EXPECT_EQ(Con.constrain(C), Con) << "constrain not idempotent";

    // The two simplifiers agree wherever the care set holds.
    EXPECT_TRUE(((Con ^ Res) & C).isZero())
        << "constrain and restrict disagree inside the care set";

    // A full care set is a no-op.
    EXPECT_EQ(F.constrain(Mgr.one()), F);
    EXPECT_EQ(F.restrict(Mgr.one()), F);

    // Restrict never adds variables (constrain may).
    std::vector<unsigned> FSup = F.support();
    for (unsigned V : Res.support())
      EXPECT_TRUE(std::find(FSup.begin(), FSup.end(), V) != FSup.end())
          << "restrict pulled variable " << V << " into the support";
  }
}

TEST(BddTest, ConstrainCollapsesAgainstItsOwnCareSet) {
  BddManager Mgr(4);
  Bdd F = Mgr.var(0) & Mgr.var(1);
  // f ↓ f == 1: every point maps to a satisfying one.
  EXPECT_TRUE(F.constrain(F).isOne());
  EXPECT_TRUE(F.restrict(F).isOne());
  // Care set disjoint from f: the conjunction is empty, so the cofactor
  // may be anything on a zero care set — pin the canonical choice.
  EXPECT_TRUE(F.constrain(Mgr.nvar(0)).isZero());
}

TEST(BddTest, ConstrainShrinksTransitionAgainstNarrowCareSet) {
  // The evaluator's use case: a wide "transition" conjoined with a narrow
  // frontier. The constrained operand must stay small (here: collapse to
  // the cofactor) while the relational product is unchanged.
  BddManager Mgr(6);
  Rng R(99);
  auto [T1, TT1] = randomFunction(Mgr, R, 6, 10);
  (void)TT1;
  Bdd Care = Mgr.var(0) & Mgr.nvar(1) & Mgr.var(2); // One cube: 3 fixed bits.
  Bdd Constrained = T1.constrain(Care);
  std::vector<unsigned> Vars{0, 1, 2, 3};
  BddCube Cube = Mgr.makeCube(Vars);
  EXPECT_EQ(Care.andExists(Constrained, Cube), Care.andExists(T1, Cube))
      << "constraining the transition changed the relational product";
  EXPECT_LE(Constrained.nodeCount(), T1.nodeCount())
      << "cube care set must not grow the operand";
}

/// One deterministic pseudo-random operation script, re-runnable against
/// managers with different cache geometries. Returns a per-step
/// fingerprint (sat counts and dag sizes) that must be identical for any
/// cache size/associativity, and across mid-script cache clears: the
/// computed cache affects only speed, never results.
std::vector<double> runCacheScript(BddManager &Mgr, bool MidScriptClear) {
  Rng R(4242);
  std::vector<double> Trace;
  std::vector<Bdd> Pool;
  for (unsigned I = 0; I < 6; ++I)
    Pool.push_back(randomFunction(Mgr, R, 6, 8).first);
  std::vector<unsigned> EvenVars{0, 2, 4};
  BddCube Cube = Mgr.makeCube(EvenVars);
  for (unsigned Step = 0; Step < 60; ++Step) {
    if (MidScriptClear && Step == 30)
      Mgr.clearComputedCache();
    const Bdd &A = Pool[R.below(Pool.size())];
    const Bdd &B = Pool[R.below(Pool.size())];
    Bdd Out;
    switch (R.below(5)) {
    case 0:
      Out = A & B;
      break;
    case 1:
      Out = A | B;
      break;
    case 2:
      Out = A.andExists(B, Cube);
      break;
    case 3:
      Out = B.isZero() ? !A : A.constrain(B);
      break;
    default:
      Out = B.isZero() ? (A ^ B) : A.restrict(B);
      break;
    }
    Pool[R.below(Pool.size())] = Out;
    Trace.push_back(Out.satCount(6) * 1000.0 + double(Out.nodeCount()));
  }
  return Trace;
}

TEST(BddTest, CacheStressResultsIdenticalAcrossGeometries) {
  // Identical op scripts must produce identical results at every cache
  // size (8 vs 18 bits), at every associativity (direct-mapped vs 4-way),
  // and across a mid-script generation bump. CacheBits 8 with 60 steps of
  // 6 shared functions keeps the cache under real replacement pressure.
  BddManager Reference(6, 18, 4);
  std::vector<double> Expected = runCacheScript(Reference, false);

  struct Geometry {
    unsigned Bits, Ways;
    bool MidClear;
  } Geometries[] = {{8, 4, false}, {8, 1, false}, {18, 1, false},
                    {8, 4, true},  {18, 4, true}};
  for (const Geometry &G : Geometries) {
    BddManager Mgr(6, G.Bits, G.Ways);
    EXPECT_EQ(runCacheScript(Mgr, G.MidClear), Expected)
        << "cache bits " << G.Bits << " ways " << G.Ways << " midclear "
        << G.MidClear;
  }
}

/// The conflict-heavy hot-set workload of bench_bdd, shrunk to test
/// scale: a hot set of pairs re-queried every round while a stream of
/// single-use pairs churns the same 2^10-slot cache. Returns a per-round
/// fingerprint of the hot results.
std::vector<double> runConflictHotSetScript(BddManager &Mgr) {
  Rng R(1311);
  std::vector<Bdd> Pool;
  for (unsigned I = 0; I < 72; ++I)
    Pool.push_back(randomFunction(Mgr, R, 6, 5).first);
  std::vector<double> Trace;
  for (unsigned Round = 0; Round < 24; ++Round) {
    // Hot pairs: the same 12 conjunctions every round.
    for (unsigned I = 0; I + 1 < 24; I += 2) {
      Bdd Out = Pool[I] & Pool[I + 1];
      Trace.push_back(Out.satCount(6) * 1000.0 + double(Out.nodeCount()));
    }
    // Streaming pairs: a fresh slice per round.
    for (unsigned K = 0; K < 16; ++K) {
      unsigned A = (Round * 16 + K) % 48 + 24;
      unsigned B = (Round * 7 + K * 3) % 48 + 24;
      Bdd Out = Pool[A].andExists(Pool[B], Mgr.makeCube({0, 2, 4}));
      Trace.push_back(Out.satCount(6) * 1000.0 + double(Out.nodeCount()));
    }
  }
  return Trace;
}

TEST(BddTest, ConflictPressureResultsIdenticalAcrossWays) {
  // The associativity lever's value regime (ROADMAP: conflict-heavy hot
  // sets at 2^10 slots) must stay a pure performance property: the
  // hot/streaming mix produces bit-identical per-round results whether
  // the cache is direct-mapped or 4-way, with replacement (and promotion)
  // policies differing underneath.
  BddManager Reference(6, 18, 4);
  std::vector<double> Expected = runConflictHotSetScript(Reference);
  for (unsigned Ways : {1u, 4u}) {
    BddManager Mgr(6, 10, Ways);
    EXPECT_EQ(runConflictHotSetScript(Mgr), Expected) << "ways " << Ways;
    EXPECT_GT(Mgr.stats().CacheLookups, 0u);
  }
}

TEST(BddTest, PerOpCacheCountersSplitTheAggregate) {
  BddManager Mgr(6);
  Rng R(17);
  Bdd A = randomFunction(Mgr, R, 6, 8).first;
  Bdd B = randomFunction(Mgr, R, 6, 8).first;
  std::vector<unsigned> Vars{1, 3};
  BddCube Cube = Mgr.makeCube(Vars);
  Bdd P = A.andExists(B, Cube);
  Bdd Q = A.andExists(B, Cube); // Warm repeat: must hit the AndExists op.
  EXPECT_EQ(P, Q);
  const BddStats &S = Mgr.stats();
  uint64_t SumLookups = 0, SumHits = 0;
  for (unsigned Op = 0; Op < NumBddOps; ++Op) {
    SumLookups += S.OpLookups[Op];
    SumHits += S.OpHits[Op];
    EXPECT_LE(S.OpHits[Op], S.OpLookups[Op]);
  }
  EXPECT_EQ(SumLookups, S.CacheLookups);
  EXPECT_EQ(SumHits, S.CacheHits);
  EXPECT_GT(S.OpHits[unsigned(BddOp::AndExists)], 0u)
      << "repeated andExists did not hit its per-op cache";
}

TEST(BddTest, GenerationClearDropsWarmEntries) {
  BddManager Mgr(6);
  Rng R(23);
  Bdd A = randomFunction(Mgr, R, 6, 8).first;
  Bdd B = randomFunction(Mgr, R, 6, 8).first;
  Bdd First = A & B;
  uint64_t Lookups = Mgr.stats().CacheLookups;
  uint64_t Hits = Mgr.stats().CacheHits;
  Bdd Warm = A & B; // Top-level repeat: one probe, served from the cache.
  EXPECT_EQ(First, Warm);
  EXPECT_EQ(Mgr.stats().CacheLookups, Lookups + 1);
  EXPECT_EQ(Mgr.stats().CacheHits, Hits + 1);
  Mgr.clearComputedCache();
  Lookups = Mgr.stats().CacheLookups;
  Hits = Mgr.stats().CacheHits;
  Bdd Cold = A & B; // Same op after the bump: recomputed, same result.
  EXPECT_EQ(First, Cold);
  uint64_t LookupsDelta = Mgr.stats().CacheLookups - Lookups;
  uint64_t HitsDelta = Mgr.stats().CacheHits - Hits;
  EXPECT_GT(LookupsDelta, 1u)
      << "generation bump did not force recomputation";
  // The recomputation may re-hit subproblems it inserts along the way,
  // but the very first probe runs against an empty generation.
  EXPECT_LT(HitsDelta, LookupsDelta);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
