//===- Witness.cpp - Counterexample extraction ----------------------------===//

#include "reach/Witness.h"

#include "fpcalc/Evaluator.h"
#include "interp/Eval.h"
#include "reach/SeqEngine.h"

#include <algorithm>
#include <stdexcept>

using namespace getafix;
using namespace getafix::reach;
using namespace getafix::fpc;
using namespace getafix::sym;

namespace {

/// A state within one procedure instance (module and entry valuation are
/// tracked by the caller).
struct InstState {
  unsigned Pc = 0;
  uint64_t Locals = 0;
  uint64_t Globals = 0;

  bool operator==(const InstState &O) const {
    return Pc == O.Pc && Locals == O.Locals && Globals == O.Globals;
  }
};

/// Completes the entry-forward fixpoint with ring recording and
/// reconstructs runs backwards through the rings. The solve is
/// target-independent, so one extractor serves any number of target
/// queries (`WitnessSession`); the one-shot `checkReachabilityWithWitness`
/// is a single-query instance.
///
/// Two ownership modes:
///   - *Owned* (program ctor): the extractor builds its own EntryForward
///     engine, BDD manager, and ring log — the pre-existing behavior.
///   - *Borrowed* (engine ctor): the extractor walks an owning
///     `SeqSession`'s engine/manager/evaluator and completes *its*
///     `IncrementalFixpoint` in place, so witness and plain queries share
///     one solve and one copy of every recorded round.
class WitnessExtractor {
public:
  WitnessExtractor(const bp::ProgramCfg &Cfg, const SeqOptions &Opts)
      : OwnEngine(
            std::make_unique<SeqEngine>(Cfg, SeqAlgorithm::EntryForward)),
        OwnMgr(std::make_unique<BddManager>(0, Opts.CacheBits)),
        Engine(OwnEngine.get()), Mgr(OwnMgr.get()), Opts(Opts),
        Gov(Opts.Governor), Fix(&OwnFix), S(Engine->conf()),
        X(Engine->scratch()), F(Engine->encoder().formals()) {
    Mgr->setGcThreshold(Opts.GcThreshold);
    OwnFix.setKeyframeInterval(Opts.RingKeyframeInterval);
  }

  WitnessExtractor(SeqEngine &SharedEngine, BddManager &SharedMgr,
                   Evaluator &SharedEv, IncrementalFixpoint &SharedFix,
                   const SeqOptions &Opts)
      : Engine(&SharedEngine), Mgr(&SharedMgr), Opts(Opts),
        Gov(Opts.Governor), Ev(&SharedEv), Fix(&SharedFix), Borrowed(true),
        S(Engine->conf()), X(Engine->scratch()),
        F(Engine->encoder().formals()) {
    assert((Engine->algorithm() == SeqAlgorithm::EntryForward ||
            Engine->algorithm() == SeqAlgorithm::EntryForwardSplit) &&
           "borrowed witness extraction needs an entry-forward system");
  }

  WitnessResult query(unsigned ProcId, unsigned Pc);

  bool solved() const { return SolveDone; }

  void setGovernor(support::ResourceGovernor *G) { Gov = G; }

  void clearComputedCache() {
    if (Borrowed)
      return; // The owner's valve clears the shared manager.
    Mgr->clearComputedCache();
    CacheCold = true;
  }

  // In borrowed mode the gauges report 0: the owning session already
  // counts the shared manager, and double-counting would inflate the
  // server pool's budget math. Counts are reachable-only (garbage
  // awaiting collection excluded); the peak is the retained high-water
  // sampled at query boundaries.
  size_t liveNodes() const {
    return Borrowed ? 0 : Mgr->reachableNodeCount();
  }
  size_t peakLiveNodes() const {
    return Borrowed ? 0 : std::max(PeakLive, liveNodes());
  }
  size_t memoryFootprint() const {
    return Borrowed ? 0
                    : Mgr->reachableMemoryEstimate(/*CountCache=*/!CacheCold);
  }

  /// True between a `clearComputedCache` and the next query: the cache is
  /// allocated but holds no live working set, so the footprint estimate
  /// discounts it.
  bool CacheCold = false;

  /// High-water mark of retained (reachable) nodes, sampled at the end
  /// of every owned-mode query; `peakLiveNodes()` reports it.
  size_t PeakLive = 0;

private:
  /// Runs the ring-recording solve on first use and snapshots the
  /// target-independent result fields (ring count, counters, stats).
  void ensureSolved();
  Bdd eq(VarId V, uint64_t Value) { return Ev->encodeEqConst(V, Value); }

  /// Renames a relation BDD from one set of calculus variables to another
  /// (entries with identical bits are skipped).
  Bdd renamed(Bdd Value,
              const std::vector<std::pair<VarId, VarId>> &FromTo) {
    const Layout &L = Ev->layout();
    std::vector<std::pair<unsigned, unsigned>> Pairs;
    for (auto [From, To] : FromTo) {
      const std::vector<unsigned> &FromBits = L.bits(From);
      const std::vector<unsigned> &ToBits = L.bits(To);
      assert(FromBits.size() == ToBits.size() && "width mismatch");
      for (size_t B = 0; B < FromBits.size(); ++B)
        if (FromBits[B] != ToBits[B])
          Pairs.emplace_back(FromBits[B], ToBits[B]);
    }
    return Pairs.empty() ? Value : Value.permute(Mgr->makePermutation(Pairs));
  }

  uint64_t decode(const std::vector<int8_t> &Path, VarId V) const {
    const std::vector<unsigned> &Bits = Ev->layout().bits(V);
    uint64_t Value = 0;
    for (size_t B = 0; B < Bits.size(); ++B)
      if (Bits[B] < Path.size() && Path[Bits[B]] == 1)
        Value |= uint64_t(1) << B;
    return Value;
  }

  /// The summary tuple (Mod, Pc, CL, CG, ECL, ECG) as a concrete BDD cube.
  Bdd tuple(unsigned Mod, const InstState &St, uint64_t EntryL,
            uint64_t EntryG) {
    return eq(S.Mod, Mod) & eq(S.Pc, St.Pc) & eq(S.CL, St.Locals) &
           eq(S.CG, St.Globals) & eq(S.ECL, EntryL) & eq(S.ECG, EntryG);
  }

  /// Index of the first ring containing \p T. A tuple drawn from solved
  /// state that no recorded ring contains breaks the backward walk's
  /// well-foundedness, so it is a hard diagnostic error (an engine
  /// invariant violation), not a recoverable miss — the old out-of-range
  /// sentinel return silently corrupted the walk in release builds.
  size_t rankOf(const Bdd &T) const {
    const RingLog &Rings = Fix->rings();
    size_t I = Rings.firstIntersecting(T);
    if (I == Rings.size())
      throw std::logic_error("witness reconstruction: tuple not present in "
                             "any recorded ring (engine invariant violation)");
    return I;
  }

  bool isInitSeed(unsigned Mod, uint64_t EntryL) {
    return !(Ev->input(Engine->encoder().InitRel) & eq(F.NMod, Mod) &
             eq(F.NPc, 0) & eq(F.NL, EntryL))
                .isZero();
  }

  /// Finds an internal-transition predecessor of \p To within \p Ring for
  /// the instance (Mod, EntryL, EntryG). Returns false if none exists.
  bool internalPred(const Bdd &Ring, unsigned Mod, uint64_t EntryL,
                    uint64_t EntryG, const InstState &To, InstState &From);

  /// Finds a call-skip predecessor of \p To: the caller state \p From plus
  /// the callee instance/exit it skipped over, all within \p Ring.
  struct SkipInfo {
    unsigned CalleeMod = 0;
    uint64_t CalleeEntryL = 0;
    InstState CalleeExit;
  };
  bool skipPred(const Bdd &Ring, unsigned Mod, uint64_t EntryL,
                uint64_t EntryG, const InstState &To, InstState &From,
                SkipInfo &Skip);

  /// Appends the steps of a run segment inside one procedure instance,
  /// from just after its entry up to and including \p Target (the entry
  /// state itself is emitted by the caller). Returns false on
  /// reconstruction failure (which indicates an engine bug).
  bool appendProcPath(unsigned Mod, uint64_t EntryL, uint64_t EntryG,
                      const InstState &Target);

  /// Appends the steps reaching the entry (Mod, EntryL, EntryG) — the
  /// init step for main, or recursively the caller's run plus a call step.
  bool appendEntryChain(unsigned Mod, uint64_t EntryL, uint64_t EntryG);

  /// Owned mode only (null in borrowed mode): the extractor's private
  /// EntryForward engine and BDD manager.
  std::unique_ptr<SeqEngine> OwnEngine;
  std::unique_ptr<BddManager> OwnMgr;
  SeqEngine *Engine;
  BddManager *Mgr;
  SeqOptions Opts;
  /// Per-attempt governor (null = ungoverned), installed around each
  /// query. Not owned.
  support::ResourceGovernor *Gov = nullptr;
  /// Owned mode only: lazily-built evaluator backing `Ev`.
  std::unique_ptr<Evaluator> OwnEv;
  /// The evaluator the walk reads from — `OwnEv` once built, or the
  /// owning session's evaluator in borrowed mode.
  Evaluator *Ev = nullptr;
  /// Owned mode only: the extractor's private fixpoint state + ring log.
  IncrementalFixpoint OwnFix;
  /// The fixpoint whose rings the walk reconstitutes — `OwnFix`, or the
  /// owning session's in borrowed mode. Its persistent state lets an
  /// interrupted solve resume from its last completed round (the rings
  /// recorded so far stay valid) instead of re-recording from scratch.
  IncrementalFixpoint *Fix;
  bool Borrowed = false;
  bool SolveDone = false; ///< The ring solve ran to its stopping point.
  ConfVars S;
  SeqEngine::ScratchVars X;
  const ProgramEncoder::FormalSets &F;
  std::vector<WitnessStep> Steps;

  // Persisted across queries, filled by ensureSolved.
  Bdd Solved;         ///< Final value of the summary relation.
  Bdd TargetDomains;  ///< Domain constraints of the target coordinates.
  WitnessResult Base; ///< Target-independent result fields.
};

} // namespace

bool WitnessExtractor::internalPred(const Bdd &Ring, unsigned Mod,
                                    uint64_t EntryL, uint64_t EntryG,
                                    const InstState &To, InstState &From) {
  // programInt constrained to land on `To`, renamed so its source state
  // lands on the summary tuple's current-state variables.
  Bdd Step = Ev->input(Engine->encoder().ProgramInt) & eq(F.IMod, Mod) &
             eq(F.IPcTo, To.Pc) & eq(F.ILTo, To.Locals) &
             eq(F.IGTo, To.Globals);
  Step = renamed(Step, {{F.IPcFrom, S.Pc}, {F.ILFrom, S.CL},
                        {F.IGFrom, S.CG}});
  Bdd Pred = Step & Ring & eq(S.Mod, Mod) & eq(S.ECL, EntryL) &
             eq(S.ECG, EntryG) & Ev->domainConstraint(S.Pc);
  if (Pred.isZero())
    return false;
  std::vector<int8_t> Path = Pred.onePath();
  From.Pc = unsigned(decode(Path, S.Pc));
  From.Locals = decode(Path, S.CL);
  From.Globals = decode(Path, S.CG);
  return true;
}

bool WitnessExtractor::skipPred(const Bdd &Ring, unsigned Mod,
                                uint64_t EntryL, uint64_t EntryG,
                                const InstState &To, InstState &From,
                                SkipInfo &Skip) {
  ProgramEncoder &Enc = Engine->encoder();

  // Caller summary tuple, renamed onto the t.* scratch variables.
  Bdd Caller = Ring & eq(S.Mod, Mod) & eq(S.ECL, EntryL) & eq(S.ECG, EntryG);
  Caller = renamed(Caller, {{S.Pc, X.TPc}, {S.CL, X.TCL}, {S.CG, X.TCG}});

  // Callee summary tuple (exit side), renamed onto the u.* scratch
  // variables; its entry globals are the caller's globals at the call.
  Bdd Callee = renamed(Ring, {{S.Mod, X.UMod},
                              {S.Pc, X.UPcX},
                              {S.CL, X.ULX},
                              {S.CG, X.UGX},
                              {S.ECL, X.UECL},
                              {S.ECG, X.TCG}});

  Bdd Across = renamed(Ev->input(Enc.SkipCall) & eq(F.SMod, Mod) &
                           eq(F.SPcRet, To.Pc),
                       {{F.SPcCall, X.TPc}});

  Bdd Call = renamed(Ev->input(Enc.ProgramCall) & eq(F.CModCaller, Mod),
                     {{F.CModCallee, X.UMod},
                      {F.CPc, X.TPc},
                      {F.CLCaller, X.TCL},
                      {F.CLEntry, X.UECL},
                      {F.CG, X.TCG}});

  Bdd Exit = renamed(Ev->input(Enc.ExitRel),
                     {{F.EMod, X.UMod}, {F.EPc, X.UPcX}});

  Bdd Ret = renamed(Ev->input(Enc.SetReturn) & eq(F.RMod, Mod) &
                        eq(F.RLRet, To.Locals) & eq(F.RGRet, To.Globals),
                    {{F.RModCallee, X.UMod},
                     {F.RPc, X.TPc},
                     {F.RPcExit, X.UPcX},
                     {F.RLCaller, X.TCL},
                     {F.RLExit, X.ULX},
                     {F.RGExit, X.UGX}});

  Bdd Joint = Caller & Across & Call & Exit & Ret & Callee &
              Ev->domainConstraint(X.TPc) & Ev->domainConstraint(X.UMod) &
              Ev->domainConstraint(X.UPcX);
  if (Joint.isZero())
    return false;

  std::vector<int8_t> Path = Joint.onePath();
  From.Pc = unsigned(decode(Path, X.TPc));
  From.Locals = decode(Path, X.TCL);
  From.Globals = decode(Path, X.TCG);
  Skip.CalleeMod = unsigned(decode(Path, X.UMod));
  Skip.CalleeEntryL = decode(Path, X.UECL);
  Skip.CalleeExit.Pc = unsigned(decode(Path, X.UPcX));
  Skip.CalleeExit.Locals = decode(Path, X.ULX);
  Skip.CalleeExit.Globals = decode(Path, X.UGX);
  return true;
}

bool WitnessExtractor::appendProcPath(unsigned Mod, uint64_t EntryL,
                                      uint64_t EntryG,
                                      const InstState &Target) {
  InstState Entry{0, EntryL, EntryG};

  // Walk backwards from the target; every hop lands in the previous ring,
  // so the loop is well-founded.
  struct RevStep {
    InstState From;     ///< State the forward step leaves.
    InstState State;    ///< State reached by the forward step.
    bool IsSkip = false;
    SkipInfo Skip;      ///< Valid when IsSkip.
  };
  std::vector<RevStep> Reversed;
  InstState Cur = Target;
  while (!(Cur == Entry)) {
    size_t Rank = rankOf(tuple(Mod, Cur, EntryL, EntryG));
    if (Rank == 0)
      return false; // Only seeds live in ring 0; Cur is not the entry.
    Bdd Prev = Fix->rings().ring(Rank - 1);
    RevStep Step;
    Step.State = Cur;
    if (internalPred(Prev, Mod, EntryL, EntryG, Cur, Step.From)) {
      Reversed.push_back(Step);
      Cur = Step.From;
      continue;
    }
    Step.IsSkip = true;
    if (!skipPred(Prev, Mod, EntryL, EntryG, Cur, Step.From, Step.Skip))
      return false;
    Reversed.push_back(Step);
    Cur = Step.From;
  }

  // Emit forwards, expanding call-skips into call + callee run + return.
  for (size_t I = Reversed.size(); I-- > 0;) {
    const RevStep &R = Reversed[I];
    if (!R.IsSkip) {
      Steps.push_back({WitnessStepKind::Internal, Mod, R.State.Pc,
                       R.State.Locals, R.State.Globals});
      continue;
    }
    // The callee starts at its entry with the caller's globals at the call
    // site (the state the skip step leaves).
    uint64_t CallG = R.From.Globals;
    Steps.push_back({WitnessStepKind::Call, R.Skip.CalleeMod, 0,
                     R.Skip.CalleeEntryL, CallG});
    if (!appendProcPath(R.Skip.CalleeMod, R.Skip.CalleeEntryL, CallG,
                        R.Skip.CalleeExit))
      return false;
    Steps.push_back({WitnessStepKind::Return, Mod, R.State.Pc,
                     R.State.Locals, R.State.Globals});
  }
  return true;
}

bool WitnessExtractor::appendEntryChain(unsigned Mod, uint64_t EntryL,
                                        uint64_t EntryG) {
  if (isInitSeed(Mod, EntryL)) {
    Steps.push_back(
        {WitnessStepKind::Init, Mod, 0, EntryL, EntryG});
    return true;
  }

  // Entry discovered through a caller: find the caller tuple in the ring
  // below the entry tuple's rank, reach it, then take the call.
  InstState Entry{0, EntryL, EntryG};
  size_t Rank = rankOf(tuple(Mod, Entry, EntryL, EntryG));
  if (Rank == 0)
    return false;
  Bdd Prev = Fix->rings().ring(Rank - 1);

  ProgramEncoder &Enc = Engine->encoder();
  Bdd CallerRing = Prev & eq(S.CG, EntryG);
  CallerRing = renamed(CallerRing, {{S.Mod, X.DMod},
                                    {S.Pc, X.DPc},
                                    {S.CL, X.DL},
                                    {S.ECL, X.DEL},
                                    {S.ECG, X.DEG}});
  Bdd Call = renamed(Ev->input(Enc.ProgramCall) & eq(F.CModCallee, Mod) &
                         eq(F.CLEntry, EntryL) & eq(F.CG, EntryG),
                     {{F.CModCaller, X.DMod},
                      {F.CPc, X.DPc},
                      {F.CLCaller, X.DL}});
  Bdd Joint = CallerRing & Call & Ev->domainConstraint(X.DMod) &
              Ev->domainConstraint(X.DPc);
  if (Joint.isZero())
    return false;

  std::vector<int8_t> Path = Joint.onePath();
  unsigned CallerMod = unsigned(decode(Path, X.DMod));
  InstState CallSite;
  CallSite.Pc = unsigned(decode(Path, X.DPc));
  CallSite.Locals = decode(Path, X.DL);
  CallSite.Globals = EntryG;
  uint64_t CallerEntryL = decode(Path, X.DEL);
  uint64_t CallerEntryG = decode(Path, X.DEG);

  if (!appendEntryChain(CallerMod, CallerEntryL, CallerEntryG))
    return false;
  if (!appendProcPath(CallerMod, CallerEntryL, CallerEntryG, CallSite))
    return false;
  Steps.push_back({WitnessStepKind::Call, Mod, 0, EntryL, EntryG});
  return true;
}

void WitnessExtractor::ensureSolved() {
  if (SolveDone)
    return;
  if (!Ev) {
    // One-time setup (owned mode only — borrowed mode arrives with the
    // owner's evaluator), ungoverned like the sibling sessions'
    // constructors: layout variable allocation cannot be rolled back, so
    // a mid-setup trip would leave no consistent state to resume from (a
    // redone makeLayout would shift the variable order and break the
    // bit-identical-resume contract). Limits apply from the first
    // fixpoint round on. `Ev` commits only after the inputs are fully
    // bound, so a genuine fault mid-bind leaves the next attempt able to
    // tell setup never finished instead of reading unbound inputs.
    support::ResourceGovernor *Installed = Mgr->governor();
    Mgr->setGovernor(nullptr);
    try {
      Layout L = Engine->factory().makeLayout(*Mgr);
      auto NewEv = std::make_unique<Evaluator>(
          Engine->system(), *Mgr, std::move(L), Opts.Strategy,
          Opts.FrontierCofactor);
      NewEv->setThreads(Opts.Threads);
      NewEv->setDisjunctParallelThreshold(Opts.DisjunctParallelThreshold);
      // The target relation is declared but read by no clause; the solve
      // (and therefore every ring) is target-independent, which is what
      // makes one solve serve every later target query.
      Engine->encoder().bind(*NewEv, ~0u, 0);
      OwnEv = std::move(NewEv);
      Ev = OwnEv.get();
    } catch (...) {
      Mgr->setGovernor(Installed);
      throw;
    }
    Mgr->setGovernor(Installed);
  }

  // The "onion rings" are the per-round values of the summary relation;
  // the semi-naive core produces the identical ring sequence (it computes
  // the same S_r per round, only cheaper), so reconstruction is oblivious
  // to the strategy. `complete` drives the persistent fixpoint to its
  // stopping point (saturation or the iteration cap), recording every
  // value-changing round — in borrowed mode this *finishes the owner's
  // solve in place*, so rounds an earlier plain query already computed
  // are never recomputed and later plain queries replay the rounds
  // recorded here: one solve per session, ever. A governor-interrupted
  // solve keeps its completed rounds and carries on from them on retry —
  // the recorded rings stay consistent either way.
  EvalResult R = Fix->complete(*Ev, Engine->mainRel(), Opts.MaxIterations);
  SolveDone = true;
  Solved = R.Value;
  TargetDomains = Ev->domainConstraint(S.Mod) & Ev->domainConstraint(S.Pc);
  Base.HitIterationLimit = R.HitIterationLimit;
  Base.Iterations = Fix->rings().size();
  Base.SummaryNodes = Solved.nodeCount();
  Base.Relations = Ev->stats();
  auto StatsIt = Base.Relations.find(
      Engine->system().relation(Engine->mainRel()).Name);
  if (StatsIt != Base.Relations.end())
    Base.DeltaRounds = StatsIt->second.DeltaRounds;
  // Counters cover the ring-recording solve (reconstruction only walks
  // the recorded rings). In borrowed mode they cover the shared manager
  // and evaluator — i.e. all rounds of the session's one solve, whichever
  // query drove them.
  Base.Bdd = Mgr->stats();
  Base.PeakLiveNodes = Base.Bdd.PeakNodes;
  Base.BddNodesCreated = Base.Bdd.NodesCreated;
  Base.BddCacheLookups = Base.Bdd.CacheLookups;
  Base.BddCacheHits = Base.Bdd.CacheHits;
}

WitnessResult WitnessExtractor::query(unsigned ProcId, unsigned Pc) {
  WitnessResult Result;
  if (Gov)
    Mgr->setGovernor(Gov);
  try {
    ensureSolved();
    CacheCold = false; // Extraction repopulates the computed cache.
    Result = Base;
    Steps.clear();

    Bdd Hits = Solved & eq(S.Mod, ProcId) & eq(S.Pc, Pc) & TargetDomains;
    if (!Hits.isZero()) {
      Result.Reachable = true;

      std::vector<int8_t> Path = Hits.onePath();
      InstState Target;
      Target.Pc = Pc;
      Target.Locals = decode(Path, S.CL);
      Target.Globals = decode(Path, S.CG);
      uint64_t EntryL = decode(Path, S.ECL);
      uint64_t EntryG = decode(Path, S.ECG);

      if (!appendEntryChain(ProcId, EntryL, EntryG) ||
          !appendProcPath(ProcId, EntryL, EntryG, Target)) {
        // Reconstruction failure indicates an engine bug; report reachable
        // with an empty trace rather than a bogus one.
        assert(false &&
               "witness reconstruction failed on a reachable target");
        Result.Steps.clear();
      } else {
        Result.Steps = std::move(Steps);
      }
    }
  } catch (const support::ResourceInterrupt &RI) {
    // Clean limit stop mid-solve or mid-extraction: completed rounds (and
    // their rings) persist, so a retry resumes where this attempt stopped.
    Result = WitnessResult();
    Result.Limit = RI.Limit;
    Result.Iterations = Fix->rings().size();
    Result.Bdd = Mgr->stats();
    Result.PeakLiveNodes = Result.Bdd.PeakNodes;
    Result.BddNodesCreated = Result.Bdd.NodesCreated;
    Result.BddCacheLookups = Result.Bdd.CacheLookups;
    Result.BddCacheHits = Result.Bdd.CacheHits;
  }
  Mgr->setGovernor(nullptr);
  if (!Borrowed)
    PeakLive = std::max(PeakLive, Mgr->reachableNodeCount());
  return Result;
}

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

WitnessResult reach::checkReachabilityWithWitness(const bp::ProgramCfg &Cfg,
                                                  unsigned ProcId,
                                                  unsigned Pc,
                                                  const SeqOptions &Opts) {
  WitnessExtractor Extractor(Cfg, Opts);
  return Extractor.query(ProcId, Pc);
}

struct WitnessSession::Impl {
  WitnessExtractor Extractor;
  Impl(const bp::ProgramCfg &Cfg, const SeqOptions &Opts)
      : Extractor(Cfg, Opts) {}
  Impl(SeqEngine &Engine, BddManager &Mgr, Evaluator &Ev,
       IncrementalFixpoint &Fix, const SeqOptions &Opts)
      : Extractor(Engine, Mgr, Ev, Fix, Opts) {}
};

WitnessSession::WitnessSession(const bp::ProgramCfg &Cfg,
                               const SeqOptions &Opts)
    : I(std::make_unique<Impl>(Cfg, Opts)) {}

WitnessSession::WitnessSession(SeqEngine &Engine, BddManager &Mgr,
                               fpc::Evaluator &Ev,
                               fpc::IncrementalFixpoint &Fix,
                               const SeqOptions &Opts)
    : I(std::make_unique<Impl>(Engine, Mgr, Ev, Fix, Opts)) {}

WitnessSession::~WitnessSession() = default;

WitnessResult WitnessSession::query(unsigned ProcId, unsigned Pc) {
  return I->Extractor.query(ProcId, Pc);
}

bool WitnessSession::solved() const { return I->Extractor.solved(); }

void WitnessSession::setGovernor(support::ResourceGovernor *G) {
  I->Extractor.setGovernor(G);
}

void WitnessSession::clearComputedCache() {
  I->Extractor.clearComputedCache();
}

size_t WitnessSession::liveNodes() const { return I->Extractor.liveNodes(); }

size_t WitnessSession::peakLiveNodes() const {
  return I->Extractor.peakLiveNodes();
}

size_t WitnessSession::memoryFootprint() const {
  return I->Extractor.memoryFootprint();
}

WitnessResult
reach::checkReachabilityOfLabelWithWitness(const bp::ProgramCfg &Cfg,
                                           const std::string &Label,
                                           const SeqOptions &Opts) {
  unsigned ProcId = 0, Pc = 0;
  if (!Cfg.findLabelPc(Label, ProcId, Pc)) {
    WitnessResult Result;
    Result.TargetFound = false;
    return Result;
  }
  return checkReachabilityWithWitness(Cfg, ProcId, Pc, Opts);
}

//===----------------------------------------------------------------------===//
// Explicit replay verification
//===----------------------------------------------------------------------===//

namespace {

/// Explicit replay of a witness against the statement semantics; an
/// implementation independent of the symbolic encoder, so it can catch
/// extractor and encoder bugs alike.
class Replayer {
public:
  Replayer(const bp::ProgramCfg &Cfg) : Cfg(Cfg) {}

  bool replay(const std::vector<WitnessStep> &Steps, unsigned TargetProcId,
              unsigned TargetPc, std::string *Error);

private:
  struct Frame {
    unsigned Proc = 0;
    const bp::CfgEdge *CallEdge = nullptr;
    uint64_t CallerLocals = 0;
  };

  bool fail(std::string *Error, size_t Index, const std::string &Message) {
    if (Error)
      *Error = "step " + std::to_string(Index) + ": " + Message;
    return false;
  }

  /// Does some resolution of `*` choices evaluate \p Exprs to the bits of
  /// \p Want (taken LSB-first)?
  static bool someChoiceYields(const std::vector<const bp::Expr *> &Exprs,
                               uint32_t Locals, uint32_t Globals,
                               const std::vector<bool> &Want) {
    unsigned NumChoices = interp::countNondet(Exprs);
    assert(NumChoices <= 20 && "witness replay choice explosion");
    for (uint32_t C = 0; C < (1u << NumChoices); ++C)
      if (interp::evalExprs(Exprs, Locals, Globals, C) == Want)
        return true;
    return false;
  }

  bool checkInternal(const WitnessStep &Cur, const WitnessStep &Next,
                     size_t Index, std::string *Error);
  bool checkCall(const WitnessStep &Cur, const WitnessStep &Next,
                 size_t Index, std::string *Error);
  bool checkReturn(const WitnessStep &Cur, const WitnessStep &Next,
                   size_t Index, std::string *Error);

  const bp::ProgramCfg &Cfg;
  std::vector<Frame> Stack;
};

} // namespace

bool Replayer::checkInternal(const WitnessStep &Cur, const WitnessStep &Next,
                             size_t Index, std::string *Error) {
  if (Next.ProcId != Cur.ProcId)
    return fail(Error, Index, "internal step changes procedure");
  const bp::ProcCfg &P = Cfg.Procs[Cur.ProcId];
  uint32_t L = uint32_t(Cur.Locals), G = uint32_t(Cur.Globals);
  for (unsigned EdgeIdx : P.OutEdges[Cur.Pc]) {
    const bp::CfgEdge &E = P.Edges[EdgeIdx];
    if (E.To != Next.Pc)
      continue;
    if (E.K == bp::CfgEdge::Kind::Assume) {
      if (Next.Locals != Cur.Locals || Next.Globals != Cur.Globals)
        continue;
      if (!E.Cond)
        return true;
      unsigned NumChoices = interp::countNondet(*E.Cond);
      for (uint32_t C = 0; C < (1u << NumChoices); ++C) {
        unsigned Idx = 0;
        if (interp::evalExpr(*E.Cond, L, G, C, Idx) != E.NegateCond)
          return true;
      }
      continue;
    }
    if (E.K != bp::CfgEdge::Kind::Assign)
      continue;
    // Try every choice vector; apply the simultaneous assignment.
    unsigned NumChoices = interp::countNondet(E.Rhs);
    for (uint32_t C = 0; C < (1u << NumChoices); ++C) {
      std::vector<bool> Values = interp::evalExprs(E.Rhs, L, G, C);
      uint32_t NL = L, NG = G;
      for (size_t I = 0; I < E.Lhs.size(); ++I) {
        if (E.Lhs[I].IsGlobal)
          NG = interp::setBit(NG, E.Lhs[I].Index, Values[I]);
        else
          NL = interp::setBit(NL, E.Lhs[I].Index, Values[I]);
      }
      if (NL == uint32_t(Next.Locals) && NG == uint32_t(Next.Globals))
        return true;
    }
  }
  return fail(Error, Index, "no internal edge matches the step");
}

bool Replayer::checkCall(const WitnessStep &Cur, const WitnessStep &Next,
                         size_t Index, std::string *Error) {
  if (Next.Pc != 0)
    return fail(Error, Index, "call step does not land on an entry");
  if (Next.Globals != Cur.Globals)
    return fail(Error, Index, "call step changes globals");
  const bp::ProcCfg &P = Cfg.Procs[Cur.ProcId];
  const bp::Proc &Callee = *Cfg.Prog->Procs[Next.ProcId];
  for (unsigned EdgeIdx : P.OutEdges[Cur.Pc]) {
    const bp::CfgEdge &E = P.Edges[EdgeIdx];
    if (E.K != bp::CfgEdge::Kind::Call || E.CalleeId != Next.ProcId)
      continue;
    // Parameters are the callee's first local slots.
    std::vector<bool> Want;
    for (size_t I = 0; I < Callee.Params.size(); ++I)
      Want.push_back((Next.Locals >> I) & 1);
    if (!someChoiceYields(E.Rhs, uint32_t(Cur.Locals), uint32_t(Cur.Globals),
                          Want))
      continue;
    Stack.push_back(Frame{Cur.ProcId, &E, Cur.Locals});
    return true;
  }
  return fail(Error, Index, "no call edge matches the step");
}

bool Replayer::checkReturn(const WitnessStep &Cur, const WitnessStep &Next,
                           size_t Index, std::string *Error) {
  if (Stack.empty())
    return fail(Error, Index, "return with an empty call stack");
  Frame F = Stack.back();
  Stack.pop_back();
  if (Next.ProcId != F.Proc)
    return fail(Error, Index, "return to the wrong procedure");
  if (Next.Pc != F.CallEdge->To)
    return fail(Error, Index, "return to the wrong program point");
  const bp::ProcCfg &CalleeCfg = Cfg.Procs[Cur.ProcId];
  const bp::CfgExit *Exit = CalleeCfg.exitAt(Cur.Pc);
  if (!Exit)
    return fail(Error, Index, "return from a non-exit point");

  unsigned NumChoices = interp::countNondet(Exit->ReturnExprs);
  for (uint32_t C = 0; C < (1u << NumChoices); ++C) {
    std::vector<bool> Values = interp::evalExprs(
        Exit->ReturnExprs, uint32_t(Cur.Locals), uint32_t(Cur.Globals), C);
    uint32_t NL = uint32_t(F.CallerLocals), NG = uint32_t(Cur.Globals);
    const std::vector<bp::VarRef> &Lhs = F.CallEdge->Lhs;
    if (Values.size() < Lhs.size())
      return fail(Error, Index, "fewer return values than assignees");
    for (size_t I = 0; I < Lhs.size(); ++I) {
      if (Lhs[I].IsGlobal)
        NG = interp::setBit(NG, Lhs[I].Index, Values[I]);
      else
        NL = interp::setBit(NL, Lhs[I].Index, Values[I]);
    }
    if (NL == uint32_t(Next.Locals) && NG == uint32_t(Next.Globals))
      return true;
  }
  return fail(Error, Index, "no return-value resolution matches the step");
}

bool Replayer::replay(const std::vector<WitnessStep> &Steps,
                      unsigned TargetProcId, unsigned TargetPc,
                      std::string *Error) {
  if (Steps.empty())
    return fail(Error, 0, "empty trace");
  if (Steps.front().Kind != WitnessStepKind::Init)
    return fail(Error, 0, "trace does not start with an init step");
  if (Steps.front().ProcId != Cfg.Prog->MainId || Steps.front().Pc != 0)
    return fail(Error, 0, "trace does not start at main's entry");

  for (size_t I = 1; I < Steps.size(); ++I) {
    const WitnessStep &Cur = Steps[I - 1];
    const WitnessStep &Next = Steps[I];
    bool Ok = false;
    switch (Next.Kind) {
    case WitnessStepKind::Init:
      return fail(Error, I, "init step in the middle of a trace");
    case WitnessStepKind::Internal:
      Ok = checkInternal(Cur, Next, I, Error);
      break;
    case WitnessStepKind::Call:
      Ok = checkCall(Cur, Next, I, Error);
      break;
    case WitnessStepKind::Return:
      Ok = checkReturn(Cur, Next, I, Error);
      break;
    }
    if (!Ok)
      return false;
  }

  const WitnessStep &Last = Steps.back();
  if (Last.ProcId != TargetProcId || Last.Pc != TargetPc)
    return fail(Error, Steps.size() - 1, "trace does not end at the target");
  return true;
}

bool reach::verifyWitness(const bp::ProgramCfg &Cfg,
                          const std::vector<WitnessStep> &Steps,
                          unsigned TargetProcId, unsigned TargetPc,
                          std::string *Error) {
  return Replayer(Cfg).replay(Steps, TargetProcId, TargetPc, Error);
}

//===----------------------------------------------------------------------===//
// Formatting
//===----------------------------------------------------------------------===//

std::string reach::formatWitness(const bp::ProgramCfg &Cfg,
                                 const std::vector<WitnessStep> &Steps) {
  auto Bits = [](uint64_t Value, unsigned Width) {
    std::string Out;
    for (unsigned I = 0; I < Width; ++I)
      Out += ((Value >> I) & 1) ? '1' : '0';
    return Out.empty() ? std::string("-") : Out;
  };

  std::string Out;
  unsigned Depth = 0;
  for (size_t I = 0; I < Steps.size(); ++I) {
    const WitnessStep &St = Steps[I];
    const bp::Proc &P = *Cfg.Prog->Procs[St.ProcId];
    const bp::ProcCfg &PC = Cfg.Procs[St.ProcId];

    const char *Kind = "";
    switch (St.Kind) {
    case WitnessStepKind::Init:
      Kind = "init  ";
      break;
    case WitnessStepKind::Internal:
      Kind = "step  ";
      break;
    case WitnessStepKind::Call:
      Kind = "call  ";
      ++Depth;
      break;
    case WitnessStepKind::Return:
      Kind = "return";
      assert(Depth > 0 && "unbalanced trace");
      --Depth;
      break;
    }

    std::string Label;
    for (const auto &[Name, Pc] : PC.LabelPcs)
      if (Pc == St.Pc)
        Label = " (" + Name + ")";

    Out += "#" + std::to_string(I) + " " + Kind + " " +
           std::string(2 * Depth, ' ') + P.Name + "@" +
           std::to_string(St.Pc) + Label +
           " L=" + Bits(St.Locals, P.numLocalSlots()) +
           " G=" + Bits(St.Globals, Cfg.Prog->numGlobals()) + "\n";
  }
  return Out;
}
