//===- device_driver.cpp - Driver-suite analysis walk-through -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section-6.1 scenario at example scale: generate a SLAM-driver-shaped
/// Boolean program (the kind predicate abstraction emits for device
/// drivers), check a reachable and an unreachable target through every
/// sequential engine in the registry (the comparison the paper's Figure 2
/// makes), then print the fixed-point formula Getafix would hand to the
/// solver.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "gen/Workloads.h"

#include <cstdio>

using namespace getafix;

int main() {
  for (bool Reachable : {true, false}) {
    gen::DriverParams Params;
    Params.NumProcs = 12;
    Params.NumGlobals = 5;
    Params.LocalsPerProc = 4;
    Params.StmtsPerProc = 10;
    Params.Reachable = Reachable;
    Params.Seed = 2026;
    gen::Workload W = gen::driverProgram(Params);

    std::printf("=== %s (target %s) ===\n", W.Name.c_str(),
                Reachable ? "reachable" : "unreachable");
    Query Q = Query::fromSource(W.Source).target(W.TargetLabel);
    for (const char *Engine : {"ef", "ef-split", "ef-opt", "moped"}) {
      SolverOptions Opts;
      Opts.Engine = Engine;
      SolveResult R = Solver::solve(Q, Opts);
      if (!R.ok()) {
        std::fprintf(stderr, "%s\n", R.Error.c_str());
        return 1;
      }
      std::printf("  %-20s %-3s  %llu iterations  %zu BDD nodes  %.3fs\n",
                  Engine, R.Reachable ? "YES" : "NO",
                  (unsigned long long)R.Iterations, R.SummaryNodes,
                  R.Seconds);
    }
    std::printf("\n");
  }

  // Show the paper's deliverable: the whole checker as one page of
  // formulae.
  gen::DriverParams Tiny;
  Tiny.NumProcs = 2;
  Tiny.StmtsPerProc = 3;
  gen::Workload W = gen::driverProgram(Tiny);
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  std::string Error;
  std::string Text = Solver::formulaText(
      Query::fromSource(W.Source).target(W.TargetLabel), Opts, &Error);
  if (Text.empty()) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }
  std::printf("=== the entry-forward algorithm, as handed to the solver "
              "===\n%s",
              Text.c_str());
  return 0;
}
