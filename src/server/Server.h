//===- Server.h - The getafixd query server ---------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived multi-program query server: a small pool of worker
/// threads accepts connections on a TCP (loopback) or Unix-domain socket
/// and serves the line-oriented JSON protocol of Protocol.h, answering
/// `solve` requests through a memory-budgeted `SessionPool` so repeated
/// queries against the same program reuse its solved summaries. One
/// worker owns a connection end-to-end (the protocol is strictly
/// request/response, so multiplexing buys nothing); concurrency across
/// programs comes from multiple workers, and concurrent clients of the
/// same program serialize on its pooled session.
///
/// Every solve request runs under a `ResourceGovernor`: its deadline and
/// node budget come from the request's `timeout_ms`/`node_budget` fields
/// clamped by the server-wide caps (`DefaultTimeoutMs`, `MaxTimeoutMs`,
/// `NodeBudgetCap`), and a watchdog thread cancels any request still in
/// flight past its deadline plus a grace period — an overdue lease is
/// stopped at the next governor probe instead of pinning the pool. A
/// limit stop is a structured error row (`hit_deadline` /
/// `hit_node_budget` / `cancelled`) and leaves the session valid at a
/// completed round boundary; a solve that escapes with a *real*
/// exception (e.g. an allocation failure) is contained per-request —
/// error response, poisoned-session eviction, daemon keeps serving.
///
/// Shutdown is graceful by design: `requestShutdown()` (or the `shutdown`
/// protocol verb, or a signal via `notifyShutdownFromSignal`) stops the
/// accept loop, lets every in-flight request finish and its response
/// flush, then closes connections. `wait()` blocks until the workers are
/// drained and joined.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SERVER_SERVER_H
#define GETAFIX_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/SessionPool.h"
#include "support/ResourceGovernor.h"
#include "support/Socket.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace getafix {
namespace server {

struct ServerOptions {
  std::string Host = "127.0.0.1";
  /// TCP port; 0 = kernel-assigned (read the result from `port()`).
  unsigned Port = 0;
  /// Non-empty: serve a Unix-domain socket at this path instead of TCP.
  std::string UnixPath;
  unsigned Workers = 4;
  /// Accept `source` (inline program text) requests. Off restricts
  /// clients to server-side program paths.
  bool AllowInlineSource = true;
  /// Deadline applied to solve requests that carry no `timeout_ms`;
  /// 0 = none.
  uint64_t DefaultTimeoutMs = 0;
  /// Upper bound on any request's effective deadline (client-supplied or
  /// defaulted); 0 = uncapped. When set, even a request with no timeout
  /// is clamped to this, so no request can pin a session forever.
  uint64_t MaxTimeoutMs = 0;
  /// BDD node budget applied to every solve request; a client's
  /// `node_budget` may only lower it. 0 = unlimited.
  uint64_t NodeBudgetCap = 0;
  PoolOptions Pool;
};

/// Monotonic request counters (snapshot via `stats()`).
struct ServerStats {
  uint64_t Connections = 0;
  uint64_t Requests = 0;      ///< Request lines parsed (well- or mal-formed).
  uint64_t SolveRequests = 0; ///< `solve` verbs served.
  uint64_t TargetsSolved = 0; ///< Verdict rows produced.
  uint64_t Errors = 0;        ///< `{"ok":false}` responses sent.
  uint64_t LimitStops = 0;    ///< Rows stopped by deadline/budget/cancel.
  uint64_t WatchdogCancels = 0; ///< Overdue requests cancelled by the watchdog.
  uint64_t ContainedFaults = 0; ///< Solves that escaped with a real exception.
  /// Dependency-condensation width / summary-relation count of the most
  /// recent fixed-point solve (0 until one runs). Under the default
  /// per-procedure summary split the width equals the program's call-graph
  /// SCC count; `--monolithic-summary` pins both back to the paper's
  /// single-relation shape.
  unsigned CondensationWidth = 0;
  unsigned SummaryRelations = 0;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listener and starts the workers. False + \p Error when the
  /// socket cannot be bound.
  bool start(std::string *Error);

  /// The bound TCP port (after `start`); 0 for Unix-domain servers.
  unsigned port() const { return BoundPort; }

  /// Initiates graceful shutdown: stop accepting, drain in-flight
  /// requests, close connections. Thread-safe, idempotent.
  void requestShutdown();

  /// Async-signal-safe shutdown trigger for SIGINT/SIGTERM handlers:
  /// writes one byte to a self-pipe; the waiter turns that into
  /// `requestShutdown()`.
  void notifyShutdownFromSignal();

  /// Blocks until shutdown is requested, then joins the workers. Call
  /// exactly once after a successful `start`.
  void wait();

  bool stopping() const { return Stopping.load(std::memory_order_acquire); }
  ServerStats stats() const;
  SessionPool &pool() { return Pool; }

private:
  void workerLoop();
  void serveConnection(support::Socket Conn);
  /// Dispatches one decoded request; the `shutdown` verb sets
  /// \p ShutdownRequested so the connection loop can respond first and
  /// initiate shutdown after.
  Json handle(const Request &R, bool &ShutdownRequested);
  Json handleSolve(const Request &R);
  Json handleStats();
  Json handleEvict(const Request &R);

  /// Registers an in-flight governor with the watchdog: if still
  /// registered past its deadline plus a grace period, the watchdog
  /// trips its cancel latch so the lease cannot pin the pool. Returns a
  /// handle for unregisterWatch; 0 when \p TimeoutMs is 0.
  uint64_t registerWatch(support::ResourceGovernor *Gov, uint64_t TimeoutMs);
  void unregisterWatch(uint64_t Id);
  void watchdogLoop();

  ServerOptions Opts;
  SessionPool Pool;
  support::Socket Listener;
  unsigned BoundPort = 0;
  std::vector<std::thread> Threads;
  std::thread WatchThread;
  std::atomic<bool> Stopping{false};
  int WakePipe[2] = {-1, -1}; ///< Self-pipe; [1] written by signal handler.

  /// One watched in-flight request: cancel its governor at CancelAt if
  /// the worker has not unregistered it by then.
  struct WatchEntry {
    support::ResourceGovernor *Gov = nullptr;
    std::chrono::steady_clock::time_point CancelAt;
  };
  std::mutex WatchMu; ///< Guards WatchMap/NextWatchId; never under StatsMu.
  std::condition_variable WatchCv;
  std::map<uint64_t, WatchEntry> WatchMap;
  uint64_t NextWatchId = 0;

  mutable std::mutex StatsMu;
  ServerStats Stats;
};

} // namespace server
} // namespace getafix

#endif // GETAFIX_SERVER_SERVER_H
