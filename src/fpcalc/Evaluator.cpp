//===- Evaluator.cpp - Symbolic fixed-point evaluation --------------------===//

#include "fpcalc/Evaluator.h"

#include <algorithm>

using namespace getafix;
using namespace getafix::fpc;

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

Layout Layout::sequential(const System &Sys, BddManager &Mgr) {
  Layout L;
  L.Bits.resize(Sys.numVars());
  for (VarId V = 0; V < Sys.numVars(); ++V) {
    unsigned NumBits = Sys.domain(Sys.var(V).Dom).numBits();
    for (unsigned B = 0; B < NumBits; ++B)
      L.Bits[V].push_back(Mgr.newVar());
  }
  return L;
}

Layout Layout::interleaved(const System &Sys, BddManager &Mgr,
                           const std::vector<std::vector<VarId>> &Groups) {
  Layout L;
  L.Bits.resize(Sys.numVars());
  for (const std::vector<VarId> &Group : Groups) {
    assert(!Group.empty() && "empty layout group");
    unsigned NumBits = Sys.domain(Sys.var(Group.front()).Dom).numBits();
#ifndef NDEBUG
    for (VarId V : Group) {
      assert(Sys.domain(Sys.var(V).Dom).numBits() == NumBits &&
             "layout group members must share a domain width");
      assert(L.Bits[V].empty() && "variable allocated twice");
    }
#endif
    // Bit-major: bit 0 of every copy, then bit 1 of every copy, ...
    for (unsigned B = 0; B < NumBits; ++B)
      for (VarId V : Group)
        L.Bits[V].push_back(Mgr.newVar());
  }
  for (VarId V = 0; V < Sys.numVars(); ++V) {
    if (!L.Bits[V].empty())
      continue;
    unsigned NumBits = Sys.domain(Sys.var(V).Dom).numBits();
    for (unsigned B = 0; B < NumBits; ++B)
      L.Bits[V].push_back(Mgr.newVar());
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Evaluator: setup and encoding helpers
//===----------------------------------------------------------------------===//

Evaluator::Evaluator(const System &Sys, BddManager &Mgr, Layout L,
                     EvalStrategy Strategy, CofactorMode Cofactor)
    : Sys(Sys), Mgr(Mgr), L(std::move(L)), Strategy(Strategy),
      Cofactor(Cofactor) {}

void Evaluator::bindInput(RelId Rel, Bdd Value) {
  assert(Sys.relation(Rel).isInput() && "binding a defined relation");
  assert(InFlight.empty() && "rebinding an input mid-evaluation");
  auto [It, Inserted] = Inputs.emplace(Rel, Value);
  if (!Inserted) {
    if (It->second == Value)
      return; // Same binding: every memo is still valid.
    It->second = std::move(Value);
    // Both memo layers may hold BDDs built from the old binding: the
    // static-subformula cache mentions inputs directly, and a Completed
    // defined relation was solved under them. Serving either after a
    // rebind would silently answer the old query.
    Completed.clear();
  }
  StaticCache.clear(); // Cached composites may mention this relation.
}

void Evaluator::invalidate() {
  Completed.clear();
  StaticCache.clear();
}

const DependencyGraph &Evaluator::dependencies() {
  if (!Graph)
    Graph = std::make_unique<DependencyGraph>(Sys);
  return *Graph;
}

const EquationPlan &Evaluator::plan(RelId Rel) {
  auto It = Plans.find(Rel);
  if (It == Plans.end())
    It = Plans.emplace(Rel, planEquation(Sys, dependencies(), Rel)).first;
  return It->second;
}

bool Evaluator::isStatic(const Formula &F) {
  auto It = StaticKind.find(&F);
  if (It != StaticKind.end())
    return It->second;
  bool Static = true;
  switch (F.Kind) {
  case FormulaKind::RelApp:
    Static = Sys.relation(F.Rel).isInput();
    break;
  case FormulaKind::Not:
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      Static = Static && isStatic(*Child);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    Static = isStatic(*F.Body);
    break;
  default:
    break;
  }
  StaticKind.emplace(&F, Static);
  return Static;
}

Bdd Evaluator::bitVar(VarId V, unsigned Bit) {
  const std::vector<unsigned> &Bits = L.bits(V);
  assert(Bit < Bits.size() && "bit index out of range");
  return Mgr.var(Bits[Bit]);
}

Bdd Evaluator::encodeEqConst(VarId V, uint64_t Value) {
  const std::vector<unsigned> &Bits = L.bits(V);
  assert(Value < Sys.domain(Sys.var(V).Dom).Size && "constant out of domain");
  Bdd Result = Mgr.one();
  for (unsigned B = 0; B < Bits.size(); ++B)
    Result &= ((Value >> B) & 1) ? Mgr.var(Bits[B]) : Mgr.nvar(Bits[B]);
  return Result;
}

Bdd Evaluator::encodeEqVar(VarId A, VarId B) {
  assert(Sys.var(A).Dom == Sys.var(B).Dom &&
         "equality between different domains");
  const std::vector<unsigned> &ABits = L.bits(A);
  const std::vector<unsigned> &BBits = L.bits(B);
  Bdd Result = Mgr.one();
  // Conjoin from the highest bit so the result grows bottom-up in the
  // (typically interleaved) order.
  for (size_t I = ABits.size(); I-- > 0;)
    Result &= Mgr.var(ABits[I]).iff(Mgr.var(BBits[I]));
  return Result;
}

Bdd Evaluator::domainConstraint(VarId V) {
  const Domain &D = Sys.domain(Sys.var(V).Dom);
  uint64_t Capacity = uint64_t(1) << L.bits(V).size();
  if (D.Size == Capacity)
    return Mgr.one();
  // V < Size: disjunction over valid values would be linear in Size; use a
  // bitwise comparison against Size-1 instead (V <= Size-1).
  uint64_t Max = D.Size - 1;
  const std::vector<unsigned> &Bits = L.bits(V);
  // lessEq built from msb down: acc(i) = (v_i < m_i) | (v_i == m_i) & acc.
  Bdd Acc = Mgr.one();
  for (size_t I = 0; I < Bits.size(); ++I) {
    bool MaxBit = (Max >> I) & 1;
    Bdd Vi = Mgr.var(Bits[I]);
    if (MaxBit)
      Acc = (!Vi) | Acc;
    else
      Acc = (!Vi) & Acc;
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Evaluator: core
//===----------------------------------------------------------------------===//

bool Evaluator::dependsOnInFlight(RelId Rel) const {
  for (const auto &[InFlightRel, Value] : InFlight) {
    (void)Value;
    if (Rel == InFlightRel || Sys.dependsOn(Rel, InFlightRel))
      return true;
  }
  return false;
}

Bdd Evaluator::relValue(RelId Rel) {
  auto FlightIt = InFlight.find(Rel);
  if (FlightIt != InFlight.end())
    return FlightIt->second;

  const Relation &R = Sys.relation(Rel);
  if (R.isInput()) {
    auto It = Inputs.find(Rel);
    assert(It != Inputs.end() && "input relation not bound");
    return It->second;
  }

  // Defined relation used from another definition: per the algorithmic
  // semantics it is re-solved under the current in-flight interpretations.
  // Relations that cannot see any in-flight relation are memoized.
  bool Volatile = dependsOnInFlight(Rel);
  if (!Volatile) {
    auto It = Completed.find(Rel);
    if (It != Completed.end())
      return It->second;
  }
  Bdd Value = evalFixpoint(Rel, nullptr, nullptr, nullptr);
  if (!Volatile)
    Completed[Rel] = Value;
  return Value;
}

Bdd Evaluator::applyArgs(RelId Rel, const std::vector<Term> &Args,
                         Bdd Value) {
  const Relation &R = Sys.relation(Rel);
  assert(Args.size() == R.Formals.size() && "arity mismatch");

  // Constants first: cofactor the formal's bits.
  for (size_t I = 0; I < Args.size(); ++I) {
    if (!Args[I].IsConst)
      continue;
    const std::vector<unsigned> &Bits = L.bits(R.Formals[I]);
    for (unsigned B = 0; B < Bits.size(); ++B)
      Value = Value.restrict(Bits[B], (Args[I].Value >> B) & 1);
  }

  // Then rename formal bits to argument bits (a simultaneous substitution;
  // repeated argument variables like R(u, u) are handled by the rename op).
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I].IsConst)
      continue;
    const std::vector<unsigned> &From = L.bits(R.Formals[I]);
    const std::vector<unsigned> &To = L.bits(Args[I].Variable);
    assert(From.size() == To.size() && "domain width mismatch");
    for (size_t B = 0; B < From.size(); ++B)
      if (From[B] != To[B])
        Pairs.emplace_back(From[B], To[B]);
  }
  if (Pairs.empty())
    return Value;
  return Value.permute(Mgr.makePermutation(Pairs));
}

BddCube Evaluator::cubeFor(const std::vector<VarId> &Bound) {
  std::vector<unsigned> Vars;
  for (VarId V : Bound)
    for (unsigned Bit : L.bits(V))
      Vars.push_back(Bit);
  return Mgr.makeCube(Vars);
}

Bdd Evaluator::evalFormula(const Formula &F) {
  // Composite input-only subtrees are constant; compute them once. Leaves
  // are cheap enough to rebuild (and hit the unique table anyway).
  bool Composite = F.Kind == FormulaKind::Not || F.Kind == FormulaKind::And ||
                   F.Kind == FormulaKind::Or ||
                   F.Kind == FormulaKind::Exists ||
                   F.Kind == FormulaKind::Forall;
  if (Composite && isStatic(F)) {
    auto It = StaticCache.find(&F);
    if (It != StaticCache.end())
      return It->second;
    Bdd Value = evalFormulaUncached(F);
    StaticCache.emplace(&F, Value);
    return Value;
  }
  // Inside a delta round, any subformula off the current occurrence path
  // evaluates under the same environment in every pass (the in-flight S
  // is fixed for the round), so its value is shared across the round's
  // passes. This also holds for applications of nested defined relations:
  // the round-level memo re-solves them once per round, which is the
  // naive scheme's per-round cadence.
  if (InDeltaRound && !Composite && F.Kind != FormulaKind::RelApp)
    return evalFormulaUncached(F);
  if (InDeltaRound && !onDeltaPath(&F)) {
    auto It = RoundCache.find(&F);
    if (It != RoundCache.end())
      return It->second;
    Bdd Value = evalFormulaUncached(F);
    RoundCache.emplace(&F, Value);
    return Value;
  }
  return evalFormulaUncached(F);
}

Bdd Evaluator::evalFormulaUncached(const Formula &F) {
  switch (F.Kind) {
  case FormulaKind::Const:
    return F.ConstValue ? Mgr.one() : Mgr.zero();
  case FormulaKind::RelApp:
    // Semi-naive delta substitution: this one occurrence reads the
    // frontier instead of the full in-flight value.
    if (&F == DeltaApp)
      return applyArgs(F.Rel, F.Args, DeltaValue);
    return applyArgs(F.Rel, F.Args, relValue(F.Rel));
  case FormulaKind::EqVar:
    return encodeEqVar(F.Lhs, F.Rhs);
  case FormulaKind::EqConst:
    return encodeEqConst(F.Lhs, F.Value);
  case FormulaKind::Not:
    return !evalFormula(*F.Children[0]);
  case FormulaKind::And: {
    // Left-to-right: formula authors control conjunction scheduling, which
    // is the point of the Section-4.2 clause-splitting rewrite.
    Bdd Result = evalFormula(*F.Children[0]);
    for (size_t I = 1; I < F.Children.size(); ++I) {
      if (Result.isZero())
        return Result;
      Result &= evalFormula(*F.Children[I]);
    }
    return Result;
  }
  case FormulaKind::Or: {
    // Frontier pass through an on-path Or: only the branch leading to the
    // delta occurrence is live; sibling branches carry either constants
    // (accumulated on round 1) or other occurrences (their own passes).
    if (onDeltaPath(&F)) {
      for (const Formula *Child : F.Children)
        if (onDeltaPath(Child))
          return evalFormula(*Child);
      assert(false && "delta path skips this Or's children");
    }
    Bdd Result = evalFormula(*F.Children[0]);
    for (size_t I = 1; I < F.Children.size(); ++I) {
      if (Result.isOne())
        return Result;
      Result |= evalFormula(*F.Children[I]);
    }
    return Result;
  }
  case FormulaKind::Exists: {
    BddCube Cube = cubeFor(F.Bound);
    const Formula &Body = *F.Body;
    if (Body.Kind == FormulaKind::And && Body.Children.size() >= 2) {
      // Relational-product scheduling: conjoin all but the last child,
      // then fuse the last conjunction with the quantification.
      Bdd Acc = evalFormula(*Body.Children[0]);
      for (size_t I = 1; I + 1 < Body.Children.size(); ++I) {
        if (Acc.isZero())
          return Acc;
        Acc &= evalFormula(*Body.Children[I]);
      }
      if (Acc.isZero())
        return Acc;
      const Formula *LastChild = Body.Children.back();
      Bdd Last = evalFormula(*LastChild);
      // Frontier-aware relational product (Coudert–Madre): in a narrow
      // delta round the conjunct chain holding the Δ occurrence denotes a
      // small care set, so generalized-cofactor the *other* operand —
      // typically the transition/body relation, whose traversal dominates
      // the product — against it first. `f.constrain(c) & c == f & c`
      // makes the product's result bit-identical; only the operand the
      // recursion walks shrinks. Off-path products see the full S on both
      // sides (no narrow care set) and are already deduped per round by
      // the RoundCache, so the extra constrain traversal is not paid
      // there.
      if (Cofactor != CofactorMode::Off && InDeltaRound && onDeltaPath(&F) &&
          !Acc.isConst() && !Last.isConst()) {
        Bdd &Operand = onDeltaPath(LastChild) ? Acc : Last;
        const Bdd &Care = onDeltaPath(LastChild) ? Last : Acc;
        ++CfStats.Applications;
        CfStats.SupportBefore += Operand.support().size();
        Operand = Cofactor == CofactorMode::Constrain
                      ? Operand.constrain(Care)
                      : Operand.restrict(Care);
        CfStats.SupportAfter += Operand.support().size();
      }
      return Acc.andExists(Last, Cube);
    }
    return evalFormula(Body).exists(Cube);
  }
  case FormulaKind::Forall:
    return evalFormula(*F.Body).forall(cubeFor(F.Bound));
  }
  assert(false && "unhandled formula kind");
  return Mgr.zero();
}

void Evaluator::scheduleDependencies(RelId Rel) {
  // Pre-solve the lower SCCs in topological (callees-first) order. Same-SCC
  // members are excluded: they see Rel in flight and must be re-solved per
  // round (the paper's algorithmic semantics). Relations that can see an
  // *outer* in-flight relation stay lazy for the same reason.
  for (RelId T : dependencies().scheduleFor(Rel)) {
    if (Completed.count(T) || dependsOnInFlight(T))
      continue;
    Completed[T] = evalFixpoint(T, nullptr, nullptr, nullptr);
  }
}

Bdd Evaluator::evalFixpoint(RelId Rel, const EvalOptions *Opts,
                            bool *HitLimit, bool *Stopped) {
  const Relation &R = Sys.relation(Rel);
  assert(R.Def && "evaluating an undefined relation");
  assert(!InFlight.count(Rel) && "relation already being solved");

  RelStats &RS = Stats[R.Name];
  ++RS.Evaluations;

  // A nested re-solve (a volatile relation applied inside a caller's
  // round) iterates its own relation: the caller's delta context — the
  // occurrence substitution and the per-round memo — is neither valid
  // here nor allowed to be clobbered by this solve's own delta rounds.
  const Formula *SavedApp = DeltaApp;
  const std::vector<const Formula *> *SavedPath = DeltaPath;
  Bdd SavedValue = DeltaValue;
  bool SavedInRound = InDeltaRound;
  std::map<const Formula *, Bdd> SavedRoundCache;
  SavedRoundCache.swap(RoundCache);
  DeltaApp = nullptr;
  DeltaPath = nullptr;
  DeltaValue = Bdd();
  InDeltaRound = false;

  FixpointState St;
  if (Strategy == EvalStrategy::SemiNaive) {
    scheduleDependencies(Rel);
    // Non-monotone or nu equations run the exact naive scheme; monotone mu
    // equations take the delta-propagating core (which degrades gracefully
    // to per-round full evaluation for opaque disjuncts).
    if (plan(Rel).SemiNaive)
      runFixpointSemiNaive(Rel, St, Opts, HitLimit, Stopped, RS);
    else
      runFixpointNaive(Rel, St, Opts, HitLimit, Stopped, RS);
  } else {
    runFixpointNaive(Rel, St, Opts, HitLimit, Stopped, RS);
  }
  RS.FinalNodes = St.Value.nodeCount();

  DeltaApp = SavedApp;
  DeltaPath = SavedPath;
  DeltaValue = std::move(SavedValue);
  InDeltaRound = SavedInRound;
  RoundCache.swap(SavedRoundCache);
  return St.Value;
}

void Evaluator::runFixpointNaive(RelId Rel, FixpointState &St,
                                 const EvalOptions *Opts, bool *HitLimit,
                                 bool *Stopped, RelStats &RS) {
  const Relation &R = Sys.relation(Rel);
  if (St.Saturated)
    return;
  Bdd S;
  if (St.Rounds == 0) {
    // Least fixed-points start from the empty relation; greatest
    // fixed-points from the top element, which is the set of
    // *domain-valid* tuples (bits encoding values >= the domain size are
    // excluded so they can never leak into a result).
    S = Mgr.zero();
    if (R.IsNu) {
      S = Mgr.one();
      for (VarId Formal : R.Formals)
        S &= domainConstraint(Formal);
    }
  } else {
    S = St.Value;
  }
  uint64_t Iter = St.Rounds;
  while (true) {
    InFlight[Rel] = S;
    Bdd Next = evalFormula(*R.Def);
    InFlight.erase(Rel);
    ++Iter;
    ++RS.Iterations;
    if (Next == S) {
      St.Saturated = true;
      break;
    }
    S = std::move(Next);
    if (Opts && Opts->Rings)
      Opts->Rings->push_back(S);
    if (Opts && Opts->EarlyStop && !(S & *Opts->EarlyStop).isZero()) {
      if (Stopped)
        *Stopped = true;
      break;
    }
    if (Opts && Opts->MaxIterations != 0 && Iter >= Opts->MaxIterations) {
      if (HitLimit)
        *HitLimit = true;
      break;
    }
  }
  St.Value = std::move(S);
  St.Rounds = Iter;
}

/// The delta-propagating core. Per round r >= 2 it computes
///
///   S_r = S_{r-1}  ∪  ⋃_{opaque D} D(S_{r-1})
///                  ∪  ⋃_{distributive D} ⋃_{occ i} D[occ_i ↦ Δ_{r-1}]
///
/// with Δ_{r-1} ⊇ S_{r-1} \ S_{r-2} and the other occurrences of the
/// iterated relation reading the full S_{r-1}. For a monotone mu equation
/// this telescopes to exactly the naive sequence S_r = Body(S_{r-1}):
/// distributivity of And/Or/Exists over union gives
/// D(S_{r-2} ∪ Δ) = D(S_{r-2}) ∪ ⋃_i D[occ_i ↦ Δ], and monotonicity makes
/// the chain increasing so the accumulated union adds nothing extra.
/// The frontier need not be the *exact* difference: any Δ with
/// S_{r-1} \ S_{r-2} ⊆ Δ ⊆ S_{r-1} yields the same union (the surplus is
/// tuples already in S_{r-1}, whose images are already in S_r). That
/// freedom is used twice: `Bdd::frontier` don't-care-minimizes the narrow
/// frontier, and rounds whose working set still fits the computed cache
/// take Δ = S_{r-1} wholesale (see below).
/// Hence rounds, early stops, iteration limits, and witness rings are all
/// bit-identical to the naive evaluator — only the work per round shrinks.
void Evaluator::runFixpointSemiNaive(RelId Rel, FixpointState &St,
                                     const EvalOptions *Opts, bool *HitLimit,
                                     bool *Stopped, RelStats &RS) {
  const Relation &R = Sys.relation(Rel);
  const EquationPlan &P = plan(Rel);
  assert(P.SemiNaive && "delta core on a naive-only equation");
  assert(!R.IsNu && "delta core iterates from the empty relation");
  if (St.Saturated)
    return;

  // Frontier-width policy. A BDD evaluator is in a different cost regime
  // than an explicit Datalog engine: as long as one round's
  // subcomputations fit the computed cache, evaluating a clause against
  // the full (structurally stable) S is already incremental — the cache
  // cuts every traversal off at the unchanged substructure — while a
  // narrow frontier BDD shares nothing between rounds and makes every
  // image start cold, *creating* distinct nodes the wide join never
  // builds. The narrow frontier starts to win exactly when the per-round
  // working set outgrows the cache and the warm-path assumption
  // collapses. Rounds allocating more than this many fresh nodes switch
  // the next round's frontier to the minimized difference.
  //
  // The crossover was re-measured when the computed cache became 4-way
  // set-associative with promotion-based aging: direct-mapped, conflict
  // evictions cost a round its working set well before the cache was
  // actually full (the old `cacheSlots()/4` margin priced that in); with
  // hot entries protected by promotion, nearly the whole capacity stays
  // useful and the wide regime extends to half the slot count. Measured
  // on bluetooth 2a2s/k4 (the heavy Figure-3 row): /2 gives the lowest
  // peak live nodes and equal-best wall-clock; the terminator negatives
  // are insensitive between /4 and /2.
  const uint64_t NarrowAt = Mgr.cacheSlots() / 2;
  // In narrow rounds, delta-substitute only linear disjuncts: a disjunct
  // with k occurrences needs k passes whose cross terms read the full S,
  // so its delta decomposition does strictly more conjunction work than
  // one whole evaluation under a warm cache. Re-measured with the
  // constrain-based product in the hope the cofactored cross terms would
  // tip bilinear disjuncts (split return clauses) into profitability:
  // they do not — bluetooth 2a2s/k4 still loses ~70% wall-clock and ~25%
  // extra node allocations at k = 2 (see ROADMAP), so the bound stays 1.
  const size_t MaxDeltaOccurrences = 1;

  Bdd S = Mgr.zero();
  Bdd Delta;
  uint64_t Iter = St.Rounds;
  if (Iter != 0) {
    S = St.Value;
    Delta = St.Delta;
  }
  while (true) {
    InFlight[Rel] = S;
    uint64_t RoundStart = Mgr.stats().NodesCreated;
    Bdd Next;
    if (Iter == 0) {
      // Round 1 evaluates the full body once — this is both the naive
      // round 1 and the seeding of the frontier (everything is new).
      Next = evalFormula(*R.Def);
    } else {
      bool Wide = Delta == S;
      // The per-round memo only pays off when narrow passes re-walk the
      // disjuncts; a wide round touches each disjunct exactly once.
      InDeltaRound = !Wide;
      RoundCache.clear();
      Next = S;
      for (const DisjunctPlan &D : P.Disjuncts) {
        switch (D.Kind) {
        case DisjunctKind::NonRecursive:
          // Fixed for the whole solve; already folded in by round 1.
          break;
        case DisjunctKind::Opaque:
          Next |= evalFormula(*D.Node);
          break;
        case DisjunctKind::Distributive:
          if (Wide || D.Occurrences.size() > MaxDeltaOccurrences) {
            // Δ == S makes every occurrence pass evaluate the identical
            // D(S), so one evaluation covers them all; and a nonlinear
            // disjunct's cross-term passes (every other occurrence at the
            // full S) each cost a full-size conjunction of their own, so
            // joining it whole is the cheaper exact choice too.
            Next |= evalFormula(*D.Node);
            break;
          }
          for (const SelfOccurrence &Occ : D.Occurrences) {
            DeltaApp = Occ.App;
            DeltaPath = &Occ.Path;
            DeltaValue = Delta;
            Next |= evalFormula(*D.Node);
          }
          DeltaApp = nullptr;
          DeltaPath = nullptr;
          DeltaValue = Bdd();
          break;
        }
      }
      RoundCache.clear();
      InDeltaRound = false;
      ++RS.DeltaRounds;
    }
    InFlight.erase(Rel);
    ++Iter;
    ++RS.Iterations;
    if (Next == S) {
      St.Saturated = true;
      break;
    }
    bool Narrow = Mgr.stats().NodesCreated - RoundStart >= NarrowAt;
    Delta = Narrow ? Next.frontier(S) : Next;
    S = std::move(Next);
    if (Opts && Opts->Rings)
      Opts->Rings->push_back(S);
    if (Opts && Opts->EarlyStop && !(S & *Opts->EarlyStop).isZero()) {
      if (Stopped)
        *Stopped = true;
      break;
    }
    if (Opts && Opts->MaxIterations != 0 && Iter >= Opts->MaxIterations) {
      if (HitLimit)
        *HitLimit = true;
      break;
    }
  }
  St.Value = std::move(S);
  St.Delta = std::move(Delta);
  St.Rounds = Iter;
}

EvalResult Evaluator::evaluate(RelId Rel, const EvalOptions &Opts) {
  EvalResult Result;
  // A previously completed solve answers a repeat top-level query
  // outright — this is what lets one evaluator serve many queries
  // (fpsolve --eval R,S): a later query over an already-solved relation
  // costs nothing. Only when the caller asks for per-round observables
  // (rings, early stop, an iteration cap) must the iteration re-run.
  if (InFlight.empty() && !Opts.EarlyStop && !Opts.Rings &&
      Opts.MaxIterations == 0) {
    auto It = Completed.find(Rel);
    if (It != Completed.end()) {
      Result.Value = It->second;
      return Result;
    }
  }
  Result.Value =
      evalFixpoint(Rel, &Opts, &Result.HitIterationLimit,
                   &Result.EarlyStopped);
  // A complete top-level solve is a valid memo for later nested uses.
  if (InFlight.empty() && !Result.HitIterationLimit && !Result.EarlyStopped)
    Completed[Rel] = Result.Value;
  return Result;
}

bool IncrementalFixpoint::tryReplay(const Bdd &Target, bool EarlyStop,
                                    uint64_t MaxIterations,
                                    Answer &A) const {
  // The per-round checks in a fresh solve run in this order: a changed
  // round first tests the early-stop target, then the iteration cap. The
  // saturation round (no change) breaks before either check. Replaying the
  // identical checks against the recorded ring values reproduces the fresh
  // stop round and verdict exactly.
  for (size_t Ri = 0; Ri < Rings.size(); ++Ri) {
    uint64_t Round = Ri + 1;
    if (EarlyStop && !(Rings[Ri] & Target).isZero()) {
      A.Iterations = Round;
      A.Reachable = true;
      A.EarlyStopped = true;
      A.Value = Rings[Ri];
      A.RoundsReused = Round;
      return true;
    }
    if (MaxIterations != 0 && Round >= MaxIterations) {
      A.Iterations = Round;
      A.Reachable = !(Rings[Ri] & Target).isZero();
      A.HitIterationLimit = true;
      A.Value = Rings[Ri];
      A.RoundsReused = Round;
      return true;
    }
  }
  if (St.Saturated) {
    A.Iterations = St.Rounds;
    A.Reachable = !(St.Value & Target).isZero();
    A.Value = St.Value;
    A.RoundsReused = St.Rounds;
    return true;
  }
  return false;
}

bool IncrementalFixpoint::answersFromState(const Bdd &Target, bool EarlyStop,
                                           uint64_t MaxIterations) const {
  Answer A;
  return tryReplay(Target, EarlyStop, MaxIterations, A);
}

IncrementalFixpoint::Answer
IncrementalFixpoint::query(Evaluator &Ev, RelId Rel, const Bdd &Target,
                           bool EarlyStop, uint64_t MaxIterations) {
  Answer A;
  if (tryReplay(Target, EarlyStop, MaxIterations, A))
    return A;

  uint64_t Before = St.Rounds;
  EvalOptions Opts;
  Opts.MaxIterations = MaxIterations;
  if (EarlyStop)
    Opts.EarlyStop = &Target;
  Opts.Rings = &Rings;
  EvalResult R = Ev.resume(Rel, St, Opts);
  A.Iterations = St.Rounds;
  A.Reachable = !(R.Value & Target).isZero();
  A.EarlyStopped = R.EarlyStopped;
  A.HitIterationLimit = R.HitIterationLimit;
  A.Value = R.Value;
  A.RoundsReused = Before;
  A.RoundsComputed = St.Rounds - Before;
  return A;
}

EvalResult Evaluator::resume(RelId Rel, FixpointState &State,
                             const EvalOptions &Opts) {
  const Relation &R = Sys.relation(Rel);
  assert(R.Def && "resuming an undefined relation");
  assert(InFlight.empty() &&
         "resume is a top-level entry; no nested evaluation may be live");

  RelStats &RS = Stats[R.Name];
  if (!State.Saturated)
    ++RS.Evaluations;

  EvalResult Result;
  if (Strategy == EvalStrategy::SemiNaive) {
    scheduleDependencies(Rel);
    if (plan(Rel).SemiNaive)
      runFixpointSemiNaive(Rel, State, &Opts, &Result.HitIterationLimit,
                           &Result.EarlyStopped, RS);
    else
      runFixpointNaive(Rel, State, &Opts, &Result.HitIterationLimit,
                       &Result.EarlyStopped, RS);
  } else {
    runFixpointNaive(Rel, State, &Opts, &Result.HitIterationLimit,
                     &Result.EarlyStopped, RS);
  }
  RS.FinalNodes = State.Value.nodeCount();
  Result.Value = State.Value;
  // A saturated state is a complete solve: a valid memo for nested uses by
  // other relations evaluated against this same session state.
  if (State.Saturated)
    Completed[Rel] = State.Value;
  return Result;
}
