//===- ResourceGovernor.h - Deadlines, budgets, cancellation ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative resource governance for fixpoint solves. A solve is
/// worst-case exponential, so every serving layer needs a way to bound
/// it: a wall-clock deadline, a budget on BDD node allocations, and an
/// external cancel flag. The `ResourceGovernor` carries all three and is
/// *polled*, never preemptive:
///
///   - `BddManager::makeNode` probes it every `probePeriod()` calls
///     (a single compare-with-zero when no governor is installed, so the
///     hot path stays within noise — see docs/EVALUATION.md).
///   - The evaluator's round loops check it at every round boundary, so
///     a trip between probes still stops at a completed round.
///
/// A trip *latches*: once any limit fires, every subsequent check throws
/// `ResourceInterrupt`, which is how a cancelled parallel fan-out drains —
/// the shared governor trips the remaining workers at their next probes.
/// The node counter is shared too (main and per-worker managers charge the
/// same governor), so the budget bounds the whole solve, not one manager.
///
/// Determinism contract: an interrupt may land mid-round, but every layer
/// that persists state (the evaluator's `FixpointState`, session rings)
/// commits only *completed* rounds — the aborted round's partial BDDs are
/// unreferenced garbage. A retry with a larger budget therefore re-runs
/// the aborted round from identical inputs and the whole solve chain stays
/// bit-identical to an uninterrupted solve. Governors are one-shot: build
/// a fresh one per solve attempt.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_RESOURCEGOVERNOR_H
#define GETAFIX_SUPPORT_RESOURCEGOVERNOR_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace getafix {
namespace support {

/// Which limit stopped a solve. `None` means the solve ran to completion
/// (or to its iteration cap, which is a different, non-governor mechanism).
enum class ResourceLimit { None, Deadline, NodeBudget, Cancelled };

inline const char *resourceLimitName(ResourceLimit L) {
  switch (L) {
  case ResourceLimit::None:
    return "none";
  case ResourceLimit::Deadline:
    return "deadline";
  case ResourceLimit::NodeBudget:
    return "node-budget";
  case ResourceLimit::Cancelled:
    return "cancelled";
  }
  return "?";
}

/// Thrown by `ResourceGovernor::check` when a limit trips. Deliberately
/// not derived from `std::exception`: containment layers that turn any
/// `std::exception` into a poisoned-session error must never conflate a
/// clean, resumable limit stop with a real fault.
struct ResourceInterrupt {
  ResourceLimit Limit = ResourceLimit::None;
};

class ResourceGovernor {
public:
  ResourceGovernor() = default;
  ResourceGovernor(const ResourceGovernor &) = delete;
  ResourceGovernor &operator=(const ResourceGovernor &) = delete;

  /// Arms a wall-clock deadline \p Ms milliseconds from now. Non-positive
  /// values are ignored (no deadline).
  void setDeadlineIn(int64_t Ms) {
    if (Ms <= 0)
      return;
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(Ms);
    HasDeadline = true;
  }

  /// Arms a budget on total BDD node allocations charged to this
  /// governor (across every manager it is installed on). 0 = unlimited.
  void setNodeBudget(uint64_t Budget) { NodeBudget = Budget; }

  /// Watches an external cancel flag (owned by the caller, must outlive
  /// the governor). Checked at every probe.
  void setCancelFlag(const std::atomic<bool> *Flag) { CancelFlag = Flag; }

  /// Requests cancellation directly (the server watchdog's lever).
  /// Thread-safe; latches at the next probe of any governed manager.
  void cancel() { CancelRequested.store(true, std::memory_order_relaxed); }

  /// How many `makeNode` calls a manager batches between probes. The
  /// period trades probe cost against trip latency; at 4096 the probe is
  /// unmeasurable on the bluetooth hot path while a trip is still
  /// observed within microseconds.
  unsigned probePeriod() const { return Period; }
  void setProbePeriod(unsigned N) { Period = N ? N : 1; }

  /// The latched verdict; `None` while running.
  ResourceLimit tripped() const {
    return static_cast<ResourceLimit>(Trip.load(std::memory_order_acquire));
  }

  /// Total node allocations charged so far.
  uint64_t nodesCharged() const {
    return Nodes.load(std::memory_order_relaxed);
  }

  /// The armed deadline (only meaningful when `hasDeadline()`).
  bool hasDeadline() const { return HasDeadline; }
  std::chrono::steady_clock::time_point deadline() const { return Deadline; }

  /// Charges \p NewNodes allocations, evaluates every armed limit, and
  /// throws `ResourceInterrupt` if any has fired (now or earlier — trips
  /// latch). Cancel outranks deadline outranks budget when several fire
  /// in the same probe.
  void check(uint64_t NewNodes = 0) {
    uint64_t Total =
        Nodes.fetch_add(NewNodes, std::memory_order_relaxed) + NewNodes;
    int Latched = Trip.load(std::memory_order_acquire);
    if (Latched != 0)
      throw ResourceInterrupt{static_cast<ResourceLimit>(Latched)};
    ResourceLimit Hit = ResourceLimit::None;
    if (CancelRequested.load(std::memory_order_relaxed) ||
        (CancelFlag && CancelFlag->load(std::memory_order_relaxed)))
      Hit = ResourceLimit::Cancelled;
    else if (HasDeadline && std::chrono::steady_clock::now() >= Deadline)
      Hit = ResourceLimit::Deadline;
    else if (NodeBudget != 0 && Total > NodeBudget)
      Hit = ResourceLimit::NodeBudget;
    if (Hit == ResourceLimit::None)
      return;
    // First trip wins the latch; a racing worker keeps whichever verdict
    // landed first so every layer reports one consistent limit.
    int Expected = 0;
    Trip.compare_exchange_strong(Expected, static_cast<int>(Hit),
                                 std::memory_order_acq_rel);
    throw ResourceInterrupt{tripped()};
  }

private:
  std::atomic<uint64_t> Nodes{0};
  std::atomic<int> Trip{0}; ///< A latched ResourceLimit (0 = running).
  std::atomic<bool> CancelRequested{false};
  const std::atomic<bool> *CancelFlag = nullptr;
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;
  uint64_t NodeBudget = 0;
  unsigned Period = 4096;
};

} // namespace support
} // namespace getafix

#endif // GETAFIX_SUPPORT_RESOURCEGOVERNOR_H
