//===- Strings.h - Small string helpers -------------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String utilities shared by the command-line tools.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_STRINGS_H
#define GETAFIX_SUPPORT_STRINGS_H

#include <string>
#include <vector>

namespace getafix {

/// Splits \p Text on \p Sep, dropping empty pieces ("a,,b" -> {a, b}).
/// Used by the tools' comma-separated list flags (`getafix --targets`,
/// `fpsolve --eval`).
inline std::vector<std::string> splitList(const std::string &Text,
                                          char Sep = ',') {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : Text) {
    if (C == Sep) {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

} // namespace getafix

#endif // GETAFIX_SUPPORT_STRINGS_H
