//===- ConcurrentTest.cpp - Bounded context-switching tests ---------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "gen/Workloads.h"
#include "interp/ConcurrentOracle.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

struct ParsedConc {
  std::unique_ptr<bp::ConcurrentProgram> Conc;
  std::vector<bp::ProgramCfg> Cfgs;
};

ParsedConc parseConc(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedConc P;
  P.Conc = bp::parseConcurrentProgram(Src, Diags);
  EXPECT_TRUE(P.Conc != nullptr) << Diags.str() << "\nsource:\n" << Src;
  if (P.Conc)
    P.Cfgs = conc::buildThreadCfgs(*P.Conc);
  return P;
}

SolveResult solveConc(const ParsedConc &P, const std::string &Label,
                      unsigned K, const char *Engine = "conc",
                      bool EarlyStop = true) {
  SolverOptions Opts;
  Opts.Engine = Engine;
  Opts.ContextBound = K;
  Opts.EarlyStop = EarlyStop;
  return Solver::solve(
      Query::fromConcurrent(*P.Conc, &P.Cfgs).target(Label), Opts);
}

/// Generates a small random concurrent program: straight-line and branchy
/// threads over a few shared flags, with an ERR guarded by a shared
/// condition. Ground truth comes from the explicit oracle.
std::string randomConcurrentSource(uint64_t Seed) {
  Rng R(Seed * 0x2545F4914F6CDD1Dull + 1);
  unsigned NumShared = 2 + unsigned(R.below(2));
  std::string Src = "shared decl s0";
  for (unsigned I = 1; I < NumShared; ++I)
    Src += ", s" + std::to_string(I);
  Src += ";\n";

  auto Var = [&] { return "s" + std::to_string(R.below(NumShared)); };
  auto Literal = [&]() -> std::string {
    std::string V = Var();
    return R.flip() ? "!" + V : V;
  };

  unsigned NumThreads = 2 + unsigned(R.below(2));
  for (unsigned T = 0; T < NumThreads; ++T) {
    Src += "thread\nmain() begin\n";
    unsigned Stmts = 2 + unsigned(R.below(4));
    for (unsigned S = 0; S < Stmts; ++S) {
      switch (R.below(3)) {
      case 0:
        Src += "  " + Var() + " := " + Literal() + ";\n";
        break;
      case 1:
        Src += "  if (" + Literal() + ") then " + Var() + " := " +
               (R.flip() ? "T" : "F") + "; fi;\n";
        break;
      default:
        Src += "  " + Var() + " := " + Literal() +
               (R.flip() ? " & " : " | ") + Literal() + ";\n";
        break;
      }
    }
    if (T == 0)
      Src += "  if (" + Literal() + " & " + Literal() +
             ") then ERR: skip; fi;\n";
    Src += "end\nend\n";
  }
  return Src;
}

class ConcDifferentialTest : public ::testing::TestWithParam<uint64_t> {};
class LalRepsTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST(ConcurrentTest, TwoPhaseHandshakeNeedsThreeSwitches) {
  // Thread 1 must observe a&!b then b: impossible below 3 switches.
  auto Conc = parseConc(R"(
shared decl a, b;
thread
main() begin
  a := T;
  b := T;
end
end
thread
main() begin
  decl seen;
  seen := F;
  if (a & !b) then seen := T; fi;
  if (seen & b) then ERR: skip; fi;
end
end
)");
  for (unsigned K = 0; K <= 4; ++K) {
    SolveResult R = solveConc(Conc, "ERR", K);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Reachable, K >= 3) << "k=" << K;
  }
}

TEST(ConcurrentTest, ReachSetGrowsWithContextBound) {
  auto Conc = parseConc(gen::bluetoothModel(1, 1));
  double Prev = 0;
  for (unsigned K = 1; K <= 3; ++K) {
    SolveResult R = solveConc(Conc, "ERR", K, "conc", /*EarlyStop=*/false);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_GT(R.ReachStates, Prev) << "k=" << K;
    Prev = R.ReachStates;
  }
}

TEST(ConcurrentTest, MissingLabelReported) {
  auto Conc = parseConc("shared decl s;\nthread\nmain() begin s := T; end\n"
                        "end\n");
  SolveResult R = solveConc(Conc, "NOPE", 2);
  EXPECT_EQ(R.Status, SolveStatus::TargetNotFound);
}

TEST(ConcurrentTest, RecursiveThreadsWithinBound) {
  // The active thread may recurse unboundedly between switches; summaries
  // must still converge.
  auto Conc = parseConc(R"(
shared decl flag, done;
thread
main() begin
  call dig();
  done := T;
end
dig() begin
  if (*) then call dig(); else flag := T; fi;
end
end
thread
main() begin
  if (flag & done) then ERR: skip; fi;
end
end
)");
  EXPECT_TRUE(solveConc(Conc, "ERR", 1).Reachable);
}

TEST_P(ConcDifferentialTest, SymbolicMatchesExplicitOracle) {
  std::string Src = randomConcurrentSource(GetParam());
  auto Conc = parseConc(Src);
  unsigned ProcId = 0, Pc = 0;
  ASSERT_TRUE(Conc.Cfgs[0].findLabelPc("ERR", ProcId, Pc)) << Src;

  for (unsigned K = 0; K <= 3; ++K) {
    interp::ConcurrentQuery Q;
    Q.Thread = 0;
    Q.ProcId = ProcId;
    Q.Pc = Pc;
    Q.MaxContextSwitches = K;
    interp::ConcurrentOracleResult O =
        interp::concurrentReachability(*Conc.Conc, Conc.Cfgs, Q);
    ASSERT_TRUE(O.Exhaustive) << "oracle bound too small\n" << Src;

    // Point query through the facade, against the explicit oracle.
    SolverOptions Opts;
    Opts.Engine = "conc";
    Opts.ContextBound = K;
    SolveResult R = Solver::solve(
        Query::fromConcurrent(*Conc.Conc, &Conc.Cfgs)
            .targetPoint(ProcId, Pc, /*Thread=*/0),
        Opts);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Reachable, O.Reachable) << "k=" << K << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcDifferentialTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST_P(LalRepsTest, EagerReductionAgreesWithFixpoint) {
  std::string Src = randomConcurrentSource(GetParam());
  auto Conc = parseConc(Src);
  for (unsigned K = 1; K <= 2; ++K) {
    SolveResult Ours = solveConc(Conc, "ERR", K, "conc");
    SolveResult LR = solveConc(Conc, "ERR", K, "lal-reps");
    ASSERT_TRUE(Ours.ok()) << Ours.Error << "\n" << Src;
    ASSERT_TRUE(LR.ok()) << LR.Error << "\n" << Src;
    EXPECT_EQ(LR.Reachable, Ours.Reachable) << "k=" << K << "\n" << Src;
    // The eager reduction's global-copy blowup is visible in the stats.
    EXPECT_GT(LR.TransformedGlobals, Conc.Conc->SharedGlobals.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LalRepsTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(BluetoothTest, Figure3Pattern) {
  // The paper's Figure 3 Reach? column: (adders, stoppers) -> first k with
  // a reachable assertion failure (0 = never within the tested bounds).
  struct Row {
    unsigned Adders, Stoppers, FirstBadK;
  } Rows[] = {{1, 1, 0}, {1, 2, 3}, {2, 1, 4}, {2, 2, 3}};

  for (const Row &Cfg : Rows) {
    auto Conc = parseConc(gen::bluetoothModel(Cfg.Adders, Cfg.Stoppers));
    unsigned MaxK = std::max(4u, Cfg.FirstBadK);
    for (unsigned K = 1; K <= MaxK; ++K) {
      SolveResult R = solveConc(Conc, "ERR", K);
      ASSERT_TRUE(R.ok()) << R.Error;
      bool Expected = Cfg.FirstBadK != 0 && K >= Cfg.FirstBadK;
      EXPECT_EQ(R.Reachable, Expected)
          << Cfg.Adders << " adders, " << Cfg.Stoppers << " stoppers, k="
          << K;
    }
  }
}
