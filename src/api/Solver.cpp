//===- Solver.cpp - Facade dispatch and query compilation -----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include "bp/Parser.h"
#include "concurrent/ConcReach.h"

#include <cstdio>
#include <utility>

using namespace getafix;
using namespace getafix::api;

//===----------------------------------------------------------------------===//
// EngineRegistry
//===----------------------------------------------------------------------===//

EngineRegistry &EngineRegistry::instance() {
  static EngineRegistry Registry;
  // Deliberately outside the registry's own initializer: builtin
  // registration calls back into `Registry.add`.
  static bool BuiltinsRegistered =
      (detail::registerBuiltinEngines(Registry), true);
  (void)BuiltinsRegistered;
  return Registry;
}

void EngineRegistry::add(std::unique_ptr<Engine> E) {
  for (std::unique_ptr<Engine> &Existing : Engines)
    if (std::string(Existing->name()) == E->name()) {
      Existing = std::move(E);
      return;
    }
  Engines.push_back(std::move(E));
}

const Engine *EngineRegistry::lookup(const std::string &Name) const {
  for (const std::unique_ptr<Engine> &E : Engines)
    if (Name == E->name())
      return E.get();
  return nullptr;
}

std::vector<const Engine *> EngineRegistry::engines() const {
  std::vector<const Engine *> Out;
  Out.reserve(Engines.size());
  for (const std::unique_ptr<Engine> &E : Engines)
    Out.push_back(E.get());
  return Out;
}

//===----------------------------------------------------------------------===//
// Query compilation
//===----------------------------------------------------------------------===//

namespace {

/// The concurrent grammar starts with `shared`; skip leading whitespace and
/// look for the keyword (the same sniff the CLI used to hand-roll).
bool isConcurrentSource(const std::string &Text) {
  size_t Pos = Text.find_first_not_of(" \t\r\n");
  if (Pos == std::string::npos || Text.compare(Pos, 6, "shared") != 0)
    return false;
  if (Pos + 6 == Text.size())
    return true;
  // Keyword boundary: reject identifiers like `shared_init`.
  char Next = Text[Pos + 6];
  return !isalnum(static_cast<unsigned char>(Next)) && Next != '_';
}

Solver::Compilation fail(SolveStatus Status, std::string Error) {
  Solver::Compilation C;
  C.Status = Status;
  C.Error = std::move(Error);
  return C;
}

} // namespace

Solver::Compilation Solver::compile(const Query &Q, bool RequireTarget) {
  Compilation C;
  C.Query = std::make_unique<CompiledQuery>();
  CompiledQuery &CQ = *C.Query;
  CQ.WantWitness = Q.WantWitness;

  if (Q.Cfg) {
    CQ.Cfg = Q.Cfg;
  } else if (Q.Conc) {
    CQ.Conc = Q.Conc;
    if (Q.ThreadCfgs) {
      CQ.ThreadCfgs = Q.ThreadCfgs;
    } else {
      CQ.OwnedThreadCfgs = conc::buildThreadCfgs(*Q.Conc);
      CQ.ThreadCfgs = &CQ.OwnedThreadCfgs;
    }
  } else if (!Q.Source.empty()) {
    DiagnosticEngine Diags;
    if (isConcurrentSource(Q.Source)) {
      CQ.OwnedConc = bp::parseConcurrentProgram(Q.Source, Diags);
      if (!CQ.OwnedConc)
        return fail(SolveStatus::ParseError, Diags.str());
      CQ.Conc = CQ.OwnedConc.get();
      CQ.OwnedThreadCfgs = conc::buildThreadCfgs(*CQ.Conc);
      CQ.ThreadCfgs = &CQ.OwnedThreadCfgs;
    } else {
      CQ.OwnedProg = bp::parseProgram(Q.Source, Diags);
      if (!CQ.OwnedProg)
        return fail(SolveStatus::ParseError, Diags.str());
      CQ.OwnedCfg =
          std::make_unique<bp::ProgramCfg>(bp::buildCfg(*CQ.OwnedProg));
      CQ.Cfg = CQ.OwnedCfg.get();
    }
  } else {
    return fail(SolveStatus::BadQuery,
                "query carries no program (source, Cfg, or Conc)");
  }

  // Resolve the target to a concrete (thread,) proc, pc.
  if (CQ.isConcurrent()) {
    const std::vector<bp::ProgramCfg> &Cfgs = CQ.threadCfgs();
    if (Q.UsePoint) {
      if (Q.Thread >= Cfgs.size() ||
          Q.ProcId >= Cfgs[Q.Thread].Procs.size() ||
          Q.Pc >= Cfgs[Q.Thread].Procs[Q.ProcId].NumPcs)
        return fail(SolveStatus::TargetNotFound,
                    "target point (thread " + std::to_string(Q.Thread) +
                        ", " + std::to_string(Q.ProcId) + ", " +
                        std::to_string(Q.Pc) + ") out of range");
      CQ.Thread = Q.Thread;
      CQ.ProcId = Q.ProcId;
      CQ.Pc = Q.Pc;
      return C;
    }
    for (unsigned Thread = 0; Thread < Cfgs.size(); ++Thread)
      if (Cfgs[Thread].findLabelPc(Q.Label, CQ.ProcId, CQ.Pc)) {
        CQ.Thread = Thread;
        CQ.Label = Q.Label;
        return C;
      }
    if (!RequireTarget)
      return C;
    return fail(SolveStatus::TargetNotFound,
                "label '" + Q.Label + "' not found");
  }

  if (Q.UsePoint) {
    if (Q.ProcId >= CQ.cfg().Procs.size() ||
        Q.Pc >= CQ.cfg().Procs[Q.ProcId].NumPcs)
      return fail(SolveStatus::TargetNotFound,
                  "target point (" + std::to_string(Q.ProcId) + ", " +
                      std::to_string(Q.Pc) + ") out of range");
    CQ.ProcId = Q.ProcId;
    CQ.Pc = Q.Pc;
    return C;
  }
  if (!CQ.cfg().findLabelPc(Q.Label, CQ.ProcId, CQ.Pc)) {
    if (!RequireTarget)
      return C;
    return fail(SolveStatus::TargetNotFound,
                "label '" + Q.Label + "' not found");
  }
  CQ.Label = Q.Label;
  return C;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Resolves `Opts.Engine` (empty = per-kind default) against the registry
/// and the query kind. Null with \p Out filled on failure.
const Engine *selectEngine(const CompiledQuery &Q, const SolverOptions &Opts,
                           SolveResult &Out) {
  std::string Name = Opts.Engine;
  if (Name.empty())
    Name = Q.isConcurrent() ? "conc" : "ef-opt";
  const Engine *E = Solver::findEngine(Name);
  if (!E) {
    Out.Status = SolveStatus::UnknownEngine;
    Out.Error = "unknown engine '" + Name + "' (have: " +
                Solver::engineList(", ") + ")";
    return nullptr;
  }
  if (E->handlesConcurrent() != Q.isConcurrent()) {
    Out.Status = SolveStatus::BadQuery;
    Out.Error = std::string("engine '") + E->name() + "' answers " +
                (E->handlesConcurrent() ? "concurrent" : "sequential") +
                " queries, but the program is " +
                (Q.isConcurrent() ? "concurrent" : "sequential");
    return nullptr;
  }
  return E;
}

} // namespace

SolveResult Solver::solve(const Query &Q, const SolverOptions &Opts) {
  Compilation C = compile(Q);
  SolveResult R;
  if (!C.Query) {
    R.Status = C.Status;
    R.Error = std::move(C.Error);
    return R;
  }
  const Engine *E = selectEngine(*C.Query, Opts, R);
  if (!E)
    return R;
  return E->run(*C.Query, Opts);
}

std::string Solver::formulaText(const Query &Q, const SolverOptions &Opts,
                                std::string *Error) {
  // The equation system does not depend on the target, so a missing label
  // must not block printing it.
  Compilation C = compile(Q, /*RequireTarget=*/false);
  if (!C.Query) {
    if (Error)
      *Error = C.Error;
    return "";
  }
  SolveResult R;
  const Engine *E = selectEngine(*C.Query, Opts, R);
  if (!E) {
    if (Error)
      *Error = R.Error;
    return "";
  }
  std::string Text = E->formulaText(*C.Query);
  if (Text.empty() && Error)
    *Error = std::string("engine '") + E->name() +
             "' does not expose its equation system";
  return Text;
}

const Engine *Solver::findEngine(const std::string &Name) {
  return EngineRegistry::instance().lookup(Name);
}

std::vector<const Engine *> Solver::engines() {
  return EngineRegistry::instance().engines();
}

std::string Solver::engineList(const char *Sep) {
  std::string Out;
  for (const Engine *E : engines()) {
    if (!Out.empty())
      Out += Sep;
    Out += E->name();
  }
  return Out;
}

std::string Solver::engineTable() {
  size_t Width = 0;
  for (const Engine *E : engines())
    Width = std::max(Width, std::string(E->name()).size());
  std::string Out;
  for (const Engine *E : engines()) {
    std::string Name = E->name();
    Out += "  " + Name + std::string(Width - Name.size() + 2, ' ') +
           (E->handlesConcurrent() ? "concurrent  " : "sequential  ") +
           E->description() + "\n";
  }
  return Out;
}
