//===- Timer.h - Wall-clock timing helper -----------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_TIMER_H
#define GETAFIX_SUPPORT_TIMER_H

#include <chrono>

namespace getafix {

/// Measures wall-clock time from construction (or the last reset()).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace getafix

#endif // GETAFIX_SUPPORT_TIMER_H
