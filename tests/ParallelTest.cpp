//===- ParallelTest.cpp - Parallel SCC scheduling differential tests ------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness contract of `--threads N`: bit-identical results to a
/// sequential solve, everywhere. Covers
///
///   - `BddImporter` in isolation (truth-table equality, canonical node
///     identity against natively-rebuilt functions, survival of source-
///     and destination-side GCs),
///   - multi-SCC calculus systems solved at threads {1, 2, 4}: identical
///     relation values (compared exactly, via import into one manager),
///     identical per-relation iteration counts, both strategies,
///   - every registered engine through the Solver facade at threads 1 vs
///     4 — both strategies, all three cofactor modes, witness queries,
///   - sessions under `Threads > 1`: solve/solveAll bit-identical to
///     fresh solves and to a `Threads = 1` session, with and without
///     state reuse,
///   - intra-SCC disjunct parallelism forced on (threshold 1) across the
///     same engine/strategy/cofactor matrix, witnesses and sessions
///     included, plus the cost gate itself: an unreachable threshold must
///     keep every round sequential (`RoundsParallel == 0`).
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bdd/Bdd.h"
#include "fpcalc/Evaluator.h"
#include "fpcalc/Parser.h"
#include "gen/Workloads.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace getafix;

namespace {

//===----------------------------------------------------------------------===//
// BddImporter
//===----------------------------------------------------------------------===//

/// A random function over \p NumVars variables as an OR of random cubes.
Bdd randomFunction(BddManager &Mgr, Rng &R, unsigned NumVars,
                   unsigned Terms) {
  Bdd F = Mgr.zero();
  for (unsigned T = 0; T < Terms; ++T) {
    Bdd Cube = Mgr.one();
    for (unsigned V = 0; V < NumVars; ++V) {
      switch (R.below(3)) {
      case 0:
        Cube &= Mgr.var(V);
        break;
      case 1:
        Cube &= Mgr.nvar(V);
        break;
      default:
        break; // Don't-care.
      }
    }
    F |= Cube;
  }
  return F;
}

void expectSameTruthTable(const Bdd &A, const Bdd &B, unsigned NumVars) {
  ASSERT_LE(NumVars, 12u);
  for (uint64_t Bits = 0; Bits < (uint64_t(1) << NumVars); ++Bits) {
    std::vector<bool> Assignment(NumVars);
    for (unsigned V = 0; V < NumVars; ++V)
      Assignment[V] = (Bits >> V) & 1;
    ASSERT_EQ(A.eval(Assignment), B.eval(Assignment)) << "at " << Bits;
  }
}

TEST(BddImporterTest, ImportPreservesFunctionsAndCanonicity) {
  constexpr unsigned NumVars = 10;
  BddManager Src(NumVars), Dst(NumVars);
  BddImporter Imp(Src, Dst);
  Rng R(3);
  for (unsigned I = 0; I < 20; ++I) {
    Bdd F = randomFunction(Src, R, NumVars, 1 + unsigned(R.below(12)));
    Bdd G = Imp.import(F);
    ASSERT_EQ(G.manager(), &Dst);
    expectSameTruthTable(F, G, NumVars);
    EXPECT_EQ(F.nodeCount(), G.nodeCount());
    EXPECT_EQ(F.support(), G.support());
  }
  // Terminals import as themselves.
  EXPECT_TRUE(Imp.import(Src.zero()).isZero());
  EXPECT_TRUE(Imp.import(Src.one()).isOne());
  EXPECT_TRUE(Imp.import(Bdd()).isNull());
}

TEST(BddImporterTest, ImportedBddIsCanonicallyIdenticalToNativeBuild) {
  // Build the same function natively in both managers; the import of one
  // must be *the same node* as the other (ROBDD canonicity is what makes
  // parallel results bit-identical).
  constexpr unsigned NumVars = 8;
  BddManager Src(NumVars), Dst(NumVars);
  Rng RA(11), RB(11); // Same seed: same construction sequence.
  Bdd F = randomFunction(Src, RA, NumVars, 9);
  Bdd Native = randomFunction(Dst, RB, NumVars, 9);
  BddImporter Imp(Src, Dst);
  EXPECT_EQ(Imp.import(F), Native);
}

TEST(BddImporterTest, MemoSurvivesDestinationGcAndInvalidatesOnSourceGc) {
  constexpr unsigned NumVars = 10;
  BddManager Src(NumVars), Dst(NumVars);
  BddImporter Imp(Src, Dst);
  Rng R(5);
  Bdd Keep = randomFunction(Src, R, NumVars, 8);
  Bdd KeptDst = Imp.import(Keep);
  EXPECT_GT(Imp.memoSize(), 0u);

  // Destination-side GC: memo entries hold external refs, so the
  // translations stay valid (and canonical) afterwards.
  { Bdd Garbage = randomFunction(Dst, R, NumVars, 10); }
  Dst.gc();
  EXPECT_EQ(Imp.import(Keep), KeptDst);
  expectSameTruthTable(Keep, KeptDst, NumVars);

  // Source-side GC: freed source indices may be recycled; the importer
  // must drop its memo and still translate correctly.
  { Bdd Garbage = randomFunction(Src, R, NumVars, 10); }
  Src.gc();
  Bdd Fresh = randomFunction(Src, R, NumVars, 7);
  expectSameTruthTable(Fresh, Imp.import(Fresh), NumVars);
  EXPECT_EQ(Imp.import(Keep), KeptDst);
}

//===----------------------------------------------------------------------===//
// Multi-SCC calculus systems: threads {1, 2, 4} differential
//===----------------------------------------------------------------------===//

struct FpSolve {
  std::unique_ptr<BddManager> Mgr;
  std::unique_ptr<fpc::Evaluator> Ev;
  Bdd Root;
  std::map<std::string, fpc::RelStats> Stats;
  uint64_t SccsParallel = 0;
};

FpSolve solveRoot(const fpc::System &Sys,
                  const std::vector<fpc::Fact> &Facts, unsigned Threads,
                  fpc::EvalStrategy Strategy) {
  FpSolve S;
  S.Mgr = std::make_unique<BddManager>(0, /*CacheBits=*/14);
  S.Ev = std::make_unique<fpc::Evaluator>(
      Sys, *S.Mgr, fpc::Layout::sequential(Sys, *S.Mgr), Strategy);
  S.Ev->setThreads(Threads);
  fpc::bindFacts(*S.Ev, Sys, Facts);
  S.Root = S.Ev->evaluate(Sys.relId("Root")).Value;
  S.Stats = S.Ev->stats();
  S.SccsParallel = S.Ev->parallelStats().SccsSolvedParallel;
  return S;
}

void expectSameRelStats(const std::map<std::string, fpc::RelStats> &A,
                        const std::map<std::string, fpc::RelStats> &B,
                        const std::string &Context) {
  ASSERT_EQ(A.size(), B.size()) << Context;
  for (const auto &[Name, RA] : A) {
    auto It = B.find(Name);
    ASSERT_NE(It, B.end()) << Context << ": " << Name;
    EXPECT_EQ(RA.Iterations, It->second.Iterations) << Context << " " << Name;
    EXPECT_EQ(RA.Evaluations, It->second.Evaluations)
        << Context << " " << Name;
    EXPECT_EQ(RA.FinalNodes, It->second.FinalNodes) << Context << " " << Name;
  }
}

TEST(ParallelSccTest, MultiSccSystemsBitIdenticalAcrossThreadCounts) {
  for (gen::MultiSccStyle Style :
       {gen::MultiSccStyle::Graph, gen::MultiSccStyle::Lockstep}) {
    for (fpc::EvalStrategy Strategy :
         {fpc::EvalStrategy::SemiNaive, fpc::EvalStrategy::Naive}) {
      gen::MultiSccParams P;
      P.Style = Style;
      P.Relations = 5;
      P.Bits = 4;
      P.ExtraEdges = 6;
      P.Seed = 13;
      std::string Src = gen::multiSccFixpointSystem(P);
      DiagnosticEngine Diags;
      std::vector<fpc::Fact> Facts;
      auto Sys = fpc::parseSystem(Src, Diags, &Facts);
      ASSERT_TRUE(Sys) << Diags.str();

      std::string Ctx =
          std::string(Style == gen::MultiSccStyle::Graph ? "graph"
                                                         : "lockstep") +
          "/" + fpc::strategyName(Strategy);
      FpSolve Base = solveRoot(*Sys, Facts, 1, Strategy);
      EXPECT_EQ(Base.SccsParallel, 0u);
      for (unsigned Threads : {2u, 4u}) {
        FpSolve Par = solveRoot(*Sys, Facts, Threads, Strategy);
        // Exact value equality, cross-manager: import into the baseline
        // manager and compare canonical nodes.
        BddImporter Imp(*Par.Mgr, *Base.Mgr);
        EXPECT_EQ(Imp.import(Par.Root), Base.Root)
            << Ctx << " threads=" << Threads;
        expectSameRelStats(Base.Stats, Par.Stats,
                           Ctx + " threads=" + std::to_string(Threads));
        EXPECT_EQ(Par.SccsParallel, uint64_t(P.Relations))
            << Ctx << " threads=" << Threads;
      }
    }
  }
}

TEST(ParallelSccTest, RandomizedSystemsAndRepeatedSolvesAreDeterministic) {
  Rng R(99);
  for (unsigned Round = 0; Round < 3; ++Round) {
    gen::MultiSccParams P;
    P.Style = R.flip() ? gen::MultiSccStyle::Graph
                       : gen::MultiSccStyle::Lockstep;
    P.Relations = 2 + unsigned(R.below(5));
    P.Bits = 3 + unsigned(R.below(2));
    P.ExtraEdges = unsigned(R.below(8));
    P.Seed = R.next();
    std::string Src = gen::multiSccFixpointSystem(P);
    DiagnosticEngine Diags;
    std::vector<fpc::Fact> Facts;
    auto Sys = fpc::parseSystem(Src, Diags, &Facts);
    ASSERT_TRUE(Sys) << Diags.str();

    FpSolve Base = solveRoot(*Sys, Facts, 1, fpc::EvalStrategy::SemiNaive);
    FpSolve A = solveRoot(*Sys, Facts, 4, fpc::EvalStrategy::SemiNaive);
    FpSolve B = solveRoot(*Sys, Facts, 4, fpc::EvalStrategy::SemiNaive);
    BddImporter ImpA(*A.Mgr, *Base.Mgr);
    BddImporter ImpB(*B.Mgr, *Base.Mgr);
    EXPECT_EQ(ImpA.import(A.Root), Base.Root) << "round " << Round;
    EXPECT_EQ(ImpB.import(B.Root), Base.Root) << "round " << Round;
    expectSameRelStats(A.Stats, B.Stats, "repeat run");
  }
}

TEST(ParallelSccTest, RebindAndInvalidateDropWorkerMemos) {
  // Regression test: the persistent worker evaluators must not serve
  // relation values solved under an earlier input binding. The shape is
  // adversarial: M's SCC applies no input *directly* (the binding flows
  // through L), so task seeding alone would never refresh a stale
  // worker-side M.
  using namespace getafix::fpc;
  System Sys;
  DomainId D = Sys.addDomain("D", 8);
  VarId A = Sys.addVar("a", D);
  RelId I = Sys.declareRel("I", {A});
  RelId L = Sys.declareRel("L", {A});
  Sys.define(L, Sys.applyVars(I, {A}));
  RelId M = Sys.declareRel("M", {A});
  Sys.define(M, Sys.mkOr({Sys.applyVars(L, {A}), Sys.applyVars(M, {A})}));
  RelId R2 = Sys.declareRel("R2", {A});
  Sys.define(R2, Sys.mkOr({Sys.eqConst(A, 1), Sys.applyVars(R2, {A})}));
  RelId Root = Sys.declareRel("Root", {A});
  Sys.define(Root,
             Sys.mkOr({Sys.applyVars(M, {A}), Sys.applyVars(R2, {A})}));

  BddManager Mgr(0, 12);
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.setThreads(2);
  // Several rebind rounds: task-to-worker placement varies, so one round
  // might miss the stale worker by luck.
  for (uint64_t V = 0; V < 6; ++V) {
    Ev.bindInput(I, Ev.encodeEqConst(A, V));
    Bdd Expected = Ev.encodeEqConst(A, V) | Ev.encodeEqConst(A, 1);
    EXPECT_EQ(Ev.evaluate(Root).Value, Expected) << "rebind to " << V;
  }
  // invalidate() must reach the workers too.
  Ev.invalidate();
  EXPECT_EQ(Ev.evaluate(Root).Value,
            Ev.encodeEqConst(A, 5) | Ev.encodeEqConst(A, 1));
}

//===----------------------------------------------------------------------===//
// Engine differential: threads 1 vs 4 through the Solver facade
//===----------------------------------------------------------------------===//

const char *FixtureBody = R"(
main() begin
  locked := F;
  call work(F);
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  fi
  if (locked & !locked) then
    SAFE: skip;
  fi
  locked := F;
end
)";

std::string seqFixture() { return std::string("decl locked;\n") + FixtureBody; }

std::string concFixture() {
  return std::string("shared decl locked;\nthread\n") + FixtureBody + "end\n";
}

/// The observables that must be bit-identical across thread counts.
void expectSameCore(const SolveResult &A, const SolveResult &B,
                    const std::string &Context) {
  EXPECT_EQ(A.Status, B.Status) << Context;
  EXPECT_EQ(A.Reachable, B.Reachable) << Context;
  EXPECT_EQ(A.HitIterationLimit, B.HitIterationLimit) << Context;
  EXPECT_EQ(A.Iterations, B.Iterations) << Context;
  EXPECT_EQ(A.DeltaRounds, B.DeltaRounds) << Context;
  EXPECT_EQ(A.SummaryNodes, B.SummaryNodes) << Context;
  EXPECT_DOUBLE_EQ(A.ReachStates, B.ReachStates) << Context;
  EXPECT_EQ(A.HasWitness, B.HasWitness) << Context;
  EXPECT_EQ(A.WitnessText, B.WitnessText) << Context;
}

TEST(ParallelEngineTest, AllEnginesAllStrategiesAllCofactorsThreads1Vs4) {
  for (const api::Engine *E : Solver::engines()) {
    std::string Source =
        E->handlesConcurrent() ? concFixture() : seqFixture();
    for (fpc::EvalStrategy Strategy :
         {fpc::EvalStrategy::SemiNaive, fpc::EvalStrategy::Naive}) {
      for (fpc::CofactorMode Mode :
           {fpc::CofactorMode::Constrain, fpc::CofactorMode::Restrict,
            fpc::CofactorMode::Off}) {
        for (const char *Label : {"ERR", "SAFE"}) {
          SolverOptions Opts;
          Opts.Engine = E->name();
          Opts.Strategy = Strategy;
          Opts.FrontierCofactor = Mode;
          Query Q = Query::fromSource(Source).target(Label);
          SolveResult T1 = Solver::solve(Q, Opts);
          Opts.Threads = 4;
          SolveResult T4 = Solver::solve(Q, Opts);
          expectSameCore(T1, T4,
                         std::string(E->name()) + "/" +
                             fpc::strategyName(Strategy) + "/" +
                             fpc::cofactorModeName(Mode) + "/" + Label);
        }
      }
    }
  }
}

TEST(ParallelEngineTest, WitnessQueriesIdenticalAcrossThreads) {
  for (const api::Engine *E : Solver::engines()) {
    if (!E->supportsWitness() || E->handlesConcurrent())
      continue;
    SolverOptions Opts;
    Opts.Engine = E->name();
    Query Q = Query::fromSource(seqFixture()).target("ERR").witness();
    SolveResult T1 = Solver::solve(Q, Opts);
    Opts.Threads = 4;
    SolveResult T4 = Solver::solve(Q, Opts);
    expectSameCore(T1, T4, std::string(E->name()) + "/witness");
    EXPECT_TRUE(T4.HasWitness) << E->name();
  }
}

TEST(ParallelEngineTest, GeneratedProgramsIdenticalAcrossThreads) {
  // Generator output (driver + terminator shapes) through the default
  // engines, threads 1 vs 4.
  std::vector<gen::Workload> Cases;
  {
    gen::DriverParams P;
    P.NumProcs = 8;
    P.StmtsPerProc = 8;
    P.Reachable = true;
    P.Seed = 3;
    Cases.push_back(gen::driverProgram(P));
    gen::TerminatorParams T;
    T.CounterBits = 4;
    T.NumDeadVars = 3;
    T.Reachable = false;
    Cases.push_back(gen::terminatorProgram(T));
  }
  for (const gen::Workload &W : Cases) {
    for (const char *EngineName : {"summary", "ef-split", "ef-opt"}) {
      SolverOptions Opts;
      Opts.Engine = EngineName;
      Query Q = Query::fromSource(W.Source).target(W.TargetLabel);
      SolveResult T1 = Solver::solve(Q, Opts);
      Opts.Threads = 4;
      SolveResult T4 = Solver::solve(Q, Opts);
      expectSameCore(T1, T4, W.Name + "/" + EngineName);
      if (W.ExpectKnown)
        EXPECT_EQ(T4.Reachable, W.ExpectReachable) << W.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Intra-SCC disjunct parallelism: forced fan-out differential
//===----------------------------------------------------------------------===//

TEST(DisjunctParallelTest, ForcedFanoutAllEnginesBitIdentical) {
  // Threshold 1 arms the disjunct fan-out from round 2 onward, so even
  // this small fixture exercises the parallel round path wherever the
  // plan has >= 2 independent distributive units.
  for (const api::Engine *E : Solver::engines()) {
    std::string Source =
        E->handlesConcurrent() ? concFixture() : seqFixture();
    for (fpc::EvalStrategy Strategy :
         {fpc::EvalStrategy::SemiNaive, fpc::EvalStrategy::Naive}) {
      for (fpc::CofactorMode Mode :
           {fpc::CofactorMode::Constrain, fpc::CofactorMode::Restrict,
            fpc::CofactorMode::Off}) {
        for (const char *Label : {"ERR", "SAFE"}) {
          SolverOptions Opts;
          Opts.Engine = E->name();
          Opts.Strategy = Strategy;
          Opts.FrontierCofactor = Mode;
          Opts.DisjunctParallelThreshold = 1;
          Query Q = Query::fromSource(Source).target(Label);
          SolveResult T1 = Solver::solve(Q, Opts);
          Opts.Threads = 4;
          SolveResult T4 = Solver::solve(Q, Opts);
          std::string Ctx = std::string(E->name()) + "/" +
                            fpc::strategyName(Strategy) + "/" +
                            fpc::cofactorModeName(Mode) + "/" + Label +
                            "/forced";
          expectSameCore(T1, T4, Ctx);
          // A single-threaded solve must never take the parallel path,
          // whatever the threshold says.
          EXPECT_EQ(T1.RoundsParallel, 0u) << Ctx;
          EXPECT_EQ(T1.DisjunctsParallel, 0u) << Ctx;
        }
      }
    }
  }
}

TEST(DisjunctParallelTest, WitnessQueriesIdenticalUnderForcedFanout) {
  for (const api::Engine *E : Solver::engines()) {
    if (!E->supportsWitness() || E->handlesConcurrent())
      continue;
    SolverOptions Opts;
    Opts.Engine = E->name();
    Opts.DisjunctParallelThreshold = 1;
    Query Q = Query::fromSource(seqFixture()).target("ERR").witness();
    SolveResult T1 = Solver::solve(Q, Opts);
    Opts.Threads = 4;
    SolveResult T4 = Solver::solve(Q, Opts);
    expectSameCore(T1, T4, std::string(E->name()) + "/witness/forced");
    EXPECT_TRUE(T4.HasWitness) << E->name();
  }
}

TEST(DisjunctParallelTest, SessionsIdenticalUnderForcedFanout) {
  for (const api::Engine *E : Solver::engines()) {
    std::string Source =
        E->handlesConcurrent() ? concFixture() : seqFixture();
    std::vector<Query> Queries;
    for (const char *Label : {"ERR", "SAFE", "ERR"})
      Queries.push_back(Query::fromSource("").target(Label));

    SolverOptions Seq;
    Seq.Engine = E->name();
    std::vector<SolveResult> Fresh;
    for (const Query &Q : Queries) {
      Query FQ = Q;
      FQ.Source = Source;
      Fresh.push_back(Solver::solve(FQ, Seq));
      ASSERT_TRUE(Fresh.back().ok()) << E->name();
    }

    SolverOptions Par = Seq;
    Par.Threads = 4;
    Par.DisjunctParallelThreshold = 1;
    auto Session = Solver::open(Query::fromSource(Source), Par);
    ASSERT_TRUE(Session->ok()) << E->name() << ": " << Session->error();
    for (size_t I = 0; I < Queries.size(); ++I) {
      SolveResult R = Session->solve(Queries[I]);
      expectSameCore(Fresh[I], R,
                     std::string(E->name()) + "/forced-session");
    }
  }
}

TEST(DisjunctParallelTest, ThresholdGatesFanout) {
  // The cost gate on a workload with real semi-naive rounds: threshold 1
  // must engage the fan-out, an unreachable threshold must keep every
  // round sequential, and both must match the single-threaded solve.
  gen::TerminatorParams T;
  T.CounterBits = 4;
  T.NumDeadVars = 3;
  T.Reachable = false;
  gen::Workload W = gen::terminatorProgram(T);
  Query Q = Query::fromSource(W.Source).target(W.TargetLabel);

  SolverOptions Base;
  Base.Engine = "summary";
  // Pin the monolithic compilation: the intra-SCC disjunct fan-out under
  // test fires on a single heavy relation's top-level semi-naive rounds.
  // Under the per-procedure split the same work runs as independent SCC
  // tasks on the pool (counted in SccsSolvedParallel, covered by the
  // split differential tests), so no top-level round crosses the gate.
  Base.MonolithicSummary = true;
  SolveResult Seq = Solver::solve(Q, Base);

  SolverOptions Forced = Base;
  Forced.Threads = 4;
  Forced.DisjunctParallelThreshold = 1;
  SolveResult Par = Solver::solve(Q, Forced);
  expectSameCore(Seq, Par, "terminator/forced");
  EXPECT_GE(Par.RoundsParallel, 1u);
  EXPECT_GE(Par.DisjunctsParallel, 2 * Par.RoundsParallel);
  EXPECT_GT(Par.ImportedNodes, 0u);

  SolverOptions Gated = Base;
  Gated.Threads = 4;
  Gated.DisjunctParallelThreshold = UINT64_MAX;
  SolveResult Off = Solver::solve(Q, Gated);
  expectSameCore(Seq, Off, "terminator/gated-off");
  // ImportedNodes stays unasserted here: SCC-level parallel scheduling
  // imports nodes too, independent of the disjunct gate.
  EXPECT_EQ(Off.RoundsParallel, 0u);
  EXPECT_EQ(Off.DisjunctsParallel, 0u);
}

//===----------------------------------------------------------------------===//
// Sessions under Threads > 1
//===----------------------------------------------------------------------===//

TEST(ParallelSessionTest, SessionsBitIdenticalAcrossThreadsAndReuse) {
  for (const api::Engine *E : Solver::engines()) {
    std::string Source =
        E->handlesConcurrent() ? concFixture() : seqFixture();
    std::vector<Query> Queries;
    for (const char *Label : {"ERR", "SAFE", "ERR"})
      Queries.push_back(Query::fromSource("").target(Label));

    SolverOptions T1Opts;
    T1Opts.Engine = E->name();
    SolverOptions T4Opts = T1Opts;
    T4Opts.Threads = 4;

    // Fresh per-query baselines at threads 1.
    std::vector<SolveResult> Fresh;
    for (const Query &Q : Queries) {
      Query FQ = Q;
      FQ.Source = Source;
      Fresh.push_back(Solver::solve(FQ, T1Opts));
      ASSERT_TRUE(Fresh.back().ok()) << E->name();
    }

    for (bool Reuse : {true, false}) {
      SolverOptions Opts = T4Opts;
      Opts.SessionReuse = Reuse;
      auto Session = Solver::open(Query::fromSource(Source), Opts);
      ASSERT_TRUE(Session->ok()) << E->name() << ": " << Session->error();
      // Individual solves, then a solveAll batch on a second session.
      for (size_t I = 0; I < Queries.size(); ++I) {
        SolveResult R = Session->solve(Queries[I]);
        expectSameCore(Fresh[I], R, std::string(E->name()) +
                                        "/t4-session reuse=" +
                                        (Reuse ? "on" : "off"));
      }
      auto Batch = Solver::open(Query::fromSource(Source), Opts);
      ASSERT_TRUE(Batch->ok());
      std::vector<SolveResult> All = Batch->solveAll(Queries);
      ASSERT_EQ(All.size(), Queries.size());
      for (size_t I = 0; I < All.size(); ++I)
        expectSameCore(Fresh[I], All[I],
                       std::string(E->name()) + "/t4-solveAll");
    }
  }
}

TEST(ParallelSessionTest, MidSessionCacheClearStaysIdentical) {
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  Opts.Threads = 4;
  auto Session = Solver::open(Query::fromSource(seqFixture()), Opts);
  ASSERT_TRUE(Session->ok());
  SolveResult A = Session->solve(Query::fromSource("").target("ERR"));
  Session->clearComputedCache();
  SolveResult B = Session->solve(Query::fromSource("").target("SAFE"));

  SolverOptions Seq = Opts;
  Seq.Threads = 1;
  SolveResult FA =
      Solver::solve(Query::fromSource(seqFixture()).target("ERR"), Seq);
  SolveResult FB =
      Solver::solve(Query::fromSource(seqFixture()).target("SAFE"), Seq);
  expectSameCore(FA, A, "clear/ERR");
  expectSameCore(FB, B, "clear/SAFE");
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-procedure summary split under the parallel scheduler
//===----------------------------------------------------------------------===//

/// The split's whole point: at Threads=4 the per-procedure relations are
/// independent dependency SCCs, so the scheduler dispatches real work —
/// and the verdict stays bit-identical to both the single-threaded split
/// and the monolithic compilation at either thread count.
TEST(SplitSummaryParallelTest, SplitGivesSchedulerWidthAndStaysIdentical) {
  gen::TerminatorParams T;
  T.CounterBits = 4;
  T.NumDeadVars = 3;
  T.Reachable = false;
  gen::Workload W = gen::terminatorProgram(T);
  Query Q = Query::fromSource(W.Source).target(W.TargetLabel);

  for (const char *Engine : {"summary", "ef", "ef-split", "ef-opt"}) {
    SolverOptions Split1;
    Split1.Engine = Engine;
    SolveResult S1 = Solver::solve(Q, Split1);
    ASSERT_TRUE(S1.ok()) << Engine;
    EXPECT_GT(S1.CondensationWidth, 4u) << Engine;

    SolverOptions Split4 = Split1;
    Split4.Threads = 4;
    SolveResult S4 = Solver::solve(Q, Split4);
    expectSameCore(S1, S4, std::string(Engine) + "/split-1v4");
    // Real width reaches the pool: independent summary SCCs get
    // dispatched instead of one serialized chain.
    EXPECT_GT(S4.SccsSolvedParallel, 0u) << Engine;

    SolverOptions Mono4 = Split4;
    Mono4.MonolithicSummary = true;
    SolveResult M4 = Solver::solve(Q, Mono4);
    ASSERT_TRUE(M4.ok()) << Engine;
    EXPECT_EQ(M4.Reachable, S4.Reachable) << Engine;
    EXPECT_EQ(M4.SummaryRelations, 1u) << Engine;
    EXPECT_EQ(S4.SummaryRelations, S4.CondensationWidth) << Engine;
  }
}

/// Split sessions across thread counts and reuse modes: per-query answers
/// must match the monolithic session bit for bit, including witnesses.
TEST(SplitSummaryParallelTest, SplitSessionsMatchMonolithicAcrossThreads) {
  gen::TerminatorParams T;
  T.CounterBits = 3;
  T.NumDeadVars = 2;
  T.Reachable = true;
  T.LabeledCheckpoints = 1;
  gen::Workload W = gen::terminatorProgram(T);

  std::vector<Query> Queries;
  for (const char *Label : {"CP0", "ERR", "DEAD0", "ERR"})
    Queries.push_back(Query::fromSource("").target(Label));
  // One witness query on the reachable target exercises the split
  // session's owned witness sub-session.
  Queries.push_back(Query::fromSource("").target("ERR").witness(true));

  for (const char *Engine : {"summary", "ef", "ef-split", "ef-opt"})
    for (unsigned Threads : {1u, 4u}) {
      SolverOptions Opts;
      Opts.Engine = Engine;
      Opts.Threads = Threads;

      Opts.MonolithicSummary = false;
      auto Split = Solver::open(Query::fromSource(W.Source), Opts);
      Opts.MonolithicSummary = true;
      auto Mono = Solver::open(Query::fromSource(W.Source), Opts);
      ASSERT_TRUE(Split->ok() && Mono->ok()) << Engine;

      for (const Query &Q : Queries) {
        SolveResult S = Split->solve(Q);
        SolveResult M = Mono->solve(Q);
        std::string Ctx = std::string(Engine) + "/t" +
                          std::to_string(Threads) + "/" + Q.Label;
        ASSERT_TRUE(S.ok() && M.ok()) << Ctx;
        EXPECT_EQ(S.Reachable, M.Reachable) << Ctx;
        EXPECT_EQ(S.HasWitness, M.HasWitness) << Ctx;
        EXPECT_EQ(S.WitnessText, M.WitnessText) << Ctx;
      }
    }
}
