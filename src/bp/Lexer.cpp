//===- Lexer.cpp - Boolean program lexer ----------------------------------===//

#include "bp/Lexer.h"

#include <cctype>
#include <map>

using namespace getafix;
using namespace getafix::bp;

void Lexer::advance() {
  assert(Pos < Input.size() && "advancing past end");
  if (Input[Pos] == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  ++Pos;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Input.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek2() == '/') {
      while (Pos < Input.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek2() == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Input.size()) {
        if (peek() == '*' && peek2() == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

static const std::map<std::string, TokenKind> &keywordTable() {
  static const std::map<std::string, TokenKind> Table = {
      {"decl", TokenKind::KwDecl},     {"begin", TokenKind::KwBegin},
      {"end", TokenKind::KwEnd},       {"skip", TokenKind::KwSkip},
      {"call", TokenKind::KwCall},     {"return", TokenKind::KwReturn},
      {"if", TokenKind::KwIf},         {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},     {"fi", TokenKind::KwFi},
      {"while", TokenKind::KwWhile},   {"do", TokenKind::KwDo},
      {"od", TokenKind::KwOd},         {"assume", TokenKind::KwAssume},
      {"dead", TokenKind::KwDead},
      {"goto", TokenKind::KwGoto},     {"shared", TokenKind::KwShared},
      {"thread", TokenKind::KwThread}, {"T", TokenKind::KwTrue},
      {"F", TokenKind::KwFalse},
  };
  return Table;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  Token Tok;
  Tok.Loc = loc();
  if (Pos >= Input.size()) {
    Tok.Kind = TokenKind::Eof;
    return Tok;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (Pos < Input.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_')) {
      Text += peek();
      advance();
    }
    auto It = keywordTable().find(Text);
    Tok.Kind = It != keywordTable().end() ? It->second : TokenKind::Identifier;
    Tok.Text = std::move(Text);
    return Tok;
  }

  advance();
  switch (C) {
  case ',':
    Tok.Kind = TokenKind::Comma;
    return Tok;
  case ';':
    Tok.Kind = TokenKind::Semicolon;
    return Tok;
  case '(':
    Tok.Kind = TokenKind::LParen;
    return Tok;
  case ')':
    Tok.Kind = TokenKind::RParen;
    return Tok;
  case '*':
    Tok.Kind = TokenKind::Star;
    return Tok;
  case '!':
    Tok.Kind = TokenKind::Bang;
    return Tok;
  case '&':
    Tok.Kind = TokenKind::Amp;
    return Tok;
  case '|':
    Tok.Kind = TokenKind::Pipe;
    return Tok;
  case ':':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::Assign;
    } else {
      Tok.Kind = TokenKind::Colon;
    }
    return Tok;
  default:
    Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
    Tok.Kind = TokenKind::Error;
    return Tok;
  }
}

const char *Lexer::spelling(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "<eof>";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwDecl:
    return "decl";
  case TokenKind::KwBegin:
    return "begin";
  case TokenKind::KwEnd:
    return "end";
  case TokenKind::KwSkip:
    return "skip";
  case TokenKind::KwCall:
    return "call";
  case TokenKind::KwReturn:
    return "return";
  case TokenKind::KwIf:
    return "if";
  case TokenKind::KwThen:
    return "then";
  case TokenKind::KwElse:
    return "else";
  case TokenKind::KwFi:
    return "fi";
  case TokenKind::KwWhile:
    return "while";
  case TokenKind::KwDo:
    return "do";
  case TokenKind::KwOd:
    return "od";
  case TokenKind::KwAssume:
    return "assume";
  case TokenKind::KwDead:
    return "dead";
  case TokenKind::KwGoto:
    return "goto";
  case TokenKind::KwShared:
    return "shared";
  case TokenKind::KwThread:
    return "thread";
  case TokenKind::KwTrue:
    return "T";
  case TokenKind::KwFalse:
    return "F";
  case TokenKind::Assign:
    return ":=";
  case TokenKind::Comma:
    return ",";
  case TokenKind::Semicolon:
    return ";";
  case TokenKind::Colon:
    return ":";
  case TokenKind::LParen:
    return "(";
  case TokenKind::RParen:
    return ")";
  case TokenKind::Star:
    return "*";
  case TokenKind::Bang:
    return "!";
  case TokenKind::Amp:
    return "&";
  case TokenKind::Pipe:
    return "|";
  case TokenKind::Error:
    return "<error>";
  }
  return "<unknown>";
}
