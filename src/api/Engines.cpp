//===- Engines.cpp - The built-in engines behind the facade ---------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight built-in `Engine` implementations, each a thin adapter from
/// `SolverOptions`/`CompiledQuery` to one of the underlying solvers:
///
///   summary, ef, ef-split, ef-opt — the paper's fixed-point algorithms
///     (Sections 4.1–4.3), solved by the calculus evaluator,
///   moped, bebop                  — the natively-coded Figure-2 baselines,
///   conc                          — Section 5's bounded context-switching
///     fixed-point,
///   lal-reps                      — the eager Lal–Reps sequentialization
///     run as a real engine: transform, solve the sequential program with
///     ef-split, and map the result back.
///
/// The fixed-point engines additionally implement `Engine::open`: their
/// session objects wrap `reach::SeqSession` / `conc::ConcSession`, which
/// persist the compiled calculus, BDD manager, and solved summary rounds
/// across queries. The natively-coded baselines and the (target-dependent)
/// Lal–Reps transformation keep the null default, so `SolverSession` falls
/// back to fresh per-query solves for them.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include "concurrent/ConcReach.h"
#include "concurrent/LalReps.h"
#include "reach/Baselines.h"
#include "reach/SeqReach.h"
#include "reach/Witness.h"
#include "support/Timer.h"

#include <memory>

using namespace getafix;
using namespace getafix::api;

namespace {

//===----------------------------------------------------------------------===//
// Option / result mapping shared by the one-shot and session paths
//===----------------------------------------------------------------------===//

/// Per-solve governor wiring: when any governance knob of \p Opts is set,
/// arms `Opts.Governor` (or an internal governor living in this scope)
/// with the limits and exposes the pointer for the engine's native
/// options. Governors are one-shot, so one scope serves exactly one solve
/// attempt; the native solvers uninstall the raw pointer from their
/// managers before returning, so the scope may die right after.
class GovernorScope {
public:
  explicit GovernorScope(const SolverOptions &Opts) {
    if (!Opts.governed())
      return;
    G = Opts.Governor ? Opts.Governor : &Local;
    if (Opts.TimeoutMs != 0)
      G->setDeadlineIn(static_cast<int64_t>(Opts.TimeoutMs));
    if (Opts.NodeBudget != 0)
      G->setNodeBudget(Opts.NodeBudget);
    if (Opts.CancelFlag)
      G->setCancelFlag(Opts.CancelFlag);
  }
  GovernorScope(const GovernorScope &) = delete;
  GovernorScope &operator=(const GovernorScope &) = delete;

  /// Null when the solve is ungoverned.
  support::ResourceGovernor *get() { return G; }

private:
  support::ResourceGovernor Local;
  support::ResourceGovernor *G = nullptr;
};

/// Maps a tripped native-result limit onto the facade status + error
/// text. No-op for `ResourceLimit::None`.
void applyLimit(SolveResult &Out, support::ResourceLimit L) {
  if (L == support::ResourceLimit::None)
    return;
  Out.Status = statusForLimit(L);
  switch (L) {
  case support::ResourceLimit::Deadline:
    Out.Error = "solve stopped: wall-clock deadline exceeded";
    break;
  case support::ResourceLimit::NodeBudget:
    Out.Error = "solve stopped: BDD node budget exhausted";
    break;
  case support::ResourceLimit::Cancelled:
    Out.Error = "solve stopped: cancelled";
    break;
  case support::ResourceLimit::None:
    break;
  }
}

reach::SeqOptions seqOptionsFor(reach::SeqAlgorithm Alg,
                                const SolverOptions &Opts) {
  reach::SeqOptions SO;
  SO.Alg = Alg;
  SO.Strategy = Opts.Strategy;
  SO.EarlyStop = Opts.EarlyStop;
  SO.MaxIterations = Opts.MaxIterations;
  SO.CacheBits = Opts.CacheBits;
  SO.GcThreshold = Opts.GcThreshold;
  SO.FrontierCofactor = Opts.FrontierCofactor;
  SO.ReuseSolvedState = Opts.SessionReuse;
  SO.Threads = Opts.Threads;
  SO.DisjunctParallelThreshold = Opts.DisjunctParallelThreshold;
  SO.RingKeyframeInterval = Opts.RingKeyframeInterval;
  SO.MonolithicSummary = Opts.MonolithicSummary;
  return SO;
}

void fillFromSeq(SolveResult &Out, reach::SeqResult &&R) {
  applyLimit(Out, R.Limit);
  Out.Reachable = R.Reachable;
  Out.HitIterationLimit = R.HitIterationLimit;
  Out.Iterations = R.Iterations;
  Out.DeltaRounds = R.DeltaRounds;
  Out.SummaryNodes = R.SummaryNodes;
  Out.PeakLiveNodes = R.PeakLiveNodes;
  Out.BddNodesCreated = R.BddNodesCreated;
  Out.BddCacheLookups = R.BddCacheLookups;
  Out.BddCacheHits = R.BddCacheHits;
  Out.Bdd = R.Bdd;
  Out.Relations = std::move(R.Relations);
  Out.Cofactor = R.Cofactor;
  Out.SummariesReused = R.SummariesReused;
  Out.SummariesRecomputed = R.SummariesRecomputed;
  Out.SccsSolvedParallel = R.SccsSolvedParallel;
  Out.CondensationWidth = R.CondensationWidth;
  Out.SummaryRelations = R.SummaryRelations;
  Out.RoundsParallel = R.RoundsParallel;
  Out.DisjunctsParallel = R.DisjunctsParallel;
  Out.ImportedNodes = R.ImportedNodes;
  Out.Seconds = R.Seconds;
}

void fillFromWitness(SolveResult &Out, const bp::ProgramCfg &Cfg,
                     reach::WitnessResult &&W, double Seconds) {
  applyLimit(Out, W.Limit);
  Out.Reachable = W.Reachable;
  Out.HitIterationLimit = W.HitIterationLimit;
  Out.Iterations = W.Iterations;
  Out.DeltaRounds = W.DeltaRounds;
  Out.SummaryNodes = W.SummaryNodes;
  Out.PeakLiveNodes = W.PeakLiveNodes;
  Out.BddNodesCreated = W.BddNodesCreated;
  Out.BddCacheLookups = W.BddCacheLookups;
  Out.BddCacheHits = W.BddCacheHits;
  Out.Bdd = W.Bdd;
  Out.Relations = std::move(W.Relations);
  Out.Seconds = Seconds;
  if (W.Reachable) {
    Out.HasWitness = true;
    Out.Witness = std::move(W.Steps);
    Out.WitnessText = reach::formatWitness(Cfg, Out.Witness);
  }
}

//===----------------------------------------------------------------------===//
// Sequential fixed-point engines (Sections 4.1–4.3)
//===----------------------------------------------------------------------===//

/// Session adapter over `reach::SeqSession` (+ a lazy witness session it
/// creates internally): one per `Solver::open` on a sequential fixed-point
/// engine.
class SeqEngineSession : public EngineSession {
public:
  SeqEngineSession(const bp::ProgramCfg &Cfg, reach::SeqOptions SO)
      : Cfg(Cfg), Session(Cfg, SO) {}

  SolveResult solve(const CompiledQuery &Q) override {
    SolveResult Out;
    if (Q.wantWitness()) {
      Timer T;
      reach::WitnessResult W = Session.solveWithWitness(Q.procId(), Q.pc());
      fillFromWitness(Out, Cfg, std::move(W), T.seconds());
      return Out;
    }
    fillFromSeq(Out, Session.solve(Q.procId(), Q.pc()));
    return Out;
  }

  bool answersFromState(const CompiledQuery &Q) override {
    return Session.answersFromState(Q.procId(), Q.pc(), Q.wantWitness());
  }

  void setGovernor(support::ResourceGovernor *G) override {
    Session.setGovernor(G);
  }

  void clearComputedCache() override { Session.clearComputedCache(); }

  size_t liveNodes() const override { return Session.liveNodes(); }
  size_t peakLiveNodes() const override { return Session.peakLiveNodes(); }
  size_t memoryFootprint() const override {
    return Session.memoryFootprint();
  }

private:
  const bp::ProgramCfg &Cfg;
  reach::SeqSession Session;
};

class SeqFixpointEngine : public Engine {
public:
  SeqFixpointEngine(const char *Name, const char *Desc,
                    reach::SeqAlgorithm Alg)
      : Name(Name), Desc(Desc), Alg(Alg) {}

  const char *name() const override { return Name; }
  const char *description() const override { return Desc; }
  bool handlesConcurrent() const override { return false; }
  bool supportsWitness() const override { return true; }

  SolveResult run(const CompiledQuery &Q,
                  const SolverOptions &Opts) const override {
    reach::SeqOptions SO = seqOptionsFor(Alg, Opts);
    GovernorScope GS(Opts);
    SO.Governor = GS.get();

    SolveResult Out;
    if (Q.wantWitness()) {
      Timer T;
      reach::WitnessResult W =
          reach::checkReachabilityWithWitness(Q.cfg(), Q.procId(), Q.pc(),
                                              SO);
      fillFromWitness(Out, Q.cfg(), std::move(W), T.seconds());
      return Out;
    }

    fillFromSeq(Out, reach::checkReachability(Q.cfg(), Q.procId(), Q.pc(),
                                              SO));
    return Out;
  }

  std::unique_ptr<EngineSession>
  open(const CompiledQuery &Program,
       const SolverOptions &Opts) const override {
    return std::make_unique<SeqEngineSession>(Program.cfg(),
                                              seqOptionsFor(Alg, Opts));
  }

  std::string formulaText(const CompiledQuery &Q,
                          const SolverOptions &Opts) const override {
    return reach::formulaText(Q.cfg(), seqOptionsFor(Alg, Opts));
  }

private:
  const char *Name;
  const char *Desc;
  reach::SeqAlgorithm Alg;
};

//===----------------------------------------------------------------------===//
// Baseline engines (Figure 2's comparison columns)
//===----------------------------------------------------------------------===//

class MopedEngine : public Engine {
public:
  const char *name() const override { return "moped"; }
  const char *description() const override {
    return "natively coded symbolic post* saturation (Moped stand-in)";
  }
  bool handlesConcurrent() const override { return false; }

  SolveResult run(const CompiledQuery &Q,
                  const SolverOptions &Opts) const override {
    reach::BaselineOptions BO;
    BO.EarlyStop = Opts.EarlyStop;
    BO.CacheBits = Opts.CacheBits;
    BO.GcThreshold = Opts.GcThreshold;
    GovernorScope GS(Opts);
    BO.Governor = GS.get();
    reach::BaselineResult R =
        reach::mopedPostStar(Q.cfg(), Q.procId(), Q.pc(), BO);
    SolveResult Out;
    applyLimit(Out, R.Limit);
    Out.Reachable = R.Reachable;
    Out.Iterations = R.Iterations;
    Out.SummaryNodes = R.SummaryNodes;
    Out.PeakLiveNodes = R.PeakLiveNodes;
    Out.BddNodesCreated = R.BddNodesCreated;
    Out.BddCacheLookups = R.BddCacheLookups;
    Out.BddCacheHits = R.BddCacheHits;
    Out.Bdd = R.Bdd;
    Out.Seconds = R.Seconds;
    return Out;
  }
};

class BebopEngine : public Engine {
public:
  const char *name() const override { return "bebop"; }
  const char *description() const override {
    return "explicit path-edge/summary-edge tabulation (Bebop stand-in)";
  }
  bool handlesConcurrent() const override { return false; }

  SolveResult run(const CompiledQuery &Q,
                  const SolverOptions &Opts) const override {
    // Enumerative: no BDD knobs apply, but the deadline/cancel limits do.
    reach::BaselineOptions BO;
    GovernorScope GS(Opts);
    BO.Governor = GS.get();
    reach::BaselineResult R =
        reach::bebopTabulate(Q.cfg(), Q.procId(), Q.pc(), BO);
    SolveResult Out;
    applyLimit(Out, R.Limit);
    Out.Reachable = R.Reachable;
    Out.Iterations = R.Iterations;
    Out.Seconds = R.Seconds;
    // PeakLiveNodes stays 0: bebop never touches the BDD manager.
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Concurrent engines (Section 5)
//===----------------------------------------------------------------------===//

/// `ContextBound`/`Rounds` → the bound k an engine should analyze.
unsigned effectiveContextBound(const SolverOptions &Opts,
                               unsigned NumThreads) {
  if (Opts.Rounds != 0)
    return conc::contextSwitchesForRounds(Opts.Rounds, NumThreads);
  return Opts.ContextBound;
}

conc::ConcOptions concOptionsFor(const SolverOptions &Opts,
                                 unsigned NumThreads) {
  conc::ConcOptions CO;
  CO.MaxContextSwitches = effectiveContextBound(Opts, NumThreads);
  CO.RoundRobin = Opts.RoundRobin || Opts.Rounds != 0;
  CO.Strategy = Opts.Strategy;
  CO.EarlyStop = Opts.EarlyStop;
  CO.MaxIterations = Opts.MaxIterations;
  CO.CacheBits = Opts.CacheBits;
  CO.GcThreshold = Opts.GcThreshold;
  CO.FrontierCofactor = Opts.FrontierCofactor;
  CO.ReuseSolvedState = Opts.SessionReuse;
  CO.Threads = Opts.Threads;
  CO.DisjunctParallelThreshold = Opts.DisjunctParallelThreshold;
  CO.RingKeyframeInterval = Opts.RingKeyframeInterval;
  return CO;
}

void fillFromConc(SolveResult &Out, conc::ConcResult &&R) {
  applyLimit(Out, R.Limit);
  Out.Reachable = R.Reachable;
  Out.HitIterationLimit = R.HitIterationLimit;
  Out.Iterations = R.Iterations;
  Out.DeltaRounds = R.DeltaRounds;
  Out.SummaryNodes = R.ReachNodes;
  Out.PeakLiveNodes = R.PeakLiveNodes;
  Out.BddNodesCreated = R.BddNodesCreated;
  Out.BddCacheLookups = R.BddCacheLookups;
  Out.BddCacheHits = R.BddCacheHits;
  Out.Bdd = R.Bdd;
  Out.Relations = std::move(R.Relations);
  Out.Cofactor = R.Cofactor;
  Out.SummariesReused = R.SummariesReused;
  Out.SummariesRecomputed = R.SummariesRecomputed;
  Out.SccsSolvedParallel = R.SccsSolvedParallel;
  Out.CondensationWidth = R.CondensationWidth;
  Out.SummaryRelations = R.SummaryRelations;
  Out.RoundsParallel = R.RoundsParallel;
  Out.DisjunctsParallel = R.DisjunctsParallel;
  Out.ImportedNodes = R.ImportedNodes;
  Out.ReachStates = R.ReachStates;
  Out.Seconds = R.Seconds;
}

/// Session adapter over `conc::ConcSession`.
class ConcEngineSession : public EngineSession {
public:
  ConcEngineSession(const CompiledQuery &Program, conc::ConcOptions CO)
      : Session(Program.concurrent(), Program.threadCfgs(), CO) {}

  SolveResult solve(const CompiledQuery &Q) override {
    SolveResult Out;
    fillFromConc(Out, Session.solve(Q.thread(), Q.procId(), Q.pc()));
    return Out;
  }

  bool answersFromState(const CompiledQuery &Q) override {
    return Session.answersFromState(Q.thread(), Q.procId(), Q.pc());
  }

  void setGovernor(support::ResourceGovernor *G) override {
    Session.setGovernor(G);
  }

  void clearComputedCache() override { Session.clearComputedCache(); }

  size_t liveNodes() const override { return Session.liveNodes(); }
  size_t peakLiveNodes() const override { return Session.peakLiveNodes(); }
  size_t memoryFootprint() const override {
    return Session.memoryFootprint();
  }

private:
  conc::ConcSession Session;
};

class ConcFixpointEngine : public Engine {
public:
  const char *name() const override { return "conc"; }
  const char *description() const override {
    return "bounded context-switching fixed-point (Section 5, k+1 global "
           "copies)";
  }
  bool handlesConcurrent() const override { return true; }

  SolveResult run(const CompiledQuery &Q,
                  const SolverOptions &Opts) const override {
    conc::ConcOptions CO =
        concOptionsFor(Opts, Q.concurrent().numThreads());
    GovernorScope GS(Opts);
    CO.Governor = GS.get();
    SolveResult Out;
    fillFromConc(Out,
                 conc::checkConcReachability(Q.concurrent(), Q.threadCfgs(),
                                             Q.thread(), Q.procId(), Q.pc(),
                                             CO));
    return Out;
  }

  std::unique_ptr<EngineSession>
  open(const CompiledQuery &Program,
       const SolverOptions &Opts) const override {
    return std::make_unique<ConcEngineSession>(
        Program, concOptionsFor(Opts, Program.concurrent().numThreads()));
  }
};

class LalRepsEngine : public Engine {
public:
  const char *name() const override { return "lal-reps"; }
  const char *description() const override {
    return "eager Lal-Reps sequentialization, solved with ef-split "
           "(O(k) global copies)";
  }
  bool handlesConcurrent() const override { return true; }

  // No session mode: the sequentialization rewrites the program around the
  // *target* label, so there is no target-independent solver state to
  // persist — `SolverSession` falls back to fresh per-query solves.

  SolveResult run(const CompiledQuery &Q,
                  const SolverOptions &Opts) const override {
    SolveResult Out;
    // The sequentialization rewrites the program around a *label*; a point
    // query works when some label names its point.
    std::string Label = Q.label();
    if (Label.empty()) {
      const bp::ProcCfg &Proc = Q.threadCfgs()[Q.thread()].Procs[Q.procId()];
      for (const auto &[Name, Pc] : Proc.LabelPcs)
        if (Pc == Q.pc()) {
          Label = Name;
          break;
        }
      if (Label.empty()) {
        Out.Status = SolveStatus::BadQuery;
        Out.Error = "lal-reps needs a labelled target (the "
                    "sequentialization rewrites the program around the "
                    "label), but the queried point carries no label";
        return Out;
      }
    }

    Timer T;
    unsigned K = effectiveContextBound(Opts, Q.concurrent().numThreads());
    DiagnosticEngine Diags;
    std::unique_ptr<bp::Program> Seq =
        conc::lalRepsSequentialize(Q.concurrent(), Label, K, Diags);
    if (!Seq) {
      Out.Status = SolveStatus::BadQuery;
      Out.Error = "lal-reps sequentialization failed:\n" + Diags.str();
      return Out;
    }
    bp::ProgramCfg SeqCfg = bp::buildCfg(*Seq);

    reach::SeqOptions SO =
        seqOptionsFor(reach::SeqAlgorithm::EntryForwardSplit, Opts);
    // Always solve the transformed program monolithically. The eager
    // reduction multiplies the globals by O(k) copies, so its reachable
    // entries are a vanishing fraction of all entries — the per-procedure
    // split's all-entries seeds forfeit entry-forward pruning and slow
    // these solves ~16x (LalRepsTest seeds: 16s -> 260s). Entry-pruned
    // split relations are not an option either: entries flow caller ->
    // callee while summaries flow callee -> caller, so pruned groups
    // collapse into one condensation SCC the evaluator would solve by
    // nested re-evaluation.
    SO.MonolithicSummary = true;
    // The (fast, purely syntactic) sequentialization above is ungoverned;
    // the limits govern the solve of the transformed program.
    GovernorScope GS(Opts);
    SO.Governor = GS.get();
    reach::SeqResult R =
        reach::checkReachabilityOfLabel(SeqCfg, conc::lalRepsGoalLabel(), SO);

    fillFromSeq(Out, std::move(R));
    Out.TransformedGlobals = Seq->numGlobals();
    Out.Seconds = T.seconds(); // Transform + solve: the cost being compared.
    return Out;
  }
};

} // namespace

void api::detail::registerBuiltinEngines(EngineRegistry &R) {
  R.add(std::make_unique<SeqFixpointEngine>(
      "summary", "summaries from all entries (Section 4.1)",
      reach::SeqAlgorithm::SummarySimple));
  R.add(std::make_unique<SeqFixpointEngine>(
      "ef", "entry-forward summaries, unsplit return clause (Section 4.2)",
      reach::SeqAlgorithm::EntryForward));
  R.add(std::make_unique<SeqFixpointEngine>(
      "ef-split", "entry-forward with the split return clause (Appendix)",
      reach::SeqAlgorithm::EntryForwardSplit));
  R.add(std::make_unique<SeqFixpointEngine>(
      "ef-opt", "frontier-restricted entry-forward (Section 4.3)",
      reach::SeqAlgorithm::EntryForwardOpt));
  R.add(std::make_unique<MopedEngine>());
  R.add(std::make_unique<BebopEngine>());
  R.add(std::make_unique<ConcFixpointEngine>());
  R.add(std::make_unique<LalRepsEngine>());
}
