//===- bench_ablation.cpp - Design-choice ablations ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Ablates the paper's engineering claims on terminator-style workloads:
//   - Section 4.2: splitting the Return relation (ReturnA/ReturnB) versus
//     conjoining the two summary BDDs directly,
//   - Section 4.3: the Relevant-PC frontier restriction versus plain
//     entry-forward iteration,
//   - solver-level early termination on positive instances,
//   - the evaluator's semi-naive (delta) core versus the paper's literal
//     naive semantics, on the terminator and bluetooth suites,
//   - the Coudert–Madre constrain-based frontier product versus the plain
//     relational product (same semi-naive core, knob off).
//
// Pass --smoke to shrink every workload for a seconds-long CI run,
// --cache-bits n to size the BDD computed cache for every solve, and
// --json FILE to additionally record every row (verdict, rounds, node and
// peak counters) as a BENCH_*.json report — CI runs the smoke at two cache
// sizes and fails on any verdict drift between the reports.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

#include <cstring>

using namespace getafix;
using namespace getafix::bench;

namespace {

/// Knobs shared by every solve in this driver.
unsigned CacheBits = 18;
JsonReport Report;
bool WantJson = false;

void recordRow(const char *Section, const char *Case_, const char *Variant,
               const EngineRow &R) {
  if (!WantJson)
    return;
  JsonReport::Row Row;
  Row.field("section", Section)
      .field("case", Case_)
      .field("variant", Variant)
      .field("reachable", R.Reachable)
      .field("iterations", R.Iterations)
      .field("delta_rounds", R.DeltaRounds)
      .field("nodes_created", R.NodesCreated)
      .field("peak_live_nodes", R.PeakLiveNodes)
      .field("cache_hit_rate", R.CacheHitRate)
      .field("seconds", R.Seconds);
  Report.add(Row);
}

/// One naive-vs-semi-naive comparison row. NodesCreated is the BDD-op
/// proxy the acceptance criterion counts; both rows must agree on the
/// verdict and the number of Tarski rounds (the delta core computes the
/// identical per-round sequence, just cheaper).
void printStrategyRow(const char *Name, const EngineRow &Naive,
                      const EngineRow &Semi) {
  if (Naive.Reachable != Semi.Reachable ||
      Naive.Iterations != Semi.Iterations) {
    std::fprintf(stderr,
                 "%s: strategy ablation DISAGREES (verdict %d/%d, "
                 "rounds %llu/%llu)\n",
                 Name, Naive.Reachable, Semi.Reachable,
                 (unsigned long long)Naive.Iterations,
                 (unsigned long long)Semi.Iterations);
    std::exit(1);
  }
  double NodeRatio = Semi.NodesCreated
                         ? double(Naive.NodesCreated) /
                               double(Semi.NodesCreated)
                         : 0.0;
  std::printf("%-26s %9.3fs %9.3fs %11llu %11llu %7.2fx %6llu/%llu\n",
              Name, Naive.Seconds, Semi.Seconds,
              (unsigned long long)Naive.NodesCreated,
              (unsigned long long)Semi.NodesCreated, NodeRatio,
              (unsigned long long)Semi.DeltaRounds,
              (unsigned long long)Semi.Iterations);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(Argv[I], "--cache-bits") == 0 && I + 1 < Argc) {
      int Bits = std::atoi(Argv[++I]);
      if (Bits < 2 || Bits > 30) {
        std::fprintf(stderr, "--cache-bits must be in [2, 30]\n");
        return 2;
      }
      CacheBits = unsigned(Bits);
    } else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
      WantJson = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ablation [--smoke] [--cache-bits n] "
                   "[--json FILE]\n");
      return 2;
    }
  }
  std::printf("=== Ablations (Sections 4.2 / 4.3) ===\n");
  std::printf("%-24s %10s %10s %10s %12s\n", "case", "EF-unsplit",
              "EF-split", "EF-opt", "simple-4.1");

  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);

    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    EngineRow Unsplit = runEngine(Parsed.Cfg, W.TargetLabel, "ef", Opts);
    EngineRow Split = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt", Opts);
    EngineRow Simple = runEngine(Parsed.Cfg, W.TargetLabel, "summary", Opts);
    std::printf("%-24s %9.3fs %9.3fs %9.3fs %11.3fs\n", W.Name.c_str(),
                Unsplit.Seconds, Split.Seconds, Opt.Seconds,
                Simple.Seconds);
    recordRow("algorithms", W.Name.c_str(), "ef", Unsplit);
    recordRow("algorithms", W.Name.c_str(), "ef-split", Split);
    recordRow("algorithms", W.Name.c_str(), "ef-opt", Opt);
    recordRow("algorithms", W.Name.c_str(), "summary", Simple);
  }

  std::printf("\n--- early termination (positive driver instances) ---\n");
  std::printf("%-24s %12s %12s\n", "case", "early-stop", "full-fixpoint");
  for (uint64_t Seed : Smoke ? std::vector<unsigned>{7u}
                             : std::vector<unsigned>{7u, 8u, 9u}) {
    gen::DriverParams P;
    P.NumProcs = Smoke ? 12 : 24;
    P.StmtsPerProc = Smoke ? 10 : 14;
    P.Reachable = true;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    EngineRow Fast = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    Opts.EarlyStop = false;
    EngineRow Full = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    std::printf("%-24s %11.3fs %11.3fs\n", W.Name.c_str(), Fast.Seconds,
                Full.Seconds);
    recordRow("early-stop", W.Name.c_str(), "early", Fast);
    recordRow("early-stop", W.Name.c_str(), "full", Full);
  }

  // Naive vs semi-naive: the delta core must agree on verdict and round
  // count while allocating fewer BDD nodes and finishing sooner. The
  // terminator rows are negative instances (a full fixpoint is forced);
  // the bluetooth rows are Figure-3 configurations of the concurrent
  // engine at a bound where the Reach system iterates long enough for the
  // per-round frontier to shrink well below the accumulated relation.
  std::printf("\n--- evaluation strategy (naive vs semi-naive) ---\n");
  std::printf("%-26s %10s %10s %11s %11s %8s %8s\n", "case", "naive",
              "semi", "nodes-nv", "nodes-sn", "ratio", "delta/it");
  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    Opts.Strategy = fpc::EvalStrategy::Naive;
    EngineRow Naive = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    Opts.Strategy = fpc::EvalStrategy::SemiNaive;
    EngineRow Semi = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    printStrategyRow(W.Name.c_str(), Naive, Semi);
    recordRow("strategy", W.Name.c_str(), "naive", Naive);
    recordRow("strategy", W.Name.c_str(), "semi-naive", Semi);
  }
  {
    // (1,1,4) is the light two-thread row; (2,2,4) is the heavy Figure-3
    // configuration whose rounds overflow the computed cache — the regime
    // where the narrow (minimized-difference) frontier pays off.
    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false; // Figure 3 reports the full reachable set.
      Opts.Strategy = fpc::EvalStrategy::Naive;
      EngineRow Naive = runConcEngine(P, "ERR", "conc", Opts);
      Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      EngineRow Semi = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      printStrategyRow(Name, Naive, Semi);
      recordRow("strategy", Name, "naive", Naive);
      recordRow("strategy", Name, "semi-naive", Semi);
    }
  }

  // Constrain-based frontier product: same semi-naive core with the
  // Coudert–Madre care-set minimization on (the default) versus off. This
  // is the measured ablation gating the evaluator's nonlinear-disjunct
  // widening: with constrain off, bilinear delta passes are a loss and
  // MaxDeltaOccurrences stays 1; with it on, they tip profitable. Both
  // variants must agree on verdict, rounds, and (bit-identical products)
  // the final summary size.
  std::printf("\n--- frontier product (constrain vs plain) ---\n");
  std::printf("%-26s %10s %10s %11s %11s %10s %10s\n", "case", "plain",
              "constr", "nodes-pl", "nodes-co", "peak-pl", "peak-co");
  {
    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false;
      Opts.ConstrainFrontier = false;
      EngineRow Plain = runConcEngine(P, "ERR", "conc", Opts);
      Opts.ConstrainFrontier = true;
      EngineRow Constr = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      if (Plain.Reachable != Constr.Reachable ||
          Plain.Iterations != Constr.Iterations ||
          Plain.Nodes != Constr.Nodes) {
        std::fprintf(stderr, "%s: constrain ablation DISAGREES\n", Name);
        std::exit(1);
      }
      std::printf("%-26s %9.3fs %9.3fs %11llu %11llu %10zu %10zu\n", Name,
                  Plain.Seconds, Constr.Seconds,
                  (unsigned long long)Plain.NodesCreated,
                  (unsigned long long)Constr.NodesCreated,
                  Plain.PeakLiveNodes, Constr.PeakLiveNodes);
      recordRow("constrain", Name, "plain", Plain);
      recordRow("constrain", Name, "constrain", Constr);
    }
    for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                               : std::vector<unsigned>{5u, 6u}) {
      gen::TerminatorParams P;
      P.CounterBits = Bits;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ConstrainFrontier = false;
      EngineRow Plain =
          runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      Opts.ConstrainFrontier = true;
      EngineRow Constr =
          runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      if (Plain.Reachable != Constr.Reachable ||
          Plain.Iterations != Constr.Iterations ||
          Plain.Nodes != Constr.Nodes) {
        std::fprintf(stderr, "%s: constrain ablation DISAGREES\n",
                     W.Name.c_str());
        std::exit(1);
      }
      std::printf("%-26s %9.3fs %9.3fs %11llu %11llu %10zu %10zu\n",
                  W.Name.c_str(), Plain.Seconds, Constr.Seconds,
                  (unsigned long long)Plain.NodesCreated,
                  (unsigned long long)Constr.NodesCreated,
                  Plain.PeakLiveNodes, Constr.PeakLiveNodes);
      recordRow("constrain", W.Name.c_str(), "plain", Plain);
      recordRow("constrain", W.Name.c_str(), "constrain", Constr);
    }
  }

  if (WantJson)
    Report.write(JsonPath);
  return 0;
}
