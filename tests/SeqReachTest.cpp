//===- SeqReachTest.cpp - Sequential reachability engine tests ------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests: every symbolic engine and both baselines must agree
/// with the explicit tabulation oracle on the regression suite and on
/// randomly generated driver-shaped programs. All engines are dispatched
/// by registry name through the `Solver` facade, so this is the main
/// correctness net for the whole pipeline (parser -> CFG -> encoder ->
/// calculus -> solver) *and* for the facade's dispatch.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "gen/Workloads.h"
#include "interp/SummaryOracle.h"
#include "reach/SeqReach.h"

#include <gtest/gtest.h>

using namespace getafix;

namespace {

bp::ProgramCfg parseCfg(const std::string &Src,
                        std::unique_ptr<bp::Program> &Keep) {
  DiagnosticEngine Diags;
  Keep = bp::parseProgram(Src, Diags);
  EXPECT_TRUE(Keep != nullptr) << Diags.str() << "\nsource:\n" << Src;
  if (!Keep) // Keep the runner alive; the EXPECT above already failed.
    Keep = bp::parseProgram("main() begin end", Diags);
  return bp::buildCfg(*Keep);
}

/// The four fixed-point engines of Sections 4.1–4.3, by registry name.
const char *AllEngines[] = {"summary", "ef", "ef-split", "ef-opt"};

SolveResult solveVia(const bp::ProgramCfg &Cfg, const std::string &Label,
                     const char *Engine, bool EarlyStop = true) {
  SolverOptions Opts;
  Opts.Engine = Engine;
  Opts.EarlyStop = EarlyStop;
  return Solver::solve(Query::fromCfg(Cfg).target(Label), Opts);
}

/// Regression workload x engine.
class RegressionTest
    : public ::testing::TestWithParam<std::tuple<size_t, const char *>> {};

/// Seed for random-program differential testing.
class DriverDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RegressionTest, MatchesExpectation) {
  auto [Index, Engine] = GetParam();
  gen::Workload W = gen::regressionSuite()[Index];
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);

  SolveResult R = solveVia(Cfg, W.TargetLabel, Engine);
  ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Error;
  EXPECT_EQ(R.Reachable, W.ExpectReachable) << W.Name << " via " << Engine;

  // The oracle must concur (guards the expectations themselves).
  interp::OracleResult O =
      interp::summaryReachabilityOfLabel(Cfg, W.TargetLabel);
  EXPECT_EQ(O.Reachable, W.ExpectReachable) << W.Name << " (oracle)";
}

namespace {

std::string regressionCaseName(
    const ::testing::TestParamInfo<std::tuple<size_t, const char *>>
        &Info) {
  size_t Index = std::get<0>(Info.param);
  std::string Name = gen::regressionSuite()[Index].Name + "_" +
                     std::get<1>(Info.param);
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Suite, RegressionTest,
    ::testing::Combine(::testing::Range<size_t>(
                           0, gen::regressionSuite().size()),
                       ::testing::ValuesIn(AllEngines)),
    regressionCaseName);

TEST(RegressionBaselinesTest, BaselinesMatchExpectations) {
  for (const gen::Workload &W : gen::regressionSuite()) {
    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
    EXPECT_EQ(solveVia(Cfg, W.TargetLabel, "moped").Reachable,
              W.ExpectReachable)
        << W.Name << " (moped)";
    EXPECT_EQ(solveVia(Cfg, W.TargetLabel, "bebop").Reachable,
              W.ExpectReachable)
        << W.Name << " (bebop)";
  }
}

TEST_P(DriverDifferentialTest, AllEnginesAgreeOnRandomPrograms) {
  uint64_t Seed = GetParam();
  for (bool Reachable : {false, true}) {
    gen::DriverParams P;
    P.NumProcs = 4 + Seed % 3;
    P.NumGlobals = 3;
    P.LocalsPerProc = 3;
    P.StmtsPerProc = 6;
    P.Reachable = Reachable;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);

    std::unique_ptr<bp::Program> Prog;
    bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
    interp::OracleResult O =
        interp::summaryReachabilityOfLabel(Cfg, W.TargetLabel);

    for (const char *Engine : AllEngines) {
      SolveResult R = solveVia(Cfg, W.TargetLabel, Engine);
      ASSERT_TRUE(R.ok()) << R.Error;
      EXPECT_EQ(R.Reachable, O.Reachable)
          << W.Name << " disagreement: " << Engine << "\n" << W.Source;
    }
    EXPECT_EQ(solveVia(Cfg, W.TargetLabel, "moped").Reachable, O.Reachable)
        << W.Name << " (moped)\n" << W.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(SeqReachTest, EarlyStopAndFullSearchAgree) {
  gen::DriverParams P;
  P.NumProcs = 5;
  P.Reachable = true;
  P.Seed = 42;
  gen::Workload W = gen::driverProgram(P);
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);

  EXPECT_EQ(solveVia(Cfg, "ERR", "ef-split", /*EarlyStop=*/true).Reachable,
            solveVia(Cfg, "ERR", "ef-split", /*EarlyStop=*/false).Reachable);
}

TEST(SeqReachTest, MissingLabelReported) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg("main() begin skip; end", Prog);
  SolveResult R = solveVia(Cfg, "NOPE", "ef-opt");
  EXPECT_EQ(R.Status, SolveStatus::TargetNotFound);
}

TEST(SeqReachTest, FormulaTextShowsAlgorithmStructure) {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg("main() begin skip; end", Prog);
  std::string EF =
      reach::formulaText(Cfg, reach::SeqAlgorithm::EntryForwardSplit);
  EXPECT_NE(EF.find("mu bool SummaryEF"), std::string::npos);
  EXPECT_NE(EF.find("setReturn1"), std::string::npos);
  EXPECT_NE(EF.find("setReturn2"), std::string::npos);

  std::string Opt =
      reach::formulaText(Cfg, reach::SeqAlgorithm::EntryForwardOpt);
  EXPECT_NE(Opt.find("mu bool SummaryEFopt"), std::string::npos);
  EXPECT_NE(Opt.find("mu bool Relevant"), std::string::npos);
  EXPECT_NE(Opt.find("mu bool New1"), std::string::npos);
  // Relevant negates the fr=0 copy: the non-monotone heart of Section 4.3.
  EXPECT_NE(Opt.find("!(SummaryEFopt(0"), std::string::npos);
}

TEST(SeqReachTest, TerminatorParityNegativesAreProven) {
  // The even-parity claim after a full 2^B counter walk is false; the
  // engines must prove it (and the positive twin must be found).
  for (auto Style : {gen::DeadVarStyle::Iterative, gen::DeadVarStyle::Schoose})
    for (bool Reachable : {false, true}) {
      gen::TerminatorParams P;
      P.CounterBits = 3;
      P.NumDeadVars = 2;
      P.Style = Style;
      P.Reachable = Reachable;
      gen::Workload W = gen::terminatorProgram(P);
      std::unique_ptr<bp::Program> Prog;
      bp::ProgramCfg Cfg = parseCfg(W.Source, Prog);
      EXPECT_EQ(solveVia(Cfg, "ERR", "ef-opt").Reachable, Reachable)
          << W.Name;
    }
}

TEST(SeqReachTest, RecursiveDepthBeyondExplicitBounds) {
  // Unbounded recursion with a nondet stop: summaries must converge even
  // though the state space of stacks is infinite.
  const char *Src = R"(
decl g;
main() begin
  g := F;
  call dig();
  if (g) then ERR: skip; fi;
end
dig() begin
  if (*) then
    call dig();
  else
    g := T;
  fi;
end
)";
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg = parseCfg(Src, Prog);
  for (const char *Engine : AllEngines)
    EXPECT_TRUE(solveVia(Cfg, "ERR", Engine).Reachable) << Engine;
}
