//===- LalReps.cpp - Lal-Reps eager sequentialization ---------------------===//

#include "concurrent/LalReps.h"
#include "bp/Sema.h"

#include <set>

using namespace getafix;
using namespace getafix::conc;
using namespace getafix::bp;

//===----------------------------------------------------------------------===//
// Small AST builders
//===----------------------------------------------------------------------===//

namespace {

ExprPtr eTrue() { return std::make_unique<Expr>(ExprKind::True); }
ExprPtr eFalse() { return std::make_unique<Expr>(ExprKind::False); }
ExprPtr eStar() { return std::make_unique<Expr>(ExprKind::Nondet); }

ExprPtr eVar(const std::string &Name) {
  auto E = std::make_unique<Expr>(ExprKind::Var);
  E->VarName = Name;
  return E;
}

ExprPtr eNot(ExprPtr Body) {
  auto E = std::make_unique<Expr>(ExprKind::Not);
  E->Lhs = std::move(Body);
  return E;
}

ExprPtr eBin(ExprKind Kind, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>(Kind);
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

ExprPtr eAnd(ExprPtr L, ExprPtr R) {
  return eBin(ExprKind::And, std::move(L), std::move(R));
}
ExprPtr eOr(ExprPtr L, ExprPtr R) {
  return eBin(ExprKind::Or, std::move(L), std::move(R));
}

/// (a & b) | (!a & !b).
ExprPtr eIff(const std::string &A, const std::string &B) {
  return eOr(eAnd(eVar(A), eVar(B)), eAnd(eNot(eVar(A)), eNot(eVar(B))));
}

StmtPtr sAssign(std::vector<std::string> Lhs, std::vector<ExprPtr> Rhs) {
  auto S = std::make_unique<Stmt>(StmtKind::Assign);
  S->LhsNames = std::move(Lhs);
  S->Exprs = std::move(Rhs);
  return S;
}

StmtPtr sCall(const std::string &Callee) {
  auto S = std::make_unique<Stmt>(StmtKind::Call);
  S->CalleeName = Callee;
  return S;
}

StmtPtr sAssume(ExprPtr Cond) {
  auto S = std::make_unique<Stmt>(StmtKind::Assume);
  S->Cond = std::move(Cond);
  return S;
}

StmtPtr sIf(ExprPtr Cond, std::vector<StmtPtr> Then,
            std::vector<StmtPtr> Else = {}) {
  auto S = std::make_unique<Stmt>(StmtKind::If);
  S->Cond = std::move(Cond);
  S->ThenBody = std::move(Then);
  S->ElseBody = std::move(Else);
  return S;
}

StmtPtr sWhile(ExprPtr Cond, std::vector<StmtPtr> Body) {
  auto S = std::make_unique<Stmt>(StmtKind::While);
  S->Cond = std::move(Cond);
  S->ThenBody = std::move(Body);
  return S;
}

StmtPtr sLabeledSkip(const std::string &Label) {
  auto S = std::make_unique<Stmt>(StmtKind::Skip);
  S->Label = Label;
  return S;
}

//===----------------------------------------------------------------------===//
// The transformation
//===----------------------------------------------------------------------===//

class Sequentializer {
public:
  Sequentializer(const ConcurrentProgram &Conc, const std::string &Label,
                 unsigned K)
      : Conc(Conc), TargetLabel(Label), C(K + 1),
        N(Conc.numThreads()) {
    CtxBits = bitsFor(C + 1); // Values 0..C; C means "done".
    ThrBits = bitsFor(N);
    Shared = std::set<std::string>(Conc.SharedGlobals.begin(),
                                   Conc.SharedGlobals.end());
  }

  std::unique_ptr<Program> run(DiagnosticEngine &Diags);

private:
  static unsigned bitsFor(unsigned Values) {
    unsigned Bits = 1;
    while ((1u << Bits) < Values)
      ++Bits;
    return Bits;
  }

  // Name helpers.
  static std::string startName(unsigned Ctx, const std::string &S) {
    return "LR_st" + std::to_string(Ctx) + "_" + S;
  }
  static std::string curName(unsigned Ctx, const std::string &S) {
    return "LR_cur" + std::to_string(Ctx) + "_" + S;
  }
  static std::string nowName(const std::string &S) { return "LR_now_" + S; }
  std::string ctxBit(unsigned I) const {
    return "LR_ctx" + std::to_string(I);
  }
  std::string schBit(unsigned Ctx, unsigned I) const {
    return "LR_sch" + std::to_string(Ctx) + "_" + std::to_string(I);
  }
  static std::string advName(unsigned Thread) {
    return "LR_adv_t" + std::to_string(Thread);
  }
  static std::string procName(const std::string &Name, unsigned Thread) {
    return Name + "__t" + std::to_string(Thread);
  }

  /// Conjunction of ctx-bit literals testing ctx == Value.
  ExprPtr ctxEquals(unsigned Value) const;
  /// Conjunction of schedule-bit literals testing sched[Ctx] == Thread.
  ExprPtr schEquals(unsigned Ctx, unsigned Thread) const;
  /// Multi-assignment setting ctx := Value.
  StmtPtr setCtx(unsigned Value) const;
  /// cur[Ctx] := now (all shared vars), or now := start[Ctx], etc.
  StmtPtr copyShared(const std::string &ToPrefixKind, unsigned ToCtx,
                     const std::string &FromPrefixKind,
                     unsigned FromCtx) const;

  ExprPtr transformExpr(const Expr &E) const;
  StmtPtr transformStmt(const Stmt &S, unsigned Thread) const;
  std::vector<StmtPtr> transformBody(const std::vector<StmtPtr> &Body,
                                     unsigned Thread) const;

  std::unique_ptr<Proc> makeAdvProc(unsigned Thread) const;
  std::unique_ptr<Proc> makeMain() const;

  const ConcurrentProgram &Conc;
  std::string TargetLabel;
  unsigned C; ///< Number of contexts (k + 1).
  unsigned N;
  unsigned CtxBits = 0;
  unsigned ThrBits = 0;
  std::set<std::string> Shared;
};

ExprPtr Sequentializer::ctxEquals(unsigned Value) const {
  ExprPtr E;
  for (unsigned I = 0; I < CtxBits; ++I) {
    ExprPtr Bit = eVar(ctxBit(I));
    if (!((Value >> I) & 1))
      Bit = eNot(std::move(Bit));
    E = E ? eAnd(std::move(E), std::move(Bit)) : std::move(Bit);
  }
  return E;
}

ExprPtr Sequentializer::schEquals(unsigned Ctx, unsigned Thread) const {
  ExprPtr E;
  for (unsigned I = 0; I < ThrBits; ++I) {
    ExprPtr Bit = eVar(schBit(Ctx, I));
    if (!((Thread >> I) & 1))
      Bit = eNot(std::move(Bit));
    E = E ? eAnd(std::move(E), std::move(Bit)) : std::move(Bit);
  }
  return E;
}

StmtPtr Sequentializer::setCtx(unsigned Value) const {
  std::vector<std::string> Lhs;
  std::vector<ExprPtr> Rhs;
  for (unsigned I = 0; I < CtxBits; ++I) {
    Lhs.push_back(ctxBit(I));
    Rhs.push_back(((Value >> I) & 1) ? eTrue() : eFalse());
  }
  return sAssign(std::move(Lhs), std::move(Rhs));
}

StmtPtr Sequentializer::copyShared(const std::string &ToKind, unsigned ToCtx,
                                   const std::string &FromKind,
                                   unsigned FromCtx) const {
  auto NameOf = [&](const std::string &Kind, unsigned Ctx,
                    const std::string &S) {
    if (Kind == "now")
      return nowName(S);
    if (Kind == "cur")
      return curName(Ctx, S);
    return startName(Ctx, S);
  };
  std::vector<std::string> Lhs;
  std::vector<ExprPtr> Rhs;
  for (const std::string &S : Conc.SharedGlobals) {
    Lhs.push_back(NameOf(ToKind, ToCtx, S));
    Rhs.push_back(eVar(NameOf(FromKind, FromCtx, S)));
  }
  return sAssign(std::move(Lhs), std::move(Rhs));
}

ExprPtr Sequentializer::transformExpr(const Expr &E) const {
  auto Copy = std::make_unique<Expr>(E.Kind, E.Loc);
  switch (E.Kind) {
  case ExprKind::Var:
    Copy->VarName = Shared.count(E.VarName) ? nowName(E.VarName) : E.VarName;
    break;
  case ExprKind::Not:
    Copy->Lhs = transformExpr(*E.Lhs);
    break;
  case ExprKind::And:
  case ExprKind::Or:
    Copy->Lhs = transformExpr(*E.Lhs);
    Copy->Rhs = transformExpr(*E.Rhs);
    break;
  default:
    break;
  }
  return Copy;
}

StmtPtr Sequentializer::transformStmt(const Stmt &S, unsigned Thread) const {
  auto Copy = std::make_unique<Stmt>(S.Kind, S.Loc);
  if (!S.Label.empty())
    Copy->Label = procName(S.Label, Thread); // Keep labels unique.
  for (const std::string &Name : S.LhsNames)
    Copy->LhsNames.push_back(Shared.count(Name) ? nowName(Name) : Name);
  for (const ExprPtr &E : S.Exprs)
    Copy->Exprs.push_back(transformExpr(*E));
  if (!S.CalleeName.empty()) {
    // Goto targets and callees both live in CalleeName; both are renamed
    // with the thread suffix.
    Copy->CalleeName = procName(S.CalleeName, Thread);
  }
  if (S.Cond)
    Copy->Cond = transformExpr(*S.Cond);
  if (S.Kind == StmtKind::If || S.Kind == StmtKind::While) {
    Copy->ThenBody = transformBody(S.ThenBody, Thread);
    Copy->ElseBody = transformBody(S.ElseBody, Thread);
  }
  return Copy;
}

std::vector<StmtPtr>
Sequentializer::transformBody(const std::vector<StmtPtr> &Body,
                              unsigned Thread) const {
  std::vector<StmtPtr> Out;
  for (const StmtPtr &S : Body) {
    // A context switch may happen before every statement.
    Out.push_back(sCall(advName(Thread)));
    if (!S->Label.empty() && S->Label == TargetLabel) {
      // Record the hit — but only while the thread occupies a real context
      // (ctx != done); after its last context the execution is a ghost.
      Out.push_back(sAssign({"LR_hit"},
                            [&] {
                              std::vector<ExprPtr> Rhs;
                              Rhs.push_back(eOr(eVar("LR_hit"),
                                                eNot(ctxEquals(C))));
                              return Rhs;
                            }()));
    }
    Out.push_back(transformStmt(*S, Thread));
  }
  return Out;
}

std::unique_ptr<Proc> Sequentializer::makeAdvProc(unsigned Thread) const {
  auto P = std::make_unique<Proc>();
  P->Name = advName(Thread);

  // One advance step: finalize the current context, move ctx to the next
  // context this thread owns (or done), and load its guessed start.
  auto AdvanceFrom = [&](unsigned Ctx) {
    std::vector<StmtPtr> Steps;
    Steps.push_back(copyShared("cur", Ctx, "now", 0));
    Steps.push_back(setCtx(C)); // done
    for (unsigned Next = C; Next-- > Ctx + 1;) {
      std::vector<StmtPtr> Then;
      Then.push_back(setCtx(Next));
      Steps.push_back(sIf(schEquals(Next, Thread), std::move(Then)));
    }
    for (unsigned Next = Ctx + 1; Next < C; ++Next) {
      std::vector<StmtPtr> Then;
      Then.push_back(copyShared("now", 0, "st", Next));
      Steps.push_back(sIf(ctxEquals(Next), std::move(Then)));
    }
    return Steps;
  };

  // Nested if/else dispatch on the current context value.
  std::vector<StmtPtr> Dispatch;
  for (unsigned Ctx = C; Ctx-- > 0;) {
    std::vector<StmtPtr> Outer;
    Outer.push_back(
        sIf(ctxEquals(Ctx), AdvanceFrom(Ctx), std::move(Dispatch)));
    Dispatch = std::move(Outer);
  }

  std::vector<StmtPtr> LoopBody = std::move(Dispatch);
  P->Body.push_back(sWhile(eStar(), std::move(LoopBody)));
  return P;
}

std::unique_ptr<Proc> Sequentializer::makeMain() const {
  auto P = std::make_unique<Proc>();
  P->Name = "main";

  // Context 0 starts from the all-false shared valuation (the concurrent
  // engine's deterministic initial state).
  {
    std::vector<std::string> Lhs;
    std::vector<ExprPtr> Rhs;
    for (const std::string &S : Conc.SharedGlobals) {
      Lhs.push_back(startName(0, S));
      Rhs.push_back(eFalse());
    }
    P->Body.push_back(sAssign(std::move(Lhs), std::move(Rhs)));
  }
  // cur[c] := start[c] for every context (an unvisited context is empty).
  for (unsigned Ctx = 0; Ctx < C; ++Ctx)
    P->Body.push_back(copyShared("cur", Ctx, "st", Ctx));
  P->Body.push_back(sAssign({"LR_hit"}, [] {
    std::vector<ExprPtr> Rhs;
    Rhs.push_back(eFalse());
    return Rhs;
  }()));

  // Schedule sanity: valid thread ids, and adjacent contexts differ (a
  // switch activates another thread).
  for (unsigned Ctx = 0; Ctx < C; ++Ctx) {
    ExprPtr Valid;
    for (unsigned Thr = 0; Thr < N; ++Thr) {
      ExprPtr Eq = schEquals(Ctx, Thr);
      Valid = Valid ? eOr(std::move(Valid), std::move(Eq)) : std::move(Eq);
    }
    P->Body.push_back(sAssume(std::move(Valid)));
  }
  for (unsigned Ctx = 1; Ctx < C; ++Ctx) {
    ExprPtr Same;
    for (unsigned I = 0; I < ThrBits; ++I) {
      ExprPtr BitEq = eIff(schBit(Ctx, I), schBit(Ctx - 1, I));
      Same = Same ? eAnd(std::move(Same), std::move(BitEq))
                  : std::move(BitEq);
    }
    P->Body.push_back(sAssume(eNot(std::move(Same))));
  }

  // Run every thread once over all of its contexts.
  for (unsigned Thr = 0; Thr < N; ++Thr) {
    P->Body.push_back(setCtx(C));
    for (unsigned Ctx = C; Ctx-- > 0;) {
      std::vector<StmtPtr> Then;
      Then.push_back(setCtx(Ctx));
      P->Body.push_back(sIf(schEquals(Ctx, Thr), std::move(Then)));
    }
    for (unsigned Ctx = 0; Ctx < C; ++Ctx) {
      std::vector<StmtPtr> Then;
      Then.push_back(copyShared("now", 0, "st", Ctx));
      P->Body.push_back(sIf(ctxEquals(Ctx), std::move(Then)));
    }
    P->Body.push_back(sCall(procName("main", Thr)));
    for (unsigned Ctx = 0; Ctx < C; ++Ctx) {
      std::vector<StmtPtr> Then;
      Then.push_back(copyShared("cur", Ctx, "now", 0));
      P->Body.push_back(sIf(ctxEquals(Ctx), std::move(Then)));
    }
  }

  // Chain check: end of context c must equal the guessed start of c+1.
  for (unsigned Ctx = 0; Ctx + 1 < C; ++Ctx)
    for (const std::string &S : Conc.SharedGlobals)
      P->Body.push_back(
          sAssume(eIff(curName(Ctx, S), startName(Ctx + 1, S))));

  std::vector<StmtPtr> Goal;
  Goal.push_back(sLabeledSkip(lalRepsGoalLabel()));
  P->Body.push_back(sIf(eVar("LR_hit"), std::move(Goal)));
  return P;
}

std::unique_ptr<Program> Sequentializer::run(DiagnosticEngine &Diags) {
  // Locate the target label.
  bool Found = false;
  for (const auto &Thread : Conc.Threads)
    if (Thread->findLabel(TargetLabel, nullptr))
      Found = true;
  if (!Found) {
    Diags.error({}, "label '" + TargetLabel +
                        "' not found in any thread (Lal-Reps reduction)");
    return nullptr;
  }

  auto Prog = std::make_unique<Program>();

  // Globals: guessed starts, working copies, the shadow, the schedule, the
  // context cursor and the hit flag.
  for (unsigned Ctx = 0; Ctx < C; ++Ctx)
    for (const std::string &S : Conc.SharedGlobals)
      Prog->Globals.push_back(startName(Ctx, S));
  for (unsigned Ctx = 0; Ctx < C; ++Ctx)
    for (const std::string &S : Conc.SharedGlobals)
      Prog->Globals.push_back(curName(Ctx, S));
  for (const std::string &S : Conc.SharedGlobals)
    Prog->Globals.push_back(nowName(S));
  for (unsigned I = 0; I < CtxBits; ++I)
    Prog->Globals.push_back(ctxBit(I));
  for (unsigned Ctx = 0; Ctx < C; ++Ctx)
    for (unsigned I = 0; I < ThrBits; ++I)
      Prog->Globals.push_back(schBit(Ctx, I));
  Prog->Globals.push_back("LR_hit");

  // Cloned thread procedures + per-thread advance procedures.
  for (unsigned Thr = 0; Thr < N; ++Thr) {
    const Program &Thread = *Conc.Threads[Thr];
    if (Thread.main().NumReturns != 0) {
      Diags.error({}, "thread main procedures must not return values");
      return nullptr;
    }
    for (const auto &ProcPtr : Thread.Procs) {
      auto Clone = std::make_unique<Proc>();
      Clone->Name = procName(ProcPtr->Name, Thr);
      Clone->Params = ProcPtr->Params;
      Clone->Locals = ProcPtr->Locals;
      Clone->Body = transformBody(ProcPtr->Body, Thr);
      Prog->Procs.push_back(std::move(Clone));
    }
    Prog->Procs.push_back(makeAdvProc(Thr));
  }
  Prog->Procs.push_back(makeMain());

  if (!analyzeProgram(*Prog, Diags))
    return nullptr;
  return Prog;
}

} // namespace

std::unique_ptr<Program>
conc::lalRepsSequentialize(const ConcurrentProgram &Conc,
                           const std::string &Label,
                           unsigned MaxContextSwitches,
                           DiagnosticEngine &Diags) {
  // One thread admits no context switch (a switch activates *another*
  // thread), so the guessed schedule's adjacent-contexts-differ constraint
  // would be unsatisfiable for k >= 1 and block every execution. Bounded
  // reachability then equals sequential reachability: transform with k = 0.
  if (Conc.numThreads() == 1)
    MaxContextSwitches = 0;
  Sequentializer Seq(Conc, Label, MaxContextSwitches);
  return Seq.run(Diags);
}
