//===- ConcReach.cpp - Bounded context-switching reachability -------------===//

#include "concurrent/ConcReach.h"

#include "fpcalc/Evaluator.h"
#include "support/Timer.h"
#include "symbolic/Encode.h"

#include <algorithm>
#include <cmath>

using namespace getafix;
using namespace getafix::conc;
using namespace getafix::fpc;
using namespace getafix::sym;

std::vector<bp::ProgramCfg>
conc::buildThreadCfgs(const bp::ConcurrentProgram &C) {
  std::vector<bp::ProgramCfg> Cfgs;
  Cfgs.reserve(C.numThreads());
  for (const auto &Thread : C.Threads)
    Cfgs.push_back(bp::buildCfg(*Thread));
  return Cfgs;
}

namespace {

class ConcEngine {
public:
  ConcEngine(const bp::ConcurrentProgram &Conc,
             const std::vector<bp::ProgramCfg> &Cfgs,
             const ConcOptions &Opts)
      : Conc(Conc), Cfgs(Cfgs), K(Opts.MaxContextSwitches),
        N(Conc.numThreads()), RoundRobin(Opts.RoundRobin), Factory(Sys) {
    buildSystem();
  }

  ConcResult solve(unsigned Thread, unsigned ProcId, unsigned Pc,
                   const ConcOptions &Opts);

  // Shared by the one-shot solve and ConcSession, so both compute the
  // identical target set and reachable-set statistic.
  void bindInputs(Evaluator &Ev, unsigned Thread, unsigned ProcId,
                  unsigned Pc);
  Bdd targetStates(Evaluator &Ev, unsigned Thread, unsigned ProcId,
                   unsigned Pc);
  double reachStatesOf(Evaluator &Ev, const Bdd &Value);
  RelId reachRel() const { return Reach; }
  Layout makeLayout(BddManager &Mgr) const { return Factory.makeLayout(Mgr); }
  const System &system() const { return Sys; }
  /// See ConcResult::CondensationWidth (computed once in buildSystem).
  unsigned condensationWidth() const { return Width; }

private:
  void buildSystem();

  /// Head argument vector with selected state components overridden.
  std::vector<Term> reachArgs(Term Mod, Term Pc, Term CL, Term CG, Term ECL,
                              Term ECG, Term Ecs, Term Cs) const;

  /// OR over (context c, thread thr) of `cs==c && t_c==thr && Rel_thr(args)`
  /// — the calculus rendering of "the active thread's relation". \p CsVar
  /// selects which context variable tags the disjunction.
  Formula *activeRel(VarId CsVar,
                     const std::vector<RelId> &PerThread,
                     const std::vector<VarId> &Args);
  Formula *activeRelTerms(VarId CsVar, const std::vector<RelId> &PerThread,
                          const std::vector<Term> &Args);

  Formula *initClause();
  Formula *internalClause();
  Formula *callClause();
  Formula *returnClause();
  Formula *firstSwitchClause(unsigned C);
  Formula *switchBackClause(unsigned C);

  const bp::ConcurrentProgram &Conc;
  const std::vector<bp::ProgramCfg> &Cfgs;
  unsigned K;
  unsigned N;
  bool RoundRobin;

  System Sys;
  VarFactory Factory;
  StateDomains Doms;
  DomainId CsDom = 0, ThreadDom = 0;
  std::vector<std::unique_ptr<ProgramEncoder>> Encs;

  // Head tuple: Reach(S, Ecs, Cs, G[1..K], T[0..K]).
  ConfVars S;
  VarId Ecs = 0, Cs = 0;
  std::vector<VarId> G; ///< G[1..K]; index 0 unused.
  std::vector<VarId> T; ///< T[0..K].

  // Quantified temporaries.
  VarId XPc = 0, XL = 0, XG = 0;                    ///< Internal move.
  VarId DMod = 0, DPc = 0, DL = 0, DEL = 0, DEG = 0; ///< Caller / prev.
  VarId DEcs = 0;                                    ///< Quantified ecs'.
  VarId CsP = 0;                                     ///< Quantified cs'.
  VarId RTPc = 0, RTCL = 0, RTCG = 0;                ///< Return caller.
  VarId RUMod = 0, RUPcX = 0, RULX = 0, RUGX = 0, RUECL = 0; ///< Callee.

  // Per-thread relation id vectors (indexed by thread).
  std::vector<RelId> RInt, RCall, RSkip, RRet1, RRet2, RExit, RInit;

  RelId Reach = 0;
  unsigned Width = 0; ///< Dependency-condensation width (see buildSystem).
};

} // namespace

std::vector<Term> ConcEngine::reachArgs(Term Mod, Term Pc, Term CL, Term CG,
                                        Term ECL, Term ECG, Term Ecs_,
                                        Term Cs_) const {
  std::vector<Term> Args{Mod, Pc, CL, CG, ECL, ECG, Ecs_, Cs_};
  for (unsigned I = 1; I <= K; ++I)
    Args.push_back(Term::var(G[I]));
  for (unsigned I = 0; I <= K; ++I)
    Args.push_back(Term::var(T[I]));
  return Args;
}

Formula *ConcEngine::activeRelTerms(VarId CsVar,
                                    const std::vector<RelId> &PerThread,
                                    const std::vector<Term> &Args) {
  std::vector<Formula *> Disjuncts;
  for (unsigned C = 0; C <= K; ++C)
    for (unsigned Thr = 0; Thr < N; ++Thr)
      Disjuncts.push_back(Sys.mkAnd({
          Sys.eqConst(CsVar, C),
          Sys.eqConst(T[C], Thr),
          Sys.apply(PerThread[Thr], Args),
      }));
  return Sys.mkOr(std::move(Disjuncts));
}

Formula *ConcEngine::activeRel(VarId CsVar,
                               const std::vector<RelId> &PerThread,
                               const std::vector<VarId> &Args) {
  std::vector<Term> Terms;
  for (VarId V : Args)
    Terms.push_back(Term::var(V));
  return activeRelTerms(CsVar, PerThread, Terms);
}

/// [phi_init] cs = ecs = 0, u = v an entry of thread t_0's main.
///
/// Shared globals start all-false (deterministically). The Section-5 tuple
/// records shared valuations only at switch points (g_1..g_k), so runs are
/// stitched on the assumption that every thread portion starts either at a
/// recorded g_i or at the *unique* initial valuation; a nondeterministic
/// initial valuation would make the stitching unsound. Concurrent models
/// (e.g. the Bluetooth driver) initialize their shared state explicitly.
Formula *ConcEngine::initClause() {
  std::vector<Formula *> InitDisjuncts;
  for (unsigned Thr = 0; Thr < N; ++Thr)
    InitDisjuncts.push_back(Sys.mkAnd({
        Sys.eqConst(T[0], Thr),
        Sys.apply(RInit[Thr],
                  {Term::var(S.Mod), Term::var(S.Pc), Term::var(S.CL)}),
    }));
  return Sys.mkAnd({
      Sys.eqConst(Cs, 0),
      Sys.eqConst(Ecs, 0),
      Sys.eqConst(S.CG, 0),
      Sys.mkOr(std::move(InitDisjuncts)),
      Sys.eqVar(S.CL, S.ECL),
      Sys.eqVar(S.CG, S.ECG),
  });
}

/// [phi_int] an internal move of the active thread.
Formula *ConcEngine::internalClause() {
  return Sys.exists(
      {XPc, XL, XG},
      Sys.mkAnd({
          Sys.apply(Reach, reachArgs(Term::var(S.Mod), Term::var(XPc),
                                     Term::var(XL), Term::var(XG),
                                     Term::var(S.ECL), Term::var(S.ECG),
                                     Term::var(Ecs), Term::var(Cs))),
          activeRel(Cs, RInt,
                    {S.Mod, XPc, S.Pc, XL, S.CL, XG, S.CG}),
      }));
}

/// [phi_call] entering a procedure: the new summary's entry count is cs.
Formula *ConcEngine::callClause() {
  Formula *Witness = Sys.exists(
      {DMod, DPc, DL, DEL, DEG, DEcs},
      Sys.mkAnd({
          Sys.apply(Reach, reachArgs(Term::var(DMod), Term::var(DPc),
                                     Term::var(DL), Term::var(S.CG),
                                     Term::var(DEL), Term::var(DEG),
                                     Term::var(DEcs), Term::var(Cs))),
          activeRel(Cs, RCall, {DMod, S.Mod, DPc, DL, S.CL, S.CG}),
      }));
  return Sys.mkAnd({
      Sys.eqConst(S.Pc, 0),
      Sys.eqVar(S.CL, S.ECL),
      Sys.eqVar(S.CG, S.ECG),
      Sys.eqVar(Ecs, Cs),
      Witness,
  });
}

/// [phi_ret] skipping a completed call: the caller may date from an earlier
/// context cs' <= cs; the callee summary spans cs' to cs. Uses the split
/// Return (Section 4.2's rewrite) with the shared link variables
/// quantified at the top.
Formula *ConcEngine::returnClause() {
  // cs' <= cs: disjunction over value pairs of the small Cs domain.
  std::vector<Formula *> LeqPairs;
  for (unsigned A = 0; A <= K; ++A)
    for (unsigned B = A; B <= K; ++B)
      LeqPairs.push_back(
          Sys.mkAnd({Sys.eqConst(CsP, A), Sys.eqConst(Cs, B)}));
  Formula *CsLeq = Sys.mkOr(std::move(LeqPairs));

  Formula *GroupA = Sys.exists(
      {RTCL},
      Sys.mkAnd({
          Sys.apply(Reach, reachArgs(Term::var(S.Mod), Term::var(RTPc),
                                     Term::var(RTCL), Term::var(RTCG),
                                     Term::var(S.ECL), Term::var(S.ECG),
                                     Term::var(Ecs), Term::var(CsP))),
          activeRel(CsP, RSkip, {S.Mod, RTPc, S.Pc}),
          activeRel(CsP, RRet1, {S.Mod, RUMod, RTPc, RTCL, S.CL}),
          activeRel(CsP, RCall, {S.Mod, RUMod, RTPc, RTCL, RUECL, RTCG}),
      }));

  Formula *GroupB = Sys.exists(
      {RULX, RUGX},
      Sys.mkAnd({
          Sys.apply(Reach, reachArgs(Term::var(RUMod), Term::var(RUPcX),
                                     Term::var(RULX), Term::var(RUGX),
                                     Term::var(RUECL), Term::var(RTCG),
                                     Term::var(CsP), Term::var(Cs))),
          activeRel(Cs, RExit, {RUMod, RUPcX}),
          activeRel(Cs, RRet2,
                    {S.Mod, RUMod, RTPc, RUPcX, RULX, S.CL, RUGX, S.CG}),
      }));

  return Sys.exists({RTPc, RTCG, RUMod, RUPcX, RUECL, CsP},
                    Sys.mkAnd({CsLeq, GroupA, GroupB}));
}

/// [phi_1st_switch] context C starts the first run of thread t_C: globals
/// continue from some reachable state of context C-1; locals are fresh.
Formula *ConcEngine::firstSwitchClause(unsigned C) {
  assert(C >= 1 && C <= K && "switch clauses start at context 1");

  // First(t_C, C, t): no earlier context ran this thread.
  std::vector<Formula *> FirstParts;
  for (unsigned R = 0; R < C; ++R)
    FirstParts.push_back(Sys.mkNot(Sys.eqVar(T[C], T[R])));

  // Init(t_C, v.pc): v is the entry of the switched-to thread's main.
  std::vector<Formula *> InitDisjuncts;
  for (unsigned Thr = 0; Thr < N; ++Thr)
    InitDisjuncts.push_back(Sys.mkAnd({
        Sys.eqConst(T[C], Thr),
        Sys.apply(RInit[Thr],
                  {Term::var(S.Mod), Term::var(S.Pc), Term::var(S.CL)}),
    }));

  // Witness: some state of context C-1 with globals = g_C (= v.Global).
  Formula *Witness = Sys.exists(
      {DMod, DPc, DL, DEL, DEG, DEcs},
      Sys.apply(Reach, reachArgs(Term::var(DMod), Term::var(DPc),
                                 Term::var(DL), Term::var(S.CG),
                                 Term::var(DEL), Term::var(DEG),
                                 Term::var(DEcs), Term::constant(C - 1))));

  std::vector<Formula *> Parts{Sys.eqConst(Cs, C), Sys.eqVar(Ecs, Cs),
                               Sys.eqVar(S.CG, G[C]),
                               Sys.eqVar(S.CL, S.ECL),
                               Sys.eqVar(S.CG, S.ECG)};
  for (Formula *P : FirstParts)
    Parts.push_back(P);
  Parts.push_back(Sys.mkOr(std::move(InitDisjuncts)));
  Parts.push_back(Witness);
  return Sys.mkAnd(std::move(Parts));
}

/// [phi_switch] context C resumes thread t_C where context R < C left it:
/// control and locals come from the thread's own last tuple, globals from
/// the interleaving (g_C).
Formula *ConcEngine::switchBackClause(unsigned C) {
  assert(C >= 1 && C <= K && "switch clauses start at context 1");

  Formula *Witness = Sys.exists(
      {DMod, DPc, DL, DEL, DEG, DEcs},
      Sys.apply(Reach, reachArgs(Term::var(DMod), Term::var(DPc),
                                 Term::var(DL), Term::var(S.CG),
                                 Term::var(DEL), Term::var(DEG),
                                 Term::var(DEcs), Term::constant(C - 1))));

  // Consecutive(R, C, t) and the thread's own state at context R. The
  // paused tuple's globals must equal g_{R+1}: a run is resumable at v'
  // only if it *ended* context R there, i.e. the recorded valuation of
  // switch R+1 is exactly v'.Global. (Quantifying the paused globals away
  // instead lets the fixpoint resume from mid-context states whose
  // continuation disagrees with the recorded interleaving — unsound, and
  // caught by differential testing against the explicit oracle.)
  std::vector<Formula *> ResumeDisjuncts;
  for (unsigned R = 0; R < C; ++R) {
    std::vector<Formula *> Parts{Sys.eqVar(T[C], T[R])};
    for (unsigned I = R + 1; I < C; ++I)
      Parts.push_back(Sys.mkNot(Sys.eqVar(T[I], T[C])));
    Parts.push_back(
        Sys.apply(Reach, reachArgs(Term::var(S.Mod), Term::var(S.Pc),
                                   Term::var(S.CL), Term::var(G[R + 1]),
                                   Term::var(S.ECL), Term::var(S.ECG),
                                   Term::var(Ecs), Term::constant(R))));
    ResumeDisjuncts.push_back(Sys.mkAnd(std::move(Parts)));
  }

  return Sys.mkAnd({
      Sys.eqConst(Cs, C),
      // A switch activates *another* program (Section 5 semantics).
      Sys.mkNot(Sys.eqVar(T[C], T[C - 1])),
      Sys.eqVar(S.CG, G[C]),
      Witness,
      Sys.mkOr(std::move(ResumeDisjuncts)),
  });
}

void ConcEngine::buildSystem() {
  assert(N >= 1 && "need at least one thread");

  unsigned MaxProcs = 1, MaxPcs = 1, MaxLocals = 1;
  for (unsigned I = 0; I < N; ++I) {
    MaxProcs = std::max<unsigned>(MaxProcs, Conc.Threads[I]->Procs.size());
    MaxPcs = std::max(MaxPcs, Cfgs[I].maxPcs());
    MaxLocals = std::max(MaxLocals, Conc.Threads[I]->maxLocalSlots());
  }
  unsigned NumShared = std::max<unsigned>(Conc.SharedGlobals.size(), 1);
  unsigned MaxChoice = 1;
  for (const bp::ProgramCfg &Cfg : Cfgs)
    MaxChoice = std::max(MaxChoice, ProgramEncoder::maxChoiceBits(Cfg));

  Doms.Mod = Sys.addDomain("Module", MaxProcs);
  Doms.Pc = Sys.addDomain("PrCount", MaxPcs);
  Doms.GVec = Sys.addBitDomain("Global", NumShared);
  Doms.LVec = Sys.addBitDomain("Local", MaxLocals);
  CsDom = Sys.addDomain("Context", K + 1);
  ThreadDom = Sys.addDomain("Thread", N);
  DomainId ChoiceDom = Sys.addDomain("Choice", uint64_t(1) << MaxChoice);

  for (unsigned I = 0; I < N; ++I) {
    Encs.push_back(std::make_unique<ProgramEncoder>(
        Sys, Factory, Doms, Cfgs[I], ChoiceDom, "_t" + std::to_string(I)));
    RInt.push_back(Encs[I]->ProgramInt);
    RCall.push_back(Encs[I]->ProgramCall);
    RSkip.push_back(Encs[I]->SkipCall);
    RRet1.push_back(Encs[I]->SetReturn1);
    RRet2.push_back(Encs[I]->SetReturn2);
    RExit.push_back(Encs[I]->ExitRel);
    RInit.push_back(Encs[I]->InitRel);
  }

  S.Mod = Factory.makeVar("v.mod", Doms.Mod);
  S.Pc = Factory.makeVar("v.pc", Doms.Pc);
  S.CG = Factory.makeVar("v.CG", Doms.GVec);
  S.CL = Factory.makeVar("v.CL", Doms.LVec);
  S.ECG = Factory.makeVar("u.CG", Doms.GVec);
  S.ECL = Factory.makeVar("u.CL", Doms.LVec);
  Ecs = Factory.makeVar("ecs", CsDom);
  Cs = Factory.makeVar("cs", CsDom);
  G.resize(K + 1);
  for (unsigned I = 1; I <= K; ++I)
    G[I] = Factory.makeVar("g" + std::to_string(I), Doms.GVec);
  T.resize(K + 1);
  for (unsigned I = 0; I <= K; ++I)
    T[I] = Factory.makeVar("t" + std::to_string(I), ThreadDom);

  XPc = Factory.makeVar("x.pc", Doms.Pc);
  XL = Factory.makeVar("x.CL", Doms.LVec);
  XG = Factory.makeVar("x.CG", Doms.GVec);
  DMod = Factory.makeVar("d.mod", Doms.Mod);
  DPc = Factory.makeVar("d.pc", Doms.Pc);
  DL = Factory.makeVar("d.CL", Doms.LVec);
  DEL = Factory.makeVar("d.ECL", Doms.LVec);
  DEG = Factory.makeVar("d.ECG", Doms.GVec);
  DEcs = Factory.makeVar("d.ecs", CsDom);
  CsP = Factory.makeVar("csP", CsDom);
  RTPc = Factory.makeVar("t.pc", Doms.Pc);
  RTCL = Factory.makeVar("t.CL", Doms.LVec);
  RTCG = Factory.makeVar("t.CG", Doms.GVec);
  RUMod = Factory.makeVar("w.mod", Doms.Mod);
  RUPcX = Factory.makeVar("w.pc", Doms.Pc);
  RULX = Factory.makeVar("w.CL", Doms.LVec);
  RUGX = Factory.makeVar("w.CG", Doms.GVec);
  RUECL = Factory.makeVar("w.ECL", Doms.LVec);

  std::vector<VarId> Formals{S.Mod, S.Pc, S.CL, S.CG, S.ECL, S.ECG, Ecs, Cs};
  for (unsigned I = 1; I <= K; ++I)
    Formals.push_back(G[I]);
  for (unsigned I = 0; I <= K; ++I)
    Formals.push_back(T[I]);
  Reach = Sys.declareRel("Reach", Formals);

  std::vector<Formula *> Clauses{initClause(), internalClause(),
                                 callClause(), returnClause()};
  for (unsigned C = 1; C <= K; ++C) {
    Clauses.push_back(firstSwitchClause(C));
    Clauses.push_back(switchBackClause(C));
  }
  Formula *Def = Sys.mkOr(std::move(Clauses));

  // Round-robin mode: restrict the fixpoint to the schedule t_i = i mod n.
  // Every clause relates tuples over the *same* t vector (the Section-5
  // invariant), so filtering the definition restricts the least fixed-point
  // to exactly the round-robin tuples of the unrestricted one.
  if (RoundRobin) {
    std::vector<Formula *> Schedule;
    for (unsigned I = 0; I <= K; ++I)
      Schedule.push_back(Sys.eqConst(T[I], I % N));
    Schedule.push_back(Def);
    Def = Sys.mkAnd(std::move(Schedule));
  }
  Sys.define(Reach, Def);

  // The sequential engines' per-procedure summary split does not transfer
  // here: the context-switch clauses make Reach read every thread's
  // transition relations under every context, so a per-procedure (or
  // per-thread) relation family would still collapse into one dependency
  // SCC. A genuine widening would need per-(thread, context) summary
  // relations with switch points as interface tuples — this clause builder
  // is the seam. Until then the condensation width is reported honestly
  // from the dependency analysis (Reach is the only defined relation: 1).
  DependencyGraph Deps(Sys);
  Width = definedCondensationWidth(Sys, Deps);

#ifndef NDEBUG
  DiagnosticEngine Diags;
  assert(Sys.validate(Diags) && "concurrent formulae must type-check");
#endif
}

void ConcEngine::bindInputs(Evaluator &Ev, unsigned Thread, unsigned ProcId,
                            unsigned Pc) {
  for (unsigned I = 0; I < N; ++I)
    Encs[I]->bind(Ev, I == Thread ? ProcId : ~0u, Pc);
}

Bdd ConcEngine::targetStates(Evaluator &Ev, unsigned Thread, unsigned ProcId,
                             unsigned Pc) {
  // Target: v at (ProcId, Pc) while the target thread is active.
  Bdd Target = Ev.manager().zero();
  for (unsigned C = 0; C <= K; ++C)
    Target |= Ev.encodeEqConst(Cs, C) & Ev.encodeEqConst(T[C], Thread) &
              Ev.encodeEqConst(S.Mod, ProcId) & Ev.encodeEqConst(S.Pc, Pc);
  return Target;
}

double ConcEngine::reachStatesOf(Evaluator &Ev, const Bdd &Value) {
  // Tuple count for Figure 3's "reachable set size". Components g_j / t_j
  // with j beyond the tuple's own context count cs are semantically
  // irrelevant (the formula never constrains them), so counting raw
  // satisfying assignments would inflate the size by 2^|G|·n per unused
  // slot; pin them to zero before counting.
  BddManager &Mgr = Ev.manager();
  unsigned TupleBits = 0;
  for (VarId V : Sys.relation(Reach).Formals)
    TupleBits += unsigned(Ev.layout().bits(V).size());
  double States = 0;
  for (unsigned C = 0; C <= K; ++C) {
    Bdd Masked = Value & Ev.encodeEqConst(Cs, C);
    for (unsigned J = C + 1; J <= K; ++J) {
      Masked &= Ev.encodeEqConst(G[J], 0);
      Masked &= Ev.encodeEqConst(T[J], 0);
    }
    States += Masked.satCount(Mgr.numVars()) /
              std::pow(2.0, double(Mgr.numVars() - TupleBits));
  }
  return States;
}

ConcResult ConcEngine::solve(unsigned Thread, unsigned ProcId, unsigned Pc,
                             const ConcOptions &Opts) {
  ConcResult Result;
  Timer Tm;

  BddManager Mgr(0, Opts.CacheBits);
  Mgr.setGcThreshold(Opts.GcThreshold);
  if (Opts.Governor)
    Mgr.setGovernor(Opts.Governor);
  Evaluator Ev(Sys, Mgr, Factory.makeLayout(Mgr), Opts.Strategy,
               Opts.FrontierCofactor);
  Ev.setThreads(Opts.Threads);
  Ev.setDisjunctParallelThreshold(Opts.DisjunctParallelThreshold);
  try {
    bindInputs(Ev, Thread, ProcId, Pc);

    Bdd TargetStates = targetStates(Ev, Thread, ProcId, Pc);

    EvalOptions EOpts;
    EOpts.MaxIterations = Opts.MaxIterations;
    if (Opts.EarlyStop)
      EOpts.EarlyStop = &TargetStates;

    EvalResult R = Ev.evaluate(Reach, EOpts);
    Result.HitIterationLimit = R.HitIterationLimit;
    Result.Reachable = !(R.Value & TargetStates).isZero();
    Result.ReachNodes = R.Value.nodeCount();
    Result.ReachStates = reachStatesOf(Ev, R.Value);
  } catch (const support::ResourceInterrupt &RI) {
    // One-shot solve: state is discarded, so only the limit and the work
    // counters below are reported.
    Result.Limit = RI.Limit;
  }

  Result.Relations = Ev.stats();
  auto StatsIt = Result.Relations.find("Reach");
  if (StatsIt != Result.Relations.end()) {
    Result.Iterations = StatsIt->second.Iterations;
    Result.DeltaRounds = StatsIt->second.DeltaRounds;
  }
  Result.Cofactor = Ev.cofactorStats();
  Result.Bdd = Mgr.stats();
  Result.Bdd.merge(Ev.workerBddStats());
  Result.SccsSolvedParallel = Ev.parallelStats().SccsSolvedParallel;
  Result.CondensationWidth = Width;
  Result.RoundsParallel = Ev.parallelStats().RoundsParallel;
  Result.DisjunctsParallel = Ev.parallelStats().DisjunctsParallel;
  Result.ImportedNodes = Ev.parallelStats().ImportedNodes;
  Result.PeakLiveNodes = Result.Bdd.PeakNodes;
  Result.BddNodesCreated = Result.Bdd.NodesCreated;
  Result.BddCacheLookups = Result.Bdd.CacheLookups;
  Result.BddCacheHits = Result.Bdd.CacheHits;
  Result.SummariesRecomputed = Result.Iterations;
  Result.Seconds = Tm.seconds();
  return Result;
}

ConcResult conc::checkConcReachability(const bp::ConcurrentProgram &Conc,
                                       const std::vector<bp::ProgramCfg> &Cfgs,
                                       unsigned Thread, unsigned ProcId,
                                       unsigned Pc, const ConcOptions &Opts) {
  ConcEngine Engine(Conc, Cfgs, Opts);
  return Engine.solve(Thread, ProcId, Pc, Opts);
}

ConcResult conc::checkConcReachabilityOfLabel(
    const bp::ConcurrentProgram &Conc,
    const std::vector<bp::ProgramCfg> &Cfgs, const std::string &Label,
    const ConcOptions &Opts) {
  for (unsigned Thread = 0; Thread < Conc.numThreads(); ++Thread) {
    unsigned ProcId = 0, Pc = 0;
    if (Cfgs[Thread].findLabelPc(Label, ProcId, Pc))
      return checkConcReachability(Conc, Cfgs, Thread, ProcId, Pc, Opts);
  }
  ConcResult Result;
  Result.TargetFound = false;
  return Result;
}

//===----------------------------------------------------------------------===//
// ConcSession: cross-query incremental solving
//===----------------------------------------------------------------------===//

struct ConcSession::Impl {
  const bp::ConcurrentProgram &Conc;
  const std::vector<bp::ProgramCfg> &Cfgs;
  ConcOptions Opts;
  ConcEngine Engine;
  BddManager Mgr;
  Evaluator Ev;
  IncrementalFixpoint Fix;

  /// True between a `clearComputedCache` and the next query: the cache
  /// is allocated but holds no live working set, so the footprint
  /// estimate discounts it.
  bool CacheCold = false;

  /// High-water mark of retained (reachable) nodes, sampled at the end
  /// of every query; `peakLiveNodes()` reports it (see SeqSession).
  size_t PeakLive = 0;

  /// Per-attempt resource governor for the next solve (not owned; see
  /// ConcSession::setGovernor).
  support::ResourceGovernor *Gov = nullptr;

  Impl(const bp::ConcurrentProgram &Conc,
       const std::vector<bp::ProgramCfg> &Cfgs, const ConcOptions &Opts)
      : Conc(Conc), Cfgs(Cfgs), Opts(Opts), Engine(Conc, Cfgs, Opts),
        Mgr(0, Opts.CacheBits),
        Ev(Engine.system(), Mgr, Engine.makeLayout(Mgr), Opts.Strategy,
           Opts.FrontierCofactor) {
    Mgr.setGcThreshold(Opts.GcThreshold);
    Fix.setKeyframeInterval(Opts.RingKeyframeInterval);
    // The worker pool is session state: it persists (warm) across
    // queries; queries themselves stay serialized.
    Ev.setThreads(Opts.Threads);
    Ev.setDisjunctParallelThreshold(Opts.DisjunctParallelThreshold);
    // Targetless binding: the per-thread target relations are read by no
    // clause, so one binding serves every query of the session.
    Engine.bindInputs(Ev, ~0u, ~0u, 0);
  }
};

ConcSession::ConcSession(const bp::ConcurrentProgram &Conc,
                         const std::vector<bp::ProgramCfg> &Cfgs,
                         const ConcOptions &Opts)
    : I(std::make_unique<Impl>(Conc, Cfgs, Opts)) {}

ConcSession::~ConcSession() = default;

const ConcOptions &ConcSession::options() const { return I->Opts; }

void ConcSession::setGovernor(support::ResourceGovernor *G) { I->Gov = G; }

void ConcSession::clearComputedCache() {
  I->Mgr.clearComputedCache();
  I->CacheCold = true;
}

size_t ConcSession::liveNodes() const {
  // Reachable-only count: garbage awaiting the next collection says
  // nothing about what the session retains (see SeqSession::liveNodes).
  return I->Mgr.reachableNodeCount() + I->Ev.workerBddStats().LiveNodes;
}

size_t ConcSession::peakLiveNodes() const {
  // Peak *retained* state, sampled at query boundaries.
  return std::max(I->PeakLive, liveNodes());
}

size_t ConcSession::memoryFootprint() const {
  constexpr size_t BytesPerWorkerNode = 24; // node + refcount + bucket.
  return I->Mgr.reachableMemoryEstimate(/*CountCache=*/!I->CacheCold) +
         I->Ev.workerBddStats().LiveNodes * BytesPerWorkerNode;
}

ConcResult ConcSession::solve(unsigned Thread, unsigned ProcId, unsigned Pc) {
  Impl &S = *I;
  if (!S.Opts.ReuseSolvedState) {
    ConcOptions O = S.Opts;
    O.Governor = S.Gov;
    return checkConcReachability(S.Conc, S.Cfgs, Thread, ProcId, Pc, O);
  }

  ConcResult Result;
  Timer Tm;
  S.CacheCold = false; // Encoding/solving repopulates the computed cache.
  BddStats Before = S.Mgr.stats();
  BddStats WorkerBefore = S.Ev.workerBddStats();
  fpc::ParallelStats ParBefore = S.Ev.parallelStats();
  fpc::CofactorStats CfBefore = S.Ev.cofactorStats();

  if (S.Gov)
    S.Mgr.setGovernor(S.Gov);
  try {
    Bdd TargetStates = S.Engine.targetStates(S.Ev, Thread, ProcId, Pc);
    IncrementalFixpoint::Answer A =
        S.Fix.query(S.Ev, S.Engine.reachRel(), TargetStates,
                    S.Opts.EarlyStop, S.Opts.MaxIterations);
    Result.Reachable = A.Reachable;
    Result.HitIterationLimit = A.HitIterationLimit;
    Result.Iterations = A.Iterations;
    Result.ReachNodes = A.Value.nodeCount();
    Result.ReachStates = S.Engine.reachStatesOf(S.Ev, A.Value);
    // The Section-5 Reach system is monotone and fully distributive, so a
    // fresh solve's delta-round count is Iterations - 1 under the
    // semi-naive strategy and 0 under naive.
    bool DeltaCore = S.Opts.Strategy == EvalStrategy::SemiNaive &&
                     S.Ev.plan(S.Engine.reachRel()).SemiNaive;
    Result.DeltaRounds =
        DeltaCore && A.Iterations > 0 ? A.Iterations - 1 : 0;
    Result.SummariesReused = A.RoundsReused;
    Result.SummariesRecomputed = A.RoundsComputed;
  } catch (const support::ResourceInterrupt &RI) {
    // The evaluator wrote the fixpoint state back at the last completed
    // round boundary, so the session stays valid: a retry resumes the
    // deterministic round chain bit-identically.
    Result.Limit = RI.Limit;
    Result.Iterations = S.Fix.state().Rounds;
  }
  S.Mgr.setGovernor(nullptr);

  Result.Relations = S.Ev.stats();
  Result.Cofactor = S.Ev.cofactorStats();
  Result.Cofactor.Applications -= CfBefore.Applications;
  Result.Cofactor.SupportBefore -= CfBefore.SupportBefore;
  Result.Cofactor.SupportAfter -= CfBefore.SupportAfter;
  Result.Bdd = S.Mgr.stats().since(Before);
  Result.Bdd.merge(S.Ev.workerBddStats().since(WorkerBefore));
  fpc::ParallelStats ParDelta = S.Ev.parallelStats().since(ParBefore);
  Result.SccsSolvedParallel = ParDelta.SccsSolvedParallel;
  Result.CondensationWidth = S.Engine.condensationWidth();
  Result.RoundsParallel = ParDelta.RoundsParallel;
  Result.DisjunctsParallel = ParDelta.DisjunctsParallel;
  Result.ImportedNodes = ParDelta.ImportedNodes;
  Result.PeakLiveNodes = Result.Bdd.PeakNodes;
  Result.BddNodesCreated = Result.Bdd.NodesCreated;
  Result.BddCacheLookups = Result.Bdd.CacheLookups;
  Result.BddCacheHits = Result.Bdd.CacheHits;
  Result.Seconds = Tm.seconds();
  S.PeakLive = std::max(S.PeakLive, liveNodes());
  return Result;
}

bool ConcSession::answersFromState(unsigned Thread, unsigned ProcId,
                                   unsigned Pc) {
  Impl &S = *I;
  if (!S.Opts.ReuseSolvedState)
    return false;
  S.CacheCold = false; // Probing encodes the target over the manager.
  Bdd TargetStates = S.Engine.targetStates(S.Ev, Thread, ProcId, Pc);
  return S.Fix.answersFromState(TargetStates, S.Opts.EarlyStop,
                                S.Opts.MaxIterations);
}

ConcResult ConcSession::solveLabel(const std::string &Label) {
  for (unsigned Thread = 0; Thread < I->Conc.numThreads(); ++Thread) {
    unsigned ProcId = 0, Pc = 0;
    if (I->Cfgs[Thread].findLabelPc(Label, ProcId, Pc))
      return solve(Thread, ProcId, Pc);
  }
  ConcResult Result;
  Result.TargetFound = false;
  return Result;
}
