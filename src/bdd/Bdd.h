//===- Bdd.h - Reduced ordered binary decision diagrams ---------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch shared-node ROBDD package. This stands in for the BDD
/// engine inside MUCKE (the paper's fixed-point solver) and provides the
/// complete operation set the symbolic algorithms need:
///
///   - apply (and / or / xor), negation, if-then-else
///   - existential and universal quantification over interned cubes
///   - the and-exists relational product (the image-computation workhorse)
///   - Coudert–Madre generalized cofactors (`constrain` and `restrict`)
///     for care-set minimization of relational-product operands
///   - variable renaming via interned permutations (with a fast path for
///     order-preserving permutations)
///   - sat-counting, support computation, dag-size counting, evaluation
///
/// Memory is managed with external reference counts held by the RAII `Bdd`
/// handle plus a mark-and-sweep collector that runs only at operation entry
/// (never mid-recursion), so internal intermediate results are always safe.
///
/// Variable index == variable order level; the symbolic layer computes a
/// good static order up front (as Getafix does) instead of reordering
/// dynamically.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BDD_BDD_H
#define GETAFIX_BDD_BDD_H

#include "support/ResourceGovernor.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace getafix {

class BddManager;

/// Handle to an interned quantification cube (a set of variables).
struct BddCube {
  uint32_t Id = UINT32_MAX;
  bool isValid() const { return Id != UINT32_MAX; }
};

/// Handle to an interned variable permutation.
struct BddPerm {
  uint32_t Id = UINT32_MAX;
  bool isValid() const { return Id != UINT32_MAX; }
};

/// The cached BDD operations, in computed-cache tag order. Public so the
/// per-op cache counters in `BddStats` can be indexed and named by
/// callers (`getafix --stats`, the benchmark drivers).
enum class BddOp : uint32_t {
  And = 0,
  Or,
  Xor,
  Not,
  Ite,
  Exists,
  AndExists,
  Rename,
  Frontier,
  Constrain,
  Restrict,
};

constexpr unsigned NumBddOps = 11;

/// Short stable name for \p Op ("And", "AndExists", ...).
const char *bddOpName(BddOp Op);

/// RAII handle to a BDD node. Copyable; keeps the node (and everything it
/// reaches) alive across garbage collections.
class Bdd {
public:
  Bdd() = default;
  Bdd(const Bdd &Other);
  Bdd(Bdd &&Other) noexcept;
  Bdd &operator=(const Bdd &Other);
  Bdd &operator=(Bdd &&Other) noexcept;
  ~Bdd();

  bool isNull() const { return Mgr == nullptr; }
  bool isZero() const;
  bool isOne() const;
  bool isConst() const { return isZero() || isOne(); }

  /// Structural equality: canonicity makes this semantic equivalence.
  bool operator==(const Bdd &Other) const {
    return Mgr == Other.Mgr && Idx == Other.Idx;
  }
  bool operator!=(const Bdd &Other) const { return !(*this == Other); }

  Bdd operator&(const Bdd &Other) const;
  Bdd operator|(const Bdd &Other) const;
  Bdd operator^(const Bdd &Other) const;
  Bdd operator!() const;
  Bdd &operator&=(const Bdd &Other) { return *this = *this & Other; }
  Bdd &operator|=(const Bdd &Other) { return *this = *this | Other; }
  Bdd &operator^=(const Bdd &Other) { return *this = *this ^ Other; }

  /// Boolean implication: (!*this) | Other.
  Bdd implies(const Bdd &Other) const { return (!*this) | Other; }
  /// Boolean equivalence: !(*this ^ Other).
  Bdd iff(const Bdd &Other) const { return !(*this ^ Other); }

  /// If-then-else with *this as the condition.
  Bdd ite(const Bdd &Then, const Bdd &Else) const;

  /// Existentially quantifies the variables of \p Cube.
  Bdd exists(BddCube Cube) const;
  /// Universally quantifies the variables of \p Cube.
  Bdd forall(BddCube Cube) const;
  /// Computes exists Cube. (*this & Other) without building the conjunction.
  Bdd andExists(const Bdd &Other, BddCube Cube) const;
  /// Renames variables according to the interned permutation.
  Bdd permute(BddPerm Perm) const;
  /// Cofactor: substitutes the constant \p Value for variable \p Var.
  Bdd restrict(unsigned Var, bool Value) const;
  /// Coudert–Madre generalized cofactor `*this ↓ Care`: agrees with *this
  /// everywhere Care holds, and maps every assignment outside Care to the
  /// closest (in the variable order's branch metric) assignment inside it.
  /// The defining identity is `f.constrain(c) & c == f & c`, so conjoining
  /// the result against the care set is always exact; the point is that
  /// `f ↓ c` is usually much smaller than `f` when `c` is narrow. Requires
  /// a non-zero care set. Note the result's support may *grow* beyond
  /// `f`'s (the cost of maximal simplification).
  Bdd constrain(const Bdd &Care) const;
  /// Coudert–Madre restrict: like `constrain`, but care-set variables
  /// above `f`'s top variable are existentially dropped instead of pulled
  /// into the result, so `support(f.restrict(c)) ⊆ support(f)`. Satisfies
  /// the same identity `f.restrict(c) & c == f & c`; simplifies less than
  /// `constrain` but never blows up the support. Requires a non-zero care
  /// set.
  Bdd restrict(const Bdd &Care) const;
  /// A don't-care-minimized frontier: some set R with
  /// `*this \ Old ⊆ R ⊆ *this`, chosen to be structurally small (shared
  /// subgraphs of the two operands are pruned to the empty set wholesale,
  /// and subgraphs where \p Old is empty are returned as-is rather than
  /// rebuilt). Fixpoint engines use this instead of an exact set
  /// difference: joining already-known tuples again is harmless under
  /// union accumulation, while the exact difference of two similar BDDs
  /// is often *larger* than either operand.
  Bdd frontier(const Bdd &Old) const;

  /// Number of satisfying assignments over \p NumVars variables.
  double satCount(unsigned NumVars) const;
  /// Number of distinct nodes in this BDD's dag (terminals excluded).
  size_t nodeCount() const;
  /// Sorted list of variables this function depends on.
  std::vector<unsigned> support() const;
  /// Evaluates under a total assignment (indexed by variable).
  bool eval(const std::vector<bool> &Assignment) const;
  /// One satisfying partial assignment: -1 don't-care, 0 false, 1 true.
  /// Requires a non-zero BDD.
  std::vector<int8_t> onePath() const;

  BddManager *manager() const { return Mgr; }
  uint32_t rawIndex() const { return Idx; }

private:
  friend class BddManager;
  friend class BddImporter;
  Bdd(BddManager *Mgr, uint32_t Idx);

  BddManager *Mgr = nullptr;
  uint32_t Idx = 0;
};

/// Operation counters for benchmarking and regression tests.
struct BddStats {
  uint64_t CacheLookups = 0; ///< Aggregate over all ops.
  uint64_t CacheHits = 0;    ///< Aggregate over all ops.
  /// Per-operation computed-cache probe/hit counters, indexed by `BddOp`.
  /// `CacheLookups`/`CacheHits` stay the running totals so existing
  /// consumers keep working; these split the same events by operation.
  uint64_t OpLookups[NumBddOps] = {};
  uint64_t OpHits[NumBddOps] = {};
  uint64_t NodesCreated = 0;
  uint64_t GcRuns = 0;
  uint64_t GcReclaimed = 0;
  size_t LiveNodes = 0;
  size_t PeakNodes = 0;

  /// Accumulates \p Other into *this: counters are summed, and the gauges
  /// (LiveNodes, PeakNodes) are summed too — merging per-worker managers
  /// reports the *total* footprint across managers, which is the number a
  /// memory budget cares about (the per-manager peaks need not have
  /// coincided, so the sum is an upper bound on the simultaneous peak).
  void merge(const BddStats &Other) {
    CacheLookups += Other.CacheLookups;
    CacheHits += Other.CacheHits;
    for (unsigned I = 0; I < NumBddOps; ++I) {
      OpLookups[I] += Other.OpLookups[I];
      OpHits[I] += Other.OpHits[I];
    }
    NodesCreated += Other.NodesCreated;
    GcRuns += Other.GcRuns;
    GcReclaimed += Other.GcReclaimed;
    LiveNodes += Other.LiveNodes;
    PeakNodes += Other.PeakNodes;
  }

  /// The counter delta `*this - Before` for the monotonically increasing
  /// counters; gauges (LiveNodes, PeakNodes) keep this snapshot's values.
  /// Query sessions report per-query work on a shared manager this way.
  BddStats since(const BddStats &Before) const {
    BddStats D = *this;
    D.CacheLookups -= Before.CacheLookups;
    D.CacheHits -= Before.CacheHits;
    for (unsigned I = 0; I < NumBddOps; ++I) {
      D.OpLookups[I] -= Before.OpLookups[I];
      D.OpHits[I] -= Before.OpHits[I];
    }
    D.NodesCreated -= Before.NodesCreated;
    D.GcRuns -= Before.GcRuns;
    D.GcReclaimed -= Before.GcReclaimed;
    return D;
  }
};

/// Owns the shared node table, the unique table, and the computed cache.
class BddManager {
public:
  /// \p CacheBits selects a computed cache of 2^CacheBits entries total,
  /// organized as a set-associative cache of \p CacheWays ways per bucket
  /// (power of two; 1 = direct-mapped, 4 = the default). Buckets age by
  /// transposition promotion: new entries enter the back (probation) way,
  /// a hit moves its entry one way toward the front, and insertion
  /// replaces the back way (or a generation-stale one). Re-used results
  /// therefore survive conflict pressure instead of being evicted by
  /// whatever hashed onto their slot last — the direct-mapped failure
  /// mode that cost heavy solves a round's working set per round.
  explicit BddManager(unsigned NumVars = 0, unsigned CacheBits = 18,
                      unsigned CacheWays = 4);
  ~BddManager();

  BddManager(const BddManager &) = delete;
  BddManager &operator=(const BddManager &) = delete;

  /// Appends a fresh variable at the bottom of the order; returns its index.
  unsigned newVar();
  unsigned numVars() const { return NumVars; }

  Bdd zero() { return Bdd(this, 0); }
  Bdd one() { return Bdd(this, 1); }
  /// The literal for variable \p Var (must be < numVars()).
  Bdd var(unsigned Var);
  /// The negative literal for variable \p Var.
  Bdd nvar(unsigned Var);

  /// Interns a quantification cube. Variables may be unsorted; duplicates
  /// are ignored. Equal sets share one id.
  BddCube makeCube(const std::vector<unsigned> &Vars);
  /// Interns a permutation given as (from, to) pairs. Unlisted variables map
  /// to themselves. Both sides must be duplicate-free.
  BddPerm makePermutation(
      const std::vector<std::pair<unsigned, unsigned>> &Pairs);

  /// Conjunction of positive literals of the cube's variables.
  Bdd cubeBdd(BddCube Cube);

  /// Runs mark-and-sweep now. Only call between operations (the public
  /// operation entry points do this automatically when the table grows).
  void gc();

  /// Sets the live-node threshold that triggers automatic gc at operation
  /// entry. Zero disables automatic collection.
  void setGcThreshold(size_t Nodes) { GcThreshold = Nodes; }
  /// The current automatic-gc threshold (collection runs may have raised
  /// it past the configured value). Per-worker managers of a parallel
  /// solve are sized from the main manager's knobs via this getter.
  size_t gcThreshold() const { return GcThreshold; }

  /// Number of computed-cache slots (2^CacheBits). Callers that adapt
  /// their algorithms to cache pressure compare working-set sizes to this.
  size_t cacheSlots() const { return CacheSlots; }
  /// Associativity of the computed cache (ways per bucket).
  unsigned cacheWays() const { return CacheWays; }

  /// Installs (or, with null, removes) a resource governor. `makeNode`
  /// then probes it every `probePeriod()` calls — charging the batch to
  /// the governor's shared node counter and throwing `ResourceInterrupt`
  /// when a deadline, node budget, or cancel flag has tripped. A throw
  /// from `makeNode` is safe: the manager's structures are consistent at
  /// every makeNode entry and GC never runs mid-recursion, so any partial
  /// operation's nodes are simply unreferenced garbage for the next
  /// collection. With no governor the probe is one compare of a zero
  /// counter per call.
  void setGovernor(support::ResourceGovernor *G) {
    Gov = G;
    GovCountdown = G ? G->probePeriod() : 0;
    GovLastCharged = Stats.NodesCreated;
  }
  support::ResourceGovernor *governor() const { return Gov; }

  /// Deterministic fault injection: the \p K-th `allocNode` from now (and
  /// every allocation after it) throws `std::bad_alloc`, emulating memory
  /// exhaustion at an exact, reproducible point. 0 disarms. Also armed at
  /// construction from the environment variable
  /// `GETAFIX_FAULT_ALLOC_AFTER=K` so whole-process fault drills (the CI
  /// daemon smoke) need no code changes.
  void setFailAfterAllocations(uint64_t K) {
    FaultFailAfter = K;
    FaultAllocs = 0;
  }

  /// Invalidates every computed-cache entry by bumping the cache
  /// generation (an O(1) operation — entries stamped with an older
  /// generation read as empty). Results computed before and after the
  /// bump are identical; this only exists so tests and callers can shed
  /// a cold working set without paying a memset.
  void clearComputedCache() { clearCache(); }

  /// Counter snapshot. The hot path maintains only the per-op cache
  /// counters; the aggregate CacheLookups/CacheHits are summed here.
  BddStats stats() const {
    BddStats S = Stats;
    for (unsigned I = 0; I < NumBddOps; ++I) {
      S.CacheLookups += S.OpLookups[I];
      S.CacheHits += S.OpHits[I];
    }
    return S;
  }
  size_t liveNodeCount() const;

  /// Number of nodes reachable from external references right now — the
  /// count `gc()` would leave behind, computed by a mark-only pass with
  /// no sweep, no free-list churn, and no cache invalidation.
  /// `liveNodeCount()` also counts garbage that merely awaits the next
  /// collection, which badly inflates long-lived sessions whose
  /// automatic-gc threshold is never reached; resident-memory gauges
  /// should use this instead. Costs a mark pass over the node table —
  /// call it at query boundaries, not per operation.
  size_t reachableNodeCount() const;

  /// Estimated heap bytes of this manager's live working set: live nodes
  /// times their storage share (node record + external refcount + unique
  /// table bucket) plus the computed cache. With \p CountCache false the
  /// cache is discounted — callers that just issued `clearComputedCache`
  /// hold an allocated-but-dead cache whose contents no longer back any
  /// working set (the long-lived-session memory budget counts it that
  /// way). An estimate, not RSS: free-listed node slots and the interned
  /// cube/permutation tables are deliberately ignored.
  size_t memoryEstimate(bool CountCache = true) const {
    return liveNodeCount() * (sizeof(Node) + 2 * sizeof(uint32_t)) +
           (CountCache ? Cache.size() * sizeof(CacheEntry) : 0);
  }

  /// `memoryEstimate` computed over `reachableNodeCount()` instead of
  /// `liveNodeCount()`: uncollected garbage is excluded, so this is the
  /// number a session memory budget should charge.
  size_t reachableMemoryEstimate(bool CountCache = true) const {
    return reachableNodeCount() * (sizeof(Node) + 2 * sizeof(uint32_t)) +
           (CountCache ? Cache.size() * sizeof(CacheEntry) : 0);
  }

private:
  friend class Bdd;

  struct Node {
    uint32_t Var;
    uint32_t Low;
    uint32_t High;
    uint32_t Next; ///< Unique-table chain.
  };

  using Op = BddOp;

  /// One computed-cache entry, packed to 16 bytes so a 4-way bucket is
  /// exactly one 64-byte cache line (the probe path is memory-bound; a
  /// wider entry made every bucket scan touch two lines and cost more
  /// than the associativity saved). Node/cube/perm indices realistically
  /// stay far below 2^27 (2 GB of node table); keys mentioning larger
  /// indices are simply not cached, which frees the top 5 bits of each
  /// operand word: W0 carries the op tag, W1/W2 carry the 10-bit cache
  /// generation. An entry is valid only when its generation matches the
  /// manager's — comparing the packed words checks operands, op, and
  /// generation in the same three compares the unpacked layout needed.
  struct CacheEntry {
    uint32_t W0 = 0; ///< F | op << IdxBits.
    uint32_t W1 = 0; ///< G | (gen & 31) << IdxBits.
    uint32_t W2 = 0; ///< H | (gen >> 5) << IdxBits; H is the third
                     ///< operand (ite) or cube/perm id.
    uint32_t Result = 0;
  };

  static constexpr unsigned IdxBits = 27;
  static constexpr uint32_t IdxMask = (1u << IdxBits) - 1;
  static constexpr uint32_t GenPeriod = 1u << 10; ///< 5+5 stolen bits.

  struct CubeSet {
    std::vector<unsigned> Vars;   ///< Sorted.
    std::vector<uint8_t> InCube;  ///< Indexed by variable.
    unsigned MinVar = UINT32_MAX; ///< Smallest quantified variable.
  };

  struct PermSet {
    std::vector<uint32_t> Map; ///< Indexed by variable; identity elsewhere.
    bool Monotone = false;     ///< Globally order-preserving.
  };

  static constexpr uint32_t TermVar = UINT32_MAX;
  static constexpr uint32_t Invalid = UINT32_MAX;

  // Node access -----------------------------------------------------------
  uint32_t varOf(uint32_t N) const { return Nodes[N].Var; }
  uint32_t lowOf(uint32_t N) const { return Nodes[N].Low; }
  uint32_t highOf(uint32_t N) const { return Nodes[N].High; }
  bool isTerminal(uint32_t N) const { return N <= 1; }

  uint32_t makeNode(uint32_t Var, uint32_t Low, uint32_t High);
  uint32_t allocNode();
  /// Re-arms the probe countdown and forwards the elapsed batch to the
  /// governor (which throws `ResourceInterrupt` on a tripped limit).
  void pollGovernor();
  void growUniqueTable();
  static uint64_t hashTriple(uint32_t A, uint32_t B, uint32_t C);

  // Computed cache --------------------------------------------------------
  bool cacheLookup(Op O, uint32_t F, uint32_t G, uint32_t H, uint32_t &Out);
  void cacheInsert(Op O, uint32_t F, uint32_t G, uint32_t H, uint32_t R);
  void clearCache();

  // Recursive cores (raw indices; never trigger gc) ------------------------
  uint32_t applyRec(Op O, uint32_t F, uint32_t G);
  uint32_t notRec(uint32_t F);
  uint32_t iteRec(uint32_t F, uint32_t G, uint32_t H);
  uint32_t existsRec(uint32_t F, uint32_t CubeId);
  uint32_t andExistsRec(uint32_t F, uint32_t G, uint32_t CubeId);
  uint32_t renameRec(uint32_t F, uint32_t PermId);
  uint32_t frontierRec(uint32_t F, uint32_t G);
  uint32_t constrainRec(uint32_t F, uint32_t C);
  uint32_t restrictRec(uint32_t F, uint32_t C);

  void maybeGc();
  /// Mark phase shared by `gc()` and `reachableNodeCount()`: a byte per
  /// node slot, 1 where the node is reachable from an external reference
  /// (terminals included).
  std::vector<uint8_t> markReachable() const;
  void ref(uint32_t N);
  void deref(uint32_t N);

  // Data ------------------------------------------------------------------
  std::vector<Node> Nodes;
  std::vector<uint32_t> ExtRefs; ///< Parallel to Nodes.
  std::vector<uint32_t> Buckets; ///< Unique table; power-of-two size.
  uint32_t FreeList = Invalid;   ///< Chained through Node::Low.
  size_t NumFree = 0;
  unsigned NumVars = 0;

  /// Backing storage, over-allocated by up to one bucket so `CacheBase`
  /// can sit on a 64-byte boundary — `operator new` only guarantees
  /// 16-byte alignment, and a misaligned 4-way bucket straddles two cache
  /// lines, which measurably slows the (memory-bound) probe path.
  std::vector<CacheEntry> Cache;
  CacheEntry *CacheBase = nullptr;     ///< 64-byte-aligned first bucket.
  size_t CacheSlots = 0;               ///< 2^CacheBits usable entries.
  uint64_t CacheBucketMask = 0; ///< Bucket index mask (buckets × ways = size).
  unsigned CacheWays = 4;
  uint32_t CacheGeneration = 1; ///< Entries with an older gen are empty.

  std::vector<CubeSet> Cubes;
  std::vector<PermSet> Perms;

  size_t GcThreshold = 1u << 22;
  BddStats Stats;

  /// Resource governance: probe every `Gov->probePeriod()` makeNode calls.
  /// `GovCountdown == 0` means "no governor" so the ungoverned hot path
  /// pays one compare, never a decrement.
  support::ResourceGovernor *Gov = nullptr;
  uint32_t GovCountdown = 0;
  uint64_t GovLastCharged = 0; ///< NodesCreated at the previous poll.

  /// Fault injection (deterministic alloc-failure drills); 0 = disarmed.
  uint64_t FaultFailAfter = 0;
  uint64_t FaultAllocs = 0;

  friend class BddImporter;
};

/// Cached cross-manager import: copies BDDs from one manager into another
/// that shares the same variable order (variable index == level in both).
/// This is the translation layer under the parallel SCC scheduler's
/// per-worker managers — a worker solves its SCC in isolation, then its
/// relation values are imported into the main manager, where canonicity
/// makes them bit-identical to the BDDs a sequential solve would have
/// built (the imported function is the same, the order is the same, and a
/// ROBDD is unique for a function and an order).
///
/// The memo maps source node index -> destination *handle*: every
/// destination node an import built stays externally referenced for the
/// importer's lifetime, so destination GC can never invalidate an entry.
/// Source-side validity is generation-checked instead: a source GC may
/// free and later reuse node indices, so the whole memo is dropped
/// whenever the source manager's collection count changes.
///
/// Thread discipline: an importer (and both its managers) must be
/// externally synchronized — the parallel scheduler serializes every
/// main-manager touch (imports of inputs, exports of solved SCCs) behind
/// one mutex, while worker managers are only ever touched by the worker
/// that owns them.
class BddImporter {
public:
  BddImporter(BddManager &Src, BddManager &Dst) : Src(Src), Dst(Dst) {
    assert(&Src != &Dst && "importing within one manager is the identity");
    assert(Src.numVars() <= Dst.numVars() &&
           "destination must know every source variable");
  }

  /// Copies \p F (a BDD of the source manager) into the destination
  /// manager; null imports as null.
  Bdd import(const Bdd &F);

  /// Memoized translations currently held (and kept alive in the
  /// destination).
  size_t memoSize() const { return Memo.size(); }
  void clear() { Memo.clear(); }

  /// Cumulative count of source nodes translated into the destination over
  /// the importer's lifetime (memo hits are free and not counted). This is
  /// the per-node cost of crossing the manager boundary; the parallel
  /// evaluator samples it to report import overhead.
  uint64_t translations() const { return NumTranslations; }

private:
  uint32_t importRec(uint32_t N);

  BddManager &Src;
  BddManager &Dst;
  std::unordered_map<uint32_t, Bdd> Memo;
  uint64_t SrcGcRuns = 0;
  uint64_t NumTranslations = 0;
};

} // namespace getafix

#endif // GETAFIX_BDD_BDD_H
