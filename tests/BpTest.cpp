//===- BpTest.cpp - Boolean program front-end tests -----------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Lexer.h"
#include "bp/Parser.h"
#include "bp/Printer.h"

#include <gtest/gtest.h>

using namespace getafix;
using namespace getafix::bp;

namespace {

std::unique_ptr<Program> parseOk(const char *Src) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(Src, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

unsigned countErrors(const char *Src) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(Src, Diags);
  EXPECT_EQ(Prog, nullptr);
  return Diags.errorCount();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, TokensAndComments) {
  DiagnosticEngine Diags;
  Lexer Lex("decl x; // comment\n x := T & !y | (*) ; /* block\n */ fi",
            Diags);
  std::vector<TokenKind> Kinds;
  for (Token Tok = Lex.next(); !Tok.is(TokenKind::Eof); Tok = Lex.next())
    Kinds.push_back(Tok.Kind);
  std::vector<TokenKind> Expected{
      TokenKind::KwDecl, TokenKind::Identifier, TokenKind::Semicolon,
      TokenKind::Identifier, TokenKind::Assign, TokenKind::KwTrue,
      TokenKind::Amp, TokenKind::Bang, TokenKind::Identifier,
      TokenKind::Pipe, TokenKind::LParen, TokenKind::Star,
      TokenKind::RParen, TokenKind::Semicolon, TokenKind::KwFi};
  EXPECT_EQ(Kinds, Expected);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, TracksLocations) {
  DiagnosticEngine Diags;
  Lexer Lex("a\n  b", Diags);
  Token A = Lex.next();
  EXPECT_EQ(A.Loc.Line, 1u);
  Token B = Lex.next();
  EXPECT_EQ(B.Loc.Line, 2u);
  EXPECT_EQ(B.Loc.Column, 3u);
}

TEST(LexerTest, ReportsUnknownCharacters) {
  DiagnosticEngine Diags;
  Lexer Lex("a $ b", Diags);
  while (!Lex.next().is(TokenKind::Eof))
    ;
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser + Sema
//===----------------------------------------------------------------------===//

TEST(ParserTest, FullFeatureProgram) {
  auto Prog = parseOk(R"(
decl g1, g2;
main() begin
  decl a, b;
  a, b := f(g1, !g2);
  while (a) do
    call p(a & b);
    a := *;
  od;
  if (b) then L1: skip; else goto L2; fi;
  L2: assume(g1 | g2);
end
f(x, y) begin
  return x & y, x | y;
end
p(z) begin
  g1 := z;
end
)");
  EXPECT_EQ(Prog->numGlobals(), 2u);
  EXPECT_EQ(Prog->Procs.size(), 3u);
  EXPECT_EQ(Prog->proc(Prog->ProcIds.at("f")).NumReturns, 2u);
  EXPECT_EQ(Prog->proc(Prog->ProcIds.at("p")).NumReturns, 0u);
  unsigned ProcId = ~0u;
  EXPECT_NE(Prog->findLabel("L1", &ProcId), nullptr);
  EXPECT_EQ(ProcId, Prog->MainId);
}

TEST(ParserTest, SemaRejectsUndeclaredVariable) {
  EXPECT_GE(countErrors("main() begin x := T; end"), 1u);
}

TEST(ParserTest, SemaRejectsMissingMain) {
  EXPECT_GE(countErrors("f() begin skip; end"), 1u);
}

TEST(ParserTest, SemaRejectsCallToMain) {
  EXPECT_GE(countErrors("main() begin call main(); end"), 1u);
}

TEST(ParserTest, SemaRejectsArityMismatch) {
  EXPECT_GE(countErrors(R"(
main() begin decl r; r := f(T, F); end
f(x) begin return x; end
)"),
            1u);
}

TEST(ParserTest, SemaRejectsReturnArityDisagreement) {
  EXPECT_GE(countErrors(R"(
main() begin skip; end
f(x) begin
  if (x) then return x; fi;
  return x, x;
end
)"),
            1u);
}

TEST(ParserTest, SemaRejectsCallStatementWithReturnValues) {
  EXPECT_GE(countErrors(R"(
main() begin call f(); end
f() begin return T; end
)"),
            1u);
}

TEST(ParserTest, SemaRejectsShadowingGlobal) {
  EXPECT_GE(countErrors(R"(
decl g;
main() begin decl g; skip; end
)"),
            1u);
}

TEST(ParserTest, SemaRejectsGotoUnknownLabel) {
  EXPECT_GE(countErrors("main() begin goto Nowhere; end"), 1u);
}

TEST(ParserTest, SemaRejectsDuplicateAssignTarget) {
  EXPECT_GE(countErrors(R"(
decl a;
main() begin a, a := T, F; end
)"),
            1u);
}

TEST(ParserTest, ConcurrentSharedAndThreads) {
  DiagnosticEngine Diags;
  auto Conc = parseConcurrentProgram(R"(
shared decl s1, s2;
thread
main() begin s1 := T; end
end
thread
main() begin
  if (s1) then s2 := T; fi;
end
end
)",
                                     Diags);
  ASSERT_TRUE(Conc != nullptr) << Diags.str();
  EXPECT_EQ(Conc->numThreads(), 2u);
  EXPECT_EQ(Conc->SharedGlobals.size(), 2u);
  EXPECT_EQ(Conc->Threads[1]->Globals, Conc->SharedGlobals);
}

TEST(ParserTest, RoundTripPrintParsePrint) {
  const char *Src = R"(
decl g;
main() begin
  decl a;
  a := *;
  while (a & !g) do
    a := f(a);
  od;
  if (g) then E: skip; fi;
end
f(x) begin
  return !x;
end
)";
  auto Prog = parseOk(Src);
  std::string Printed = printProgram(*Prog);
  DiagnosticEngine Diags;
  auto Reparsed = parseProgram(Printed, Diags);
  ASSERT_TRUE(Reparsed != nullptr) << Diags.str() << "\n" << Printed;
  EXPECT_EQ(printProgram(*Reparsed), Printed)
      << "printing must be a fixed point of parse-print";
}

//===----------------------------------------------------------------------===//
// CFG construction
//===----------------------------------------------------------------------===//

TEST(CfgTest, EntryIsPcZeroAndExitsExist) {
  auto Prog = parseOk(R"(
main() begin
  skip;
end
f(x) begin
  if (x) then return T; fi;
  return F;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  ASSERT_EQ(Cfg.Procs.size(), 2u);
  // f has two explicit exits plus the implicit fall-through exit.
  const ProcCfg &F = Cfg.Procs[Prog->ProcIds.at("f")];
  EXPECT_EQ(F.Exits.size(), 3u);
  unsigned ImplicitCount = 0;
  for (const CfgExit &X : F.Exits)
    ImplicitCount += X.Implicit;
  EXPECT_EQ(ImplicitCount, 1u);
}

TEST(CfgTest, WhileProducesBackEdge) {
  auto Prog = parseOk(R"(
decl g;
main() begin
  while (g) do
    g := F;
  od;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  const ProcCfg &Main = Cfg.Procs[Prog->MainId];
  bool HasBackEdge = false;
  for (const CfgEdge &E : Main.Edges)
    if (E.To < E.From)
      HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge);
}

TEST(CfgTest, CallEdgeCarriesAcrossPair) {
  auto Prog = parseOk(R"(
main() begin
  decl r;
  r := f(T);
  skip;
end
f(x) begin
  return x;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  const ProcCfg &Main = Cfg.Procs[Prog->MainId];
  unsigned NumCalls = 0;
  for (const CfgEdge &E : Main.Edges)
    if (E.K == CfgEdge::Kind::Call) {
      ++NumCalls;
      EXPECT_EQ(E.CalleeId, Prog->ProcIds.at("f"));
      EXPECT_EQ(E.Lhs.size(), 1u);
      EXPECT_GT(E.To, E.From) << "return point follows the call";
    }
  EXPECT_EQ(NumCalls, 1u);
}

TEST(CfgTest, GotoTargetsResolve) {
  auto Prog = parseOk(R"(
main() begin
  goto Down;
  skip;
Down:
  skip;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  unsigned ProcId = 0, Pc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("Down", ProcId, Pc));
  const ProcCfg &Main = Cfg.Procs[Prog->MainId];
  bool Jumps = false;
  for (const CfgEdge &E : Main.Edges)
    if (E.From == 0 && E.To == Pc && E.K == CfgEdge::Kind::Assume)
      Jumps = true;
  EXPECT_TRUE(Jumps);
}

TEST(CfgTest, LabelLookupAcrossProcs) {
  auto Prog = parseOk(R"(
main() begin
  call f();
end
f() begin
  Deep: skip;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  unsigned ProcId = 0, Pc = 0;
  ASSERT_TRUE(Cfg.findLabelPc("Deep", ProcId, Pc));
  EXPECT_EQ(ProcId, Prog->ProcIds.at("f"));
  EXPECT_FALSE(Cfg.findLabelPc("Missing", ProcId, Pc));
}

//===----------------------------------------------------------------------===//
// Call graph + SCC condensation (per-procedure summary split substrate)
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, DiamondIsFourSingletonSccsCalleesFirst) {
  auto Prog = parseOk(R"(
main() begin
  call a();
  call b();
end
a() begin
  call c();
end
b() begin
  call c();
end
c() begin
  skip;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  CallGraph CG = buildCallGraph(Cfg);
  ASSERT_EQ(CG.numSccs(), 4u);
  // Callees-first numbering: if SCC a calls SCC b then b < a, so the
  // shared leaf c comes before both callers and main's SCC is last.
  unsigned MainScc = CG.SccOf[Prog->MainId];
  unsigned CScc = CG.SccOf[Prog->ProcIds.at("c")];
  EXPECT_EQ(MainScc, CG.numSccs() - 1);
  for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc)
    for (unsigned Callee : CG.SccCallees[Scc])
      EXPECT_LT(Callee, Scc);
  EXPECT_LT(CScc, CG.SccOf[Prog->ProcIds.at("a")]);
  EXPECT_LT(CScc, CG.SccOf[Prog->ProcIds.at("b")]);
  // Edge lists are deduplicated: main calls a and b once each.
  EXPECT_EQ(CG.Callees[Prog->MainId].size(), 2u);
}

TEST(CallGraphTest, MutualRecursionCollapsesToOneScc) {
  auto Prog = parseOk(R"(
decl g;
main() begin
  call even();
end
even() begin
  if (g) then call odd(); fi;
end
odd() begin
  if (g) then call even(); fi;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  CallGraph CG = buildCallGraph(Cfg);
  ASSERT_EQ(CG.numSccs(), 2u);
  unsigned EvenScc = CG.SccOf[Prog->ProcIds.at("even")];
  EXPECT_EQ(EvenScc, CG.SccOf[Prog->ProcIds.at("odd")]);
  EXPECT_NE(EvenScc, CG.SccOf[Prog->MainId]);
  // Members are listed in ascending procedure id.
  ASSERT_EQ(CG.SccMembers[EvenScc].size(), 2u);
  EXPECT_LT(CG.SccMembers[EvenScc][0], CG.SccMembers[EvenScc][1]);
}

TEST(CallGraphTest, SelfRecursionIsItsOwnScc) {
  auto Prog = parseOk(R"(
main() begin
  call dig();
end
dig() begin
  if (*) then call dig(); fi;
end
)");
  ProgramCfg Cfg = buildCfg(*Prog);
  CallGraph CG = buildCallGraph(Cfg);
  ASSERT_EQ(CG.numSccs(), 2u);
  unsigned Dig = Prog->ProcIds.at("dig");
  EXPECT_EQ(CG.SccMembers[CG.SccOf[Dig]].size(), 1u);
  // The self loop appears in the proc-level edges but not the SCC edges.
  EXPECT_EQ(CG.Callees[Dig].size(), 1u);
  EXPECT_TRUE(CG.SccCallees[CG.SccOf[Dig]].empty());
}
