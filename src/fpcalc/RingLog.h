//===- RingLog.h - Delta-compressed per-round value log ---------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for the per-round "onion ring" values a fixpoint solve records
/// for cross-query replay and witness extraction. Retaining every round's
/// full BDD — as the original implementation did — keeps the entire Tarski
/// chain live for a session's lifetime, which is the classic state-space
/// memory killer for long-lived model-checking servers. The rounds of a
/// (semi-)naive solve form an increasing chain, so this log stores each
/// round as its *exact* delta against the previous round (`R_i & !R_{i-1}`)
/// plus a periodic full keyframe every K rounds to bound the cost of
/// reconstituting a full ring (an OR fold of at most K pieces).
///
/// Two facts make the diet invisible to every consumer:
///
///  - Exactness: `Bdd::frontier` may over-approximate (it is don't-care
///    minimized), so deltas are computed with plain conjunction against the
///    previous ring, never with `frontier`. A round that is *not* a
///    superset of its predecessor (possible only in non-monotone systems
///    such as the entry-forward-opt mark chain, and never observed for its
///    value chain) is stored as a forced keyframe, so reconstruction never
///    assumes monotonicity.
///
///  - Canonicity: reconstitution ORs the pieces from the nearest keyframe
///    upward; the result is set-equal to the recorded round, and by ROBDD
///    canonicity set-equal means the *same node* in the same manager. So
///    replay stop-checks, `answersFromState`, witness rank queries, and the
///    backward walks over reconstituted rings are bit-identical to a log
///    of full rings.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_FPCALC_RINGLOG_H
#define GETAFIX_FPCALC_RINGLOG_H

#include "bdd/Bdd.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace getafix {
namespace fpc {

class RingLog {
public:
  /// Appends the next round's full value; the log decides whether to store
  /// it as a keyframe or as its delta against the previous round.
  void append(const Bdd &Ring);

  /// Rings recorded so far (piece i corresponds to fixpoint round i+1).
  size_t size() const { return Pieces.size(); }
  bool empty() const { return Pieces.empty(); }

  /// Reconstitutes ring \p I as a full value — canonically identical to
  /// the value `append` was given. At most one keyframe interval of ORs.
  Bdd ring(size_t I) const;

  /// The newest ring, kept full. It aliases the live fixpoint value the
  /// solve holds anyway, so retaining it costs no extra nodes.
  const Bdd &last() const {
    assert(!Pieces.empty() && "last() on an empty ring log");
    return Last;
  }

  /// Index of the first ring intersecting \p T, or `size()` when none
  /// does. Runs over the stored pieces directly — no reconstitution — and
  /// is exact for arbitrary chains: if ring i is the first to intersect T
  /// then the intersecting tuple is absent from ring i-1, hence present in
  /// piece i (delta or keyframe alike), and every piece j is a subset of
  /// ring j, so no earlier piece can intersect first.
  size_t firstIntersecting(const Bdd &T) const;

  /// A full keyframe every K appended rounds: 1 stores every round full
  /// (the pre-diet behavior, the differential baseline), 0 stores only the
  /// first round full (maximal compression, unbounded reconstitution
  /// chains). Applies to rounds appended after the call.
  void setKeyframeInterval(uint64_t K) { Interval = K; }
  uint64_t keyframeInterval() const { return Interval; }

  void clear() {
    Pieces.clear();
    Last = Bdd();
    SinceKeyframe = 0;
    NumKeyframes = 0;
  }

  // Introspection for tests and memory audits --------------------------------
  /// Pieces stored as full keyframes (the first piece always is; a
  /// non-monotone step forces one regardless of the interval).
  size_t keyframes() const { return NumKeyframes; }
  /// Summed dag sizes of the stored pieces (shared nodes counted once per
  /// piece) — the test-level gauge that the diet shrinks retention.
  size_t storedNodes() const;

private:
  struct Piece {
    Bdd Value; ///< Full ring (keyframe) or exact delta vs the prior ring.
    bool Keyframe = false;
  };

  std::vector<Piece> Pieces;
  Bdd Last; ///< Full value of the newest ring.
  uint64_t Interval = 8;
  uint64_t SinceKeyframe = 0; ///< Deltas appended since the last keyframe.
  size_t NumKeyframes = 0;
};

} // namespace fpc
} // namespace getafix

#endif // GETAFIX_FPCALC_RINGLOG_H
