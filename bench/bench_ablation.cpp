//===- bench_ablation.cpp - Design-choice ablations ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Ablates the paper's engineering claims on terminator-style workloads:
//   - Section 4.2: splitting the Return relation (ReturnA/ReturnB) versus
//     conjoining the two summary BDDs directly,
//   - Section 4.3: the Relevant-PC frontier restriction versus plain
//     entry-forward iteration,
//   - solver-level early termination on positive instances,
//   - the evaluator's semi-naive (delta) core versus the paper's literal
//     naive semantics, on the terminator and bluetooth suites,
//   - the Coudert–Madre constrain-based frontier product versus the plain
//     relational product (same semi-naive core, knob off).
//
// Pass --smoke to shrink every workload for a seconds-long CI run,
// --cache-bits n to size the BDD computed cache for every solve, and
// --json FILE to additionally record every row (verdict, rounds, node and
// peak counters) as a BENCH_*.json report — CI runs the smoke at two cache
// sizes and fails on any verdict drift between the reports.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

#include <cstring>

using namespace getafix;
using namespace getafix::bench;

namespace {

/// Knobs shared by every solve in this driver.
unsigned CacheBits = 18;
JsonReport Report;
bool WantJson = false;

void recordRow(const char *Section, const char *Case_, const char *Variant,
               const EngineRow &R) {
  if (!WantJson)
    return;
  JsonReport::Row Row;
  Row.field("section", Section)
      .field("case", Case_)
      .field("variant", Variant)
      .field("reachable", R.Reachable)
      .field("iterations", R.Iterations)
      .field("delta_rounds", R.DeltaRounds)
      .field("nodes_created", R.NodesCreated)
      .field("peak_live_nodes", R.PeakLiveNodes)
      .field("cache_hit_rate", R.CacheHitRate)
      .field("seconds", R.Seconds);
  Report.add(Row);
}

/// One naive-vs-semi-naive comparison row. NodesCreated is the BDD-op
/// proxy the acceptance criterion counts; both rows must agree on the
/// verdict and the number of Tarski rounds (the delta core computes the
/// identical per-round sequence, just cheaper).
void printStrategyRow(const char *Name, const EngineRow &Naive,
                      const EngineRow &Semi) {
  if (Naive.Reachable != Semi.Reachable ||
      Naive.Iterations != Semi.Iterations) {
    std::fprintf(stderr,
                 "%s: strategy ablation DISAGREES (verdict %d/%d, "
                 "rounds %llu/%llu)\n",
                 Name, Naive.Reachable, Semi.Reachable,
                 (unsigned long long)Naive.Iterations,
                 (unsigned long long)Semi.Iterations);
    std::exit(1);
  }
  double NodeRatio = Semi.NodesCreated
                         ? double(Naive.NodesCreated) /
                               double(Semi.NodesCreated)
                         : 0.0;
  std::printf("%-26s %9.3fs %9.3fs %11llu %11llu %7.2fx %6llu/%llu\n",
              Name, Naive.Seconds, Semi.Seconds,
              (unsigned long long)Naive.NodesCreated,
              (unsigned long long)Semi.NodesCreated, NodeRatio,
              (unsigned long long)Semi.DeltaRounds,
              (unsigned long long)Semi.Iterations);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(Argv[I], "--cache-bits") == 0 && I + 1 < Argc) {
      int Bits = std::atoi(Argv[++I]);
      if (Bits < 2 || Bits > 30) {
        std::fprintf(stderr, "--cache-bits must be in [2, 30]\n");
        return 2;
      }
      CacheBits = unsigned(Bits);
    } else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc) {
      JsonPath = Argv[++I];
      WantJson = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ablation [--smoke] [--cache-bits n] "
                   "[--json FILE]\n");
      return 2;
    }
  }
  std::printf("=== Ablations (Sections 4.2 / 4.3) ===\n");
  std::printf("%-24s %10s %10s %10s %12s\n", "case", "EF-unsplit",
              "EF-split", "EF-opt", "simple-4.1");

  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);

    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    EngineRow Unsplit = runEngine(Parsed.Cfg, W.TargetLabel, "ef", Opts);
    EngineRow Split = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt", Opts);
    EngineRow Simple = runEngine(Parsed.Cfg, W.TargetLabel, "summary", Opts);
    std::printf("%-24s %9.3fs %9.3fs %9.3fs %11.3fs\n", W.Name.c_str(),
                Unsplit.Seconds, Split.Seconds, Opt.Seconds,
                Simple.Seconds);
    recordRow("algorithms", W.Name.c_str(), "ef", Unsplit);
    recordRow("algorithms", W.Name.c_str(), "ef-split", Split);
    recordRow("algorithms", W.Name.c_str(), "ef-opt", Opt);
    recordRow("algorithms", W.Name.c_str(), "summary", Simple);
  }

  std::printf("\n--- early termination (positive driver instances) ---\n");
  std::printf("%-24s %12s %12s\n", "case", "early-stop", "full-fixpoint");
  for (uint64_t Seed : Smoke ? std::vector<unsigned>{7u}
                             : std::vector<unsigned>{7u, 8u, 9u}) {
    gen::DriverParams P;
    P.NumProcs = Smoke ? 12 : 24;
    P.StmtsPerProc = Smoke ? 10 : 14;
    P.Reachable = true;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    EngineRow Fast = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    Opts.EarlyStop = false;
    EngineRow Full = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    std::printf("%-24s %11.3fs %11.3fs\n", W.Name.c_str(), Fast.Seconds,
                Full.Seconds);
    recordRow("early-stop", W.Name.c_str(), "early", Fast);
    recordRow("early-stop", W.Name.c_str(), "full", Full);
  }

  // Naive vs semi-naive: the delta core must agree on verdict and round
  // count while allocating fewer BDD nodes and finishing sooner. The
  // terminator rows are negative instances (a full fixpoint is forced);
  // the bluetooth rows are Figure-3 configurations of the concurrent
  // engine at a bound where the Reach system iterates long enough for the
  // per-round frontier to shrink well below the accumulated relation.
  std::printf("\n--- evaluation strategy (naive vs semi-naive) ---\n");
  std::printf("%-26s %10s %10s %11s %11s %8s %8s\n", "case", "naive",
              "semi", "nodes-nv", "nodes-sn", "ratio", "delta/it");
  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    SolverOptions Opts;
    Opts.CacheBits = CacheBits;
    Opts.Strategy = fpc::EvalStrategy::Naive;
    EngineRow Naive = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    Opts.Strategy = fpc::EvalStrategy::SemiNaive;
    EngineRow Semi = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
    printStrategyRow(W.Name.c_str(), Naive, Semi);
    recordRow("strategy", W.Name.c_str(), "naive", Naive);
    recordRow("strategy", W.Name.c_str(), "semi-naive", Semi);
  }
  {
    // (1,1,4) is the light two-thread row; (2,2,4) is the heavy Figure-3
    // configuration whose rounds overflow the computed cache — the regime
    // where the narrow (minimized-difference) frontier pays off.
    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false; // Figure 3 reports the full reachable set.
      Opts.Strategy = fpc::EvalStrategy::Naive;
      EngineRow Naive = runConcEngine(P, "ERR", "conc", Opts);
      Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      EngineRow Semi = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      printStrategyRow(Name, Naive, Semi);
      recordRow("strategy", Name, "naive", Naive);
      recordRow("strategy", Name, "semi-naive", Semi);
    }
  }

  // Frontier-cofactor A/B: the same semi-naive core with the narrow-round
  // generalized cofactor off, as Coudert–Madre constrain (maximal
  // simplification, may grow the operand's support), and as Coudert–Madre
  // restrict (simplifies less, support never grows). All three are
  // bit-identical by construction — verdict, rounds, and final summary
  // size are asserted — so the columns worth reading are wall-clock,
  // allocated nodes, and the measured support-growth factor of the
  // cofactored operand (restrict ≤ 1.00 by construction).
  std::printf("\n--- frontier cofactor (off / constrain / restrict) ---\n");
  std::printf("%-26s %10s %10s %10s %11s %11s %8s %8s\n", "case", "off",
              "constr", "restr", "nodes-co", "nodes-re", "grow-co",
              "grow-re");
  {
    auto checkAgree = [](const char *Name, const EngineRow &A,
                         const EngineRow &B) {
      if (A.Reachable != B.Reachable || A.Iterations != B.Iterations ||
          A.Nodes != B.Nodes) {
        std::fprintf(stderr, "%s: cofactor ablation DISAGREES\n", Name);
        std::exit(1);
      }
    };
    auto printCofactorRow = [&](const char *Name, const EngineRow &Off,
                                const EngineRow &Con, const EngineRow &Res) {
      checkAgree(Name, Off, Con);
      checkAgree(Name, Off, Res);
      std::printf("%-26s %9.3fs %9.3fs %9.3fs %11llu %11llu %8.2f %8.2f\n",
                  Name, Off.Seconds, Con.Seconds, Res.Seconds,
                  (unsigned long long)Con.NodesCreated,
                  (unsigned long long)Res.NodesCreated,
                  Con.cofactorSupportGrowth(), Res.cofactorSupportGrowth());
      recordRow("cofactor", Name, "off", Off);
      recordRow("cofactor", Name, "constrain", Con);
      recordRow("cofactor", Name, "restrict", Res);
    };

    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false;
      Opts.FrontierCofactor = fpc::CofactorMode::Off;
      EngineRow Off = runConcEngine(P, "ERR", "conc", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Constrain;
      EngineRow Con = runConcEngine(P, "ERR", "conc", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Restrict;
      EngineRow Res = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      printCofactorRow(Name, Off, Con, Res);
    }
    for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                               : std::vector<unsigned>{5u, 6u}) {
      gen::TerminatorParams P;
      P.CounterBits = Bits;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      SolverOptions Opts;
      Opts.CacheBits = CacheBits;
      Opts.FrontierCofactor = fpc::CofactorMode::Off;
      EngineRow Off = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Constrain;
      EngineRow Con = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      Opts.FrontierCofactor = fpc::CofactorMode::Restrict;
      EngineRow Res = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split", Opts);
      printCofactorRow(W.Name.c_str(), Off, Con, Res);
    }
  }

  // Cross-query sessions: N targets over one program, solved as N fresh
  // facade calls versus one SolverSession::solveAll. The session saturates
  // the summary once (driven by the hardest target) and replays the
  // recorded rounds for the rest, so the acceptance criterion is a
  // measurable speedup at bit-identical per-target verdicts and rounds —
  // the drift check here mirrors the SessionTest differential.
  std::printf("\n--- cross-query sessions (solveAll vs N fresh solves) ---\n");
  std::printf("%-26s %3s %11s %11s %8s %16s\n", "case", "n", "fresh-total",
              "session", "speedup", "reused/recomp");
  {
    struct SessionCase {
      std::string Name;
      std::string Source;
      std::vector<Query> Queries;
      SolverOptions Opts;
    };
    std::vector<SessionCase> Cases;

    // Terminator: a negative instance (first query saturates) plus point
    // targets spread through procedure 0.
    {
      gen::TerminatorParams P;
      P.CounterBits = Smoke ? 4 : 6;
      P.NumDeadVars = 4;
      P.Style = gen::DeadVarStyle::Iterative;
      P.Reachable = false;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);
      SessionCase C;
      C.Name = W.Name + "-multi";
      C.Source = W.Source;
      C.Opts.CacheBits = CacheBits;
      C.Queries.push_back(Query::fromSource("").target(W.TargetLabel));
      unsigned NumPcs = Parsed.Cfg.Procs[0].NumPcs;
      for (unsigned I = 1; I <= 5; ++I)
        C.Queries.push_back(
            Query::fromSource("").targetPoint(0, (I * NumPcs) / 7));
      Cases.push_back(std::move(C));
    }

    // Bluetooth: the Figure-3 concurrent model, targets across threads.
    // Figure 3 reports full reachable sets (no early stop), which is also
    // the query-server shape: every fresh solve saturates, the session
    // saturates once.
    {
      SessionCase C;
      C.Name = Smoke ? "bluetooth-1a1s-k3-multi" : "bluetooth-1a1s-k4-multi";
      C.Source = gen::bluetoothModel(1, 1);
      C.Opts.CacheBits = CacheBits;
      C.Opts.EarlyStop = false;
      C.Opts.ContextBound = Smoke ? 3 : 4;
      C.Queries.push_back(Query::fromSource("").target("ERR"));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 1, 0));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 2, 0));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 1, 1));
      C.Queries.push_back(Query::fromSource("").targetPoint(0, 2, 1));
      Cases.push_back(std::move(C));
    }

    for (SessionCase &C : Cases) {
      // N fresh facade calls.
      std::vector<SolveResult> Fresh;
      double FreshTotal = 0;
      for (const Query &Q : C.Queries) {
        Query FQ = Q;
        FQ.Source = C.Source;
        SolveResult R = Solver::solve(FQ, C.Opts);
        if (!R.ok()) {
          std::fprintf(stderr, "%s: fresh solve failed: %s\n",
                       C.Name.c_str(), R.Error.c_str());
          std::exit(1);
        }
        FreshTotal += R.Seconds;
        Fresh.push_back(std::move(R));
      }

      // One session, one batch.
      std::unique_ptr<SolverSession> S =
          Solver::open(Query::fromSource(C.Source), C.Opts);
      if (!S->ok()) {
        std::fprintf(stderr, "%s: open failed: %s\n", C.Name.c_str(),
                     S->error().c_str());
        std::exit(1);
      }
      std::vector<SolveResult> Sess = S->solveAll(C.Queries);
      double SessTotal = 0;
      uint64_t Reused = 0, Recomputed = 0;
      for (size_t I = 0; I < Sess.size(); ++I) {
        const SolveResult &F = Fresh[I];
        const SolveResult &R = Sess[I];
        if (!R.ok() || F.Reachable != R.Reachable ||
            F.Iterations != R.Iterations) {
          std::fprintf(stderr,
                       "%s target %zu: session DISAGREES with fresh "
                       "(verdict %d/%d, rounds %llu/%llu)\n",
                       C.Name.c_str(), I, F.Reachable, R.Reachable,
                       (unsigned long long)F.Iterations,
                       (unsigned long long)R.Iterations);
          std::exit(1);
        }
        SessTotal += R.Seconds;
        Reused += R.SummariesReused;
        Recomputed += R.SummariesRecomputed;
        char Target[48];
        std::snprintf(Target, sizeof(Target), "%s#t%zu", C.Name.c_str(), I);
        recordRow("session", Target, "fresh", rowOrDie(F, "fresh"));
        recordRow("session", Target, "session", rowOrDie(R, "session"));
      }
      double Speedup = SessTotal > 0 ? FreshTotal / SessTotal : 0.0;
      std::printf("%-26s %3zu %10.3fs %10.3fs %7.2fx %10llu/%llu\n",
                  C.Name.c_str(), C.Queries.size(), FreshTotal, SessTotal,
                  Speedup, (unsigned long long)Reused,
                  (unsigned long long)Recomputed);
      if (WantJson) {
        JsonReport::Row Row;
        Row.field("section", "session-total")
            .field("case", C.Name)
            .field("variant", "totals")
            .field("targets", uint64_t(C.Queries.size()))
            .field("fresh_seconds", FreshTotal)
            .field("session_seconds", SessTotal)
            .field("speedup", Speedup)
            .field("summaries_reused", Reused)
            .field("summaries_recomputed", Recomputed);
        Report.add(Row);
      }
    }
  }

  if (WantJson)
    Report.write(JsonPath);
  return 0;
}
