//===- bench_ablation.cpp - Design-choice ablations ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Ablates the paper's engineering claims on terminator-style workloads:
//   - Section 4.2: splitting the Return relation (ReturnA/ReturnB) versus
//     conjoining the two summary BDDs directly,
//   - Section 4.3: the Relevant-PC frontier restriction versus plain
//     entry-forward iteration,
//   - solver-level early termination on positive instances,
//   - the evaluator's semi-naive (delta) core versus the paper's literal
//     naive semantics, on the terminator and bluetooth suites.
//
// Pass --smoke to shrink every workload for a seconds-long CI run.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

#include <cstring>

using namespace getafix;
using namespace getafix::bench;

namespace {

/// One naive-vs-semi-naive comparison row. NodesCreated is the BDD-op
/// proxy the acceptance criterion counts; both rows must agree on the
/// verdict and the number of Tarski rounds (the delta core computes the
/// identical per-round sequence, just cheaper).
void printStrategyRow(const char *Name, const EngineRow &Naive,
                      const EngineRow &Semi) {
  if (Naive.Reachable != Semi.Reachable ||
      Naive.Iterations != Semi.Iterations) {
    std::fprintf(stderr,
                 "%s: strategy ablation DISAGREES (verdict %d/%d, "
                 "rounds %llu/%llu)\n",
                 Name, Naive.Reachable, Semi.Reachable,
                 (unsigned long long)Naive.Iterations,
                 (unsigned long long)Semi.Iterations);
    std::exit(1);
  }
  double NodeRatio = Semi.NodesCreated
                         ? double(Naive.NodesCreated) /
                               double(Semi.NodesCreated)
                         : 0.0;
  std::printf("%-26s %9.3fs %9.3fs %11llu %11llu %7.2fx %6llu/%llu\n",
              Name, Naive.Seconds, Semi.Seconds,
              (unsigned long long)Naive.NodesCreated,
              (unsigned long long)Semi.NodesCreated, NodeRatio,
              (unsigned long long)Semi.DeltaRounds,
              (unsigned long long)Semi.Iterations);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
  std::printf("=== Ablations (Sections 4.2 / 4.3) ===\n");
  std::printf("%-24s %10s %10s %10s %12s\n", "case", "EF-unsplit",
              "EF-split", "EF-opt", "simple-4.1");

  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);

    EngineRow Unsplit = runEngine(Parsed.Cfg, W.TargetLabel, "ef");
    EngineRow Split = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split");
    EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt");
    EngineRow Simple = runEngine(Parsed.Cfg, W.TargetLabel, "summary");
    std::printf("%-24s %9.3fs %9.3fs %9.3fs %11.3fs\n", W.Name.c_str(),
                Unsplit.Seconds, Split.Seconds, Opt.Seconds,
                Simple.Seconds);
  }

  std::printf("\n--- early termination (positive driver instances) ---\n");
  std::printf("%-24s %12s %12s\n", "case", "early-stop", "full-fixpoint");
  for (uint64_t Seed : Smoke ? std::vector<unsigned>{7u}
                             : std::vector<unsigned>{7u, 8u, 9u}) {
    gen::DriverParams P;
    P.NumProcs = Smoke ? 12 : 24;
    P.StmtsPerProc = Smoke ? 10 : 14;
    P.Reachable = true;
    P.Seed = Seed;
    gen::Workload W = gen::driverProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    EngineRow Fast = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split",
                               /*EarlyStop=*/true);
    EngineRow Full = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split",
                               /*EarlyStop=*/false);
    std::printf("%-24s %11.3fs %11.3fs\n", W.Name.c_str(), Fast.Seconds,
                Full.Seconds);
  }

  // Naive vs semi-naive: the delta core must agree on verdict and round
  // count while allocating fewer BDD nodes and finishing sooner. The
  // terminator rows are negative instances (a full fixpoint is forced);
  // the bluetooth rows are Figure-3 configurations of the concurrent
  // engine at a bound where the Reach system iterates long enough for the
  // per-round frontier to shrink well below the accumulated relation.
  std::printf("\n--- evaluation strategy (naive vs semi-naive) ---\n");
  std::printf("%-26s %10s %10s %11s %11s %8s %8s\n", "case", "naive",
              "semi", "nodes-nv", "nodes-sn", "ratio", "delta/it");
  for (unsigned Bits : Smoke ? std::vector<unsigned>{4u}
                             : std::vector<unsigned>{4u, 5u, 6u}) {
    gen::TerminatorParams P;
    P.CounterBits = Bits;
    P.NumDeadVars = 4;
    P.Style = gen::DeadVarStyle::Iterative;
    P.Reachable = false;
    gen::Workload W = gen::terminatorProgram(P);
    ParsedProgram Parsed = parseOrDie(W.Source);
    EngineRow Naive = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split",
                                /*EarlyStop=*/true,
                                fpc::EvalStrategy::Naive);
    EngineRow Semi = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split",
                               /*EarlyStop=*/true,
                               fpc::EvalStrategy::SemiNaive);
    printStrategyRow(W.Name.c_str(), Naive, Semi);
  }
  {
    // (1,1,4) is the light two-thread row; (2,2,4) is the heavy Figure-3
    // configuration whose rounds overflow the computed cache — the regime
    // where the narrow (minimized-difference) frontier pays off.
    struct BtConfig {
      unsigned Adders, Stoppers, Switches;
    } Configs[] = {{1, 1, 4}, {2, 2, 4}};
    for (const BtConfig &C : Configs) {
      if (Smoke && C.Adders + C.Stoppers > 2)
        continue;
      ParsedConcProgram P =
          parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
      SolverOptions Opts;
      Opts.ContextBound = C.Switches;
      Opts.EarlyStop = false; // Figure 3 reports the full reachable set.
      Opts.Strategy = fpc::EvalStrategy::Naive;
      EngineRow Naive = runConcEngine(P, "ERR", "conc", Opts);
      Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      EngineRow Semi = runConcEngine(P, "ERR", "conc", Opts);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "bluetooth-%ua%us-k%u", C.Adders,
                    C.Stoppers, C.Switches);
      printStrategyRow(Name, Naive, Semi);
    }
  }
  return 0;
}
