//===- Ast.h - Boolean program abstract syntax ------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the Section-2 Boolean-program language: recursive procedures with
/// call-by-value parameters and multi-value returns, variables over the
/// Boolean domain, nondeterministic choice `*`, simultaneous assignment,
/// if/while control flow, plus two mild extensions used throughout the
/// Boolean-program literature: `assume(e)` statements and statement labels
/// (reachability targets are named by label, as in the paper's `Goal`).
/// Section-5 concurrent programs add `shared` globals and `thread ... end`
/// blocks.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BP_AST_H
#define GETAFIX_BP_AST_H

#include "support/Diagnostics.h"

#include <cassert>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace bp {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Resolved reference to a variable: either a program global or a local of
/// the enclosing procedure (parameters are locals, occupying the first
/// slots of the local frame).
struct VarRef {
  bool IsGlobal = false;
  unsigned Index = 0;

  bool operator==(const VarRef &O) const {
    return IsGlobal == O.IsGlobal && Index == O.Index;
  }
};

enum class ExprKind {
  True,
  False,
  Nondet, ///< `*`: nondeterministically true or false.
  Var,
  Not,
  And,
  Or,
};

/// Boolean expression. Binary nodes have exactly two operands, Not has one.
struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  std::string VarName; ///< For Var, before resolution.
  VarRef Ref;          ///< For Var, after resolution.

  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;

  explicit Expr(ExprKind Kind, SourceLoc Loc = {}) : Kind(Kind), Loc(Loc) {}

  /// True if the expression contains a `*` somewhere.
  bool hasNondet() const {
    if (Kind == ExprKind::Nondet)
      return true;
    if (Lhs && Lhs->hasNondet())
      return true;
    return Rhs && Rhs->hasNondet();
  }
};

using ExprPtr = std::unique_ptr<Expr>;

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Skip,
  Assume, ///< assume(e): blocks executions where e is false.
  Assign, ///< x1,...,xm := e1,...,em (simultaneous).
  Call,   ///< call f(e1,...,eh) — no return values.
  CallAssign, ///< x1,...,xk := f(e1,...,eh).
  Return, ///< return e1,...,ek.
  If,
  While,
  Goto, ///< goto L: jump to the statement labelled L in this procedure.
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;
  std::string Label; ///< Optional `L:` prefix naming this statement.

  // Assign / CallAssign targets.
  std::vector<std::string> LhsNames;
  std::vector<VarRef> LhsRefs;

  // Assign right-hand sides, Return expressions, Call/CallAssign arguments.
  std::vector<ExprPtr> Exprs;

  // Call / CallAssign / Goto.
  std::string CalleeName;
  unsigned CalleeId = ~0u;

  // If / While / Assume condition.
  ExprPtr Cond;

  // If bodies and While body.
  std::vector<StmtPtr> ThenBody;
  std::vector<StmtPtr> ElseBody;

  explicit Stmt(StmtKind Kind, SourceLoc Loc = {}) : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Procedures and programs
//===----------------------------------------------------------------------===//

struct Proc {
  std::string Name;
  SourceLoc Loc;
  std::vector<std::string> Params; ///< Formal parameters.
  std::vector<std::string> Locals; ///< Declared locals (excludes params).
  std::vector<StmtPtr> Body;
  unsigned NumReturns = 0; ///< k: number of values this procedure returns.

  /// Frame size: parameters followed by declared locals.
  unsigned numLocalSlots() const {
    return unsigned(Params.size() + Locals.size());
  }

  /// Name of local slot \p I (parameters first).
  const std::string &localName(unsigned I) const {
    assert(I < numLocalSlots() && "local slot out of range");
    return I < Params.size() ? Params[I] : Locals[I - Params.size()];
  }
};

/// A sequential Boolean program: globals plus procedures, entry `main`.
struct Program {
  std::vector<std::string> Globals;
  std::vector<std::unique_ptr<Proc>> Procs;
  std::map<std::string, unsigned> ProcIds;
  unsigned MainId = ~0u;

  const Proc &proc(unsigned Id) const {
    assert(Id < Procs.size() && "procedure id out of range");
    return *Procs[Id];
  }
  const Proc &main() const { return proc(MainId); }

  unsigned numGlobals() const { return unsigned(Globals.size()); }

  /// Largest local frame over all procedures (symbolic layout pads to it).
  unsigned maxLocalSlots() const {
    unsigned Max = 0;
    for (const auto &P : Procs)
      Max = std::max(Max, P->numLocalSlots());
    return Max;
  }

  /// Finds the procedure and statement carrying \p Label; null if absent.
  const Stmt *findLabel(const std::string &Label, unsigned *ProcId) const;
};

/// A concurrent Boolean program (Section 5): all globals are shared (the
/// paper's simplifying assumption) and each thread is a sequential program
/// over those globals.
struct ConcurrentProgram {
  std::vector<std::string> SharedGlobals;
  std::vector<std::unique_ptr<Program>> Threads;

  unsigned numThreads() const { return unsigned(Threads.size()); }
};

} // namespace bp
} // namespace getafix

#endif // GETAFIX_BP_AST_H
