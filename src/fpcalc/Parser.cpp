//===- Parser.cpp - Textual front-end for the calculus --------------------===//

#include "fpcalc/Parser.h"

#include "fpcalc/Evaluator.h"

#include <cctype>
#include <map>

using namespace getafix;
using namespace getafix::fpc;

namespace {

enum class TokKind {
  End,
  Ident,
  Number,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Dot,
  Eq,     // =
  Define, // :=
  Not,    // !
  And,    // &
  Or,     // |
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  uint64_t Value = 0;
  SourceLoc Loc;
};

/// Tokenizes the whole buffer up front; the parser then makes two passes
/// over the token vector (signatures first, bodies second) so relations can
/// be referenced before their declaration.
class Lexer {
public:
  Lexer(const std::string &Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool run(std::vector<Token> &Out) {
    while (true) {
      Token T = next();
      if (Failed)
        return false;
      Out.push_back(T);
      if (T.Kind == TokKind::End)
        return true;
    }
  }

private:
  SourceLoc loc() const { return SourceLoc{Line, unsigned(Pos - LineStart + 1)}; }

  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace((unsigned char)C)) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '*') {
        size_t Close = Text.find("*/", Pos + 2);
        if (Close == std::string::npos) {
          Diags.error(loc(), "unterminated comment");
          Failed = true;
          return;
        }
        for (size_t I = Pos; I < Close; ++I)
          if (Text[I] == '\n') {
            ++Line;
            LineStart = I + 1;
          }
        Pos = Close + 2;
      } else {
        return;
      }
    }
  }

  Token next() {
    skipTrivia();
    Token T;
    T.Loc = loc();
    if (Failed || Pos >= Text.size())
      return T;
    char C = Text[Pos];
    if (std::isalpha((unsigned char)C) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size()) {
        char D = Text[Pos];
        if (std::isalnum((unsigned char)D) || D == '_') {
          ++Pos;
          continue;
        }
        // A dot continues the identifier only when an identifier character
        // follows (`s.pc`); otherwise it is the quantifier separator.
        if (D == '.' && Pos + 1 < Text.size() &&
            (std::isalnum((unsigned char)Text[Pos + 1]) ||
             Text[Pos + 1] == '_')) {
          ++Pos;
          continue;
        }
        break;
      }
      T.Kind = TokKind::Ident;
      T.Text = Text.substr(Start, Pos - Start);
      return T;
    }
    if (std::isdigit((unsigned char)C)) {
      uint64_t Value = 0;
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        Value = Value * 10 + uint64_t(Text[Pos++] - '0');
      T.Kind = TokKind::Number;
      T.Value = Value;
      return T;
    }
    ++Pos;
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      return T;
    case ')':
      T.Kind = TokKind::RParen;
      return T;
    case '[':
      T.Kind = TokKind::LBracket;
      return T;
    case ']':
      T.Kind = TokKind::RBracket;
      return T;
    case ',':
      T.Kind = TokKind::Comma;
      return T;
    case ';':
      T.Kind = TokKind::Semi;
      return T;
    case '.':
      T.Kind = TokKind::Dot;
      return T;
    case '=':
      T.Kind = TokKind::Eq;
      return T;
    case '!':
      T.Kind = TokKind::Not;
      return T;
    case '&':
      T.Kind = TokKind::And;
      return T;
    case '|':
      T.Kind = TokKind::Or;
      return T;
    case ':':
      if (Pos < Text.size() && Text[Pos] == '=') {
        ++Pos;
        T.Kind = TokKind::Define;
        return T;
      }
      break;
    default:
      break;
    }
    Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
    Failed = true;
    return T;
  }

  const std::string &Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
  bool Failed = false;
};

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags,
         std::vector<Fact> *Facts)
      : Tokens(std::move(Tokens)), Diags(Diags), Facts(Facts) {}

  std::unique_ptr<System> run() {
    auto Result = std::make_unique<System>();
    Sys = Result.get();
    // `System` pre-declares the Boolean domain; make it nameable.
    DomainIds["bool"] = Sys->boolDomain();

    if (!parseDeclarations(/*BodiesToo=*/false))
      return nullptr;
    Pos = 0;
    if (!parseDeclarations(/*BodiesToo=*/true))
      return nullptr;
    if (!Sys->validate(Diags))
      return nullptr;
    return Result;
  }

private:
  const Token &peek() const { return Tokens[Pos]; }
  Token take() { return Tokens[Pos++]; }
  bool at(TokKind K) const { return peek().Kind == K; }
  bool atKeyword(const char *KW) const {
    return peek().Kind == TokKind::Ident && peek().Text == KW;
  }

  bool expect(TokKind K, const char *What) {
    if (at(K)) {
      ++Pos;
      return true;
    }
    Diags.error(peek().Loc, std::string("expected ") + What);
    return false;
  }

  bool expectKeyword(const char *KW) {
    if (atKeyword(KW)) {
      ++Pos;
      return true;
    }
    Diags.error(peek().Loc, std::string("expected '") + KW + "'");
    return false;
  }

  /// Returns (creating on first sight) the variable \p Name of domain
  /// \p Dom. Rebinding an existing name at a different domain is an error
  /// (the printer never produces it and it would silently alias storage).
  bool bindVar(const std::string &Name, DomainId Dom, SourceLoc Loc,
               VarId &Out) {
    auto It = VarIds.find(Name);
    if (It != VarIds.end()) {
      if (Sys->var(It->second).Dom != Dom) {
        Diags.error(Loc, "variable '" + Name +
                             "' rebound at a different domain");
        return false;
      }
      Out = It->second;
      return true;
    }
    Out = Sys->addVar(Name, Dom);
    VarIds[Name] = Out;
    return true;
  }

  /// `NAME NAME (, NAME NAME)*` — used for relation formals and quantifier
  /// binders. Empty lists are allowed for formals (`Stop()`), not binders.
  bool parseBinders(std::vector<VarId> &Out, bool AllowEmpty,
                    TokKind Terminator) {
    if (AllowEmpty && at(Terminator))
      return true;
    while (true) {
      if (!at(TokKind::Ident)) {
        Diags.error(peek().Loc, "expected domain name");
        return false;
      }
      Token DomTok = take();
      auto DomIt = DomainIds.find(DomTok.Text);
      if (DomIt == DomainIds.end()) {
        Diags.error(DomTok.Loc, "unknown domain '" + DomTok.Text + "'");
        return false;
      }
      if (!at(TokKind::Ident)) {
        Diags.error(peek().Loc, "expected variable name");
        return false;
      }
      Token VarTok = take();
      VarId V = 0;
      if (!bindVar(VarTok.Text, DomIt->second, VarTok.Loc, V))
        return false;
      Out.push_back(V);
      if (!at(TokKind::Comma))
        return true;
      ++Pos;
    }
  }

  bool parseDeclarations(bool BodiesToo) {
    while (!at(TokKind::End)) {
      if (atKeyword("domain")) {
        if (!parseDomain(BodiesToo))
          return false;
      } else if (atKeyword("input") || atKeyword("mu") || atKeyword("nu")) {
        if (!parseRelation(BodiesToo))
          return false;
      } else if (atKeyword("fact")) {
        if (!parseFact(BodiesToo))
          return false;
      } else {
        Diags.error(peek().Loc,
                    "expected 'domain', 'input', 'mu', 'nu' or 'fact'");
        return false;
      }
    }
    return true;
  }

  bool parseDomain(bool SecondPass) {
    ++Pos; // 'domain'
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected domain name");
      return false;
    }
    Token Name = take();
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    bool IsBits = atKeyword("bits");
    if (IsBits)
      ++Pos;
    if (!at(TokKind::Number)) {
      Diags.error(peek().Loc, "expected domain size");
      return false;
    }
    Token Size = take();
    if (!expect(TokKind::RBracket, "']'") || !expect(TokKind::Semi, "';'"))
      return false;
    if (SecondPass)
      return true;
    if (DomainIds.count(Name.Text)) {
      // Re-declaring `bool [2]` is tolerated so printed systems (which
      // always list the built-in domain) round-trip.
      if (Name.Text == "bool" && !IsBits && Size.Value == 2)
        return true;
      Diags.error(Name.Loc, "duplicate domain '" + Name.Text + "'");
      return false;
    }
    if (!IsBits && Size.Value == 0) {
      Diags.error(Size.Loc, "domains must be non-empty");
      return false;
    }
    if (IsBits && (Size.Value == 0 || Size.Value > 4096)) {
      Diags.error(Size.Loc, "unreasonable bit-vector width");
      return false;
    }
    DomainIds[Name.Text] = IsBits
                               ? Sys->addBitDomain(Name.Text,
                                                   unsigned(Size.Value))
                               : Sys->addDomain(Name.Text, Size.Value);
    return true;
  }

  /// `fact Name(c1, ..., cn);` — collected in the second pass, when all
  /// relations (including ones declared after the fact) are known.
  bool parseFact(bool SecondPass) {
    Token Kw = take(); // 'fact'
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected relation name");
      return false;
    }
    Token Name = take();
    if (!expect(TokKind::LParen, "'('"))
      return false;
    std::vector<uint64_t> Values;
    if (!at(TokKind::RParen)) {
      while (true) {
        if (!at(TokKind::Number)) {
          Diags.error(peek().Loc, "facts take constant tuples");
          return false;
        }
        Values.push_back(take().Value);
        if (!at(TokKind::Comma))
          break;
        ++Pos;
      }
    }
    if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Semi, "';'"))
      return false;
    if (!SecondPass)
      return true;

    if (!Facts) {
      Diags.error(Kw.Loc, "facts are not allowed in this context");
      return false;
    }
    if (!Sys->hasRel(Name.Text)) {
      Diags.error(Name.Loc, "unknown relation '" + Name.Text + "'");
      return false;
    }
    RelId Rel = Sys->relId(Name.Text);
    const Relation &R = Sys->relation(Rel);
    if (!R.isInput()) {
      Diags.error(Name.Loc,
                  "facts may only populate input relations, and '" +
                      Name.Text + "' is defined by an equation");
      return false;
    }
    if (Values.size() != R.arity()) {
      Diags.error(Name.Loc, "relation '" + Name.Text + "' expects " +
                                std::to_string(R.arity()) +
                                " arguments, got " +
                                std::to_string(Values.size()));
      return false;
    }
    for (size_t I = 0; I < Values.size(); ++I) {
      const Domain &D = Sys->domain(Sys->var(R.Formals[I]).Dom);
      if (Values[I] >= D.Size) {
        Diags.error(Name.Loc, "constant " + std::to_string(Values[I]) +
                                  " outside domain of argument " +
                                  std::to_string(I + 1));
        return false;
      }
    }
    Facts->push_back(Fact{Rel, std::move(Values)});
    return true;
  }

  bool parseRelation(bool BodiesToo) {
    Token Kind = take(); // input / mu / nu
    if (!expectKeyword("bool"))
      return false;
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected relation name");
      return false;
    }
    Token Name = take();
    if (!expect(TokKind::LParen, "'('"))
      return false;

    if (!BodiesToo) {
      if (Sys->hasRel(Name.Text)) {
        Diags.error(Name.Loc, "duplicate relation '" + Name.Text + "'");
        return false;
      }
      std::vector<VarId> Formals;
      if (!parseBinders(Formals, /*AllowEmpty=*/true, TokKind::RParen))
        return false;
      if (!expect(TokKind::RParen, "')'"))
        return false;
      Sys->declareRel(Name.Text, std::move(Formals));
      if (Kind.Text == "input")
        return expect(TokKind::Semi, "';'");
      if (!expect(TokKind::Define, "':='"))
        return false;
      // Skip the body; pass 2 parses it with all relations known.
      while (!at(TokKind::Semi) && !at(TokKind::End))
        ++Pos;
      return expect(TokKind::Semi, "';'");
    }

    // Second pass: skip the signature, parse the body.
    while (!at(TokKind::RParen))
      ++Pos;
    ++Pos; // ')'
    if (Kind.Text == "input")
      return expect(TokKind::Semi, "';'");
    ++Pos; // ':='
    Formula *Body = parseFormula();
    if (!Body)
      return false;
    RelId Rel = Sys->relId(Name.Text);
    if (Kind.Text == "nu")
      Sys->defineNu(Rel, Body);
    else
      Sys->define(Rel, Body);
    return expect(TokKind::Semi, "';'");
  }

  // Formulas ---------------------------------------------------------------

  Formula *parseFormula() { return parseOr(); }

  Formula *parseOr() {
    Formula *First = parseAnd();
    if (!First)
      return nullptr;
    if (!at(TokKind::Or))
      return First;
    std::vector<Formula *> Children{First};
    while (at(TokKind::Or)) {
      ++Pos;
      Formula *Next = parseAnd();
      if (!Next)
        return nullptr;
      Children.push_back(Next);
    }
    return Sys->mkOr(std::move(Children));
  }

  Formula *parseAnd() {
    Formula *First = parseNot();
    if (!First)
      return nullptr;
    if (!at(TokKind::And))
      return First;
    std::vector<Formula *> Children{First};
    while (at(TokKind::And)) {
      ++Pos;
      Formula *Next = parseNot();
      if (!Next)
        return nullptr;
      Children.push_back(Next);
    }
    return Sys->mkAnd(std::move(Children));
  }

  Formula *parseNot() {
    if (at(TokKind::Not)) {
      ++Pos;
      Formula *Body = parseNot();
      return Body ? Sys->mkNot(Body) : nullptr;
    }
    return parseAtom();
  }

  Formula *parseAtom() {
    if (at(TokKind::LParen)) {
      ++Pos;
      Formula *Inner = parseFormula();
      if (!Inner || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return Inner;
    }
    if (atKeyword("true")) {
      ++Pos;
      return Sys->top();
    }
    if (atKeyword("false")) {
      ++Pos;
      return Sys->bottom();
    }
    if (atKeyword("exists") || atKeyword("forall")) {
      bool IsExists = take().Text == "exists";
      std::vector<VarId> Bound;
      if (!parseBinders(Bound, /*AllowEmpty=*/false, TokKind::Dot))
        return nullptr;
      if (!expect(TokKind::Dot, "'.'"))
        return nullptr;
      Formula *Body = parseNot();
      if (!Body)
        return nullptr;
      return IsExists ? Sys->exists(std::move(Bound), Body)
                      : Sys->forall(std::move(Bound), Body);
    }
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected a formula");
      return nullptr;
    }
    Token Name = take();
    if (at(TokKind::LParen)) {
      ++Pos;
      if (!Sys->hasRel(Name.Text)) {
        Diags.error(Name.Loc, "unknown relation '" + Name.Text + "'");
        return nullptr;
      }
      RelId Rel = Sys->relId(Name.Text);
      std::vector<Term> Args;
      if (!at(TokKind::RParen)) {
        while (true) {
          if (at(TokKind::Number)) {
            Args.push_back(Term::constant(take().Value));
          } else if (at(TokKind::Ident)) {
            Token Arg = take();
            auto It = VarIds.find(Arg.Text);
            if (It == VarIds.end()) {
              Diags.error(Arg.Loc, "unbound variable '" + Arg.Text + "'");
              return nullptr;
            }
            Args.push_back(Term::var(It->second));
          } else {
            Diags.error(peek().Loc, "expected argument");
            return nullptr;
          }
          if (!at(TokKind::Comma))
            break;
          ++Pos;
        }
      }
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      if (Args.size() != Sys->relation(Rel).arity()) {
        Diags.error(Name.Loc, "relation '" + Name.Text + "' expects " +
                                  std::to_string(Sys->relation(Rel).arity()) +
                                  " arguments, got " +
                                  std::to_string(Args.size()));
        return nullptr;
      }
      return Sys->apply(Rel, std::move(Args));
    }
    if (!expect(TokKind::Eq, "'=' or '('"))
      return nullptr;
    auto LhsIt = VarIds.find(Name.Text);
    if (LhsIt == VarIds.end()) {
      Diags.error(Name.Loc, "unbound variable '" + Name.Text + "'");
      return nullptr;
    }
    if (at(TokKind::Number))
      return Sys->eqConst(LhsIt->second, take().Value);
    if (!at(TokKind::Ident)) {
      Diags.error(peek().Loc, "expected variable or constant");
      return nullptr;
    }
    Token Rhs = take();
    auto RhsIt = VarIds.find(Rhs.Text);
    if (RhsIt == VarIds.end()) {
      Diags.error(Rhs.Loc, "unbound variable '" + Rhs.Text + "'");
      return nullptr;
    }
    return Sys->eqVar(LhsIt->second, RhsIt->second);
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  std::vector<Fact> *Facts;
  System *Sys = nullptr;
  size_t Pos = 0;
  std::map<std::string, DomainId> DomainIds;
  std::map<std::string, VarId> VarIds;
};

} // namespace

std::unique_ptr<System> fpc::parseSystem(const std::string &Text,
                                         DiagnosticEngine &Diags,
                                         std::vector<Fact> *Facts) {
  std::vector<Token> Tokens;
  if (!Lexer(Text, Diags).run(Tokens))
    return nullptr;
  return Parser(std::move(Tokens), Diags, Facts).run();
}

void fpc::bindFacts(Evaluator &Ev, const System &Sys,
                    const std::vector<Fact> &Facts) {
  BddManager &Mgr = Ev.manager();
  std::map<RelId, Bdd> Values;
  for (RelId Rel = 0; Rel < Sys.numRels(); ++Rel)
    if (Sys.relation(Rel).isInput())
      Values[Rel] = Mgr.zero();
  for (const Fact &F : Facts) {
    const Relation &R = Sys.relation(F.Rel);
    assert(R.isInput() && F.Values.size() == R.arity() &&
           "facts are validated at parse time");
    Bdd Tuple = Mgr.one();
    for (size_t I = 0; I < F.Values.size(); ++I)
      Tuple &= Ev.encodeEqConst(R.Formals[I], F.Values[I]);
    Values[F.Rel] |= Tuple;
  }
  for (auto &[Rel, Value] : Values)
    Ev.bindInput(Rel, std::move(Value));
}
