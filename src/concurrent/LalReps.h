//===- LalReps.h - Lal-Reps eager sequentialization -------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eager Lal–Reps reduction [CAV'08] the paper compares its Section-5
/// formulation against: a source-to-source transformation turning a
/// concurrent Boolean program with a context-switch bound k into a
/// *sequential* Boolean program. The sequential program
///
///   - guesses the schedule (one thread id per context) and the shared
///     valuation at the start of every context,
///   - runs each thread once, to completion, over all of its contexts —
///     every statement may nondeterministically advance to the thread's
///     next owned context (saving the working copy, loading the next
///     guess),
///   - finally *checks* that the guessed starts chain correctly (end of
///     context i equals start of context i+1) before reporting the target.
///
/// The point of the comparison: this encoding carries O(k) *extra copies*
/// of every shared variable (start + working copy per context, versus the
/// k+1 copies in the paper's fixed-point), which is exactly the space blowup
/// the paper's formulation avoids.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_CONCURRENT_LALREPS_H
#define GETAFIX_CONCURRENT_LALREPS_H

#include "bp/Ast.h"

#include <memory>
#include <string>

namespace getafix {
namespace conc {

/// The transformed program's goal label (reached iff the original label is
/// reachable within the context bound).
inline const char *lalRepsGoalLabel() { return "__LR_GOAL"; }

/// Sequentializes \p Conc under \p MaxContextSwitches for the reachability
/// query \p Label (a label in one of the threads). The result is analyzed
/// and ready for CFG construction; query `lalRepsGoalLabel()` on it.
/// Returns null (with diagnostics) if the label does not exist or the
/// transformed program fails analysis.
std::unique_ptr<bp::Program>
lalRepsSequentialize(const bp::ConcurrentProgram &Conc,
                     const std::string &Label, unsigned MaxContextSwitches,
                     DiagnosticEngine &Diags);

} // namespace conc
} // namespace getafix

#endif // GETAFIX_CONCURRENT_LALREPS_H
