//===- mucke_file.cpp - Algorithms as exchangeable text -------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1 of the paper shows Getafix emitting a "MUCKE file": the input
/// program's template relations plus the reachability algorithm, all as one
/// textual fixed-point formula. This example regenerates that artifact —
/// the complete equation system for the entry-forward algorithm over a
/// small program — and then feeds the text back through the calculus
/// parser to show that the algorithms really are exchangeable as plain
/// text (print -> parse -> print is a fixed point).
///
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "fpcalc/Parser.h"
#include "reach/SeqReach.h"

#include <cstdio>

using namespace getafix;

int main() {
  const char *Source = R"(
decl g;
main() begin
  decl a;
  a := toggle(g);
  if (a) then ERR: skip; else skip; fi
  return;
end
toggle(x) begin
  g := !g;
  return !x;
end
)";

  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);

  // The "MUCKE file": input-relation declarations plus the one-page
  // algorithm formula (here Section 4.2's entry-forward algorithm).
  std::string Text =
      reach::formulaText(Cfg, reach::SeqAlgorithm::EntryForwardSplit);
  std::printf("%s", Text.c_str());

  // Round-trip through the textual front-end.
  DiagnosticEngine ParseDiags;
  auto Sys = fpc::parseSystem(Text, ParseDiags);
  if (!Sys) {
    std::fprintf(stderr, "re-parse failed:\n%s", ParseDiags.str().c_str());
    return 1;
  }
  bool Stable = Sys->print() == Text;
  std::printf("\n// re-parsed: %u domains, %u relations; round-trip %s\n",
              Sys->numDomains(), Sys->numRels(),
              Stable ? "stable" : "UNSTABLE");
  return Stable ? 0 : 1;
}
