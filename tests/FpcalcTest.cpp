//===- FpcalcTest.cpp - Fixed-point calculus tests -------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "fpcalc/Calculus.h"
#include "fpcalc/Evaluator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace getafix;
using namespace getafix::fpc;

namespace {

/// Fixture with a small graph-reachability system: the Section-3 example
///   Reach(u) = Init(u) | exists x. (Reach(x) & Trans(x, u)).
struct GraphFixture {
  System Sys;
  DomainId Node;
  VarId U, X;
  RelId Init, Trans, Reach;

  explicit GraphFixture(uint64_t NumNodes = 8) {
    Node = Sys.addDomain("Node", NumNodes);
    U = Sys.addVar("u", Node);
    X = Sys.addVar("x", Node);
    Init = Sys.declareRel("Init", {U});
    Trans = Sys.declareRel("Trans", {X, U});
    Reach = Sys.declareRel("Reach", {U});
    Sys.define(Reach,
               Sys.mkOr({Sys.applyVars(Init, {U}),
                         Sys.exists({X}, Sys.mkAnd({
                                             Sys.applyVars(Reach, {X}),
                                             Sys.applyVars(Trans, {X, U}),
                                         }))}));
  }

  /// Solves reachability for the given edge list and initial node.
  std::vector<bool> solve(const std::vector<std::pair<unsigned, unsigned>>
                              &Edges,
                          unsigned InitNode, uint64_t NumNodes = 8) {
    BddManager Mgr;
    Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
    Ev.bindInput(Init, Ev.encodeEqConst(U, InitNode));
    Bdd TransBdd = Mgr.zero();
    for (auto [From, To] : Edges)
      TransBdd |= Ev.encodeEqConst(X, From) & Ev.encodeEqConst(U, To);
    Ev.bindInput(Trans, TransBdd);
    Bdd Result = Ev.evaluate(Reach).Value;
    std::vector<bool> Out;
    for (unsigned N = 0; N < NumNodes; ++N)
      Out.push_back(!(Result & Ev.encodeEqConst(U, N)).isZero());
    return Out;
  }
};

} // namespace

TEST(CalculusTest, DomainBits) {
  Domain D1{"d", 1, 0};
  EXPECT_EQ(D1.numBits(), 1u);
  Domain D2{"d", 2, 0};
  EXPECT_EQ(D2.numBits(), 1u);
  Domain D5{"d", 5, 0};
  EXPECT_EQ(D5.numBits(), 3u);
  Domain Wide{"d", ~uint64_t(0), 100};
  EXPECT_EQ(Wide.numBits(), 100u);
}

TEST(CalculusTest, ValidateCatchesArityAndDomainErrors) {
  System Sys;
  DomainId D3 = Sys.addDomain("three", 3);
  VarId A = Sys.addVar("a", D3);
  VarId B = Sys.addVar("b", Sys.boolDomain());
  RelId R = Sys.declareRel("R", {A});

  // Wrong arity.
  RelId Bad1 = Sys.declareRel("Bad1", {B});
  Sys.define(Bad1, Sys.apply(R, {Term::var(A), Term::var(A)}));
  // Wrong argument domain.
  RelId Bad2 = Sys.declareRel("Bad2", {B});
  Sys.define(Bad2, Sys.apply(R, {Term::var(B)}));
  // Constant outside the domain.
  RelId Bad3 = Sys.declareRel("Bad3", {A});
  Sys.define(Bad3, Sys.apply(R, {Term::constant(7)}));
  // Equality across domains.
  RelId Bad4 = Sys.declareRel("Bad4", {A, B});
  Sys.define(Bad4, Sys.eqVar(A, B));

  DiagnosticEngine Diags;
  EXPECT_FALSE(Sys.validate(Diags));
  EXPECT_GE(Diags.errorCount(), 4u);
}

TEST(CalculusTest, DependsOnIsTransitive) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId A = Sys.declareRel("A", {X});
  RelId B = Sys.declareRel("B", {X});
  RelId C = Sys.declareRel("C", {X});
  RelId In = Sys.declareRel("In", {X});
  Sys.define(A, Sys.applyVars(B, {X}));
  Sys.define(B, Sys.applyVars(C, {X}));
  Sys.define(C, Sys.applyVars(In, {X}));
  EXPECT_TRUE(Sys.dependsOn(A, C));
  EXPECT_TRUE(Sys.dependsOn(A, In));
  EXPECT_FALSE(Sys.dependsOn(C, A));
}

TEST(CalculusTest, PrintRendersMuckeStyle) {
  GraphFixture G;
  std::string Text = G.Sys.print();
  EXPECT_NE(Text.find("mu bool Reach(Node u)"), std::string::npos);
  EXPECT_NE(Text.find("input bool Trans(Node x, Node u)"),
            std::string::npos);
  EXPECT_NE(Text.find("exists Node x."), std::string::npos);
}

TEST(EvaluatorTest, GraphReachabilityChain) {
  GraphFixture G;
  // 0 -> 1 -> 2 -> 3, plus an unreachable component 5 -> 6.
  auto R = G.solve({{0, 1}, {1, 2}, {2, 3}, {5, 6}}, 0);
  std::vector<bool> Expected{true, true, true, true,
                             false, false, false, false};
  EXPECT_EQ(R, Expected);
}

TEST(EvaluatorTest, GraphReachabilityCycle) {
  GraphFixture G;
  auto R = G.solve({{1, 2}, {2, 3}, {3, 1}}, 2);
  EXPECT_FALSE(R[0]);
  EXPECT_TRUE(R[1] && R[2] && R[3]);
}

TEST(EvaluatorTest, EarlyStopTerminatesBeforeFullFixpoint) {
  GraphFixture G;
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  Ev.bindInput(G.Init, Ev.encodeEqConst(G.U, 0));
  // A long chain 0 -> 1 -> ... -> 7.
  Bdd TransBdd = Mgr.zero();
  for (unsigned N = 0; N + 1 < 8; ++N)
    TransBdd |= Ev.encodeEqConst(G.X, N) & Ev.encodeEqConst(G.U, N + 1);
  Ev.bindInput(G.Trans, TransBdd);

  Bdd Stop = Ev.encodeEqConst(G.U, 2);
  EvalOptions Opts;
  Opts.EarlyStop = &Stop;
  EvalResult R = Ev.evaluate(G.Reach, Opts);
  EXPECT_TRUE(R.EarlyStopped);
  EXPECT_FALSE((R.Value & Stop).isZero());
  // Node 7 must not have been computed yet.
  EXPECT_TRUE((R.Value & Ev.encodeEqConst(G.U, 7)).isZero());
}

TEST(EvaluatorTest, MaxIterationsIsHonored) {
  GraphFixture G;
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  Ev.bindInput(G.Init, Ev.encodeEqConst(G.U, 0));
  Bdd TransBdd = Mgr.zero();
  for (unsigned N = 0; N + 1 < 8; ++N)
    TransBdd |= Ev.encodeEqConst(G.X, N) & Ev.encodeEqConst(G.U, N + 1);
  Ev.bindInput(G.Trans, TransBdd);
  EvalOptions Opts;
  Opts.MaxIterations = 2;
  EvalResult R = Ev.evaluate(G.Reach, Opts);
  EXPECT_TRUE(R.HitIterationLimit);
}

TEST(EvaluatorTest, ConstantRelationArguments) {
  System Sys;
  DomainId D4 = Sys.addDomain("four", 4);
  VarId A = Sys.addVar("a", D4);
  VarId B = Sys.addVar("b", D4);
  RelId Pair = Sys.declareRel("Pair", {A, B});
  RelId Sel = Sys.declareRel("Sel", {B});
  Sys.define(Sel, Sys.apply(Pair, {Term::constant(2), Term::var(B)}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd PairBdd = (Ev.encodeEqConst(A, 2) & Ev.encodeEqConst(B, 3)) |
                (Ev.encodeEqConst(A, 1) & Ev.encodeEqConst(B, 0));
  Ev.bindInput(Pair, PairBdd);
  Bdd R = Ev.evaluate(Sel).Value;
  EXPECT_EQ(R, Ev.encodeEqConst(B, 3));
}

TEST(EvaluatorTest, RepeatedArgumentDiagonal) {
  System Sys;
  DomainId D4 = Sys.addDomain("four", 4);
  VarId A = Sys.addVar("a", D4);
  VarId B = Sys.addVar("b", D4);
  RelId Pair = Sys.declareRel("Pair", {A, B});
  RelId Diag = Sys.declareRel("Diag", {A});
  Sys.define(Diag, Sys.apply(Pair, {Term::var(A), Term::var(A)}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd PairBdd = (Ev.encodeEqConst(A, 2) & Ev.encodeEqConst(B, 2)) |
                (Ev.encodeEqConst(A, 1) & Ev.encodeEqConst(B, 3));
  Ev.bindInput(Pair, PairBdd);
  EXPECT_EQ(Ev.evaluate(Diag).Value, Ev.encodeEqConst(A, 2));
}

TEST(EvaluatorTest, NestedRelationsReEvaluatedPerOuterRound) {
  // Frontier-style system: Outer iterates; Inner depends on Outer and is
  // re-solved every round (the Section-3 algorithmic semantics). Checks
  // the non-monotone "newly discovered" idiom used by EF-opt.
  System Sys;
  DomainId Node = Sys.addDomain("Node", 8);
  VarId U = Sys.addVar("u", Node);
  VarId X = Sys.addVar("x", Node);
  RelId Trans = Sys.declareRel("Trans", {X, U});
  RelId Init = Sys.declareRel("Init", {U});
  RelId Outer = Sys.declareRel("Outer", {U});
  RelId Step = Sys.declareRel("Step", {U});
  // Step(u) = exists x. Outer(x) & Trans(x,u); Outer = Init | Step.
  Sys.define(Step, Sys.exists({X}, Sys.mkAnd({Sys.applyVars(Outer, {X}),
                                              Sys.applyVars(Trans, {X, U})})));
  Sys.define(Outer, Sys.mkOr({Sys.applyVars(Init, {U}),
                              Sys.applyVars(Step, {U})}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(Init, Ev.encodeEqConst(U, 0));
  Bdd TransBdd = Mgr.zero();
  for (unsigned N = 0; N + 1 < 5; ++N)
    TransBdd |= Ev.encodeEqConst(X, N) & Ev.encodeEqConst(U, N + 1);
  Ev.bindInput(Trans, TransBdd);

  Bdd R = Ev.evaluate(Outer).Value;
  for (unsigned N = 0; N < 5; ++N)
    EXPECT_FALSE((R & Ev.encodeEqConst(U, N)).isZero()) << N;
  EXPECT_TRUE((R & Ev.encodeEqConst(U, 6)).isZero());
  // Step must have been re-evaluated once per outer round.
  EXPECT_GE(Ev.stats().at("Step").Evaluations, 5u);
}

TEST(EvaluatorTest, NonMonotoneNegationUnderAlgorithmicSemantics) {
  // Fresh(u) = Outer(u) & !Done(u); Done tracks the previous round via a
  // second relation. Not a least fixed-point — but the operational
  // semantics assigns it a meaning, which we pin here: with Done == Init,
  // Fresh is exactly Outer \ Init once Outer converges.
  System Sys;
  DomainId Node = Sys.addDomain("Node", 8);
  VarId U = Sys.addVar("u", Node);
  VarId X = Sys.addVar("x", Node);
  RelId Trans = Sys.declareRel("Trans", {X, U});
  RelId Init = Sys.declareRel("Init", {U});
  RelId Outer = Sys.declareRel("Outer", {U});
  RelId Fresh = Sys.declareRel("Fresh", {U});
  Sys.define(Outer,
             Sys.mkOr({Sys.applyVars(Init, {U}),
                       Sys.exists({X}, Sys.mkAnd({
                                           Sys.applyVars(Outer, {X}),
                                           Sys.applyVars(Trans, {X, U}),
                                       }))}));
  Sys.define(Fresh, Sys.mkAnd({Sys.applyVars(Outer, {U}),
                               Sys.mkNot(Sys.applyVars(Init, {U}))}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(Init, Ev.encodeEqConst(U, 3));
  Ev.bindInput(Trans,
               Ev.encodeEqConst(X, 3) & Ev.encodeEqConst(U, 4));
  Bdd R = Ev.evaluate(Fresh).Value;
  EXPECT_EQ(R, Ev.encodeEqConst(U, 4));
}

TEST(EvaluatorTest, DomainConstraintExcludesPadding) {
  System Sys;
  DomainId D5 = Sys.addDomain("five", 5); // 3 bits, values 0..4.
  VarId A = Sys.addVar("a", D5);
  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd Valid = Ev.domainConstraint(A);
  EXPECT_DOUBLE_EQ(Valid.satCount(Mgr.numVars()), 5.0);
  for (uint64_t V = 0; V < 5; ++V)
    EXPECT_FALSE((Valid & Ev.encodeEqConst(A, V)).isZero());
}

TEST(EvaluatorTest, InterleavedLayoutKeepsCopiesAdjacent) {
  System Sys;
  DomainId D16 = Sys.addDomain("d16", 16);
  VarId A = Sys.addVar("a", D16);
  VarId B = Sys.addVar("b", D16);
  BddManager Mgr;
  Layout L = Layout::interleaved(Sys, Mgr, {{A, B}});
  for (unsigned Bit = 0; Bit < 4; ++Bit) {
    EXPECT_EQ(L.bits(A)[Bit] + 1, L.bits(B)[Bit])
        << "copies must sit on adjacent levels";
  }
}

//===----------------------------------------------------------------------===//
// Dependency analysis and equation planning
//===----------------------------------------------------------------------===//

namespace {

/// Three-SCC system: Low (self-recursive) <- {MidA <-> MidB} <- Top, plus
/// an input leaf.
struct MultiSccFixture {
  System Sys;
  VarId X;
  RelId In, Low, MidA, MidB, Top;

  MultiSccFixture() {
    X = Sys.addVar("x", Sys.boolDomain());
    In = Sys.declareRel("In", {X});
    Low = Sys.declareRel("Low", {X});
    MidA = Sys.declareRel("MidA", {X});
    MidB = Sys.declareRel("MidB", {X});
    Top = Sys.declareRel("Top", {X});
    Sys.define(Low, Sys.mkOr({Sys.applyVars(In, {X}),
                              Sys.applyVars(Low, {X})}));
    Sys.define(MidA, Sys.mkOr({Sys.applyVars(Low, {X}),
                               Sys.applyVars(MidB, {X})}));
    Sys.define(MidB, Sys.applyVars(MidA, {X}));
    Sys.define(Top, Sys.applyVars(MidA, {X}));
  }
};

} // namespace

TEST(DependencyGraphTest, SccCondensationIsCalleesFirst) {
  MultiSccFixture F;
  DependencyGraph G(F.Sys);

  // Same SCC for the mutual pair; distinct SCCs otherwise.
  EXPECT_EQ(G.sccOf(F.MidA), G.sccOf(F.MidB));
  EXPECT_NE(G.sccOf(F.Low), G.sccOf(F.MidA));
  EXPECT_NE(G.sccOf(F.MidA), G.sccOf(F.Top));

  // Callees-first numbering: callees get smaller SCC indices.
  EXPECT_LT(G.sccOf(F.Low), G.sccOf(F.MidA));
  EXPECT_LT(G.sccOf(F.MidA), G.sccOf(F.Top));

  EXPECT_TRUE(G.isRecursive(F.Low));   // Self-loop.
  EXPECT_TRUE(G.isRecursive(F.MidA));  // Two-cycle.
  EXPECT_TRUE(G.isRecursive(F.MidB));
  EXPECT_FALSE(G.isRecursive(F.Top));

  EXPECT_TRUE(G.reaches(F.Top, F.Low));
  EXPECT_FALSE(G.reaches(F.Low, F.Top));

  // Top's schedule pre-solves Low before the Mid SCC.
  std::vector<RelId> Sched = G.scheduleFor(F.Top);
  auto LowPos = std::find(Sched.begin(), Sched.end(), F.Low);
  auto MidPos = std::find(Sched.begin(), Sched.end(), F.MidA);
  ASSERT_NE(LowPos, Sched.end());
  ASSERT_NE(MidPos, Sched.end());
  EXPECT_LT(LowPos - Sched.begin(), MidPos - Sched.begin());
}

TEST(DependencyGraphTest, NegationOnACycleKillsMonotonicity) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId In = Sys.declareRel("In", {X});
  RelId A = Sys.declareRel("A", {X});
  RelId B = Sys.declareRel("B", {X});
  // A = B; B = !A — the negation sits on the A/B cycle.
  Sys.define(A, Sys.applyVars(B, {X}));
  Sys.define(B, Sys.mkNot(Sys.applyVars(A, {X})));
  // C = A | !In — negation on an input, not on a cycle.
  RelId C = Sys.declareRel("C", {X});
  Sys.define(C, Sys.mkOr({Sys.applyVars(C, {X}),
                          Sys.mkNot(Sys.applyVars(In, {X}))}));

  DependencyGraph G(Sys);
  EXPECT_FALSE(G.isMonotoneSelf(A));
  EXPECT_FALSE(G.isMonotoneSelf(B));
  EXPECT_TRUE(G.isMonotoneSelf(C));
}

TEST(PlanEquationTest, ClassifiesDisjunctKinds) {
  GraphFixture G;
  DependencyGraph Deps(G.Sys);
  EquationPlan P = planEquation(G.Sys, Deps, G.Reach);
  ASSERT_TRUE(P.SemiNaive);
  ASSERT_EQ(P.Disjuncts.size(), 2u);
  EXPECT_EQ(P.Disjuncts[0].Kind, DisjunctKind::NonRecursive);
  EXPECT_EQ(P.Disjuncts[1].Kind, DisjunctKind::Distributive);
  ASSERT_EQ(P.Disjuncts[1].Occurrences.size(), 1u);
  EXPECT_EQ(P.Disjuncts[1].Occurrences.back().App->Rel, G.Reach);
}

TEST(PlanEquationTest, NuAndNonMonotoneFallBackToNaive) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId N = Sys.declareRel("N", {X});
  Sys.defineNu(N, Sys.applyVars(N, {X}));
  // Occurrence under a negation inside its own cycle.
  RelId M = Sys.declareRel("M", {X});
  Sys.define(M, Sys.mkNot(Sys.applyVars(M, {X})));
  // Occurrence under a forall: monotone, but not distributive over union.
  RelId Q = Sys.declareRel("Q", {X});
  VarId Y = Sys.addVar("y", Sys.boolDomain());
  Sys.define(Q, Sys.forall({Y}, Sys.applyVars(Q, {Y})));

  DependencyGraph G(Sys);
  EXPECT_FALSE(planEquation(Sys, G, N).SemiNaive);
  EXPECT_FALSE(planEquation(Sys, G, M).SemiNaive);
  EquationPlan QP = planEquation(Sys, G, Q);
  EXPECT_TRUE(QP.SemiNaive); // Monotone: delta rounds apply...
  ASSERT_EQ(QP.Disjuncts.size(), 1u);
  // ...but the forall disjunct must be re-evaluated whole every round.
  EXPECT_EQ(QP.Disjuncts[0].Kind, DisjunctKind::Opaque);
}

//===----------------------------------------------------------------------===//
// Naive vs semi-naive differential
//===----------------------------------------------------------------------===//

namespace {

/// Random edge set over \p NumNodes nodes.
std::vector<std::pair<unsigned, unsigned>> randomEdges(Rng &R,
                                                       unsigned NumNodes,
                                                       unsigned NumEdges) {
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned E = 0; E < NumEdges; ++E)
    Edges.emplace_back(unsigned(R.below(NumNodes)),
                       unsigned(R.below(NumNodes)));
  return Edges;
}

/// Solves the graph fixture under one strategy and returns the value, the
/// per-round rings, and the outer iteration count. A small computed cache
/// (CacheBits) drives the evaluator into its narrow-frontier rounds.
struct StrategyRun {
  Bdd Value;
  std::vector<size_t> RingCounts;
  uint64_t Iterations = 0;
  uint64_t DeltaRounds = 0;
  bool EarlyStopped = false;
  bool HitLimit = false;
};

StrategyRun runGraph(GraphFixture &G,
                     const std::vector<std::pair<unsigned, unsigned>> &Edges,
                     unsigned InitNode, EvalStrategy Strategy,
                     unsigned CacheBits, bool WithEarlyStop = false,
                     uint64_t MaxIterations = 0, uint64_t NumNodes = 8,
                     CofactorMode Cofactor = CofactorMode::Constrain) {
  BddManager Mgr(0, CacheBits);
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr), Strategy,
               Cofactor);
  Ev.bindInput(G.Init, Ev.encodeEqConst(G.U, InitNode));
  Bdd TransBdd = Mgr.zero();
  for (auto [From, To] : Edges)
    TransBdd |= Ev.encodeEqConst(G.X, From) & Ev.encodeEqConst(G.U, To);
  Ev.bindInput(G.Trans, TransBdd);

  RingLog Rings;
  Bdd Stop = Ev.encodeEqConst(G.U, unsigned(NumNodes - 1));
  EvalOptions Opts;
  Opts.Rings = &Rings;
  if (WithEarlyStop)
    Opts.EarlyStop = &Stop;
  Opts.MaxIterations = MaxIterations;

  EvalResult R = Ev.evaluate(G.Reach, Opts);
  StrategyRun Out;
  Out.Value = R.Value;
  Out.EarlyStopped = R.EarlyStopped;
  Out.HitLimit = R.HitIterationLimit;
  // Reconstituted rings are canonically identical to the recorded rounds,
  // so per-round dag sizes remain a strategy-differential observable.
  for (size_t I = 0; I < Rings.size(); ++I)
    Out.RingCounts.push_back(Rings.ring(I).nodeCount());
  const RelStats &RS = Ev.stats().at("Reach");
  Out.Iterations = RS.Iterations;
  Out.DeltaRounds = RS.DeltaRounds;
  // The BDD values live in Mgr which dies here; compare via sat counts.
  Out.Value = Bdd();
  Out.RingCounts.push_back(size_t(R.Value.satCount(Mgr.numVars())));
  return Out;
}

} // namespace

TEST(StrategyDifferentialTest, RandomGraphsAgreeOnEverything) {
  // Large node domain + tiny computed cache forces the semi-naive core
  // through its narrow (minimized-frontier) rounds as well as the wide
  // ones; every observable — per-round ring sizes, final sat count,
  // iteration count — must match the naive run bit for bit.
  for (uint64_t Seed : {3u, 17u, 51u}) {
    GraphFixture G(64);
    Rng R(Seed);
    auto Edges = randomEdges(R, 64, 96);
    // Chain backbone so fixpoints take many rounds.
    for (unsigned N = 0; N + 1 < 64; N += 1)
      Edges.emplace_back(N, N + 1);
    for (unsigned CacheBits : {6u, 18u}) {
      StrategyRun Naive = runGraph(G, Edges, 0, EvalStrategy::Naive,
                                   CacheBits, false, 0, 64);
      StrategyRun Semi = runGraph(G, Edges, 0, EvalStrategy::SemiNaive,
                                  CacheBits, false, 0, 64);
      EXPECT_EQ(Naive.Iterations, Semi.Iterations)
          << "seed " << Seed << " cache " << CacheBits;
      EXPECT_EQ(Naive.RingCounts, Semi.RingCounts)
          << "seed " << Seed << " cache " << CacheBits;
      EXPECT_EQ(Naive.DeltaRounds, 0u);
      EXPECT_GT(Semi.DeltaRounds, 0u);
    }
  }
}

TEST(StrategyDifferentialTest, CofactorModeChangesNothingObservable) {
  // The Coudert–Madre frontier product rewrites an andExists operand only
  // within its care set, so every observable — ring sizes per round, sat
  // count, iteration and delta-round counts — must be identical across
  // all three cofactor modes (off / constrain / restrict), at a cache
  // small enough to force narrow rounds and at the default size.
  for (uint64_t Seed : {9u, 23u}) {
    GraphFixture G(64);
    Rng R(Seed);
    auto Edges = randomEdges(R, 64, 96);
    for (unsigned N = 0; N + 1 < 64; N += 1)
      Edges.emplace_back(N, N + 1);
    for (unsigned CacheBits : {6u, 18u}) {
      StrategyRun Off = runGraph(G, Edges, 0, EvalStrategy::SemiNaive,
                                 CacheBits, false, 0, 64, CofactorMode::Off);
      for (CofactorMode Mode :
           {CofactorMode::Constrain, CofactorMode::Restrict}) {
        StrategyRun On = runGraph(G, Edges, 0, EvalStrategy::SemiNaive,
                                  CacheBits, false, 0, 64, Mode);
        EXPECT_EQ(On.Iterations, Off.Iterations)
            << cofactorModeName(Mode) << " seed " << Seed << " cache "
            << CacheBits;
        EXPECT_EQ(On.DeltaRounds, Off.DeltaRounds)
            << cofactorModeName(Mode) << " seed " << Seed << " cache "
            << CacheBits;
        EXPECT_EQ(On.RingCounts, Off.RingCounts)
            << cofactorModeName(Mode) << " seed " << Seed << " cache "
            << CacheBits;
      }
    }
  }
}

TEST(StrategyDifferentialTest, EarlyStopAndRingsMatchUnderSemiNaive) {
  GraphFixture G(64);
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned N = 0; N + 1 < 64; ++N)
    Edges.emplace_back(N, N + 1);
  StrategyRun Naive =
      runGraph(G, Edges, 0, EvalStrategy::Naive, 6, true, 0, 64);
  StrategyRun Semi =
      runGraph(G, Edges, 0, EvalStrategy::SemiNaive, 6, true, 0, 64);
  EXPECT_TRUE(Naive.EarlyStopped);
  EXPECT_TRUE(Semi.EarlyStopped);
  EXPECT_EQ(Naive.Iterations, Semi.Iterations);
  EXPECT_EQ(Naive.RingCounts, Semi.RingCounts);
}

TEST(StrategyDifferentialTest, IterationLimitMatchesUnderSemiNaive) {
  GraphFixture G(64);
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned N = 0; N + 1 < 64; ++N)
    Edges.emplace_back(N, N + 1);
  StrategyRun Naive =
      runGraph(G, Edges, 0, EvalStrategy::Naive, 6, false, 7, 64);
  StrategyRun Semi =
      runGraph(G, Edges, 0, EvalStrategy::SemiNaive, 6, false, 7, 64);
  EXPECT_TRUE(Naive.HitLimit);
  EXPECT_TRUE(Semi.HitLimit);
  EXPECT_EQ(Naive.Iterations, Semi.Iterations);
  EXPECT_EQ(Naive.RingCounts, Semi.RingCounts);
}

TEST(StrategyDifferentialTest, BilinearEquationAgrees) {
  // R(u) = Init(u) | exists x, y. R(x) & R(y) & Join(x, y, u): two
  // occurrences in one disjunct exercise the nonlinear-disjunct handling
  // in both frontier widths.
  System Sys;
  DomainId Node = Sys.addDomain("Node", 16);
  VarId U = Sys.addVar("u", Node);
  VarId X = Sys.addVar("x", Node);
  VarId Y = Sys.addVar("y", Node);
  RelId Init = Sys.declareRel("Init", {U});
  RelId Join = Sys.declareRel("Join", {X, Y, U});
  RelId R = Sys.declareRel("R", {U});
  Sys.define(R, Sys.mkOr({Sys.applyVars(Init, {U}),
                          Sys.exists({X, Y},
                                     Sys.mkAnd({Sys.applyVars(R, {X}),
                                                Sys.applyVars(R, {Y}),
                                                Sys.applyVars(Join,
                                                              {X, Y, U})}))}));
  DependencyGraph G(Sys);
  EquationPlan P = planEquation(Sys, G, R);
  ASSERT_TRUE(P.SemiNaive);
  ASSERT_EQ(P.Disjuncts.size(), 2u);
  EXPECT_EQ(P.Disjuncts[1].Kind, DisjunctKind::Distributive);
  EXPECT_EQ(P.Disjuncts[1].Occurrences.size(), 2u);

  auto Solve = [&](EvalStrategy Strategy, unsigned CacheBits) {
    BddManager Mgr(0, CacheBits);
    Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr), Strategy);
    Ev.bindInput(Init, Ev.encodeEqConst(U, 1));
    // Join(x, y, u): u = min(x + y, 15) over a few sparse pairs.
    Bdd JoinBdd = Mgr.zero();
    for (unsigned A = 1; A < 8; ++A)
      for (unsigned B = A; B < 8; ++B)
        JoinBdd |= Ev.encodeEqConst(X, A) & Ev.encodeEqConst(Y, B) &
                   Ev.encodeEqConst(U, std::min(A + B, 15u));
    Ev.bindInput(Join, JoinBdd);
    EvalResult Res = Ev.evaluate(R);
    return std::make_pair(Res.Value.satCount(Mgr.numVars()),
                          Ev.stats().at("R").Iterations);
  };
  for (unsigned CacheBits : {6u, 18u}) {
    auto [NaiveCount, NaiveIters] = Solve(EvalStrategy::Naive, CacheBits);
    auto [SemiCount, SemiIters] = Solve(EvalStrategy::SemiNaive, CacheBits);
    EXPECT_DOUBLE_EQ(NaiveCount, SemiCount) << "cache " << CacheBits;
    EXPECT_EQ(NaiveIters, SemiIters) << "cache " << CacheBits;
  }
}

TEST(StrategyDifferentialTest, SccScheduledDependenciesSolveOnce) {
  MultiSccFixture F;
  BddManager Mgr;
  Evaluator Ev(F.Sys, Mgr, Layout::sequential(F.Sys, Mgr),
               EvalStrategy::SemiNaive);
  Ev.bindInput(F.In, Ev.encodeEqConst(F.X, 1));
  Bdd Top = Ev.evaluate(F.Top).Value;
  EXPECT_EQ(Top, Ev.encodeEqConst(F.X, 1));
  // The bottom SCC is pre-solved exactly once (members of the mutual Mid
  // SCC legitimately re-solve each other while iterating — that is the
  // paper's algorithmic semantics — but nothing below them is repeated,
  // and the pre-solved memos mean Top itself converges without any lazy
  // mid-round solves).
  EXPECT_EQ(Ev.stats().at("Low").Evaluations, 1u);
  EXPECT_EQ(Ev.stats().at("Top").Evaluations, 1u);
  uint64_t MidSolves = Ev.stats().at("MidA").Evaluations;
  // Solving Top again is pure memo lookup: no relation is re-solved.
  EXPECT_EQ(Ev.evaluate(F.Top).Value, Ev.encodeEqConst(F.X, 1));
  EXPECT_EQ(Ev.stats().at("Low").Evaluations, 1u);
  EXPECT_EQ(Ev.stats().at("MidA").Evaluations, MidSolves);
}

//===----------------------------------------------------------------------===//
// Rebind and invalidation
//===----------------------------------------------------------------------===//

TEST(EvaluatorTest, RebindingAnInputDropsStaleMemos) {
  // Regression: StaticCache/Completed used to survive a rebind, serving
  // BDDs computed from the previous binding. The static subformula here
  // (!In) makes the staleness observable without touching internals.
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId In = Sys.declareRel("In", {X});
  RelId NotIn = Sys.declareRel("NotIn", {X});
  RelId Helper = Sys.declareRel("Helper", {X});
  Sys.define(Helper, Sys.mkNot(Sys.applyVars(In, {X})));
  Sys.define(NotIn, Sys.mkOr({Sys.applyVars(Helper, {X}),
                              Sys.mkNot(Sys.applyVars(In, {X}))}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(In, Ev.encodeEqConst(X, 1));
  EXPECT_EQ(Ev.evaluate(NotIn).Value, Ev.encodeEqConst(X, 0));

  // Rebind WITHOUT calling invalidate(): the evaluator must drop both the
  // static-formula cache and the completed Helper relation by itself.
  Ev.bindInput(In, Ev.encodeEqConst(X, 0));
  EXPECT_EQ(Ev.evaluate(NotIn).Value, Ev.encodeEqConst(X, 1));
}

TEST(EvaluatorTest, RebindingSameValueKeepsMemos) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId In = Sys.declareRel("In", {X});
  RelId Copy = Sys.declareRel("Copy", {X});
  Sys.define(Copy, Sys.applyVars(In, {X}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd V = Ev.encodeEqConst(X, 1);
  Ev.bindInput(In, V);
  (void)Ev.evaluate(Copy);
  uint64_t Before = Ev.stats().at("Copy").Evaluations;
  Ev.bindInput(In, V); // Identical value: memos must survive.
  (void)Ev.evaluate(Copy);
  // The memoized Completed value answers the second evaluate's nested
  // uses; the top-level evaluate itself recounts, so allow exactly one
  // more solve but verify the value survived (same BDD, no extra rounds).
  EXPECT_LE(Ev.stats().at("Copy").Evaluations, Before + 1);
}

TEST(EvaluatorTest, ZeroArityRelation) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId In = Sys.declareRel("In", {X});
  RelId Any = Sys.declareRel("Any", {});
  Sys.define(Any, Sys.exists({X}, Sys.applyVars(In, {X})));
  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(In, Mgr.zero());
  EXPECT_TRUE(Ev.evaluate(Any).Value.isZero());
  Ev.invalidate();
  Ev.bindInput(In, Ev.encodeEqConst(X, 1));
  EXPECT_TRUE(Ev.evaluate(Any).Value.isOne());
}

//===----------------------------------------------------------------------===//
// RingLog: delta-compressed round retention
//===----------------------------------------------------------------------===//

namespace {

/// A monotone chain of "first N nodes" sets over one variable, the shape
/// fixpoint rounds actually take.
std::vector<Bdd> monotoneChain(Evaluator &Ev, VarId U, unsigned Rounds) {
  std::vector<Bdd> Chain;
  Bdd S = Ev.encodeEqConst(U, 0);
  Chain.push_back(S);
  for (unsigned R = 1; R < Rounds; ++R) {
    S |= Ev.encodeEqConst(U, R);
    Chain.push_back(S);
  }
  return Chain;
}

} // namespace

TEST(RingLogTest, ReconstitutesExactRingsAtEveryKeyframeInterval) {
  GraphFixture G(32);
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  std::vector<Bdd> Full = monotoneChain(Ev, G.U, 17);
  for (uint64_t K : {uint64_t(1), uint64_t(4), uint64_t(8), uint64_t(0)}) {
    RingLog Rings;
    Rings.setKeyframeInterval(K);
    for (const Bdd &R : Full)
      Rings.append(R);
    ASSERT_EQ(Rings.size(), Full.size()) << "K=" << K;
    // Canonicity: the reconstituted OR chain lands on the *same* BDD node
    // the full log would hold, not merely an equal set.
    for (size_t I = 0; I < Full.size(); ++I)
      EXPECT_EQ(Rings.ring(I), Full[I]) << "K=" << K << " ring " << I;
    EXPECT_EQ(Rings.last(), Full.back()) << "K=" << K;
    if (K == 1)
      EXPECT_EQ(Rings.keyframes(), Full.size());
    else if (K == 0)
      EXPECT_EQ(Rings.keyframes(), 1u);
    else
      EXPECT_EQ(Rings.keyframes(), (Full.size() + K - 1) / K);
  }
}

TEST(RingLogTest, FirstIntersectingMatchesFullRingScan) {
  GraphFixture G(32);
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  std::vector<Bdd> Full = monotoneChain(Ev, G.U, 24);
  RingLog Rings;
  Rings.setKeyframeInterval(5);
  for (const Bdd &R : Full)
    Rings.append(R);
  for (unsigned N = 0; N < 32; ++N) {
    Bdd T = Ev.encodeEqConst(G.U, N);
    size_t Expect = Full.size();
    for (size_t I = 0; I < Full.size(); ++I)
      if (!(Full[I] & T).isZero()) {
        Expect = I;
        break;
      }
    EXPECT_EQ(Rings.firstIntersecting(T), Expect) << "target " << N;
  }
}

TEST(RingLogTest, NonMonotoneRoundForcesAKeyframeAndStaysExact) {
  // Delta-compression assumes nothing about monotonicity: a round that
  // *drops* tuples (the ef-opt Relevant shape) cannot be stored as
  // `R & !Last`, so the log must detect it and store the round whole.
  GraphFixture G(16);
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  auto Set = [&](std::initializer_list<unsigned> Ns) {
    Bdd S = Mgr.zero();
    for (unsigned N : Ns)
      S |= Ev.encodeEqConst(G.U, N);
    return S;
  };
  std::vector<Bdd> Rounds = {Set({0}), Set({0, 1}), Set({1, 2}),
                             Set({1, 2, 3}), Set({0, 3})};
  RingLog Rings;
  Rings.setKeyframeInterval(100); // Interval alone would never keyframe.
  for (const Bdd &R : Rounds)
    Rings.append(R);
  for (size_t I = 0; I < Rounds.size(); ++I)
    EXPECT_EQ(Rings.ring(I), Rounds[I]) << "ring " << I;
  // Rounds 2 and 4 are non-monotone steps, each forced full.
  EXPECT_EQ(Rings.keyframes(), 3u);
}

TEST(RingLogTest, DeltaStorageRetainsFewerNodesThanFullRings) {
  // Scattered accumulation order, so intermediate rings are irregular
  // sets with real dag size (an in-order chain degenerates to interval
  // BDDs, which are as small as their deltas).
  GraphFixture G(64);
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  std::vector<unsigned> Order(64);
  for (unsigned N = 0; N < 64; ++N)
    Order[N] = N;
  Rng R(7);
  for (unsigned N = 63; N > 0; --N)
    std::swap(Order[N], Order[R.below(N + 1)]);
  std::vector<Bdd> Full;
  Bdd S = Mgr.zero();
  for (unsigned N = 0; N < 48; ++N) {
    S |= Ev.encodeEqConst(G.U, Order[N]);
    Full.push_back(S);
  }
  size_t FullNodes = 0;
  for (const Bdd &R : Full)
    FullNodes += R.nodeCount();
  RingLog Rings;
  Rings.setKeyframeInterval(8);
  for (const Bdd &R : Full)
    Rings.append(R);
  EXPECT_LT(Rings.storedNodes(), FullNodes);
}

TEST(IncrementalFixpointTest, ReplayStaysExactAfterComputedCacheClear) {
  // Regression (satellite of the session memory diet): reconstituting a
  // ring is an OR fold over live BDDs, so clearing the computed cache
  // between recording and replay must change nothing — neither verdicts
  // nor the reconstituted values. A stale-cache dependence here would
  // break the server's cache-clear valve.
  GraphFixture G(32);
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned N = 0; N + 1 < 32; ++N)
    Edges.emplace_back(N, N + 1);

  auto run = [&](bool ClearBetween) {
    BddManager Mgr;
    Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
    Ev.bindInput(G.Init, Ev.encodeEqConst(G.U, 0));
    Bdd TransBdd = Mgr.zero();
    for (auto [From, To] : Edges)
      TransBdd |= Ev.encodeEqConst(G.X, From) & Ev.encodeEqConst(G.U, To);
    Ev.bindInput(G.Trans, TransBdd);

    IncrementalFixpoint Fix;
    Fix.setKeyframeInterval(4);
    // Record rounds up to node 20's discovery.
    IncrementalFixpoint::Answer First = Fix.query(
        Ev, G.Reach, Ev.encodeEqConst(G.U, 20), /*EarlyStop=*/true, 0);
    EXPECT_TRUE(First.Reachable);
    if (ClearBetween)
      Mgr.clearComputedCache();
    // Replayed from recorded rings (no new rounds), reconstitution live.
    IncrementalFixpoint::Answer Second = Fix.query(
        Ev, G.Reach, Ev.encodeEqConst(G.U, 10), /*EarlyStop=*/true, 0);
    EXPECT_EQ(Second.RoundsComputed, 0u);
    return std::make_tuple(Second.Iterations, Second.Reachable,
                           Second.Value.nodeCount(),
                           uint64_t(Second.Value.satCount(Mgr.numVars())));
  };

  EXPECT_EQ(run(false), run(true));
}
