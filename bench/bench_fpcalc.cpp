//===- bench_fpcalc.cpp - Fixed-point solver micro-benchmarks -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// google-benchmark microbenchmarks of the calculus evaluator: fixpoint
// iteration cost on the Section-3 transition-system example at growing
// domain sizes, and the static-subformula cache.
//===----------------------------------------------------------------------===//

#include "fpcalc/Calculus.h"
#include "fpcalc/Evaluator.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace getafix;
using namespace getafix::fpc;

namespace {

/// Graph reachability at growing domain sizes; arg 1 picks the evaluation
/// strategy (0 = naive, 1 = semi-naive) so the delta core's per-round
/// saving shows up as a same-binary ablation.
void BM_GraphReachability(benchmark::State &State) {
  uint64_t NumNodes = uint64_t(State.range(0));
  EvalStrategy Strategy =
      State.range(1) ? EvalStrategy::SemiNaive : EvalStrategy::Naive;
  System Sys;
  DomainId Node = Sys.addDomain("Node", NumNodes);
  VarId U = Sys.addVar("u", Node);
  VarId X = Sys.addVar("x", Node);
  RelId Init = Sys.declareRel("Init", {U});
  RelId Trans = Sys.declareRel("Trans", {X, U});
  RelId Reach = Sys.declareRel("Reach", {U});
  Sys.define(Reach, Sys.mkOr({Sys.applyVars(Init, {U}),
                              Sys.exists({X}, Sys.mkAnd({
                                                  Sys.applyVars(Reach, {X}),
                                                  Sys.applyVars(Trans,
                                                                {X, U}),
                                              }))}));

  uint64_t NodesCreated = 0;
  for (auto _ : State) {
    BddManager Mgr;
    Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr), Strategy);
    Ev.bindInput(Init, Ev.encodeEqConst(U, 0));
    Rng R(7);
    Bdd TransBdd = Mgr.zero();
    // A long chain plus random shortcuts: many iterations to converge.
    for (uint64_t N = 0; N + 1 < NumNodes; ++N)
      TransBdd |= Ev.encodeEqConst(X, N) & Ev.encodeEqConst(U, N + 1);
    for (unsigned E = 0; E < 16; ++E)
      TransBdd |= Ev.encodeEqConst(X, R.below(NumNodes)) &
                  Ev.encodeEqConst(U, R.below(NumNodes));
    Ev.bindInput(Trans, TransBdd);
    benchmark::DoNotOptimize(Ev.evaluate(Reach).Value.nodeCount());
    NodesCreated = Mgr.stats().NodesCreated;
  }
  State.counters["bdd_nodes"] =
      benchmark::Counter(double(NodesCreated));
}
BENCHMARK(BM_GraphReachability)
    ->ArgNames({"nodes", "semi"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

} // namespace

BENCHMARK_MAIN();
