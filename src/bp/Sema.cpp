//===- Sema.cpp - Boolean program semantic analysis -----------------------===//

#include "bp/Sema.h"

#include <map>
#include <optional>
#include <set>

using namespace getafix;
using namespace getafix::bp;

namespace {

class Analyzer {
public:
  Analyzer(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void collectProcs();
  void inferReturnArity(Proc &P);
  unsigned countReturns(const std::vector<StmtPtr> &Body,
                        std::optional<unsigned> &Arity, const Proc &P);
  void analyzeProc(Proc &P);
  void analyzeStmts(std::vector<StmtPtr> &Body, Proc &P,
                    const std::map<std::string, VarRef> &Scope,
                    const std::set<std::string> &Labels);
  void resolveExpr(Expr &E, const std::map<std::string, VarRef> &Scope);
  void collectLabels(const std::vector<StmtPtr> &Body,
                     std::set<std::string> &Labels, const Proc &P);

  Program &Prog;
  DiagnosticEngine &Diags;
};

} // namespace

void Analyzer::collectProcs() {
  for (unsigned Id = 0; Id < Prog.Procs.size(); ++Id) {
    Proc &P = *Prog.Procs[Id];
    auto [It, Inserted] = Prog.ProcIds.emplace(P.Name, Id);
    (void)It;
    if (!Inserted)
      Diags.error(P.Loc, "redefinition of procedure '" + P.Name + "'");
  }
  auto MainIt = Prog.ProcIds.find("main");
  if (MainIt == Prog.ProcIds.end()) {
    Diags.error(SourceLoc{}, "program has no 'main' procedure");
    return;
  }
  Prog.MainId = MainIt->second;
  const Proc &Main = Prog.main();
  if (!Main.Params.empty())
    Diags.error(Main.Loc, "'main' must take no parameters");
}

unsigned Analyzer::countReturns(const std::vector<StmtPtr> &Body,
                                std::optional<unsigned> &Arity,
                                const Proc &P) {
  unsigned Count = 0;
  for (const StmtPtr &S : Body) {
    switch (S->Kind) {
    case StmtKind::Return: {
      ++Count;
      unsigned K = unsigned(S->Exprs.size());
      if (!Arity) {
        Arity = K;
      } else if (*Arity != K) {
        Diags.error(S->Loc, "procedure '" + P.Name +
                                "' has return statements of differing "
                                "arities (" +
                                std::to_string(*Arity) + " vs " +
                                std::to_string(K) + ")");
      }
      break;
    }
    case StmtKind::If:
      Count += countReturns(S->ThenBody, Arity, P);
      Count += countReturns(S->ElseBody, Arity, P);
      break;
    case StmtKind::While:
      Count += countReturns(S->ThenBody, Arity, P);
      break;
    default:
      break;
    }
  }
  return Count;
}

void Analyzer::inferReturnArity(Proc &P) {
  std::optional<unsigned> Arity;
  countReturns(P.Body, Arity, P);
  P.NumReturns = Arity.value_or(0);
}

void Analyzer::resolveExpr(Expr &E,
                           const std::map<std::string, VarRef> &Scope) {
  switch (E.Kind) {
  case ExprKind::Var: {
    auto It = Scope.find(E.VarName);
    if (It == Scope.end()) {
      Diags.error(E.Loc, "use of undeclared variable '" + E.VarName + "'");
      return;
    }
    E.Ref = It->second;
    return;
  }
  case ExprKind::Not:
    resolveExpr(*E.Lhs, Scope);
    return;
  case ExprKind::And:
  case ExprKind::Or:
    resolveExpr(*E.Lhs, Scope);
    resolveExpr(*E.Rhs, Scope);
    return;
  case ExprKind::True:
  case ExprKind::False:
  case ExprKind::Nondet:
    return;
  }
}

void Analyzer::collectLabels(const std::vector<StmtPtr> &Body,
                             std::set<std::string> &Labels, const Proc &P) {
  for (const StmtPtr &S : Body) {
    if (!S->Label.empty() && !Labels.insert(S->Label).second)
      Diags.error(S->Loc, "duplicate label '" + S->Label +
                              "' in procedure '" + P.Name + "'");
    if (S->Kind == StmtKind::If || S->Kind == StmtKind::While) {
      collectLabels(S->ThenBody, Labels, P);
      collectLabels(S->ElseBody, Labels, P);
    }
  }
}

void Analyzer::analyzeStmts(std::vector<StmtPtr> &Body, Proc &P,
                            const std::map<std::string, VarRef> &Scope,
                            const std::set<std::string> &Labels) {
  for (StmtPtr &S : Body) {
    for (ExprPtr &E : S->Exprs)
      resolveExpr(*E, Scope);
    if (S->Cond)
      resolveExpr(*S->Cond, Scope);

    switch (S->Kind) {
    case StmtKind::Assign:
    case StmtKind::CallAssign: {
      std::set<std::string> SeenLhs;
      for (const std::string &Name : S->LhsNames) {
        auto It = Scope.find(Name);
        if (It == Scope.end()) {
          Diags.error(S->Loc, "assignment to undeclared variable '" + Name +
                                  "'");
          S->LhsRefs.push_back(VarRef{});
        } else {
          S->LhsRefs.push_back(It->second);
        }
        if (!SeenLhs.insert(Name).second)
          Diags.error(S->Loc,
                      "variable '" + Name +
                          "' assigned twice in simultaneous assignment");
      }
      if (S->Kind == StmtKind::Assign &&
          S->LhsNames.size() != S->Exprs.size())
        Diags.error(S->Loc,
                    "assignment arity mismatch: " +
                        std::to_string(S->LhsNames.size()) + " targets, " +
                        std::to_string(S->Exprs.size()) + " expressions");
      break;
    }
    case StmtKind::Goto:
      if (!Labels.count(S->CalleeName))
        Diags.error(S->Loc, "goto to unknown label '" + S->CalleeName +
                                "' in procedure '" + P.Name + "'");
      break;
    default:
      break;
    }

    if (S->Kind == StmtKind::Call || S->Kind == StmtKind::CallAssign) {
      auto It = Prog.ProcIds.find(S->CalleeName);
      if (It == Prog.ProcIds.end()) {
        Diags.error(S->Loc, "call to undefined procedure '" + S->CalleeName +
                                "'");
      } else {
        S->CalleeId = It->second;
        const Proc &Callee = Prog.proc(S->CalleeId);
        if (S->CalleeId == Prog.MainId)
          Diags.error(S->Loc, "'main' may not be called");
        if (S->Exprs.size() != Callee.Params.size())
          Diags.error(S->Loc, "call to '" + Callee.Name + "' passes " +
                                  std::to_string(S->Exprs.size()) +
                                  " arguments; expected " +
                                  std::to_string(Callee.Params.size()));
        if (S->Kind == StmtKind::Call && Callee.NumReturns != 0)
          Diags.error(S->Loc, "'call' statement requires a procedure with "
                              "no return values; '" +
                                  Callee.Name + "' returns " +
                                  std::to_string(Callee.NumReturns));
        if (S->Kind == StmtKind::CallAssign &&
            S->LhsNames.size() != Callee.NumReturns)
          Diags.error(S->Loc, "call assignment expects " +
                                  std::to_string(Callee.NumReturns) +
                                  " values from '" + Callee.Name +
                                  "'; got " +
                                  std::to_string(S->LhsNames.size()) +
                                  " targets");
      }
    }

    if (S->Kind == StmtKind::Return && S->Exprs.size() != P.NumReturns)
      Diags.error(S->Loc, "return arity mismatch in '" + P.Name + "'");

    if (S->Kind == StmtKind::If || S->Kind == StmtKind::While) {
      analyzeStmts(S->ThenBody, P, Scope, Labels);
      analyzeStmts(S->ElseBody, P, Scope, Labels);
    }
  }
}

void Analyzer::analyzeProc(Proc &P) {
  std::map<std::string, VarRef> Scope;
  for (unsigned I = 0; I < Prog.Globals.size(); ++I) {
    if (!Scope.emplace(Prog.Globals[I], VarRef{true, I}).second)
      Diags.error(P.Loc, "duplicate global '" + Prog.Globals[I] + "'");
  }
  for (unsigned I = 0; I < P.numLocalSlots(); ++I) {
    const std::string &Name = P.localName(I);
    auto [It, Inserted] = Scope.emplace(Name, VarRef{false, I});
    if (!Inserted) {
      if (It->second.IsGlobal)
        Diags.error(P.Loc, "local '" + Name + "' in '" + P.Name +
                               "' shadows a global (globals and locals "
                               "must be disjoint)");
      else
        Diags.error(P.Loc, "duplicate local '" + Name + "' in '" + P.Name +
                               "'");
    }
  }
  std::set<std::string> Labels;
  collectLabels(P.Body, Labels, P);
  analyzeStmts(P.Body, P, Scope, Labels);
}

bool Analyzer::run() {
  collectProcs();
  if (Diags.hasErrors())
    return false;
  for (auto &P : Prog.Procs)
    inferReturnArity(*P);
  for (auto &P : Prog.Procs)
    analyzeProc(*P);
  return !Diags.hasErrors();
}

const Stmt *Program::findLabel(const std::string &Label,
                               unsigned *ProcId) const {
  struct Finder {
    const std::string &Label;
    const Stmt *find(const std::vector<StmtPtr> &Body) {
      for (const StmtPtr &S : Body) {
        if (S->Label == Label)
          return S.get();
        if (S->Kind == StmtKind::If || S->Kind == StmtKind::While) {
          if (const Stmt *Found = find(S->ThenBody))
            return Found;
          if (const Stmt *Found = find(S->ElseBody))
            return Found;
        }
      }
      return nullptr;
    }
  } F{Label};
  for (unsigned Id = 0; Id < Procs.size(); ++Id)
    if (const Stmt *Found = F.find(Procs[Id]->Body)) {
      if (ProcId)
        *ProcId = Id;
      return Found;
    }
  return nullptr;
}

bool bp::analyzeProgram(Program &Prog, DiagnosticEngine &Diags) {
  return Analyzer(Prog, Diags).run();
}
