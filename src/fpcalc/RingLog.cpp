//===- RingLog.cpp - Delta-compressed per-round value log -----------------===//

#include "fpcalc/RingLog.h"

using namespace getafix;
using namespace getafix::fpc;

void RingLog::append(const Bdd &Ring) {
  Piece P;
  bool Key =
      Pieces.empty() || (Interval != 0 && SinceKeyframe + 1 >= Interval);
  if (!Key) {
    Bdd Delta = Ring & !Last;
    // The reconstitution check doubles as the non-monotone safety net:
    // when the new round is not a superset of the previous one, no delta
    // can rebuild it, so the round is stored full.
    if ((Last | Delta) == Ring) {
      P.Value = std::move(Delta);
    } else {
      Key = true;
    }
  }
  if (Key) {
    P.Value = Ring;
    P.Keyframe = true;
  }
  Last = Ring;
  SinceKeyframe = Key ? 0 : SinceKeyframe + 1;
  NumKeyframes += Key ? 1 : 0;
  Pieces.push_back(std::move(P));
}

Bdd RingLog::ring(size_t I) const {
  assert(I < Pieces.size() && "ring index out of range");
  size_t J = I;
  while (!Pieces[J].Keyframe) {
    assert(J > 0 && "piece 0 must be a keyframe");
    --J;
  }
  // Fixed-order OR chain from the keyframe up; the fold order is
  // irrelevant to the result (ROBDD canonicity — the value is
  // set-determined) but kept fixed for reproducible intermediate work.
  Bdd V = Pieces[J].Value;
  for (++J; J <= I; ++J)
    V |= Pieces[J].Value;
  return V;
}

size_t RingLog::firstIntersecting(const Bdd &T) const {
  for (size_t I = 0; I < Pieces.size(); ++I)
    if (!(Pieces[I].Value & T).isZero())
      return I;
  return Pieces.size();
}

size_t RingLog::storedNodes() const {
  size_t N = 0;
  for (const Piece &P : Pieces)
    N += P.Value.nodeCount();
  return N;
}
