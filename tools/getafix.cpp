//===- getafix.cpp - The Getafix command-line checker ---------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool of Figure 1: reads a (possibly concurrent) Boolean program and
/// answers a label-reachability query YES/NO. All parsing, dispatch, and
/// engine selection goes through the `getafix::Solver` facade; the engine
/// list in `--algo` and `--list-algos` is generated from the registry.
///
///   getafix [options] <program.bp>
///     --label <L>        target label (default ERR)
///     --algo <name>      engine to run (see --list-algos; default: ef-opt
///                        for sequential programs, conc for concurrent)
///     --list-algos       print the registered engines and exit
///     --context-bound k  concurrent programs: max context switches
///     --rounds r         concurrent: round-robin with r rounds (implies
///                        --round-robin; overrides --context-bound)
///     --round-robin      concurrent: restrict schedules to round-robin
///     --strategy <s>     fixed-point iteration scheme: semi-naive
///                        (default) or naive (the paper's literal
///                        Section-3 semantics; ablation/debugging)
///     --max-iterations n cap fixpoint rounds; a hit limit prints UNKNOWN
///                        (exit 3) unless the target was already found
///     --cache-bits n     BDD computed cache of 2^n entries (default 18)
///     --no-constrain     disable the Coudert–Madre frontier-aware
///                        relational product (ablation; results identical)
///     --witness          print a counterexample trace when the target is
///                        reachable (engines that support extraction)
///     --print-formula    dump the fixed-point equation system and exit
///     --stats            print solver statistics as a JSON object (cache
///                        hit-rate split per BDD operation, GC/peak-node
///                        counters, per-relation iteration/delta counts)
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace getafix;

namespace {

struct CliOptions {
  std::string File;
  std::string Label = "ERR";
  std::string Algo; ///< Empty: the facade picks the query-kind default.
  unsigned ContextBound = 2;
  unsigned Rounds = 0; ///< 0 means "not given".
  uint64_t MaxIterations = 0;
  unsigned CacheBits = 18;
  bool ConstrainFrontier = true;
  fpc::EvalStrategy Strategy = fpc::EvalStrategy::SemiNaive;
  bool RoundRobin = false;
  bool Witness = false;
  bool PrintFormula = false;
  bool Stats = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: getafix [--label L] [--algo %s]\n"
               "               [--list-algos] [--context-bound k] "
               "[--rounds r] [--round-robin]\n"
               "               [--strategy naive|semi-naive] "
               "[--max-iterations n]\n"
               "               [--cache-bits n] [--no-constrain]\n"
               "               [--witness] [--print-formula] [--stats] "
               "<program.bp>\n",
               Solver::engineList("|").c_str());
  return 2;
}

int listAlgos() {
  std::printf("registered engines:\n%s", Solver::engineTable().c_str());
  return 0;
}

/// `--stats` output: one JSON object on stdout. Strings that reach this
/// are engine/relation identifiers (no exotic characters), but escape the
/// usual suspects anyway so the output is always well-formed.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

void printStatsJson(const CliOptions &Opts, const std::string &Engine,
                    const SolveResult &R) {
  std::printf("{\n");
  std::printf("  \"engine\": \"%s\",\n", jsonEscape(Engine).c_str());
  std::printf("  \"strategy\": \"%s\",\n", fpc::strategyName(Opts.Strategy));
  std::printf("  \"reachable\": %s,\n", R.Reachable ? "true" : "false");
  std::printf("  \"hit_iteration_limit\": %s,\n",
              R.HitIterationLimit ? "true" : "false");
  std::printf("  \"iterations\": %llu,\n",
              (unsigned long long)R.Iterations);
  std::printf("  \"delta_rounds\": %llu,\n",
              (unsigned long long)R.DeltaRounds);
  std::printf("  \"summary_nodes\": %zu,\n", R.SummaryNodes);
  std::printf("  \"peak_live_nodes\": %zu,\n", R.PeakLiveNodes);
  std::printf("  \"bdd_nodes_created\": %llu,\n",
              (unsigned long long)R.BddNodesCreated);
  std::printf("  \"bdd_cache_lookups\": %llu,\n",
              (unsigned long long)R.BddCacheLookups);
  std::printf("  \"bdd_cache_hits\": %llu,\n",
              (unsigned long long)R.BddCacheHits);
  std::printf("  \"bdd_cache_hit_rate\": %.4f,\n", R.bddCacheHitRate());
  // Per-operation split of the aggregate probe/hit counters, so ablation
  // drivers no longer re-derive them from deltas between runs. Ops the
  // solve never issued are omitted.
  std::printf("  \"bdd_cache_ops\": {");
  bool FirstOp = true;
  for (unsigned OpIdx = 0; OpIdx < NumBddOps; ++OpIdx) {
    if (R.Bdd.OpLookups[OpIdx] == 0)
      continue;
    std::printf("%s\n    \"%s\": {\"lookups\": %llu, \"hits\": %llu}",
                FirstOp ? "" : ",", bddOpName(BddOp(OpIdx)),
                (unsigned long long)R.Bdd.OpLookups[OpIdx],
                (unsigned long long)R.Bdd.OpHits[OpIdx]);
    FirstOp = false;
  }
  std::printf("%s},\n", FirstOp ? "" : "\n  ");
  std::printf("  \"gc_runs\": %llu,\n", (unsigned long long)R.Bdd.GcRuns);
  std::printf("  \"gc_reclaimed\": %llu,\n",
              (unsigned long long)R.Bdd.GcReclaimed);
  std::printf("  \"peak_nodes\": %zu,\n", R.Bdd.PeakNodes);
  if (R.ReachStates != 0.0)
    std::printf("  \"reach_states\": %.0f,\n", R.ReachStates);
  if (R.TransformedGlobals)
    std::printf("  \"transformed_globals\": %zu,\n", R.TransformedGlobals);
  if (R.HasWitness)
    std::printf("  \"witness_steps\": %zu,\n", R.Witness.size());
  std::printf("  \"seconds\": %.6f,\n", R.Seconds);
  std::printf("  \"relations\": {");
  bool First = true;
  for (const auto &[Name, RS] : R.Relations) {
    std::printf("%s\n    \"%s\": {\"iterations\": %llu, "
                "\"delta_rounds\": %llu, \"evaluations\": %llu, "
                "\"final_nodes\": %zu}",
                First ? "" : ",", jsonEscape(Name).c_str(),
                (unsigned long long)RS.Iterations,
                (unsigned long long)RS.DeltaRounds,
                (unsigned long long)RS.Evaluations, RS.FinalNodes);
    First = false;
  }
  std::printf("%s}\n", First ? "" : "\n  ");
  std::printf("}\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--label") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Label = V;
    } else if (Arg == "--algo") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Algo = V;
    } else if (Arg == "--list-algos") {
      return listAlgos();
    } else if (Arg == "--context-bound") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.ContextBound = unsigned(std::atoi(V));
    } else if (Arg == "--rounds") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Rounds = unsigned(std::atoi(V));
      Opts.RoundRobin = true;
    } else if (Arg == "--round-robin") {
      Opts.RoundRobin = true;
    } else if (Arg == "--strategy") {
      const char *V = Next();
      if (!V)
        return usage();
      if (std::string(V) == "naive")
        Opts.Strategy = fpc::EvalStrategy::Naive;
      else if (std::string(V) == "semi-naive")
        Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      else
        return usage();
    } else if (Arg == "--max-iterations") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.MaxIterations = uint64_t(std::atoll(V));
    } else if (Arg == "--cache-bits") {
      const char *V = Next();
      if (!V)
        return usage();
      int Bits = std::atoi(V);
      if (Bits < 2 || Bits > 30)
        return usage();
      Opts.CacheBits = unsigned(Bits);
    } else if (Arg == "--no-constrain") {
      Opts.ConstrainFrontier = false;
    } else if (Arg == "--witness") {
      Opts.Witness = true;
    } else if (Arg == "--print-formula") {
      Opts.PrintFormula = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Opts.File = Arg;
    }
  }
  if (Opts.File.empty())
    return usage();

  std::ifstream In(Opts.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Query Q = Query::fromSource(Buffer.str())
                .target(Opts.Label)
                .witness(Opts.Witness);
  SolverOptions SO;
  SO.Engine = Opts.Algo;
  SO.ContextBound = Opts.ContextBound;
  SO.Rounds = Opts.Rounds;
  SO.RoundRobin = Opts.RoundRobin;
  SO.Strategy = Opts.Strategy;
  SO.MaxIterations = Opts.MaxIterations;
  SO.CacheBits = Opts.CacheBits;
  SO.ConstrainFrontier = Opts.ConstrainFrontier;

  if (Opts.PrintFormula) {
    std::string Error;
    std::string Text = Solver::formulaText(Q, SO, &Error);
    if (Text.empty()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    std::printf("%s", Text.c_str());
    return 0;
  }

  SolveResult R = Solver::solve(Q, SO);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 2;
  }

  // A hit iteration limit with no hit target is inconclusive: the solver
  // only explored MaxIterations rounds' worth of states. A reachable
  // verdict stays valid (the partial result is a lower bound).
  bool Unknown = R.HitIterationLimit && !R.Reachable;
  std::printf("%s\n", Unknown     ? "UNKNOWN (iteration limit)"
                      : R.Reachable ? "YES"
                                    : "NO");
  if (R.HasWitness)
    std::printf("%s", R.WitnessText.c_str());
  if (Opts.Stats)
    printStatsJson(Opts, Opts.Algo.empty() ? "(default)" : Opts.Algo, R);
  return Unknown ? 3 : R.Reachable ? 0 : 1;
}
