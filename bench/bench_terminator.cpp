//===- bench_terminator.cpp - Figure 2, TERMINATOR rows -------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Reproduces the TERMINATOR block of Figure 2: counter-walking programs
// with large reachable-state BDDs, in the paper's two dead-variable
// modelling styles. Shapes to check (paper: Terminator-B iterative, EF 72s
// vs EF-opt 12s; baselines time out or take minutes on hard rows):
//   - EF-opt beats plain EF as difficulty grows,
//   - the enumerative Bebop stand-in degrades far faster than the symbolic
//     engines,
//   - iterative dead-variable modelling is harder than schoose.
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

using namespace getafix;
using namespace getafix::bench;

int main() {
  std::printf("=== Figure 2 / TERMINATOR (counter workloads) ===\n");
  std::printf("%-22s %6s %7s %8s %8s %9s %9s %9s\n", "case", "LOC",
              "Reach?", "BDD", "EF(s)", "EFopt(s)", "moped(s)", "bebop(s)");

  struct Tier {
    const char *Name;
    unsigned Bits;
    unsigned Dead;
    bool Reachable;
    bool RunBebop; ///< The enumerative baseline is skipped once hopeless.
  } Tiers[] = {
      {"terminator-A", 4, 4, true, true},
      {"terminator-B", 5, 5, false, true},
      {"terminator-C", 6, 6, false, false},
  };

  for (const Tier &T : Tiers) {
    // The paper's two hand modellings of `dead`, plus the native `dead`
    // statement (an extension; the paper notes Getafix lacked it).
    for (auto Style :
         {gen::DeadVarStyle::Iterative, gen::DeadVarStyle::Schoose,
          gen::DeadVarStyle::Native}) {
      gen::TerminatorParams P;
      P.CounterBits = T.Bits;
      P.NumDeadVars = T.Dead;
      P.Style = Style;
      P.Reachable = T.Reachable;
      gen::Workload W = gen::terminatorProgram(P);
      ParsedProgram Parsed = parseOrDie(W.Source);

      EngineRow Ef = runEngine(Parsed.Cfg, W.TargetLabel, "ef-split");
      EngineRow Opt = runEngine(Parsed.Cfg, W.TargetLabel, "ef-opt");
      EngineRow Moped = runEngine(Parsed.Cfg, W.TargetLabel, "moped");
      EngineRow Bebop;
      bool RanBebop = T.RunBebop;
      if (RanBebop)
        Bebop = runEngine(Parsed.Cfg, W.TargetLabel, "bebop");

      if (Ef.Reachable != W.ExpectReachable ||
          Opt.Reachable != W.ExpectReachable)
        std::fprintf(stderr, "WRONG ANSWER on %s\n", W.Name.c_str());

      char BebopCol[32];
      if (RanBebop)
        std::snprintf(BebopCol, sizeof(BebopCol), "%9.3f", Bebop.Seconds);
      else
        std::snprintf(BebopCol, sizeof(BebopCol), "%9s", "-");
      std::printf("%-22s %6u %7s %8zu %8.3f %9.3f %9.3f %s\n",
                  W.Name.c_str(), countLoc(W.Source),
                  W.ExpectReachable ? "Yes" : "No", Ef.Nodes, Ef.Seconds,
                  Opt.Seconds, Moped.Seconds, BebopCol);
    }
  }
  return 0;
}
