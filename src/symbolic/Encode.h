//===- Encode.h - Symbolic encoding of Boolean programs ---------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates a Boolean program's CFG into the input relations the paper's
/// algorithms consume (Section 4's template formulae), as BDDs:
///
///   - `programInt(mod, pc, pc', L, L', G, G')`   internal transitions
///   - `programCall(mod, mod', pc, L, L', G)`      transitions into a call
///   - `skipCall(mod, pc, pc')`                    the Across pairs
///   - `setReturn1` / `setReturn2`                 the split Return relation
///     of Section 4.2 (caller-side local copying vs exit-side return-value
///     assignment), and `setReturn`, their unsplit conjunction
///   - `exitRel(mod, pc)`, `initRel(mod, pc, L)`, `target(mod, pc)`
///
/// State layout follows the Appendix's `Conf` tuple: module id, module-local
/// PC (entries are PC 0), a local bit-vector padded to the largest frame,
/// and a global bit-vector. Nondeterministic `*` subexpressions compile to
/// existentially quantified choice bits.
///
/// `VarFactory` centralizes variable creation so that every copy of the
/// same field lands in one interleaving group — the variable-ordering
/// heuristic Getafix hands MUCKE (copies of a field on adjacent levels).
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SYMBOLIC_ENCODE_H
#define GETAFIX_SYMBOLIC_ENCODE_H

#include "bp/Cfg.h"
#include "fpcalc/Evaluator.h"

#include <map>
#include <string>
#include <vector>

namespace getafix {
namespace sym {

/// The shared finite domains of a program encoding.
struct StateDomains {
  fpc::DomainId Mod = 0;  ///< Module (procedure) ids.
  fpc::DomainId Pc = 0;   ///< Module-local program counters.
  fpc::DomainId LVec = 0; ///< Local-frame bit-vectors (padded).
  fpc::DomainId GVec = 0; ///< Global bit-vectors.
};

/// Creates calculus variables and records them in per-domain interleaving
/// groups for the layout.
class VarFactory {
public:
  VarFactory(fpc::System &Sys) : Sys(Sys) {}

  fpc::VarId makeVar(const std::string &Name, fpc::DomainId Dom) {
    fpc::VarId V = Sys.addVar(Name, Dom);
    Groups[Dom].push_back(V);
    return V;
  }

  /// Interleaves each domain's variables; groups ordered by domain id.
  fpc::Layout makeLayout(BddManager &Mgr) const {
    std::vector<std::vector<fpc::VarId>> Ordered;
    for (const auto &[Dom, Vars] : Groups) {
      (void)Dom;
      Ordered.push_back(Vars);
    }
    return fpc::Layout::interleaved(Sys, Mgr, Ordered);
  }

private:
  fpc::System &Sys;
  std::map<fpc::DomainId, std::vector<fpc::VarId>> Groups;
};

/// The flattened `Conf` tuple of the Appendix: current state plus the
/// entry-state copies used by summary relations.
struct ConfVars {
  fpc::VarId Mod = 0;
  fpc::VarId Pc = 0;
  fpc::VarId CL = 0;  ///< Current locals.
  fpc::VarId CG = 0;  ///< Current globals.
  fpc::VarId ECL = 0; ///< Locals at the last entry of this module.
  fpc::VarId ECG = 0; ///< Globals at the last entry of this module.
};

/// Declares and (later) binds one program's input relations. Several
/// encoders can share a System (one per thread of a concurrent program).
class ProgramEncoder {
public:
  /// Declares relations named with \p Suffix (empty for sequential use).
  ProgramEncoder(fpc::System &Sys, VarFactory &Factory,
                 const StateDomains &Doms, const bp::ProgramCfg &Cfg,
                 fpc::DomainId ChoiceDom, std::string Suffix = "");

  /// Builds the relation BDDs into \p Ev. \p TargetProcId/\p TargetPc name
  /// the reachability goal (use ~0u for "no target").
  void bind(fpc::Evaluator &Ev, unsigned TargetProcId, unsigned TargetPc);

  // Relation ids -----------------------------------------------------------
  fpc::RelId ProgramInt = 0;
  fpc::RelId ProgramCall = 0;
  fpc::RelId SkipCall = 0;
  fpc::RelId SetReturn1 = 0;
  fpc::RelId SetReturn2 = 0;
  fpc::RelId SetReturn = 0;
  fpc::RelId ExitRel = 0;
  fpc::RelId EntryRel = 0;
  fpc::RelId InitRel = 0;
  fpc::RelId Target = 0;

  const bp::ProgramCfg &cfg() const { return Cfg; }

  /// Largest number of `*` choice bits used by any edge of \p Cfg.
  static unsigned maxChoiceBits(const bp::ProgramCfg &Cfg);

  // Formal parameter variables per relation (created at declaration time).
  // Exposed so native (non-calculus) solvers can build their renamings.
  struct FormalSets {
    // programInt(Mod, PcFrom, PcTo, LFrom, LTo, GFrom, GTo).
    fpc::VarId IMod, IPcFrom, IPcTo, ILFrom, ILTo, IGFrom, IGTo;
    // programCall(ModCaller, ModCallee, PcCall, LCaller, LEntry, G).
    fpc::VarId CModCaller, CModCallee, CPc, CLCaller, CLEntry, CG;
    // skipCall(Mod, PcCall, PcRet).
    fpc::VarId SMod, SPcCall, SPcRet;
    // setReturn1(Mod, ModCallee, PcCall, LCaller, LRet).
    fpc::VarId R1Mod, R1ModCallee, R1Pc, R1LCaller, R1LRet;
    // setReturn2(Mod, ModCallee, PcCall, PcExit, LExit, LRet, GExit, GRet).
    fpc::VarId R2Mod, R2ModCallee, R2Pc, R2PcExit, R2LExit, R2LRet, R2GExit,
        R2GRet;
    // setReturn(Mod, ModCallee, PcCall, PcExit, LCaller, LExit, GExit,
    //           LRet, GRet).
    fpc::VarId RMod, RModCallee, RPc, RPcExit, RLCaller, RLExit, RGExit,
        RLRet, RGRet;
    // exitRel(Mod, Pc); entryRel(Mod, Pc, L); initRel(Mod, Pc, L);
    // target(Mod, Pc).
    fpc::VarId EMod, EPc, YMod, YPc, YL, NMod, NPc, NL, TMod, TPc;
  };

  const FormalSets &formals() const { return F; }

private:
  Bdd compileExpr(fpc::Evaluator &Ev, const bp::Expr &E, fpc::VarId LVar,
                  fpc::VarId GVar, unsigned &ChoiceIdx);
  Bdd frameEq(fpc::Evaluator &Ev, fpc::VarId From, fpc::VarId To);
  BddCube choiceCube(fpc::Evaluator &Ev);

  void bindProgramInt(fpc::Evaluator &Ev);
  void bindProgramCall(fpc::Evaluator &Ev);
  void bindSkipCall(fpc::Evaluator &Ev);
  void bindReturns(fpc::Evaluator &Ev);
  void bindStatics(fpc::Evaluator &Ev, unsigned TargetProcId,
                   unsigned TargetPc);

  fpc::System &Sys;
  const StateDomains Doms;
  const bp::ProgramCfg &Cfg;
  fpc::VarId Choice; ///< Shared existential choice-bit vector.

  FormalSets F;
};

} // namespace sym
} // namespace getafix

#endif // GETAFIX_SYMBOLIC_ENCODE_H
