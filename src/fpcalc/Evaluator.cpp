//===- Evaluator.cpp - Symbolic fixed-point evaluation --------------------===//

#include "fpcalc/Evaluator.h"

#include <algorithm>

using namespace getafix;
using namespace getafix::fpc;

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

Layout Layout::sequential(const System &Sys, BddManager &Mgr) {
  Layout L;
  L.Bits.resize(Sys.numVars());
  for (VarId V = 0; V < Sys.numVars(); ++V) {
    unsigned NumBits = Sys.domain(Sys.var(V).Dom).numBits();
    for (unsigned B = 0; B < NumBits; ++B)
      L.Bits[V].push_back(Mgr.newVar());
  }
  return L;
}

Layout Layout::interleaved(const System &Sys, BddManager &Mgr,
                           const std::vector<std::vector<VarId>> &Groups) {
  Layout L;
  L.Bits.resize(Sys.numVars());
  for (const std::vector<VarId> &Group : Groups) {
    assert(!Group.empty() && "empty layout group");
    unsigned NumBits = Sys.domain(Sys.var(Group.front()).Dom).numBits();
#ifndef NDEBUG
    for (VarId V : Group) {
      assert(Sys.domain(Sys.var(V).Dom).numBits() == NumBits &&
             "layout group members must share a domain width");
      assert(L.Bits[V].empty() && "variable allocated twice");
    }
#endif
    // Bit-major: bit 0 of every copy, then bit 1 of every copy, ...
    for (unsigned B = 0; B < NumBits; ++B)
      for (VarId V : Group)
        L.Bits[V].push_back(Mgr.newVar());
  }
  for (VarId V = 0; V < Sys.numVars(); ++V) {
    if (!L.Bits[V].empty())
      continue;
    unsigned NumBits = Sys.domain(Sys.var(V).Dom).numBits();
    for (unsigned B = 0; B < NumBits; ++B)
      L.Bits[V].push_back(Mgr.newVar());
  }
  return L;
}

//===----------------------------------------------------------------------===//
// Evaluator: setup and encoding helpers
//===----------------------------------------------------------------------===//

Evaluator::Evaluator(const System &Sys, BddManager &Mgr, Layout L)
    : Sys(Sys), Mgr(Mgr), L(std::move(L)) {}

void Evaluator::bindInput(RelId Rel, Bdd Value) {
  assert(Sys.relation(Rel).isInput() && "binding a defined relation");
  Inputs[Rel] = std::move(Value);
  StaticCache.clear(); // Cached composites may mention this relation.
}

void Evaluator::invalidate() {
  Completed.clear();
  StaticCache.clear();
}

bool Evaluator::isStatic(const Formula &F) {
  auto It = StaticKind.find(&F);
  if (It != StaticKind.end())
    return It->second;
  bool Static = true;
  switch (F.Kind) {
  case FormulaKind::RelApp:
    Static = Sys.relation(F.Rel).isInput();
    break;
  case FormulaKind::Not:
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const Formula *Child : F.Children)
      Static = Static && isStatic(*Child);
    break;
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    Static = isStatic(*F.Body);
    break;
  default:
    break;
  }
  StaticKind.emplace(&F, Static);
  return Static;
}

Bdd Evaluator::bitVar(VarId V, unsigned Bit) {
  const std::vector<unsigned> &Bits = L.bits(V);
  assert(Bit < Bits.size() && "bit index out of range");
  return Mgr.var(Bits[Bit]);
}

Bdd Evaluator::encodeEqConst(VarId V, uint64_t Value) {
  const std::vector<unsigned> &Bits = L.bits(V);
  assert(Value < Sys.domain(Sys.var(V).Dom).Size && "constant out of domain");
  Bdd Result = Mgr.one();
  for (unsigned B = 0; B < Bits.size(); ++B)
    Result &= ((Value >> B) & 1) ? Mgr.var(Bits[B]) : Mgr.nvar(Bits[B]);
  return Result;
}

Bdd Evaluator::encodeEqVar(VarId A, VarId B) {
  assert(Sys.var(A).Dom == Sys.var(B).Dom &&
         "equality between different domains");
  const std::vector<unsigned> &ABits = L.bits(A);
  const std::vector<unsigned> &BBits = L.bits(B);
  Bdd Result = Mgr.one();
  // Conjoin from the highest bit so the result grows bottom-up in the
  // (typically interleaved) order.
  for (size_t I = ABits.size(); I-- > 0;)
    Result &= Mgr.var(ABits[I]).iff(Mgr.var(BBits[I]));
  return Result;
}

Bdd Evaluator::domainConstraint(VarId V) {
  const Domain &D = Sys.domain(Sys.var(V).Dom);
  uint64_t Capacity = uint64_t(1) << L.bits(V).size();
  if (D.Size == Capacity)
    return Mgr.one();
  // V < Size: disjunction over valid values would be linear in Size; use a
  // bitwise comparison against Size-1 instead (V <= Size-1).
  uint64_t Max = D.Size - 1;
  const std::vector<unsigned> &Bits = L.bits(V);
  // lessEq built from msb down: acc(i) = (v_i < m_i) | (v_i == m_i) & acc.
  Bdd Acc = Mgr.one();
  for (size_t I = 0; I < Bits.size(); ++I) {
    bool MaxBit = (Max >> I) & 1;
    Bdd Vi = Mgr.var(Bits[I]);
    if (MaxBit)
      Acc = (!Vi) | Acc;
    else
      Acc = (!Vi) & Acc;
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// Evaluator: core
//===----------------------------------------------------------------------===//

bool Evaluator::dependsOnInFlight(RelId Rel) const {
  for (const auto &[InFlightRel, Value] : InFlight) {
    (void)Value;
    if (Rel == InFlightRel || Sys.dependsOn(Rel, InFlightRel))
      return true;
  }
  return false;
}

Bdd Evaluator::relValue(RelId Rel) {
  auto FlightIt = InFlight.find(Rel);
  if (FlightIt != InFlight.end())
    return FlightIt->second;

  const Relation &R = Sys.relation(Rel);
  if (R.isInput()) {
    auto It = Inputs.find(Rel);
    assert(It != Inputs.end() && "input relation not bound");
    return It->second;
  }

  // Defined relation used from another definition: per the algorithmic
  // semantics it is re-solved under the current in-flight interpretations.
  // Relations that cannot see any in-flight relation are memoized.
  bool Volatile = dependsOnInFlight(Rel);
  if (!Volatile) {
    auto It = Completed.find(Rel);
    if (It != Completed.end())
      return It->second;
  }
  Bdd Value = evalFixpoint(Rel, nullptr, nullptr, nullptr);
  if (!Volatile)
    Completed[Rel] = Value;
  return Value;
}

Bdd Evaluator::applyArgs(RelId Rel, const std::vector<Term> &Args,
                         Bdd Value) {
  const Relation &R = Sys.relation(Rel);
  assert(Args.size() == R.Formals.size() && "arity mismatch");

  // Constants first: cofactor the formal's bits.
  for (size_t I = 0; I < Args.size(); ++I) {
    if (!Args[I].IsConst)
      continue;
    const std::vector<unsigned> &Bits = L.bits(R.Formals[I]);
    for (unsigned B = 0; B < Bits.size(); ++B)
      Value = Value.restrict(Bits[B], (Args[I].Value >> B) & 1);
  }

  // Then rename formal bits to argument bits (a simultaneous substitution;
  // repeated argument variables like R(u, u) are handled by the rename op).
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I].IsConst)
      continue;
    const std::vector<unsigned> &From = L.bits(R.Formals[I]);
    const std::vector<unsigned> &To = L.bits(Args[I].Variable);
    assert(From.size() == To.size() && "domain width mismatch");
    for (size_t B = 0; B < From.size(); ++B)
      if (From[B] != To[B])
        Pairs.emplace_back(From[B], To[B]);
  }
  if (Pairs.empty())
    return Value;
  return Value.permute(Mgr.makePermutation(Pairs));
}

BddCube Evaluator::cubeFor(const std::vector<VarId> &Bound) {
  std::vector<unsigned> Vars;
  for (VarId V : Bound)
    for (unsigned Bit : L.bits(V))
      Vars.push_back(Bit);
  return Mgr.makeCube(Vars);
}

Bdd Evaluator::evalFormula(const Formula &F) {
  // Composite input-only subtrees are constant; compute them once. Leaves
  // are cheap enough to rebuild (and hit the unique table anyway).
  bool Composite = F.Kind == FormulaKind::Not || F.Kind == FormulaKind::And ||
                   F.Kind == FormulaKind::Or ||
                   F.Kind == FormulaKind::Exists ||
                   F.Kind == FormulaKind::Forall;
  if (Composite && isStatic(F)) {
    auto It = StaticCache.find(&F);
    if (It != StaticCache.end())
      return It->second;
    Bdd Value = evalFormulaUncached(F);
    StaticCache.emplace(&F, Value);
    return Value;
  }
  return evalFormulaUncached(F);
}

Bdd Evaluator::evalFormulaUncached(const Formula &F) {
  switch (F.Kind) {
  case FormulaKind::Const:
    return F.ConstValue ? Mgr.one() : Mgr.zero();
  case FormulaKind::RelApp:
    return applyArgs(F.Rel, F.Args, relValue(F.Rel));
  case FormulaKind::EqVar:
    return encodeEqVar(F.Lhs, F.Rhs);
  case FormulaKind::EqConst:
    return encodeEqConst(F.Lhs, F.Value);
  case FormulaKind::Not:
    return !evalFormula(*F.Children[0]);
  case FormulaKind::And: {
    // Left-to-right: formula authors control conjunction scheduling, which
    // is the point of the Section-4.2 clause-splitting rewrite.
    Bdd Result = evalFormula(*F.Children[0]);
    for (size_t I = 1; I < F.Children.size(); ++I) {
      if (Result.isZero())
        return Result;
      Result &= evalFormula(*F.Children[I]);
    }
    return Result;
  }
  case FormulaKind::Or: {
    Bdd Result = evalFormula(*F.Children[0]);
    for (size_t I = 1; I < F.Children.size(); ++I) {
      if (Result.isOne())
        return Result;
      Result |= evalFormula(*F.Children[I]);
    }
    return Result;
  }
  case FormulaKind::Exists: {
    BddCube Cube = cubeFor(F.Bound);
    const Formula &Body = *F.Body;
    if (Body.Kind == FormulaKind::And && Body.Children.size() >= 2) {
      // Relational-product scheduling: conjoin all but the last child,
      // then fuse the last conjunction with the quantification.
      Bdd Acc = evalFormula(*Body.Children[0]);
      for (size_t I = 1; I + 1 < Body.Children.size(); ++I) {
        if (Acc.isZero())
          return Acc;
        Acc &= evalFormula(*Body.Children[I]);
      }
      if (Acc.isZero())
        return Acc;
      return Acc.andExists(evalFormula(*Body.Children.back()), Cube);
    }
    return evalFormula(Body).exists(Cube);
  }
  case FormulaKind::Forall:
    return evalFormula(*F.Body).forall(cubeFor(F.Bound));
  }
  assert(false && "unhandled formula kind");
  return Mgr.zero();
}

Bdd Evaluator::evalFixpoint(RelId Rel, const EvalOptions *Opts,
                            bool *HitLimit, bool *Stopped) {
  const Relation &R = Sys.relation(Rel);
  assert(R.Def && "evaluating an undefined relation");
  assert(!InFlight.count(Rel) && "relation already being solved");

  RelStats &RS = Stats[R.Name];
  ++RS.Evaluations;

  // Least fixed-points start from the empty relation; greatest fixed-points
  // from the top element, which is the set of *domain-valid* tuples (bits
  // encoding values >= the domain size are excluded so they can never leak
  // into a result).
  Bdd S = Mgr.zero();
  if (R.IsNu) {
    S = Mgr.one();
    for (VarId Formal : R.Formals)
      S &= domainConstraint(Formal);
  }
  uint64_t Iter = 0;
  while (true) {
    InFlight[Rel] = S;
    Bdd Next = evalFormula(*R.Def);
    InFlight.erase(Rel);
    ++Iter;
    ++RS.Iterations;
    if (Next == S)
      break;
    S = std::move(Next);
    if (Opts && Opts->Rings)
      Opts->Rings->push_back(S);
    if (Opts && Opts->EarlyStop && !(S & *Opts->EarlyStop).isZero()) {
      if (Stopped)
        *Stopped = true;
      break;
    }
    if (Opts && Opts->MaxIterations != 0 && Iter >= Opts->MaxIterations) {
      if (HitLimit)
        *HitLimit = true;
      break;
    }
  }
  RS.FinalNodes = S.nodeCount();
  return S;
}

EvalResult Evaluator::evaluate(RelId Rel, const EvalOptions &Opts) {
  EvalResult Result;
  Result.Value =
      evalFixpoint(Rel, &Opts, &Result.HitIterationLimit,
                   &Result.EarlyStopped);
  // A complete top-level solve is a valid memo for later nested uses.
  if (InFlight.empty() && !Result.HitIterationLimit && !Result.EarlyStopped)
    Completed[Rel] = Result.Value;
  return Result;
}
