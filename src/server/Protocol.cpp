//===- Protocol.cpp - getafixd line-oriented JSON protocol ----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace getafix {
namespace server {

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void escapeTo(const std::string &S, std::string &Out) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

void numberTo(double V, std::string &Out) {
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 9e15) {
    char B[32];
    std::snprintf(B, sizeof(B), "%lld", static_cast<long long>(V));
    Out += B;
    return;
  }
  char B[64];
  std::snprintf(B, sizeof(B), "%.6f", std::isfinite(V) ? V : 0.0);
  Out += B;
}

void dumpTo(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += J.asBool() ? "true" : "false";
    break;
  case Json::Kind::Number:
    numberTo(J.asNumber(), Out);
    break;
  case Json::Kind::String:
    escapeTo(J.asString(), Out);
    break;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &E : J.items()) {
      if (!First)
        Out += ',';
      First = false;
      dumpTo(E, Out);
    }
    Out += ']';
    break;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &F : J.fields()) {
      if (!First)
        Out += ',';
      First = false;
      escapeTo(F.first, Out);
      Out += ':';
      dumpTo(F.second, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

const Json *Json::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &F : Fields)
    if (F.first == Key)
      return &F.second;
  return nullptr;
}

std::string Json::dump() const {
  std::string Out;
  dumpTo(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over a complete request line. Depth-capped:
/// protocol values are flat, and the cap keeps a hostile deeply-nested
/// line from overflowing the stack.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : S(Text), Error(Error) {}

  bool run(Json &Out) {
    skipWs();
    if (!value(Out, 0))
      return false;
    skipWs();
    if (P != S.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 32;

  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(P);
    return false;
  }

  void skipWs() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\t' || S[P] == '\n' ||
                            S[P] == '\r'))
      ++P;
  }

  bool literal(const char *Lit) {
    size_t N = 0;
    while (Lit[N])
      ++N;
    if (S.compare(P, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    P += N;
    return true;
  }

  bool value(Json &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (P >= S.size())
      return fail("unexpected end of input");
    switch (S[P]) {
    case '{':
      return object(Out, Depth);
    case '[':
      return array(Out, Depth);
    case '"': {
      std::string V;
      if (!string(V))
        return false;
      Out = Json::str(std::move(V));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Json::boolean(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = Json::null();
      return true;
    default:
      return number(Out);
    }
  }

  bool object(Json &Out, int Depth) {
    ++P; // '{'
    Out = Json::object();
    skipWs();
    if (P < S.size() && S[P] == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (P >= S.size() || S[P] != '"')
        return fail("expected object key");
      if (!string(Key))
        return false;
      skipWs();
      if (P >= S.size() || S[P] != ':')
        return fail("expected ':'");
      ++P;
      skipWs();
      Json V;
      if (!value(V, Depth + 1))
        return false;
      Out.set(Key, std::move(V));
      skipWs();
      if (P >= S.size())
        return fail("unterminated object");
      if (S[P] == ',') {
        ++P;
        continue;
      }
      if (S[P] == '}') {
        ++P;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Json &Out, int Depth) {
    ++P; // '['
    Out = Json::array();
    skipWs();
    if (P < S.size() && S[P] == ']') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      Json V;
      if (!value(V, Depth + 1))
        return false;
      Out.add(std::move(V));
      skipWs();
      if (P >= S.size())
        return fail("unterminated array");
      if (S[P] == ',') {
        ++P;
        continue;
      }
      if (S[P] == ']') {
        ++P;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool hex4(unsigned &Out) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (P >= S.size())
        return fail("truncated \\u escape");
      char C = S[P++];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        D = static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("bad \\u escape digit");
      Out = Out * 16 + D;
    }
    return true;
  }

  void appendUtf8(unsigned Cp, std::string &Out) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool string(std::string &Out) {
    ++P; // '"'
    Out.clear();
    while (P < S.size()) {
      char C = S[P];
      if (C == '"') {
        ++P;
        return true;
      }
      if (C == '\\') {
        ++P;
        if (P >= S.size())
          return fail("truncated escape");
        char E = S[P++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          unsigned Cp;
          if (!hex4(Cp))
            return false;
          appendUtf8(Cp, Out);
          break;
        }
        default:
          return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      Out += C;
      ++P;
    }
    return fail("unterminated string");
  }

  bool number(Json &Out) {
    size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
      ++P;
    if (P < S.size() && S[P] == '.') {
      ++P;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
    }
    if (P < S.size() && (S[P] == 'e' || S[P] == 'E')) {
      ++P;
      if (P < S.size() && (S[P] == '+' || S[P] == '-'))
        ++P;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
    }
    if (P == Start || (P == Start + 1 && S[Start] == '-'))
      return fail("bad number");
    char *End = nullptr;
    std::string Tok = S.substr(Start, P - Start);
    double V = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail("bad number");
    Out = Json::number(V);
    return true;
  }

  const std::string &S;
  std::string &Error;
  size_t P = 0;
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string &Error) {
  return Parser(Text, Error).run(Out);
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

namespace {

bool getString(const Json &Obj, const char *Key, std::string &Out,
               std::string &Error) {
  const Json *V = Obj.find(Key);
  if (!V)
    return true; // Optional; leave Out unchanged.
  if (!V->isString()) {
    Error = std::string("field '") + Key + "' must be a string";
    return false;
  }
  Out = V->asString();
  return true;
}

bool getCount(const Json &Obj, const char *Key, uint64_t &Out,
              std::string &Error) {
  const Json *V = Obj.find(Key);
  if (!V)
    return true; // Optional; leave Out unchanged.
  if (!V->isNumber() || V->asNumber() < 0 ||
      V->asNumber() != std::floor(V->asNumber())) {
    Error = std::string("field '") + Key + "' must be a non-negative integer";
    return false;
  }
  Out = static_cast<uint64_t>(V->asNumber());
  return true;
}

} // namespace

bool parseRequest(const std::string &Line, Request &Out, std::string &Error) {
  Json J;
  if (!Json::parse(Line, J, Error)) {
    Error = "malformed JSON: " + Error;
    return false;
  }
  if (!J.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  const Json *OpV = J.find("op");
  if (!OpV || !OpV->isString()) {
    Error = "missing string field 'op'";
    return false;
  }
  const std::string &Op = OpV->asString();
  if (Op == "solve")
    Out.Op = Verb::Solve;
  else if (Op == "stats")
    Out.Op = Verb::Stats;
  else if (Op == "evict")
    Out.Op = Verb::Evict;
  else if (Op == "shutdown")
    Out.Op = Verb::Shutdown;
  else if (Op == "ping")
    Out.Op = Verb::Ping;
  else {
    Error = "unknown op '" + Op + "'";
    return false;
  }

  if (!getString(J, "program", Out.Program, Error) ||
      !getString(J, "source", Out.Source, Error) ||
      !getString(J, "engine", Out.Engine, Error))
    return false;

  if (!getCount(J, "timeout_ms", Out.TimeoutMs, Error) ||
      !getCount(J, "node_budget", Out.NodeBudget, Error))
    return false;

  if (const Json *W = J.find("witness")) {
    if (!W->isBool()) {
      Error = "field 'witness' must be a boolean";
      return false;
    }
    Out.Witness = W->asBool();
  }

  if (const Json *T = J.find("targets")) {
    if (!T->isArray()) {
      Error = "field 'targets' must be an array of strings";
      return false;
    }
    for (const Json &E : T->items()) {
      if (!E.isString()) {
        Error = "field 'targets' must be an array of strings";
        return false;
      }
      Out.Targets.push_back(E.asString());
    }
  }

  if (Out.Op == Verb::Solve) {
    if (Out.Program.empty() && Out.Source.empty()) {
      Error = "solve needs 'program' (path) or 'source' (inline text)";
      return false;
    }
    if (!Out.Program.empty() && !Out.Source.empty()) {
      Error = "solve takes 'program' or 'source', not both";
      return false;
    }
    if (Out.Targets.empty()) {
      Error = "solve needs a non-empty 'targets' array";
      return false;
    }
  }
  return true;
}

Json errorResponse(const std::string &Message) {
  return Json::object()
      .set("ok", Json::boolean(false))
      .set("error", Json::str(Message));
}

} // namespace server
} // namespace getafix
