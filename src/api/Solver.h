//===- Solver.h - Unified reachability-solver facade ------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one entry point the paper's thesis calls for: every reachability
/// algorithm in this repository — the four fixed-point formulations of
/// Sections 4.1–4.3, the two natively-coded baselines, the Section-5
/// bounded context-switching engine, and the Lal–Reps eager
/// sequentialization — answers the same `Query` through `Solver::solve`.
///
///   - `Query`        — the program (source text or a pre-built
///     `bp::ProgramCfg` / `bp::ConcurrentProgram`), the target (a label or
///     an explicit (thread, proc, pc) point), and an optional witness
///     request.
///   - `SolverOptions` — engine name plus the union of all engine knobs
///     (BDD cache/GC, early stop, context bound, round-robin/rounds).
///   - `SolveResult`  — status + the union of every engine's statistics,
///     plus the witness trace when one was requested and extracted.
///   - `Engine`       — the pluggable backend interface; implementations
///     self-register into the `EngineRegistry` keyed by name, which is also
///     where CLI `--algo` help and `--list-algos` come from.
///
/// Clients never translate between per-module Options/Result structs or
/// hand-roll string→algorithm dispatch; that lives here, once.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_API_SOLVER_H
#define GETAFIX_API_SOLVER_H

#include "bdd/Bdd.h"
#include "bp/Ast.h"
#include "bp/Cfg.h"
#include "fpcalc/Calculus.h"
#include "reach/Witness.h"
#include "support/ResourceGovernor.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace api {

//===----------------------------------------------------------------------===//
// Query
//===----------------------------------------------------------------------===//

/// One reachability question: a program, a target, and whether a
/// counterexample trace is wanted. Build with the named constructors and
/// chain the target/witness setters:
///
///   auto R = Solver::solve(Query::fromSource(Text).target("ERR"), Opts);
///
/// Pre-built-program queries borrow the CFG/program; the caller keeps it
/// alive for the duration of the solve.
struct Query {
  /// Program source; parsed (and auto-detected as sequential or concurrent)
  /// when no pre-built program is given.
  std::string Source;
  /// Pre-built sequential program.
  const bp::ProgramCfg *Cfg = nullptr;
  /// Pre-built concurrent program, with optional pre-built per-thread CFGs
  /// (built on demand otherwise).
  const bp::ConcurrentProgram *Conc = nullptr;
  const std::vector<bp::ProgramCfg> *ThreadCfgs = nullptr;

  /// Target label (ignored when `UsePoint`).
  std::string Label = "ERR";
  /// Explicit target point; `Thread` is meaningful for concurrent queries.
  bool UsePoint = false;
  unsigned Thread = 0;
  unsigned ProcId = 0;
  unsigned Pc = 0;

  /// Request a counterexample trace (engines that cannot extract one leave
  /// `SolveResult::Witness` empty and `HasWitness` false).
  bool WantWitness = false;

  static Query fromSource(std::string Text) {
    Query Q;
    Q.Source = std::move(Text);
    return Q;
  }
  static Query fromCfg(const bp::ProgramCfg &Cfg) {
    Query Q;
    Q.Cfg = &Cfg;
    return Q;
  }
  static Query
  fromConcurrent(const bp::ConcurrentProgram &Conc,
                 const std::vector<bp::ProgramCfg> *ThreadCfgs = nullptr) {
    Query Q;
    Q.Conc = &Conc;
    Q.ThreadCfgs = ThreadCfgs;
    return Q;
  }

  Query &target(std::string TargetLabel) {
    Label = std::move(TargetLabel);
    UsePoint = false;
    return *this;
  }
  Query &targetPoint(unsigned TargetProcId, unsigned TargetPc,
                     unsigned TargetThread = 0) {
    UsePoint = true;
    ProcId = TargetProcId;
    Pc = TargetPc;
    Thread = TargetThread;
    return *this;
  }
  Query &witness(bool Want = true) {
    WantWitness = Want;
    return *this;
  }
};

//===----------------------------------------------------------------------===//
// Options and result
//===----------------------------------------------------------------------===//

/// The union of every engine's knobs. Engines read what applies to them and
/// ignore the rest, so one options struct configures any engine.
struct SolverOptions {
  /// Registry key of the engine to run. Empty selects the default for the
  /// query kind: `ef-opt` for sequential programs, `conc` for concurrent.
  std::string Engine;

  // Shared symbolic-solver knobs.
  /// Fixed-point iteration scheme of the calculus evaluator. Semi-naive
  /// (the default) joins only each round's frontier through distributive
  /// clauses; `Naive` is the paper's literal re-evaluate-everything
  /// semantics. Verdicts, iteration counts, and witnesses are identical;
  /// the knob exists for ablation and debugging.
  fpc::EvalStrategy Strategy = fpc::EvalStrategy::SemiNaive;
  bool EarlyStop = true;          ///< Stop as soon as the target is hit.
  /// Cap on fixpoint rounds of the main relation; 0 = unlimited. When the
  /// cap fires the result carries `HitIterationLimit` and the verdict only
  /// reflects the states discovered so far.
  uint64_t MaxIterations = 0;
  unsigned CacheBits = 18;        ///< BDD computed cache of 2^CacheBits.
  size_t GcThreshold = 1u << 22;  ///< BDD auto-GC threshold; 0 disables.
  /// Coudert–Madre care-set minimization of relational-product operands
  /// in the evaluator's narrow delta rounds: off, `constrain` (maximal
  /// simplification, the default), or `restrict` (never grows the
  /// operand's support). Bit-identical results under all three
  /// (`f ↓ c & c == f & c`); the knob exists for ablation.
  fpc::CofactorMode FrontierCofactor = fpc::CofactorMode::Constrain;
  /// `SolverSession` only: serve queries from state solved by earlier
  /// queries on the same session. Off = every session query pays a fresh
  /// solve (the differential-testing / ablation baseline). One-shot
  /// `Solver::solve` calls ignore this.
  bool SessionReuse = true;
  /// Sequential summary engines: compile the paper's single whole-program
  /// summary relation instead of the default per-procedure split (one
  /// `Summary_<proc>` / `ReachEntry_<proc>` pair per call-graph SCC).
  /// The split widens the equation system's dependency condensation to
  /// the call graph's SCC count, so `Threads > 1` schedules independent
  /// procedures in parallel; verdicts, witnesses, and per-query answers
  /// are bit-identical either way (round accounting differs — see
  /// `SolveResult::CondensationWidth`). Escape hatch for A/B comparison;
  /// non-summary engines (moped, bebop, conc) ignore it.
  bool MonolithicSummary = false;
  /// Worker threads for the fixed-point evaluator's parallel SCC
  /// scheduling (1 = sequential). Independent SCCs of the equation
  /// system's dependency condensation are solved on a work-stealing pool
  /// over per-worker BDD managers; verdicts, iteration counts, and
  /// witnesses are bit-identical at any setting (enforced by the parallel
  /// differential tests). Non-BDD engines (moped, bebop) ignore it.
  /// `Threads > 1` also enables intra-SCC parallelism: heavy semi-naive
  /// rounds fan their distributive disjunct products out over the same
  /// pool (see `DisjunctParallelThreshold`).
  unsigned Threads = 1;
  /// Cost gate of the intra-SCC disjunct parallelism: a semi-naive round
  /// runs its distributive products on the worker pool only when the
  /// previous round allocated at least this many BDD nodes, so light
  /// rounds never pay cross-manager import overhead. 0 = auto (the
  /// evaluator's `cacheSlots()/2` valve, the same scale the wide/narrow
  /// frontier policy keys on). Purely a performance knob — results are
  /// bit-identical at any value.
  uint64_t DisjunctParallelThreshold = 0;
  /// Session ring retention (BDD engines; see fpc::RingLog): fixpoint
  /// rounds recorded for replay and witness extraction are stored as
  /// exact deltas with a full keyframe every this many rounds, bounding
  /// the memory a long-lived session retains. 1 keeps every round full
  /// (the pre-diet baseline); 0 keeps only the first round full. Purely a
  /// memory knob — verdicts, rounds, and witnesses are bit-identical at
  /// any value.
  uint64_t RingKeyframeInterval = 8;

  // Concurrent knobs.
  unsigned ContextBound = 2; ///< Max context switches k.
  /// When nonzero: analyze this many round-robin rounds (implies
  /// `RoundRobin` and overrides `ContextBound`).
  unsigned Rounds = 0;
  bool RoundRobin = false; ///< Restrict schedules to round-robin order.

  // Resource governance (see support/ResourceGovernor.h). When any of
  // these is set, the solve runs under a governor and a tripped limit is
  // reported as SolveStatus::HitDeadline / HitNodeBudget / Cancelled —
  // stopped at a completed round boundary, so a session retry with a
  // larger (or no) budget resumes the deterministic round chain and stays
  // bit-identical to an uninterrupted solve.
  /// Wall-clock deadline for one solve, in milliseconds; 0 = none.
  uint64_t TimeoutMs = 0;
  /// Cap on BDD nodes allocated during one solve (shared across the main
  /// and worker managers); 0 = unlimited. Enumerative engines (bebop)
  /// allocate no BDD nodes, so only the deadline/cancel limits apply.
  uint64_t NodeBudget = 0;
  /// External cooperative-cancellation flag (not owned; may be set from
  /// any thread). Null = none.
  const std::atomic<bool> *CancelFlag = nullptr;
  /// Caller-provided governor (not owned; one-shot — fresh per attempt).
  /// When set, the limits above are installed on *this* governor so the
  /// caller can also cancel() it directly; otherwise a governor is
  /// created internally per solve when any limit is set.
  support::ResourceGovernor *Governor = nullptr;

  /// True when any governance knob is active.
  bool governed() const {
    return TimeoutMs != 0 || NodeBudget != 0 || CancelFlag != nullptr ||
           Governor != nullptr;
  }
};

enum class SolveStatus {
  Ok,             ///< The engine answered the query.
  ParseError,     ///< The program source failed to parse/analyze.
  UnknownEngine,  ///< No registered engine has the requested name.
  TargetNotFound, ///< The target label does not exist in the program.
  BadQuery,       ///< Query/engine mismatch (see `Error`).
  // Resource-limit terminal statuses (`ok()` false; no verdict). The
  // solve stopped at a completed round boundary, so a session retry with
  // a larger budget resumes bit-identically.
  HitDeadline,    ///< `SolverOptions::TimeoutMs` expired.
  HitNodeBudget,  ///< `SolverOptions::NodeBudget` exhausted.
  Cancelled,      ///< The cancel flag (or `ResourceGovernor::cancel`) fired.
};

/// Maps a tripped governor limit to its terminal status;
/// `ResourceLimit::None` maps to `Ok`.
inline SolveStatus statusForLimit(support::ResourceLimit L) {
  switch (L) {
  case support::ResourceLimit::None:
    return SolveStatus::Ok;
  case support::ResourceLimit::Deadline:
    return SolveStatus::HitDeadline;
  case support::ResourceLimit::NodeBudget:
    return SolveStatus::HitNodeBudget;
  case support::ResourceLimit::Cancelled:
    return SolveStatus::Cancelled;
  }
  return SolveStatus::Ok;
}

/// True for the three resource-limit terminal statuses.
inline bool isResourceLimit(SolveStatus S) {
  return S == SolveStatus::HitDeadline || S == SolveStatus::HitNodeBudget ||
         S == SolveStatus::Cancelled;
}

/// The union of every engine's statistics; fields an engine does not
/// produce keep their zero defaults.
struct SolveResult {
  SolveStatus Status = SolveStatus::Ok;
  std::string Error; ///< Human-readable detail when `Status != Ok`.

  bool Reachable = false;
  /// The solver stopped at `SolverOptions::MaxIterations` before reaching
  /// a fixed point: `Reachable` is then only a lower bound (states found
  /// so far), not a verdict.
  bool HitIterationLimit = false;
  uint64_t Iterations = 0;  ///< Fixpoint rounds / worklist steps.
  uint64_t DeltaRounds = 0; ///< Rounds the main relation ran in delta mode.
  size_t SummaryNodes = 0;  ///< Final BDD size of the main relation.
  size_t PeakLiveNodes = 0; ///< Peak BDD nodes (0 for non-BDD engines).
  uint64_t BddNodesCreated = 0; ///< Total BDD nodes allocated.
  uint64_t BddCacheLookups = 0; ///< BDD computed-cache probes.
  uint64_t BddCacheHits = 0;    ///< BDD computed-cache hits.
  /// Full BDD-manager counter snapshot: the computed-cache probes/hits
  /// split per operation (`BddOp` indexed), GC runs and reclaim totals,
  /// and peak live nodes. Zero-initialized for non-BDD engines.
  BddStats Bdd;
  double ReachStates = 0.0; ///< Concurrent: sat-count of Reach (Figure 3).
  /// Per-relation evaluator statistics (fixed-point engines only), keyed
  /// by relation name — iterations, delta rounds, nested evaluations,
  /// final BDD sizes.
  std::map<std::string, fpc::RelStats> Relations;
  /// Lal–Reps: globals in the sequentialized program (the O(k) copy blowup
  /// the paper's formulation avoids).
  size_t TransformedGlobals = 0;
  /// Narrow-round generalized-cofactor counters (the restrict-vs-constrain
  /// A/B): applications and summed operand support sizes before/after.
  fpc::CofactorStats Cofactor;
  /// Session mode: fixpoint rounds of this query served from state solved
  /// by earlier queries on the same session, vs rounds newly evaluated.
  /// One-shot solves report (0, Iterations) for fixed-point engines.
  uint64_t SummariesReused = 0;
  uint64_t SummariesRecomputed = 0;
  /// Dependency SCCs solved on the evaluator's worker pool
  /// (`SolverOptions::Threads > 1` only); the per-worker BDD counters are
  /// folded into `Bdd`.
  uint64_t SccsSolvedParallel = 0;
  /// Width of the equation system's dependency condensation — the number
  /// of SCCs `fpc::runDag`'s scheduler can in principle overlap. Equals
  /// the call graph's SCC count under the per-procedure summary split and
  /// the (narrow, 1–4) defined-relation SCC count under
  /// `SolverOptions::MonolithicSummary`. 0 for non-fixed-point engines.
  unsigned CondensationWidth = 0;
  /// Number of summary relations the engine compiled: the call graph's
  /// SCC count under the split, 1 monolithic, 0 for engines with no
  /// summary relation.
  unsigned SummaryRelations = 0;
  /// Intra-SCC parallelism (`Threads > 1` only): semi-naive rounds whose
  /// distributive disjunct products ran on the worker pool, the products
  /// dispatched across all such rounds, and the BDD nodes the cached
  /// importers translated across manager boundaries (the import overhead
  /// the `DisjunctParallelThreshold` cost gate bounds).
  uint64_t RoundsParallel = 0;
  uint64_t DisjunctsParallel = 0;
  uint64_t ImportedNodes = 0;
  double Seconds = 0.0; ///< Wall-clock solve time (excludes parsing).

  /// Witness trace, when requested and the engine supports extraction.
  bool HasWitness = false;
  std::vector<reach::WitnessStep> Witness;
  std::string WitnessText; ///< `reach::formatWitness` rendering.

  bool ok() const { return Status == SolveStatus::Ok; }

  /// BDD computed-cache hit rate in [0, 1]; 0 when nothing was probed.
  double bddCacheHitRate() const {
    return BddCacheLookups != 0
               ? double(BddCacheHits) / double(BddCacheLookups)
               : 0.0;
  }
};

//===----------------------------------------------------------------------===//
// Compiled queries
//===----------------------------------------------------------------------===//

/// A `Query` resolved against a concrete program: source parsed, CFGs
/// built, the target located. This is what engines consume; building it
/// once here is what deletes the per-caller parse/lookup boilerplate.
/// Not movable: engines hold pointers into the owned storage.
class CompiledQuery {
public:
  CompiledQuery() = default;
  CompiledQuery(const CompiledQuery &) = delete;
  CompiledQuery &operator=(const CompiledQuery &) = delete;

  bool isConcurrent() const { return Conc != nullptr; }
  const bp::ProgramCfg &cfg() const { return *Cfg; }
  const bp::ConcurrentProgram &concurrent() const { return *Conc; }
  const std::vector<bp::ProgramCfg> &threadCfgs() const { return *ThreadCfgs; }

  unsigned thread() const { return Thread; }
  unsigned procId() const { return ProcId; }
  unsigned pc() const { return Pc; }
  /// The queried label; empty for point queries on unlabelled points.
  const std::string &label() const { return Label; }
  bool wantWitness() const { return WantWitness; }

private:
  friend class Solver;

  // Borrowed views (into owned storage below, or the caller's objects).
  const bp::ProgramCfg *Cfg = nullptr;
  const bp::ConcurrentProgram *Conc = nullptr;
  const std::vector<bp::ProgramCfg> *ThreadCfgs = nullptr;

  // Owned storage for source-text queries / on-demand thread CFGs.
  std::unique_ptr<bp::Program> OwnedProg;
  std::unique_ptr<bp::ConcurrentProgram> OwnedConc;
  std::unique_ptr<bp::ProgramCfg> OwnedCfg;
  std::vector<bp::ProgramCfg> OwnedThreadCfgs;

  unsigned Thread = 0;
  unsigned ProcId = 0;
  unsigned Pc = 0;
  std::string Label;
  bool WantWitness = false;
};

//===----------------------------------------------------------------------===//
// Engines
//===----------------------------------------------------------------------===//

/// Persistent per-program solver state an engine holds across queries: the
/// compiled equation system, BDD manager, and the summary rounds solved so
/// far. Obtained from `Engine::open`; consumed by `SolverSession`. Every
/// `solve` must produce results bit-identical to a fresh `Engine::run` of
/// the same query — reuse is a pure performance property, enforced by the
/// session differential tests.
class EngineSession {
public:
  virtual ~EngineSession() = default;

  /// Solves one query against the session's program (the target fields of
  /// \p Q are resolved against that program by the caller).
  virtual SolveResult solve(const CompiledQuery &Q) = 0;

  /// Would `solve` answer \p Q entirely from already-solved state, without
  /// evaluating new fixpoint rounds? Batch drivers (`solveAll`) serve such
  /// queries first. Non-const: probing may encode the target over the
  /// session's BDD manager. Conservative default: unknown, treated as no.
  virtual bool answersFromState(const CompiledQuery &Q) {
    (void)Q;
    return false;
  }

  /// Installs (or clears, with null) a per-attempt resource governor on
  /// the session's solving state; the next `solve` runs under it and, on
  /// a tripped limit, stops at a completed round boundary leaving the
  /// session valid for a bit-identical retry. Default: engines without
  /// governor support ignore it (their options-level limits still apply
  /// on fresh solves).
  virtual void setGovernor(support::ResourceGovernor *G) { (void)G; }

  /// Drops BDD computed caches (a memory valve for long-lived sessions);
  /// solved state is kept and later queries stay bit-identical.
  virtual void clearComputedCache() {}

  /// Live BDD nodes currently held by the session's managers, and the
  /// lifetime peak of that count. 0 for engines without persistent BDD
  /// state.
  virtual size_t liveNodes() const { return 0; }
  virtual size_t peakLiveNodes() const { return 0; }

  /// Cheap estimate (bytes) of the session's resident solver state: live
  /// nodes times their storage share plus the computed caches, with a
  /// cleared-and-untouched cache discounted. This is the signal a
  /// memory-budgeted session pool evicts on — an estimate, not RSS.
  virtual size_t memoryFootprint() const { return 0; }
};

/// A pluggable reachability backend. Implementations translate
/// `SolverOptions` to their native knobs, solve the compiled query, and map
/// their native results into `SolveResult`. Register instances with
/// `RegisterEngine` (the built-in eight live in Engines.cpp).
class Engine {
public:
  virtual ~Engine() = default;

  /// Registry key (`--algo` value), e.g. "ef-split".
  virtual const char *name() const = 0;
  /// One-line description for `--list-algos`.
  virtual const char *description() const = 0;
  /// Whether this engine answers concurrent (vs sequential) queries.
  virtual bool handlesConcurrent() const = 0;
  /// Whether this engine can extract a counterexample trace.
  virtual bool supportsWitness() const { return false; }

  /// Solves \p Q. The query kind is pre-checked against
  /// `handlesConcurrent()` by the dispatcher.
  virtual SolveResult run(const CompiledQuery &Q,
                          const SolverOptions &Opts) const = 0;

  /// Opens persistent solver state over \p Program (whose target fields
  /// are ignored) for cross-query reuse. Engines without a session mode
  /// return null — `SolverSession` then falls back to a fresh `run` per
  /// query, so every registry engine works in session mode either way.
  virtual std::unique_ptr<EngineSession>
  open(const CompiledQuery &Program, const SolverOptions &Opts) const {
    (void)Program;
    (void)Opts;
    return nullptr;
  }

  /// The fixed-point equation system this engine would solve for \p Q
  /// under \p Opts (the paper's "one page of formulae" monolithically, the
  /// per-procedure split by default); empty for natively-coded engines.
  virtual std::string formulaText(const CompiledQuery &Q,
                                  const SolverOptions &Opts) const {
    (void)Q;
    (void)Opts;
    return "";
  }
};

/// Name-keyed engine registry. `instance()` registers the built-in engines
/// on first use, so they are available even when the api library is linked
/// statically and nothing else references Engines.cpp.
class EngineRegistry {
public:
  static EngineRegistry &instance();

  /// Takes ownership. A later registration under an existing name replaces
  /// the earlier engine (last one wins).
  void add(std::unique_ptr<Engine> E);
  /// Null when no engine has that name.
  const Engine *lookup(const std::string &Name) const;
  /// All engines, in registration order.
  std::vector<const Engine *> engines() const;

private:
  std::vector<std::unique_ptr<Engine>> Engines;
};

/// Static-object helper for self-registration:
///   static RegisterEngine X(std::make_unique<MyEngine>());
struct RegisterEngine {
  explicit RegisterEngine(std::unique_ptr<Engine> E) {
    EngineRegistry::instance().add(std::move(E));
  }
};

namespace detail {
/// Defined in Engines.cpp; called once by `EngineRegistry::instance()`.
void registerBuiltinEngines(EngineRegistry &R);
} // namespace detail

//===----------------------------------------------------------------------===//
// SolverSession
//===----------------------------------------------------------------------===//

/// A program opened for many queries: holds the compiled program plus the
/// selected engine's persistent solver state (compiled calculus, BDD
/// manager, solved summary rounds), so each `solve` reuses everything
/// earlier queries paid for. Obtained from `Solver::open`; check `ok()`
/// (a failed open reports its error from every subsequent `solve`).
///
/// The contract is bit-identical results: for any query and any query
/// order, `session.solve(Q)` returns the same verdict, iteration count,
/// and witness as a fresh `Solver::solve(Q, Opts)` — reuse shows up only
/// in wall-clock and in the `SummariesReused` statistics. Engines without
/// session support transparently fall back to fresh per-query solves.
///
/// Queries carry only the target (label or point) and the witness flag;
/// their program fields are ignored — the session's program is the one
/// answered against. Options are fixed at `open`.
class SolverSession {
public:
  ~SolverSession();
  SolverSession(const SolverSession &) = delete;
  SolverSession &operator=(const SolverSession &) = delete;

  bool ok() const { return Status == SolveStatus::Ok; }
  SolveStatus status() const { return Status; }
  const std::string &error() const { return Error; }
  const SolverOptions &options() const { return Opts; }
  /// The engine answering this session's queries.
  const Engine *engine() const { return Eng; }

  SolveResult solve(const Query &Q);

  /// Answers a batch, ordered to maximize reuse: duplicate targets are
  /// solved once and copied, and queries answerable entirely from
  /// already-solved state are served before queries that must extend it.
  /// Results come back in input order and are bit-identical to issuing
  /// the `solve` calls individually (in any order).
  std::vector<SolveResult> solveAll(const std::vector<Query> &Qs);

  /// Installs (or clears, with null) a per-request resource governor:
  /// subsequent `solve`/`solveAll` calls run under it until it is
  /// replaced or cleared. Governors are one-shot — install a fresh one
  /// per attempt. A tripped limit surfaces as a resource-limit status
  /// (HitDeadline / HitNodeBudget / Cancelled) with the session stopped
  /// at a completed round boundary, so a retry under a larger (or no)
  /// budget resumes the deterministic chain bit-identically. The caller
  /// owns the governor and must keep it alive across the governed calls.
  /// This is how a server applies per-request limits to pooled sessions
  /// whose options are fixed at `open`.
  void setResourceGovernor(support::ResourceGovernor *G);

  /// Drops the engine's BDD computed caches (a memory valve for
  /// long-lived sessions); solved state is kept and later queries stay
  /// bit-identical.
  void clearComputedCache();

  /// Session memory introspection (see `EngineSession`): live/peak BDD
  /// node counts and a bytes estimate of the resident solver state. All
  /// 0 for engines that fall back to fresh per-query solves (they hold
  /// no state) and before the engine state is first opened.
  size_t liveNodes() const;
  size_t peakLiveNodes() const;
  size_t memoryFootprint() const;

  /// The footprint estimate sampled at the end of the last query (or
  /// cache clear / footprint call) on this session, readable without
  /// touching the engine state. A memory-budgeted pool reads this for
  /// sessions currently *leased out* — their engine state may be mid-query
  /// on another thread, so calling `memoryFootprint()` would race, but the
  /// end-of-last-query sample is exactly the growth the pool would
  /// otherwise not see until the lease is released. 0 until a query runs.
  size_t lastSampledFootprint() const {
    return FootGauge.load(std::memory_order_relaxed);
  }

  /// Cross-query bookkeeping.
  struct SessionStats {
    uint64_t Queries = 0;       ///< Total queries answered.
    uint64_t SessionSolves = 0; ///< Served by persistent engine state.
    uint64_t FreshSolves = 0;   ///< Fell back to one-shot Engine::run.
    uint64_t DedupHits = 0;     ///< solveAll duplicates copied, not solved.
    uint64_t SummariesReused = 0;     ///< Sum over queries.
    uint64_t SummariesRecomputed = 0; ///< Sum over queries.
  };
  const SessionStats &stats() const { return Stats; }

private:
  friend class Solver;
  SolverSession() = default;

  /// The dispatch half of `solve`, for callers that already retargeted.
  SolveResult solveCompiled(const CompiledQuery &Q);
  SolveResult failResult() const;

  SolveStatus Status = SolveStatus::Ok;
  std::string Error;
  SolverOptions Opts;
  const Engine *Eng = nullptr;
  /// The session's program (target fields unresolved).
  std::unique_ptr<CompiledQuery> Program;
  /// The engine's persistent state; null for fresh-fallback engines.
  std::unique_ptr<EngineSession> Session;
  bool OpenAttempted = false;
  /// Per-request governor (not owned); forwarded to the engine session,
  /// including at lazy open, and to fresh-fallback solves.
  support::ResourceGovernor *Gov = nullptr;
  SessionStats Stats;
  /// Backs `lastSampledFootprint`; updated at the end of every query,
  /// cache clear, and `memoryFootprint` call.
  mutable std::atomic<size_t> FootGauge{0};
};

//===----------------------------------------------------------------------===//
// Solver
//===----------------------------------------------------------------------===//

/// The facade. Stateless apart from default options; all the work is
/// compile (parse + resolve target) then dispatch through the registry.
class Solver {
public:
  Solver() = default;
  explicit Solver(SolverOptions Defaults) : Defaults(std::move(Defaults)) {}

  const SolverOptions &options() const { return Defaults; }

  /// Solves with this solver's default options.
  SolveResult solve(const Query &Q) const { return solve(Q, Defaults); }

  /// Compiles \p Q and dispatches it to the engine `Opts.Engine` names.
  static SolveResult solve(const Query &Q, const SolverOptions &Opts);

  /// Opens \p Program (a query whose target fields are ignored) for
  /// cross-query solving under \p Opts. Never returns null; a failed open
  /// (parse error, unknown engine, kind mismatch) is reported through the
  /// session's `ok()`/`error()` and by every subsequent `solve`.
  static std::unique_ptr<SolverSession> open(const Query &Program,
                                             const SolverOptions &Opts);

  /// The equation system the selected engine would solve for \p Q; empty
  /// (with \p Error set when non-null) on failure or for natively-coded
  /// engines.
  static std::string formulaText(const Query &Q, const SolverOptions &Opts,
                                 std::string *Error = nullptr);

  /// Result of `compile`: a resolved query, or a status + message.
  struct Compilation {
    std::unique_ptr<CompiledQuery> Query; ///< Null when compilation failed.
    SolveStatus Status = SolveStatus::Ok;
    std::string Error;
  };

  /// Parses/resolves \p Q without running an engine. With
  /// \p RequireTarget false, a missing target label is not an error — the
  /// compiled query's target fields stay zero (used by `formulaText`,
  /// whose output does not depend on the target).
  static Compilation compile(const Query &Q, bool RequireTarget = true);

  /// Registry conveniences (also usable via EngineRegistry directly).
  static const Engine *findEngine(const std::string &Name);
  static std::vector<const Engine *> engines();
  /// "summary|ef|ef-split|..." — for usage strings.
  static std::string engineList(const char *Sep = "|");
  /// Aligned name/kind/description table — for `--list-algos`.
  static std::string engineTable();

private:
  friend class SolverSession;

  /// Builds a compiled query that borrows \p Program's program views and
  /// resolves \p Q's target (label or point) against it — the per-query
  /// half of `compile`, for sessions that compiled the program once.
  static Compilation retarget(const CompiledQuery &Program, const Query &Q);

  SolverOptions Defaults;
};

} // namespace api

// The facade types are the public API of the library; export them into the
// top-level namespace.
using api::Query;
using api::SolveResult;
using api::Solver;
using api::SolverOptions;
using api::SolverSession;
using api::SolveStatus;

} // namespace getafix

#endif // GETAFIX_API_SOLVER_H
