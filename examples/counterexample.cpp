//===- counterexample.cpp - Witness extraction walkthrough ----------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates counterexample extraction through the facade: a buggy
/// lock-discipline model is checked with a witness request, the engine
/// reports the error *and* a concrete interprocedural run reaching it, and
/// the run is independently validated by replaying it against the explicit
/// statement semantics.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Parser.h"
#include "reach/Witness.h"

#include <cstdio>

using namespace getafix;

int main() {
  // A lock with a re-entrancy bug: `work` may call itself while holding
  // the lock and acquires it again without checking. ERR marks the double
  // acquire.
  const char *Source = R"(
decl locked;
main() begin
  locked := F;
  call work(F);
  return;
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  else
    skip;
  fi
  locked := F;
  return;
end
)";

  // Build the CFG ourselves (rather than handing the facade the source
  // text) so the replay check below can use it too.
  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);

  SolveResult R = Solver::solve(Query::fromCfg(Cfg).target("ERR").witness(),
                                SolverOptions());
  if (!R.ok()) {
    std::fprintf(stderr, "%s\n", R.Error.c_str());
    return 1;
  }

  std::printf("double acquire reachable: %s\n", R.Reachable ? "YES" : "NO");
  if (!R.Reachable)
    return 0;

  std::printf("\ncounterexample (%zu steps, %llu fixpoint rounds):\n%s",
              R.Witness.size(), (unsigned long long)R.Iterations,
              R.WitnessText.c_str());

  // Replay the trace against the explicit semantics — an independent
  // implementation — to confirm it is a real run of the program.
  unsigned ProcId = 0, Pc = 0;
  Cfg.findLabelPc("ERR", ProcId, Pc);
  std::string Error;
  bool Valid = reach::verifyWitness(Cfg, R.Witness, ProcId, Pc, &Error);
  std::printf("\nreplay check: %s%s%s\n", Valid ? "valid" : "INVALID",
              Error.empty() ? "" : " — ", Error.c_str());
  return Valid ? 0 : 1;
}
