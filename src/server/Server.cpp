//===- Server.cpp - The getafixd query server -----------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <fcntl.h>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

namespace getafix {
namespace server {

namespace {

/// FNV-1a over program text — the session key for inline-source solves.
std::string fnv1aHex(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char B[32];
  std::snprintf(B, sizeof(B), "%016llx", static_cast<unsigned long long>(H));
  return B;
}

bool readFile(const std::string &Path, std::string &Out, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open program file '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

// Matches the offline `getafix` tool: a hit iteration limit is only
// inconclusive when the target was not already found (a reachable partial
// result is a valid lower bound).
const char *verdictString(const api::SolveResult &R) {
  if (R.HitIterationLimit && !R.Reachable)
    return "UNKNOWN";
  return R.Reachable ? "YES" : "NO";
}

const char *statusName(api::SolveStatus S) {
  switch (S) {
  case api::SolveStatus::Ok:
    return "ok";
  case api::SolveStatus::ParseError:
    return "parse-error";
  case api::SolveStatus::UnknownEngine:
    return "unknown-engine";
  case api::SolveStatus::TargetNotFound:
    return "target-not-found";
  case api::SolveStatus::BadQuery:
    return "bad-query";
  case api::SolveStatus::HitDeadline:
    return "hit_deadline";
  case api::SolveStatus::HitNodeBudget:
    return "hit_node_budget";
  case api::SolveStatus::Cancelled:
    return "cancelled";
  }
  return "error";
}

/// How long past its deadline a request may run before the watchdog trips
/// its cancel latch. The in-band deadline probe normally fires first;
/// the watchdog is the backstop for a solve stuck between probes.
constexpr int64_t WatchdogGraceMs = 250;

} // namespace

Server::Server(ServerOptions O) : Opts(std::move(O)), Pool(Opts.Pool) {
  if (::pipe(WakePipe) == 0) {
    ::fcntl(WakePipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(WakePipe[1], F_SETFL, O_NONBLOCK);
  }
}

Server::~Server() {
  requestShutdown();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  if (WatchThread.joinable())
    WatchThread.join();
  for (int &Fd : WakePipe)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
}

bool Server::start(std::string *Error) {
  if (Opts.UnixPath.empty()) {
    Listener = support::listenTcp(Opts.Host, Opts.Port, &BoundPort, Error);
  } else {
    Listener = support::listenUnix(Opts.UnixPath, Error);
    BoundPort = 0;
  }
  if (!Listener.valid())
    return false;
  unsigned N = Opts.Workers ? Opts.Workers : 1;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this] { workerLoop(); });
  WatchThread = std::thread([this] { watchdogLoop(); });
  return true;
}

void Server::requestShutdown() {
  if (Stopping.exchange(true, std::memory_order_acq_rel))
    return;
  // Wake workers blocked in accept(). shutdown() (not close()) so the fd
  // stays valid for any worker mid-call.
  if (Listener.valid())
    ::shutdown(Listener.fd(), SHUT_RDWR);
  WatchCv.notify_all();
  notifyShutdownFromSignal();
}

void Server::notifyShutdownFromSignal() {
  // Async-signal-safe: a single write to a non-blocking pipe.
  if (WakePipe[1] >= 0) {
    char B = 1;
    ssize_t Ignored = ::write(WakePipe[1], &B, 1);
    (void)Ignored;
  }
}

void Server::wait() {
  // Wake on the self-pipe (signal handlers and requestShutdown both
  // write it); the timeout covers the pipe-creation-failed fallback.
  while (!stopping()) {
    pollfd Pfd;
    Pfd.fd = WakePipe[0];
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int R = ::poll(&Pfd, 1, 200);
    if (R > 0) {
      char Buf[16];
      while (::read(WakePipe[0], Buf, sizeof(Buf)) > 0)
        ;
      // A signal-handler notify bypasses requestShutdown; run it now.
      requestShutdown();
    }
  }
  requestShutdown();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
  if (WatchThread.joinable())
    WatchThread.join();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> G(StatsMu);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Watchdog
//===----------------------------------------------------------------------===//

uint64_t Server::registerWatch(support::ResourceGovernor *Gov,
                               uint64_t TimeoutMs) {
  if (!Gov || TimeoutMs == 0)
    return 0;
  std::lock_guard<std::mutex> G(WatchMu);
  uint64_t Id = ++NextWatchId;
  WatchEntry &W = WatchMap[Id];
  W.Gov = Gov;
  W.CancelAt = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(
                   static_cast<int64_t>(TimeoutMs) + WatchdogGraceMs);
  WatchCv.notify_all();
  return Id;
}

void Server::unregisterWatch(uint64_t Id) {
  if (Id == 0)
    return;
  std::lock_guard<std::mutex> G(WatchMu);
  WatchMap.erase(Id);
}

void Server::watchdogLoop() {
  std::unique_lock<std::mutex> L(WatchMu);
  while (!stopping()) {
    auto Now = std::chrono::steady_clock::now();
    auto Next = Now + std::chrono::milliseconds(200);
    unsigned Fired = 0;
    for (auto It = WatchMap.begin(); It != WatchMap.end();) {
      if (It->second.CancelAt <= Now) {
        // The governor lives on the worker's stack but stays valid while
        // registered (the worker unregisters before destroying it).
        It->second.Gov->cancel();
        ++Fired;
        It = WatchMap.erase(It);
      } else {
        if (It->second.CancelAt < Next)
          Next = It->second.CancelAt;
        ++It;
      }
    }
    if (Fired) {
      std::lock_guard<std::mutex> G(StatsMu);
      Stats.WatchdogCancels += Fired;
    }
    WatchCv.wait_until(L, Next);
  }
}

//===----------------------------------------------------------------------===//
// Connection handling
//===----------------------------------------------------------------------===//

void Server::workerLoop() {
  while (!stopping()) {
    support::Socket Conn = support::acceptOn(Listener.fd(), nullptr);
    if (!Conn.valid()) {
      if (stopping())
        return;
      continue; // Transient accept failure.
    }
    {
      std::lock_guard<std::mutex> G(StatsMu);
      ++Stats.Connections;
    }
    serveConnection(std::move(Conn));
  }
}

void Server::serveConnection(support::Socket Conn) {
  support::LineReader Reader(Conn.fd());
  std::string Line;
  for (;;) {
    // Short poll timeout so a shutdown request is observed between
    // requests; an in-flight request always completes and its response
    // flushes before the connection closes (the drain guarantee).
    support::LineReader::Status St = Reader.readLine(Line, 200);
    if (St == support::LineReader::Status::Timeout) {
      if (stopping())
        return;
      continue;
    }
    if (St != support::LineReader::Status::Line)
      return; // Closed or error.

    {
      std::lock_guard<std::mutex> G(StatsMu);
      ++Stats.Requests;
    }

    Request R;
    std::string Err;
    Json Resp;
    bool ShutdownRequested = false;
    if (!parseRequest(Line, R, Err)) {
      Resp = errorResponse(Err);
    } else {
      // Last line of defense: no request — however it fails — may take
      // the daemon down. handleSolve contains solver faults itself (so
      // it can poison the session); this catches everything else.
      try {
        Resp = handle(R, ShutdownRequested);
      } catch (const std::exception &Ex) {
        Resp = errorResponse(std::string("internal error: ") + Ex.what());
      } catch (...) {
        Resp = errorResponse("internal error: unknown exception");
      }
    }
    const Json *Ok = Resp.find("ok");
    if (Ok && Ok->isBool() && !Ok->asBool()) {
      std::lock_guard<std::mutex> G(StatsMu);
      ++Stats.Errors;
    }
    if (!support::writeAll(Conn.fd(), Resp.dump() + "\n"))
      return; // Peer went away.
    if (ShutdownRequested) {
      requestShutdown();
      return;
    }
    if (stopping())
      return;
  }
}

//===----------------------------------------------------------------------===//
// Verbs
//===----------------------------------------------------------------------===//

Json Server::handle(const Request &R, bool &ShutdownRequested) {
  switch (R.Op) {
  case Verb::Ping:
    return Json::object()
        .set("ok", Json::boolean(true))
        .set("pong", Json::boolean(true));
  case Verb::Solve:
    return handleSolve(R);
  case Verb::Stats:
    return handleStats();
  case Verb::Evict:
    return handleEvict(R);
  case Verb::Shutdown:
    ShutdownRequested = true;
    return Json::object()
        .set("ok", Json::boolean(true))
        .set("stopping", Json::boolean(true));
  }
  return errorResponse("unhandled verb");
}

Json Server::handleSolve(const Request &R) {
  // The session key: path or content-hash, plus the engine override (the
  // same program under two engines is two sessions — options are fixed
  // at open).
  std::string Key;
  SessionPool::SourceLoader Loader;
  if (!R.Program.empty()) {
    Key = "file:" + R.Program;
    const std::string Path = R.Program;
    Loader = [Path](std::string &Src, std::string &Err) {
      return readFile(Path, Src, Err);
    };
  } else {
    if (!Opts.AllowInlineSource)
      return errorResponse("inline 'source' is disabled on this server");
    Key = "src:" + fnv1aHex(R.Source);
    const std::string Text = R.Source;
    Loader = [Text](std::string &Src, std::string &) {
      Src = Text;
      return true;
    };
  }
  if (!R.Engine.empty())
    Key += "#engine=" + R.Engine;

  SessionPool::Lease Lease = Pool.acquire(Key, Loader, R.Engine);
  if (!Lease.ok())
    return errorResponse(Lease.error());
  api::SolverSession &S = Lease.session();
  if (!S.ok())
    return errorResponse(std::string("open failed (") +
                         statusName(S.status()) + "): " + S.error());

  std::vector<api::Query> Qs;
  Qs.reserve(R.Targets.size());
  for (const std::string &T : R.Targets) {
    api::Query Q;
    Q.target(T).witness(R.Witness);
    Qs.push_back(std::move(Q));
  }

  // Resolve this request's resource envelope: the client's limits,
  // defaulted and clamped by the server-wide caps. MaxTimeoutMs binds
  // even a request that asked for no deadline at all.
  uint64_t TimeoutMs = R.TimeoutMs ? R.TimeoutMs : Opts.DefaultTimeoutMs;
  if (Opts.MaxTimeoutMs != 0 &&
      (TimeoutMs == 0 || TimeoutMs > Opts.MaxTimeoutMs))
    TimeoutMs = Opts.MaxTimeoutMs;
  uint64_t NodeBudget = R.NodeBudget ? R.NodeBudget : Opts.NodeBudgetCap;
  if (Opts.NodeBudgetCap != 0 && NodeBudget > Opts.NodeBudgetCap)
    NodeBudget = Opts.NodeBudgetCap;

  // One governor covers the whole batch (the deadline is absolute, the
  // budget request-wide); once tripped, remaining targets report the
  // same limit immediately. The watchdog is the out-of-band backstop.
  support::ResourceGovernor Gov;
  if (TimeoutMs != 0)
    Gov.setDeadlineIn(static_cast<int64_t>(TimeoutMs));
  if (NodeBudget != 0)
    Gov.setNodeBudget(NodeBudget);
  bool Governed = TimeoutMs != 0 || NodeBudget != 0;
  if (Governed)
    S.setResourceGovernor(&Gov);
  uint64_t WatchId = registerWatch(Governed ? &Gov : nullptr, TimeoutMs);

  // A real fault (injected or genuine OOM, broken invariant) escaping
  // the engines is contained to this request: detach the governor,
  // poison the session so its state is never reused, and keep serving.
  auto containFault = [&](const std::string &What) {
    unregisterWatch(WatchId);
    if (Governed)
      S.setResourceGovernor(nullptr);
    Lease.markPoisoned();
    {
      std::lock_guard<std::mutex> G(StatsMu);
      ++Stats.SolveRequests;
      ++Stats.ContainedFaults;
    }
    return errorResponse("solve failed: " + What + " (session evicted)");
  };

  auto T0 = std::chrono::steady_clock::now();
  std::vector<api::SolveResult> Results;
  try {
    Results = S.solveAll(Qs);
  } catch (const std::exception &Ex) {
    return containFault(Ex.what());
  } catch (...) {
    return containFault("unknown fault");
  }
  unregisterWatch(WatchId);
  if (Governed)
    S.setResourceGovernor(nullptr);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  uint64_t LimitRows = 0;
  Json Rows = Json::array();
  for (size_t I = 0; I < Results.size(); ++I) {
    const api::SolveResult &Res = Results[I];
    Json Row = Json::object().set("target", Json::str(R.Targets[I]));
    if (api::isResourceLimit(Res.Status)) {
      // A limit stop is structured data, not a failure: the session
      // halted at a completed round boundary and a retry with a larger
      // budget resumes bit-identically.
      ++LimitRows;
      Row.set("error", Json::str(Res.Error))
          .set("status", Json::str(statusName(Res.Status)))
          .set("iterations", Json::number(double(Res.Iterations)))
          .set("seconds", Json::number(Res.Seconds));
    } else if (!Res.ok()) {
      // A bad target is an error row, not a dead connection — the rest
      // of the batch still gets verdicts.
      Row.set("error", Json::str(Res.Error))
          .set("status", Json::str(statusName(Res.Status)));
    } else {
      Row.set("verdict", Json::str(verdictString(Res)))
          .set("reachable", Json::boolean(Res.Reachable))
          .set("iterations", Json::number(double(Res.Iterations)))
          .set("summary_nodes", Json::number(double(Res.SummaryNodes)))
          .set("reused", Json::number(double(Res.SummariesReused)))
          .set("seconds", Json::number(Res.Seconds));
      if (Res.HitIterationLimit)
        Row.set("iteration_limit", Json::boolean(true));
      if (Res.HasWitness)
        Row.set("witness", Json::str(Res.WitnessText));
    }
    Rows.add(std::move(Row));
  }

  {
    std::lock_guard<std::mutex> G(StatsMu);
    ++Stats.SolveRequests;
    Stats.TargetsSolved += Results.size();
    Stats.LimitStops += LimitRows;
    for (const api::SolveResult &Res : Results)
      if (Res.CondensationWidth != 0) {
        Stats.CondensationWidth = Res.CondensationWidth;
        Stats.SummaryRelations = Res.SummaryRelations;
      }
  }

  return Json::object()
      .set("ok", Json::boolean(true))
      .set("program", Json::str(Key))
      .set("reopened", Json::boolean(Lease.reopened()))
      .set("seconds", Json::number(Seconds))
      .set("rows", std::move(Rows))
      .set("session",
           Json::object()
               .set("live_nodes", Json::number(double(S.liveNodes())))
               .set("peak_live_nodes",
                    Json::number(double(S.peakLiveNodes())))
               .set("footprint_bytes",
                    Json::number(double(S.memoryFootprint()))));
}

Json Server::handleStats() {
  ServerStats SS = stats();
  PoolStats PS = Pool.stats();
  return Json::object()
      .set("ok", Json::boolean(true))
      .set("server",
           Json::object()
               .set("connections", Json::number(double(SS.Connections)))
               .set("requests", Json::number(double(SS.Requests)))
               .set("solves", Json::number(double(SS.SolveRequests)))
               .set("targets", Json::number(double(SS.TargetsSolved)))
               .set("errors", Json::number(double(SS.Errors)))
               .set("limit_stops", Json::number(double(SS.LimitStops)))
               .set("watchdog_cancels",
                    Json::number(double(SS.WatchdogCancels)))
               .set("contained_faults",
                    Json::number(double(SS.ContainedFaults)))
               .set("default_timeout_ms",
                    Json::number(double(Opts.DefaultTimeoutMs)))
               .set("max_timeout_ms",
                    Json::number(double(Opts.MaxTimeoutMs)))
               .set("node_budget",
                    Json::number(double(Opts.NodeBudgetCap)))
               // The per-solve evaluator parallelism every pooled session
               // is opened with (`getafixd --threads`); clients use it to
               // tell a sequential deployment from a parallel one.
               .set("threads",
                    Json::number(double(Opts.Pool.Solver.Threads)))
               // Summary compilation shape: whether --monolithic-summary
               // pinned the paper's single relation, plus the width /
               // relation count of the most recent fixed-point solve
               // (0 until one runs).
               .set("monolithic_summary",
                    Json::boolean(Opts.Pool.Solver.MonolithicSummary))
               .set("condensation_width",
                    Json::number(double(SS.CondensationWidth)))
               .set("summary_relations",
                    Json::number(double(SS.SummaryRelations))))
      .set("pool",
           Json::object()
               .set("lookups", Json::number(double(PS.Lookups)))
               .set("hits", Json::number(double(PS.Hits)))
               .set("opens", Json::number(double(PS.Opens)))
               .set("reopens", Json::number(double(PS.Reopens)))
               .set("evictions", Json::number(double(PS.Evictions)))
               .set("cache_clears", Json::number(double(PS.CacheClears)))
               .set("poisoned_evictions",
                    Json::number(double(PS.PoisonedEvictions)))
               .set("resident_sessions",
                    Json::number(double(PS.ResidentSessions)))
               .set("total_programs",
                    Json::number(double(PS.TotalPrograms)))
               .set("footprint_bytes",
                    Json::number(double(PS.FootprintBytes)))
               .set("budget_bytes",
                    Json::number(double(Opts.Pool.MemoryBudgetBytes))));
}

Json Server::handleEvict(const Request &R) {
  if (R.Program.empty()) {
    size_t N = Pool.evictAll();
    return Json::object()
        .set("ok", Json::boolean(true))
        .set("evicted", Json::number(double(N)));
  }
  std::string Key = "file:" + R.Program;
  if (!R.Engine.empty())
    Key += "#engine=" + R.Engine;
  bool Evicted = Pool.evict(Key);
  return Json::object()
      .set("ok", Json::boolean(true))
      .set("evicted", Json::number(Evicted ? 1.0 : 0.0));
}

} // namespace server
} // namespace getafix
