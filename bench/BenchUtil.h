//===- BenchUtil.h - Shared helpers for the table benchmarks ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the Figure-2/Figure-3 reproduction binaries: parsing
/// workloads, running engines by registry name through the `Solver`
/// facade, and printing aligned table rows. (The micro-benchmarks use
/// google-benchmark; the paper-table binaries print rows that mirror the
/// paper's layout instead, which is the deliverable.)
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BENCH_BENCHUTIL_H
#define GETAFIX_BENCH_BENCHUTIL_H

#include "api/Solver.h"
#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace getafix {
namespace bench {

struct ParsedProgram {
  std::unique_ptr<bp::Program> Prog;
  bp::ProgramCfg Cfg;
};

inline ParsedProgram parseOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedProgram P;
  P.Prog = bp::parseProgram(Src, Diags);
  if (!P.Prog) {
    std::fprintf(stderr, "benchmark workload failed to parse:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  P.Cfg = bp::buildCfg(*P.Prog);
  return P;
}

struct ParsedConcProgram {
  std::unique_ptr<bp::ConcurrentProgram> Conc;
  std::vector<bp::ProgramCfg> Cfgs;
};

inline ParsedConcProgram parseConcOrDie(const std::string &Src) {
  DiagnosticEngine Diags;
  ParsedConcProgram P;
  P.Conc = bp::parseConcurrentProgram(Src, Diags);
  if (!P.Conc) {
    std::fprintf(stderr, "benchmark workload failed to parse:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  P.Cfgs = conc::buildThreadCfgs(*P.Conc);
  return P;
}

/// Results of one engine on one workload (a view of SolveResult that the
/// table printers index).
struct EngineRow {
  bool Reachable = false;
  double Seconds = 0.0;
  size_t Nodes = 0;
  uint64_t Iterations = 0;
  double ReachStates = 0.0;
  size_t TransformedGlobals = 0;
  uint64_t NodesCreated = 0; ///< Total BDD nodes allocated (op-count proxy).
  uint64_t DeltaRounds = 0;  ///< Rounds run in frontier (delta) mode.
};

inline EngineRow rowOrDie(const SolveResult &R, const char *Engine) {
  if (!R.ok()) {
    std::fprintf(stderr, "engine '%s' failed: %s\n", Engine,
                 R.Error.c_str());
    std::exit(1);
  }
  return EngineRow{R.Reachable,       R.Seconds,
                   R.SummaryNodes,    R.Iterations,
                   R.ReachStates,     R.TransformedGlobals,
                   R.BddNodesCreated, R.DeltaRounds};
}

/// Runs the engine \p Engine (a registry name) on a sequential label query.
inline EngineRow runEngine(const bp::ProgramCfg &Cfg,
                           const std::string &Label, const char *Engine,
                           bool EarlyStop = true,
                           fpc::EvalStrategy Strategy =
                               fpc::EvalStrategy::SemiNaive) {
  SolverOptions Opts;
  Opts.Engine = Engine;
  Opts.EarlyStop = EarlyStop;
  Opts.Strategy = Strategy;
  return rowOrDie(Solver::solve(Query::fromCfg(Cfg).target(Label), Opts),
                  Engine);
}

/// Runs \p Engine on a concurrent label query under \p Opts (which carries
/// the context bound / scheduling policy).
inline EngineRow runConcEngine(const ParsedConcProgram &P,
                               const std::string &Label, const char *Engine,
                               SolverOptions Opts) {
  Opts.Engine = Engine;
  return rowOrDie(
      Solver::solve(Query::fromConcurrent(*P.Conc, &P.Cfgs).target(Label),
                    Opts),
      Engine);
}

/// Counts non-blank source lines (the paper's LOC column).
inline unsigned countLoc(const std::string &Src) {
  unsigned Loc = 0;
  bool Blank = true;
  for (char C : Src) {
    if (C == '\n') {
      Loc += !Blank;
      Blank = true;
    } else if (!isspace(static_cast<unsigned char>(C))) {
      Blank = false;
    }
  }
  return Loc + !Blank;
}

} // namespace bench
} // namespace getafix

#endif // GETAFIX_BENCH_BENCHUTIL_H
