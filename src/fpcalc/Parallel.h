//===- Parallel.h - Dependency-respecting parallel execution ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SCC-condensation scheduler behind the evaluator's multi-threaded
/// dependency pre-solving: a generic runner that executes a DAG of tasks
/// on a work-stealing pool, dispatching each task the moment its last
/// dependency completes. The evaluator instantiates it with one task per
/// dependency SCC (`Evaluator::scheduleDependencies` under `Threads > 1`);
/// the unit tests instantiate it with synthetic DAGs and assert the
/// solved-before relation directly.
///
/// Determinism contract: the runner makes no ordering promises beyond the
/// dependency edges — callers must ensure task results are independent of
/// completion order. For SCC fixpoint solves this holds by construction:
/// an SCC's solution is a pure function of its callees' (canonical BDD)
/// values, so any dependency-respecting schedule produces bit-identical
/// relation values.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_FPCALC_PARALLEL_H
#define GETAFIX_FPCALC_PARALLEL_H

#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace getafix {
namespace fpc {

/// Counters of one `runDag` execution.
struct DagRunStats {
  uint64_t TasksRun = 0;
  /// Tasks a worker stole from another worker's deque (pool-level delta
  /// across this run; approximate when the pool is shared).
  uint64_t Steals = 0;
};

/// Executes tasks `0 .. NumTasks-1` on \p Pool, honoring \p Deps
/// (`Deps[I]` lists the tasks that must complete before task I starts; the
/// graph must be acyclic). `Run(Task, Worker)` is invoked exactly once per
/// task, on some pool worker, and must not throw. Blocks until every task
/// has completed.
DagRunStats runDag(support::ThreadPool &Pool, unsigned NumTasks,
                   const std::vector<std::vector<unsigned>> &Deps,
                   const std::function<void(unsigned Task, unsigned Worker)>
                       &Run);

} // namespace fpc
} // namespace getafix

#endif // GETAFIX_FPCALC_PARALLEL_H
