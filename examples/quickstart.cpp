//===- quickstart.cpp - Minimal end-to-end use of the library -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parse a recursive Boolean program, run all four fixed-point
/// reachability algorithms plus the two baselines on a label query, and
/// print what each engine reports. This is the whole public API surface a
/// typical client needs.
///
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "reach/Baselines.h"
#include "reach/SeqReach.h"

#include <cstdio>

using namespace getafix;

int main() {
  // A lock-discipline model: `locked` must alternate via acquire/release.
  // The ERR label is reachable only if a double acquire is possible.
  const char *Source = R"(
decl locked, error;
main() begin
  decl n;
  locked := F; error := F;
  n := *;
  while (n) do
    call acquire();
    if (*) then
      call release();
    fi;
    n := *;
  od;
  if (error) then
    ERR: skip;
  fi;
end
acquire() begin
  if (locked) then
    error := T;
  fi;
  locked := T;
end
release() begin
  locked := F;
end
)";

  DiagnosticEngine Diags;
  auto Prog = bp::parseProgram(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  bp::ProgramCfg Cfg = bp::buildCfg(*Prog);

  std::printf("query: is label ERR reachable?\n\n");
  for (auto Alg :
       {reach::SeqAlgorithm::SummarySimple, reach::SeqAlgorithm::EntryForward,
        reach::SeqAlgorithm::EntryForwardSplit,
        reach::SeqAlgorithm::EntryForwardOpt}) {
    reach::SeqOptions Opts;
    Opts.Alg = Alg;
    reach::SeqResult R = reach::checkReachabilityOfLabel(Cfg, "ERR", Opts);
    std::printf("%-20s -> %-3s  (%llu iterations, %zu summary nodes, "
                "%.3fs)\n",
                reach::algorithmName(Alg), R.Reachable ? "YES" : "NO",
                (unsigned long long)R.Iterations, R.SummaryNodes, R.Seconds);
  }

  reach::BaselineResult M = reach::mopedPostStarLabel(Cfg, "ERR");
  std::printf("%-20s -> %-3s  (%llu rounds, %.3fs)\n", "moped-poststar",
              M.Reachable ? "YES" : "NO", (unsigned long long)M.Iterations,
              M.Seconds);
  reach::BaselineResult B = reach::bebopTabulateLabel(Cfg, "ERR");
  std::printf("%-20s -> %-3s  (%llu path edges, %.3fs)\n", "bebop-tabulate",
              B.Reachable ? "YES" : "NO", (unsigned long long)B.Iterations,
              B.Seconds);
  return 0;
}
