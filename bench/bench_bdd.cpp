//===- bench_bdd.cpp - BDD package micro-benchmarks ------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// google-benchmark microbenchmarks of the BDD substrate: the operations the
// solver's inner loop lives on (apply, relational product, renaming,
// quantification, garbage collection).
//
// Input construction note: the random functions are disjunctions of cubes
// whose supports are *clustered* (a short window of adjacent variables).
// Scattered supports make a DNF's BDD exponential in the number of cubes —
// a property of BDDs, not of this package — which would benchmark the
// blowup instead of the operations.
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace getafix;

namespace {

/// A pseudo-random function over variables [Lo, Hi): an OR of \p Terms
/// cubes, each over a window of adjacent variables (locality keeps the
/// BDD linear in Terms, like the transition relations the solver builds).
Bdd randomFunction(BddManager &Mgr, Rng &R, unsigned Lo, unsigned Hi,
                   unsigned Terms) {
  Bdd F = Mgr.zero();
  for (unsigned T = 0; T < Terms; ++T) {
    unsigned Window = Lo + unsigned(R.below(Hi - Lo - 4));
    Bdd Cube = Mgr.one();
    for (unsigned I = 0; I < 4; ++I) {
      unsigned V = Window + I;
      Cube &= R.flip() ? Mgr.var(V) : Mgr.nvar(V);
    }
    F |= Cube;
  }
  return F;
}

void BM_BddApplyAnd(benchmark::State &State) {
  BddManager Mgr(64);
  Rng R(1);
  Bdd A = randomFunction(Mgr, R, 0, 64, 48);
  Bdd B = randomFunction(Mgr, R, 0, 64, 48);
  for (auto _ : State) {
    benchmark::DoNotOptimize(A & B);
  }
}
BENCHMARK(BM_BddApplyAnd);

void BM_BddRelationalProduct(benchmark::State &State) {
  // Image computation shape: T(x, x') over interleaved vars (current =
  // even, next = odd levels), S(x) over the current vars.
  BddManager Mgr(64);
  Rng R(2);
  Bdd Trans = Mgr.zero();
  for (unsigned I = 0; I < 24; ++I) {
    unsigned Window = 2 * unsigned(R.below(28));
    Bdd Term = Mgr.one();
    for (unsigned V = 0; V < 4; ++V) {
      unsigned Cur = Window + 2 * V;
      Term &= R.flip() ? Mgr.var(Cur) : Mgr.nvar(Cur);
      Term &= R.flip() ? Mgr.var(Cur + 1) : Mgr.nvar(Cur + 1);
    }
    Trans |= Term;
  }
  Bdd States = randomFunction(Mgr, R, 0, 32, 16);
  std::vector<unsigned> CurVars;
  for (unsigned V = 0; V < 64; V += 2)
    CurVars.push_back(V);
  BddCube Cube = Mgr.makeCube(CurVars);
  for (auto _ : State) {
    benchmark::DoNotOptimize(States.andExists(Trans, Cube));
  }
}
BENCHMARK(BM_BddRelationalProduct);

void BM_BddRenameMonotone(benchmark::State &State) {
  BddManager Mgr(64);
  Rng R(3);
  Bdd F = randomFunction(Mgr, R, 0, 32, 32);
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned V = 0; V < 32; ++V)
    Pairs.emplace_back(V, V + 32);
  BddPerm Perm = Mgr.makePermutation(Pairs);
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.permute(Perm));
  }
}
BENCHMARK(BM_BddRenameMonotone);

void BM_BddExists(benchmark::State &State) {
  BddManager Mgr(64);
  Rng R(4);
  Bdd F = randomFunction(Mgr, R, 0, 64, 64);
  std::vector<unsigned> Vars;
  for (unsigned V = 0; V < 64; V += 3)
    Vars.push_back(V);
  BddCube Cube = Mgr.makeCube(Vars);
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.exists(Cube));
  }
}
BENCHMARK(BM_BddExists);

/// Cache-associativity ablation: the same op mix at a fixed slot budget,
/// direct-mapped versus 4-way. The working set (several relational
/// products cycling through a function pool) deliberately exceeds the
/// 2^10-slot cache so replacement policy, not capacity, is what differs.
void CacheAssociativity(benchmark::State &State, unsigned Ways) {
  BddManager Mgr(64, /*CacheBits=*/10, Ways);
  Rng R(6);
  std::vector<Bdd> Pool;
  for (unsigned I = 0; I < 8; ++I)
    Pool.push_back(randomFunction(Mgr, R, 0, 64, 40));
  std::vector<unsigned> Vars;
  for (unsigned V = 0; V < 64; V += 2)
    Vars.push_back(V);
  BddCube Cube = Mgr.makeCube(Vars);
  unsigned I = 0;
  for (auto _ : State) {
    const Bdd &A = Pool[I % Pool.size()];
    const Bdd &B = Pool[(I + 3) % Pool.size()];
    benchmark::DoNotOptimize(A.andExists(B, Cube));
    ++I;
  }
  State.counters["hit_rate"] = benchmark::Counter(
      Mgr.stats().CacheLookups
          ? double(Mgr.stats().CacheHits) / double(Mgr.stats().CacheLookups)
          : 0.0);
}

void BM_BddCacheDirectMapped(benchmark::State &State) {
  CacheAssociativity(State, 1);
}
BENCHMARK(BM_BddCacheDirectMapped);

void BM_BddCache4Way(benchmark::State &State) {
  CacheAssociativity(State, 4);
}
BENCHMARK(BM_BddCache4Way);

/// The computed-cache key hash, replicated from BddManager::cacheLookup so
/// the conflict workload below can *target* buckets instead of waiting for
/// birthday collisions. Purely a workload-construction device: if the
/// manager's hash changes, this workload degrades into a random one (the
/// benchmark stays valid, just less adversarial).
uint64_t cacheHashTriple(uint32_t A, uint32_t B, uint32_t C) {
  uint64_t H = (uint64_t(A) << 32) ^ (uint64_t(B) << 16) ^ C;
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

/// Conflict-heavy hot-set workload at a 2^10-slot cache: a small set of
/// *hot* AND pairs is re-queried every round while a stream of single-use
/// pairs — selected to hash into the hot pairs' buckets — pounds the same
/// slots. This is the regime the ROADMAP's associativity item names: a
/// direct-mapped cache evicts a hot entry on every colliding insert, so
/// the hot set misses once per round; the 4-way cache's transposition
/// promotion migrates re-used entries to the protected front ways and the
/// streaming entries churn the probation way among themselves.
void CacheConflictHotSet(benchmark::State &State, unsigned Ways) {
  BddManager Mgr(64, /*CacheBits=*/10, Ways);
  Rng R(11);
  // Hot operands are large (expensive to recompute); stream operands are
  // small cubes (cheap, but their inserts land where the hot results
  // live).
  std::vector<Bdd> HotFns, StreamFns;
  for (unsigned I = 0; I < 48; ++I)
    HotFns.push_back(randomFunction(Mgr, R, 0, 64, 40));
  for (unsigned I = 0; I < 512; ++I)
    StreamFns.push_back(randomFunction(Mgr, R, 0, 64, 3));

  struct OpPair {
    const Bdd *A, *B;
  };
  std::vector<OpPair> Hot;
  for (unsigned I = 0; I + 1 < HotFns.size(); I += 2)
    Hot.push_back({&HotFns[I], &HotFns[I + 1]});

  // Bucket index of an And key under this manager's geometry (op And has
  // tag 0, third operand 0).
  const uint64_t BucketMask = Mgr.cacheSlots() / Mgr.cacheWays() - 1;
  auto bucketOf = [&](const Bdd &A, const Bdd &B) {
    return cacheHashTriple(A.rawIndex(), B.rawIndex(), 0) & BucketMask;
  };
  std::vector<uint8_t> IsHotBucket(BucketMask + 1, 0);
  for (const OpPair &P : Hot)
    IsHotBucket[bucketOf(*P.A, *P.B)] = 1;

  // Streaming pairs targeted at the hot results' buckets.
  std::vector<OpPair> Stream;
  for (unsigned I = 0; I < StreamFns.size() && Stream.size() < 512; ++I)
    for (unsigned J = I + 1; J < StreamFns.size() && Stream.size() < 512;
         ++J)
      if (IsHotBucket[bucketOf(StreamFns[I], StreamFns[J])])
        Stream.push_back({&StreamFns[I], &StreamFns[J]});

  // Two hot passes per round: the first re-derives whatever the stream
  // evicted (and re-inserts it in the probation way), the second re-hits
  // it — which under transposition promotion is what moves a hot entry
  // out of the way the stream churns. Direct-mapped has no protected way:
  // the colliding stream inserts evict the hot results every round, and
  // the first pass pays the full recomputation again.
  size_t StreamIdx = 0;
  for (auto _ : State) {
    for (unsigned Pass = 0; Pass < 2; ++Pass)
      for (const OpPair &P : Hot)
        benchmark::DoNotOptimize(*P.A & *P.B);
    for (unsigned K = 0; K < 16 && !Stream.empty(); ++K) {
      const OpPair &P = Stream[StreamIdx++ % Stream.size()];
      benchmark::DoNotOptimize(*P.A & *P.B);
    }
  }
  State.counters["hit_rate"] = benchmark::Counter(
      Mgr.stats().CacheLookups
          ? double(Mgr.stats().CacheHits) / double(Mgr.stats().CacheLookups)
          : 0.0);
  State.counters["stream_pairs"] = benchmark::Counter(double(Stream.size()));
}

void BM_BddCacheConflictHotSetDirect(benchmark::State &State) {
  CacheConflictHotSet(State, 1);
}
BENCHMARK(BM_BddCacheConflictHotSetDirect);

void BM_BddCacheConflictHotSet4Way(benchmark::State &State) {
  CacheConflictHotSet(State, 4);
}
BENCHMARK(BM_BddCacheConflictHotSet4Way);

/// The transition-relation shapes the solver builds: T(x, x') over
/// interleaved variables, imaged from a narrow state set. This is the
/// bench for the constrain-based frontier product: `S.andExists(T, cube)`
/// versus `S.andExists(T.constrain(S), cube)` (identical results, the
/// latter walks a care-set-minimized operand), plus the `restrict`
/// sibling.
struct TransitionFixture {
  BddManager Mgr{64};
  Bdd Trans;
  Bdd Narrow;
  BddCube Cube;

  TransitionFixture() {
    Rng R(7);
    Trans = Mgr.zero();
    for (unsigned I = 0; I < 48; ++I) {
      unsigned Window = 2 * unsigned(R.below(28));
      Bdd Term = Mgr.one();
      for (unsigned V = 0; V < 4; ++V) {
        unsigned Cur = Window + 2 * V;
        Term &= R.flip() ? Mgr.var(Cur) : Mgr.nvar(Cur);
        Term &= R.flip() ? Mgr.var(Cur + 1) : Mgr.nvar(Cur + 1);
      }
      Trans |= Term;
    }
    // A frontier-like state set: a handful of near-disjoint cubes over the
    // current variables — small support, few satisfying points.
    Narrow = Mgr.zero();
    for (unsigned I = 0; I < 3; ++I) {
      Bdd CubeF = Mgr.one();
      for (unsigned V = 0; V < 12; V += 2)
        CubeF &= ((I >> (V / 2)) & 1) ? Mgr.var(V) : Mgr.nvar(V);
      Narrow |= CubeF;
    }
    std::vector<unsigned> CurVars;
    for (unsigned V = 0; V < 64; V += 2)
      CurVars.push_back(V);
    Cube = Mgr.makeCube(CurVars);
  }
};

void BM_BddProductPlain(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache(); // Cold products: the narrow-round regime.
    benchmark::DoNotOptimize(F.Narrow.andExists(F.Trans, F.Cube));
  }
}
BENCHMARK(BM_BddProductPlain);

void BM_BddProductConstrained(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache();
    benchmark::DoNotOptimize(
        F.Narrow.andExists(F.Trans.constrain(F.Narrow), F.Cube));
  }
}
BENCHMARK(BM_BddProductConstrained);

void BM_BddProductRestricted(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache();
    benchmark::DoNotOptimize(
        F.Narrow.andExists(F.Trans.restrict(F.Narrow), F.Cube));
  }
}
BENCHMARK(BM_BddProductRestricted);

void BM_BddConstrain(benchmark::State &State) {
  TransitionFixture F;
  for (auto _ : State) {
    F.Mgr.clearComputedCache();
    benchmark::DoNotOptimize(F.Trans.constrain(F.Narrow));
  }
}
BENCHMARK(BM_BddConstrain);

void BM_BddGc(benchmark::State &State) {
  // One manager; each iteration litters the table with dead intermediates
  // and collects them while a live function is held.
  BddManager Mgr(48);
  Mgr.setGcThreshold(0); // Collect only when asked.
  Rng R(5);
  Bdd Keep = randomFunction(Mgr, R, 0, 48, 32);
  for (auto _ : State) {
    State.PauseTiming();
    for (unsigned I = 0; I < 8; ++I)
      randomFunction(Mgr, R, 0, 48, 8);
    State.ResumeTiming();
    Mgr.gc();
    benchmark::DoNotOptimize(Keep.nodeCount());
  }
}
BENCHMARK(BM_BddGc);

} // namespace

BENCHMARK_MAIN();
