//===- Calculus.h - First-order fixed-point calculus ------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's programming language for model checkers (Section 3): a
/// first-order logic over finite domains with least fixed-point definitions,
/// the calculus MUCKE evaluates. A `System` owns:
///
///   - finite *domains* (Boolean, program counters, module ids, bit-vector
///     valuation domains, ...),
///   - typed scalar *variables* (struct-like tuples such as the paper's
///     `Conf s` are flattened to scalars by the caller),
///   - *relations* over domains. A relation is either an *input* (bound to
///     a BDD by the caller — the program encoding: ProgramInt, IntoCall,
///     ...) or *defined* by an equation `R(formals) = Formula` evaluated
///     with the paper's algorithmic (Tarskian iteration) semantics.
///
/// Formulas are n-ary and/or, negation, variable/constant equalities,
/// relation application (arguments may be variables or domain constants),
/// and exists/forall over variable sets. Formulas need not be positive:
/// the optimized entry-forward algorithm (Section 4.3) negates a relation
/// inside `Relevant`, which is exactly why the paper defines operational
/// semantics rather than relying on Knaster–Tarski alone.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_FPCALC_CALCULUS_H
#define GETAFIX_FPCALC_CALCULUS_H

#include "support/Diagnostics.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace getafix {
namespace fpc {

using DomainId = unsigned;
using VarId = unsigned;
using RelId = unsigned;

/// A finite domain; values are 0..Size-1, encoded in ceil(log2(Size)) bits.
/// Bit-vector domains wider than 63 bits set ExplicitBits and use the
/// all-ones Size sentinel (constants in such domains are still uint64).
struct Domain {
  std::string Name;
  uint64_t Size = 2;
  unsigned ExplicitBits = 0;

  unsigned numBits() const {
    if (ExplicitBits != 0)
      return ExplicitBits;
    unsigned Bits = 0;
    uint64_t Capacity = 1;
    while (Capacity < Size) {
      Capacity <<= 1;
      ++Bits;
    }
    return Bits == 0 ? 1 : Bits;
  }
};

/// A typed scalar variable.
struct Var {
  std::string Name;
  DomainId Dom = 0;
};

/// Relation-application argument: a variable or a domain constant.
struct Term {
  bool IsConst = false;
  VarId Variable = 0;
  uint64_t Value = 0;

  static Term var(VarId V) { return Term{false, V, 0}; }
  static Term constant(uint64_t Value) { return Term{true, 0, Value}; }
};

enum class FormulaKind {
  Const,   ///< true / false.
  RelApp,  ///< R(t1, ..., tn).
  EqVar,   ///< x = y (same domain).
  EqConst, ///< x = c.
  Not,
  And, ///< n-ary.
  Or,  ///< n-ary.
  Exists,
  Forall,
};

struct Formula {
  FormulaKind Kind;

  bool ConstValue = false;          // Const.
  RelId Rel = 0;                    // RelApp.
  std::vector<Term> Args;           // RelApp.
  VarId Lhs = 0, Rhs = 0;           // EqVar / EqConst (Lhs).
  uint64_t Value = 0;               // EqConst.
  std::vector<Formula *> Children;  // Not (1), And, Or.
  std::vector<VarId> Bound;         // Exists / Forall.
  Formula *Body = nullptr;          // Exists / Forall.

  explicit Formula(FormulaKind Kind) : Kind(Kind) {}
};

/// A relation: input (bound externally) or defined by an equation.
struct Relation {
  std::string Name;
  std::vector<VarId> Formals; ///< Distinct variables; give arity and types.
  Formula *Def = nullptr;     ///< Null for input relations.
  bool IsNu = false;          ///< Greatest fixed-point (iterate from top).

  bool isInput() const { return Def == nullptr; }
  unsigned arity() const { return unsigned(Formals.size()); }
};

/// Owns domains, variables, relations and all formula nodes.
class System {
public:
  // Declarations ----------------------------------------------------------
  DomainId addDomain(std::string Name, uint64_t Size);
  /// A 2^Bits bit-vector domain (supports widths above 63).
  DomainId addBitDomain(std::string Name, unsigned Bits);
  VarId addVar(std::string Name, DomainId Dom);
  /// Declares a relation whose formal parameters are \p Formals.
  RelId declareRel(std::string Name, std::vector<VarId> Formals);
  /// Attaches the defining equation `R(formals) = Rhs`.
  void define(RelId Rel, Formula *Rhs);
  /// Attaches a greatest-fixed-point equation: iteration starts from the
  /// full relation (all domain-valid tuples) instead of the empty one. For
  /// positive bodies this computes the GFP (Knaster–Tarski dual); MUCKE
  /// accepts such `nu` definitions, and they express safety properties
  /// (e.g. AG p) directly.
  void defineNu(RelId Rel, Formula *Rhs);

  // Accessors -------------------------------------------------------------
  const Domain &domain(DomainId Id) const { return Domains[Id]; }
  const Var &var(VarId Id) const { return Vars[Id]; }
  const Relation &relation(RelId Id) const { return Rels[Id]; }
  unsigned numDomains() const { return unsigned(Domains.size()); }
  unsigned numVars() const { return unsigned(Vars.size()); }
  unsigned numRels() const { return unsigned(Rels.size()); }
  DomainId boolDomain() const { return BoolDom; }

  // Formula builders (arena-owned) ----------------------------------------
  Formula *top();
  Formula *bottom();
  Formula *apply(RelId Rel, std::vector<Term> Args);
  /// Convenience: all-variable application.
  Formula *applyVars(RelId Rel, const std::vector<VarId> &Args);
  Formula *eqVar(VarId Lhs, VarId Rhs);
  Formula *eqConst(VarId Lhs, uint64_t Value);
  Formula *mkNot(Formula *F);
  Formula *mkAnd(std::vector<Formula *> Children);
  Formula *mkOr(std::vector<Formula *> Children);
  Formula *exists(std::vector<VarId> Bound, Formula *Body);
  Formula *forall(std::vector<VarId> Bound, Formula *Body);

  /// Type/arity checking of all definitions. Reports into \p Diags.
  bool validate(DiagnosticEngine &Diags) const;

  /// Does the definition of \p Rel reference \p Target (transitively,
  /// through defined relations)?
  bool dependsOn(RelId Rel, RelId Target) const;

  /// Appends every relation applied anywhere inside \p F (with
  /// repetition; callers dedupe). The one formula walker for dependency
  /// collection — the parallel scheduler's needs analysis uses it too.
  void collectRels(const Formula &F, std::vector<RelId> &Out) const;

  /// Renders the whole system in a MUCKE-like concrete syntax.
  std::string print() const;
  std::string printFormula(const Formula &F) const;

private:
  Formula *make(FormulaKind Kind);
  bool validateFormula(const Formula &F, DiagnosticEngine &Diags,
                       const std::string &Context) const;

  std::vector<Domain> Domains;
  std::vector<Var> Vars;
  std::vector<Relation> Rels;
  std::vector<std::unique_ptr<Formula>> Arena;
  std::map<std::string, RelId> RelIds;
  DomainId BoolDom = 0;

public:
  System() { BoolDom = addDomain("bool", 2); }
  /// Looks up a relation id by name; asserts existence.
  RelId relId(const std::string &Name) const {
    auto It = RelIds.find(Name);
    assert(It != RelIds.end() && "unknown relation");
    return It->second;
  }
  bool hasRel(const std::string &Name) const { return RelIds.count(Name); }
};

//===----------------------------------------------------------------------===//
// Dependency analysis
//===----------------------------------------------------------------------===//

/// How the evaluator iterates equations to their fixed points.
enum class EvalStrategy {
  /// The paper's Section-3 `Evaluate` semantics, literally: every round
  /// re-evaluates the whole body under the current interpretation.
  Naive,
  /// Semi-naive (delta-driven) evaluation: per round, distributive
  /// disjuncts are joined only against the newly discovered frontier
  /// (`Delta = New \ Old`); non-distributive disjuncts fall back to full
  /// re-evaluation, and non-monotone or `nu` equations fall back to the
  /// naive scheme wholesale. Produces the identical per-round value
  /// sequence (hence identical iteration counts, early stops, and witness
  /// rings) for every system the naive scheme solves.
  SemiNaive,
};

const char *strategyName(EvalStrategy S);

/// Which Coudert–Madre generalized cofactor the evaluator applies to the
/// non-frontier operand of narrow-round relational products. All three
/// settings produce bit-identical results (`f ↓ c & c == f & c` for both
/// cofactors); the knob exists for the restrict-vs-constrain A/B the
/// frontier product invites: `constrain` simplifies maximally but may grow
/// the operand's support, `restrict` never grows the support but
/// simplifies less.
enum class CofactorMode {
  Off,       ///< Plain relational product.
  Constrain, ///< `Bdd::constrain` (maximal simplification; the default).
  Restrict,  ///< `Bdd::restrict` (support never grows).
};

/// Short stable name ("off", "constrain", "restrict").
const char *cofactorModeName(CofactorMode M);
/// Parses a `cofactorModeName` string; false when \p Name is none of them.
bool parseCofactorMode(const std::string &Name, CofactorMode &Out);

/// Counters for the narrow-round generalized-cofactor rewrites (the
/// restrict-vs-constrain A/B of the frontier product). Support sizes are
/// summed over applications so drivers can report the average growth
/// factor of the cofactored operand.
struct CofactorStats {
  uint64_t Applications = 0;
  uint64_t SupportBefore = 0; ///< Sum of operand support sizes, pre.
  uint64_t SupportAfter = 0;  ///< Sum of operand support sizes, post.
};

/// Per-relation evaluation statistics (lives here rather than next to the
/// evaluator so result structs up the stack can carry it without seeing
/// the BDD package).
struct RelStats {
  uint64_t Iterations = 0;  ///< Outer Tarski rounds (accumulated).
  uint64_t Evaluations = 0; ///< Full fixpoint solves (nested re-solves).
  uint64_t DeltaRounds = 0; ///< Rounds run in frontier (delta) mode.
  size_t FinalNodes = 0;    ///< Dag size of the last computed value.
};

/// The relation dependency graph of an equation system, with its SCC
/// condensation and occurrence-polarity summary. Built once per `System`
/// (after all `define` calls) and consulted by the evaluator for
/// scheduling and for the semi-naive applicability checks.
class DependencyGraph {
public:
  explicit DependencyGraph(const System &Sys);

  /// Defined relations referenced directly by \p Rel's body (deduplicated;
  /// input relations are not dependencies). Empty for input relations.
  const std::vector<RelId> &directDeps(RelId Rel) const {
    return Deps[Rel];
  }

  /// Does \p Rel's value (transitively) depend on \p Target?
  bool reaches(RelId Rel, RelId Target) const;

  /// Is \p Rel part of a dependency cycle (including self-loops)?
  bool isRecursive(RelId Rel) const { return Recursive[Rel]; }

  /// Index of \p Rel's SCC in the condensation. SCCs are numbered in
  /// *reverse* topological order: sccOf(R) > sccOf(T) whenever R depends
  /// on T across SCCs, so solving SCC 0, 1, ... visits callees first.
  unsigned sccOf(RelId Rel) const { return SccIndex[Rel]; }

  /// Members of each SCC, indexed by SCC number (callees-first order).
  const std::vector<std::vector<RelId>> &sccs() const { return SccMembers; }

  /// The defined relations \p Rel transitively depends on (excluding
  /// \p Rel's own SCC), SCC-by-SCC in topological (callees-first) order —
  /// the schedule the evaluator pre-solves before iterating \p Rel.
  std::vector<RelId> scheduleFor(RelId Rel) const;

  /// No occurrence of \p Rel inside any dependency cycle through \p Rel
  /// sits under a negation: the self-iteration of \p Rel is monotone, so
  /// its Tarski sequence is an increasing chain and union-accumulating
  /// semi-naive evaluation is exact. (Forall preserves monotonicity and
  /// does not count; conservatively, *any* negative edge on a cycle
  /// through \p Rel disqualifies it.)
  bool isMonotoneSelf(RelId Rel) const { return MonotoneSelf[Rel]; }

private:
  const System &Sys;
  std::vector<std::vector<RelId>> Deps;
  /// NegativeEdge[R] = targets R's body applies under an odd number of
  /// negations (directly or anywhere below a Not).
  std::vector<std::vector<RelId>> NegDeps;
  std::vector<bool> Recursive;
  std::vector<bool> MonotoneSelf;
  std::vector<unsigned> SccIndex;
  std::vector<std::vector<RelId>> SccMembers;
  /// Reachability closure, as per-relation sorted vectors.
  std::vector<std::vector<RelId>> Closure;
};

/// Number of condensation SCCs containing at least one *defined*
/// relation — the width the DAG scheduler has to play with. Input-only
/// relations cost no fixpoint work, so they are excluded; what remains is
/// the count of independent solve units (`condensation_width` in stats).
unsigned definedCondensationWidth(const System &Sys,
                                  const DependencyGraph &Deps);

/// Classification of one top-level disjunct of a defining equation, with
/// respect to the relation being iterated.
enum class DisjunctKind {
  /// No transitive dependency on the iterated relation: its value is fixed
  /// for the whole solve, so it is evaluated once, on the first round.
  NonRecursive,
  /// Every subformula depending on the iterated relation is a direct,
  /// positive application of it reached through And/Or/Exists only — the
  /// disjunct distributes over union in each occurrence, so per round it
  /// is joined once per occurrence against the frontier.
  Distributive,
  /// Anything else (occurrences under Not/Forall, or dependencies routed
  /// through other defined relations that must be re-solved): re-evaluated
  /// in full every round.
  Opaque,
};

/// One delta-able self-application inside a distributive disjunct.
struct SelfOccurrence {
  const Formula *App = nullptr;
  /// All nodes from the disjunct root down to (and including) App. When
  /// this occurrence reads the frontier, `Or` nodes on the path evaluate
  /// only their on-path child: sibling branches either carry no
  /// self-application (their value is constant and already accumulated) or
  /// carry other occurrences (covered by their own frontier passes), so
  /// pruning them keeps the round exact while skipping re-evaluation.
  std::vector<const Formula *> Path;
};

struct DisjunctPlan {
  const Formula *Node = nullptr;
  DisjunctKind Kind = DisjunctKind::Opaque;
  /// The direct self-applications, for Distributive disjuncts.
  std::vector<SelfOccurrence> Occurrences;
};

/// The evaluation plan for one equation: whether union-accumulating
/// semi-naive iteration applies at all, and the per-disjunct schedule.
struct EquationPlan {
  /// False for `nu` equations and for non-monotone systems — the evaluator
  /// must fall back to the naive scheme for this relation.
  bool SemiNaive = false;
  std::vector<DisjunctPlan> Disjuncts;

  unsigned count(DisjunctKind K) const {
    unsigned N = 0;
    for (const DisjunctPlan &D : Disjuncts)
      N += D.Kind == K;
    return N;
  }
};

/// Plans the semi-naive evaluation of \p Rel's equation (top-level `Or`
/// children are the disjuncts; any other body is one disjunct).
EquationPlan planEquation(const System &Sys, const DependencyGraph &G,
                          RelId Rel);

} // namespace fpc
} // namespace getafix

#endif // GETAFIX_FPCALC_CALCULUS_H
