//===- Parser.h - Boolean program parser ------------------------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Boolean-program grammar of Section 2
/// (with `assume`, `goto`, labels) and the Section-5 concurrent extension
/// (`shared decl ...; thread ... end ...`). Parsing is followed by a
/// semantic-analysis pass (Sema.h) that resolves names and checks arities;
/// `parseProgram` / `parseConcurrentProgram` run both.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BP_PARSER_H
#define GETAFIX_BP_PARSER_H

#include "bp/Ast.h"
#include "bp/Lexer.h"

#include <memory>
#include <string_view>

namespace getafix {
namespace bp {

/// Parses and analyzes a sequential Boolean program. Returns null when
/// \p Diags has errors.
std::unique_ptr<Program> parseProgram(std::string_view Input,
                                      DiagnosticEngine &Diags);

/// Parses and analyzes a concurrent Boolean program (leading `shared decl`).
std::unique_ptr<ConcurrentProgram>
parseConcurrentProgram(std::string_view Input, DiagnosticEngine &Diags);

namespace detail {

/// The parser proper; exposed for unit tests that exercise error recovery.
class Parser {
public:
  Parser(std::string_view Input, DiagnosticEngine &Diags)
      : Lex(Input, Diags), Diags(Diags) {
    Cur = Lex.next();
    Ahead = Lex.next();
  }

  std::unique_ptr<Program> parseSequential();
  std::unique_ptr<ConcurrentProgram> parseConcurrent();

private:
  // Token plumbing.
  void bump();
  bool expect(TokenKind Kind, const char *Context);
  bool consumeIf(TokenKind Kind);

  // Grammar productions.
  void parseDeclList(std::vector<std::string> &Names);
  std::unique_ptr<Program> parseProgramBody(TokenKind EndKind);
  std::unique_ptr<Proc> parseProc();
  void parseStmtList(std::vector<StmtPtr> &Out,
                     std::initializer_list<TokenKind> Terminators);
  StmtPtr parseStmt();
  StmtPtr parseSimpleStmt();
  ExprPtr parseExpr();
  ExprPtr parseAndExpr();
  ExprPtr parseUnaryExpr();
  ExprPtr parsePrimaryExpr();
  void parseExprList(std::vector<ExprPtr> &Out);
  void skipToRecoveryPoint();

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Cur;
  Token Ahead;
};

} // namespace detail
} // namespace bp
} // namespace getafix

#endif // GETAFIX_BP_PARSER_H
