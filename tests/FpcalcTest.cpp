//===- FpcalcTest.cpp - Fixed-point calculus tests -------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "fpcalc/Calculus.h"
#include "fpcalc/Evaluator.h"

#include <gtest/gtest.h>

using namespace getafix;
using namespace getafix::fpc;

namespace {

/// Fixture with a small graph-reachability system: the Section-3 example
///   Reach(u) = Init(u) | exists x. (Reach(x) & Trans(x, u)).
struct GraphFixture {
  System Sys;
  DomainId Node;
  VarId U, X;
  RelId Init, Trans, Reach;

  explicit GraphFixture(uint64_t NumNodes = 8) {
    Node = Sys.addDomain("Node", NumNodes);
    U = Sys.addVar("u", Node);
    X = Sys.addVar("x", Node);
    Init = Sys.declareRel("Init", {U});
    Trans = Sys.declareRel("Trans", {X, U});
    Reach = Sys.declareRel("Reach", {U});
    Sys.define(Reach,
               Sys.mkOr({Sys.applyVars(Init, {U}),
                         Sys.exists({X}, Sys.mkAnd({
                                             Sys.applyVars(Reach, {X}),
                                             Sys.applyVars(Trans, {X, U}),
                                         }))}));
  }

  /// Solves reachability for the given edge list and initial node.
  std::vector<bool> solve(const std::vector<std::pair<unsigned, unsigned>>
                              &Edges,
                          unsigned InitNode, uint64_t NumNodes = 8) {
    BddManager Mgr;
    Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
    Ev.bindInput(Init, Ev.encodeEqConst(U, InitNode));
    Bdd TransBdd = Mgr.zero();
    for (auto [From, To] : Edges)
      TransBdd |= Ev.encodeEqConst(X, From) & Ev.encodeEqConst(U, To);
    Ev.bindInput(Trans, TransBdd);
    Bdd Result = Ev.evaluate(Reach).Value;
    std::vector<bool> Out;
    for (unsigned N = 0; N < NumNodes; ++N)
      Out.push_back(!(Result & Ev.encodeEqConst(U, N)).isZero());
    return Out;
  }
};

} // namespace

TEST(CalculusTest, DomainBits) {
  Domain D1{"d", 1, 0};
  EXPECT_EQ(D1.numBits(), 1u);
  Domain D2{"d", 2, 0};
  EXPECT_EQ(D2.numBits(), 1u);
  Domain D5{"d", 5, 0};
  EXPECT_EQ(D5.numBits(), 3u);
  Domain Wide{"d", ~uint64_t(0), 100};
  EXPECT_EQ(Wide.numBits(), 100u);
}

TEST(CalculusTest, ValidateCatchesArityAndDomainErrors) {
  System Sys;
  DomainId D3 = Sys.addDomain("three", 3);
  VarId A = Sys.addVar("a", D3);
  VarId B = Sys.addVar("b", Sys.boolDomain());
  RelId R = Sys.declareRel("R", {A});

  // Wrong arity.
  RelId Bad1 = Sys.declareRel("Bad1", {B});
  Sys.define(Bad1, Sys.apply(R, {Term::var(A), Term::var(A)}));
  // Wrong argument domain.
  RelId Bad2 = Sys.declareRel("Bad2", {B});
  Sys.define(Bad2, Sys.apply(R, {Term::var(B)}));
  // Constant outside the domain.
  RelId Bad3 = Sys.declareRel("Bad3", {A});
  Sys.define(Bad3, Sys.apply(R, {Term::constant(7)}));
  // Equality across domains.
  RelId Bad4 = Sys.declareRel("Bad4", {A, B});
  Sys.define(Bad4, Sys.eqVar(A, B));

  DiagnosticEngine Diags;
  EXPECT_FALSE(Sys.validate(Diags));
  EXPECT_GE(Diags.errorCount(), 4u);
}

TEST(CalculusTest, DependsOnIsTransitive) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId A = Sys.declareRel("A", {X});
  RelId B = Sys.declareRel("B", {X});
  RelId C = Sys.declareRel("C", {X});
  RelId In = Sys.declareRel("In", {X});
  Sys.define(A, Sys.applyVars(B, {X}));
  Sys.define(B, Sys.applyVars(C, {X}));
  Sys.define(C, Sys.applyVars(In, {X}));
  EXPECT_TRUE(Sys.dependsOn(A, C));
  EXPECT_TRUE(Sys.dependsOn(A, In));
  EXPECT_FALSE(Sys.dependsOn(C, A));
}

TEST(CalculusTest, PrintRendersMuckeStyle) {
  GraphFixture G;
  std::string Text = G.Sys.print();
  EXPECT_NE(Text.find("mu bool Reach(Node u)"), std::string::npos);
  EXPECT_NE(Text.find("input bool Trans(Node x, Node u)"),
            std::string::npos);
  EXPECT_NE(Text.find("exists Node x."), std::string::npos);
}

TEST(EvaluatorTest, GraphReachabilityChain) {
  GraphFixture G;
  // 0 -> 1 -> 2 -> 3, plus an unreachable component 5 -> 6.
  auto R = G.solve({{0, 1}, {1, 2}, {2, 3}, {5, 6}}, 0);
  std::vector<bool> Expected{true, true, true, true,
                             false, false, false, false};
  EXPECT_EQ(R, Expected);
}

TEST(EvaluatorTest, GraphReachabilityCycle) {
  GraphFixture G;
  auto R = G.solve({{1, 2}, {2, 3}, {3, 1}}, 2);
  EXPECT_FALSE(R[0]);
  EXPECT_TRUE(R[1] && R[2] && R[3]);
}

TEST(EvaluatorTest, EarlyStopTerminatesBeforeFullFixpoint) {
  GraphFixture G;
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  Ev.bindInput(G.Init, Ev.encodeEqConst(G.U, 0));
  // A long chain 0 -> 1 -> ... -> 7.
  Bdd TransBdd = Mgr.zero();
  for (unsigned N = 0; N + 1 < 8; ++N)
    TransBdd |= Ev.encodeEqConst(G.X, N) & Ev.encodeEqConst(G.U, N + 1);
  Ev.bindInput(G.Trans, TransBdd);

  Bdd Stop = Ev.encodeEqConst(G.U, 2);
  EvalOptions Opts;
  Opts.EarlyStop = &Stop;
  EvalResult R = Ev.evaluate(G.Reach, Opts);
  EXPECT_TRUE(R.EarlyStopped);
  EXPECT_FALSE((R.Value & Stop).isZero());
  // Node 7 must not have been computed yet.
  EXPECT_TRUE((R.Value & Ev.encodeEqConst(G.U, 7)).isZero());
}

TEST(EvaluatorTest, MaxIterationsIsHonored) {
  GraphFixture G;
  BddManager Mgr;
  Evaluator Ev(G.Sys, Mgr, Layout::sequential(G.Sys, Mgr));
  Ev.bindInput(G.Init, Ev.encodeEqConst(G.U, 0));
  Bdd TransBdd = Mgr.zero();
  for (unsigned N = 0; N + 1 < 8; ++N)
    TransBdd |= Ev.encodeEqConst(G.X, N) & Ev.encodeEqConst(G.U, N + 1);
  Ev.bindInput(G.Trans, TransBdd);
  EvalOptions Opts;
  Opts.MaxIterations = 2;
  EvalResult R = Ev.evaluate(G.Reach, Opts);
  EXPECT_TRUE(R.HitIterationLimit);
}

TEST(EvaluatorTest, ConstantRelationArguments) {
  System Sys;
  DomainId D4 = Sys.addDomain("four", 4);
  VarId A = Sys.addVar("a", D4);
  VarId B = Sys.addVar("b", D4);
  RelId Pair = Sys.declareRel("Pair", {A, B});
  RelId Sel = Sys.declareRel("Sel", {B});
  Sys.define(Sel, Sys.apply(Pair, {Term::constant(2), Term::var(B)}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd PairBdd = (Ev.encodeEqConst(A, 2) & Ev.encodeEqConst(B, 3)) |
                (Ev.encodeEqConst(A, 1) & Ev.encodeEqConst(B, 0));
  Ev.bindInput(Pair, PairBdd);
  Bdd R = Ev.evaluate(Sel).Value;
  EXPECT_EQ(R, Ev.encodeEqConst(B, 3));
}

TEST(EvaluatorTest, RepeatedArgumentDiagonal) {
  System Sys;
  DomainId D4 = Sys.addDomain("four", 4);
  VarId A = Sys.addVar("a", D4);
  VarId B = Sys.addVar("b", D4);
  RelId Pair = Sys.declareRel("Pair", {A, B});
  RelId Diag = Sys.declareRel("Diag", {A});
  Sys.define(Diag, Sys.apply(Pair, {Term::var(A), Term::var(A)}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd PairBdd = (Ev.encodeEqConst(A, 2) & Ev.encodeEqConst(B, 2)) |
                (Ev.encodeEqConst(A, 1) & Ev.encodeEqConst(B, 3));
  Ev.bindInput(Pair, PairBdd);
  EXPECT_EQ(Ev.evaluate(Diag).Value, Ev.encodeEqConst(A, 2));
}

TEST(EvaluatorTest, NestedRelationsReEvaluatedPerOuterRound) {
  // Frontier-style system: Outer iterates; Inner depends on Outer and is
  // re-solved every round (the Section-3 algorithmic semantics). Checks
  // the non-monotone "newly discovered" idiom used by EF-opt.
  System Sys;
  DomainId Node = Sys.addDomain("Node", 8);
  VarId U = Sys.addVar("u", Node);
  VarId X = Sys.addVar("x", Node);
  RelId Trans = Sys.declareRel("Trans", {X, U});
  RelId Init = Sys.declareRel("Init", {U});
  RelId Outer = Sys.declareRel("Outer", {U});
  RelId Step = Sys.declareRel("Step", {U});
  // Step(u) = exists x. Outer(x) & Trans(x,u); Outer = Init | Step.
  Sys.define(Step, Sys.exists({X}, Sys.mkAnd({Sys.applyVars(Outer, {X}),
                                              Sys.applyVars(Trans, {X, U})})));
  Sys.define(Outer, Sys.mkOr({Sys.applyVars(Init, {U}),
                              Sys.applyVars(Step, {U})}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(Init, Ev.encodeEqConst(U, 0));
  Bdd TransBdd = Mgr.zero();
  for (unsigned N = 0; N + 1 < 5; ++N)
    TransBdd |= Ev.encodeEqConst(X, N) & Ev.encodeEqConst(U, N + 1);
  Ev.bindInput(Trans, TransBdd);

  Bdd R = Ev.evaluate(Outer).Value;
  for (unsigned N = 0; N < 5; ++N)
    EXPECT_FALSE((R & Ev.encodeEqConst(U, N)).isZero()) << N;
  EXPECT_TRUE((R & Ev.encodeEqConst(U, 6)).isZero());
  // Step must have been re-evaluated once per outer round.
  EXPECT_GE(Ev.stats().at("Step").Evaluations, 5u);
}

TEST(EvaluatorTest, NonMonotoneNegationUnderAlgorithmicSemantics) {
  // Fresh(u) = Outer(u) & !Done(u); Done tracks the previous round via a
  // second relation. Not a least fixed-point — but the operational
  // semantics assigns it a meaning, which we pin here: with Done == Init,
  // Fresh is exactly Outer \ Init once Outer converges.
  System Sys;
  DomainId Node = Sys.addDomain("Node", 8);
  VarId U = Sys.addVar("u", Node);
  VarId X = Sys.addVar("x", Node);
  RelId Trans = Sys.declareRel("Trans", {X, U});
  RelId Init = Sys.declareRel("Init", {U});
  RelId Outer = Sys.declareRel("Outer", {U});
  RelId Fresh = Sys.declareRel("Fresh", {U});
  Sys.define(Outer,
             Sys.mkOr({Sys.applyVars(Init, {U}),
                       Sys.exists({X}, Sys.mkAnd({
                                           Sys.applyVars(Outer, {X}),
                                           Sys.applyVars(Trans, {X, U}),
                                       }))}));
  Sys.define(Fresh, Sys.mkAnd({Sys.applyVars(Outer, {U}),
                               Sys.mkNot(Sys.applyVars(Init, {U}))}));

  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(Init, Ev.encodeEqConst(U, 3));
  Ev.bindInput(Trans,
               Ev.encodeEqConst(X, 3) & Ev.encodeEqConst(U, 4));
  Bdd R = Ev.evaluate(Fresh).Value;
  EXPECT_EQ(R, Ev.encodeEqConst(U, 4));
}

TEST(EvaluatorTest, DomainConstraintExcludesPadding) {
  System Sys;
  DomainId D5 = Sys.addDomain("five", 5); // 3 bits, values 0..4.
  VarId A = Sys.addVar("a", D5);
  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Bdd Valid = Ev.domainConstraint(A);
  EXPECT_DOUBLE_EQ(Valid.satCount(Mgr.numVars()), 5.0);
  for (uint64_t V = 0; V < 5; ++V)
    EXPECT_FALSE((Valid & Ev.encodeEqConst(A, V)).isZero());
}

TEST(EvaluatorTest, InterleavedLayoutKeepsCopiesAdjacent) {
  System Sys;
  DomainId D16 = Sys.addDomain("d16", 16);
  VarId A = Sys.addVar("a", D16);
  VarId B = Sys.addVar("b", D16);
  BddManager Mgr;
  Layout L = Layout::interleaved(Sys, Mgr, {{A, B}});
  for (unsigned Bit = 0; Bit < 4; ++Bit) {
    EXPECT_EQ(L.bits(A)[Bit] + 1, L.bits(B)[Bit])
        << "copies must sit on adjacent levels";
  }
}

TEST(EvaluatorTest, ZeroArityRelation) {
  System Sys;
  VarId X = Sys.addVar("x", Sys.boolDomain());
  RelId In = Sys.declareRel("In", {X});
  RelId Any = Sys.declareRel("Any", {});
  Sys.define(Any, Sys.exists({X}, Sys.applyVars(In, {X})));
  BddManager Mgr;
  Evaluator Ev(Sys, Mgr, Layout::sequential(Sys, Mgr));
  Ev.bindInput(In, Mgr.zero());
  EXPECT_TRUE(Ev.evaluate(Any).Value.isZero());
  Ev.invalidate();
  Ev.bindInput(In, Ev.encodeEqConst(X, 1));
  EXPECT_TRUE(Ev.evaluate(Any).Value.isOne());
}
