//===- SeqReach.h - Sequential reachability algorithms ----------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's three algorithms for reachability in recursive Boolean
/// programs, each *written as a fixed-point formula* (the paper's central
/// thesis) and solved by the fpcalc evaluator:
///
///   - `SummarySimple`   — Section 4.1: summaries from *all* entries
///     (sound/complete but explores unreachable entries), completed with a
///     reachable-entries fixpoint so arbitrary targets can be queried.
///   - `EntryForward`    — Section 4.2: init-restricted summaries with the
///     entry-discovery clause; only reachable states are ever represented.
///   - `EntryForwardSplit` — Section 4.2's rewrite of the return clause
///     that splits `Return` into ReturnA/ReturnB so the two large summary
///     BDDs are each first conjoined with small relations (the Appendix
///     formula).
///   - `EntryForwardOpt` — Section 4.3: the frontier-restricted algorithm
///     with the `fr` mark bit and the non-monotone `Relevant` relation,
///     closing internal transitions per round (`New1`) and admitting one
///     round of calls/returns (`New2`).
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_REACH_SEQREACH_H
#define GETAFIX_REACH_SEQREACH_H

#include "bdd/Bdd.h"
#include "bp/Cfg.h"
#include "fpcalc/Calculus.h"

#include <cstdint>
#include <map>
#include <string>

namespace getafix {
namespace reach {

enum class SeqAlgorithm {
  SummarySimple,
  EntryForward,
  EntryForwardSplit,
  EntryForwardOpt,
};

const char *algorithmName(SeqAlgorithm Alg);

struct SeqOptions {
  SeqAlgorithm Alg = SeqAlgorithm::EntryForwardSplit;
  /// How the fixed-point solver iterates: semi-naive (delta-driven, the
  /// default) or the paper's literal naive semantics. Both produce the
  /// identical per-round value sequence; the knob exists for ablation.
  fpc::EvalStrategy Strategy = fpc::EvalStrategy::SemiNaive;
  /// Stop iterating as soon as the target is found (the Appendix formula's
  /// early-termination disjunct, implemented at the solver level).
  bool EarlyStop = true;
  /// Cap on outer fixpoint rounds of the queried relation; 0 = unlimited.
  uint64_t MaxIterations = 0;
  /// Computed-cache size for the BDD manager (2^CacheBits entries).
  unsigned CacheBits = 18;
  /// Automatic garbage-collection threshold (live nodes); 0 disables.
  size_t GcThreshold = 1u << 22;
  /// Coudert–Madre care-set minimization of relational-product operands
  /// in narrow delta rounds. Results are bit-identical either way; the
  /// knob exists for ablation.
  bool ConstrainFrontier = true;
};

struct SeqResult {
  bool Reachable = false;
  bool TargetFound = true;   ///< False if the label did not exist.
  /// The solver stopped at SeqOptions::MaxIterations before converging;
  /// `Reachable` then only reflects the states found so far.
  bool HitIterationLimit = false;
  uint64_t Iterations = 0;   ///< Outer fixpoint rounds of the main relation.
  uint64_t DeltaRounds = 0;  ///< Rounds the main relation ran in delta mode.
  size_t SummaryNodes = 0;   ///< Dag size of the final summary BDD.
  size_t PeakLiveNodes = 0;  ///< Peak BDD nodes in the manager.
  uint64_t BddNodesCreated = 0;  ///< Total BDD nodes allocated.
  uint64_t BddCacheLookups = 0;  ///< Computed-cache probes.
  uint64_t BddCacheHits = 0;     ///< Computed-cache hits.
  /// Full BDD-manager counter snapshot (per-op cache hit/miss split,
  /// GC reclaim totals, peak nodes). The scalar fields above remain the
  /// common subset consumers already index.
  BddStats Bdd;
  double Seconds = 0.0;      ///< Wall-clock solve time (excludes parsing).
  /// Per-relation evaluator statistics, keyed by relation name.
  std::map<std::string, fpc::RelStats> Relations;
};

/// Checks whether (ProcId, Pc) is reachable in \p Cfg's program.
SeqResult checkReachability(const bp::ProgramCfg &Cfg, unsigned ProcId,
                            unsigned Pc, const SeqOptions &Opts);

/// Checks whether the statement labelled \p Label is reachable.
SeqResult checkReachabilityOfLabel(const bp::ProgramCfg &Cfg,
                                   const std::string &Label,
                                   const SeqOptions &Opts);

/// Renders the fixed-point equation system the given algorithm would solve
/// for \p Cfg (the paper's "one page of formulae"), for documentation and
/// golden tests.
std::string formulaText(const bp::ProgramCfg &Cfg, SeqAlgorithm Alg);

} // namespace reach
} // namespace getafix

#endif // GETAFIX_REACH_SEQREACH_H
