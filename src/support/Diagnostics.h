//===- Diagnostics.h - Source locations and error reporting ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight diagnostics plumbing shared by the Boolean-program and
/// fixed-point-calculus front-ends. We do not use exceptions (LLVM rules);
/// parsers collect diagnostics into a DiagnosticEngine and callers check
/// hasErrors() before consuming the result.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SUPPORT_DIAGNOSTICS_H
#define GETAFIX_SUPPORT_DIAGNOSTICS_H

#include <cassert>
#include <string>
#include <vector>

namespace getafix {

/// A position in an input buffer, 1-based; line 0 means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while processing one input.
class DiagnosticEngine {
public:
  void report(DiagKind Kind, SourceLoc Loc, std::string Message) {
    if (Kind == DiagKind::Error)
      ++NumErrors;
    Diags.push_back(Diagnostic{Kind, Loc, std::move(Message)});
  }

  void error(SourceLoc Loc, std::string Message) {
    report(DiagKind::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagKind::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagKind::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line, for CLI output and tests.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace getafix

#endif // GETAFIX_SUPPORT_DIAGNOSTICS_H
