//===- bluetooth.cpp - Concurrent reachability on the Bluetooth model -----===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section-6.2 walkthrough: build the Windows NT Bluetooth driver model
/// (adder and stopper threads over shared pendingIo/stopping state) and
/// sweep the context-switch bound through the Solver facade, printing the
/// Figure-3 style rows: whether the assertion violation is reachable, the
/// size of the reachable set, and the solve time.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "gen/Workloads.h"

#include <cstdio>

using namespace getafix;

int main() {
  struct Config {
    unsigned Adders, Stoppers;
  } Configs[] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}};

  for (auto [Adders, Stoppers] : Configs) {
    std::printf("--- %u adder(s), %u stopper(s) ---\n", Adders, Stoppers);
    // Parse once per configuration; the k-sweep reuses the built CFGs.
    DiagnosticEngine Diags;
    auto Conc = bp::parseConcurrentProgram(
        gen::bluetoothModel(Adders, Stoppers), Diags);
    if (!Conc) {
      std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
      return 1;
    }
    auto Cfgs = conc::buildThreadCfgs(*Conc);
    Query Q = Query::fromConcurrent(*Conc, &Cfgs).target("ERR");
    for (unsigned K = 1; K <= 4; ++K) {
      SolverOptions Opts;
      Opts.Engine = "conc";
      Opts.ContextBound = K;
      SolveResult R = Solver::solve(Q, Opts);
      if (!R.ok()) {
        std::fprintf(stderr, "solve failed: %s\n", R.Error.c_str());
        return 1;
      }
      std::printf("  k=%u  reachable=%-3s  reach-set=%8.0f tuples  "
                  "%.2fs\n",
                  K, R.Reachable ? "YES" : "no", R.ReachStates, R.Seconds);
    }
  }
  return 0;
}
