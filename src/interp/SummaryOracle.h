//===- SummaryOracle.h - Exact explicit summary reachability ----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact, terminating, explicit-state reachability engine for recursive
/// Boolean programs built on the classical summary/tabulation algorithm
/// (Sharir–Pnueli / RHPS path edges + summary edges — the algorithm inside
/// Bebop). It explores only states reachable from main's entry, so it is
/// simultaneously:
///
///   - the ground-truth oracle the property tests compare the symbolic
///     engines against, and
///   - the explicit core of the "Bebop" baseline column of Figure 2.
///
/// Valuations are bitmasks, so programs must have at most 32 globals and 32
/// local slots per procedure, and at most 20 nondet choice bits per edge.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_INTERP_SUMMARY_ORACLE_H
#define GETAFIX_INTERP_SUMMARY_ORACLE_H

#include "bp/Cfg.h"
#include "interp/Eval.h"
#include "support/ResourceGovernor.h"

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

namespace getafix {
namespace interp {

/// Result of an oracle run.
struct OracleResult {
  bool Reachable = false;
  uint64_t PathEdges = 0;   ///< Distinct (entry, state) pairs discovered.
  uint64_t Summaries = 0;   ///< Distinct entry-to-exit summaries.
};

/// Exact reachability: is (ProcId, Pc) reachable in \p Cfg's program?
///
/// When \p TargetProcId is ~0u the engine runs to completion and reports
/// statistics only (Reachable stays false).
///
/// \p Governor, when non-null, is polled periodically over the worklist
/// (the oracle is enumerative — no BDD allocations fire its probes, so it
/// checks explicitly) and a tripped limit propagates as
/// support::ResourceInterrupt.
OracleResult summaryReachability(const bp::ProgramCfg &Cfg,
                                 unsigned TargetProcId = ~0u,
                                 unsigned TargetPc = 0,
                                 support::ResourceGovernor *Governor = nullptr);

/// Convenience: reachability of a statement label. Returns false if the
/// label does not exist.
OracleResult summaryReachabilityOfLabel(const bp::ProgramCfg &Cfg,
                                        const std::string &Label,
                                        support::ResourceGovernor *Governor = nullptr);

} // namespace interp
} // namespace getafix

#endif // GETAFIX_INTERP_SUMMARY_ORACLE_H
