#!/usr/bin/env python3
"""Bench-trajectory gate: compare fresh BENCH_*.json reports against a
baseline and fail on wall-clock regressions.

Usage: check_trajectory.py BASELINE.json CURRENT.json [MORE.json ...]
       [--threshold 0.25] [--min-seconds 0.01] [--mem-threshold 0.25]

All CURRENT reports are merged (rows keyed by (section, case, variant);
sections keep the reports disjoint), so the baseline can be one committed
file covering the regression suite and the ablation smoke. A row
regresses when its `seconds` exceeds the baseline by more than THRESHOLD
(relative) AND both sides are above MIN_SECONDS (sub-10ms rows — the
whole regression feature suite — are timer noise on shared CI runners;
they participate through the verdict check instead). Rows carrying
`peak_live_nodes` (retained-node high-water marks; deterministic, so no
noise floor) additionally fail when the count exceeds the baseline by
more than MEM_THRESHOLD — the memory companion to the wall gate, added
so a session-retention regression can't hide behind flat wall-clock.
Verdict drift
(`reachable` differing from the baseline) fails unconditionally — the
trajectory gate doubles as a cross-run correctness diff. New rows (no
baseline entry) and removed rows only warn: adding or retiring benchmarks
must not require regenerating the baseline in the same PR.

Exit codes: 0 ok, 1 regression/drift, 2 usage or malformed input.
"""

import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in report.get("rows", []):
        key = (row.get("section"), row.get("case"), row.get("variant"))
        rows[key] = row
    return rows


def main(argv):
    rest = argv[1:]
    args = []
    threshold = 0.25
    min_seconds = 0.01
    mem_threshold = 0.25
    i = 0
    while i < len(rest):
        if rest[i] in ("--threshold", "--min-seconds", "--mem-threshold"):
            if i + 1 >= len(rest):
                print(f"error: {rest[i]} needs a value", file=sys.stderr)
                return 2
            value = float(rest[i + 1])
            if rest[i] == "--threshold":
                threshold = value
            elif rest[i] == "--min-seconds":
                min_seconds = value
            else:
                mem_threshold = value
            i += 2
        else:
            args.append(rest[i])
            i += 1
    if len(args) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline = load_rows(args[0])
    current = {}
    for path in args[1:]:
        current.update(load_rows(path))
    failures = []
    checked = 0
    mem_checked = 0

    for key, row in sorted(current.items()):
        base = baseline.get(key)
        name = "/".join(str(k) for k in key)
        if base is None:
            print(f"note: new row (no baseline): {name}")
            continue
        if "reachable" in base and row.get("reachable") != base.get(
            "reachable"
        ):
            failures.append(
                f"VERDICT DRIFT {name}: baseline "
                f"{base.get('reachable')} vs current {row.get('reachable')}"
            )
            continue
        bn, cn = base.get("peak_live_nodes"), row.get("peak_live_nodes")
        if bn and cn:
            mem_checked += 1
            if cn > bn * (1.0 + mem_threshold):
                failures.append(
                    f"MEMORY REGRESSION {name}: peak_live_nodes "
                    f"{bn} -> {cn} (+{(cn / bn - 1) * 100:.0f}%, "
                    f"threshold {mem_threshold * 100:.0f}%)"
                )
                continue
        bs, cs = base.get("seconds"), row.get("seconds")
        if bs is None or cs is None:
            continue
        checked += 1
        if cs > min_seconds and bs > min_seconds and cs > bs * (
            1.0 + threshold
        ):
            failures.append(
                f"REGRESSION {name}: {bs:.3f}s -> {cs:.3f}s "
                f"(+{(cs / bs - 1) * 100:.0f}%, threshold "
                f"{threshold * 100:.0f}%)"
            )

    for key in sorted(set(baseline) - set(current)):
        print(f"note: row removed since baseline: {'/'.join(map(str, key))}")

    print(
        f"trajectory: {checked} wall rows and {mem_checked} memory rows "
        f"compared against baseline"
    )
    if failures:
        for f in failures:
            print(f, file=sys.stderr)
        return 1
    print("trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
