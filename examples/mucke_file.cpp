//===- mucke_file.cpp - Algorithms as exchangeable text -------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1 of the paper shows Getafix emitting a "MUCKE file": the input
/// program's template relations plus the reachability algorithm, all as one
/// textual fixed-point formula. This example regenerates that artifact
/// through the facade — the complete equation system the `ef-split` engine
/// would solve over a small program — and then feeds the text back through
/// the calculus parser to show that the algorithms really are exchangeable
/// as plain text (print -> parse -> print is a fixed point).
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "fpcalc/Parser.h"

#include <cstdio>

using namespace getafix;

int main() {
  const char *Source = R"(
decl g;
main() begin
  decl a;
  a := toggle(g);
  if (a) then ERR: skip; else skip; fi
  return;
end
toggle(x) begin
  g := !g;
  return !x;
end
)";

  // The "MUCKE file": input-relation declarations plus the one-page
  // algorithm formula (here Section 4.2's entry-forward algorithm).
  SolverOptions Opts;
  Opts.Engine = "ef-split";
  std::string Error;
  std::string Text = Solver::formulaText(
      Query::fromSource(Source).target("ERR"), Opts, &Error);
  if (Text.empty()) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }
  std::printf("%s", Text.c_str());

  // Round-trip through the textual front-end.
  DiagnosticEngine ParseDiags;
  auto Sys = fpc::parseSystem(Text, ParseDiags);
  if (!Sys) {
    std::fprintf(stderr, "re-parse failed:\n%s", ParseDiags.str().c_str());
    return 1;
  }
  bool Stable = Sys->print() == Text;
  std::printf("\n// re-parsed: %u domains, %u relations; round-trip %s\n",
              Sys->numDomains(), Sys->numRels(),
              Stable ? "stable" : "UNSTABLE");
  return Stable ? 0 : 1;
}
