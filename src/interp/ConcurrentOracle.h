//===- ConcurrentOracle.h - Explicit bounded-context search -----*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force explicit-state engine for k-bounded context-switching
/// reachability of concurrent Boolean programs (Section 5 semantics:
/// interleaved threads over shared globals, a context switch may happen
/// between any two steps, threads start lazily with nondeterministic
/// locals). Because recursion makes the explicit configuration space
/// infinite, the search carries stack-depth and configuration-count bounds:
/// within those bounds the answer "reachable" is exact, and "unreachable"
/// is exact only when the search finished without hitting a bound (the
/// `Exhaustive` flag). Property tests use it as ground truth on small
/// programs against the symbolic fixed-point algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_INTERP_CONCURRENT_ORACLE_H
#define GETAFIX_INTERP_CONCURRENT_ORACLE_H

#include "bp/Cfg.h"

#include <cstdint>
#include <vector>

namespace getafix {
namespace interp {

struct ConcurrentQuery {
  unsigned Thread = 0; ///< Thread index owning the target.
  unsigned ProcId = 0;
  unsigned Pc = 0;
  unsigned MaxContextSwitches = 2;
  /// Restrict schedules to round-robin order (context i runs thread
  /// i mod n). Unlike the free-schedule search, a finished thread may hold
  /// its context as a no-op (the round must pass through it), matching the
  /// symbolic round-robin semantics.
  bool RoundRobin = false;
};

struct ConcurrentBounds {
  unsigned MaxStackDepth = 8;
  uint64_t MaxConfigs = 2'000'000;
};

struct ConcurrentOracleResult {
  bool Reachable = false;
  bool Exhaustive = false; ///< Search completed without hitting a bound.
  uint64_t Configs = 0;    ///< Distinct configurations explored.
};

/// Runs the bounded explicit search. \p Cfgs must hold one ProgramCfg per
/// thread of \p Conc, in order.
ConcurrentOracleResult
concurrentReachability(const bp::ConcurrentProgram &Conc,
                       const std::vector<bp::ProgramCfg> &Cfgs,
                       const ConcurrentQuery &Query,
                       const ConcurrentBounds &Bounds = ConcurrentBounds());

} // namespace interp
} // namespace getafix

#endif // GETAFIX_INTERP_CONCURRENT_ORACLE_H
