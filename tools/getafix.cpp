//===- getafix.cpp - The Getafix command-line checker ---------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool of Figure 1: reads a (possibly concurrent) Boolean program and
/// answers a label-reachability query YES/NO. All parsing, dispatch, and
/// engine selection goes through the `getafix::Solver` facade; the engine
/// list in `--algo` and `--list-algos` is generated from the registry.
///
///   getafix [options] <program.bp>
///     --label <L>        target label (default ERR)
///     --targets a,b,c    answer several labels through one SolverSession
///                        (cross-query incremental mode: the compiled
///                        calculus and solved summary rounds are reused
///                        across the queries; one "LABEL: VERDICT" line
///                        per target)
///     --no-reuse         session mode: solve every target from scratch
///                        (ablation baseline for --targets)
///     --algo <name>      engine to run (see --list-algos; default: ef-opt
///                        for sequential programs, conc for concurrent)
///     --list-algos       print the registered engines and exit
///     --context-bound k  concurrent programs: max context switches
///     --rounds r         concurrent: round-robin with r rounds (implies
///                        --round-robin; overrides --context-bound)
///     --round-robin      concurrent: restrict schedules to round-robin
///     --strategy <s>     fixed-point iteration scheme: semi-naive
///                        (default) or naive (the paper's literal
///                        Section-3 semantics; ablation/debugging)
///     --max-iterations n cap fixpoint rounds; a hit limit prints UNKNOWN
///                        (exit 3) unless the target was already found
///     --threads n        worker threads for the evaluator's parallel SCC
///                        scheduling and intra-SCC disjunct parallelism
///                        (default 1; results bit-identical at any setting)
///     --disjunct-threshold n
///                        cost gate of the intra-SCC parallelism: a
///                        semi-naive round fans its disjunct products out
///                        over the pool only when the previous round
///                        allocated >= n BDD nodes (0 = auto,
///                        cacheSlots()/2; performance knob only)
///     --monolithic-summary
///                        sequential summary engines: compile the paper's
///                        single whole-program summary relation instead
///                        of the default per-procedure split (one
///                        Summary_<proc> per call-graph SCC; verdicts and
///                        witnesses are bit-identical either way — A/B
///                        escape hatch; see --stats condensation_width)
///     --cache-bits n     BDD computed cache of 2^n entries (default 18)
///     --timeout-ms n     wall-clock deadline per solve in milliseconds
///                        (0 = none); a hit deadline prints
///                        "TIMEOUT (deadline)" and exits 4
///     --node-budget n    cap on BDD nodes allocated per solve (0 =
///                        unlimited); exhaustion prints
///                        "TIMEOUT (node budget)" and exits 5 (a solve
///                        cancelled through the API exits 6)
///     --frontier-cofactor {constrain,restrict,off}
///                        generalized cofactor applied in narrow delta
///                        rounds (ablation; results identical)
///     --no-constrain     alias for --frontier-cofactor off
///     --witness          print a counterexample trace when the target is
///                        reachable (engines that support extraction)
///     --print-formula    dump the fixed-point equation system and exit
///     --stats            print solver statistics as a JSON object (cache
///                        hit-rate split per BDD operation, GC/peak-node
///                        counters, per-relation iteration/delta counts);
///                        with --targets, one object per query plus the
///                        session's cumulative reuse counters
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"
#include "support/Strings.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace getafix;

namespace {

struct CliOptions {
  std::string File;
  std::string Label = "ERR";
  std::vector<std::string> Targets; ///< Non-empty: session (multi) mode.
  std::string Algo; ///< Empty: the facade picks the query-kind default.
  unsigned ContextBound = 2;
  unsigned Rounds = 0; ///< 0 means "not given".
  uint64_t MaxIterations = 0;
  unsigned Threads = 1;
  uint64_t DisjunctThreshold = 0; ///< 0 = auto.
  unsigned CacheBits = 18;
  uint64_t TimeoutMs = 0;
  uint64_t NodeBudget = 0;
  fpc::CofactorMode FrontierCofactor = fpc::CofactorMode::Constrain;
  bool SessionReuse = true;
  bool MonolithicSummary = false;
  fpc::EvalStrategy Strategy = fpc::EvalStrategy::SemiNaive;
  bool RoundRobin = false;
  bool Witness = false;
  bool PrintFormula = false;
  bool Stats = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: getafix [--label L | --targets a,b,c] [--algo %s]\n"
               "               [--list-algos] [--context-bound k] "
               "[--rounds r] [--round-robin]\n"
               "               [--strategy naive|semi-naive] "
               "[--max-iterations n]\n"
               "               [--threads n] [--disjunct-threshold n] "
               "[--cache-bits n]\n"
               "               [--frontier-cofactor constrain|restrict|off]\n"
               "               [--timeout-ms n] [--node-budget n]\n"
               "               [--no-constrain] [--no-reuse] "
               "[--monolithic-summary]\n"
               "               [--witness] [--print-formula] [--stats] "
               "<program.bp>\n",
               Solver::engineList("|").c_str());
  return 2;
}

int listAlgos() {
  std::printf("registered engines:\n%s", Solver::engineTable().c_str());
  return 0;
}

/// `--stats` output: one JSON object on stdout. Strings that reach this
/// are engine/relation identifiers (no exotic characters), but escape the
/// usual suspects anyway so the output is always well-formed.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

/// The body of one result's stats object, without the enclosing braces.
/// \p Pad is the indentation of each field (session mode nests the
/// per-query objects one level deeper).
void printStatsBody(const CliOptions &Opts, const std::string &Engine,
                    const SolveResult &R, const char *Pad) {
  std::printf("%s\"engine\": \"%s\",\n", Pad, jsonEscape(Engine).c_str());
  std::printf("%s\"strategy\": \"%s\",\n", Pad,
              fpc::strategyName(Opts.Strategy));
  std::printf("%s\"reachable\": %s,\n", Pad, R.Reachable ? "true" : "false");
  std::printf("%s\"hit_iteration_limit\": %s,\n", Pad,
              R.HitIterationLimit ? "true" : "false");
  std::printf("%s\"iterations\": %llu,\n", Pad,
              (unsigned long long)R.Iterations);
  std::printf("%s\"delta_rounds\": %llu,\n", Pad,
              (unsigned long long)R.DeltaRounds);
  std::printf("%s\"summaries_reused\": %llu,\n", Pad,
              (unsigned long long)R.SummariesReused);
  std::printf("%s\"summaries_recomputed\": %llu,\n", Pad,
              (unsigned long long)R.SummariesRecomputed);
  std::printf("%s\"threads\": %u,\n", Pad, Opts.Threads);
  std::printf("%s\"condensation_width\": %u,\n", Pad, R.CondensationWidth);
  std::printf("%s\"summary_relations\": %u,\n", Pad, R.SummaryRelations);
  std::printf("%s\"sccs_solved_parallel\": %llu,\n", Pad,
              (unsigned long long)R.SccsSolvedParallel);
  std::printf("%s\"rounds_parallel\": %llu,\n", Pad,
              (unsigned long long)R.RoundsParallel);
  std::printf("%s\"disjuncts_parallel\": %llu,\n", Pad,
              (unsigned long long)R.DisjunctsParallel);
  std::printf("%s\"imported_nodes\": %llu,\n", Pad,
              (unsigned long long)R.ImportedNodes);
  std::printf("%s\"summary_nodes\": %zu,\n", Pad, R.SummaryNodes);
  std::printf("%s\"peak_live_nodes\": %zu,\n", Pad, R.PeakLiveNodes);
  std::printf("%s\"bdd_nodes_created\": %llu,\n", Pad,
              (unsigned long long)R.BddNodesCreated);
  std::printf("%s\"bdd_cache_lookups\": %llu,\n", Pad,
              (unsigned long long)R.BddCacheLookups);
  std::printf("%s\"bdd_cache_hits\": %llu,\n", Pad,
              (unsigned long long)R.BddCacheHits);
  std::printf("%s\"bdd_cache_hit_rate\": %.4f,\n", Pad, R.bddCacheHitRate());
  // Per-operation split of the aggregate probe/hit counters, so ablation
  // drivers no longer re-derive them from deltas between runs. Ops the
  // solve never issued are omitted.
  std::printf("%s\"bdd_cache_ops\": {", Pad);
  bool FirstOp = true;
  for (unsigned OpIdx = 0; OpIdx < NumBddOps; ++OpIdx) {
    if (R.Bdd.OpLookups[OpIdx] == 0)
      continue;
    std::printf("%s\n%s  \"%s\": {\"lookups\": %llu, \"hits\": %llu}",
                FirstOp ? "" : ",", Pad, bddOpName(BddOp(OpIdx)),
                (unsigned long long)R.Bdd.OpLookups[OpIdx],
                (unsigned long long)R.Bdd.OpHits[OpIdx]);
    FirstOp = false;
  }
  std::printf("%s%s},\n", FirstOp ? "" : "\n", FirstOp ? "" : Pad);
  std::printf("%s\"gc_runs\": %llu,\n", Pad,
              (unsigned long long)R.Bdd.GcRuns);
  std::printf("%s\"gc_reclaimed\": %llu,\n", Pad,
              (unsigned long long)R.Bdd.GcReclaimed);
  std::printf("%s\"peak_nodes\": %zu,\n", Pad, R.Bdd.PeakNodes);
  if (R.Cofactor.Applications) {
    std::printf("%s\"cofactor\": {\"mode\": \"%s\", \"applications\": %llu, "
                "\"support_before\": %llu, \"support_after\": %llu},\n",
                Pad, fpc::cofactorModeName(Opts.FrontierCofactor),
                (unsigned long long)R.Cofactor.Applications,
                (unsigned long long)R.Cofactor.SupportBefore,
                (unsigned long long)R.Cofactor.SupportAfter);
  }
  if (R.ReachStates != 0.0)
    std::printf("%s\"reach_states\": %.0f,\n", Pad, R.ReachStates);
  if (R.TransformedGlobals)
    std::printf("%s\"transformed_globals\": %zu,\n", Pad,
                R.TransformedGlobals);
  if (R.HasWitness)
    std::printf("%s\"witness_steps\": %zu,\n", Pad, R.Witness.size());
  std::printf("%s\"seconds\": %.6f,\n", Pad, R.Seconds);
  std::printf("%s\"relations\": {", Pad);
  bool First = true;
  for (const auto &[Name, RS] : R.Relations) {
    std::printf("%s\n%s  \"%s\": {\"iterations\": %llu, "
                "\"delta_rounds\": %llu, \"evaluations\": %llu, "
                "\"final_nodes\": %zu}",
                First ? "" : ",", Pad, jsonEscape(Name).c_str(),
                (unsigned long long)RS.Iterations,
                (unsigned long long)RS.DeltaRounds,
                (unsigned long long)RS.Evaluations, RS.FinalNodes);
    First = false;
  }
  std::printf("%s%s}\n", First ? "" : "\n", First ? "" : Pad);
}

void printStatsJson(const CliOptions &Opts, const std::string &Engine,
                    const SolveResult &R) {
  std::printf("{\n");
  printStatsBody(Opts, Engine, R, "  ");
  std::printf("}\n");
}

/// Verdict text for a resource-limit terminal status; null otherwise.
const char *limitVerdict(SolveStatus S) {
  switch (S) {
  case SolveStatus::HitDeadline:
    return "TIMEOUT (deadline)";
  case SolveStatus::HitNodeBudget:
    return "TIMEOUT (node budget)";
  case SolveStatus::Cancelled:
    return "CANCELLED";
  default:
    return nullptr;
  }
}

/// Process exit code for a resource-limit terminal status: 4 deadline,
/// 5 node budget, 6 cancelled. 0 otherwise.
int limitExitCode(SolveStatus S) {
  switch (S) {
  case SolveStatus::HitDeadline:
    return 4;
  case SolveStatus::HitNodeBudget:
    return 5;
  case SolveStatus::Cancelled:
    return 6;
  default:
    return 0;
  }
}

/// One "LABEL: VERDICT" line for multi-target mode. Returns true when the
/// verdict is inconclusive (iteration limit hit short of the target).
bool printVerdictLine(const std::string &Label, const SolveResult &R) {
  if (const char *Limit = limitVerdict(R.Status)) {
    std::printf("%s: %s\n", Label.c_str(), Limit);
    return false;
  }
  bool Unknown = R.HitIterationLimit && !R.Reachable;
  std::printf("%s: %s\n", Label.c_str(),
              Unknown       ? "UNKNOWN (iteration limit)"
              : R.Reachable ? "YES"
                            : "NO");
  if (R.HasWitness)
    std::printf("%s", R.WitnessText.c_str());
  return Unknown;
}

/// Multi-target mode: one SolverSession over the program, solveAll over
/// the labels, per-target verdict lines, optional per-query + cumulative
/// stats JSON. Exit: 2 on errors, 3 when any verdict is UNKNOWN, else 0.
int runSession(const CliOptions &Opts, const std::string &Source,
               const SolverOptions &SO) {
  Query Program = Query::fromSource(Source);
  std::unique_ptr<SolverSession> Session = Solver::open(Program, SO);
  if (!Session->ok()) {
    std::fprintf(stderr, "error: %s\n", Session->error().c_str());
    return 2;
  }

  std::vector<Query> Queries;
  Queries.reserve(Opts.Targets.size());
  for (const std::string &Label : Opts.Targets)
    Queries.push_back(
        Query::fromSource("").target(Label).witness(Opts.Witness));

  std::vector<SolveResult> Results = Session->solveAll(Queries);
  bool AnyUnknown = false;
  int LimitExit = 0;
  for (size_t I = 0; I < Results.size(); ++I) {
    if (!Results[I].ok() && !limitVerdict(Results[I].Status)) {
      std::fprintf(stderr, "error: %s: %s\n", Opts.Targets[I].c_str(),
                   Results[I].Error.c_str());
      return 2;
    }
    if (LimitExit == 0)
      LimitExit = limitExitCode(Results[I].Status);
    AnyUnknown |= printVerdictLine(Opts.Targets[I], Results[I]);
  }

  if (Opts.Stats) {
    const SolverSession::SessionStats &SS = Session->stats();
    std::string Engine =
        Opts.Algo.empty() ? std::string("(default)") : Opts.Algo;
    std::printf("{\n  \"targets\": %zu,\n", Opts.Targets.size());
    std::printf("  \"session\": {\"queries\": %llu, "
                "\"session_solves\": %llu, \"fresh_solves\": %llu, "
                "\"dedup_hits\": %llu, \"summaries_reused\": %llu, "
                "\"summaries_recomputed\": %llu},\n",
                (unsigned long long)SS.Queries,
                (unsigned long long)SS.SessionSolves,
                (unsigned long long)SS.FreshSolves,
                (unsigned long long)SS.DedupHits,
                (unsigned long long)SS.SummariesReused,
                (unsigned long long)SS.SummariesRecomputed);
    std::printf("  \"queries\": [\n");
    for (size_t I = 0; I < Results.size(); ++I) {
      std::printf("    {\n      \"label\": \"%s\",\n",
                  jsonEscape(Opts.Targets[I]).c_str());
      printStatsBody(Opts, Engine, Results[I], "      ");
      std::printf("    }%s\n", I + 1 < Results.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  }
  if (LimitExit != 0)
    return LimitExit;
  return AnyUnknown ? 3 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--label") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Label = V;
    } else if (Arg == "--targets") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Targets = splitList(V);
      if (Opts.Targets.empty())
        return usage();
    } else if (Arg == "--algo") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Algo = V;
    } else if (Arg == "--list-algos") {
      return listAlgos();
    } else if (Arg == "--context-bound") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.ContextBound = unsigned(std::atoi(V));
    } else if (Arg == "--rounds") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Rounds = unsigned(std::atoi(V));
      Opts.RoundRobin = true;
    } else if (Arg == "--round-robin") {
      Opts.RoundRobin = true;
    } else if (Arg == "--strategy") {
      const char *V = Next();
      if (!V)
        return usage();
      if (std::string(V) == "naive")
        Opts.Strategy = fpc::EvalStrategy::Naive;
      else if (std::string(V) == "semi-naive")
        Opts.Strategy = fpc::EvalStrategy::SemiNaive;
      else
        return usage();
    } else if (Arg == "--max-iterations") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.MaxIterations = uint64_t(std::atoll(V));
    } else if (Arg == "--threads") {
      const char *V = Next();
      if (!V)
        return usage();
      int N = std::atoi(V);
      if (N < 1 || N > 256)
        return usage();
      Opts.Threads = unsigned(N);
    } else if (Arg == "--disjunct-threshold") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.DisjunctThreshold = uint64_t(std::atoll(V));
    } else if (Arg == "--cache-bits") {
      const char *V = Next();
      if (!V)
        return usage();
      int Bits = std::atoi(V);
      if (Bits < 2 || Bits > 30)
        return usage();
      Opts.CacheBits = unsigned(Bits);
    } else if (Arg == "--timeout-ms") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.TimeoutMs = uint64_t(std::atoll(V));
    } else if (Arg == "--node-budget") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.NodeBudget = uint64_t(std::atoll(V));
    } else if (Arg == "--frontier-cofactor") {
      const char *V = Next();
      if (!V || !fpc::parseCofactorMode(V, Opts.FrontierCofactor))
        return usage();
    } else if (Arg == "--no-constrain") {
      Opts.FrontierCofactor = fpc::CofactorMode::Off;
    } else if (Arg == "--no-reuse") {
      Opts.SessionReuse = false;
    } else if (Arg == "--monolithic-summary") {
      Opts.MonolithicSummary = true;
    } else if (Arg == "--witness") {
      Opts.Witness = true;
    } else if (Arg == "--print-formula") {
      Opts.PrintFormula = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Opts.File = Arg;
    }
  }
  if (Opts.File.empty())
    return usage();

  std::ifstream In(Opts.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  SolverOptions SO;
  SO.Engine = Opts.Algo;
  SO.ContextBound = Opts.ContextBound;
  SO.Rounds = Opts.Rounds;
  SO.RoundRobin = Opts.RoundRobin;
  SO.Strategy = Opts.Strategy;
  SO.MaxIterations = Opts.MaxIterations;
  SO.CacheBits = Opts.CacheBits;
  SO.FrontierCofactor = Opts.FrontierCofactor;
  SO.SessionReuse = Opts.SessionReuse;
  SO.Threads = Opts.Threads;
  SO.DisjunctParallelThreshold = Opts.DisjunctThreshold;
  SO.MonolithicSummary = Opts.MonolithicSummary;
  SO.TimeoutMs = Opts.TimeoutMs;
  SO.NodeBudget = Opts.NodeBudget;

  if (!Opts.Targets.empty() && !Opts.PrintFormula)
    return runSession(Opts, Buffer.str(), SO);

  Query Q = Query::fromSource(Buffer.str())
                .target(Opts.Label)
                .witness(Opts.Witness);

  if (Opts.PrintFormula) {
    std::string Error;
    std::string Text = Solver::formulaText(Q, SO, &Error);
    if (Text.empty()) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    std::printf("%s", Text.c_str());
    return 0;
  }

  SolveResult R = Solver::solve(Q, SO);
  if (const char *Limit = limitVerdict(R.Status)) {
    std::printf("%s\n", Limit);
    if (Opts.Stats)
      printStatsJson(Opts, Opts.Algo.empty() ? "(default)" : Opts.Algo, R);
    return limitExitCode(R.Status);
  }
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 2;
  }

  // A hit iteration limit with no hit target is inconclusive: the solver
  // only explored MaxIterations rounds' worth of states. A reachable
  // verdict stays valid (the partial result is a lower bound).
  bool Unknown = R.HitIterationLimit && !R.Reachable;
  std::printf("%s\n", Unknown     ? "UNKNOWN (iteration limit)"
                      : R.Reachable ? "YES"
                                    : "NO");
  if (R.HasWitness)
    std::printf("%s", R.WitnessText.c_str());
  if (Opts.Stats)
    printStatsJson(Opts, Opts.Algo.empty() ? "(default)" : Opts.Algo, R);
  return Unknown ? 3 : R.Reachable ? 0 : 1;
}
