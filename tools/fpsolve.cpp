//===- fpsolve.cpp - Standalone fixed-point calculus solver ---------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MUCKE stand-in as a standalone tool: reads a textual fixed-point
/// system (domains, input relations with `fact` tuples, `mu`/`nu`
/// equations), solves the requested relations symbolically, and prints
/// their tuples. This is the right-hand box of Figure 1 taken by itself —
/// the getafix front-end emits such files (`getafix --print-formula`), and
/// any analysis expressible in the calculus can be run directly,
/// Datalog-style.
///
///   fpsolve [options] <system.mu>
///     --eval <R[,S,...]>  relations to solve (default: the last defined
///                     one). Several relations run through ONE evaluator,
///                     so later queries reuse the summaries (completed
///                     SCCs) the earlier ones solved — the tool-level
///                     form of cross-query incrementality
///     --count         print only the tuple counts
///     --stats         print per-query and cumulative iteration/delta
///                     counts per relation
///     --strategy <s>  naive or semi-naive (default) fixpoint iteration
///     --threads n     worker threads for parallel SCC scheduling and
///                     intra-SCC disjunct parallelism: independent
///                     dependency SCCs — and heavy semi-naive rounds'
///                     distributive products — run on a work-stealing pool
///                     over per-worker BDD managers (default 1; results
///                     bit-identical)
///     --disjunct-threshold n
///                     cost gate of the intra-SCC parallelism: fan a round
///                     out only when the previous round allocated >= n BDD
///                     nodes (0 = auto, cacheSlots()/2)
///     --cache-bits n  BDD computed cache of 2^n entries (default 18)
///     --frontier-cofactor {constrain,restrict,off}
///                     generalized cofactor of narrow delta rounds
///     --no-constrain  alias for --frontier-cofactor off
///     --timeout-ms n  wall-clock deadline for the whole run (0 = none)
///     --node-budget n cap on BDD nodes allocated (0 = unlimited)
///
/// Exit code: 0 if every solved relation is non-empty, 1 if any is empty,
/// 2 on usage or input errors, 4 when the deadline expired, 5 when the
/// node budget was exhausted.
///
//===----------------------------------------------------------------------===//

#include "fpcalc/Evaluator.h"
#include "fpcalc/Parser.h"
#include "support/ResourceGovernor.h"
#include "support/Strings.h"

#include <cstdio>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace getafix;
using namespace getafix::fpc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: fpsolve [--eval R[,S,...]] [--count] [--stats] "
               "[--strategy naive|semi-naive] [--threads n] "
               "[--disjunct-threshold n] [--cache-bits n] "
               "[--frontier-cofactor constrain|restrict|off] "
               "[--no-constrain] [--timeout-ms n] [--node-budget n] "
               "<system.mu>\n");
  return 2;
}

/// Enumerates the tuples of \p Value over \p Rel's formals, printing at
/// most \p Limit rows. Returns the exact tuple count.
uint64_t printTuples(Evaluator &Ev, const System &Sys, RelId Rel,
                     const Bdd &Value, uint64_t Limit) {
  const Relation &R = Sys.relation(Rel);
  std::vector<uint64_t> Tuple(R.arity(), 0);
  uint64_t Count = 0;

  // Depth-first product of the formals' domains, restricting the BDD one
  // coordinate at a time so dead branches are pruned wholesale.
  struct Walker {
    Evaluator &Ev;
    const System &Sys;
    const Relation &R;
    std::vector<uint64_t> &Tuple;
    uint64_t &Count;
    uint64_t Limit;

    void go(unsigned I, const Bdd &Rest) {
      if (Rest.isZero())
        return;
      if (I == R.arity()) {
        ++Count;
        if (Count > Limit)
          return;
        std::printf("%s(", R.Name.c_str());
        for (size_t J = 0; J < Tuple.size(); ++J)
          std::printf("%s%llu", J ? ", " : "",
                      (unsigned long long)Tuple[J]);
        std::printf(")\n");
        return;
      }
      const Domain &D = Sys.domain(Sys.var(R.Formals[I]).Dom);
      // Wide bit-vector domains would explode the product; cap at the
      // values that actually occur by splitting on the BDD instead.
      for (uint64_t V = 0; V < D.Size; ++V) {
        Tuple[I] = V;
        go(I + 1, Rest & Ev.encodeEqConst(R.Formals[I], V));
      }
    }
  };

  Walker W{Ev, Sys, R, Tuple, Count, Limit};
  W.go(0, Value);
  return Count;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string File, EvalRel;
  bool CountOnly = false, Stats = false;
  CofactorMode Cofactor = CofactorMode::Constrain;
  unsigned CacheBits = 18;
  unsigned Threads = 1;
  uint64_t DisjunctThreshold = 0; ///< 0 = auto (cacheSlots()/2).
  uint64_t TimeoutMs = 0;
  uint64_t NodeBudget = 0;
  EvalStrategy Strategy = EvalStrategy::SemiNaive;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--eval") {
      if (I + 1 >= Argc)
        return usage();
      EvalRel = Argv[++I];
    } else if (Arg == "--count") {
      CountOnly = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--strategy") {
      if (I + 1 >= Argc)
        return usage();
      std::string V = Argv[++I];
      if (V == "naive")
        Strategy = EvalStrategy::Naive;
      else if (V == "semi-naive")
        Strategy = EvalStrategy::SemiNaive;
      else
        return usage();
    } else if (Arg == "--cache-bits") {
      if (I + 1 >= Argc)
        return usage();
      int Bits = std::atoi(Argv[++I]);
      if (Bits < 2 || Bits > 30)
        return usage();
      CacheBits = unsigned(Bits);
    } else if (Arg == "--threads") {
      if (I + 1 >= Argc)
        return usage();
      int N = std::atoi(Argv[++I]);
      if (N < 1 || N > 256)
        return usage();
      Threads = unsigned(N);
    } else if (Arg == "--disjunct-threshold") {
      if (I + 1 >= Argc)
        return usage();
      DisjunctThreshold = uint64_t(std::atoll(Argv[++I]));
    } else if (Arg == "--timeout-ms") {
      if (I + 1 >= Argc)
        return usage();
      TimeoutMs = uint64_t(std::atoll(Argv[++I]));
    } else if (Arg == "--node-budget") {
      if (I + 1 >= Argc)
        return usage();
      NodeBudget = uint64_t(std::atoll(Argv[++I]));
    } else if (Arg == "--frontier-cofactor") {
      if (I + 1 >= Argc || !parseCofactorMode(Argv[++I], Cofactor))
        return usage();
    } else if (Arg == "--no-constrain") {
      Cofactor = CofactorMode::Off;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }
  if (File.empty())
    return usage();

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  auto Sys = parseSystem(Buffer.str(), Diags, &Facts);
  if (!Sys) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  // Pick the relations to solve: the comma-separated --eval list, or the
  // last defined one. All of them run through ONE evaluator, so a later
  // relation's solve reuses every completed SCC (summary) an earlier one
  // left in the memo — the tool-level form of cross-query incrementality.
  std::vector<RelId> Rels;
  if (!EvalRel.empty()) {
    for (const std::string &Name : splitList(EvalRel)) {
      if (!Sys->hasRel(Name)) {
        std::fprintf(stderr, "error: unknown relation '%s'\n", Name.c_str());
        return 2;
      }
      RelId Rel = Sys->relId(Name);
      if (Sys->relation(Rel).isInput()) {
        std::fprintf(stderr, "error: '%s' is an input relation\n",
                     Name.c_str());
        return 2;
      }
      Rels.push_back(Rel);
    }
  } else {
    bool Found = false;
    RelId Last = 0;
    for (RelId R = 0; R < Sys->numRels(); ++R)
      if (!Sys->relation(R).isInput()) {
        Last = R;
        Found = true;
      }
    if (!Found) {
      std::fprintf(stderr, "error: no defined relation to solve\n");
      return 2;
    }
    Rels.push_back(Last);
  }

  BddManager Mgr(0, CacheBits);
  support::ResourceGovernor Gov;
  if (TimeoutMs != 0 || NodeBudget != 0) {
    if (TimeoutMs != 0)
      Gov.setDeadlineIn(int64_t(TimeoutMs));
    if (NodeBudget != 0)
      Gov.setNodeBudget(NodeBudget);
    Mgr.setGovernor(&Gov);
  }
  Evaluator Ev(*Sys, Mgr, Layout::sequential(*Sys, Mgr), Strategy,
               Cofactor);
  Ev.setThreads(Threads);
  Ev.setDisjunctParallelThreshold(DisjunctThreshold);
  bindFacts(Ev, *Sys, Facts);

  bool AnyEmpty = false;
  std::map<std::string, RelStats> PrevStats;
  for (size_t QueryIdx = 0; QueryIdx < Rels.size(); ++QueryIdx) {
    RelId Rel = Rels[QueryIdx];
    const std::string &RelName = Sys->relation(Rel).Name;
    if (Rels.size() > 1)
      std::printf("== %s ==\n", RelName.c_str());

    EvalResult Result;
    try {
      Result = Ev.evaluate(Rel);
    } catch (const support::ResourceInterrupt &RI) {
      std::fprintf(stderr, "fpsolve: solve of '%s' stopped: %s\n",
                   RelName.c_str(), support::resourceLimitName(RI.Limit));
      return RI.Limit == support::ResourceLimit::NodeBudget ? 5 : 4;
    }

    // Constrain each formal to its domain, and count over the formals'
    // bits only (all other manager variables are don't-care).
    Bdd Constrained = Result.Value;
    unsigned TupleBits = 0;
    for (VarId V : Sys->relation(Rel).Formals) {
      Constrained &= Ev.domainConstraint(V);
      TupleBits += unsigned(Ev.layout().bits(V).size());
    }
    double Exact = Constrained.satCount(Mgr.numVars()) /
                   std::pow(2.0, double(Mgr.numVars() - TupleBits));
    uint64_t Count = uint64_t(Exact + 0.5);
    AnyEmpty |= Count == 0;

    // Enumerating the domain product is only sensible for narrow tuples;
    // wide bit-vector relations report their count instead.
    const uint64_t PrintLimit = 10000;
    if (CountOnly || TupleBits > 24) {
      std::printf("%llu tuples\n", (unsigned long long)Count);
    } else {
      uint64_t Printed = printTuples(Ev, *Sys, Rel, Constrained, PrintLimit);
      if (Printed > PrintLimit)
        std::printf("... (%llu tuples total)\n", (unsigned long long)Count);
    }

    if (Stats) {
      // Per-query deltas against the last query's snapshot: relations a
      // query served purely from memo show up with zero new iterations.
      for (const auto &[Name, RS] : Ev.stats()) {
        RelStats Prev = PrevStats.count(Name) ? PrevStats[Name] : RelStats();
        std::printf("# %s: %llu iterations (%llu delta rounds), "
                    "%llu solves, %zu nodes\n",
                    Name.c_str(),
                    (unsigned long long)(RS.Iterations - Prev.Iterations),
                    (unsigned long long)(RS.DeltaRounds - Prev.DeltaRounds),
                    (unsigned long long)(RS.Evaluations - Prev.Evaluations),
                    RS.FinalNodes);
      }
      PrevStats = Ev.stats();
    }
  }

  if (Stats && Rels.size() > 1) {
    std::printf("== cumulative ==\n");
    for (const auto &[Name, RS] : Ev.stats())
      std::printf("# %s: %llu iterations (%llu delta rounds), %llu solves, "
                  "%zu nodes\n",
                  Name.c_str(), (unsigned long long)RS.Iterations,
                  (unsigned long long)RS.DeltaRounds,
                  (unsigned long long)RS.Evaluations, RS.FinalNodes);
  }
  if (Stats && Threads > 1) {
    const fpc::ParallelStats &PS = Ev.parallelStats();
    std::printf("# parallel: %llu sccs on %u threads, %llu schedules, "
                "%llu steals\n",
                (unsigned long long)PS.SccsSolvedParallel, PS.Threads,
                (unsigned long long)PS.Schedules,
                (unsigned long long)PS.Steals);
    std::printf("# parallel: %llu rounds, %llu disjuncts, "
                "%llu imported nodes\n",
                (unsigned long long)PS.RoundsParallel,
                (unsigned long long)PS.DisjunctsParallel,
                (unsigned long long)PS.ImportedNodes);
  }

  return AnyEmpty ? 1 : 0;
}
