//===- fpsolve.cpp - Standalone fixed-point calculus solver ---------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MUCKE stand-in as a standalone tool: reads a textual fixed-point
/// system (domains, input relations with `fact` tuples, `mu`/`nu`
/// equations), solves a requested relation symbolically, and prints its
/// tuples. This is the right-hand box of Figure 1 taken by itself — the
/// getafix front-end emits such files (`getafix --print-formula`), and any
/// analysis expressible in the calculus can be run directly, Datalog-style.
///
///   fpsolve [options] <system.mu>
///     --eval <R>      relation to solve (default: the last defined one)
///     --count         print only the tuple count
///     --stats         print iteration/delta counts per relation
///     --strategy <s>  naive or semi-naive (default) fixpoint iteration
///     --cache-bits n  BDD computed cache of 2^n entries (default 18)
///     --no-constrain  disable care-set minimization (ablation)
///
/// Exit code: 0 if the solved relation is non-empty, 1 if empty, 2 on
/// usage or input errors.
///
//===----------------------------------------------------------------------===//

#include "fpcalc/Evaluator.h"
#include "fpcalc/Parser.h"

#include <cstdio>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace getafix;
using namespace getafix::fpc;

namespace {

int usage() {
  std::fprintf(stderr, "usage: fpsolve [--eval R] [--count] [--stats] "
                       "[--strategy naive|semi-naive] [--cache-bits n] "
                       "[--no-constrain] <system.mu>\n");
  return 2;
}

/// Enumerates the tuples of \p Value over \p Rel's formals, printing at
/// most \p Limit rows. Returns the exact tuple count.
uint64_t printTuples(Evaluator &Ev, const System &Sys, RelId Rel,
                     const Bdd &Value, uint64_t Limit) {
  const Relation &R = Sys.relation(Rel);
  std::vector<uint64_t> Tuple(R.arity(), 0);
  uint64_t Count = 0;

  // Depth-first product of the formals' domains, restricting the BDD one
  // coordinate at a time so dead branches are pruned wholesale.
  struct Walker {
    Evaluator &Ev;
    const System &Sys;
    const Relation &R;
    std::vector<uint64_t> &Tuple;
    uint64_t &Count;
    uint64_t Limit;

    void go(unsigned I, const Bdd &Rest) {
      if (Rest.isZero())
        return;
      if (I == R.arity()) {
        ++Count;
        if (Count > Limit)
          return;
        std::printf("%s(", R.Name.c_str());
        for (size_t J = 0; J < Tuple.size(); ++J)
          std::printf("%s%llu", J ? ", " : "",
                      (unsigned long long)Tuple[J]);
        std::printf(")\n");
        return;
      }
      const Domain &D = Sys.domain(Sys.var(R.Formals[I]).Dom);
      // Wide bit-vector domains would explode the product; cap at the
      // values that actually occur by splitting on the BDD instead.
      for (uint64_t V = 0; V < D.Size; ++V) {
        Tuple[I] = V;
        go(I + 1, Rest & Ev.encodeEqConst(R.Formals[I], V));
      }
    }
  };

  Walker W{Ev, Sys, R, Tuple, Count, Limit};
  W.go(0, Value);
  return Count;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string File, EvalRel;
  bool CountOnly = false, Stats = false, ConstrainFrontier = true;
  unsigned CacheBits = 18;
  EvalStrategy Strategy = EvalStrategy::SemiNaive;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--eval") {
      if (I + 1 >= Argc)
        return usage();
      EvalRel = Argv[++I];
    } else if (Arg == "--count") {
      CountOnly = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--strategy") {
      if (I + 1 >= Argc)
        return usage();
      std::string V = Argv[++I];
      if (V == "naive")
        Strategy = EvalStrategy::Naive;
      else if (V == "semi-naive")
        Strategy = EvalStrategy::SemiNaive;
      else
        return usage();
    } else if (Arg == "--cache-bits") {
      if (I + 1 >= Argc)
        return usage();
      int Bits = std::atoi(Argv[++I]);
      if (Bits < 2 || Bits > 30)
        return usage();
      CacheBits = unsigned(Bits);
    } else if (Arg == "--no-constrain") {
      ConstrainFrontier = false;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }
  if (File.empty())
    return usage();

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  std::vector<Fact> Facts;
  auto Sys = parseSystem(Buffer.str(), Diags, &Facts);
  if (!Sys) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }

  // Pick the relation to solve: named, or the last defined one.
  RelId Rel = 0;
  if (!EvalRel.empty()) {
    if (!Sys->hasRel(EvalRel)) {
      std::fprintf(stderr, "error: unknown relation '%s'\n",
                   EvalRel.c_str());
      return 2;
    }
    Rel = Sys->relId(EvalRel);
    if (Sys->relation(Rel).isInput()) {
      std::fprintf(stderr, "error: '%s' is an input relation\n",
                   EvalRel.c_str());
      return 2;
    }
  } else {
    bool Found = false;
    for (RelId R = 0; R < Sys->numRels(); ++R)
      if (!Sys->relation(R).isInput()) {
        Rel = R;
        Found = true;
      }
    if (!Found) {
      std::fprintf(stderr, "error: no defined relation to solve\n");
      return 2;
    }
  }

  BddManager Mgr(0, CacheBits);
  Evaluator Ev(*Sys, Mgr, Layout::sequential(*Sys, Mgr), Strategy,
               ConstrainFrontier);
  bindFacts(Ev, *Sys, Facts);

  EvalResult Result = Ev.evaluate(Rel);

  // Constrain each formal to its domain, and count over the formals' bits
  // only (all other manager variables are don't-care).
  Bdd Constrained = Result.Value;
  unsigned TupleBits = 0;
  for (VarId V : Sys->relation(Rel).Formals) {
    Constrained &= Ev.domainConstraint(V);
    TupleBits += unsigned(Ev.layout().bits(V).size());
  }
  double Exact = Constrained.satCount(Mgr.numVars()) /
                 std::pow(2.0, double(Mgr.numVars() - TupleBits));
  uint64_t Count = uint64_t(Exact + 0.5);

  // Enumerating the domain product is only sensible for narrow tuples;
  // wide bit-vector relations report their count instead.
  const uint64_t PrintLimit = 10000;
  if (CountOnly || TupleBits > 24) {
    std::printf("%llu tuples\n", (unsigned long long)Count);
  } else {
    uint64_t Printed = printTuples(Ev, *Sys, Rel, Constrained, PrintLimit);
    if (Printed > PrintLimit)
      std::printf("... (%llu tuples total)\n", (unsigned long long)Count);
  }

  if (Stats)
    for (const auto &[Name, RS] : Ev.stats())
      std::printf("# %s: %llu iterations (%llu delta rounds), %llu solves, "
                  "%zu nodes\n",
                  Name.c_str(), (unsigned long long)RS.Iterations,
                  (unsigned long long)RS.DeltaRounds,
                  (unsigned long long)RS.Evaluations, RS.FinalNodes);

  return Count > 0 ? 0 : 1;
}
