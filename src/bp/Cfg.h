//===- Cfg.h - Control-flow graphs for Boolean programs ---------*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a resolved Boolean program to per-procedure control-flow graphs.
/// Every program point gets a program counter (PC) local to its procedure,
/// with PC 0 the procedure entry (as the paper's Appendix assumes). Edges
/// are:
///
///   - Assume: guarded internal move (branches; `assume`; skip via a null
///     condition),
///   - Assign: simultaneous assignment,
///   - Call: transition into a callee; `To` is the point the call returns
///     to, so a Call edge doubles as the paper's `Across(u.pc, w.pc)` pair.
///
/// Exit points carry the return expressions evaluated at that exit; a
/// procedure whose body can fall off the end gets an implicit exit that
/// returns nondeterministic values (Bebop's convention for missing
/// returns).
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_BP_CFG_H
#define GETAFIX_BP_CFG_H

#include "bp/Ast.h"

#include <map>
#include <string>
#include <vector>

namespace getafix {
namespace bp {

struct CfgEdge {
  enum class Kind { Assume, Assign, Call };

  Kind K = Kind::Assume;
  unsigned From = 0;
  unsigned To = 0; ///< For Call edges: the return-to point (Across target).

  /// Assume: guard (null means `true`). NegateCond selects else-branches.
  const Expr *Cond = nullptr;
  bool NegateCond = false;

  /// Assign: targets; CallAssign: targets receiving returned values.
  std::vector<VarRef> Lhs;
  /// Assign: right-hand sides; Call: actual arguments.
  std::vector<const Expr *> Rhs;

  unsigned CalleeId = ~0u; ///< Call only.
};

/// One exit point of a procedure with the expressions it returns.
struct CfgExit {
  unsigned Pc = 0;
  std::vector<const Expr *> ReturnExprs;
  bool Implicit = false; ///< Fall-off-the-end exit (returns nondet values).
};

struct ProcCfg {
  unsigned ProcId = 0;
  unsigned NumPcs = 0; ///< PCs are 0..NumPcs-1; entry is 0.
  std::vector<CfgEdge> Edges;
  std::vector<CfgExit> Exits;
  std::map<std::string, unsigned> LabelPcs;

  /// Outgoing edge indices per PC.
  std::vector<std::vector<unsigned>> OutEdges;

  /// Expressions created during lowering (implicit nondet returns).
  std::vector<ExprPtr> OwnedExprs;

  bool isExit(unsigned Pc) const {
    for (const CfgExit &E : Exits)
      if (E.Pc == Pc)
        return true;
    return false;
  }
  const CfgExit *exitAt(unsigned Pc) const {
    for (const CfgExit &E : Exits)
      if (E.Pc == Pc)
        return &E;
    return nullptr;
  }
};

struct ProgramCfg {
  const Program *Prog = nullptr;
  std::vector<ProcCfg> Procs;

  /// Largest PC count over all procedures (the symbolic PC domain size).
  unsigned maxPcs() const {
    unsigned Max = 1;
    for (const ProcCfg &P : Procs)
      Max = std::max(Max, P.NumPcs);
    return Max;
  }

  /// Locates the PC carrying \p Label. Returns false if absent.
  bool findLabelPc(const std::string &Label, unsigned &ProcId,
                   unsigned &Pc) const;
};

/// Lowers \p Prog (must be successfully analyzed) to CFGs.
ProgramCfg buildCfg(const Program &Prog);

/// The program's call graph together with its SCC condensation. The
/// per-procedure summary split (reach/SeqEngine) emits one summary
/// relation per condensation node: procedures in the same SCC are
/// mutually recursive and must share a fixed point, while edges between
/// SCCs become acyclic relation dependencies the evaluator's DAG
/// scheduler can run in parallel.
struct CallGraph {
  /// Deduplicated callee / caller procedure ids, indexed by ProcId.
  std::vector<std::vector<unsigned>> Callees;
  std::vector<std::vector<unsigned>> Callers;

  /// SCC index per procedure. SCCs are numbered in *callees-first*
  /// (reverse topological) order: if some procedure of SCC a calls into a
  /// different SCC b, then b < a. Leaf procedures come first, `main`'s
  /// SCC last.
  std::vector<unsigned> SccOf;
  /// Member procedures per SCC, ascending by ProcId.
  std::vector<std::vector<unsigned>> SccMembers;

  /// Deduplicated SCC-level edges: SccCallees[a] lists the SCCs b != a
  /// that procedures of SCC a call into (each b < a by the numbering);
  /// SccCallers is the transpose.
  std::vector<std::vector<unsigned>> SccCallees;
  std::vector<std::vector<unsigned>> SccCallers;

  size_t numSccs() const { return SccMembers.size(); }
};

/// Builds the call graph of \p Cfg from its Call edges.
CallGraph buildCallGraph(const ProgramCfg &Cfg);

} // namespace bp
} // namespace getafix

#endif // GETAFIX_BP_CFG_H
