//===- bench_bluetooth.cpp - Figure 3: Bluetooth driver -------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
// Reproduces Figure 3: the four adder/stopper configurations of the
// Windows NT Bluetooth driver model, context switches 1..6. Shape to
// check: the Reach? column ((1,1) never; (1,2) from k=3; (2,1) from k=4;
// (2,2) from k=3), the reachable-set size growing with k, and time growing
// with k (steeply for the 4-thread configuration).
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gen/Workloads.h"

using namespace getafix;
using namespace getafix::bench;

int main() {
  std::printf("=== Figure 3 / Bluetooth driver ===\n");
  struct Config {
    unsigned Adders, Stoppers;
    const char *Title;
  } Configs[] = {
      {1, 1, "Two processes: one adder and one stopper"},
      {1, 2, "Three processes: one adder and two stoppers"},
      {2, 1, "Three processes: two adders and one stopper"},
      {2, 2, "Four processes: two adders and two stoppers"},
  };

  for (const Config &C : Configs) {
    std::printf("\n%s\n", C.Title);
    std::printf("%8s %10s %14s %10s\n", "switches", "Reachable",
                "reach-set", "time(s)");
    ParsedConcProgram P =
        parseConcOrDie(gen::bluetoothModel(C.Adders, C.Stoppers));
    unsigned NumThreads = C.Adders + C.Stoppers;
    unsigned MaxK = NumThreads >= 4 ? 4u : (NumThreads == 3 ? 5u : 6u);
    for (unsigned K = 1; K <= MaxK; ++K) {
      SolverOptions Opts;
      Opts.ContextBound = K;
      Opts.EarlyStop = false; // Figure 3 reports the full reachable set.
      EngineRow R = runConcEngine(P, "ERR", "conc", Opts);
      std::printf("%8u %10s %14.1fk %10.2f\n", K,
                  R.Reachable ? "Yes" : "No", R.ReachStates / 1000.0,
                  R.Seconds);
    }
  }
  return 0;
}
