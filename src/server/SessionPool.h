//===- SessionPool.h - Memory-budgeted pool of solver sessions --*- C++ -*-===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `getafixd` server's cache of open `SolverSession`s, keyed by
/// program. Sessions are expensive (a compiled equation system, a BDD
/// manager, the summary rounds solved so far) and the paper's whole point
/// is that queries against an already-solved program are nearly free — so
/// the pool keeps sessions alive across requests and evicts least-
/// recently-used ones only when a configurable memory budget (summed
/// `SolverSession::memoryFootprint()` estimates) is exceeded.
///
/// Reclamation is two-phase, coarse valve first:
///
///   1. `clearComputedCache()` on LRU sessions — O(1), keeps all solved
///      state, and (because a cleared-and-untouched cache is discounted
///      from the footprint estimate) typically frees several MB per
///      session on the books.
///   2. Full eviction of LRU sessions — drops the engine state entirely.
///      The entry (program text, options, statistics) stays; the next
///      acquire transparently reopens and re-solves, bit-identical.
///
/// A third, fault-driven path bypasses the budget: a lease whose solve
/// escaped with a real exception (injected or genuine OOM) is marked
/// poisoned, and release destroys that session eagerly — poisoned state
/// is never returned to the pool (`markPoisoned`, `poisoned_evictions`).
///
/// Concurrency: each entry carries a mutex held for the whole lease, so
/// concurrent clients querying the same program serialize on its one
/// session and share solved state; clients on different programs run in
/// parallel. Budget enforcement only `try_lock`s entries, so it never
/// waits on (or evicts) a session a client is using.
///
//===----------------------------------------------------------------------===//

#ifndef GETAFIX_SERVER_SESSIONPOOL_H
#define GETAFIX_SERVER_SESSIONPOOL_H

#include "api/Solver.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace getafix {
namespace server {

struct PoolOptions {
  /// Options every session is opened with. `Engine` may be overridden
  /// per program via `acquire`.
  api::SolverOptions Solver;
  /// Evict down to this many bytes of summed session footprints;
  /// 0 = unbounded.
  size_t MemoryBudgetBytes = 0;
  /// Hard cap on resident (non-evicted) sessions; 0 = unbounded.
  size_t MaxResidentSessions = 0;
};

/// Counters (monotonic) and gauges (sampled at `stats()`).
struct PoolStats {
  uint64_t Lookups = 0;     ///< acquire() calls.
  uint64_t Hits = 0;        ///< Served by an already-resident session.
  uint64_t Opens = 0;       ///< First-time session opens.
  uint64_t Reopens = 0;     ///< Transparent reopens after eviction.
  uint64_t Evictions = 0;   ///< Sessions dropped by the budget (phase 2).
  uint64_t CacheClears = 0; ///< Computed-cache valve firings (phase 1).
  /// Sessions destroyed eagerly because their lease was marked poisoned
  /// (a solve escaped with a real fault, e.g. an allocation failure).
  uint64_t PoisonedEvictions = 0;
  size_t ResidentSessions = 0; ///< Entries currently holding a session.
  size_t TotalPrograms = 0;    ///< Entries ever created (incl. evicted).
  size_t FootprintBytes = 0;   ///< Summed footprint of resident sessions.
};

class SessionPool {
  struct Entry;

public:
  explicit SessionPool(PoolOptions Opts);
  ~SessionPool();
  SessionPool(const SessionPool &) = delete;
  SessionPool &operator=(const SessionPool &) = delete;

  /// Loads a program's source text on first acquire of its key. Returns
  /// false (with an error message) when the program cannot be read.
  using SourceLoader =
      std::function<bool(std::string &Source, std::string &Error)>;

  /// Exclusive access to one pooled session: holds the entry's mutex for
  /// its lifetime, releases it (and triggers budget enforcement) on
  /// destruction. Movable.
  class Lease {
  public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;
    Lease(Lease &&O) noexcept { *this = std::move(O); }
    Lease &operator=(Lease &&O) noexcept;

    /// False when the program could not be loaded (see `error()`); the
    /// lease then holds no session.
    bool ok() const { return E != nullptr; }
    const std::string &error() const { return Err; }
    api::SolverSession &session();
    /// This acquire reopened a previously-evicted session.
    bool reopened() const { return Reopened; }
    /// Marks the leased session as poisoned: a solve escaped with a real
    /// fault (an allocation failure, a corrupted invariant), so its state
    /// cannot be trusted. Release then destroys the session eagerly
    /// instead of returning it to the pool — it is never reused; the next
    /// acquire of the key transparently reopens from source. Clean
    /// resource-limit stops (deadline, node budget, cancel) must NOT be
    /// marked: they leave the session at a completed round boundary.
    void markPoisoned() { Poisoned = true; }
    /// Releases early (destructor otherwise does it).
    void release();

  private:
    friend class SessionPool;
    SessionPool *Pool = nullptr;
    std::shared_ptr<Entry> E;
    std::string Err;
    bool Reopened = false;
    bool Poisoned = false;
  };

  /// Acquires the session for \p Key, opening it (via \p LoadSource) on
  /// first use and transparently reopening it after eviction. Blocks
  /// while another client holds the same program's lease. \p
  /// EngineOverride selects a non-default engine for this program (part
  /// of the identity: the same program under two engines is two entries).
  Lease acquire(const std::string &Key, const SourceLoader &LoadSource,
                const std::string &EngineOverride = "");

  /// Drops the resident session for \p Key (entry and statistics stay).
  /// False when the key is unknown, evicted, or currently leased.
  bool evict(const std::string &Key);
  /// Evicts every non-leased resident session; returns how many.
  size_t evictAll();

  PoolStats stats() const;
  size_t footprintBytes() const;
  bool isResident(const std::string &Key) const;
  /// Resident keys, least-recently-used first (test introspection).
  std::vector<std::string> residentLru() const;

  const PoolOptions &options() const { return Opts; }

private:
  void noteRelease(Entry &E);
  /// Destroys a poisoned session under the (still-held) entry mutex and
  /// drops the entry to non-resident. The entry itself survives.
  void notePoisonedRelease(Entry &E);
  /// Two-phase reclamation toward the budget; skips leased entries.
  /// Caller must NOT hold PoolMu or any entry mutex.
  void enforceBudget();

  PoolOptions Opts;
  mutable std::mutex PoolMu; ///< Guards Map, Tick, Stats, entry metadata.
  std::map<std::string, std::shared_ptr<Entry>> Map;
  uint64_t Tick = 0; ///< LRU clock.
  PoolStats Stats;
};

} // namespace server
} // namespace getafix

#endif // GETAFIX_SERVER_SESSIONPOOL_H
