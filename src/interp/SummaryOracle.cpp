//===- SummaryOracle.cpp - Exact explicit summary reachability ------------===//

#include "interp/SummaryOracle.h"

#include <array>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace getafix;
using namespace getafix::interp;
using namespace getafix::bp;

namespace {

struct ArrayHash {
  size_t operator()(const std::array<uint32_t, 6> &A) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint32_t V : A) {
      H ^= V;
      H *= 0x100000001b3ull;
    }
    return size_t(H);
  }
};

/// (proc, entryLocals, entryGlobals) naming one procedure instantiation.
using EntryKey = std::array<uint32_t, 3>;

struct EntryKeyHash {
  size_t operator()(const EntryKey &A) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint32_t V : A) {
      H ^= V;
      H *= 0x100000001b3ull;
    }
    return size_t(H);
  }
};

/// A caller waiting for summaries of some callee instantiation.
struct CallSite {
  uint32_t Proc;
  uint32_t EntryL;
  uint32_t EntryG;
  uint32_t EdgeIdx; ///< Call edge in the caller's CFG.
  uint32_t Locals;  ///< Caller locals at the call.
};

/// An entry-to-exit summary of a callee instantiation.
struct ExitState {
  uint32_t ExitPc;
  uint32_t Locals;
  uint32_t Globals;
};

class Tabulator {
public:
  Tabulator(const ProgramCfg &Cfg, unsigned TargetProcId, unsigned TargetPc,
            support::ResourceGovernor *Governor)
      : Cfg(Cfg), Prog(*Cfg.Prog), TargetProcId(TargetProcId),
        TargetPc(TargetPc), Governor(Governor) {}

  OracleResult run();

private:
  void addPathEdge(uint32_t Proc, uint32_t EntryL, uint32_t EntryG,
                   uint32_t Pc, uint32_t Locals, uint32_t Globals);
  void process(const std::array<uint32_t, 6> &Edge);
  void applyReturn(const CallSite &Site, const ExitState &Exit,
                   uint32_t CalleeProc);

  unsigned localBits(unsigned Proc) const {
    return Prog.proc(Proc).numLocalSlots();
  }

  const ProgramCfg &Cfg;
  const Program &Prog;
  unsigned TargetProcId;
  unsigned TargetPc;
  support::ResourceGovernor *Governor;

  std::unordered_set<std::array<uint32_t, 6>, ArrayHash> Seen;
  std::deque<std::array<uint32_t, 6>> Worklist;
  std::unordered_map<EntryKey, std::vector<CallSite>, EntryKeyHash> Callers;
  std::unordered_map<EntryKey, std::vector<ExitState>, EntryKeyHash>
      Summaries;
  std::unordered_set<std::array<uint32_t, 6>, ArrayHash> SummarySet;
  bool Found = false;
  uint64_t NumSummaries = 0;
};

} // namespace

void Tabulator::addPathEdge(uint32_t Proc, uint32_t EntryL, uint32_t EntryG,
                            uint32_t Pc, uint32_t Locals, uint32_t Globals) {
  std::array<uint32_t, 6> Edge = {Proc, EntryL, EntryG, Pc, Locals, Globals};
  if (!Seen.insert(Edge).second)
    return;
  if (Proc == TargetProcId && Pc == TargetPc)
    Found = true;
  Worklist.push_back(Edge);
}

void Tabulator::applyReturn(const CallSite &Site, const ExitState &Exit,
                            uint32_t CalleeProc) {
  const ProcCfg &CalleeCfg = Cfg.Procs[CalleeProc];
  const CfgExit *ExitInfo = CalleeCfg.exitAt(Exit.ExitPc);
  assert(ExitInfo && "summary exit pc is not an exit");
  const CfgEdge &CallEdge = Cfg.Procs[Site.Proc].Edges[Site.EdgeIdx];
  assert(CallEdge.K == CfgEdge::Kind::Call && "call site edge mismatch");

  unsigned NumChoices = countNondet(ExitInfo->ReturnExprs);
  assert(NumChoices <= 20 && "too many nondet bits in return expressions");
  for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
    std::vector<bool> Values =
        evalExprs(ExitInfo->ReturnExprs, Exit.Locals, Exit.Globals, Choice);
    assert(Values.size() == CallEdge.Lhs.size() &&
           "return arity mismatch survived sema");
    uint32_t NewLocals = Site.Locals;
    uint32_t NewGlobals = Exit.Globals;
    for (size_t I = 0; I < CallEdge.Lhs.size(); ++I) {
      const VarRef &Ref = CallEdge.Lhs[I];
      if (Ref.IsGlobal)
        NewGlobals = setBit(NewGlobals, Ref.Index, Values[I]);
      else
        NewLocals = setBit(NewLocals, Ref.Index, Values[I]);
    }
    addPathEdge(Site.Proc, Site.EntryL, Site.EntryG, CallEdge.To, NewLocals,
                NewGlobals);
  }
}

void Tabulator::process(const std::array<uint32_t, 6> &Edge) {
  auto [ProcId, EntryL, EntryG, Pc, Locals, Globals] =
      std::tuple{Edge[0], Edge[1], Edge[2], Edge[3], Edge[4], Edge[5]};
  const ProcCfg &PC = Cfg.Procs[ProcId];

  // Exit: record a summary and resume waiting callers.
  if (PC.isExit(Pc)) {
    std::array<uint32_t, 6> Key = {ProcId, EntryL, EntryG, Pc, Locals,
                                   Globals};
    if (SummarySet.insert(Key).second) {
      ++NumSummaries;
      ExitState Exit{Pc, Locals, Globals};
      EntryKey EK{ProcId, EntryL, EntryG};
      Summaries[EK].push_back(Exit);
      for (const CallSite &Site : Callers[EK])
        applyReturn(Site, Exit, ProcId);
    }
  }

  for (unsigned EdgeIdx : PC.OutEdges[Pc]) {
    const CfgEdge &E = PC.Edges[EdgeIdx];
    switch (E.K) {
    case CfgEdge::Kind::Assume: {
      if (!E.Cond) {
        addPathEdge(ProcId, EntryL, EntryG, E.To, Locals, Globals);
        break;
      }
      unsigned NumChoices = countNondet(*E.Cond);
      assert(NumChoices <= 20 && "too many nondet bits in condition");
      for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
        unsigned ChoiceIdx = 0;
        bool Value = evalExpr(*E.Cond, Locals, Globals, Choice, ChoiceIdx);
        if (Value != E.NegateCond)
          addPathEdge(ProcId, EntryL, EntryG, E.To, Locals, Globals);
      }
      break;
    }
    case CfgEdge::Kind::Assign: {
      unsigned NumChoices = countNondet(E.Rhs);
      assert(NumChoices <= 20 && "too many nondet bits in assignment");
      for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
        std::vector<bool> Values = evalExprs(E.Rhs, Locals, Globals, Choice);
        uint32_t NewLocals = Locals;
        uint32_t NewGlobals = Globals;
        for (size_t I = 0; I < E.Lhs.size(); ++I) {
          const VarRef &Ref = E.Lhs[I];
          if (Ref.IsGlobal)
            NewGlobals = setBit(NewGlobals, Ref.Index, Values[I]);
          else
            NewLocals = setBit(NewLocals, Ref.Index, Values[I]);
        }
        addPathEdge(ProcId, EntryL, EntryG, E.To, NewLocals, NewGlobals);
      }
      break;
    }
    case CfgEdge::Kind::Call: {
      uint32_t Callee = E.CalleeId;
      const Proc &CalleeProc = Prog.proc(Callee);
      unsigned NumParams = unsigned(CalleeProc.Params.size());
      unsigned NumSlots = CalleeProc.numLocalSlots();
      unsigned FreeBits = NumSlots - NumParams;
      assert(FreeBits <= 20 && "too many uninitialized callee locals");
      unsigned NumChoices = countNondet(E.Rhs);
      assert(NumChoices <= 20 && "too many nondet bits in call arguments");

      for (uint32_t Choice = 0; Choice < (1u << NumChoices); ++Choice) {
        std::vector<bool> Args = evalExprs(E.Rhs, Locals, Globals, Choice);
        uint32_t ParamVal = 0;
        for (size_t I = 0; I < Args.size(); ++I)
          ParamVal = setBit(ParamVal, unsigned(I), Args[I]);
        // Uninitialized callee locals take every value (nondet).
        for (uint32_t Free = 0; Free < (1u << FreeBits); ++Free) {
          uint32_t CalleeLocals = ParamVal | (Free << NumParams);
          EntryKey EK{Callee, CalleeLocals, Globals};
          CallSite Site{ProcId, EntryL, EntryG, EdgeIdx, Locals};
          Callers[EK].push_back(Site);
          addPathEdge(Callee, CalleeLocals, Globals, 0, CalleeLocals,
                      Globals);
          for (const ExitState &Exit : Summaries[EK])
            applyReturn(Site, Exit, Callee);
        }
      }
      break;
    }
    }
    if (Found)
      return;
  }
}

OracleResult Tabulator::run() {
  const Proc &Main = Prog.main();
  unsigned GlobalBits = Prog.numGlobals();
  unsigned MainLocalBits = Main.numLocalSlots();
  assert(GlobalBits <= 20 && MainLocalBits <= 20 &&
         "oracle requires small variable counts");

  // Initial states: Init constrains only the program counter (Section 4);
  // globals and main's locals start nondeterministic.
  for (uint32_t G = 0; G < (1u << GlobalBits); ++G)
    for (uint32_t L = 0; L < (1u << MainLocalBits); ++L)
      addPathEdge(Prog.MainId, L, G, 0, L, G);

  // The oracle allocates no BDD nodes, so the manager-side probes never
  // fire here; poll the governor explicitly every 1024 worklist pops
  // (deadline and cancellation — a node budget cannot trip in this
  // engine). A trip propagates as support::ResourceInterrupt.
  uint64_t Pops = 0;
  while (!Worklist.empty() && !Found) {
    if (Governor && (++Pops & 1023u) == 0)
      Governor->check();
    std::array<uint32_t, 6> Edge = Worklist.front();
    Worklist.pop_front();
    process(Edge);
  }

  OracleResult Result;
  Result.Reachable = Found;
  Result.PathEdges = Seen.size();
  Result.Summaries = NumSummaries;
  return Result;
}

OracleResult interp::summaryReachability(const ProgramCfg &Cfg,
                                         unsigned TargetProcId,
                                         unsigned TargetPc,
                                         support::ResourceGovernor *Governor) {
  return Tabulator(Cfg, TargetProcId, TargetPc, Governor).run();
}

OracleResult
interp::summaryReachabilityOfLabel(const ProgramCfg &Cfg,
                                   const std::string &Label,
                                   support::ResourceGovernor *Governor) {
  unsigned ProcId = 0, Pc = 0;
  if (!Cfg.findLabelPc(Label, ProcId, Pc))
    return OracleResult{};
  return summaryReachability(Cfg, ProcId, Pc, Governor);
}
