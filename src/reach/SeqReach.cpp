//===- SeqReach.cpp - Sequential reachability algorithms ------------------===//

#include "reach/SeqReach.h"

#include "fpcalc/Evaluator.h"
#include "reach/SeqEngine.h"
#include "reach/Witness.h"
#include "support/Timer.h"
#include "symbolic/Encode.h"

#include <algorithm>

using namespace getafix;
using namespace getafix::reach;
using namespace getafix::fpc;
using namespace getafix::sym;

const char *reach::algorithmName(SeqAlgorithm Alg) {
  switch (Alg) {
  case SeqAlgorithm::SummarySimple:
    return "summary-simple";
  case SeqAlgorithm::EntryForward:
    return "entry-forward";
  case SeqAlgorithm::EntryForwardSplit:
    return "entry-forward-split";
  case SeqAlgorithm::EntryForwardOpt:
    return "entry-forward-opt";
  }
  return "?";
}

ConfVars SeqEngine::addConf(const std::string &Prefix) {
  ConfVars C;
  C.Mod = Factory.makeVar(Prefix + ".mod", Doms.Mod);
  C.Pc = Factory.makeVar(Prefix + ".pc", Doms.Pc);
  C.CG = Factory.makeVar(Prefix + ".CG", Doms.GVec);
  C.CL = Factory.makeVar(Prefix + ".CL", Doms.LVec);
  C.ECG = Factory.makeVar(Prefix + ".ECG", Doms.GVec);
  C.ECL = Factory.makeVar(Prefix + ".ECL", Doms.LVec);
  return C;
}

std::vector<Term> SeqEngine::headArgs(const ConfVars &C, int Mark) const {
  std::vector<Term> Args;
  if (Mark >= 0)
    Args.push_back(Mark == 2 ? Term::var(Fr) : Term::constant(Mark));
  for (VarId V : {C.Mod, C.Pc, C.CL, C.CG, C.ECL, C.ECG})
    Args.push_back(Term::var(V));
  return Args;
}

/// [Init] fr=1 ∧ Init(s.mod, s.pc, s.CL) ∧ s.CL=s.ECL ∧ s.CG=s.ECG.
Formula *SeqEngine::initClause(RelId Head, int Mark) {
  (void)Head;
  (void)Mark;
  return Sys.mkAnd({
      Sys.apply(Enc->InitRel,
                {Term::var(S.Mod), Term::var(S.Pc), Term::var(S.CL)}),
      Sys.eqVar(S.CL, S.ECL),
      Sys.eqVar(S.CG, S.ECG),
  });
}

/// [All entries, Section 4.1] every entry of every module is a summary
/// seed, reachable or not.
Formula *SeqEngine::allEntriesClause() {
  return Sys.mkAnd({
      Sys.apply(Enc->EntryRel,
                {Term::var(S.Mod), Term::var(S.Pc), Term::var(S.CL)}),
      Sys.eqVar(S.CL, S.ECL),
      Sys.eqVar(S.CG, S.ECG),
  });
}

/// [Internal] ∃x. Head(.., x) ∧ programInt(x → s).
Formula *SeqEngine::internalClause(RelId Head, int Mark) {
  ConfVars X = S;
  X.Pc = TPcF;
  X.CL = TLF;
  X.CG = TGF;
  return Sys.exists(
      {TPcF, TLF, TGF},
      Sys.mkAnd({
          Sys.apply(Head, headArgs(X, Mark)),
          Sys.applyVars(Enc->ProgramInt,
                        {S.Mod, TPcF, S.Pc, TLF, S.CL, TGF, S.CG}),
      }));
}

/// [Entry discovery, Section 4.2's third clause] s is an entry whose
/// instantiation is witnessed by a reachable caller state at a call.
Formula *SeqEngine::entryDiscoveryClause(RelId Head, int Mark,
                                         bool RelevantGuard) {
  ConfVars Caller;
  Caller.Mod = DMod;
  Caller.Pc = DPc;
  Caller.CL = DL;
  Caller.CG = S.CG; // Globals are shared across the call boundary.
  Caller.ECL = DEL;
  Caller.ECG = DEG;

  std::vector<Formula *> Body;
  if (RelevantGuard)
    Body.push_back(Sys.applyVars(Relevant, {DMod, DPc}));
  Body.push_back(Sys.apply(Head, headArgs(Caller, Mark)));
  Body.push_back(Sys.applyVars(Enc->ProgramCall,
                               {DMod, S.Mod, DPc, DL, S.CL, S.CG}));

  return Sys.mkAnd({
      Sys.eqConst(S.Pc, 0),
      Sys.eqVar(S.CL, S.ECL),
      Sys.eqVar(S.CG, S.ECG),
      Sys.exists({DMod, DPc, DL, DEL, DEG}, Sys.mkAnd(Body)),
  });
}

/// [Return, unsplit] one big relational product combining the caller
/// summary, the callee summary and the full Return relation — the form the
/// paper identifies as the conjunction bottleneck.
Formula *SeqEngine::returnClauseUnsplit(RelId CallerHead, RelId CalleeHead,
                                        int Mark) {
  ConfVars Caller = S;
  Caller.Pc = RTPc;
  Caller.CL = RTCL;
  Caller.CG = RTCG;

  ConfVars Callee;
  Callee.Mod = RUMod;
  Callee.Pc = RUPcX;
  Callee.CL = RULX;
  Callee.CG = RUGX;
  Callee.ECL = RUECL;
  Callee.ECG = RTCG;

  return Sys.exists(
      {RTPc, RTCL, RTCG, RUMod, RUPcX, RULX, RUGX, RUECL},
      Sys.mkAnd({
          Sys.apply(CallerHead, headArgs(Caller, Mark)),
          Sys.applyVars(Enc->ProgramCall,
                        {S.Mod, RUMod, RTPc, RTCL, RUECL, RTCG}),
          Sys.apply(CalleeHead, headArgs(Callee, Mark)),
          Sys.applyVars(Enc->ExitRel, {RUMod, RUPcX}),
          Sys.applyVars(Enc->SkipCall, {S.Mod, RTPc, S.Pc}),
          Sys.applyVars(Enc->SetReturn, {S.Mod, RUMod, RTPc, RUPcX, RTCL,
                                         RULX, RUGX, S.CL, S.CG}),
      }));
}

/// [Return, split — the Appendix formula] groups (A) caller-side and (B)
/// exit-side constraints so each summary BDD first meets only small
/// relations; the two groups share {tPc, tCG, uMod, uPcX, uECL}.
Formula *SeqEngine::returnClauseSplit(RelId CallerHead, RelId CalleeHead,
                                      int Mark, bool RelevantGuard) {
  ConfVars Caller = S;
  Caller.Pc = RTPc;
  Caller.CL = RTCL;
  Caller.CG = RTCG;

  ConfVars Callee;
  Callee.Mod = RUMod;
  Callee.Pc = RUPcX;
  Callee.CL = RULX;
  Callee.CG = RUGX;
  Callee.ECL = RUECL;
  Callee.ECG = RTCG;

  Formula *GroupA = Sys.exists(
      {RTCL},
      Sys.mkAnd({
          Sys.apply(CallerHead, headArgs(Caller, Mark)),
          Sys.applyVars(Enc->SkipCall, {S.Mod, RTPc, S.Pc}),
          Sys.applyVars(Enc->SetReturn1,
                        {S.Mod, RUMod, RTPc, RTCL, S.CL}),
          Sys.applyVars(Enc->ProgramCall,
                        {S.Mod, RUMod, RTPc, RTCL, RUECL, RTCG}),
      }));

  Formula *GroupB = Sys.exists(
      {RULX, RUGX},
      Sys.mkAnd({
          Sys.apply(CalleeHead, headArgs(Callee, Mark)),
          Sys.applyVars(Enc->ExitRel, {RUMod, RUPcX}),
          Sys.applyVars(Enc->SetReturn2, {S.Mod, RUMod, RTPc, RUPcX, RULX,
                                          S.CL, RUGX, S.CG}),
      }));

  std::vector<Formula *> Outer{GroupA, GroupB};
  if (RelevantGuard)
    Outer.push_back(Sys.mkOr({Sys.applyVars(Relevant, {S.Mod, RTPc}),
                              Sys.applyVars(Relevant, {RUMod, RUPcX})}));

  return Sys.exists({RTPc, RTCG, RUMod, RUPcX, RUECL}, Sys.mkAnd(Outer));
}

Formula *SeqEngine::modInGroup(unsigned Scc) {
  std::vector<Formula *> Cases;
  for (unsigned Proc : CG.SccMembers[Scc])
    Cases.push_back(Sys.eqConst(S.Mod, Proc));
  return Sys.mkOr(Cases);
}

/// The per-procedure compilation: the skeleton of SummarySimple
/// (Section 4.1's all-entries summaries, completed by a reachable-entries
/// fixpoint) instantiated once per call-graph SCC, so the relation
/// condensation is as wide as the program's call graph and the DAG
/// scheduler has real independent work. Per group X:
///
///   Summary_X    = (s.mod ∈ X ∧ allEntries)
///                ∨ internal(Summary_X)
///                ∨ ⋁_{Y callee group of X} return(Summary_X, Summary_Y)
///   ReachEntry_X = [X = main's group] init-seed
///                ∨ ⋁_{W caller group of X} (s.mod ∈ X ∧ step via
///                      ReachEntry_W ∧ Summary_W ∧ programCall)
///
/// with the verdict and stats roots
///
///   Hits       = ⋁_X Summary_X ∧ ReachEntry_X
///   SummaryAll = ⋁_X Summary_X.
///
/// The mod ∈ X guards pin each relation to its group's modules without
/// adding variables, so the BDD layout (and hence every per-relation round
/// value) is independent of the grouping; summary tuples then stay in
/// their group by induction (internal/return clauses preserve s.mod, and
/// a callee application Summary_Y only admits mod ∈ Y tuples). Cross-group
/// dependencies point strictly at lower (callee) SCCs, so every defined
/// relation is its own condensation node. The algorithm still selects the
/// return-clause flavour (unsplit for summary/ef, the Appendix A/B split
/// for ef-split/ef-opt); EF-opt's Relevant-mark machinery is a monolithic
/// round-scheduling device subsumed by per-SCC semi-naive evaluation, so
/// its split compiles without it — and every split system is monotone.
void SeqEngine::buildSplitSystem() {
  const bp::Program &Prog = *Cfg.Prog;
  std::vector<VarId> ConfFormals{S.Mod, S.Pc, S.CL, S.CG, S.ECL, S.ECG};
  const unsigned NumGroups = unsigned(CG.numSccs());
  const bool SplitRet = Alg == SeqAlgorithm::EntryForwardSplit ||
                        Alg == SeqAlgorithm::EntryForwardOpt;
  const unsigned MainScc = CG.SccOf[Prog.MainId];

  // Declare everything first: return/step clauses reference other groups.
  GroupSummary.resize(NumGroups);
  GroupEntry.resize(NumGroups);
  for (unsigned X = 0; X < NumGroups; ++X) {
    // Mutually-recursive groups are named after their lowest-id member;
    // proc names are unique, so so are these.
    const std::string &Name = Prog.proc(CG.SccMembers[X].front()).Name;
    GroupSummary[X] = Sys.declareRel("Summary_" + Name, ConfFormals);
    GroupEntry[X] =
        Sys.declareRel("ReachEntry_" + Name, {S.Mod, S.ECL, S.ECG});
  }
  Hits = Sys.declareRel("Hits", ConfFormals);
  SummaryAll = Sys.declareRel("SummaryAll", ConfFormals);
  Main = Hits;

  for (unsigned X = 0; X < NumGroups; ++X) {
    // Does some procedure of X call back into X (self- or mutual
    // recursion)? Then X is among its own caller/callee groups.
    bool IntraCalls = false;
    for (unsigned Proc : CG.SccMembers[X])
      for (unsigned Callee : CG.Callees[Proc])
        IntraCalls |= CG.SccOf[Callee] == X;

    std::vector<Formula *> Clauses;
    Clauses.push_back(Sys.mkAnd({modInGroup(X), allEntriesClause()}));
    Clauses.push_back(internalClause(GroupSummary[X], -1));
    std::vector<unsigned> CalleeGroups = CG.SccCallees[X];
    if (IntraCalls)
      CalleeGroups.push_back(X);
    for (unsigned Y : CalleeGroups)
      Clauses.push_back(
          SplitRet
              ? returnClauseSplit(GroupSummary[X], GroupSummary[Y], -1,
                                  false)
              : returnClauseUnsplit(GroupSummary[X], GroupSummary[Y], -1));
    Sys.define(GroupSummary[X], Sys.mkOr(Clauses));

    std::vector<Formula *> Entry;
    if (X == MainScc)
      Entry.push_back(Sys.apply(
          Enc->InitRel,
          {Term::var(S.Mod), Term::constant(0), Term::var(S.ECL)}));
    std::vector<unsigned> CallerGroups = CG.SccCallers[X];
    if (IntraCalls)
      CallerGroups.push_back(X);
    for (unsigned W : CallerGroups) {
      ConfVars Caller;
      Caller.Mod = DMod;
      Caller.Pc = DPc;
      Caller.CL = DL;
      Caller.CG = S.ECG; // Callee entry globals = caller globals at call.
      Caller.ECL = DEL;
      Caller.ECG = DEG;
      Entry.push_back(Sys.mkAnd({
          // programCall alone would admit any callee of W; pin to X.
          modInGroup(X),
          Sys.exists(
              {DMod, DPc, DL, DEL, DEG},
              Sys.mkAnd({
                  Sys.applyVars(GroupEntry[W], {DMod, DEL, DEG}),
                  Sys.apply(GroupSummary[W], headArgs(Caller, -1)),
                  Sys.applyVars(Enc->ProgramCall,
                                {DMod, S.Mod, DPc, DL, S.ECL, S.ECG}),
              })),
      }));
    }
    // A group nobody calls (and that is not main's) has no reachable
    // instantiation at all.
    Sys.define(GroupEntry[X],
               Entry.empty() ? Sys.bottom() : Sys.mkOr(Entry));
  }

  std::vector<Formula *> HitsDisj, AllDisj;
  for (unsigned X = 0; X < NumGroups; ++X) {
    HitsDisj.push_back(Sys.mkAnd({
        Sys.apply(GroupSummary[X], headArgs(S, -1)),
        Sys.applyVars(GroupEntry[X], {S.Mod, S.ECL, S.ECG}),
    }));
    AllDisj.push_back(Sys.apply(GroupSummary[X], headArgs(S, -1)));
  }
  Sys.define(Hits, Sys.mkOr(HitsDisj));
  Sys.define(SummaryAll, Sys.mkOr(AllDisj));
}

void SeqEngine::buildSystem() {
  const bp::Program &Prog = *Cfg.Prog;
  unsigned MaxLocals = Prog.maxLocalSlots();
  unsigned NumGlobals = Prog.numGlobals();

  Doms.Mod = Sys.addDomain("Module", Prog.Procs.size());
  Doms.Pc = Sys.addDomain("PrCount", Cfg.maxPcs());
  Doms.GVec = Sys.addBitDomain("Global", std::max(NumGlobals, 1u));
  Doms.LVec = Sys.addBitDomain("Local", std::max(MaxLocals, 1u));
  ChoiceDom = Sys.addDomain("Choice",
                            uint64_t(1) << ProgramEncoder::maxChoiceBits(Cfg));

  Enc = std::make_unique<ProgramEncoder>(Sys, Factory, Doms, Cfg, ChoiceDom);

  S = addConf("s");
  Fr = Factory.makeVar("fr", Sys.boolDomain());
  RvMod = Factory.makeVar("rv.mod", Doms.Mod);
  RvPc = Factory.makeVar("rv.pc", Doms.Pc);
  TPcF = Factory.makeVar("x.pc", Doms.Pc);
  TLF = Factory.makeVar("x.CL", Doms.LVec);
  TGF = Factory.makeVar("x.CG", Doms.GVec);
  DMod = Factory.makeVar("d.mod", Doms.Mod);
  DPc = Factory.makeVar("d.pc", Doms.Pc);
  DL = Factory.makeVar("d.CL", Doms.LVec);
  DEL = Factory.makeVar("d.ECL", Doms.LVec);
  DEG = Factory.makeVar("d.ECG", Doms.GVec);
  RTPc = Factory.makeVar("t.pc", Doms.Pc);
  RTCL = Factory.makeVar("t.CL", Doms.LVec);
  RTCG = Factory.makeVar("t.CG", Doms.GVec);
  RUMod = Factory.makeVar("u.mod", Doms.Mod);
  RUPcX = Factory.makeVar("u.pc", Doms.Pc);
  RULX = Factory.makeVar("u.CL", Doms.LVec);
  RUGX = Factory.makeVar("u.CG", Doms.GVec);
  RUECL = Factory.makeVar("u.ECL", Doms.LVec);

  CG = bp::buildCallGraph(Cfg);

  std::vector<VarId> ConfFormals{S.Mod, S.Pc, S.CL, S.CG, S.ECL, S.ECG};

  if (Split) {
    buildSplitSystem();
  } else
  switch (Alg) {
  case SeqAlgorithm::SummarySimple: {
    Main = Sys.declareRel("Summary", ConfFormals);
    Sys.define(Main, Sys.mkOr({
                         allEntriesClause(),
                         internalClause(Main, -1),
                         returnClauseUnsplit(Main, Main, -1),
                     }));
    // Reachable module instantiations: ReachEntry(mod, entryL, entryG).
    ReachEntry = Sys.declareRel("ReachEntry", {S.Mod, S.ECL, S.ECG});
    Formula *Seed = Sys.apply(
        Enc->InitRel,
        {Term::var(S.Mod), Term::constant(0), Term::var(S.ECL)});
    // A callee instantiation is reachable if some reachable caller
    // instantiation has a summary state at a call into it.
    ConfVars Caller;
    Caller.Mod = DMod;
    Caller.Pc = DPc;
    Caller.CL = DL;
    Caller.CG = S.ECG; // Callee entry globals = caller globals at call.
    Caller.ECL = DEL;
    Caller.ECG = DEG;
    Formula *Step = Sys.exists(
        {DMod, DPc, DL, DEL, DEG},
        Sys.mkAnd({
            Sys.applyVars(ReachEntry, {DMod, DEL, DEG}),
            Sys.apply(Main, headArgs(Caller, -1)),
            Sys.applyVars(Enc->ProgramCall,
                          {DMod, S.Mod, DPc, DL, S.ECL, S.ECG}),
        }));
    Sys.define(ReachEntry, Sys.mkOr({Seed, Step}));
    break;
  }
  case SeqAlgorithm::EntryForward:
  case SeqAlgorithm::EntryForwardSplit: {
    bool SplitRet = Alg == SeqAlgorithm::EntryForwardSplit;
    Main = Sys.declareRel("SummaryEF", ConfFormals);
    Sys.define(Main,
               Sys.mkOr({
                   initClause(Main, -1),
                   internalClause(Main, -1),
                   entryDiscoveryClause(Main, -1, false),
                   SplitRet ? returnClauseSplit(Main, Main, -1, false)
                            : returnClauseUnsplit(Main, Main, -1),
               }));
    break;
  }
  case SeqAlgorithm::EntryForwardOpt: {
    std::vector<VarId> MarkedFormals{Fr};
    MarkedFormals.insert(MarkedFormals.end(), ConfFormals.begin(),
                         ConfFormals.end());
    Main = Sys.declareRel("SummaryEFopt", MarkedFormals);
    Relevant = Sys.declareRel("Relevant", {RvMod, RvPc});
    New1 = Sys.declareRel("New1", ConfFormals);
    New2 = Sys.declareRel("New2", ConfFormals);

    // Relevant(mod, pc): PCs of states discovered in the last round —
    // marked 1 but not yet 0. The negation makes the system non-monotone;
    // the algorithmic semantics (Section 3) is what gives it meaning.
    {
      ConfVars R = S;
      R.Mod = RvMod;
      R.Pc = RvPc;
      Formula *Pos = Sys.apply(Main, headArgs(R, 1));
      Formula *Neg = Sys.mkNot(Sys.apply(Main, headArgs(R, 0)));
      Sys.define(Relevant, Sys.exists({R.CL, R.CG, R.ECL, R.ECG},
                                      Sys.mkAnd({Pos, Neg})));
    }

    // New1: image-closure of the relevant states under internal moves
    // (clauses 5 and 6).
    {
      Formula *Seeds = Sys.mkAnd({
          Sys.apply(Main, headArgs(S, 1)),
          Sys.applyVars(Relevant, {S.Mod, S.Pc}),
      });
      Sys.define(New1, Sys.mkOr({Seeds, internalClause(New1, -1)}));
    }

    // New2: one round of call discoveries and returns touching a relevant
    // PC (clauses 7-11).
    Sys.define(New2, Sys.mkOr({
                         entryDiscoveryClause(Main, 1, true),
                         returnClauseSplit(Main, Main, 1, true),
                     }));

    // SummaryEFopt (clauses 1-3): re-seed init, demote last round's marks,
    // admit the new states with fr=1.
    {
      Formula *C1 = Sys.mkAnd({Sys.eqConst(Fr, 1), initClause(Main, -1)});
      Formula *C2 = Sys.apply(Main, headArgs(S, 1)); // fr unconstrained.
      Formula *C3 = Sys.mkAnd({
          Sys.eqConst(Fr, 1),
          Sys.mkOr({Sys.applyVars(New1, {S.Mod, S.Pc, S.CL, S.CG, S.ECL,
                                         S.ECG}),
                    Sys.applyVars(New2, {S.Mod, S.Pc, S.CL, S.CG, S.ECL,
                                         S.ECG})}),
      });
      Sys.define(Main, Sys.mkOr({C1, C2, C3}));
    }
    break;
  }
  }

  // Solve order, condensation width, and relation count — computed here
  // once so solves and sessions read them for free. The order is every
  // defined relation in callees-first (dependency-topological) sequence;
  // in split mode the resume-chain paths drive it directly.
  {
    fpc::DependencyGraph G(Sys);
    for (const std::vector<RelId> &Members : G.sccs())
      for (RelId R : Members)
        if (!Sys.relation(R).isInput())
          Order.push_back(R);
    Width = Split ? unsigned(CG.numSccs())
                  : fpc::definedCondensationWidth(Sys, G);
    NumSummaryRels = Split ? unsigned(CG.numSccs()) : 1;
  }

#ifndef NDEBUG
  DiagnosticEngine Diags;
  assert(Sys.validate(Diags) && "algorithm formulae must type-check");
  verifyEquationPlan();
#endif
}

#ifndef NDEBUG
/// Cross-checks the dependency analysis against what each algorithm's
/// construction promises: which disjuncts of the main equation distribute
/// over union (and therefore run in delta mode), and whether the system is
/// monotone. A drift here means either a clause builder or the classifier
/// changed semantics.
void SeqEngine::verifyEquationPlan() const {
  using fpc::DisjunctKind;
  fpc::DependencyGraph G(Sys);

  if (Split) {
    // Every split relation — any algorithm — must be monotone (semi-naive
    // applicable) with no opaque disjuncts: cross-group applications hit
    // completed lower relations, intra-group recursion is direct and
    // positive. Each defined relation must also be its own condensation
    // node (Summary never reads ReachEntry, so no cross pairing).
    for (RelId R : Order) {
      fpc::EquationPlan P = fpc::planEquation(Sys, G, R);
      assert(P.SemiNaive && "split relations must be monotone");
      for (const fpc::DisjunctPlan &D : P.Disjuncts)
        assert(D.Kind != DisjunctKind::Opaque &&
               "split clauses must be non-recursive or distributive");
      assert(G.sccs()[G.sccOf(R)].size() == 1 &&
             "split relations must be singleton condensation nodes");
      (void)P;
    }
    assert(Width == CG.numSccs());
    return;
  }

  fpc::EquationPlan P = fpc::planEquation(Sys, G, Main);

  switch (Alg) {
  case SeqAlgorithm::SummarySimple:
    // [all-entries | internal | return]: seed is non-recursive, the image
    // clauses distribute (the return clause bilinearly, 2 occurrences).
    assert(P.SemiNaive && "summary system must be monotone");
    assert(P.Disjuncts.size() == 3);
    assert(P.Disjuncts[0].Kind == DisjunctKind::NonRecursive);
    assert(P.Disjuncts[1].Kind == DisjunctKind::Distributive);
    assert(P.Disjuncts[2].Kind == DisjunctKind::Distributive);
    assert(P.Disjuncts[2].Occurrences.size() == 2);
    break;
  case SeqAlgorithm::EntryForward:
  case SeqAlgorithm::EntryForwardSplit:
    // [init | internal | entry-discovery | return].
    assert(P.SemiNaive && "entry-forward system must be monotone");
    assert(P.Disjuncts.size() == 4);
    assert(P.Disjuncts[0].Kind == DisjunctKind::NonRecursive);
    for (unsigned I = 1; I < 4; ++I)
      assert(P.Disjuncts[I].Kind == DisjunctKind::Distributive);
    assert(P.Disjuncts[3].Occurrences.size() == 2);
    break;
  case SeqAlgorithm::EntryForwardOpt:
    // Relevant negates the main relation inside a cycle: the optimized
    // system is non-monotone by design, and must run the exact naive
    // scheme (the paper's Section-3 operational semantics).
    assert(!P.SemiNaive &&
           "EF-opt must fall back to naive (non-monotone Relevant)");
    assert(!G.isMonotoneSelf(Main));
    break;
  }
}
#endif

SeqResult SeqEngine::solve(unsigned ProcId, unsigned Pc,
                           const SeqOptions &Opts) {
  SeqResult Result;
  Timer T;

  BddManager Mgr(0, Opts.CacheBits);
  Mgr.setGcThreshold(Opts.GcThreshold);
  if (Opts.Governor)
    Mgr.setGovernor(Opts.Governor);
  Layout L = Factory.makeLayout(Mgr);
  Evaluator Ev(Sys, Mgr, std::move(L), Opts.Strategy,
               Opts.FrontierCofactor);
  Ev.setThreads(Opts.Threads);
  Ev.setDisjunctParallelThreshold(Opts.DisjunctParallelThreshold);

  try {
    Enc->bind(Ev, ProcId, Pc);

    // Target states over the head tuple (plus don't-care fr for the opt
    // algorithm, whose head has the mark in front).
    Bdd TargetStates =
        Ev.encodeEqConst(S.Mod, ProcId) & Ev.encodeEqConst(S.Pc, Pc);

    EvalOptions EOpts;
    EOpts.MaxIterations = Opts.MaxIterations;
    if (Opts.EarlyStop && !Split && Alg != SeqAlgorithm::SummarySimple)
      EOpts.EarlyStop = &TargetStates;

    if (Split) {
      // Per-procedure mode: Hits is the verdict root, SummaryAll the
      // stats root. Early stop does not apply — the roots are
      // non-recursive, so all summary work happens while their
      // dependencies are pre-solved (in parallel under Threads > 1).
      if (Opts.MaxIterations == 0) {
        EvalOptions Plain;
        EvalResult H = Ev.evaluate(Hits, Plain);
        EvalResult All = Ev.evaluate(SummaryAll, Plain);
        Result.Reachable = !(H.Value & TargetStates).isZero();
        Result.SummaryNodes = All.Value.nodeCount();
      } else {
        // An iteration cap must truncate every relation of the chain, but
        // `evaluate` pre-solves dependencies uncapped. Drive the chain
        // relation-by-relation instead, pinning each capped value so
        // higher relations read the truncation.
        std::map<RelId, FixpointState> States;
        bool HitLimit = false;
        for (RelId R : Order) {
          FixpointState &St = States[R];
          EvalOptions RO;
          RO.MaxIterations = Opts.MaxIterations;
          EvalResult ER = Ev.resume(R, St, RO);
          HitLimit |= ER.HitIterationLimit;
          if (!St.Saturated)
            Ev.pinCompleted(R, St.Value);
        }
        Result.HitIterationLimit = HitLimit;
        Result.Reachable =
            !(States[Hits].Value & TargetStates).isZero();
        Result.SummaryNodes = States[SummaryAll].Value.nodeCount();
      }
    } else if (Alg == SeqAlgorithm::SummarySimple) {
      // Query: ∃s. ReachEntry(s.mod, s.ECL, s.ECG) ∧ Summary(s) ∧ target.
      // Summary is solved first; ReachEntry reuses it as a memoized nested
      // relation. EOpts carries no EarlyStop in this branch, so it is the
      // right options set for both solves.
      EvalResult Summaries = Ev.evaluate(Main, EOpts);
      EvalResult Entries = Ev.evaluate(ReachEntry, EOpts);
      Result.HitIterationLimit =
          Summaries.HitIterationLimit || Entries.HitIterationLimit;
      Bdd Hits = (Summaries.Value & Entries.Value) & TargetStates;
      Result.Reachable = !Hits.isZero();
      Result.SummaryNodes = Summaries.Value.nodeCount();
    } else {
      EvalResult R = Ev.evaluate(Main, EOpts);
      Result.HitIterationLimit = R.HitIterationLimit;
      Result.Reachable = !(R.Value & TargetStates).isZero();
      Result.SummaryNodes = R.Value.nodeCount();
    }
  } catch (const support::ResourceInterrupt &RI) {
    // Clean limit stop: the verdict is indeterminate, but every counter
    // harvested below still covers the completed rounds' work.
    Result.Limit = RI.Limit;
  }

  Result.Relations = Ev.stats();
  if (Split) {
    // Per-relation rounds are deterministic however the DAG schedules
    // them, so these aggregates are identical across thread counts and
    // across fresh/session solves: Iterations is the longest per-relation
    // Tarski chain, DeltaRounds the total delta work.
    for (RelId R : Order) {
      auto It = Result.Relations.find(Sys.relation(R).Name);
      if (It == Result.Relations.end())
        continue;
      Result.Iterations = std::max(Result.Iterations, It->second.Iterations);
      Result.DeltaRounds += It->second.DeltaRounds;
    }
  } else {
    auto StatsIt = Result.Relations.find(Sys.relation(Main).Name);
    if (StatsIt != Result.Relations.end()) {
      Result.Iterations = StatsIt->second.Iterations;
      Result.DeltaRounds = StatsIt->second.DeltaRounds;
    }
  }
  Result.CondensationWidth = Width;
  Result.SummaryRelations = NumSummaryRels;
  Result.Cofactor = Ev.cofactorStats();
  Result.Bdd = Mgr.stats();
  // Fold the per-worker managers' counters into the snapshot so a
  // parallel solve reports its whole BDD workload, not just the main
  // manager's share.
  Result.Bdd.merge(Ev.workerBddStats());
  Result.SccsSolvedParallel = Ev.parallelStats().SccsSolvedParallel;
  Result.RoundsParallel = Ev.parallelStats().RoundsParallel;
  Result.DisjunctsParallel = Ev.parallelStats().DisjunctsParallel;
  Result.ImportedNodes = Ev.parallelStats().ImportedNodes;
  Result.PeakLiveNodes = Result.Bdd.PeakNodes;
  Result.BddNodesCreated = Result.Bdd.NodesCreated;
  Result.BddCacheLookups = Result.Bdd.CacheLookups;
  Result.BddCacheHits = Result.Bdd.CacheHits;
  Result.SummariesRecomputed = Result.Iterations;
  Result.Seconds = T.seconds();
  return Result;
}

//===----------------------------------------------------------------------===//
// SeqSession: cross-query incremental solving
//===----------------------------------------------------------------------===//

struct SeqSession::Impl {
  const bp::ProgramCfg &Cfg;
  SeqOptions Opts;
  SeqEngine Engine;
  BddManager Mgr;
  Evaluator Ev;
  /// Persistent rounds + rings of the main relation (EF algorithms).
  IncrementalFixpoint Fix;

  // SummarySimple solves to a full (target-independent) fixpoint once;
  // these cache the two relation values and the counts a fresh solve of
  // any target would report.
  bool SimpleSolved = false;
  Bdd SimpleSummary, SimpleEntries;
  bool SimpleHitLimit = false;
  uint64_t SimpleIterations = 0, SimpleDeltaRounds = 0;
  size_t SimpleSummaryNodes = 0;

  // Per-procedure split mode (any algorithm): the whole relation chain is
  // target-independent, so the first query solves it once — driving each
  // relation through `Evaluator::resume` over these caller-held states,
  // callees-first — and every later query is a conjunction against the
  // cached Hits value. A governor interrupt leaves the current relation
  // at its last completed round; the retry loop skips the already
  // saturated prefix and resumes the chain bit-identically. This
  // per-relation state is also the seam for future *partial*
  // invalidation: editing one procedure body need only clear the states
  // (and downstream memos) of its call-graph ancestors, not the world.
  bool SplitSolved = false;
  std::map<RelId, FixpointState> SplitStates;
  bool SplitHitLimit = false;
  uint64_t SplitIterations = 0, SplitDeltaRounds = 0;
  size_t SplitSummaryNodes = 0;
  Bdd SplitHits;

  /// Witness queries go through a persistent extractor session (solves
  /// the EntryForward system with rings once, extracts per target);
  /// created on the first witness query.
  std::unique_ptr<WitnessSession> Witness;

  /// True between a `clearComputedCache` and the next query: the main
  /// manager's cache is allocated but holds no live working set, so the
  /// footprint estimate discounts it.
  bool CacheCold = false;

  /// High-water mark of retained (reachable) nodes, sampled at the end
  /// of every query; `peakLiveNodes()` reports it. Allocation high-water
  /// (`BddStats::PeakNodes`) would also count uncollected garbage, which
  /// the retention diet deliberately produces more of in exchange for
  /// retaining far less.
  size_t PeakLive = 0;

  /// Per-attempt resource governor (`setGovernor`; null = ungoverned).
  /// Installed on the manager around each solve, never across solves.
  support::ResourceGovernor *Gov = nullptr;

  Impl(const bp::ProgramCfg &Cfg, const SeqOptions &Opts)
      : Cfg(Cfg), Opts(Opts),
        Engine(Cfg, Opts.Alg, !Opts.MonolithicSummary),
        Mgr(0, Opts.CacheBits),
        Ev(Engine.system(), Mgr, Engine.factory().makeLayout(Mgr),
           Opts.Strategy, Opts.FrontierCofactor) {
    Mgr.setGcThreshold(Opts.GcThreshold);
    Fix.setKeyframeInterval(Opts.RingKeyframeInterval);
    // The worker pool (Threads > 1) lives inside the evaluator, so it is
    // part of the session's persistent state: later queries resume over
    // the same per-worker managers. Queries themselves stay serialized —
    // one session serves one caller at a time.
    Ev.setThreads(Opts.Threads);
    Ev.setDisjunctParallelThreshold(Opts.DisjunctParallelThreshold);
    // The target relation is declared but read by no clause, so one
    // targetless binding serves every query; rebinding per target would
    // needlessly drop the evaluator's memo layers.
    Engine.encoder().bind(Ev, ~0u, 0);
  }
};

SeqSession::SeqSession(const bp::ProgramCfg &Cfg, const SeqOptions &Opts)
    : I(std::make_unique<Impl>(Cfg, Opts)) {}

SeqSession::~SeqSession() = default;

const SeqOptions &SeqSession::options() const { return I->Opts; }

void SeqSession::setGovernor(support::ResourceGovernor *G) {
  I->Gov = G;
  if (I->Witness)
    I->Witness->setGovernor(G);
}

void SeqSession::clearComputedCache() {
  I->Mgr.clearComputedCache();
  I->CacheCold = true;
  // The witness sub-session runs its own manager (the ring-recording
  // entry-forward solve); the memory valve must reach it too.
  if (I->Witness)
    I->Witness->clearComputedCache();
}

size_t SeqSession::liveNodes() const {
  // Reachable-only count: the session's automatic-gc threshold is rarely
  // reached, so `liveNodeCount()` would also charge garbage that merely
  // awaits the next collection — transient solve intermediates that say
  // nothing about what the session retains. Parallel worker managers are
  // session state too (warm across queries); their merged gauge is the
  // sum of per-worker live counts.
  return I->Mgr.reachableNodeCount() + I->Ev.workerBddStats().LiveNodes +
         (I->Witness ? I->Witness->liveNodes() : 0);
}

size_t SeqSession::peakLiveNodes() const {
  // Peak *retained* state, sampled at query boundaries (plus the current
  // value, so the gauge never under-reports a freshly grown session).
  return std::max(I->PeakLive, liveNodes());
}

size_t SeqSession::memoryFootprint() const {
  constexpr size_t BytesPerWorkerNode = 24; // node + refcount + bucket.
  return I->Mgr.reachableMemoryEstimate(/*CountCache=*/!I->CacheCold) +
         I->Ev.workerBddStats().LiveNodes * BytesPerWorkerNode +
         (I->Witness ? I->Witness->memoryFootprint() : 0);
}

SeqResult SeqSession::solve(unsigned ProcId, unsigned Pc) {
  Impl &S = *I;
  if (!S.Opts.ReuseSolvedState) {
    // Ablation / differential baseline: every query pays a fresh solve.
    SeqOptions O = S.Opts;
    O.Governor = S.Gov;
    return checkReachability(S.Cfg, ProcId, Pc, O);
  }

  SeqResult Result;
  Timer T;
  S.CacheCold = false; // Encoding/solving repopulates the computed cache.
  BddStats Before = S.Mgr.stats();
  BddStats WorkerBefore = S.Ev.workerBddStats();
  fpc::ParallelStats ParBefore = S.Ev.parallelStats();
  fpc::CofactorStats CfBefore = S.Ev.cofactorStats();

  // The governor spans exactly this query; an interrupted query leaves
  // the session's persistent state (rings, summaries, memos) at the last
  // completed round, valid for a retry.
  if (S.Gov)
    S.Mgr.setGovernor(S.Gov);
  try {
  const sym::ConfVars &Conf = S.Engine.conf();
  Bdd TargetStates = S.Ev.encodeEqConst(Conf.Mod, ProcId) &
                     S.Ev.encodeEqConst(Conf.Pc, Pc);

  if (S.Engine.split()) {
    bool FirstQuery = !S.SplitSolved;
    if (FirstQuery) {
      const uint64_t Cap = S.Opts.MaxIterations;
      for (RelId R : S.Engine.solveOrder()) {
        FixpointState &St = S.SplitStates[R];
        if (St.Saturated)
          continue; // Solved by an earlier (interrupted) attempt.
        if (Cap != 0 && St.Rounds >= Cap) {
          // Already truncated at the cap by an earlier attempt; resuming
          // would run extra rounds past it.
          S.SplitHitLimit = true;
          S.Ev.pinCompleted(R, St.Value);
          continue;
        }
        EvalOptions RO;
        RO.MaxIterations = Cap;
        EvalResult ER = S.Ev.resume(R, St, RO);
        S.SplitHitLimit |= ER.HitIterationLimit;
        if (!St.Saturated)
          S.Ev.pinCompleted(R, St.Value);
      }
      S.SplitHits = S.SplitStates[S.Engine.hitsRel()].Value;
      S.SplitSummaryNodes =
          S.SplitStates[S.Engine.summaryAllRel()].Value.nodeCount();
      const auto &Stats = S.Ev.stats();
      for (RelId R : S.Engine.solveOrder()) {
        auto It = Stats.find(S.Engine.system().relation(R).Name);
        if (It == Stats.end())
          continue;
        S.SplitIterations =
            std::max(S.SplitIterations, It->second.Iterations);
        S.SplitDeltaRounds += It->second.DeltaRounds;
      }
      S.SplitSolved = true;
    }
    Result.Reachable = !(S.SplitHits & TargetStates).isZero();
    Result.HitIterationLimit = S.SplitHitLimit;
    Result.Iterations = S.SplitIterations;
    Result.DeltaRounds = S.SplitDeltaRounds;
    Result.SummaryNodes = S.SplitSummaryNodes;
    (FirstQuery ? Result.SummariesRecomputed : Result.SummariesReused) =
        S.SplitIterations;
  } else if (S.Opts.Alg == SeqAlgorithm::SummarySimple) {
    bool FirstQuery = !S.SimpleSolved;
    if (FirstQuery) {
      // Same flow as the one-shot solve: no early stop in this branch, so
      // both values are target-independent and fully reusable.
      EvalOptions EOpts;
      EOpts.MaxIterations = S.Opts.MaxIterations;
      EvalResult Summaries = S.Ev.evaluate(S.Engine.mainRel(), EOpts);
      EvalResult Entries = S.Ev.evaluate(S.Engine.reachEntryRel(), EOpts);
      S.SimpleSummary = Summaries.Value;
      S.SimpleEntries = Entries.Value;
      S.SimpleHitLimit =
          Summaries.HitIterationLimit || Entries.HitIterationLimit;
      S.SimpleSummaryNodes = Summaries.Value.nodeCount();
      const auto &Stats = S.Ev.stats();
      auto It = Stats.find(
          S.Engine.system().relation(S.Engine.mainRel()).Name);
      if (It != Stats.end()) {
        S.SimpleIterations = It->second.Iterations;
        S.SimpleDeltaRounds = It->second.DeltaRounds;
      }
      S.SimpleSolved = true;
    }
    Bdd Hits = (S.SimpleSummary & S.SimpleEntries) & TargetStates;
    Result.Reachable = !Hits.isZero();
    Result.HitIterationLimit = S.SimpleHitLimit;
    Result.Iterations = S.SimpleIterations;
    Result.DeltaRounds = S.SimpleDeltaRounds;
    Result.SummaryNodes = S.SimpleSummaryNodes;
    (FirstQuery ? Result.SummariesRecomputed : Result.SummariesReused) =
        S.SimpleIterations;
  } else {
    bool EarlyStop = S.Opts.EarlyStop;
    IncrementalFixpoint::Answer A =
        S.Fix.query(S.Ev, S.Engine.mainRel(), TargetStates, EarlyStop,
                    S.Opts.MaxIterations);
    Result.Reachable = A.Reachable;
    Result.HitIterationLimit = A.HitIterationLimit;
    Result.Iterations = A.Iterations;
    Result.SummaryNodes = A.Value.nodeCount();
    // A fresh solve's DeltaRounds is Iterations - 1 whenever the delta
    // core runs (every round after the first is a delta round, however
    // the solve stops), and 0 under the naive scheme.
    bool DeltaCore = S.Opts.Strategy == EvalStrategy::SemiNaive &&
                     S.Ev.plan(S.Engine.mainRel()).SemiNaive;
    Result.DeltaRounds =
        DeltaCore && A.Iterations > 0 ? A.Iterations - 1 : 0;
    Result.SummariesReused = A.RoundsReused;
    Result.SummariesRecomputed = A.RoundsComputed;
  }
  } catch (const support::ResourceInterrupt &RI) {
    Result.Limit = RI.Limit;
  }
  S.Mgr.setGovernor(nullptr);

  // Session statistics are cumulative where fresh solves report
  // per-solve numbers: Relations accumulates across queries, and the
  // BDD counters are reported as this query's delta on the shared
  // manager (peaks stay absolute).
  Result.Relations = S.Ev.stats();
  Result.CondensationWidth = S.Engine.condensationWidth();
  Result.SummaryRelations = S.Engine.summaryRelations();
  Result.Cofactor = S.Ev.cofactorStats();
  Result.Cofactor.Applications -= CfBefore.Applications;
  Result.Cofactor.SupportBefore -= CfBefore.SupportBefore;
  Result.Cofactor.SupportAfter -= CfBefore.SupportAfter;
  Result.Bdd = S.Mgr.stats().since(Before);
  Result.Bdd.merge(S.Ev.workerBddStats().since(WorkerBefore));
  fpc::ParallelStats ParDelta = S.Ev.parallelStats().since(ParBefore);
  Result.SccsSolvedParallel = ParDelta.SccsSolvedParallel;
  Result.RoundsParallel = ParDelta.RoundsParallel;
  Result.DisjunctsParallel = ParDelta.DisjunctsParallel;
  Result.ImportedNodes = ParDelta.ImportedNodes;
  Result.PeakLiveNodes = Result.Bdd.PeakNodes;
  Result.BddNodesCreated = Result.Bdd.NodesCreated;
  Result.BddCacheLookups = Result.Bdd.CacheLookups;
  Result.BddCacheHits = Result.Bdd.CacheHits;
  Result.Seconds = T.seconds();
  S.PeakLive = std::max(S.PeakLive, liveNodes());
  return Result;
}

SeqResult SeqSession::solveLabel(const std::string &Label) {
  unsigned ProcId = 0, Pc = 0;
  if (!I->Cfg.findLabelPc(Label, ProcId, Pc)) {
    SeqResult Result;
    Result.TargetFound = false;
    return Result;
  }
  return solve(ProcId, Pc);
}

WitnessResult SeqSession::solveWithWitness(unsigned ProcId, unsigned Pc) {
  if (!I->Opts.ReuseSolvedState) {
    SeqOptions O = I->Opts;
    O.Governor = I->Gov;
    return checkReachabilityWithWitness(I->Cfg, ProcId, Pc, O);
  }
  if (!I->Witness) {
    // The EF algorithms run the very system the extractor walks, so hand
    // it the session's own engine, manager, evaluator, and recorded rings
    // (borrowed mode): witness and plain queries then share one solve and
    // one copy of every round, instead of the witness sub-session
    // re-solving EntryForward on a second manager. The other algorithms
    // solve a different system, so they keep an owned (delta-ringed)
    // sub-session.
    // The split compiles a different system than the (monolithic
    // EntryForward) extractor walks, so split sessions always use an
    // owned witness sub-session.
    bool Shared = I->Opts.MonolithicSummary &&
                  (I->Opts.Alg == SeqAlgorithm::EntryForward ||
                   I->Opts.Alg == SeqAlgorithm::EntryForwardSplit);
    if (Shared)
      I->Witness = std::make_unique<WitnessSession>(I->Engine, I->Mgr, I->Ev,
                                                    I->Fix, I->Opts);
    else
      I->Witness = std::make_unique<WitnessSession>(I->Cfg, I->Opts);
    I->Witness->setGovernor(I->Gov);
  }
  I->CacheCold = false; // Extraction repopulates the main computed cache
                        // in shared mode; harmless to assume otherwise.
  WitnessResult R = I->Witness->query(ProcId, Pc);
  I->PeakLive = std::max(I->PeakLive, liveNodes());
  return R;
}

bool SeqSession::answersFromState(unsigned ProcId, unsigned Pc,
                                  bool Witness) {
  Impl &S = *I;
  if (!S.Opts.ReuseSolvedState)
    return false;
  if (Witness)
    // Once the witness sub-session has solved its rings, any target is a
    // pure extraction.
    return S.Witness && S.Witness->solved();
  if (S.Engine.split())
    // The split chain is target-independent: once solved, every query is
    // a conjunction against the cached Hits value.
    return S.SplitSolved;
  if (S.Opts.Alg == SeqAlgorithm::SummarySimple)
    return S.SimpleSolved;
  S.CacheCold = false; // Probing encodes the target over the manager.
  const sym::ConfVars &Conf = S.Engine.conf();
  Bdd TargetStates = S.Ev.encodeEqConst(Conf.Mod, ProcId) &
                     S.Ev.encodeEqConst(Conf.Pc, Pc);
  return S.Fix.answersFromState(TargetStates, S.Opts.EarlyStop,
                                S.Opts.MaxIterations);
}

SeqResult reach::checkReachability(const bp::ProgramCfg &Cfg, unsigned ProcId,
                                   unsigned Pc, const SeqOptions &Opts) {
  SeqEngine Engine(Cfg, Opts.Alg, !Opts.MonolithicSummary);
  return Engine.solve(ProcId, Pc, Opts);
}

SeqResult reach::checkReachabilityOfLabel(const bp::ProgramCfg &Cfg,
                                          const std::string &Label,
                                          const SeqOptions &Opts) {
  unsigned ProcId = 0, Pc = 0;
  if (!Cfg.findLabelPc(Label, ProcId, Pc)) {
    SeqResult Result;
    Result.TargetFound = false;
    return Result;
  }
  return checkReachability(Cfg, ProcId, Pc, Opts);
}

std::string reach::formulaText(const bp::ProgramCfg &Cfg, SeqAlgorithm Alg) {
  SeqEngine Engine(Cfg, Alg);
  return Engine.text();
}

std::string reach::formulaText(const bp::ProgramCfg &Cfg,
                               const SeqOptions &Opts) {
  SeqEngine Engine(Cfg, Opts.Alg, !Opts.MonolithicSummary);
  return Engine.text();
}
