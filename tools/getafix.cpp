//===- getafix.cpp - The Getafix command-line checker ---------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool of Figure 1: reads a (possibly concurrent) Boolean program,
/// translates it and the selected fixed-point algorithm into the calculus,
/// and answers a label-reachability query YES/NO.
///
///   getafix [options] <program.bp>
///     --label <L>        target label (default ERR)
///     --algo <name>      summary | ef | ef-split | ef-opt | moped | bebop
///     --context-bound k  concurrent programs: max context switches
///     --rounds r         concurrent: round-robin with r rounds (implies
///                        --round-robin; overrides --context-bound)
///     --round-robin      concurrent: restrict schedules to round-robin
///     --witness          sequential: print a counterexample trace when
///                        the target is reachable
///     --print-formula    dump the fixed-point equation system and exit
///     --stats            print solver statistics
///
//===----------------------------------------------------------------------===//

#include "bp/Cfg.h"
#include "bp/Parser.h"
#include "concurrent/ConcReach.h"
#include "reach/Baselines.h"
#include "reach/SeqReach.h"
#include "reach/Witness.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace getafix;

namespace {

struct CliOptions {
  std::string File;
  std::string Label = "ERR";
  std::string Algo = "ef-opt";
  unsigned ContextBound = 2;
  unsigned Rounds = 0; ///< 0 means "not given".
  bool RoundRobin = false;
  bool Witness = false;
  bool PrintFormula = false;
  bool Stats = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: getafix [--label L] [--algo summary|ef|ef-split|"
               "ef-opt|moped|bebop]\n"
               "               [--context-bound k] [--rounds r] "
               "[--round-robin] [--witness]\n"
               "               [--print-formula] [--stats] <program.bp>\n");
  return 2;
}

bool isConcurrentSource(const std::string &Text) {
  // The concurrent grammar starts with `shared`; skip whitespace/comments
  // crudely by searching for the first keyword.
  size_t Pos = Text.find_first_not_of(" \t\r\n");
  return Pos != std::string::npos && Text.compare(Pos, 6, "shared") == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--label") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Label = V;
    } else if (Arg == "--algo") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Algo = V;
    } else if (Arg == "--context-bound") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.ContextBound = unsigned(std::atoi(V));
    } else if (Arg == "--rounds") {
      const char *V = Next();
      if (!V)
        return usage();
      Opts.Rounds = unsigned(std::atoi(V));
      Opts.RoundRobin = true;
    } else if (Arg == "--round-robin") {
      Opts.RoundRobin = true;
    } else if (Arg == "--witness") {
      Opts.Witness = true;
    } else if (Arg == "--print-formula") {
      Opts.PrintFormula = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Opts.File = Arg;
    }
  }
  if (Opts.File.empty())
    return usage();

  std::ifstream In(Opts.File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();

  DiagnosticEngine Diags;

  if (isConcurrentSource(Text)) {
    auto Conc = bp::parseConcurrentProgram(Text, Diags);
    if (!Conc) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 2;
    }
    auto Cfgs = conc::buildThreadCfgs(*Conc);
    conc::ConcOptions CO;
    CO.MaxContextSwitches =
        Opts.Rounds != 0
            ? conc::contextSwitchesForRounds(Opts.Rounds, Conc->numThreads())
            : Opts.ContextBound;
    CO.RoundRobin = Opts.RoundRobin;
    auto R = conc::checkConcReachabilityOfLabel(*Conc, Cfgs, Opts.Label, CO);
    if (!R.TargetFound) {
      std::fprintf(stderr, "error: label '%s' not found\n",
                   Opts.Label.c_str());
      return 2;
    }
    std::printf("%s\n", R.Reachable ? "YES" : "NO");
    if (Opts.Stats)
      std::printf("iterations=%llu reach-bdd-nodes=%zu "
                  "reach-states=%.0f time=%.3fs\n",
                  (unsigned long long)R.Iterations, R.ReachNodes,
                  R.ReachStates, R.Seconds);
    return R.Reachable ? 0 : 1;
  }

  auto Prog = bp::parseProgram(Text, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  auto Cfg = bp::buildCfg(*Prog);

  if (Opts.Algo == "moped" || Opts.Algo == "bebop") {
    auto R = Opts.Algo == "moped"
                 ? reach::mopedPostStarLabel(Cfg, Opts.Label)
                 : reach::bebopTabulateLabel(Cfg, Opts.Label);
    if (!R.TargetFound) {
      std::fprintf(stderr, "error: label '%s' not found\n",
                   Opts.Label.c_str());
      return 2;
    }
    std::printf("%s\n", R.Reachable ? "YES" : "NO");
    if (Opts.Stats)
      std::printf("iterations=%llu time=%.3fs\n",
                  (unsigned long long)R.Iterations, R.Seconds);
    return R.Reachable ? 0 : 1;
  }

  reach::SeqOptions SO;
  if (Opts.Algo == "summary")
    SO.Alg = reach::SeqAlgorithm::SummarySimple;
  else if (Opts.Algo == "ef")
    SO.Alg = reach::SeqAlgorithm::EntryForward;
  else if (Opts.Algo == "ef-split")
    SO.Alg = reach::SeqAlgorithm::EntryForwardSplit;
  else if (Opts.Algo == "ef-opt")
    SO.Alg = reach::SeqAlgorithm::EntryForwardOpt;
  else
    return usage();

  if (Opts.PrintFormula) {
    std::printf("%s", reach::formulaText(Cfg, SO.Alg).c_str());
    return 0;
  }

  if (Opts.Witness) {
    auto R = reach::checkReachabilityOfLabelWithWitness(Cfg, Opts.Label, SO);
    if (!R.TargetFound) {
      std::fprintf(stderr, "error: label '%s' not found\n",
                   Opts.Label.c_str());
      return 2;
    }
    std::printf("%s\n", R.Reachable ? "YES" : "NO");
    if (R.Reachable)
      std::printf("%s", reach::formatWitness(Cfg, R.Steps).c_str());
    if (Opts.Stats)
      std::printf("iterations=%llu steps=%zu\n",
                  (unsigned long long)R.Iterations, R.Steps.size());
    return R.Reachable ? 0 : 1;
  }

  auto R = reach::checkReachabilityOfLabel(Cfg, Opts.Label, SO);
  if (!R.TargetFound) {
    std::fprintf(stderr, "error: label '%s' not found\n", Opts.Label.c_str());
    return 2;
  }
  std::printf("%s\n", R.Reachable ? "YES" : "NO");
  if (Opts.Stats)
    std::printf("iterations=%llu summary-bdd-nodes=%zu peak-nodes=%zu "
                "time=%.3fs\n",
                (unsigned long long)R.Iterations, R.SummaryNodes,
                R.PeakLiveNodes, R.Seconds);
  return R.Reachable ? 0 : 1;
}
