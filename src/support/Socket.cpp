//===- Socket.cpp - POSIX socket plumbing ---------------------------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace getafix {
namespace support {

namespace {

void setError(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What + ": " + std::strerror(errno);
}

bool parseHost(const std::string &Host, sockaddr_in &Addr,
               std::string *Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  const char *H = Host.empty() ? "127.0.0.1" : Host.c_str();
  if (inet_pton(AF_INET, H, &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad IPv4 address '" + Host + "'";
    return false;
  }
  return true;
}

bool fillUnixAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "unix socket path too long: " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Socket listenTcp(const std::string &Host, unsigned Port, unsigned *ActualPort,
                 std::string *Error) {
  sockaddr_in Addr;
  if (!parseHost(Host, Addr, Error))
    return Socket();
  Addr.sin_port = htons(static_cast<uint16_t>(Port));

  Socket S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    setError(Error, "socket");
    return Socket();
  }
  int One = 1;
  ::setsockopt(S.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    setError(Error, "bind");
    return Socket();
  }
  if (::listen(S.fd(), 64) != 0) {
    setError(Error, "listen");
    return Socket();
  }
  if (ActualPort) {
    sockaddr_in Bound;
    socklen_t Len = sizeof(Bound);
    if (::getsockname(S.fd(), reinterpret_cast<sockaddr *>(&Bound), &Len) !=
        0) {
      setError(Error, "getsockname");
      return Socket();
    }
    *ActualPort = ntohs(Bound.sin_port);
  }
  return S;
}

Socket listenUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return Socket();
  ::unlink(Path.c_str()); // Stale socket from a previous run.

  Socket S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid()) {
    setError(Error, "socket");
    return Socket();
  }
  if (::bind(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    setError(Error, "bind " + Path);
    return Socket();
  }
  if (::listen(S.fd(), 64) != 0) {
    setError(Error, "listen");
    return Socket();
  }
  return S;
}

Socket acceptOn(int ListenFd, std::string *Error) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return Socket(Fd);
    if (errno == EINTR)
      continue;
    setError(Error, "accept");
    return Socket();
  }
}

Socket connectTcp(const std::string &Host, unsigned Port, std::string *Error) {
  sockaddr_in Addr;
  if (!parseHost(Host, Addr, Error))
    return Socket();
  Addr.sin_port = htons(static_cast<uint16_t>(Port));

  Socket S(::socket(AF_INET, SOCK_STREAM, 0));
  if (!S.valid()) {
    setError(Error, "socket");
    return Socket();
  }
  int One = 1;
  ::setsockopt(S.fd(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  if (::connect(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    setError(Error, "connect");
    return Socket();
  }
  return S;
}

Socket connectUnix(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return Socket();
  Socket S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid()) {
    setError(Error, "socket");
    return Socket();
  }
  if (::connect(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    setError(Error, "connect " + Path);
    return Socket();
  }
  return S;
}

bool writeAll(int Fd, const std::string &Data, std::string *Error) {
  size_t Off = 0;
  while (Off < Data.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
#else
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
#endif
    if (N < 0) {
      if (errno == EINTR)
        continue;
      setError(Error, "write");
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

LineReader::Status LineReader::readLine(std::string &Out, int TimeoutMs) {
  for (;;) {
    size_t Nl = Buf.find('\n', Pos);
    if (Nl != std::string::npos) {
      size_t End = Nl;
      if (End > Pos && Buf[End - 1] == '\r')
        --End;
      Out.assign(Buf, Pos, End - Pos);
      Pos = Nl + 1;
      if (Pos == Buf.size()) {
        Buf.clear();
        Pos = 0;
      }
      return Status::Line;
    }
    // Compact the consumed prefix before growing the buffer.
    if (Pos > 0) {
      Buf.erase(0, Pos);
      Pos = 0;
    }

    pollfd Pfd;
    Pfd.fd = Fd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int R = ::poll(&Pfd, 1, TimeoutMs);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return Status::Error;
    }
    if (R == 0)
      return Status::Timeout;

    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::Error;
    }
    if (N == 0)
      return Status::Closed;
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

} // namespace support
} // namespace getafix
