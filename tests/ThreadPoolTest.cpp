//===- ThreadPoolTest.cpp - Pool and DAG-scheduler unit tests -------------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing pool and the dependency-respecting DAG runner under
/// it, exercised directly (no BDDs): every task runs exactly once, tasks
/// may submit tasks, and — the property the parallel SCC scheduler rests
/// on — for randomized DAGs every dependency is *completed* before its
/// dependent *starts*, and task results computed from dependency results
/// are identical across worker counts and runs.
///
//===----------------------------------------------------------------------===//

#include "fpcalc/Parallel.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

using namespace getafix;
using namespace getafix::fpc;
using getafix::support::ThreadPool;

namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  constexpr unsigned N = 200;
  std::vector<std::atomic<unsigned>> Runs(N);
  std::atomic<unsigned> Done{0};
  std::mutex M;
  std::condition_variable Cv;
  for (unsigned I = 0; I < N; ++I)
    Pool.run([&, I](unsigned Worker) {
      EXPECT_LT(Worker, Pool.size());
      Runs[I].fetch_add(1);
      if (Done.fetch_add(1) + 1 == N) {
        std::lock_guard<std::mutex> Lock(M);
        Cv.notify_all();
      }
    });
  std::unique_lock<std::mutex> Lock(M);
  Cv.wait(Lock, [&] { return Done.load() == N; });
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Runs[I].load(), 1u) << "task " << I;
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool Pool(3);
  std::atomic<unsigned> Done{0};
  std::mutex M;
  std::condition_variable Cv;
  constexpr unsigned Fanout = 8, Leaves = Fanout * Fanout;
  for (unsigned I = 0; I < Fanout; ++I)
    Pool.run([&](unsigned) {
      for (unsigned J = 0; J < Fanout; ++J)
        Pool.run([&](unsigned) {
          if (Done.fetch_add(1) + 1 == Leaves) {
            std::lock_guard<std::mutex> Lock(M);
            Cv.notify_all();
          }
        });
    });
  std::unique_lock<std::mutex> Lock(M);
  Cv.wait(Lock, [&] { return Done.load() == Leaves; });
  EXPECT_EQ(Done.load(), Leaves);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
}

//===----------------------------------------------------------------------===//
// runDag: ordering and determinism over randomized DAGs
//===----------------------------------------------------------------------===//

/// A random DAG: edges only from lower to higher task index, so it is
/// acyclic by construction; EdgePermille controls density.
std::vector<std::vector<unsigned>> randomDag(Rng &R, unsigned N,
                                             unsigned EdgePermille) {
  std::vector<std::vector<unsigned>> Deps(N);
  for (unsigned J = 1; J < N; ++J)
    for (unsigned I = 0; I < J; ++I)
      if (R.below(1000) < EdgePermille)
        Deps[J].push_back(I);
  return Deps;
}

/// Runs \p Deps on a pool of \p Workers, recording per-task start/finish
/// ticks from one global clock and a value derived only from dependency
/// values (the analogue of an SCC's solution being a pure function of its
/// callees' values).
struct DagRun {
  std::vector<uint64_t> Start, Finish, Value;
};

DagRun runInstrumented(const std::vector<std::vector<unsigned>> &Deps,
                       unsigned Workers) {
  unsigned N = unsigned(Deps.size());
  DagRun Out;
  Out.Start.resize(N);
  Out.Finish.resize(N);
  Out.Value.resize(N);
  std::atomic<uint64_t> Clock{0};
  ThreadPool Pool(Workers);
  DagRunStats Stats =
      runDag(Pool, N, Deps, [&](unsigned Task, unsigned Worker) {
        (void)Worker;
        Out.Start[Task] = Clock.fetch_add(1);
        uint64_t V = 0x9e3779b97f4a7c15ull * (Task + 1);
        // Reading dependency values without synchronization is the point:
        // runDag's ordering guarantee (dep finished before dependent
        // starts, with the completion bookkeeping under its lock) is what
        // makes this race-free — TSAN runs this test to prove it.
        for (unsigned D : Deps[Task])
          V = (V ^ Out.Value[D]) * 0xbf58476d1ce4e5b9ull;
        Out.Value[Task] = V;
        Out.Finish[Task] = Clock.fetch_add(1);
      });
  EXPECT_EQ(Stats.TasksRun, N);
  return Out;
}

TEST(SccScheduleTest, RandomDagsRespectDependenciesAtEveryWidth) {
  Rng R(42);
  for (unsigned Round = 0; Round < 6; ++Round) {
    unsigned N = unsigned(R.range(1, 40));
    unsigned Density = unsigned(R.below(120));
    std::vector<std::vector<unsigned>> Deps = randomDag(R, N, Density);
    for (unsigned Workers : {1u, 2u, 4u}) {
      DagRun Run = runInstrumented(Deps, Workers);
      for (unsigned T = 0; T < N; ++T)
        for (unsigned D : Deps[T])
          EXPECT_LT(Run.Finish[D], Run.Start[T])
              << "dep " << D << " of task " << T << " at width " << Workers;
    }
  }
}

TEST(SccScheduleTest, RandomDagValuesIdenticalAcrossWidthsAndRuns) {
  Rng R(7);
  for (unsigned Round = 0; Round < 4; ++Round) {
    unsigned N = unsigned(R.range(2, 48));
    std::vector<std::vector<unsigned>> Deps = randomDag(R, N, 80);
    DagRun Base = runInstrumented(Deps, 1);
    for (unsigned Workers : {2u, 4u, 8u}) {
      DagRun Run = runInstrumented(Deps, Workers);
      EXPECT_EQ(Run.Value, Base.Value) << "width " << Workers;
    }
    // Same width twice: schedules may differ, values may not.
    DagRun Again = runInstrumented(Deps, 4);
    EXPECT_EQ(Again.Value, Base.Value);
  }
}

TEST(SccScheduleTest, ChainRunsInOrder) {
  constexpr unsigned N = 24;
  std::vector<std::vector<unsigned>> Deps(N);
  for (unsigned I = 1; I < N; ++I)
    Deps[I].push_back(I - 1);
  DagRun Run = runInstrumented(Deps, 4);
  for (unsigned I = 1; I < N; ++I)
    EXPECT_LT(Run.Finish[I - 1], Run.Start[I]);
}

TEST(SccScheduleTest, EmptyDagReturnsImmediately) {
  ThreadPool Pool(2);
  DagRunStats Stats = runDag(Pool, 0, {}, [](unsigned, unsigned) {
    FAIL() << "no task to run";
  });
  EXPECT_EQ(Stats.TasksRun, 0u);
}

// Death tests re-execute the binary (threadsafe style) because the tested
// code spins up threads; skipped under TSAN, where fork/exec death tests
// are unreliable.
#if defined(__SANITIZE_THREAD__)
#define GETAFIX_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GETAFIX_TSAN 1
#endif
#endif

#ifndef GETAFIX_TSAN
TEST(SccScheduleDeathTest, CyclicGraphAbortsInsteadOfHanging) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Fully sourceless graph: caught before anything is submitted.
  EXPECT_DEATH(
      {
        ThreadPool Pool(2);
        runDag(Pool, 2, {{1}, {0}}, [](unsigned, unsigned) {});
      },
      "no source");
  // A source plus a disjoint cycle: caught by the in-flight stall check
  // when the last runnable task completes without unblocking anything.
  EXPECT_DEATH(
      {
        ThreadPool Pool(2);
        runDag(Pool, 3, {{}, {2}, {1}}, [](unsigned, unsigned) {});
      },
      "unreachable from any source");
}
#endif

TEST(SccScheduleTest, DiamondJoinSeesBothBranches) {
  // 0 fans out to 1 and 2; 3 joins both.
  std::vector<std::vector<unsigned>> Deps{{}, {0}, {0}, {1, 2}};
  for (unsigned Workers : {1u, 2u, 4u}) {
    DagRun Run = runInstrumented(Deps, Workers);
    EXPECT_LT(Run.Finish[0], Run.Start[1]);
    EXPECT_LT(Run.Finish[0], Run.Start[2]);
    EXPECT_LT(Run.Finish[1], Run.Start[3]);
    EXPECT_LT(Run.Finish[2], Run.Start[3]);
  }
}

} // namespace
