//===- FaultTest.cpp - Resource governance and fault injection tests ------===//
//
// Part of the Getafix reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance contract end to end: the `ResourceGovernor`
/// primitive (deadline, node budget, cancel flag, trip latching and
/// priority), the `BddManager` probe and its deterministic allocation-
/// fault injection, the limit statuses surfaced through the `Solver`
/// facade, and — the load-bearing property — cancellation determinism: a
/// solve stopped at a round boundary by a budget and retried without one
/// must be bit-identical (verdict, rounds, summary sizes, witness text)
/// to a solve that was never interrupted, across engines, strategies,
/// and thread counts.
///
//===----------------------------------------------------------------------===//

#include "api/Solver.h"

#include "bdd/Bdd.h"
#include "gen/Workloads.h"
#include "support/ResourceGovernor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

using namespace getafix;
using support::ResourceGovernor;
using support::ResourceInterrupt;
using support::ResourceLimit;

namespace {

/// The ApiTest lock-discipline fixture: ERR reachable, SAFE not.
const char *FixtureBody = R"(
main() begin
  locked := F;
  call work(F);
end
work(nested) begin
  if (locked) then
    ERR: skip;
  else
    locked := T;
  fi
  if (!nested) then
    call work(T);
  fi
  if (locked & !locked) then
    SAFE: skip;
  fi
  locked := F;
end
)";

std::string seqFixture() { return std::string("decl locked;\n") + FixtureBody; }

std::string concFixture() {
  return std::string("shared decl locked;\nthread\n") + FixtureBody + "end\n";
}

/// What "bit-identical" covers for the resume contract.
void expectSameCore(const api::SolveResult &A, const api::SolveResult &B,
                    const std::string &Context) {
  EXPECT_EQ(A.Status, B.Status) << Context;
  EXPECT_EQ(A.Reachable, B.Reachable) << Context;
  EXPECT_EQ(A.HitIterationLimit, B.HitIterationLimit) << Context;
  EXPECT_EQ(A.Iterations, B.Iterations) << Context;
  EXPECT_EQ(A.SummaryNodes, B.SummaryNodes) << Context;
  EXPECT_EQ(A.HasWitness, B.HasWitness) << Context;
  EXPECT_EQ(A.WitnessText, B.WitnessText) << Context;
}

} // namespace

//===----------------------------------------------------------------------===//
// The governor primitive
//===----------------------------------------------------------------------===//

TEST(FaultTest, GovernorUnarmedNeverTrips) {
  ResourceGovernor Gov;
  for (int I = 0; I < 10; ++I)
    EXPECT_NO_THROW(Gov.check(1 << 20));
  EXPECT_EQ(Gov.tripped(), ResourceLimit::None);
}

TEST(FaultTest, GovernorDeadlineTripsAndLatches) {
  ResourceGovernor Gov;
  Gov.setDeadlineIn(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  try {
    Gov.check();
    FAIL() << "deadline did not trip";
  } catch (const ResourceInterrupt &RI) {
    EXPECT_EQ(RI.Limit, ResourceLimit::Deadline);
  }
  EXPECT_EQ(Gov.tripped(), ResourceLimit::Deadline);
  // The trip latches: every later probe reports the same verdict.
  EXPECT_THROW(Gov.check(), ResourceInterrupt);
}

TEST(FaultTest, GovernorNodeBudgetChargesAcrossProbes) {
  ResourceGovernor Gov;
  Gov.setNodeBudget(100);
  EXPECT_NO_THROW(Gov.check(60));
  try {
    Gov.check(60); // 120 > 100.
    FAIL() << "budget did not trip";
  } catch (const ResourceInterrupt &RI) {
    EXPECT_EQ(RI.Limit, ResourceLimit::NodeBudget);
  }
  EXPECT_GE(Gov.nodesCharged(), 120u);
}

TEST(FaultTest, GovernorCancelOutranksOtherLimits) {
  // Cancel, deadline, and budget all fire in the same probe; cancel wins.
  ResourceGovernor Gov;
  Gov.setDeadlineIn(1);
  Gov.setNodeBudget(1);
  Gov.cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  try {
    Gov.check(100);
    FAIL() << "nothing tripped";
  } catch (const ResourceInterrupt &RI) {
    EXPECT_EQ(RI.Limit, ResourceLimit::Cancelled);
  }
}

TEST(FaultTest, GovernorExternalCancelFlag) {
  std::atomic<bool> Flag{false};
  ResourceGovernor Gov;
  Gov.setCancelFlag(&Flag);
  EXPECT_NO_THROW(Gov.check());
  Flag.store(true);
  try {
    Gov.check();
    FAIL() << "cancel flag not observed";
  } catch (const ResourceInterrupt &RI) {
    EXPECT_EQ(RI.Limit, ResourceLimit::Cancelled);
  }
}

TEST(FaultTest, ResourceLimitNamesAndStatusMapping) {
  EXPECT_STREQ(support::resourceLimitName(ResourceLimit::Deadline),
               "deadline");
  EXPECT_STREQ(support::resourceLimitName(ResourceLimit::NodeBudget),
               "node-budget");
  EXPECT_STREQ(support::resourceLimitName(ResourceLimit::Cancelled),
               "cancelled");
  EXPECT_EQ(api::statusForLimit(ResourceLimit::Deadline),
            api::SolveStatus::HitDeadline);
  EXPECT_EQ(api::statusForLimit(ResourceLimit::NodeBudget),
            api::SolveStatus::HitNodeBudget);
  EXPECT_EQ(api::statusForLimit(ResourceLimit::Cancelled),
            api::SolveStatus::Cancelled);
  EXPECT_TRUE(api::isResourceLimit(api::SolveStatus::HitDeadline));
  EXPECT_TRUE(api::isResourceLimit(api::SolveStatus::HitNodeBudget));
  EXPECT_TRUE(api::isResourceLimit(api::SolveStatus::Cancelled));
  EXPECT_FALSE(api::isResourceLimit(api::SolveStatus::Ok));
  EXPECT_FALSE(api::isResourceLimit(api::SolveStatus::ParseError));
}

//===----------------------------------------------------------------------===//
// The manager probe and fault injection
//===----------------------------------------------------------------------===//

TEST(FaultTest, ManagerProbeTripsNodeBudget) {
  BddManager Mgr(64);
  ResourceGovernor Gov;
  Gov.setProbePeriod(16); // Tight probes so a tiny workload still charges.
  Gov.setNodeBudget(32);
  Mgr.setGovernor(&Gov);
  // Build distinct conjunctions until the budget trips at a probe.
  bool Tripped = false;
  try {
    Bdd Acc = Mgr.one();
    for (unsigned V = 0; V < 64; ++V)
      Acc &= (V % 2 ? Mgr.var(V) : !Mgr.var(V));
    Bdd Acc2 = Mgr.zero();
    for (unsigned V = 0; V < 64; ++V)
      Acc2 |= (V % 3 ? Mgr.var(V) : !Mgr.var(V)) & Mgr.var((V + 7) % 64);
  } catch (const ResourceInterrupt &RI) {
    Tripped = true;
    EXPECT_EQ(RI.Limit, ResourceLimit::NodeBudget);
  }
  EXPECT_TRUE(Tripped);
  Mgr.setGovernor(nullptr);
  // The manager survives the throw: unreferenced partial results are
  // garbage the next GC sweeps; fresh operations still work.
  Bdd X = Mgr.var(0) & Mgr.var(1);
  EXPECT_FALSE(X.isZero());
}

TEST(FaultTest, InjectedAllocationFailureThrowsBadAlloc) {
  BddManager Mgr(32);
  Mgr.setFailAfterAllocations(40);
  bool Faulted = false;
  try {
    Bdd Acc = Mgr.one();
    for (unsigned V = 0; V < 32; ++V)
      Acc &= (V % 2 ? Mgr.var(V) : !Mgr.var(V));
  } catch (const std::bad_alloc &) {
    Faulted = true;
  }
  EXPECT_TRUE(Faulted);
}

TEST(FaultTest, FaultInjectionArmsFromEnvironment) {
  ::setenv("GETAFIX_FAULT_ALLOC_AFTER", "40", 1);
  BddManager Mgr(32); // Reads the env var at construction.
  ::unsetenv("GETAFIX_FAULT_ALLOC_AFTER");
  bool Faulted = false;
  try {
    Bdd Acc = Mgr.one();
    for (unsigned V = 0; V < 32; ++V)
      Acc &= (V % 2 ? Mgr.var(V) : !Mgr.var(V));
  } catch (const std::bad_alloc &) {
    Faulted = true;
  }
  EXPECT_TRUE(Faulted);
  // A manager constructed after the unset is unarmed.
  BddManager Clean(32);
  Bdd Acc = Clean.one();
  for (unsigned V = 0; V < 32; ++V)
    EXPECT_NO_THROW(Acc &= (V % 2 ? Clean.var(V) : !Clean.var(V)));
}

//===----------------------------------------------------------------------===//
// Limit statuses through the Solver facade
//===----------------------------------------------------------------------===//

TEST(FaultTest, OptionsDeadlineSurfacesHitDeadline) {
  // A deadline armed in the past trips at the first round boundary, on
  // every engine kind.
  for (bool Concurrent : {false, true}) {
    api::SolverOptions Opts;
    Opts.TimeoutMs = 1;
    const std::string Src = Concurrent ? concFixture() : seqFixture();
    // Burn the 1ms before solving so the first probe is already late.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    api::SolveResult R =
        api::Solver::solve(api::Query::fromSource(Src).target("ERR"), Opts);
    // The fixture is tiny; if it finished inside the deadline the result
    // must be a clean Ok — anything else is a broken status.
    if (R.ok())
      continue;
    EXPECT_EQ(R.Status, api::SolveStatus::HitDeadline) << R.Error;
    EXPECT_NE(R.Error.find("deadline"), std::string::npos) << R.Error;
  }
}

TEST(FaultTest, PreCancelledFlagSurfacesCancelled) {
  std::atomic<bool> Cancel{true};
  for (bool Concurrent : {false, true}) {
    api::SolverOptions Opts;
    Opts.CancelFlag = &Cancel;
    const std::string Src = Concurrent ? concFixture() : seqFixture();
    api::SolveResult R =
        api::Solver::solve(api::Query::fromSource(Src).target("ERR"), Opts);
    EXPECT_EQ(R.Status, api::SolveStatus::Cancelled)
        << (Concurrent ? "conc" : "seq") << ": " << R.Error;
    EXPECT_TRUE(api::isResourceLimit(R.Status));
  }
}

TEST(FaultTest, SessionGovernorBudgetSurfacesHitNodeBudget) {
  auto S = api::Solver::open(api::Query::fromSource(seqFixture()), {});
  ASSERT_TRUE(S->ok());
  ResourceGovernor Gov;
  Gov.setProbePeriod(16);
  Gov.setNodeBudget(8); // Far below what even the tiny fixture allocates.
  S->setResourceGovernor(&Gov);
  api::SolveResult R = S->solve(api::Query::fromSource("").target("ERR"));
  S->setResourceGovernor(nullptr);
  EXPECT_EQ(R.Status, api::SolveStatus::HitNodeBudget) << R.Error;
  EXPECT_NE(R.Error.find("budget"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// Cancellation determinism: stop, retry, bit-identical
//===----------------------------------------------------------------------===//

namespace {

/// Solves `Target` uninterrupted on one session, and budget-stopped then
/// retried on another; the retry must match the uninterrupted run
/// exactly. Escalating budgets also exercise multi-step resumption.
void expectResumeBitIdentical(const std::string &Src, const char *Engine,
                              fpc::EvalStrategy Strategy, unsigned Threads,
                              const char *Target, bool Witness) {
  const std::string Context = std::string(Engine ? Engine : "default") + "/" +
                              (Strategy == fpc::EvalStrategy::Naive
                                   ? "naive"
                                   : "semi-naive") +
                              "/t" + std::to_string(Threads);
  api::SolverOptions Opts;
  if (Engine)
    Opts.Engine = Engine;
  Opts.Strategy = Strategy;
  Opts.Threads = Threads;

  auto Q = [&] {
    return api::Query::fromSource("").target(Target).witness(Witness);
  };

  auto Base = api::Solver::open(api::Query::fromSource(Src), Opts);
  ASSERT_TRUE(Base->ok()) << Context;
  api::SolveResult Want = Base->solve(Q());
  ASSERT_TRUE(Want.ok()) << Context << ": " << Want.Error;

  auto S = api::Solver::open(api::Query::fromSource(Src), Opts);
  ASSERT_TRUE(S->ok()) << Context;
  unsigned Stops = 0;
  for (uint64_t Budget = 32;; Budget *= 4) {
    ResourceGovernor Gov;
    Gov.setProbePeriod(16);
    Gov.setNodeBudget(Budget);
    S->setResourceGovernor(&Gov);
    api::SolveResult R = S->solve(Q());
    S->setResourceGovernor(nullptr);
    if (R.ok()) {
      expectSameCore(Want, R, Context + " (after " +
                                  std::to_string(Stops) + " stops)");
      break;
    }
    ASSERT_EQ(R.Status, api::SolveStatus::HitNodeBudget)
        << Context << ": " << R.Error;
    ++Stops;
    ASSERT_LT(Stops, 64u) << Context << ": budget escalation diverged";
  }
  // The matrix is only meaningful if at least one run was interrupted.
  EXPECT_GE(Stops, 1u) << Context;

  // And the session remains consistent after the whole dance: a repeat
  // query reuses solved state and answers identically.
  api::SolveResult Again = S->solve(Q());
  ASSERT_TRUE(Again.ok()) << Context;
  EXPECT_EQ(Again.Reachable, Want.Reachable) << Context;
  EXPECT_EQ(Again.WitnessText, Want.WitnessText) << Context;
}

} // namespace

TEST(FaultTest, ResumeBitIdenticalSequentialEngines) {
  for (const char *Engine : {"ef", "ef-split", "ef-opt"})
    expectResumeBitIdentical(seqFixture(), Engine,
                             fpc::EvalStrategy::SemiNaive, 1, "ERR",
                             /*Witness=*/true);
}

TEST(FaultTest, ResumeBitIdenticalAcrossStrategies) {
  expectResumeBitIdentical(seqFixture(), "ef-opt", fpc::EvalStrategy::Naive,
                           1, "ERR", /*Witness=*/true);
  expectResumeBitIdentical(seqFixture(), "ef-opt",
                           fpc::EvalStrategy::SemiNaive, 1, "SAFE",
                           /*Witness=*/false);
}

TEST(FaultTest, ResumeBitIdenticalOneVsFourThreads) {
  expectResumeBitIdentical(seqFixture(), "ef-opt",
                           fpc::EvalStrategy::SemiNaive, 4, "ERR",
                           /*Witness=*/true);
}

TEST(FaultTest, ResumeBitIdenticalConcurrentEngine) {
  expectResumeBitIdentical(concFixture(), nullptr,
                           fpc::EvalStrategy::SemiNaive, 1, "ERR",
                           /*Witness=*/false);
  expectResumeBitIdentical(concFixture(), nullptr,
                           fpc::EvalStrategy::SemiNaive, 4, "ERR",
                           /*Witness=*/false);
}

//===----------------------------------------------------------------------===//
// Fault containment boundary
//===----------------------------------------------------------------------===//

TEST(FaultTest, InjectedOomEscapesTheFacadeForTheServerToContain) {
  // The engines deliberately do NOT swallow real faults — std::bad_alloc
  // must reach the caller (the server's per-request containment), never
  // be conflated with a clean limit stop.
  // The env must still be set at the first solve: `open` only compiles,
  // and the engine session (whose BddManager reads the arming variable)
  // is created lazily on first use.
  ::setenv("GETAFIX_FAULT_ALLOC_AFTER", "200", 1);
  auto S = api::Solver::open(api::Query::fromSource(seqFixture()), {});
  ASSERT_TRUE(S->ok());
  EXPECT_THROW(S->solve(api::Query::fromSource("").target("ERR")),
               std::bad_alloc);
  ::unsetenv("GETAFIX_FAULT_ALLOC_AFTER");
}
